// The three paper tasks: production counts, runs complete, chunks are built
#include <algorithm>
// during learning, learned chunks transfer.
#include <gtest/gtest.h>

#include "tasks/registry.h"

namespace psme {
namespace {

TEST(Tasks, ProductionCountsMatchPaper) {
  EXPECT_EQ(run_task(make_eight_puzzle(), false).production_count, 71u);
  EXPECT_EQ(run_task(make_strips(), false).production_count, 105u);
  EXPECT_EQ(run_task(make_cypress(), false).production_count, 196u);
}

class TaskRuns : public ::testing::TestWithParam<const char*> {};

TEST_P(TaskRuns, WithoutChunkingProducesWork) {
  const Task task = make_task(GetParam());
  const auto res = run_task(task, /*learning=*/false);
  EXPECT_GT(res.stats.decisions, 3u);
  EXPECT_GT(res.stats.elab_cycles, 5u);
  uint64_t tasks = 0;
  for (const auto& t : res.stats.traces) tasks += t.task_count();
  EXPECT_GT(tasks, 500u);
}

TEST_P(TaskRuns, DuringChunkingBuildsChunks) {
  const Task task = make_task(GetParam());
  const auto res = run_task(task, /*learning=*/true);
  EXPECT_GE(res.stats.chunks_built, 3u);
  int max_ces = 0;
  for (const auto& c : res.stats.chunk_costs) {
    EXPECT_GE(c.total_ces, 2);
    EXPECT_GT(c.code_bytes, 100u);
    max_ces = std::max(max_ces, c.total_ces);
  }
  // At least some chunks carry a substantial condition list (the paper's
  // chunks average 34-51 CEs; ours are smaller but must not be trivial).
  EXPECT_GE(max_ces, 5);
}

TEST_P(TaskRuns, ChunksAreReloadable) {
  const Task task = make_task(GetParam());
  const auto during = run_task(task, /*learning=*/true);
  ASSERT_GE(during.stats.chunks_built, 1u);
  const auto after =
      run_task(task, /*learning=*/false, &during.stats.chunk_texts);
  EXPECT_EQ(after.production_count,
            run_task(task, false).production_count +
                during.stats.chunk_texts.size());
  EXPECT_GT(after.stats.elab_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskRuns,
                         ::testing::Values("eight-puzzle", "strips",
                                           "cypress"));

TEST(Tasks, EightPuzzleSolves) {
  const auto res = run_task(make_eight_puzzle(), /*learning=*/false);
  EXPECT_TRUE(res.stats.goal_achieved);
}

TEST(Tasks, StripsSolves) {
  const auto res = run_task(make_strips(), /*learning=*/false);
  EXPECT_TRUE(res.stats.goal_achieved);
}

TEST(Tasks, CypressReachesSuccessOrLimit) {
  const auto res = run_task(make_cypress(), /*learning=*/false);
  EXPECT_TRUE(res.stats.goal_achieved || res.stats.halted_on_limit ||
              res.stats.decisions > 20);
}

TEST(Tasks, AfterChunkingUsesFewerDecisionsEightPuzzle) {
  const Task task = make_eight_puzzle();
  const auto during = run_task(task, /*learning=*/true);
  ASSERT_GE(during.stats.chunks_built, 1u);
  const auto after =
      run_task(task, /*learning=*/false, &during.stats.chunk_texts);
  // Learned selection knowledge prevents impasses on the same problem.
  EXPECT_LE(after.stats.impasses, during.stats.impasses);
}

TEST(Tasks, UnknownTaskThrows) {
  EXPECT_THROW(make_task("nonsense"), std::invalid_argument);
}

}  // namespace
}  // namespace psme
