// Token/arena memory discipline:
//
//   * steady-state match activations on a join chain perform ZERO
//     per-activation heap allocations (the tentpole's headline property) —
//     checked with a counting global operator new;
//   * long tokens spill into the arena, short ones stay inline;
//   * sealed chunks are reclaimed exactly one drain after sealing (epoch
//     deferral), and pinned chunks survive until unpinned;
//   * the legacy vector token_extend performs exactly one allocation
//     (regression for the reserve-defeated-by-assignment bug);
//   * reclamation runs live under the Steal scheduler without corrupting the
//     match (serial equivalence) while actually freeing chunks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alloc_probe.h"
#include "engine/engine.h"
#include "par/parallel_match.h"
#include "rete/network.h"
#include "rete/token.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;
using test::heap_allocs;

// ---- token representation --------------------------------------------------

TEST(Token, InlineTokensTouchNoAllocator) {
  Wme ws[4];
  TokenArena arena;
  const uint64_t before = heap_allocs();
  Token t;
  for (auto& w : ws) t = token_extend(t, &w, arena, 0);
  EXPECT_EQ(heap_allocs() - before, 0u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_FALSE(t.spilled());
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], &ws[i]);
  EXPECT_EQ(arena.stats().spill_allocs, 0u);
}

TEST(Token, LongTokensSpillToArena) {
  Wme ws[6];
  TokenArena arena;
  Token t;
  for (auto& w : ws) t = token_extend(t, &w, arena, 0);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_TRUE(t.spilled());
  for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], &ws[i]);

  const MatchStats ms = arena.stats();
  // Sizes 5 and 6 both spill: two payloads, 5+6 pointers.
  EXPECT_EQ(ms.spill_allocs, 2u);
  EXPECT_EQ(ms.spill_bytes, 11 * sizeof(const Wme*));
  EXPECT_EQ(ms.chunks_allocated, 1u);

  // Spilling never mutates an existing payload (I1): a prefix copy taken
  // before further extension stays intact.
  const Token five = token_prefix(t, 5, arena, 0);
  const Token seven = token_extend(t, &ws[0], arena, 0);
  EXPECT_EQ(five.size(), 5u);
  EXPECT_EQ(seven.size(), 7u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(five[i], &ws[i]);
  EXPECT_EQ(seven[6], &ws[0]);
}

TEST(Token, LegacyTokenExtendSingleAllocation) {
  Wme ws[3];
  TokenData base{&ws[0], &ws[1]};
  const uint64_t before = heap_allocs();
  const TokenData out = token_extend(base, &ws[2]);
  // Exactly one vector buffer; the old reserve-then-copy-assign pattern did
  // two (capacity after copy assignment is unspecified).
  EXPECT_EQ(heap_allocs() - before, 1u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], &ws[2]);
}

// ---- chunk lifecycle -------------------------------------------------------

// 5-pointer spills into 256-byte chunks: 6 spills fill a chunk.
Token spill5(TokenArena& arena, const Wme* w) {
  const Wme* ptrs[5] = {w, w, w, w, w};
  return token_make(ptrs, 5, nullptr, 0, arena, 0);
}

TEST(TokenArena, SealedChunksReclaimOneDrainLater) {
  TokenArena arena(1, 256);
  Wme w;

  arena.begin_drain(1);
  for (int i = 0; i < 13; ++i) spill5(arena, &w);  // seals 2 chunks
  EXPECT_EQ(arena.sealed_pending(), 2u);
  arena.reclaim_at_quiescence();
  // Epoch deferral: chunks sealed during drain E survive drain E's own
  // reclaim — transient copies may still be read until the next quiescence.
  EXPECT_EQ(arena.stats().chunks_freed, 0u);
  EXPECT_EQ(arena.sealed_pending(), 2u);

  arena.begin_drain(1);
  arena.reclaim_at_quiescence();
  EXPECT_EQ(arena.stats().chunks_freed, 2u);
  EXPECT_EQ(arena.sealed_pending(), 0u);
}

TEST(TokenArena, PinnedChunksSurviveUntilUnpinned) {
  TokenArena arena(1, 256);
  Wme w;

  arena.begin_drain(1);
  const Token held = spill5(arena, &w);  // lands in chunk 1
  held.pin();
  for (int i = 0; i < 12; ++i) spill5(arena, &w);  // fills chunks 1 and 2
  ASSERT_EQ(arena.sealed_pending(), 2u);
  arena.reclaim_at_quiescence();

  arena.begin_drain(1);
  arena.reclaim_at_quiescence();
  // Chunk 2 is old enough and unpinned; chunk 1 is held by `held`.
  EXPECT_EQ(arena.stats().chunks_freed, 1u);
  EXPECT_EQ(arena.sealed_pending(), 1u);
  EXPECT_EQ(held[0], &w);  // payload still readable through the pin

  held.unpin();
  arena.begin_drain(1);
  arena.reclaim_at_quiescence();
  EXPECT_EQ(arena.stats().chunks_freed, 2u);
  EXPECT_EQ(arena.sealed_pending(), 0u);
}

// ---- steady-state zero-allocation match ------------------------------------

/// Executor with a reusable flat queue: after warm-up its vector has
/// capacity and drains allocate nothing (std::deque would allocate a block
/// per refill).
class RingExecutor final : public ExecContext {
 public:
  void emit(Activation&& a) override { q_.push_back(a); }

  void drain(Network& net) {
    for (size_t head = 0; head < q_.size(); ++head) {
      const Activation a = q_[head];  // copy: q_ may grow during execute
      net.execute(a, *this);
    }
    q_.clear();
  }

 private:
  std::vector<Activation> q_;
};

TEST(TokenArena, SteadyStateActivationsAreHeapFree) {
  Engine e;
  e.load("(p chain (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))");
  for (int i = 0; i < 8; ++i) {
    const std::string v = std::to_string(i % 4);
    e.add_wme_text("(a ^v " + v + ")");
    e.add_wme_text("(b ^v " + v + ")");
    e.add_wme_text("(c ^v " + v + ")");
  }
  e.match();

  Network& net = e.net();
  // Detach the conflict set to isolate the match-network path; the full
  // engine cycle (CS included) is covered by engine_alloc_test.
  e.state().sink = nullptr;

  const Wme* toggle = nullptr;
  for (const Wme* w : e.wm().live()) toggle = w;  // any live wme
  ASSERT_NE(toggle, nullptr);

  RingExecutor ex;
  ex.state = &e.state();
  auto cycle = [&] {
    e.state().arena.begin_drain(1);
    net.inject(toggle, false, ex);
    ex.drain(net);
    net.inject(toggle, true, ex);
    ex.drain(net);
    e.state().arena.reclaim_at_quiescence();
  };

  for (int i = 0; i < 16; ++i) cycle();  // warm-up: queue + line capacity

  const uint64_t before = heap_allocs();
  for (int i = 0; i < 1000; ++i) cycle();
  EXPECT_EQ(heap_allocs() - before, 0u)
      << "steady-state activations must not touch the heap";
}

// ---- reclamation under the Steal scheduler ---------------------------------

std::string long_chain_productions() {
  // Six CEs: every full PI spills (sizes 5 and 6 exceed kInlineCap).
  return "(p long (a ^v <x>) (b ^v <x>) (c ^v <x>) (d ^v <x>) (e ^v <x>)"
         " (f ^v <x>) --> (halt))";
}

void add_chain_wmes(Engine& e) {
  for (const char* cls : {"a", "b", "c", "d", "e", "f"}) {
    for (int k = 0; k < 2; ++k) {
      for (int i = 0; i < 3; ++i) {
        e.add_wme_text("(" + std::string(cls) + " ^v " + std::to_string(k) +
                       ")");
      }
    }
  }
}

TEST(TokenArena, StealReclaimsWhileMatching) {
  EngineOptions popts;
  popts.match_workers = 8;
  popts.match_policy = TaskQueueSet::Policy::Steal;
  Engine par(popts);
  Engine serial;
  for (Engine* e : {&par, &serial}) {
    e->load(long_chain_productions());
    add_chain_wmes(*e);
    e->match();
  }

  // Toggle one `a` wme repeatedly: each direction rebuilds/retracts ~3^4
  // five-wme PIs and ~3^5 six-wme PIs, all spilled — enough churn to seal
  // and reclaim chunks while 8 workers race the epoch machinery.
  for (int round = 0; round < 40; ++round) {
    for (Engine* e : {&par, &serial}) {
      const Wme* victim = nullptr;
      for (const Wme* w : e->wm().live()) {
        if (w->cls == e->syms().intern("a")) {
          victim = w;
          break;
        }
      }
      ASSERT_NE(victim, nullptr);
      const Symbol cls = victim->cls;
      const auto fields = victim->fields;
      e->remove_wme(victim);
      e->match();
      e->add_wme(cls, fields);
      e->match();
    }
  }

  EXPECT_EQ(cs_fingerprint(par), cs_fingerprint(serial));
  EXPECT_EQ(par.state().tables.total_left_entries(),
            serial.state().tables.total_left_entries());

  const MatchStats ms = par.state().arena.stats();
  EXPECT_GT(ms.spill_allocs, 0u);
  EXPECT_GT(ms.chunks_freed, 0u) << "epoch reclamation never freed a chunk";
  EXPECT_EQ(ms.chunks_live, ms.chunks_allocated - ms.chunks_freed);
  // Footprint is bounded: live chunks are the per-worker currents plus the
  // one-epoch deferral window, not the whole history.
  EXPECT_LT(ms.chunks_live, ms.chunks_allocated);
}

}  // namespace
}  // namespace psme
