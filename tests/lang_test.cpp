#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/print.h"

namespace psme {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Production parse(std::string_view src) {
    Parser p(syms_, schemas_, arena_);
    return p.parse_production(src);
  }
  SymbolTable syms_;
  ClassSchemas schemas_;
  RhsArena arena_;
};

TEST(Lexer, ClassifiesTokens) {
  const auto toks = lex("(p name ^attr <var> 42 -3 2.5 --> - << >> <> <= <=>)");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  const std::vector<Tok> expected = {
      Tok::LParen, Tok::Sym,    Tok::Sym,    Tok::Hat,    Tok::Variable,
      Tok::Int,    Tok::Int,    Tok::Float,  Tok::Arrow,  Tok::Dash,
      Tok::LDisj,  Tok::RDisj,  Tok::PredNe, Tok::PredLe, Tok::PredSame,
      Tok::RParen, Tok::End};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, CommentsAndLines) {
  const auto toks = lex("a ; comment here\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, NegativeNumbersVsDash) {
  const auto toks = lex("-3 - -x");
  EXPECT_EQ(toks[0].kind, Tok::Int);
  EXPECT_EQ(toks[0].int_val, -3);
  EXPECT_EQ(toks[1].kind, Tok::Dash);
  EXPECT_EQ(toks[2].kind, Tok::Sym);  // "-x" is a symbol
}

TEST_F(ParserTest, SimpleProduction) {
  const auto p = parse(
      "(p hello (block ^name b1 ^color blue) --> (write hi))");
  EXPECT_EQ(syms_.name(p.name), "hello");
  ASSERT_EQ(p.conditions.size(), 1u);
  EXPECT_EQ(p.conditions[0].consts.size(), 2u);
  ASSERT_EQ(p.actions.size(), 1u);
  EXPECT_EQ(p.actions[0].kind, Action::Kind::Write);
}

TEST_F(ParserTest, VariablesShareIds) {
  const auto p = parse(
      "(p v (a ^x <v1> ^y <v2>) (b ^x <v1>) --> (make c ^z <v2>))");
  EXPECT_EQ(p.num_vars, 2u);
  ASSERT_EQ(p.conditions[1].vars.size(), 1u);
  EXPECT_EQ(p.conditions[1].vars[0].var, p.conditions[0].vars[0].var);
}

TEST_F(ParserTest, NegatedConditionAndPredicates) {
  const auto p = parse(
      "(p n (a ^size > 3) -(b ^size <= 10) --> (halt))");
  EXPECT_FALSE(p.conditions[0].negated);
  EXPECT_TRUE(p.conditions[1].negated);
  EXPECT_EQ(p.conditions[0].consts[0].pred, Pred::Gt);
  EXPECT_EQ(p.conditions[1].consts[0].pred, Pred::Le);
}

TEST_F(ParserTest, ConjunctiveTestGroup) {
  const auto p = parse("(p g (a ^size { > 2 < 9 <s> }) --> (halt))");
  EXPECT_EQ(p.conditions[0].consts.size(), 2u);
  EXPECT_EQ(p.conditions[0].vars.size(), 1u);
}

TEST_F(ParserTest, Disjunction) {
  const auto p = parse("(p d (a ^color << red green blue >>) --> (halt))");
  ASSERT_EQ(p.conditions[0].disjs.size(), 1u);
  EXPECT_EQ(p.conditions[0].disjs[0].options.size(), 3u);
}

TEST_F(ParserTest, Ncc) {
  const auto p = parse(
      "(p ncc (a ^v <x>) -{ (b ^v <x>) (c ^v <x>) } --> (halt))");
  ASSERT_EQ(p.conditions.size(), 2u);
  EXPECT_TRUE(p.conditions[1].is_ncc());
  EXPECT_EQ(p.conditions[1].ncc.size(), 2u);
  EXPECT_EQ(p.total_ce_count(), 3);
  EXPECT_EQ(p.positive_ce_count(), 1);
}

TEST_F(ParserTest, Actions) {
  const auto p = parse(
      "(p acts (a ^v <x>) --> (make b ^w <x>) (modify 1 ^v 2) (remove 1) "
      "(bind <y> (genatom q)) (write a <x>) (halt))");
  ASSERT_EQ(p.actions.size(), 6u);
  EXPECT_EQ(p.actions[0].kind, Action::Kind::Make);
  EXPECT_EQ(p.actions[1].kind, Action::Kind::Modify);
  EXPECT_EQ(p.actions[2].kind, Action::Kind::Remove);
  EXPECT_EQ(p.actions[3].kind, Action::Kind::Bind);
  EXPECT_EQ(p.actions[3].bind_value.kind, RhsValue::Kind::Gensym);
  EXPECT_EQ(p.actions[4].kind, Action::Kind::Write);
  EXPECT_EQ(p.actions[5].kind, Action::Kind::Halt);
}

TEST_F(ParserTest, Compute) {
  const auto p = parse(
      "(p c (a ^v <x>) --> (make b ^w (compute <x> + 1)))");
  const RhsValue& v = p.actions[0].sets[0].value;
  EXPECT_EQ(v.kind, RhsValue::Kind::Compute);
  EXPECT_EQ(v.arith.op, '+');
  EXPECT_EQ(v.arith.lhs->kind, RhsValue::Kind::Var);
  EXPECT_EQ(v.arith.rhs->kind, RhsValue::Kind::Const);
}

TEST_F(ParserTest, Literalize) {
  Parser p(syms_, schemas_, arena_);
  p.parse_file("(literalize block name color size)");
  EXPECT_EQ(schemas_.find_slot(syms_.intern("block"), syms_.intern("name")), 0);
  EXPECT_EQ(schemas_.find_slot(syms_.intern("block"), syms_.intern("size")), 2);
}

TEST_F(ParserTest, Errors) {
  EXPECT_THROW(parse("(p broken"), ParseError);
  EXPECT_THROW(parse("(p x --> (halt))"), ParseError);          // no CEs
  EXPECT_THROW(parse("(p x -(a ^v 1) --> (halt))"), ParseError);  // neg first
  EXPECT_THROW(parse("(p x (a ^v 1) --> (explode))"), ParseError);
  EXPECT_THROW(parse("(p x (a ^v << >>) --> (halt))"), ParseError);
}

TEST_F(ParserTest, RoundTripThroughPrinter) {
  const std::string src =
      "(p rt (a ^x <v1> ^size > 3) -(b ^x <v1>) "
      "-{ (c ^x <v1>) } --> (make d ^y <v1> ^z (genatom n)))";
  const auto p1 = parse(src);
  const std::string printed = production_to_text(p1, syms_, schemas_);
  const auto p2 = parse(printed);
  EXPECT_EQ(p2.conditions.size(), p1.conditions.size());
  EXPECT_EQ(p2.total_ce_count(), p1.total_ce_count());
  EXPECT_EQ(p2.actions.size(), p1.actions.size());
  EXPECT_EQ(p2.num_vars, p1.num_vars);
}

}  // namespace
}  // namespace psme
