// The lockdep checker: the rank discipline (bucket < queue < conflict-set)
// is enforced, rank inversions and self-deadlocks are caught with the full
// held-lock chain, and legal acquisition orders pass silently. The checker
// core is exercised directly so these tests run in every build
// configuration; the Spinlock integration (hooks active only when
// PSME_LOCKDEP=1, e.g. the tsan preset or Debug builds) has its own gated
// tests at the bottom.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "par/lock_order.h"
#include "par/spinlock.h"

namespace psme {
namespace {

using lockdep::Violation;

/// Captures violations instead of aborting, for the duration of a test.
class CaptureViolations {
 public:
  CaptureViolations() {
    captured().clear();
    prev_ = lockdep::set_failure_handler(&CaptureViolations::record);
  }
  ~CaptureViolations() { lockdep::set_failure_handler(prev_); }

  static std::vector<Violation>& captured() {
    static std::vector<Violation> v;
    return v;
  }

 private:
  static void record(const Violation& v) { captured().push_back(v); }
  lockdep::FailureHandler prev_ = nullptr;
};

/// Drains any locks a test left recorded so tests stay independent.
void release_all(std::initializer_list<const void*> locks) {
  for (const void* l : locks) lockdep::on_release(l);
}

TEST(LockOrder, InOrderAcquisitionIsClean) {
  CaptureViolations cap;
  int bucket = 0, queue = 0, cs = 0;
  lockdep::on_acquire(&bucket, LockRank::Bucket, "line");
  lockdep::on_acquire(&queue, LockRank::Queue, "queue");
  lockdep::on_acquire(&cs, LockRank::ConflictSet, "cs");
  EXPECT_EQ(lockdep::held_count(), 3u);
  EXPECT_TRUE(CaptureViolations::captured().empty());
  release_all({&cs, &queue, &bucket});
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_TRUE(CaptureViolations::captured().empty());
}

TEST(LockOrder, RankInversionIsCaught) {
  CaptureViolations cap;
  int queue = 0, bucket = 0;
  lockdep::on_acquire(&queue, LockRank::Queue, "queue");
  lockdep::on_acquire(&bucket, LockRank::Bucket, "line");  // inversion
  ASSERT_EQ(CaptureViolations::captured().size(), 1u);
  const Violation& v = CaptureViolations::captured().front();
  EXPECT_EQ(v.kind, Violation::Kind::RankInversion);
  EXPECT_EQ(v.attempted.addr, &bucket);
  EXPECT_EQ(v.attempted.rank, LockRank::Bucket);
  // The held chain names the already-held queue lock.
  ASSERT_EQ(v.held.size(), 1u);
  EXPECT_EQ(v.held[0].addr, &queue);
  EXPECT_EQ(v.held[0].rank, LockRank::Queue);
  release_all({&bucket, &queue});
}

TEST(LockOrder, EqualRankIsAnInversion) {
  // At most one bucket lock may be held: equal ranks violate the strict
  // ordering. This is the line-lock discipline that makes insert-then-probe
  // atomic.
  CaptureViolations cap;
  int line_a = 0, line_b = 0;
  lockdep::on_acquire(&line_a, LockRank::Bucket, "line-a");
  lockdep::on_acquire(&line_b, LockRank::Bucket, "line-b");
  ASSERT_EQ(CaptureViolations::captured().size(), 1u);
  EXPECT_EQ(CaptureViolations::captured().front().kind,
            Violation::Kind::RankInversion);
  release_all({&line_b, &line_a});
}

TEST(LockOrder, SelfDeadlockIsCaught) {
  CaptureViolations cap;
  int lock = 0;
  lockdep::on_acquire(&lock, LockRank::Queue, "queue");
  lockdep::on_acquire(&lock, LockRank::Queue, "queue");  // re-entry
  ASSERT_EQ(CaptureViolations::captured().size(), 1u);
  EXPECT_EQ(CaptureViolations::captured().front().kind,
            Violation::Kind::SelfDeadlock);
  release_all({&lock, &lock});
}

TEST(LockOrder, UnrankedLocksSkipRankChecksButNotSelfDeadlock) {
  CaptureViolations cap;
  int cs = 0, unranked = 0;
  lockdep::on_acquire(&cs, LockRank::ConflictSet, "cs");
  lockdep::on_acquire(&unranked, LockRank::Unranked, "ad-hoc");
  EXPECT_TRUE(CaptureViolations::captured().empty());
  lockdep::on_acquire(&unranked, LockRank::Unranked, "ad-hoc");
  ASSERT_EQ(CaptureViolations::captured().size(), 1u);
  EXPECT_EQ(CaptureViolations::captured().front().kind,
            Violation::Kind::SelfDeadlock);
  release_all({&unranked, &unranked, &cs});
}

TEST(LockOrder, OutOfOrderReleaseIsLegal) {
  CaptureViolations cap;
  int bucket = 0, queue = 0;
  lockdep::on_acquire(&bucket, LockRank::Bucket, "line");
  lockdep::on_acquire(&queue, LockRank::Queue, "queue");
  lockdep::on_release(&bucket);  // not LIFO
  lockdep::on_release(&queue);
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_TRUE(CaptureViolations::captured().empty());
}

TEST(LockOrder, UnheldReleaseIsCaught) {
  CaptureViolations cap;
  int never_held = 0;
  lockdep::on_release(&never_held);
  ASSERT_EQ(CaptureViolations::captured().size(), 1u);
  EXPECT_EQ(CaptureViolations::captured().front().kind,
            Violation::Kind::UnheldRelease);
}

TEST(LockOrder, HeldSetsArePerThread) {
  // A lock held on this thread does not constrain another thread.
  CaptureViolations cap;
  int cs = 0, bucket = 0;
  lockdep::on_acquire(&cs, LockRank::ConflictSet, "cs");
  std::thread other([&] {
    EXPECT_EQ(lockdep::held_count(), 0u);
    lockdep::on_acquire(&bucket, LockRank::Bucket, "line");
    lockdep::on_release(&bucket);
  });
  other.join();
  EXPECT_TRUE(CaptureViolations::captured().empty());
  release_all({&cs});
}

TEST(LockOrder, ReportNamesChainAndAttempt) {
  Violation v;
  v.kind = Violation::Kind::RankInversion;
  int a = 0, b = 0;
  v.held.push_back({&a, LockRank::Queue, "task-queue"});
  v.attempted = {&b, LockRank::Bucket, "rete-line"};
  const std::string text = lockdep::format_report(v);
  EXPECT_NE(text.find("rank inversion"), std::string::npos);
  EXPECT_NE(text.find("task-queue"), std::string::npos);
  EXPECT_NE(text.find("rete-line"), std::string::npos);
  EXPECT_NE(text.find("held-lock chain (1"), std::string::npos);
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(__SANITIZE_THREAD__)
void provoke_inversion() {
  int queue = 0;
  int bucket = 0;
  lockdep::on_acquire(&queue, LockRank::Queue, "task-queue");
  lockdep::on_acquire(&bucket, LockRank::Bucket, "rete-line");
}

TEST(LockOrderDeathTest, DefaultHandlerAbortsWithChain) {
  EXPECT_DEATH(provoke_inversion(), "rank inversion");
}
#endif

#if PSME_LOCKDEP
// Integration: real Spinlocks report through the same checker. Active in
// Debug and sanitizer builds (the tsan preset sets PSME_LOCKDEP=ON).
TEST(LockOrderIntegration, SpinlockHooksCatchInjectedInversion) {
  CaptureViolations cap;
  Spinlock queue(LockRank::Queue, "task-queue");
  Spinlock line(LockRank::Bucket, "rete-line");
  {
    SpinGuard gq(queue);
    SpinGuard gl(line);  // injected rank inversion: queue held, bucket wanted
  }
  ASSERT_EQ(CaptureViolations::captured().size(), 1u);
  const Violation& v = CaptureViolations::captured().front();
  EXPECT_EQ(v.kind, Violation::Kind::RankInversion);
  EXPECT_EQ(v.attempted.addr, &line);
  ASSERT_EQ(v.held.size(), 1u);
  EXPECT_EQ(v.held[0].addr, &queue);
}

TEST(LockOrderIntegration, SpinlockHooksTrackNormalUse) {
  CaptureViolations cap;
  Spinlock line(LockRank::Bucket, "rete-line");
  Spinlock queue(LockRank::Queue, "task-queue");
  {
    SpinGuard gl(line);
    EXPECT_EQ(lockdep::held_count(), 1u);
    SpinGuard gq(queue);  // bucket -> queue is the legal order
    EXPECT_EQ(lockdep::held_count(), 2u);
  }
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_TRUE(CaptureViolations::captured().empty());
}
#endif  // PSME_LOCKDEP

}  // namespace
}  // namespace psme
