// Differential test across all match policies: a seeded, randomized stream
// of wme adds, wme removes, run-time production additions (the chunking
// path's §5.2 state update), and run-time production REMOVALS (the COW
// unsplice + drain path) is applied identically to six engines — serial,
// Single, Multi, and three Steal tunings (2 workers each): the default,
// split-every-link (chain_split_depth 1, with the backoff ladder disabled so
// every failed sweep goes straight to the park ticket), and never-split
// (chain_split_depth 0, unbounded inline chains). After every match the
// engines must agree on:
//
//   * the conflict set, compared content-by-content (production name + wme
//     contents per CE) so timetag/arrival tie-breaks and threaded insertion
//     order normalize away;
//   * the total left-memory population of the paired hash tables;
//   * working-memory contents;
//   * the production count (chunk set).
//
// On divergence the harness shrinks: it replays ever-shorter prefixes of the
// same seed's op stream and reports the minimal failing length, so the
// printed reproducer (seed + op count) is as small as the failure allows.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "lang/parser.h"
#include "par/parallel_match.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;
using test::test_rhs_arena;

// splitmix64: tiny, deterministic, seedable — the whole op stream derives
// from the seed alone, so a failure line "seed S, N ops" fully reproduces.
struct Rng {
  uint64_t state;
  uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint32_t below(uint32_t n) { return static_cast<uint32_t>(next() % n); }
};

constexpr const char* kBaseProductions =
    "(p base-join (a ^v <x>) (b ^v <x>) --> (halt))\n"
    "(p base-neg (a ^v <x>) -(b ^v <x>) --> (halt))\n"
    "(p base-three (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))";

constexpr std::array<const char*, 6> kEngineNames = {
    "serial",      "single",          "multi",
    "steal",       "steal-splitall",  "steal-nosplit"};

/// Steal tuning for engine index 3..5: default, split-every-link with the
/// backoff ladder off (parks immediately after one failed sweep — maximal
/// park/unpark churn), never-split.
StealTuning steal_tuning(size_t i) {
  StealTuning t;
  if (i == 4) {
    t.chain_split_depth = 1;
    t.backoff_park_sweeps = 0;
  } else if (i == 5) {
    t.chain_split_depth = 0;
  }
  return t;
}

/// Run-time production templates: a plain join, a triple, a negation, and a
/// six-CE chain whose full tokens spill to the arena.
std::string chunk_text(uint32_t which, const std::string& name) {
  switch (which % 4) {
    case 0: return "(p " + name + " (a ^v <x>) (b ^v <x>) --> (halt))";
    case 1:
      return "(p " + name + " (b ^v <x>) (c ^v <x>) (a ^v <x>) --> (halt))";
    case 2: return "(p " + name + " (c ^v <x>) -(a ^v <x>) --> (halt))";
    default:
      return "(p " + name +
             " (a ^v <x>) (b ^v <x>) (c ^v <x>)"
             " (a ^v <y>) (b ^v <y>) (c ^v <y>) --> (halt))";
  }
}

std::multiset<std::string> wm_fingerprint(Engine& e) {
  std::multiset<std::string> out;
  for (const Wme* w : e.wm().live()) {
    out.insert(w->to_string(e.syms(), e.schemas()));
  }
  return out;
}

/// Compares the six engines; empty string means they agree.
std::string compare_engines(std::array<std::unique_ptr<Engine>, 6>& es) {
  const auto cs0 = cs_fingerprint(*es[0]);
  const auto wm0 = wm_fingerprint(*es[0]);
  const size_t left0 = es[0]->state().tables.total_left_entries();
  const size_t prods0 = es[0]->productions().size();
  for (size_t i = 1; i < es.size(); ++i) {
    if (cs_fingerprint(*es[i]) != cs0) {
      return std::string("conflict set of ") + kEngineNames[i] +
             " diverges from serial (" +
             std::to_string(cs_fingerprint(*es[i]).size()) + " vs " +
             std::to_string(cs0.size()) + " instantiations)";
    }
    if (es[i]->state().tables.total_left_entries() != left0) {
      return std::string("left-memory population of ") + kEngineNames[i] +
             " diverges from serial (" +
             std::to_string(es[i]->state().tables.total_left_entries()) +
             " vs " + std::to_string(left0) + ")";
    }
    if (wm_fingerprint(*es[i]) != wm0) {
      return std::string("working memory of ") + kEngineNames[i] +
             " diverges from serial";
    }
    if (es[i]->productions().size() != prods0) {
      return std::string("chunk set of ") + kEngineNames[i] +
             " diverges from serial";
    }
  }
  return "";
}

/// Replays the first `max_ops` ops of `seed`'s stream. Returns "" on
/// agreement; otherwise a description, with *fail_op set to the op index at
/// which the divergence was observed.
std::string run_seed(uint64_t seed, size_t max_ops, size_t* fail_op,
                     size_t* activity = nullptr) {
  std::array<std::unique_ptr<Engine>, 6> es;
  for (size_t i = 0; i < es.size(); ++i) {
    EngineOptions opts;
    opts.record_traces = false;
    if (i > 0) {
      opts.match_workers = 2;
      opts.match_policy = i == 1   ? TaskQueueSet::Policy::Single
                          : i == 2 ? TaskQueueSet::Policy::Multi
                                   : TaskQueueSet::Policy::Steal;
      opts.steal = steal_tuning(i);
    }
    es[i] = std::make_unique<Engine>(opts);
    es[i]->load(kBaseProductions);
  }

  constexpr std::array<const char*, 3> kClasses = {"a", "b", "c"};
  Rng rng{seed};
  size_t chunks = 0;

  for (size_t op = 0; op < max_ops; ++op) {
    const uint32_t kind = rng.below(100);
    if (kind < 40) {
      const std::string text = std::string("(") + kClasses[rng.below(3)] +
                               " ^v " + std::to_string(rng.below(4)) + ")";
      for (auto& e : es) e->add_wme_text(text);
    } else if (kind < 65) {
      // Remove the k-th live wme. live() is timetag-ordered and the engines
      // share the op history, so index k names the same wme in all four.
      const size_t n_live = es[0]->wm().live().size();
      if (n_live == 0) continue;
      const uint32_t k = rng.below(static_cast<uint32_t>(n_live));
      for (auto& e : es) e->remove_wme(e->wm().live()[k]);
    } else if (kind < 75) {
      // Run-time production addition. Flush pending changes first so the
      // §5.2 update sees a WM the network has already matched.
      const std::string text = chunk_text(
          rng.below(4), "chunk-" + std::to_string(seed) + "-" +
                            std::to_string(chunks++));
      for (auto& e : es) {
        e->match();
        Parser parser(e->syms(), e->schemas(), test_rhs_arena());
        auto parsed = parser.parse_file(text);
        e->add_production_runtime(std::move(parsed[0]));
      }
      const std::string diff = compare_engines(es);
      if (!diff.empty()) {
        *fail_op = op;
        return diff;
      }
    } else if (kind < 85) {
      // Run-time production removal: unsplice the k-th production (base and
      // run-time-added ones alike — productions() is in identical order on
      // every engine). The drain must leave all six engines agreeing on CS,
      // left-memory population, WM and production set.
      const size_t n_prods = es[0]->productions().size();
      if (n_prods == 0) continue;
      const uint32_t k = rng.below(static_cast<uint32_t>(n_prods));
      for (auto& e : es) {
        e->match();
        e->remove_production_runtime(e->productions()[k]);
      }
      const std::string diff = compare_engines(es);
      if (!diff.empty()) {
        *fail_op = op;
        return diff;
      }
    } else {
      for (auto& e : es) e->match();
      const std::string diff = compare_engines(es);
      if (!diff.empty()) {
        *fail_op = op;
        return diff;
      }
    }
  }

  for (auto& e : es) e->match();
  const std::string diff = compare_engines(es);
  if (!diff.empty()) *fail_op = max_ops;
  if (activity != nullptr) *activity += cs_fingerprint(*es[0]).size();
  return diff;
}

TEST(PolicyDifferential, AllPoliciesAgreeAcrossSeeds) {
  constexpr uint64_t kSeeds = 220;
  constexpr size_t kOpsPerSeed = 30;
  size_t activity = 0;  // total instantiations seen (harness sanity)
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    size_t fail_op = 0;
    const std::string what = run_seed(seed, kOpsPerSeed, &fail_op, &activity);
    if (what.empty()) continue;

    // Shrink: find the shortest prefix of this seed's stream that fails.
    size_t min_len = fail_op + 1;
    std::string min_what = what;
    for (size_t len = 1; len <= fail_op; ++len) {
      size_t ignored = 0;
      const std::string w = run_seed(seed, len, &ignored);
      if (!w.empty()) {
        min_len = len;
        min_what = w;
        break;
      }
    }
    FAIL() << "policy divergence: seed " << seed << ", minimal prefix "
           << min_len << " ops: " << min_what;
  }
  // The streams must actually produce matches; an all-empty comparison
  // would pass vacuously and test nothing.
  EXPECT_GT(activity, 100u);
}

}  // namespace
}  // namespace psme
