// Threaded matcher: final match state must equal the serial executor's,
// under both queue policies and across worker counts; queue statistics are
// plumbed through.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "par/parallel_match.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;

/// Builds the activation seeds for a batch of wme changes (mirrors
/// Engine::match, which is serial-only).
class SeedCollector final : public ExecContext {
 public:
  void emit(Activation&& a) override { seeds.push_back(std::move(a)); }
  std::vector<Activation> seeds;
};

std::string workload_productions() {
  return "(p j2 (a ^v <x>) (b ^v <x>) --> (halt))"
         "(p j3 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
         "(p neg (a ^v <x>) -(blocker ^v <x>) --> (halt))"
         "(p cross (a ^v <x>) (c ^w <y>) --> (halt))";
}

void add_workload_wmes(Engine& e, int n) {
  for (int i = 0; i < n; ++i) {
    const std::string v = std::to_string(i % 7);
    e.add_wme_text("(a ^v " + v + ")");
    if (i % 2 == 0) e.add_wme_text("(b ^v " + v + ")");
    if (i % 3 == 0) e.add_wme_text("(c ^v " + v + " ^w " + v + ")");
    if (i % 5 == 0) e.add_wme_text("(blocker ^v " + v + ")");
  }
}

struct ParallelCase {
  size_t workers;
  TaskQueueSet::Policy policy;
};

class ParallelEquivalence : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelEquivalence, MatchesSerialResult) {
  const auto param = GetParam();

  Engine serial;
  serial.load(workload_productions());
  add_workload_wmes(serial, 20);
  serial.match();

  Engine par;
  par.load(workload_productions());
  add_workload_wmes(par, 20);
  // Drain the pending changes through the threaded matcher instead of
  // Engine::match().
  SeedCollector sc;
  for (const Wme* w : par.wm().live()) par.net().inject(w, true, sc);
  ParallelMatcher matcher(par.net(), param.workers, param.policy);
  const ParallelStats st = matcher.run_cycle(std::move(sc.seeds));
  EXPECT_GT(st.tasks, 0u);

  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par));
  EXPECT_EQ(serial.net().tables().total_left_entries(),
            par.net().tables().total_left_entries());
  EXPECT_EQ(serial.net().tables().total_right_entries(),
            par.net().tables().total_right_entries());
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndPolicies, ParallelEquivalence,
    ::testing::Values(ParallelCase{1, TaskQueueSet::Policy::Single},
                      ParallelCase{2, TaskQueueSet::Policy::Single},
                      ParallelCase{4, TaskQueueSet::Policy::Single},
                      ParallelCase{8, TaskQueueSet::Policy::Single},
                      ParallelCase{2, TaskQueueSet::Policy::Multi},
                      ParallelCase{4, TaskQueueSet::Policy::Multi},
                      ParallelCase{8, TaskQueueSet::Policy::Multi},
                      ParallelCase{13, TaskQueueSet::Policy::Multi}));

TEST(TaskQueue, SinglePolicyUsesOneQueue) {
  TaskQueueSet q(TaskQueueSet::Policy::Single, 8);
  EXPECT_EQ(q.queue_count(), 1u);
  q.push(3, Activation{});
  Activation a;
  EXPECT_TRUE(q.pop(5, a));
  EXPECT_FALSE(q.pop(5, a));
  EXPECT_GE(q.failed_pops(), 1u);
}

TEST(TaskQueue, MultiPolicyStealsAcrossQueues) {
  TaskQueueSet q(TaskQueueSet::Policy::Multi, 4);
  EXPECT_EQ(q.queue_count(), 4u);
  q.push(0, Activation{});  // lands in queue 0
  Activation a;
  EXPECT_TRUE(q.pop(2, a));  // worker 2 scans and steals from queue 0
}

TEST(TaskQueue, FifoWithinAQueue) {
  TaskQueueSet q(TaskQueueSet::Policy::Single, 1);
  Activation a;
  a.node = 1;
  q.push(0, std::move(a));
  Activation b;
  b.node = 2;
  q.push(0, std::move(b));
  Activation out;
  ASSERT_TRUE(q.pop(0, out));
  EXPECT_EQ(out.node, 1u);
  ASSERT_TRUE(q.pop(0, out));
  EXPECT_EQ(out.node, 2u);
}

TEST(Spinlock, CountsAcquires) {
  Spinlock l;
  { SpinGuard g(l); }
  { SpinGuard g(l); }
  EXPECT_EQ(l.total_acquires(), 2u);
  l.reset_stats();
  EXPECT_EQ(l.total_acquires(), 0u);
}

TEST(ParallelMatcher, DeleteHeavyCycleMatchesSerial) {
  // Adds followed by deletes in a single cycle: the delete-token path under
  // concurrency.
  auto build = [](Engine& e) {
    e.load(workload_productions());
    add_workload_wmes(e, 12);
    e.match();  // settle adds serially in both engines
  };
  Engine serial, par;
  build(serial);
  build(par);

  // Remove every third a-wme.
  auto remove_some = [](Engine& e) -> std::vector<const Wme*> {
    std::vector<const Wme*> removed;
    int i = 0;
    for (const Wme* w : e.wm().live()) {
      if (e.syms().name(w->cls) == "a" && ++i % 3 == 0) removed.push_back(w);
    }
    return removed;
  };

  const auto sr = remove_some(serial);
  for (const Wme* w : sr) serial.remove_wme(w);
  serial.match();

  const auto pr = remove_some(par);
  SeedCollector sc;
  for (const Wme* w : pr) {
    par.net().inject(w, false, sc);
  }
  ParallelMatcher matcher(par.net(), 4, TaskQueueSet::Policy::Multi);
  matcher.run_cycle(std::move(sc.seeds));
  for (const Wme* w : pr) par.wm().remove(w);
  par.wm().end_cycle();

  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par));
}

}  // namespace
}  // namespace psme
