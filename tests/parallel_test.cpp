// Threaded matcher: final match state must equal the serial executor's,
// under both queue policies and across worker counts; queue statistics are
// plumbed through.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "lang/parser.h"
#include "par/parallel_match.h"
#include "rete/update.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;

/// Builds the activation seeds for a batch of wme changes (mirrors
/// Engine::match, which is serial-only).
class SeedCollector final : public ExecContext {
 public:
  void emit(Activation&& a) override { seeds.push_back(std::move(a)); }
  std::vector<Activation> seeds;
};

std::string workload_productions() {
  return "(p j2 (a ^v <x>) (b ^v <x>) --> (halt))"
         "(p j3 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
         "(p neg (a ^v <x>) -(blocker ^v <x>) --> (halt))"
         "(p cross (a ^v <x>) (c ^w <y>) --> (halt))";
}

void add_workload_wmes(Engine& e, int n) {
  for (int i = 0; i < n; ++i) {
    const std::string v = std::to_string(i % 7);
    e.add_wme_text("(a ^v " + v + ")");
    if (i % 2 == 0) e.add_wme_text("(b ^v " + v + ")");
    if (i % 3 == 0) e.add_wme_text("(c ^v " + v + " ^w " + v + ")");
    if (i % 5 == 0) e.add_wme_text("(blocker ^v " + v + ")");
  }
}

struct ParallelCase {
  size_t workers;
  TaskQueueSet::Policy policy;
  StealTuning tuning = {};
};

/// Split-every-link with the backoff ladder off: every chain link round-trips
/// through the deque and every failed sweep goes straight to the park ticket
/// (the maximal-churn corner of the tuning space).
StealTuning split_heavy() {
  StealTuning t;
  t.chain_split_depth = 1;
  t.backoff_park_sweeps = 0;
  return t;
}

/// Unbounded inline chains: a dependent chain never leaves its worker.
StealTuning never_split() {
  StealTuning t;
  t.chain_split_depth = 0;
  return t;
}

class ParallelEquivalence : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelEquivalence, MatchesSerialResult) {
  const auto param = GetParam();

  Engine serial;
  serial.load(workload_productions());
  add_workload_wmes(serial, 20);
  serial.match();

  Engine par;
  par.load(workload_productions());
  add_workload_wmes(par, 20);
  // Drain the pending changes through the threaded matcher instead of
  // Engine::match().
  SeedCollector sc;
  for (const Wme* w : par.wm().live()) par.net().inject(w, true, sc);
  ParallelMatcher matcher(par.net(), par.state(), param.workers, param.policy, nullptr,
                          param.tuning);
  const ParallelStats st = matcher.run_cycle(std::move(sc.seeds));
  EXPECT_GT(st.tasks, 0u);
  if (param.policy == TaskQueueSet::Policy::Steal && param.workers > 1) {
    if (param.tuning.chain_split_depth == 1) {
      EXPECT_EQ(st.chain_inline, 0u);  // every link split to the deque
    } else if (param.tuning.chain_split_depth == 0) {
      EXPECT_EQ(st.chain_splits, 0u);  // chains never split
    }
  }

  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par));
  EXPECT_EQ(serial.state().tables.total_left_entries(),
            par.state().tables.total_left_entries());
  EXPECT_EQ(serial.state().tables.total_right_entries(),
            par.state().tables.total_right_entries());
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndPolicies, ParallelEquivalence,
    ::testing::Values(ParallelCase{1, TaskQueueSet::Policy::Single},
                      ParallelCase{2, TaskQueueSet::Policy::Single},
                      ParallelCase{4, TaskQueueSet::Policy::Single},
                      ParallelCase{8, TaskQueueSet::Policy::Single},
                      ParallelCase{2, TaskQueueSet::Policy::Multi},
                      ParallelCase{4, TaskQueueSet::Policy::Multi},
                      ParallelCase{8, TaskQueueSet::Policy::Multi},
                      ParallelCase{13, TaskQueueSet::Policy::Multi},
                      ParallelCase{1, TaskQueueSet::Policy::Steal},
                      ParallelCase{2, TaskQueueSet::Policy::Steal},
                      ParallelCase{4, TaskQueueSet::Policy::Steal},
                      ParallelCase{8, TaskQueueSet::Policy::Steal},
                      ParallelCase{13, TaskQueueSet::Policy::Steal},
                      ParallelCase{2, TaskQueueSet::Policy::Steal,
                                   split_heavy()},
                      ParallelCase{4, TaskQueueSet::Policy::Steal,
                                   split_heavy()},
                      ParallelCase{8, TaskQueueSet::Policy::Steal,
                                   split_heavy()},
                      ParallelCase{4, TaskQueueSet::Policy::Steal,
                                   never_split()},
                      ParallelCase{8, TaskQueueSet::Policy::Steal,
                                   never_split()}));

TEST(TaskQueue, SinglePolicyUsesOneQueue) {
  TaskQueueSet q(TaskQueueSet::Policy::Single, 8);
  EXPECT_EQ(q.queue_count(), 1u);
  q.push(3, Activation{});
  Activation a;
  EXPECT_TRUE(q.pop(5, a));
  EXPECT_FALSE(q.pop(5, a));
  EXPECT_GE(q.failed_pops(), 1u);
}

TEST(TaskQueue, MultiPolicyStealsAcrossQueues) {
  TaskQueueSet q(TaskQueueSet::Policy::Multi, 4);
  EXPECT_EQ(q.queue_count(), 4u);
  q.push(0, Activation{});  // lands in queue 0
  Activation a;
  EXPECT_TRUE(q.pop(2, a));  // worker 2 scans and steals from queue 0
}

TEST(TaskQueue, FifoWithinAQueue) {
  TaskQueueSet q(TaskQueueSet::Policy::Single, 1);
  Activation a;
  a.node = 1;
  q.push(0, std::move(a));
  Activation b;
  b.node = 2;
  q.push(0, std::move(b));
  Activation out;
  ASSERT_TRUE(q.pop(0, out));
  EXPECT_EQ(out.node, 1u);
  ASSERT_TRUE(q.pop(0, out));
  EXPECT_EQ(out.node, 2u);
}

TEST(TaskQueue, PushBatchKeepsFifoUnderOneAcquire) {
  TaskQueueSet q(TaskQueueSet::Policy::Multi, 4);
  const uint64_t before = q.lock_acquires();
  std::vector<Activation> batch(3);
  batch[0].node = 10;
  batch[1].node = 11;
  batch[2].node = 12;
  q.push_batch(2, std::move(batch));
  // The whole batch went in under a single lock acquisition...
  EXPECT_EQ(q.lock_acquires(), before + 1);
  // ...and drains in FIFO order from the home queue.
  Activation out;
  ASSERT_TRUE(q.pop(2, out));
  EXPECT_EQ(out.node, 10u);
  ASSERT_TRUE(q.pop(2, out));
  EXPECT_EQ(out.node, 11u);
  ASSERT_TRUE(q.pop(2, out));
  EXPECT_EQ(out.node, 12u);
  EXPECT_FALSE(q.pop(2, out));

  // Empty batches do not touch the lock.
  const uint64_t mid = q.lock_acquires();
  std::vector<Activation> empty;
  q.push_batch(0, std::move(empty));
  EXPECT_EQ(q.lock_acquires(), mid);
}

TEST(Spinlock, CountsAcquires) {
  Spinlock l;
  { SpinGuard g(l); }
  { SpinGuard g(l); }
  EXPECT_EQ(l.total_acquires(), 2u);
  l.reset_stats();
  EXPECT_EQ(l.total_acquires(), 0u);
}

TEST(ParallelMatcher, DeleteHeavyCycleMatchesSerial) {
  // Adds followed by deletes in a single cycle: the delete-token path under
  // concurrency.
  auto build = [](Engine& e) {
    e.load(workload_productions());
    add_workload_wmes(e, 12);
    e.match();  // settle adds serially in both engines
  };
  Engine serial, par;
  build(serial);
  build(par);

  // Remove every third a-wme.
  auto remove_some = [](Engine& e) -> std::vector<const Wme*> {
    std::vector<const Wme*> removed;
    int i = 0;
    for (const Wme* w : e.wm().live()) {
      if (e.syms().name(w->cls) == "a" && ++i % 3 == 0) removed.push_back(w);
    }
    return removed;
  };

  const auto sr = remove_some(serial);
  for (const Wme* w : sr) serial.remove_wme(w);
  serial.match();

  const auto pr = remove_some(par);
  SeedCollector sc;
  for (const Wme* w : pr) {
    par.net().inject(w, false, sc);
  }
  ParallelMatcher matcher(par.net(), par.state(), 4,
                          TaskQueueSet::Policy::Multi);
  matcher.run_cycle(std::move(sc.seeds));
  for (const Wme* w : pr) par.wm().remove(w);
  par.wm().end_cycle();

  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par));
}

TEST(ParallelMatcher, PersistentMatcherReusedAcrossCycles) {
  // One Steal matcher (one worker pool, one deque set) drains several cycles
  // in a row; the serial engine is the oracle after each. The lifetime
  // counters prove it is the same scheduler instance doing the work.
  Engine serial, par;
  serial.load(workload_productions());
  par.load(workload_productions());
  ParallelMatcher matcher(par.net(), par.state(), 4);  // policy defaults to Steal
  EXPECT_EQ(matcher.policy(), TaskQueueSet::Policy::Steal);

  for (int round = 0; round < 3; ++round) {
    add_workload_wmes(serial, 8);
    serial.match();

    std::vector<const Wme*> before = par.wm().live();
    add_workload_wmes(par, 8);
    SeedCollector sc;
    for (const Wme* w : par.wm().live()) {
      bool is_new = true;
      for (const Wme* b : before) {
        if (b == w) {
          is_new = false;
          break;
        }
      }
      if (is_new) par.net().inject(w, true, sc);
    }
    const ParallelStats st = matcher.run_cycle(std::move(sc.seeds));
    EXPECT_GT(st.tasks, 0u);
    ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(par))
        << "round " << round;
  }
  EXPECT_EQ(matcher.lifetime_cycles(), 3u);
  EXPECT_GT(matcher.lifetime_tasks(), 0u);
}

/// Runtime-adds `src` (one production) to `e` and drains the three §5.2
/// update phases through `matcher`.
void runtime_add_through(Engine& e, ParallelMatcher& matcher, RhsArena& arena,
                         std::vector<std::unique_ptr<Production>>& owned,
                         const std::string& src) {
  Parser parser(e.syms(), e.schemas(), arena);
  auto parsed = parser.parse_file(src);
  ASSERT_EQ(parsed.size(), 1u);
  owned.push_back(std::make_unique<Production>(std::move(parsed.front())));
  const CompiledProduction cp = e.builder().add_production(*owned.back());
  const auto wm_snapshot = e.wm().live();
  matcher.run_update(update_alpha_seeds(e.net(), cp, wm_snapshot),
                     {cp.first_new_id, /*suppress_alpha_left=*/true});
  matcher.run_update(update_right_seeds(e.net(), e.state(), cp), {cp.first_new_id, false});
  matcher.run_update(update_left_seeds(e.net(), e.state(), cp), {cp.first_new_id, false});
}

TEST(SchedulerEquivalence, StealEqualsMultiEqualsSerialThroughRuntimeAdd) {
  // Five engines walk the same script — wme wave, §5.2 runtime production
  // add, another wme wave — one drained serially (the oracle), one through a
  // Multi matcher, and three through Steal matchers at the corners of the
  // chain-splitting tuning space (default, split-every-link, never-split).
  // All must agree on the conflict set and the memory-table entry counts at
  // every checkpoint.
  const std::string late = "(p late-j2 (b ^v <x>) (c ^v <x>) --> (halt))";

  Engine serial, multi, steal, split, nosplit;
  for (Engine* e : {&serial, &multi, &steal, &split, &nosplit}) {
    e->load(workload_productions());
  }
  ParallelMatcher m_multi(multi.net(), multi.state(), 8, TaskQueueSet::Policy::Multi);
  ParallelMatcher m_steal(steal.net(), steal.state(), 8, TaskQueueSet::Policy::Steal);
  ParallelMatcher m_split(split.net(), split.state(), 8, TaskQueueSet::Policy::Steal,
                          nullptr, split_heavy());
  ParallelMatcher m_nosplit(nosplit.net(), nosplit.state(), 8, TaskQueueSet::Policy::Steal,
                            nullptr, never_split());

  auto parallel_wave = [&](Engine& e, ParallelMatcher& m, int n) {
    std::vector<const Wme*> before = e.wm().live();
    add_workload_wmes(e, n);
    SeedCollector sc;
    for (const Wme* w : e.wm().live()) {
      bool is_new = true;
      for (const Wme* b : before) {
        if (b == w) {
          is_new = false;
          break;
        }
      }
      if (is_new) e.net().inject(w, true, sc);
    }
    return m.run_cycle(std::move(sc.seeds));
  };

  // Wave 1.
  add_workload_wmes(serial, 15);
  serial.match();
  parallel_wave(multi, m_multi, 15);
  const ParallelStats st1 = parallel_wave(steal, m_steal, 15);
  parallel_wave(split, m_split, 15);
  parallel_wave(nosplit, m_nosplit, 15);
  EXPECT_GT(st1.tasks, 0u);
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(multi));
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(steal));
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(split));
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(nosplit));

  // §5.2 runtime add, drained through each scheduler.
  RhsArena arena;
  std::vector<std::unique_ptr<Production>> owned;
  {
    Parser parser(serial.syms(), serial.schemas(), arena);
    auto parsed = parser.parse_file(late);
    ASSERT_EQ(parsed.size(), 1u);
    owned.push_back(std::make_unique<Production>(std::move(parsed.front())));
    const CompiledProduction cp =
        serial.builder().add_production(*owned.back());
    run_update_serial(serial.net(), serial.state(), cp,
                      serial.wm().live());
  }
  runtime_add_through(multi, m_multi, arena, owned, late);
  runtime_add_through(steal, m_steal, arena, owned, late);
  runtime_add_through(split, m_split, arena, owned, late);
  runtime_add_through(nosplit, m_nosplit, arena, owned, late);
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(multi));
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(steal));
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(split));
  ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(nosplit));

  // Wave 2 over the extended network.
  add_workload_wmes(serial, 9);
  serial.match();
  parallel_wave(multi, m_multi, 9);
  parallel_wave(steal, m_steal, 9);
  parallel_wave(split, m_split, 9);
  parallel_wave(nosplit, m_nosplit, 9);
  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(multi));
  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(steal));
  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(split));
  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(nosplit));
  for (Engine* e : {&steal, &split, &nosplit}) {
    EXPECT_EQ(serial.state().tables.total_left_entries(),
              e->state().tables.total_left_entries());
    EXPECT_EQ(serial.state().tables.total_right_entries(),
              e->state().tables.total_right_entries());
  }
}

TEST(EngineIntegration, ParallelEngineRunMatchesSerial) {
  // The whole Engine loop (match via the persistent in-Engine matcher)
  // against the serial engine as oracle. match_workers flips the Engine's
  // match() and §5.2 runtime-add onto the ParallelMatcher.
  EngineOptions popt;
  popt.match_workers = 4;
  popt.match_policy = TaskQueueSet::Policy::Steal;
  popt.record_traces = false;

  Engine serial;
  Engine par(popt);
  for (Engine* e : {&serial, &par}) {
    e->load(workload_productions());
    add_workload_wmes(*e, 20);
    e->match();
  }
  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par));
  ASSERT_NE(par.parallel_matcher(), nullptr);
  EXPECT_EQ(par.parallel_matcher()->policy(), TaskQueueSet::Policy::Steal);
  EXPECT_GT(par.last_parallel_stats().tasks, 0u);
  EXPECT_GT(par.parallel_matcher()->lifetime_cycles(), 0u);

  // Runtime add through Engine::add_production_runtime (three-phase parallel
  // drain inside the Engine).
  const std::string late = "(p late-j2 (b ^v <x>) (c ^v <x>) --> (halt))";
  RhsArena arena;  // outlives the adopted productions in both engines
  auto add_late = [&](Engine& e) {
    Parser parser(e.syms(), e.schemas(), arena);
    auto parsed = parser.parse_file(late);
    ASSERT_EQ(parsed.size(), 1u);
    // Engine::add_production_runtime adopts the AST into its own store.
    e.add_production_runtime(std::move(parsed.front()));
  };
  add_late(serial);
  add_late(par);
  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par));

  // One more cycle to confirm the persistent matcher keeps working.
  add_workload_wmes(serial, 6);
  serial.match();
  add_workload_wmes(par, 6);
  par.match();
  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par));
}

}  // namespace
}  // namespace psme
