// Churn soak: 10^4 transient-query add/match/remove cycles across two agent
// sessions over one shared CompiledNetwork, with every allocator's
// high-water mark asserted FLAT after warmup and the verifier run clean at
// the end. This is the leak/fragmentation oracle for run-time removal:
//
//   * live_node_count, alpha_mem_count, jumptable size — flat (node-id
//     tombstoning with slot/mem-index recycling: the network's footprint
//     must not grow with query traffic, only nodes_.size() may, by design);
//   * token-arena live chunks, conflict-set slab allocations, alpha-wme and
//     right-entry pool chunk allocations — flat after warmup (every drained
//     entry's storage is recycled, never strand-allocated);
//   * zero verifier findings per agent (no dangling refs, no stale entries).
//
// Runs under the tsan preset too (stress label): the drains and the COW
// publishes are exercised with a threaded steal matcher underneath.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/verify.h"
#include "engine/agent_group.h"
#include "engine/engine.h"
#include "query/query.h"

namespace psme {
namespace {

// 10^4 cycles total across both sessions in release-style runs; the
// sanitizer/debug lanes get a reduced-but-still-soaking count so the suite
// stays inside CI budgets (PSME_NET_VERIFY re-verifies the network on every
// one of the 2 * cycles add/remove publishes).
#if PSME_NET_VERIFY
constexpr int kCyclesPerAgent = 1250;  // 2500 queries = 5000 publishes
#else
constexpr int kCyclesPerAgent = 5000;  // 10^4 queries
#endif

const char* cue_for(int cycle) {
  switch (cycle % 4) {
    case 0:
      return "(block ^name <b> ^color blue) (block ^on <b> ^name <t>)";
    case 1:
      return "(block ^name <b> ^color blue) (block ^on <b> ^name <t>) "
             "(gripper ^holding <t>)";
    case 2:
      return "(gripper ^state free) (block ^name <b>)";
    default:
      return "(pyramid ^name <p>) (slab ^under <p>)";
  }
}

TEST(QueryChurn, TenThousandCyclesStayFlat) {
  AgentGroupOptions gopts;
  gopts.workers = 2;
  gopts.policy = TaskQueueSet::Policy::Steal;
  AgentGroup group(gopts);
  Engine& a0 = group.add_agent();
  Engine& a1 = group.add_agent();
  group.load(
      "(p resident1 (block ^name <b> ^color blue) (block ^on <b>) "
      "--> (halt))"
      "(p resident2 (gripper ^state free) (block ^name <b>) --> (halt))");

  for (int a = 0; a < 2; ++a) {
    Engine& e = group.agent(static_cast<size_t>(a));
    const std::string off = std::to_string(a * 100);
    e.add_wme_text("(block ^name b" + off + " ^color blue)");
    e.add_wme_text("(block ^name c" + off + " ^color red ^on b" + off + ")");
    e.add_wme_text("(block ^name d" + off + " ^color green ^on c" + off +
                   ")");
    e.add_wme_text("(gripper ^name g" + off + " ^state free)");
  }
  group.step_all();

  QuerySession q0(a0), q1(a1);

  // Warmup: one full cue rotation per agent, so every pool/slab/slot the
  // steady state needs has been allocated once.
  for (int c = 0; c < 8; ++c) {
    q0.ask(cue_for(c));
    q1.ask(cue_for(c + 1));
  }

  const uint32_t live_nodes = a0.net().live_node_count();
  const uint32_t alpha_mems = a0.net().alpha_mem_count();
  const size_t jt_slots = a0.net().jumptable().size();
  const uint32_t node_ids = a0.net().node_count();
  const uint64_t arena0 = a0.state().arena.stats().chunks_live;
  const uint64_t arena1 = a1.state().arena.stats().chunks_live;
  const uint64_t slab0 = a0.cs().slab_allocs();
  const uint64_t slab1 = a1.cs().slab_allocs();
  const uint64_t alpha_pool0 = a0.state().alpha_pool.chunk_allocs();
  const uint64_t alpha_pool1 = a1.state().alpha_pool.chunk_allocs();
  const uint64_t right0 = a0.state().tables.right_pool().chunk_allocs();
  const uint64_t right1 = a1.state().tables.right_pool().chunk_allocs();

  for (int c = 0; c < kCyclesPerAgent; ++c) {
    const QueryResult r0 = q0.ask(cue_for(c));
    const QueryResult r1 = q1.ask(cue_for(c + 1));
    // Spot-check semantics stay right under churn (both episodes hold a
    // full stack, so the rotation's full cue always matches).
    if (c % 4 == 0) {
      ASSERT_TRUE(r0.full());
      ASSERT_EQ(r1.score, 2u);
    }
  }

  // Network footprint: exactly flat.
  EXPECT_EQ(a0.net().live_node_count(), live_nodes);
  EXPECT_EQ(a0.net().alpha_mem_count(), alpha_mems);
  EXPECT_EQ(a0.net().jumptable().size(), jt_slots);
  // Node ids tombstone (grow) by design; everything they index stays flat.
  EXPECT_GT(a0.net().node_count(), node_ids);

  // Per-agent allocators: no growth past the warmed-up high-water mark.
  EXPECT_EQ(a0.state().arena.stats().chunks_live, arena0);
  EXPECT_EQ(a1.state().arena.stats().chunks_live, arena1);
  EXPECT_EQ(a0.cs().slab_allocs(), slab0);
  EXPECT_EQ(a1.cs().slab_allocs(), slab1);
  EXPECT_EQ(a0.state().alpha_pool.chunk_allocs(), alpha_pool0);
  EXPECT_EQ(a1.state().alpha_pool.chunk_allocs(), alpha_pool1);
  EXPECT_EQ(a0.state().tables.right_pool().chunk_allocs(), right0);
  EXPECT_EQ(a1.state().tables.right_pool().chunk_allocs(), right1);

  // The removal oracle, per agent.
  const auto rep0 = a0.verify_network();
  EXPECT_TRUE(rep0.ok()) << rep0.to_string();
  const auto rep1 = a1.verify_network();
  EXPECT_TRUE(rep1.ok()) << rep1.to_string();

  // Residents still work after 10^4 unsplice/publish cycles around them.
  a0.add_wme_text("(block ^name fresh ^color blue)");
  a0.add_wme_text("(block ^name topper ^on fresh)");
  a0.match();
  bool resident_fired = false;
  for (const Instantiation* inst : a0.cs().all()) {
    const auto name = a0.syms().name(inst->pnode->prod->name);
    if (name == "resident1") resident_fired = true;
  }
  EXPECT_TRUE(resident_fired);
}

}  // namespace
}  // namespace psme
