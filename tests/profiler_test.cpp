// Runtime match profiler (obs/profiler.h + analysis/profile_report.h):
//
//   * shard merge vs the serial oracle — the same monotone-add workload run
//     serial and 4-worker-steal must produce IDENTICAL per-node activation
//     and emit counts (counts are schedule-invariant; only timing samples
//     vary), and the merged totals must be internally consistent;
//   * sampling bounds — shift s times exactly ceil(n / 2^s) activations on
//     the serial path (one shard, contiguous ticks) and within ±workers of
//     n / 2^s across parallel shards;
//   * per-agent isolation — an idle agent session in a profiled AgentGroup
//     accumulates ZERO activations while its busy sibling accumulates all;
//   * flight ring — overflow keeps exactly the last `capacity` snapshots in
//     order, and dump() round-trips byte-identically with to_json();
//   * report determinism — profile_json/correlation_json are byte-stable,
//     and parse_profile_json round-trips what profile_json emitted.
//
// The oracle workload is deliberately negation-free: with a negation, two
// same-cycle seeds can insert-then-retract under one schedule and never
// insert under another, making task COUNTS schedule-dependent. Monotone
// positive joins execute a schedule-invariant task multiset.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cost_lint.h"
#include "analysis/profile_report.h"
#include "engine/agent_group.h"
#include "engine/engine.h"
#include "obs/profiler.h"

namespace psme {
namespace {

std::string join_productions() {
  return "(p j2 (a ^v <x>) (b ^v <x>) --> (halt))"
         "(p j3 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
         "(p cross (a ^v <x>) (c ^w <y>) --> (halt))";
}

/// Monotone add-only wave script (no removals, no negation — see file
/// comment): every engine running this sees the same task multiset.
void run_waves(Engine& e, int rounds, int wave) {
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < wave; ++i) {
      const std::string v = std::to_string((i + r * 3) % 7);
      e.add_wme_text("(a ^v " + v + ")");
      if (i % 2 == 0) e.add_wme_text("(b ^v " + v + ")");
      if (i % 3 == 0) e.add_wme_text("(c ^v " + v + " ^w " + v + ")");
    }
    e.match();
  }
}

obs::ProfileSnapshot profiled_run(size_t workers, uint32_t shift) {
  EngineOptions opts;
  opts.match_workers = workers;
  opts.match_policy = TaskQueueSet::Policy::Steal;
  opts.profile = true;
  opts.profile_sample_shift = shift;
  Engine e(opts);
  e.load(join_productions());
  run_waves(e, 4, 18);
  EXPECT_NE(e.profiler(), nullptr);
  return e.profiler()->snapshot();
}

TEST(Profiler, ParallelShardMergeMatchesSerialOracle) {
  const obs::ProfileSnapshot serial = profiled_run(0, 0);
  const obs::ProfileSnapshot par = profiled_run(4, 0);

  ASSERT_GT(serial.total_activations, 0u);
  EXPECT_EQ(par.total_activations, serial.total_activations);

  // Per-node counts are schedule-invariant; the parallel run's shard merge
  // must reproduce the serial single-shard numbers cell for cell.
  ASSERT_EQ(par.nodes.size(), serial.nodes.size());
  for (size_t id = 0; id < serial.nodes.size(); ++id) {
    EXPECT_EQ(par.nodes[id].activations, serial.nodes[id].activations)
        << "node " << id;
    EXPECT_EQ(par.nodes[id].emits, serial.nodes[id].emits) << "node " << id;
  }

  // Internal consistency of the merge: totals are the column sums.
  uint64_t acts = 0, sampled = 0, time_ns = 0;
  for (const obs::ProfileCell& c : serial.nodes) {
    acts += c.activations;
    sampled += c.sampled;
    time_ns += c.time_ns;
  }
  EXPECT_EQ(acts, serial.total_activations);
  EXPECT_EQ(sampled, serial.total_sampled);
  EXPECT_EQ(time_ns, serial.total_time_ns);

  // Shift 0: every activation is timed, so the estimate is exact.
  EXPECT_EQ(serial.total_sampled, serial.total_activations);
}

TEST(Profiler, SerialSamplingIsExactCeil) {
  const obs::ProfileSnapshot full = profiled_run(0, 0);
  const obs::ProfileSnapshot sampled = profiled_run(0, 3);

  EXPECT_EQ(sampled.total_activations, full.total_activations)
      << "counts are exact at any shift";
  // One shard, tick starts at 0 and never resets: samples land on ticks
  // 0, 8, 16, ... — exactly ceil(n / 8) of n activations.
  const uint64_t n = sampled.total_activations;
  EXPECT_EQ(sampled.total_sampled, (n + 7) / 8);
}

TEST(Profiler, ParallelSamplingIsBounded) {
  const size_t workers = 4;
  const obs::ProfileSnapshot s = profiled_run(workers, 3);
  ASSERT_GT(s.total_activations, 0u);
  // Each worker's tick is independent and contiguous, so each shard's
  // sampled count is floor or ceil of its share: the total lands within
  // ±workers of n / 8.
  const double expect = static_cast<double>(s.total_activations) / 8.0;
  EXPECT_GE(static_cast<double>(s.total_sampled),
            expect - static_cast<double>(workers));
  EXPECT_LE(static_cast<double>(s.total_sampled),
            expect + static_cast<double>(workers));
  EXPECT_GT(s.total_sampled, 0u);
  for (const obs::ProfileCell& c : s.nodes) {
    EXPECT_LE(c.sampled, c.activations);
  }
}

TEST(Profiler, IdleAgentAccumulatesNothing) {
  AgentGroupOptions gopts;
  gopts.workers = 4;
  gopts.policy = TaskQueueSet::Policy::Steal;
  gopts.profile = true;
  AgentGroup group(gopts);
  Engine& busy = group.add_agent();
  group.add_agent();  // agent 1 never receives a wme
  group.load(join_productions());

  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < 12; ++i) {
      const std::string v = std::to_string((i + r) % 5);
      busy.add_wme_text("(a ^v " + v + ")");
      if (i % 2 == 0) busy.add_wme_text("(b ^v " + v + ")");
    }
    group.step_all();
  }

  ASSERT_NE(group.profiler(), nullptr);
  const obs::ProfileSnapshot s = group.profiler()->snapshot();
  ASSERT_GE(s.agents.size(), 2u);
  EXPECT_GT(s.agents[0].activations, 0u);
  EXPECT_EQ(s.agents[1].activations, 0u)
      << "an idle session must not be billed for its sibling's match work";
  EXPECT_EQ(s.agents[1].sampled, 0u);
  EXPECT_EQ(s.agents[1].time_ns, 0u);
}

TEST(Profiler, FlightRingKeepsLastCapacityInOrder) {
  obs::MatchProfiler prof(0);
  prof.ensure_nodes(4);
  prof.ensure_agents(2);

  obs::FlightRecorder fr(4);
  EXPECT_EQ(fr.capacity(), 4u);
  for (uint64_t i = 0; i < 10; ++i) {
    prof.record(0, /*node=*/1, /*agent=*/0, /*timed=*/true, /*dur_ns=*/100,
                /*emits=*/2);
    obs::MetricsRegistry m;
    m.counter("test.tick", i);
    fr.snapshot(m, &prof, /*marker=*/i * 10);
  }

  EXPECT_EQ(fr.count(), 10u);
  ASSERT_EQ(fr.size(), 4u);
  for (size_t i = 0; i < fr.size(); ++i) {
    const obs::FlightSnapshot& s = fr.at(i);
    EXPECT_EQ(s.seq, 6u + i) << "oldest retained capture is #6";
    EXPECT_EQ(s.marker, (6u + i) * 10);
    EXPECT_EQ(s.metrics.value("test.tick"), 6u + i);
    // Capture #k saw k+1 records on node 1.
    EXPECT_EQ(s.profile.nodes[1].activations, 7u + i);
  }
}

TEST(Profiler, FlightDumpRoundTripsToJson) {
  obs::MatchProfiler prof(0);
  prof.ensure_nodes(3);
  prof.ensure_agents(1);
  obs::FlightRecorder fr(2);
  for (uint64_t i = 0; i < 3; ++i) {
    prof.record(0, 2, 0, true, 50, 1);
    obs::MetricsRegistry m;
    m.counter("soar.decisions", i + 1);
    fr.snapshot(m, &prof, i);
  }

  const std::string json = fr.to_json();
  EXPECT_EQ(json, fr.to_json()) << "same window, same bytes";
  EXPECT_NE(json.find("\"flight\""), std::string::npos);
  EXPECT_NE(json.find("\"soar.decisions\""), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "psme_flight_roundtrip.json";
  ASSERT_TRUE(fr.dump(path.c_str()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), json);
  std::remove(path.c_str());
}

TEST(Profiler, ProfileJsonIsDeterministicAndParsesBack) {
  EngineOptions opts;
  opts.profile = true;
  Engine e(opts);
  e.load(join_productions());
  run_waves(e, 3, 12);

  const analysis::ProfileReport rep = analysis::build_profile_report(
      e.net(), e.all_records(), e.profiler()->snapshot());
  ASSERT_EQ(rep.productions.size(), 3u);
  EXPECT_GT(rep.total_activations, 0u);

  const std::string json = analysis::profile_json("join-set", rep);
  EXPECT_EQ(json, analysis::profile_json("join-set", rep))
      << "same report, same bytes";

  const analysis::ParsedProfile parsed = analysis::parse_profile_json(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.network, "join-set");
  EXPECT_EQ(parsed.total_activations, rep.total_activations);
  ASSERT_EQ(parsed.productions.size(), rep.productions.size());
  for (size_t i = 0; i < parsed.productions.size(); ++i) {
    EXPECT_EQ(parsed.productions[i].name, rep.productions[i].name);
    EXPECT_EQ(parsed.productions[i].activations,
              rep.productions[i].activations);
    // est_us is emitted at two decimals; round-trip within that precision.
    EXPECT_NEAR(parsed.productions[i].est_us, rep.productions[i].est_us,
                0.01);
  }
}

TEST(Profiler, CorrelationJoinsAndFlagsDeterministically) {
  EngineOptions opts;
  opts.profile = true;
  Engine e(opts);
  e.load(join_productions());
  run_waves(e, 3, 12);

  const analysis::ProfileReport rep = analysis::build_profile_report(
      e.net(), e.all_records(), e.profiler()->snapshot());
  const analysis::ParsedProfile parsed =
      analysis::parse_profile_json(analysis::profile_json("join-set", rep));
  ASSERT_TRUE(parsed.ok) << parsed.error;

  const analysis::LintReport lint =
      analysis::lint_costs(e.net(), e.all_records(), {}, {});
  const analysis::CorrelationReport corr = analysis::correlate(lint, parsed);
  ASSERT_EQ(corr.rows.size(), lint.productions.size());
  EXPECT_GT(corr.correlated, 0u);
  // Every production matched in this workload, so no row is unmeasured and
  // the join is total.
  EXPECT_EQ(corr.correlated, corr.rows.size());

  const std::string json = analysis::correlation_json("join-set", corr);
  EXPECT_EQ(json, analysis::correlation_json("join-set", corr))
      << "same join, same bytes";

  // Degenerate thresholds force flags in both directions: hot_ratio 0 flags
  // every row with measured time; an absurdly large cold_ratio flags every
  // measured row whose time sits under it.
  const analysis::CorrelationReport hot =
      analysis::correlate(lint, parsed, /*hot_ratio=*/0.0, /*cold_ratio=*/0.0);
  EXPECT_GT(hot.flagged, 0u);
  const analysis::CorrelationReport cold = analysis::correlate(
      lint, parsed, /*hot_ratio=*/1e9, /*cold_ratio=*/1e9);
  EXPECT_GT(cold.flagged, 0u);
}

TEST(Profiler, ParseRejectsGarbage) {
  EXPECT_FALSE(analysis::parse_profile_json("").ok);
  EXPECT_FALSE(analysis::parse_profile_json("{\"bench\":\"scheduler\"}").ok);
  const analysis::ParsedProfile p =
      analysis::parse_profile_json("not json at all");
  EXPECT_FALSE(p.ok);
  EXPECT_FALSE(p.error.empty());
}

}  // namespace
}  // namespace psme
