// Transient-query subsystem (src/query) + run-time production removal.
//
// The query path is the removal path's hottest client: every ask() installs
// a temporary production, reads the match out of the agent's memories, and
// tears it back out. These tests pin the scoring semantics (full / partial /
// none), the graph-match content, and — the tentpole — that removal restores
// the network and every agent's state exactly (node counts, jumptable
// footprint, verifier-clean), including when the victim shares nodes with
// survivors.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/verify.h"
#include "engine/agent_group.h"
#include "engine/engine.h"
#include "query/query.h"

namespace psme {
namespace {

/// Blocks-world episode shared by most tests: a three-block stack (b2 on
/// blue b1, b3 on b2) and a free gripper.
void seed_stack(Engine& e) {
  e.add_wme_text("(block ^name b1 ^color blue)");
  e.add_wme_text("(block ^name b2 ^color red ^on b1)");
  e.add_wme_text("(block ^name b3 ^color green ^on b2)");
  e.add_wme_text("(gripper ^name g1 ^state free)");
  e.match();
}

TEST(QueryScore, FullMatchScoresAllCes) {
  Engine e;
  seed_stack(e);
  QuerySession q(e);
  const QueryResult r =
      q.ask("(block ^name <b> ^color blue) (block ^on <b> ^name <t>)");
  EXPECT_EQ(r.positive_ces, 2u);
  EXPECT_EQ(r.score, 2u);
  EXPECT_TRUE(r.full());
  ASSERT_EQ(r.matches.size(), 1u);
}

TEST(QueryScore, PartialMatchReportsDeepestJoin) {
  Engine e;
  seed_stack(e);
  QuerySession q(e);
  // First two CEs join (b2 on blue b1); nothing holds b2, so CE 3 fails.
  const QueryResult r = q.ask(
      "(block ^name <b> ^color blue) (block ^on <b> ^name <t>) "
      "(gripper ^holding <t>)");
  EXPECT_EQ(r.positive_ces, 3u);
  EXPECT_EQ(r.score, 2u);
  EXPECT_FALSE(r.full());
  EXPECT_TRUE(r.matches.empty());
}

TEST(QueryScore, FirstCeOnlyScoresOne) {
  Engine e;
  seed_stack(e);
  QuerySession q(e);
  // CE 1 has candidates (blocks exist) but no block sits on a green one.
  const QueryResult r =
      q.ask("(block ^name <b> ^color green) (block ^on <b> ^color yellow)");
  EXPECT_EQ(r.positive_ces, 2u);
  EXPECT_EQ(r.score, 1u);
}

TEST(QueryScore, NoMatchScoresZero) {
  Engine e;
  seed_stack(e);
  QuerySession q(e);
  const QueryResult r = q.ask("(pyramid ^name <p>)");
  EXPECT_EQ(r.positive_ces, 1u);
  EXPECT_EQ(r.score, 0u);
  EXPECT_TRUE(r.matches.empty());
}

TEST(QueryMatches, GraphMatchContentInCeOrder) {
  Engine e;
  seed_stack(e);
  QuerySession q(e);
  const QueryResult r = q.ask("(block ^name <b>) (block ^on <b>)");
  // Two stacked pairs: (b1, b2-on-b1) and (b2, b3-on-b2).
  ASSERT_EQ(r.matches.size(), 2u);
  for (const QueryMatch& m : r.matches) {
    ASSERT_EQ(m.wmes.size(), 2u);
    // CE order: wme 0 is the support, wme 1 sits on it (^on binds <b>).
    const Symbol support = m.wmes[0]->field(0).sym();
    bool on_ok = false;
    for (size_t f = 0; f < m.wmes[1]->fields.size(); ++f) {
      if (m.wmes[1]->fields[f] == Value(support)) on_ok = true;
    }
    EXPECT_TRUE(on_ok);
  }
}

TEST(QuerySessionApi, CueRestrictionsAndPhaseErrors) {
  Engine e;
  seed_stack(e);
  QuerySession q(e);
  EXPECT_THROW(q.begin("(block ^name <b>) -(block ^on <b>)"),
               std::invalid_argument);
  EXPECT_FALSE(q.active());  // a rejected cue leaves no active production
  EXPECT_THROW(q.end(), std::logic_error);
  q.begin("(block ^name <b>)");
  EXPECT_THROW(q.begin("(gripper ^state free)"), std::logic_error);
  q.end();
}

TEST(QuerySessionApi, DestructorRemovesActiveCue) {
  Engine e;
  seed_stack(e);
  const uint32_t live_before = e.net().live_node_count();
  {
    QuerySession q(e);
    q.begin("(pyramid ^kind <k>) (pyramid ^on <k>)");
    EXPECT_GT(e.net().live_node_count(), live_before);
  }
  EXPECT_EQ(e.net().live_node_count(), live_before);
}

TEST(Removal, QueryChurnLeavesNoResidue) {
  Engine e;
  e.load("(p resident (block ^name <b> ^color blue) (block ^on <b>) "
         "--> (halt))");
  seed_stack(e);

  // The rotation: a cue sharing the resident's whole chain, a cue with
  // fresh alpha + beta structure, and a cue sharing only the alpha part.
  const char* cues[3] = {
      "(block ^name <b> ^color blue) (block ^on <b>)",
      "(pyramid ^name <p>) (slab ^under <p>)",
      "(gripper ^state free) (block ^name <b>)",
  };

  QuerySession q(e);
  // Warmup: one full rotation, so every alpha memory and jumptable slot the
  // steady state needs exists once (recycled thereafter) before baselines.
  for (const char* cue : cues) q.ask(cue);

  const uint32_t live_before = e.net().live_node_count();
  const size_t jt_before = e.net().jumptable().size();
  const uint32_t alpha_before = e.net().alpha_mem_count();
  const size_t prods_before = e.productions().size();

  for (int i = 0; i < 50; ++i) q.ask(cues[i % 3]);

  EXPECT_EQ(e.net().live_node_count(), live_before);
  EXPECT_EQ(e.net().alpha_mem_count(), alpha_before);
  EXPECT_EQ(e.productions().size(), prods_before);
  EXPECT_EQ(e.net().jumptable().size(), jt_before);

  const auto rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Removal, SharedNodesSurviveVictimRemoval) {
  Engine e;
  const auto prods = e.load(
      "(p keep (block ^name <b> ^color blue) (block ^on <b>) --> (halt))"
      "(p victim (block ^name <b> ^color blue) (block ^on <b>) "
      "(gripper ^state free) --> (halt))");
  ASSERT_EQ(prods.size(), 2u);
  seed_stack(e);

  // Both productions share the 2-CE prefix; removal of `victim` must keep
  // the shared joins and their memory contents intact for `keep`.
  const auto res = e.remove_production_runtime(prods[1]);
  EXPECT_GE(res.nodes_removed, 2u);  // its join + P-node at minimum
  const auto rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();

  // `keep` still matches — through the shared prefix, with no rebuild.
  bool keep_live = false;
  for (const Instantiation* inst : e.cs().all()) {
    if (inst->pnode->prod == prods[0]) keep_live = true;
    EXPECT_NE(inst->pnode->prod, prods[1]);
  }
  EXPECT_TRUE(keep_live);

  // And it keeps matching new wmes arriving after the removal.
  e.add_wme_text("(block ^name b9 ^color blue)");
  e.add_wme_text("(block ^name b10 ^on b9)");
  e.match();
  size_t keep_count = 0;
  for (const Instantiation* inst : e.cs().all()) {
    if (inst->pnode->prod == prods[0]) ++keep_count;
  }
  EXPECT_GE(keep_count, 2u);
}

TEST(Removal, UnknownProductionThrows) {
  Engine e, other;
  const auto prods =
      other.load("(p foreign (block ^name <b>) --> (halt))");
  ASSERT_EQ(prods.size(), 1u);
  EXPECT_THROW(e.remove_production_runtime(prods[0]), std::out_of_range);
}

TEST(Removal, RemoveLastProductionEmptiesNetwork) {
  Engine e;
  const auto prods = e.load(
      "(p only (block ^name <b> ^color blue) -(gripper ^holding <b>) "
    "--> (halt))");
  seed_stack(e);
  EXPECT_GT(e.cs().size(), 0u);

  const auto res = e.remove_production_runtime(prods[0]);
  EXPECT_GT(res.instantiations, 0u);
  EXPECT_EQ(e.net().live_node_count(), 0u);
  EXPECT_EQ(e.productions().size(), 0u);
  EXPECT_EQ(e.cs().size(), 0u);
  const auto rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();

  // The id space is tombstoned, not reused: a production added after the
  // removal gets fresh ids (the §5.2 update filter relies on monotone ids).
  const uint32_t node_count_after = e.net().node_count();
  e.load("(p reborn (block ^name <b>) --> (halt))");
  const auto& rec = e.record(e.productions().back());
  for (const uint32_t id : rec.compiled.new_nodes) {
    EXPECT_GE(id, node_count_after);
  }
  e.match();
  EXPECT_GT(e.cs().size(), 0u);
}

TEST(Removal, NccProductionUnsplicesPairAndDrains) {
  Engine e;
  const auto prods = e.load(
      "(p ncc-victim (block ^name <b>) "
      "-{(block ^on <b>) (gripper ^holding <b>)} --> (halt))");
  seed_stack(e);
  const auto res = e.remove_production_runtime(prods[0]);
  EXPECT_EQ(e.net().live_node_count(), 0u);
  EXPECT_GT(res.nodes_removed, 3u);  // alpha chain + ncc + partner + P-node
  const auto rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Removal, MultiAgentDrainTouchesEveryAgent) {
  AgentGroupOptions gopts;
  gopts.workers = 2;
  AgentGroup group(gopts);
  Engine& a0 = group.add_agent();
  Engine& a1 = group.add_agent();
  const auto prods = group.load(
      "(p shared-victim (block ^name <b> ^color blue) (block ^on <b>) "
      "--> (halt))");
  seed_stack(a0);
  // Agent 1 gets a different episode with its own full match.
  a1.add_wme_text("(block ^name x1 ^color blue)");
  a1.add_wme_text("(block ^name x2 ^on x1)");
  a1.add_wme_text("(block ^name x3 ^on x1)");
  a1.match();
  EXPECT_GT(a0.cs().size(), 0u);
  EXPECT_GT(a1.cs().size(), 0u);

  // Removal through ONE agent drains BOTH agents' memories and conflict
  // sets (the drain is network-wide; state is per-agent).
  const auto res = a0.remove_production_runtime(prods[0]);
  EXPECT_GE(res.instantiations, 3u);  // 1 from a0, 2 from a1
  EXPECT_EQ(a0.cs().size(), 0u);
  EXPECT_EQ(a1.cs().size(), 0u);
  const auto rep0 = a0.verify_network();
  EXPECT_TRUE(rep0.ok()) << rep0.to_string();
  const auto rep1 = a1.verify_network();
  EXPECT_TRUE(rep1.ok()) << rep1.to_string();
}

TEST(QueryMultiAgent, SessionsSeeOnlyTheirOwnEpisode) {
  AgentGroupOptions gopts;
  gopts.workers = 2;
  AgentGroup group(gopts);
  Engine& a0 = group.add_agent();
  Engine& a1 = group.add_agent();
  seed_stack(a0);
  a1.add_wme_text("(pyramid ^name p1)");
  a1.match();

  QuerySession q0(a0), q1(a1);
  const QueryResult r0 = q0.ask("(pyramid ^name <p>)");
  const QueryResult r1 = q1.ask("(pyramid ^name <p>)");
  EXPECT_EQ(r0.score, 0u);  // a0's episode has no pyramid
  EXPECT_EQ(r1.score, 1u);
  ASSERT_EQ(r1.matches.size(), 1u);
}

}  // namespace
}  // namespace psme
