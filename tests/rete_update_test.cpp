// Focused tests of the §5.2 run-time state update machinery: alpha-frontier
// seeding, phase ordering, sequential run-time adds, update behaviour for
// every condition-element kind, and the scratch-buffered replay's
// allocation discipline.
#include <gtest/gtest.h>

#include "alloc_probe.h"
#include "engine/engine.h"
#include "lang/parser.h"
#include "rete/update.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;
using test::heap_allocs;
using test::instantiation_count;

Production parse_one(Engine& e, std::string_view src) {
  static RhsArena arena;  // test-only: productions outlive the engines
  Parser p(e.syms(), e.schemas(), arena);
  return p.parse_production(src);
}

TEST(AlphaFrontier, FullySharedAlphaHasNoFrontier) {
  Engine e;
  e.load("(p p1 (a ^v 1 ^w 2) --> (halt))");
  e.add_wme_text("(a ^v 1 ^w 2)");
  e.match();
  auto res = e.add_production_runtime(
      parse_one(e, "(p p2 (a ^v 1 ^w 2) --> (write dup))"));
  const auto& cp = e.record(res.prod).compiled;
  // Same alpha chain and same beta layer: only the P-node is new, no alpha
  // frontier, and phase A had nothing to seed.
  EXPECT_TRUE(cp.alpha_frontiers.empty());
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
}

TEST(AlphaFrontier, PartiallySharedChainRecordsPrefix) {
  Engine e;
  e.load("(p p1 (a ^v 1) --> (halt))");
  e.add_wme_text("(a ^v 1 ^w 2)");
  e.add_wme_text("(a ^v 1 ^w 3)");
  e.add_wme_text("(a ^v 9 ^w 2)");
  e.match();
  // p2 shares the (^v 1) const node, adds a (^w 2) test below it.
  auto res = e.add_production_runtime(
      parse_one(e, "(p p2 (a ^v 1 ^w 2) --> (halt))"));
  const auto& cp = e.record(res.prod).compiled;
  ASSERT_EQ(cp.alpha_frontiers.size(), 1u);
  const auto& f = cp.alpha_frontiers[0];
  // The shared prefix carries the v==1 test, so the w-test node (the entry)
  // is only seeded with wmes passing it.
  EXPECT_EQ(f.prefix_consts.size(), 1u);
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
}

TEST(AlphaFrontier, BrandNewClassSeedsEverything) {
  Engine e;
  e.load("(p p1 (a ^v 1) --> (halt))");
  e.add_wme_text("(fresh ^q 1)");
  e.add_wme_text("(fresh ^q 2)");
  e.match();
  auto res = e.add_production_runtime(
      parse_one(e, "(p p2 (fresh ^q <x>) --> (halt))"));
  const auto& cp = e.record(res.prod).compiled;
  ASSERT_EQ(cp.alpha_frontiers.size(), 1u);
  EXPECT_TRUE(cp.alpha_frontiers[0].prefix_consts.empty());
  EXPECT_EQ(instantiation_count(e, "p2"), 2);
}

TEST(UpdateSeeds, RightSeedsOnlyForOldAlphaMemories) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.match();
  // p3: shares amem(a) and amem(b) (old), adds new join + new amem(c).
  Builder& builder = e.builder();
  Production p = parse_one(
      e, "(p p3 (a ^v <x>) (c ^v <x>) --> (halt))");
  static std::vector<std::unique_ptr<Production>> keep;
  keep.push_back(std::make_unique<Production>(std::move(p)));
  CompiledProduction cp = builder.add_production(*keep.back());
  const auto rights = update_right_seeds(e.net(), e.state(), cp);
  // The new join's right input is amem(c) — brand new, so phase B has
  // nothing; amem(a) feeds the join's LEFT side, not its right.
  EXPECT_TRUE(rights.empty());
  run_update_serial(e.net(), e.state(), cp, e.wm().live());
}

TEST(UpdateSeeds, LeftSeedsReplaySharePointOutputs) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.add_wme_text("(a ^v 2)");
  e.add_wme_text("(b ^v 2)");
  e.add_wme_text("(c ^v 1)");
  e.match();
  Builder& builder = e.builder();
  static std::vector<std::unique_ptr<Production>> keep;
  keep.push_back(std::make_unique<Production>(parse_one(
      e, "(p p2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))")));
  CompiledProduction cp = builder.add_production(*keep.back());
  // Share point: the old (a)(b) join; its outputs are the two [a b] tokens.
  run_update_serial(e.net(), e.state(), cp, e.wm().live());
  EXPECT_EQ(instantiation_count(e, "p2"), 1);  // only v=1 has a c
}

TEST(Update, SequentialRuntimeAddsStayConsistent) {
  Engine e;
  e.load("(p base (a ^v <x>) --> (halt))");
  for (int i = 0; i < 4; ++i) {
    e.add_wme_text("(a ^v " + std::to_string(i) + ")");
    e.add_wme_text("(b ^v " + std::to_string(i) + ")");
    if (i % 2 == 0) e.add_wme_text("(c ^v " + std::to_string(i) + ")");
  }
  e.match();
  // Three successive run-time additions, each sharing with the previous.
  e.add_production_runtime(parse_one(e, "(p q1 (a ^v <x>) (b ^v <x>) --> (halt))"));
  e.add_production_runtime(
      parse_one(e, "(p q2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"));
  e.add_production_runtime(
      parse_one(e, "(p q3 (a ^v <x>) (b ^v <x>) -(c ^v <x>) --> (halt))"));
  EXPECT_EQ(instantiation_count(e, "q1"), 4);
  EXPECT_EQ(instantiation_count(e, "q2"), 2);
  EXPECT_EQ(instantiation_count(e, "q3"), 2);

  // Equivalent from-scratch engine.
  Engine ref;
  ref.load("(p base (a ^v <x>) --> (halt))"
           "(p q1 (a ^v <x>) (b ^v <x>) --> (halt))"
           "(p q2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
           "(p q3 (a ^v <x>) (b ^v <x>) -(c ^v <x>) --> (halt))");
  for (int i = 0; i < 4; ++i) {
    ref.add_wme_text("(a ^v " + std::to_string(i) + ")");
    ref.add_wme_text("(b ^v " + std::to_string(i) + ")");
    if (i % 2 == 0) ref.add_wme_text("(c ^v " + std::to_string(i) + ")");
  }
  ref.match();
  EXPECT_EQ(cs_fingerprint(e), cs_fingerprint(ref));
}

TEST(Update, DynamicsAfterUpdateStayCorrect) {
  // After an update, continued add/remove traffic through the new production
  // must behave exactly like a preloaded one.
  Engine e;
  e.load("(p p1 (a ^v <x>) --> (halt))");
  const Wme* a1 = e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.match();
  e.add_production_runtime(
      parse_one(e, "(p p2 (a ^v <x>) (b ^v <x>) --> (halt))"));
  ASSERT_EQ(instantiation_count(e, "p2"), 1);
  e.remove_wme(a1);
  e.match();
  EXPECT_EQ(instantiation_count(e, "p2"), 0);
  e.add_wme_text("(a ^v 1)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
}

TEST(Update, DisjunctionAndPredicatesInNewProduction) {
  Engine e;
  e.load("(p p1 (a ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1 ^color red)");
  e.add_wme_text("(a ^v 5 ^color green)");
  e.add_wme_text("(a ^v 9 ^color blue)");
  e.match();
  e.add_production_runtime(parse_one(
      e, "(p p2 (a ^v > 2 ^color << red green >>) --> (halt))"));
  EXPECT_EQ(instantiation_count(e, "p2"), 1);  // v=5/green only
}

TEST(Update, IntraTestInNewProduction) {
  Engine e;
  e.load("(p p1 (pair ^l <x>) --> (halt))");
  e.add_wme_text("(pair ^l 3 ^r 3)");
  e.add_wme_text("(pair ^l 3 ^r 4)");
  e.match();
  e.add_production_runtime(
      parse_one(e, "(p p2 (pair ^l <x> ^r <x>) --> (halt))"));
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
}

TEST(Update, UpdateTaskCountScalesWithSharing) {
  // A production that shares everything but the P-node needs almost no
  // update work; a fully novel one needs to re-derive its whole beta state.
  Engine shared_engine;
  shared_engine.load("(p p1 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))");
  Engine fresh_engine;
  fresh_engine.load("(p p1 (q ^r 1) --> (halt))");
  for (Engine* e : {&shared_engine, &fresh_engine}) {
    for (int i = 0; i < 8; ++i) {
      e->add_wme_text("(a ^v " + std::to_string(i) + ")");
      e->add_wme_text("(b ^v " + std::to_string(i) + ")");
      e->add_wme_text("(c ^v " + std::to_string(i) + ")");
    }
    e->match();
  }
  const char* src = "(p p2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (write w))";
  auto shared_res =
      shared_engine.add_production_runtime(parse_one(shared_engine, src));
  auto fresh_res =
      fresh_engine.add_production_runtime(parse_one(fresh_engine, src));
  EXPECT_LT(shared_res.update_tasks, fresh_res.update_tasks);
  EXPECT_EQ(test::instantiation_count(shared_engine, "p2"), 8);
  EXPECT_EQ(test::instantiation_count(fresh_engine, "p2"), 8);
}

TEST(Update, ScratchReplayIsAllocationFlat) {
  // A chunking system runs the §5.2 update once per chunk, forever. With a
  // persistent UpdateScratch the replay must stop allocating once its
  // buffers reach high-water capacity — even for spill-length tokens (six
  // CEs, so every full token exceeds the inline cap and lands in the arena).
  Engine e;
  e.load("(p base (a ^v <x>) (b ^v <x>) --> (halt))");
  for (const char* cls : {"a", "b", "c", "d", "e", "f"}) {
    for (int v = 0; v < 3; ++v) {
      e.add_wme_text("(" + std::string(cls) + " ^v " + std::to_string(v) +
                     ")");
    }
  }
  e.match();
  const int base_insts = instantiation_count(e, "base");

  const auto wm = e.wm().live();
  Builder& builder = e.builder();
  static std::vector<std::unique_ptr<Production>> keep;
  UpdateScratch scratch;
  for (int round = 0; round < 8; ++round) {
    const std::string name = "spill" + std::to_string(round);
    keep.push_back(std::make_unique<Production>(parse_one(
        e, "(p " + name +
               " (a ^v <x>) (b ^v <x>) (c ^v <x>) (d ^v <x>) (e ^v <x>)"
               " (f ^v <x>) --> (halt))")));
    // Structural compile may allocate (new nodes, code); only the state
    // update itself is measured.
    CompiledProduction cp = builder.add_production(*keep.back());
    const uint64_t before = heap_allocs();
    run_update_serial(e.net(), e.state(), cp, wm, scratch);
    const uint64_t used = heap_allocs() - before;
    EXPECT_EQ(instantiation_count(e, name), 3);
    if (round >= 2) {
      // Round 0 builds the chain and fills the scratch; round 1 may still
      // grow capacity. From then on the replay is allocation-free.
      EXPECT_EQ(used, 0u) << "update " << round << " touched the heap";
    }
  }

  // The task filter dropped every activation of pre-existing stateful
  // nodes: old productions saw no duplicate matches from the re-seeded wmes.
  EXPECT_EQ(instantiation_count(e, "base"), base_insts);
  EXPECT_EQ(instantiation_count(e, "spill0"), 3);
}

}  // namespace
}  // namespace psme
