// Shared test helpers.
#pragma once

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "lang/ast.h"

namespace psme::test {

/// Arena for RHS actions of productions parsed outside an Engine::load.
/// Static so it outlives every Production that references its nodes (tests
/// used to `new` one per parse and leak it, which LeakSanitizer flags).
inline RhsArena& test_rhs_arena() {
  static RhsArena arena;
  return arena;
}

/// Names of productions with at least one instantiation in the CS.
inline std::multiset<std::string> matched_productions(Engine& e) {
  std::multiset<std::string> out;
  for (const Instantiation* inst : e.cs().all()) {
    out.insert(std::string(e.syms().name(inst->pnode->prod->name)));
  }
  return out;
}

/// Number of instantiations of production `name` currently in the CS.
inline int instantiation_count(Engine& e, const std::string& name) {
  int n = 0;
  for (const Instantiation* inst : e.cs().all()) {
    if (e.syms().name(inst->pnode->prod->name) == name) ++n;
  }
  return n;
}

/// A canonical dump of the CS: production name + wme contents (in CE order).
/// Content-based so it is comparable across engines with different timetags
/// and symbol tables. Used for serial-vs-parallel and incremental-vs-rebuild
/// equivalence checks.
inline std::multiset<std::string> cs_fingerprint(Engine& e) {
  std::multiset<std::string> out;
  for (const Instantiation* inst : e.cs().all()) {
    std::string s(e.syms().name(inst->pnode->prod->name));
    for (const Wme* w : inst->token) {
      s += "|" + w->to_string(e.syms(), e.schemas());
    }
    out.insert(s);
  }
  return out;
}

}  // namespace psme::test
