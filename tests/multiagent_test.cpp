// Multi-agent serving: N agent sessions over ONE shared CompiledNetwork and
// ONE worker pool must each end every cycle exactly as an isolated serial
// engine running the same per-agent script — per-agent task tagging means no
// agent can observe (or stall on) another's tokens. Also covers run-time
// chunk addition through the COW jumptable while sibling agents hold live
// state, and a 2-agent race-stress parameterization for the TSan lane.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/agent_group.h"
#include "lang/parser.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;

std::string shared_productions() {
  return "(p j2 (a ^v <x>) (b ^v <x>) --> (halt))"
         "(p j3 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
         "(p neg (a ^v <x>) -(blocker ^v <x>) --> (halt))"
         "(p cross (a ^v <x>) (c ^w <y>) --> (halt))";
}

/// Each agent gets a DIFFERENT workload (values offset by the agent index)
/// so cross-agent leakage produces a fingerprint mismatch, not a silent
/// coincidence.
void add_agent_wmes(Engine& e, size_t agent, int n, int wave) {
  for (int i = 0; i < n; ++i) {
    const std::string v =
        std::to_string((i + wave * 3 + static_cast<int>(agent) * 11) % 13);
    e.add_wme_text("(a ^v " + v + ")");
    if (i % 2 == 0) e.add_wme_text("(b ^v " + v + ")");
    if (i % 3 == 0) e.add_wme_text("(c ^v " + v + " ^w " + v + ")");
    if (i % 5 == static_cast<int>(agent) % 5) {
      e.add_wme_text("(blocker ^v " + v + ")");
    }
  }
}

void remove_every_kth(Engine& e, int k) {
  std::vector<const Wme*> victims;
  int i = 0;
  for (const Wme* w : e.wm().live()) {
    if (++i % k == 0) victims.push_back(w);
  }
  for (const Wme* w : victims) e.remove_wme(w);
}

struct GroupCase {
  const char* name;
  size_t agents;
  size_t workers;
  TaskQueueSet::Policy policy;
};

class MultiAgentDifferential : public ::testing::TestWithParam<GroupCase> {};

/// N agents over the shared network vs N isolated serial engines walking the
/// same per-agent script: identical conflict sets and memory-table entry
/// counts for every agent at every checkpoint.
TEST_P(MultiAgentDifferential, AgreesWithIsolatedSerialEngines) {
  const GroupCase c = GetParam();

  AgentGroupOptions gopts;
  gopts.workers = c.workers;
  gopts.policy = c.policy;
  AgentGroup group(gopts);
  std::vector<std::unique_ptr<Engine>> oracles;
  for (size_t a = 0; a < c.agents; ++a) {
    group.add_agent();
    oracles.push_back(std::make_unique<Engine>());
  }
  group.load(shared_productions());
  for (auto& o : oracles) o->load(shared_productions());

  for (int wave = 0; wave < 4; ++wave) {
    for (size_t a = 0; a < c.agents; ++a) {
      add_agent_wmes(group.agent(a), a, 8, wave);
      add_agent_wmes(*oracles[a], a, 8, wave);
      if (wave >= 2) {
        remove_every_kth(group.agent(a), 4 + static_cast<int>(a));
        remove_every_kth(*oracles[a], 4 + static_cast<int>(a));
      }
    }
    group.step_all();
    for (auto& o : oracles) o->match();

    for (size_t a = 0; a < c.agents; ++a) {
      EXPECT_EQ(cs_fingerprint(group.agent(a)), cs_fingerprint(*oracles[a]))
          << c.name << " agent " << a << " wave " << wave;
      EXPECT_EQ(group.agent(a).state().tables.total_left_entries(),
                oracles[a]->state().tables.total_left_entries())
          << "agent " << a;
      EXPECT_EQ(group.agent(a).state().tables.total_right_entries(),
                oracles[a]->state().tables.total_right_entries())
          << "agent " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiAgentDifferential,
    ::testing::Values(GroupCase{"steal2x4", 2, 4, TaskQueueSet::Policy::Steal},
                      GroupCase{"steal4x4", 4, 4, TaskQueueSet::Policy::Steal},
                      GroupCase{"multi3x2", 3, 2, TaskQueueSet::Policy::Multi},
                      GroupCase{"steal5x1", 5, 1,
                                TaskQueueSet::Policy::Steal}),
    [](const auto& info) { return std::string(info.param.name); });

/// Run-time production addition (the chunking path) from ONE agent while
/// siblings hold live token state: the COW publish must leave every agent —
/// learner and bystanders alike — matching as if the production had been in
/// the network all along.
TEST(MultiAgentRuntimeAdd, CowPublishUpdatesEveryAgent) {
  constexpr size_t kAgents = 3;
  AgentGroupOptions gopts;
  gopts.workers = 4;
  AgentGroup group(gopts);
  std::vector<std::unique_ptr<Engine>> oracles;
  for (size_t a = 0; a < kAgents; ++a) {
    group.add_agent();
    oracles.push_back(std::make_unique<Engine>());
  }
  group.load(shared_productions());
  for (auto& o : oracles) o->load(shared_productions());

  for (size_t a = 0; a < kAgents; ++a) {
    add_agent_wmes(group.agent(a), a, 10, 0);
    add_agent_wmes(*oracles[a], a, 10, 0);
  }
  group.step_all();
  for (auto& o : oracles) o->match();

  // Agent 1 "learns" a production; the oracles each add the same one to
  // their private networks.
  const std::string late = "(p late-j2 (b ^v <x>) (c ^v <x>) --> (halt))";
  const uint64_t publishes_before = group.network().cow_publishes();
  {
    Parser parser(group.agent(1).syms(), group.agent(1).schemas(),
                  test::test_rhs_arena());
    group.agent(1).add_production_runtime(parser.parse_production(late));
  }
  EXPECT_EQ(group.network().cow_publishes(), publishes_before + 1)
      << "runtime add must go through the COW jumptable";
  for (auto& o : oracles) {
    Parser parser(o->syms(), o->schemas(), test::test_rhs_arena());
    o->add_production_runtime(parser.parse_production(late));
  }

  for (size_t a = 0; a < kAgents; ++a) {
    EXPECT_EQ(cs_fingerprint(group.agent(a)), cs_fingerprint(*oracles[a]))
        << "after COW add, agent " << a;
  }

  // The extended network keeps matching correctly for everyone.
  for (size_t a = 0; a < kAgents; ++a) {
    add_agent_wmes(group.agent(a), a, 6, 1);
    add_agent_wmes(*oracles[a], a, 6, 1);
  }
  group.step_all();
  for (auto& o : oracles) o->match();
  for (size_t a = 0; a < kAgents; ++a) {
    EXPECT_EQ(cs_fingerprint(group.agent(a)), cs_fingerprint(*oracles[a]))
        << "post-add wave, agent " << a;
  }
}

/// Network-wide chunk-signature dedup: the second agent to learn an
/// identical chunk must be told it is a duplicate.
TEST(MultiAgentRuntimeAdd, ChunkSignaturesDedupAcrossAgents) {
  AgentGroup group;
  group.add_agent();
  group.add_agent();
  EXPECT_TRUE(group.network().note_chunk_signature("chunk-sig-1"));
  EXPECT_FALSE(group.network().note_chunk_signature("chunk-sig-1"))
      << "agent 2 learning the same chunk must see the network-wide dup";
  EXPECT_TRUE(group.network().note_chunk_signature("chunk-sig-2"));
}

/// Per-agent metric namespaces exist and the group gauges are right.
TEST(MultiAgentObservability, MetricsAreNamespacedPerAgent) {
  AgentGroupOptions gopts;
  gopts.workers = 2;
  AgentGroup group(gopts);
  group.add_agent();
  group.add_agent();
  group.load(shared_productions());
  add_agent_wmes(group.agent(0), 0, 6, 0);
  add_agent_wmes(group.agent(1), 1, 6, 0);
  group.step_all();

  obs::MetricsRegistry m;
  group.collect_metrics(m);
  bool saw_a0 = false, saw_a1 = false;
  for (const auto& s : m.metrics()) {
    if (s.name.rfind("agent0.", 0) == 0) saw_a0 = true;
    if (s.name.rfind("agent1.", 0) == 0) saw_a1 = true;
  }
  EXPECT_TRUE(saw_a0);
  EXPECT_TRUE(saw_a1);
  EXPECT_EQ(m.value("group.agents"), 2u);
}

/// TSan lane: 2 agents × stealing workers × interleaved add/remove waves ×
/// a mid-run COW production add. No assertions beyond the differential —
/// the point is the interleavings TSan gets to watch.
struct StressCase {
  const char* name;
  TaskQueueSet::Policy policy;
};

class MultiAgentRaceStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(MultiAgentRaceStress, TwoAgentsUnderFullWidthDrains) {
  const StressCase c = GetParam();
  AgentGroupOptions gopts;
  gopts.workers = 8;
  gopts.policy = c.policy;
  AgentGroup group(gopts);
  Engine& a0 = group.add_agent();
  Engine& a1 = group.add_agent();
  group.load(shared_productions());

  Engine o0, o1;
  o0.load(shared_productions());
  o1.load(shared_productions());

#if defined(__SANITIZE_THREAD__) || defined(PSME_TSAN)
  const int waves = 6;
#else
  const int waves = 12;
#endif
  for (int wave = 0; wave < waves; ++wave) {
    add_agent_wmes(a0, 0, 12, wave);
    add_agent_wmes(o0, 0, 12, wave);
    add_agent_wmes(a1, 1, 12, wave);
    add_agent_wmes(o1, 1, 12, wave);
    if (wave % 2 == 1) {
      remove_every_kth(a0, 5);
      remove_every_kth(o0, 5);
      remove_every_kth(a1, 7);
      remove_every_kth(o1, 7);
    }
    group.step_all();
    o0.match();
    o1.match();

    if (wave == waves / 2) {
      const std::string late =
          "(p stress-late (a ^v <x>) (c ^v <x>) --> (halt))";
      Parser p0(a0.syms(), a0.schemas(), test::test_rhs_arena());
      a0.add_production_runtime(p0.parse_production(late));
      for (Engine* o : {&o0, &o1}) {
        Parser p(o->syms(), o->schemas(), test::test_rhs_arena());
        o->add_production_runtime(p.parse_production(late));
      }
    }
  }
  EXPECT_EQ(cs_fingerprint(a0), cs_fingerprint(o0));
  EXPECT_EQ(cs_fingerprint(a1), cs_fingerprint(o1));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MultiAgentRaceStress,
    ::testing::Values(StressCase{"Steal", TaskQueueSet::Policy::Steal},
                      StressCase{"Multi", TaskQueueSet::Policy::Multi}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace psme
