// Soar kernel: elaboration phase semantics, decision procedure, impasses and
// subgoals, operator retirement, garbage collection.
#include <gtest/gtest.h>

#include "soar/kernel.h"

namespace psme {
namespace {

/// A micro-task: one goal, operators o-a/o-b proposed by productions, an
/// evaluation production that prefers o-a, applications mark done.
SoarKernel& setup_micro(SoarKernel& k, bool with_best_eval) {
  std::string prods =
      // Propose two operators for the current state.
      "(p propose-a"
      "  (wme ^id <g> ^attr problem-space ^value micro)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  -(wme ^id <s> ^attr did ^value op-a)"
      "  -->"
      "  (bind <o> (genatom o))"
      "  (make wme ^id <o> ^attr name ^value op-a)"
      "  (make wme ^id <o> ^attr for-state ^value <s>)"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "acceptable))"
      "(p propose-b"
      "  (wme ^id <g> ^attr problem-space ^value micro)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  -(wme ^id <s> ^attr did ^value op-b)"
      "  -->"
      "  (bind <o> (genatom o))"
      "  (make wme ^id <o> ^attr name ^value op-b)"
      "  (make wme ^id <o> ^attr for-state ^value <s>)"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "acceptable))"
      // Apply: mark the action on the state, retire the operator.
      "(p apply"
      "  (wme ^id <g> ^attr operator ^value <o>)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <o> ^attr for-state ^value <s>)"
      "  (wme ^id <o> ^attr name ^value <n>)"
      "  -->"
      "  (make wme ^id <s> ^attr did ^value <n>)"
      "  (make wme ^id <o> ^attr done ^value yes))"
      // Success once both ran.
      "(p done"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <s> ^attr did ^value op-a)"
      "  (wme ^id <s> ^attr did ^value op-b)"
      "  -->"
      "  (make wme ^id <g> ^attr success ^value yes))"
      // Default indifference in the tie subgoal.
      "(p eval-default"
      "  (wme ^id <sg> ^attr impasse ^value tie)"
      "  (wme ^id <sg> ^attr object ^value <g>)"
      "  (wme ^id <sg> ^attr item ^value <o>)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)"
      "  -->"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "indifferent))";
  if (with_best_eval) {
    prods +=
        "(p eval-prefer-a"
        "  (wme ^id <sg> ^attr impasse ^value tie)"
        "  (wme ^id <sg> ^attr object ^value <g>)"
        "  (wme ^id <sg> ^attr item ^value <o>)"
        "  (wme ^id <g> ^attr state ^value <s>)"
        "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
        "acceptable)"
        "  (wme ^id <o> ^attr name ^value op-a)"
        "  -->"
        "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
        "best))";
  }
  k.load_productions(prods);
  const Symbol s0 = k.make_id("s", 1);
  k.create_top_goal(k.engine().syms().intern("micro"), s0);
  k.set_goal_test(
      [](SoarKernel& kk) { return kk.has_triple_attr("success", "yes"); });
  return k;
}

TEST(SoarKernel, RunsMicroTaskToSuccess) {
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 30;
  SoarKernel k(opts);
  setup_micro(k, true);
  const auto stats = k.run();
  EXPECT_TRUE(stats.goal_achieved);
  EXPECT_GT(stats.decisions, 0u);
  EXPECT_GT(stats.elab_cycles, 0u);
}

TEST(SoarKernel, TieImpasseCreatesSubgoal) {
  SoarOptions opts;
  opts.learning = false;
  SoarKernel k(opts);
  setup_micro(k, true);
  const auto stats = k.run();
  EXPECT_GE(stats.impasses, 1u);
}

TEST(SoarKernel, IndifferentPreferencesResolveTies) {
  SoarOptions opts;
  opts.learning = false;
  SoarKernel k(opts);
  setup_micro(k, /*with_best_eval=*/false);  // only indifferents
  const auto stats = k.run();
  EXPECT_TRUE(stats.goal_achieved);
}

TEST(SoarKernel, SubgoalWmesAreCollectedAfterResolution) {
  SoarOptions opts;
  opts.learning = false;
  SoarKernel k(opts);
  setup_micro(k, true);
  k.run();
  // After the run, the goal stack is back to the top goal and no level-2
  // wmes survive.
  EXPECT_EQ(k.goal_stack().size(), 1u);
  for (const Wme* w : k.engine().wm().live()) {
    EXPECT_LE(k.wme_level(w), 1);
  }
}

TEST(SoarKernel, ElaborationFiresAllInstantiationsInParallel) {
  // Two independent productions both fire in the same elaboration phase.
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 1;
  SoarKernel k(opts);
  k.load_productions(
      "(p e1 (wme ^id <g> ^attr state ^value <s>) --> "
      "(make wme ^id <s> ^attr note ^value one))"
      "(p e2 (wme ^id <g> ^attr state ^value <s>) --> "
      "(make wme ^id <s> ^attr note ^value two))");
  const Symbol s0 = k.make_id("s", 1);
  k.create_top_goal(k.engine().syms().intern("x"), s0);
  k.run();
  EXPECT_TRUE(k.has_triple_attr("note", "one"));
  EXPECT_TRUE(k.has_triple_attr("note", "two"));
}

TEST(SoarKernel, WmeDeduplication) {
  // Two productions creating the same triple yield one wme.
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 1;
  SoarKernel k(opts);
  k.load_productions(
      "(p e1 (wme ^id <g> ^attr state ^value <s>) --> "
      "(make wme ^id <s> ^attr note ^value same))"
      "(p e2 (wme ^id <g> ^attr state ^value <s>) --> "
      "(make wme ^id <s> ^attr note ^value same))");
  const Symbol s0 = k.make_id("s", 1);
  k.create_top_goal(k.engine().syms().intern("x"), s0);
  k.run();
  int notes = 0;
  for (const Wme* w : k.engine().wm().live()) {
    if (w->field(1) == Value(k.engine().syms().find("note"))) ++notes;
  }
  EXPECT_EQ(notes, 1);
}

TEST(SoarKernel, TracesOnePerElaborationCycle) {
  SoarOptions opts;
  opts.learning = false;
  SoarKernel k(opts);
  setup_micro(k, true);
  const auto stats = k.run();
  EXPECT_EQ(stats.traces.size(), stats.elab_cycles);
  uint64_t total_tasks = 0;
  for (const auto& t : stats.traces) total_tasks += t.task_count();
  EXPECT_GT(total_tasks, 10u);
}

TEST(SoarKernel, StuckWithoutEvaluationsEndsCleanly) {
  // No eval productions at all: tie cannot resolve; the run must terminate
  // without achieving the goal (not loop forever).
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 20;
  SoarKernel k(opts);
  k.load_productions(
      "(p propose-a"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  -->"
      "  (bind <o> (genatom o))"
      "  (make wme ^id <o> ^attr name ^value op-a)"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "acceptable))"
      "(p propose-b"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  -->"
      "  (bind <o> (genatom o))"
      "  (make wme ^id <o> ^attr name ^value op-b)"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "acceptable))");
  const Symbol s0 = k.make_id("s", 1);
  k.create_top_goal(k.engine().syms().intern("x"), s0);
  const auto stats = k.run();
  EXPECT_FALSE(stats.goal_achieved);
  EXPECT_GE(stats.impasses, 1u);
}

}  // namespace
}  // namespace psme
