// Constrained bilinear network organization (§6.2, Figure 6-8): equivalence
// with the linear network on match results, and critical-path reduction on
// long-chain productions.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/engine.h"
#include "lang/parser.h"
#include "psim/report.h"
#include "rete/bilinear.h"
#include "test_util.h"

namespace psme {
namespace {

/// A long-chain production in the style of Figure 6-7: a goal/state prefix
/// followed by `n_groups` independent feature groups hanging off the state.
std::string long_chain_production(int n_groups, int group_size) {
  std::ostringstream os;
  os << "(p monitor (goal ^ps <p>) (ps ^name strips ^id <p>) "
        "(goal ^state <s>)";
  for (int g = 0; g < n_groups; ++g) {
    for (int k = 0; k < group_size; ++k) {
      os << " (feat ^state <s> ^group g" << g << " ^slot " << k << " ^val <v"
         << g << "_" << k << ">)";
    }
  }
  os << " --> (halt))";
  return os.str();
}

void add_long_chain_wmes(Engine& e, int n_groups, int group_size) {
  e.add_wme_text("(goal ^ps p1 ^state s1)");
  e.add_wme_text("(ps ^name strips ^id p1)");
  for (int g = 0; g < n_groups; ++g) {
    for (int k = 0; k < group_size; ++k) {
      std::ostringstream w;
      w << "(feat ^state s1 ^group g" << g << " ^slot " << k << " ^val v" << g
        << k << ")";
      e.add_wme_text(w.str());
    }
  }
}

TEST(Bilinear, CountsInstantiationsLikeLinear) {
  const std::string src = long_chain_production(3, 3);

  // Linear network.
  Engine lin;
  lin.load(src);
  add_long_chain_wmes(lin, 3, 3);
  lin.match();
  ASSERT_EQ(test::instantiation_count(lin, "monitor"), 1);

  // Bilinear network over the same production.
  Engine bi;
  Parser parser(bi.syms(), bi.schemas(), test::test_rhs_arena());
  Production prod = parser.parse_production(src);
  BilinearOptions opts;
  opts.prefix_ces = 3;
  opts.group_size = 3;
  bi.state().sink = &bi.cs();
  const auto built = build_bilinear(bi.net(), prod, opts);
  EXPECT_GT(built.pnode, 0u);
  add_long_chain_wmes(bi, 3, 3);
  bi.match();
  EXPECT_EQ(bi.cs().size(), 1u);
}

TEST(Bilinear, RetractsOnDelete) {
  const std::string src = long_chain_production(2, 2);
  Engine bi;
  Parser parser(bi.syms(), bi.schemas(), test::test_rhs_arena());
  Production prod = parser.parse_production(src);
  BilinearOptions opts;
  opts.prefix_ces = 3;
  opts.group_size = 2;
  const auto built = build_bilinear(bi.net(), prod, opts);
  (void)built;
  bi.state().sink = &bi.cs();
  add_long_chain_wmes(bi, 2, 2);
  const Wme* goal = bi.wm().live().front();
  bi.match();
  ASSERT_EQ(bi.cs().size(), 1u);
  bi.remove_wme(goal);
  bi.match();
  EXPECT_EQ(bi.cs().size(), 0u);
}

TEST(Bilinear, ShortensCriticalPath) {
  // 4 groups x 5 CEs = 20 feature CEs + 3 prefix CEs = 23-CE chain.
  const int groups = 4, gsize = 5;
  const std::string src = long_chain_production(groups, gsize);
  CostModel cm;

  Engine lin;
  lin.load(src);
  add_long_chain_wmes(lin, groups, gsize);
  const auto lin_trace = lin.match();
  const auto lin_cp = critical_path(lin_trace, cm);

  Engine bi;
  Parser parser(bi.syms(), bi.schemas(), test::test_rhs_arena());
  Production prod = parser.parse_production(src);
  BilinearOptions opts;
  opts.prefix_ces = 3;
  opts.group_size = gsize;
  build_bilinear(bi.net(), prod, opts);
  bi.state().sink = &bi.cs();
  add_long_chain_wmes(bi, groups, gsize);
  const auto bi_trace = bi.match();
  const auto bi_cp = critical_path(bi_trace, cm);

  ASSERT_EQ(lin.cs().size(), 1u);
  ASSERT_EQ(bi.cs().size(), 1u);
  EXPECT_LT(bi_cp.length, lin_cp.length);
  EXPECT_LT(bi_cp.cost_us, lin_cp.cost_us);
}

TEST(Bilinear, BalancedTreeShorterThanLinearCombine) {
  const int groups = 6, gsize = 3;
  const std::string src = long_chain_production(groups, gsize);
  CostModel cm;

  auto run = [&](bool tree) {
    Engine e;
    Parser parser(e.syms(), e.schemas(), test::test_rhs_arena());
    Production prod = parser.parse_production(src);
    BilinearOptions opts;
    opts.prefix_ces = 3;
    opts.group_size = gsize;
    opts.balanced_tree = tree;
    build_bilinear(e.net(), prod, opts);
    e.state().sink = &e.cs();
    add_long_chain_wmes(e, groups, gsize);
    const auto trace = e.match();
    EXPECT_EQ(e.cs().size(), 1u);
    return critical_path(trace, cm).length;
  };
  EXPECT_LE(run(true), run(false));
}

TEST(Bilinear, RejectsNegatedConditions) {
  Engine e;
  Parser parser(e.syms(), e.schemas(), test::test_rhs_arena());
  Production prod =
      parser.parse_production("(p bad (a ^v <x>) -(b ^v <x>) --> (halt))");
  EXPECT_THROW(build_bilinear(e.net(), prod, BilinearOptions{}),
               std::runtime_error);
}

TEST(Bilinear, RejectsCrossGroupVariables) {
  Engine e;
  Parser parser(e.syms(), e.schemas(), test::test_rhs_arena());
  // <y> is bound in the first feature group and used in the second.
  Production prod = parser.parse_production(
      "(p bad (goal ^state <s>) "
      "(feat ^state <s> ^val <y>) (feat ^state <s> ^slot 1) "
      "(feat ^state <s> ^val <y> ^slot 2) (feat ^state <s> ^slot 3) "
      "--> (halt))");
  BilinearOptions opts;
  opts.prefix_ces = 1;
  opts.group_size = 2;
  EXPECT_THROW(build_bilinear(e.net(), prod, opts), std::runtime_error);
}

}  // namespace
}  // namespace psme
