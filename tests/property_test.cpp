// Property-based sweeps over randomized workloads:
//  * Rete invariant: after any sequence of adds/deletes, the conflict set
//    equals the from-scratch match of the surviving wmes;
//  * incremental production addition == rebuild, under random batches;
//  * serial == parallel for random workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.h"
#include "engine/engine.h"
#include "lang/parser.h"
#include "par/parallel_match.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;

const char* kProductions =
    "(p r1 (a ^v <x>) (b ^v <x>) --> (halt))"
    "(p r2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
    "(p r3 (a ^v <x>) -(b ^v <x>) --> (halt))"
    "(p r4 (b ^v <x>) (c ^w <x>) --> (halt))"
    "(p r5 (a ^v <x>) -{ (b ^v <x>) (c ^v <x>) } --> (halt))"
    "(p r6 (c ^v <x> ^w <x>) --> (halt))"
    "(p r7 (a ^v { > 2 <x> }) (b ^v < <x>) --> (halt))";

struct Op {
  bool add;
  std::string cls;
  int64_t v, w;
};

std::vector<Op> random_ops(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Op> ops;
  for (int i = 0; i < n; ++i) {
    Op op;
    op.add = ops.empty() || rng.chance(0.7);
    op.cls = std::array<const char*, 3>{"a", "b", "c"}[rng.below(3)];
    op.v = rng.range(0, 6);
    op.w = rng.range(0, 6);
    ops.push_back(op);
  }
  return ops;
}

/// Applies ops to an engine: adds create wmes; deletes remove a random live
/// wme (deterministically chosen).
void apply_ops(Engine& e, const std::vector<Op>& ops, uint64_t seed,
               bool match_each_step) {
  Rng rng(seed ^ 0xabcdef);
  for (const Op& op : ops) {
    if (op.add) {
      const Symbol cls = e.syms().intern(op.cls);
      // Schema: ensure slots v (0) and w (1) exist for class c.
      e.schemas().slot(cls, e.syms().intern("v"));
      if (op.cls == "c") e.schemas().slot(cls, e.syms().intern("w"));
      std::vector<Value> fields{Value(op.v)};
      if (op.cls == "c") fields.push_back(Value(op.w));
      e.add_wme(cls, std::move(fields));
    } else {
      const auto live = e.wm().live();
      if (!live.empty()) {
        e.remove_wme(live[rng.below(live.size())]);
      }
    }
    if (match_each_step) e.match();
  }
  e.match();
}

class ReteInvariant : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReteInvariant, IncrementalEqualsFromScratch) {
  const uint64_t seed = GetParam();
  const auto ops = random_ops(seed, 40);

  Engine inc;
  inc.load(kProductions);
  apply_ops(inc, ops, seed, /*match_each_step=*/true);

  // From scratch: replay only the surviving wmes into a fresh engine.
  Engine scratch;
  scratch.load(kProductions);
  for (const Wme* w : inc.wm().live()) {
    scratch.add_wme(w->cls.valid()
                        ? scratch.syms().intern(inc.syms().name(w->cls))
                        : Symbol(),
                    w->fields);
  }
  scratch.match();

  EXPECT_EQ(cs_fingerprint(inc), cs_fingerprint(scratch)) << "seed " << seed;
  // Memory-state sanity: there are no leaked right entries for dead wmes.
  EXPECT_EQ(inc.state().tables.total_right_entries(),
            scratch.state().tables.total_right_entries());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReteInvariant,
                         ::testing::Range<uint64_t>(1, 13));

class IncrementalAddProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalAddProperty, AddAfterWmesEqualsBefore) {
  const uint64_t seed = GetParam();
  const auto ops = random_ops(seed, 30);
  const std::vector<std::string> prods = {
      "(p r1 (a ^v <x>) (b ^v <x>) --> (halt))",
      "(p r2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))",
      "(p r3 (a ^v <x>) -(b ^v <x>) --> (halt))",
      "(p r5 (a ^v <x>) -{ (b ^v <x>) (c ^v <x>) } --> (halt))",
  };

  Engine ref;
  for (const auto& p : prods) ref.load(p);
  apply_ops(ref, ops, seed, false);

  Engine inc;
  inc.load(prods[0]);  // only the first production up front
  apply_ops(inc, ops, seed, false);
  for (size_t i = 1; i < prods.size(); ++i) {
    Parser parser(inc.syms(), inc.schemas(), test::test_rhs_arena());
    inc.add_production_runtime(parser.parse_production(prods[i]));
  }
  EXPECT_EQ(cs_fingerprint(ref), cs_fingerprint(inc)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalAddProperty,
                         ::testing::Range<uint64_t>(100, 110));

class SerialParallelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerialParallelProperty, ParallelMatchesSerial) {
  const uint64_t seed = GetParam();
  const auto ops = random_ops(seed, 30);

  Engine serial;
  serial.load(kProductions);
  apply_ops(serial, ops, seed, false);

  Engine par;
  par.load(kProductions);
  // Apply the same surviving wmes, then run one big parallel cycle.
  struct Collector final : ExecContext {
    void emit(Activation&& a) override { seeds.push_back(std::move(a)); }
    std::vector<Activation> seeds;
  } collector;
  for (const Wme* w : serial.wm().live()) {
    const Wme* nw = par.wm().add(par.syms().intern(serial.syms().name(w->cls)),
                                 w->fields);
    par.net().inject(nw, true, collector);
  }
  ParallelMatcher matcher(par.net(), par.state(), 1 + seed % 6,
                          seed % 2 == 0 ? TaskQueueSet::Policy::Multi
                                        : TaskQueueSet::Policy::Single);
  matcher.run_cycle(std::move(collector.seeds));

  EXPECT_EQ(cs_fingerprint(serial), cs_fingerprint(par)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialParallelProperty,
                         ::testing::Range<uint64_t>(200, 212));

}  // namespace
}  // namespace psme
