#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "base/rng.h"
#include "base/symbol.h"
#include "base/value.h"

namespace psme {
namespace {

TEST(SymbolTable, InternReturnsSameSymbolForSameString) {
  SymbolTable t;
  const Symbol a = t.intern("hello");
  const Symbol b = t.intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.name(a), "hello");
}

TEST(SymbolTable, DistinctStringsGetDistinctSymbols) {
  SymbolTable t;
  EXPECT_NE(t.intern("a"), t.intern("b"));
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTable, FindReturnsInvalidForUnknown) {
  SymbolTable t;
  EXPECT_FALSE(t.find("missing").valid());
  t.intern("present");
  EXPECT_TRUE(t.find("present").valid());
}

TEST(SymbolTable, GensymNeverCollides) {
  SymbolTable t;
  t.intern("s1");
  const Symbol g = t.gensym("s");
  EXPECT_NE(t.name(g), "s1");
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(seen.insert(std::string(t.name(t.gensym("x")))).second);
  }
}

TEST(SymbolTable, NameThrowsOnInvalid) {
  SymbolTable t;
  EXPECT_THROW(t.name(Symbol()), std::out_of_range);
  EXPECT_THROW(t.name(Symbol(42)), std::out_of_range);
}

TEST(Value, KindsAndAccessors) {
  SymbolTable t;
  const Value s(t.intern("sym"));
  const Value i(int64_t{42});
  const Value f(2.5);
  const Value nil;
  EXPECT_TRUE(s.is_sym());
  EXPECT_TRUE(i.is_num());
  EXPECT_TRUE(f.is_num());
  EXPECT_TRUE(nil.is_nil());
  EXPECT_EQ(i.as_int(), 42);
  EXPECT_DOUBLE_EQ(f.as_float(), 2.5);
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
}

TEST(Value, EqualValuesHashEqually) {
  EXPECT_EQ(Value(int64_t{3}).hash(), Value(3.0).hash());
  SymbolTable t;
  const Symbol s = t.intern("x");
  EXPECT_EQ(Value(s).hash(), Value(s).hash());
}

TEST(Value, SymbolAndIntDoNotCompareEqual) {
  SymbolTable t;
  const Symbol s = t.intern("x");
  EXPECT_NE(Value(s), Value(static_cast<int64_t>(s.raw())));
}

TEST(Value, SameTypePredicate) {
  SymbolTable t;
  EXPECT_TRUE(Value(int64_t{1}).same_type(Value(2.0)));
  EXPECT_TRUE(Value(t.intern("a")).same_type(Value(t.intern("b"))));
  EXPECT_FALSE(Value(t.intern("a")).same_type(Value(int64_t{1})));
}

TEST(Value, ToString) {
  SymbolTable t;
  EXPECT_EQ(Value(t.intern("abc")).to_string(t), "abc");
  EXPECT_EQ(Value(int64_t{7}).to_string(t), "7");
  EXPECT_EQ(Value().to_string(t), "nil");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 10; ++i) diff += a.next() != b.next();
  EXPECT_GT(diff, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace psme
