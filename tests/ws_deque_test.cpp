// Chase–Lev deque: single-threaded semantics (LIFO owner end, FIFO steal
// end, growth from tiny capacities with index wraparound), and owner/thief
// storms asserting conservation — every pushed item is taken exactly once,
// across pops, steals and the final drain. The storms are what the `tsan`
// preset chews on; the single-threaded cases pin the algorithm's contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "par/worker_pool.h"
#include "par/ws_deque.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PSME_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PSME_SANITIZED_BUILD 1
#endif
#endif
#ifndef PSME_SANITIZED_BUILD
#define PSME_SANITIZED_BUILD 0
#endif

namespace psme {
namespace {

struct Item {
  explicit Item(uint64_t v) : value(v) {}
  uint64_t value;
};

TEST(WsDeque, OwnerPopsLifoThiefStealsFifo) {
  WsDeque<Item> d;
  Item a{1}, b{2}, c{3};
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.size(), 3u);

  // Thief takes the oldest.
  Item* s = d.steal();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 1u);

  // Owner takes the newest.
  Item* p = d.pop();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value, 3u);

  p = d.pop();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value, 2u);

  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(WsDeque, GrowsFromTinyCapacityPreservingContents) {
  WsDeque<Item> d(2);
  EXPECT_EQ(d.capacity(), 2u);
  std::vector<std::unique_ptr<Item>> items;
  constexpr uint64_t kN = 1000;
  for (uint64_t i = 0; i < kN; ++i) {
    items.push_back(std::make_unique<Item>(i));
    d.push(items.back().get());
  }
  EXPECT_GE(d.capacity(), kN);
  EXPECT_GT(d.ring_count(), 1u);  // growth actually happened
  EXPECT_EQ(d.size(), kN);
  // Steal end sees the original FIFO order across every ring boundary.
  for (uint64_t i = 0; i < kN / 2; ++i) {
    Item* s = d.steal();
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, i);
  }
  // Owner end sees LIFO for the rest.
  for (uint64_t i = kN; i > kN / 2; --i) {
    Item* p = d.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->value, i - 1);
  }
  EXPECT_TRUE(d.empty());
}

TEST(WsDeque, WraparoundAtSmallCapacity) {
  // Repeated push/pop/steal cycles drive the 64-bit indices far past the
  // ring capacity, exercising the mask arithmetic (the wraparound half of
  // the ABA question; the top counter itself is monotone and cannot ABA).
  WsDeque<Item> d(2);
  Item cell{0};
  for (int round = 0; round < 5000; ++round) {
    d.push(&cell);
    d.push(&cell);
    if (round % 2 == 0) {
      EXPECT_NE(d.pop(), nullptr);
      EXPECT_NE(d.steal(), nullptr);
    } else {
      EXPECT_NE(d.steal(), nullptr);
      EXPECT_NE(d.pop(), nullptr);
    }
  }
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.capacity(), 2u);  // never needed to grow
}

// Owner + thieves hammering one deque. Conservation: every item is claimed
// exactly once (atomic claim counters), and pushed == claimed at the end.
void owner_thief_storm(size_t n_thieves, size_t items_per_wave, int waves) {
  WsDeque<Item> d(2);  // force growth under fire
  const uint64_t total = items_per_wave * static_cast<uint64_t>(waves);
  std::vector<std::unique_ptr<Item>> items;
  items.reserve(total);
  for (uint64_t i = 0; i < total; ++i) {
    items.push_back(std::make_unique<Item>(i));
  }
  std::vector<std::atomic<uint32_t>> claims(total);
  std::atomic<uint64_t> taken{0};
  std::atomic<bool> done{false};

  auto claim = [&](Item* it) {
    ASSERT_NE(it, nullptr);
    claims[it->value].fetch_add(1, std::memory_order_relaxed);
    taken.fetch_add(1, std::memory_order_relaxed);
  };

  run_workers(n_thieves + 1, [&](size_t worker) {
    if (worker == 0) {
      // Owner: pushes in waves, pops between waves.
      uint64_t next = 0;
      for (int wv = 0; wv < waves; ++wv) {
        for (size_t i = 0; i < items_per_wave; ++i) {
          d.push(items[next++].get());
        }
        // Pop about half of what was just pushed.
        for (size_t i = 0; i < items_per_wave / 2; ++i) {
          if (Item* p = d.pop()) claim(p);
        }
      }
      // Drain the rest; thieves may still be racing us for the last items.
      while (taken.load(std::memory_order_acquire) < total) {
        if (Item* p = d.pop()) {
          claim(p);
        }
      }
      done.store(true, std::memory_order_release);
    } else {
      while (!done.load(std::memory_order_acquire)) {
        if (Item* s = d.steal()) claim(s);
      }
    }
  });

  EXPECT_EQ(taken.load(), total);
  for (uint64_t i = 0; i < total; ++i) {
    EXPECT_EQ(claims[i].load(), 1u) << "item " << i;
  }
  EXPECT_TRUE(d.empty());
}

TEST(WsDequeStress, OwnerAndOneThief) {
  owner_thief_storm(1, 64, PSME_SANITIZED_BUILD ? 40 : 300);
}

TEST(WsDequeStress, OwnerAndManyThieves) {
  owner_thief_storm(7, 32, PSME_SANITIZED_BUILD ? 40 : 300);
}

TEST(WsDequeStress, ThievesOnTinyDeque) {
  // Capacity-2 deque, single-item waves: maximizes top/bottom CAS collisions
  // on the "last element" race between pop and steal.
  owner_thief_storm(3, 2, PSME_SANITIZED_BUILD ? 200 : 2000);
}

}  // namespace
}  // namespace psme
