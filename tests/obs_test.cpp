// Tracing & metrics layer (DESIGN.md §11): ring overflow drop-and-count,
// registry snapshot/delta arithmetic, and a Chrome trace_event JSON
// round-trip — the exported document is parsed back and checked for valid
// structure, per-track thread names, and laminar span nesting (any two
// spans on one track are either disjoint or properly nested, which is what
// makes the trace loadable and meaningful in Perfetto).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "lang/parser.h"
#include "obs/event_ring.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace psme {
namespace {

// ---- event ring ------------------------------------------------------------

TEST(EventRing, OverflowDropsAndCounts) {
  obs::EventRing ring(4);
  for (uint32_t i = 0; i < 7; ++i) {
    obs::TraceEvent e;
    e.node = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  // The EARLIEST events win (the trace shows how the window started).
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].node, static_cast<uint32_t>(i));
  }
}

TEST(EventRing, ClearRewindsButKeepsCumulativeDropCount) {
  obs::EventRing ring(2);
  obs::TraceEvent e;
  for (int i = 0; i < 5; ++i) ring.push(e);
  EXPECT_EQ(ring.dropped(), 3u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 3u) << "clear() must not erase drop accounting";
  ring.push(e);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 3u);
}

// ---- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, CountersAddGaugesOverwrite) {
  obs::MetricsRegistry m;
  m.counter("par.tasks", 10);
  m.counter("par.tasks", 5);
  m.gauge("arena.chunks_live", 7);
  m.gauge("arena.chunks_live", 3);
  EXPECT_EQ(m.value("par.tasks"), 15u);
  EXPECT_EQ(m.value("arena.chunks_live"), 3u);
  EXPECT_TRUE(m.has("par.tasks"));
  EXPECT_FALSE(m.has("par.steals"));
  EXPECT_EQ(m.value("par.steals"), 0u) << "absent metrics read as zero";
}

TEST(MetricsRegistry, SnapshotDeltaArithmetic) {
  obs::MetricsRegistry m;
  m.counter("c.up", 100);
  m.gauge("g.level", 4);
  const obs::MetricsRegistry base = m.snapshot();

  m.counter("c.up", 20);
  m.counter("c.fresh", 3);  // absent from base: counts from 0
  m.gauge("g.level", 9);

  const obs::MetricsRegistry d = m.delta(base);
  EXPECT_EQ(d.value("c.up"), 20u);
  EXPECT_EQ(d.value("c.fresh"), 3u);
  EXPECT_EQ(d.value("g.level"), 9u) << "gauges keep the newer value";

  // A counter that went "backwards" (base from another run) saturates at 0.
  obs::MetricsRegistry big;
  big.counter("c.up", 1000);
  EXPECT_EQ(m.delta(big).value("c.up"), 0u);
}

TEST(MetricsRegistry, MergeAddsCountersOverwritesGauges) {
  obs::MetricsRegistry a, b;
  a.counter("c", 1);
  a.gauge("g", 10);
  b.counter("c", 2);
  b.gauge("g", 20);
  a.merge(b);
  EXPECT_EQ(a.value("c"), 3u);
  EXPECT_EQ(a.value("g"), 20u);
}

TEST(Metrics, ParallelStatsAccumulateAndCollect) {
  ParallelStats a, b;
  a.tasks = 10;
  a.steals = 1;
  a.wall_seconds = 0.5;
  a.pool_slabs = 2;
  b.tasks = 5;
  b.failed_steals = 4;
  b.wall_seconds = 0.25;
  b.pool_slabs = 3;
  b.arena.chunks_live = 7;
  a.accumulate(b);
  EXPECT_EQ(a.tasks, 15u);
  EXPECT_EQ(a.steals, 1u);
  EXPECT_EQ(a.failed_steals, 4u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
  EXPECT_EQ(a.pool_slabs, 3u) << "gauges take the newer snapshot";
  EXPECT_EQ(a.arena.chunks_live, 7u);

  obs::MetricsRegistry m;
  obs::collect(m, a);
  EXPECT_EQ(m.value("par.tasks"), 15u);
  EXPECT_EQ(m.value("par.failed_steals"), 4u);
  EXPECT_EQ(m.value("par.wall_us"), 750000u);
  EXPECT_EQ(m.value("arena.chunks_live"), 7u);
}

TEST(Metrics, MatchStatsDelta) {
  MatchStats t0, t1;
  t0.spill_allocs = 10;
  t0.spill_bytes = 100;
  t0.chunks_allocated = 3;
  t1.spill_allocs = 14;
  t1.spill_bytes = 180;
  t1.chunks_allocated = 5;
  t1.chunks_freed = 1;
  t1.chunks_live = 4;
  t1.epoch = 9;
  const MatchStats d = t1.delta(t0);
  EXPECT_EQ(d.spill_allocs, 4u);
  EXPECT_EQ(d.spill_bytes, 80u);
  EXPECT_EQ(d.chunks_allocated, 2u);
  EXPECT_EQ(d.chunks_freed, 1u);
  EXPECT_EQ(d.chunks_live, 4u) << "gauges keep the current snapshot";
  EXPECT_EQ(d.epoch, 9u);
}

// ---- minimal JSON parser for the round-trip check --------------------------

struct JVal {
  enum class T { Null, Bool, Num, Str, Arr, Obj };
  T t = T::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JVal> arr;
  std::map<std::string, JVal> obj;

  const JVal& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JVal parse() {
    JVal v = value();
    ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing junk");
    return v;
  }

 private:
  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }
  JVal value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JVal v;
      v.t = JVal::T::Str;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }
  JVal object() {
    JVal v;
    v.t = JVal::T::Obj;
    expect('{');
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }
  JVal array() {
    JVal v;
    v.t = JVal::T::Arr;
    expect('[');
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        out.push_back(s_[pos_++]);
        continue;
      }
      out.push_back(c);
    }
  }
  JVal boolean() {
    JVal v;
    v.t = JVal::T::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }
  JVal null() {
    if (s_.compare(pos_, 4, "null") != 0) throw std::runtime_error("bad null");
    pos_ += 4;
    return JVal{};
  }
  JVal number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JVal v;
    v.t = JVal::T::Num;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string export_to_string(const obs::Tracer& t) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  obs::export_chrome_json(t, f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Laminar-family check: sorted by (start asc, end desc), every span must
/// nest inside the enclosing open span or start after it ends. Boundary
/// sharing is allowed (a child may end exactly where its parent does).
void expect_laminar(const std::vector<std::pair<double, double>>& raw) {
  auto spans = raw;
  std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  });
  const double eps = 1e-3;  // µs; export has ns resolution
  std::vector<std::pair<double, double>> stack;
  for (const auto& s : spans) {
    while (!stack.empty() && stack.back().second <= s.first + eps) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(s.second, stack.back().second + eps)
          << "span [" << s.first << "," << s.second
          << "] overlaps but does not nest in [" << stack.back().first << ","
          << stack.back().second << "]";
    }
    stack.push_back(s);
  }
}

// ---- chrome JSON round-trip ------------------------------------------------

TEST(ChromeExport, RoundTripStructureAndNesting) {
  // A traced serial engine: match cycles, a run-time production add (§5.2
  // phases on the engine track), then more cycles.
  EngineOptions opts;
  opts.trace.enabled = true;
  opts.record_traces = false;
  Engine e(opts);
  e.load(
      "(p j2 (a ^v <x>) (b ^v <x>) --> (halt))"
      "(p neg (a ^v <x>) -(blocker ^v <x>) --> (halt))");
  for (int i = 0; i < 6; ++i) {
    e.add_wme_text("(a ^v " + std::to_string(i % 3) + ")");
    e.add_wme_text("(b ^v " + std::to_string(i % 3) + ")");
  }
  e.match();

  RhsArena arena;
  Parser parser(e.syms(), e.schemas(), arena);
  auto parsed = parser.parse_file("(p late (a ^v <x>) (c ^v <x>) --> (halt))");
  ASSERT_EQ(parsed.size(), 1u);
  e.add_production_runtime(std::move(parsed.front()));

  e.add_wme_text("(c ^v 1)");
  e.match();

  ASSERT_NE(e.tracer(), nullptr);
  const std::string json = export_to_string(*e.tracer());
  JVal doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse()) << json.substr(0, 400);

  const JVal& events = doc.at("traceEvents");
  ASSERT_EQ(events.t, JVal::T::Arr);
  ASSERT_FALSE(events.arr.empty());

  size_t metadata = 0;
  std::map<std::string, int> names;
  std::vector<std::pair<double, double>> track0_spans;
  for (const JVal& ev : events.arr) {
    const std::string ph = ev.at("ph").str;
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.at("name").str, "thread_name");
      continue;
    }
    ++names[ev.at("name").str];
    EXPECT_TRUE(ev.has("ts"));
    EXPECT_TRUE(ev.has("tid"));
    if (ph == "X") {
      ASSERT_TRUE(ev.has("dur"));
      if (ev.at("tid").num == 0) {
        track0_spans.emplace_back(ev.at("ts").num,
                                  ev.at("ts").num + ev.at("dur").num);
      }
    }
  }
  EXPECT_EQ(metadata, e.tracer()->tracks());

  // The engine track carries the cycle spans, task spans, and the §5.2
  // phases of the runtime add.
  EXPECT_GE(names["match"], 2);
  EXPECT_GT(names["task"], 0);
  EXPECT_EQ(names["chunk.compile"], 1);
  EXPECT_EQ(names["update.A"], 1);
  EXPECT_EQ(names["update.B"], 1);
  EXPECT_EQ(names["update.C"], 1);

  expect_laminar(track0_spans);

  // Drop accounting rides along in otherData.
  const JVal& other = doc.at("otherData");
  EXPECT_EQ(other.at("tracks").num, static_cast<double>(e.tracer()->tracks()));
  EXPECT_EQ(other.at("events").num,
            static_cast<double>(e.tracer()->total_events()));
}

TEST(ChromeExport, ParallelRunHasPerWorkerTracks) {
  EngineOptions opts;
  opts.trace.enabled = true;
  opts.record_traces = false;
  opts.match_workers = 4;
  Engine e(opts);
  e.load("(p cross (a ^v <x>) (c ^w <y>) --> (halt))");
  for (int i = 0; i < 24; ++i) {
    e.add_wme_text("(a ^v " + std::to_string(i) + ")");
    e.add_wme_text("(c ^w " + std::to_string(i) + ")");
  }
  e.match();

  ASSERT_NE(e.tracer(), nullptr);
  EXPECT_EQ(e.tracer()->tracks(), 5u) << "engine track + one per worker";

  const std::string json = export_to_string(*e.tracer());
  JVal doc;
  ASSERT_NO_THROW(doc = JsonParser(json).parse());

  // Task spans must appear on at least one WORKER track (tid >= 1), and
  // every worker track's spans must be laminar.
  std::map<int, std::vector<std::pair<double, double>>> spans_by_tid;
  size_t worker_tasks = 0;
  for (const JVal& ev : doc.at("traceEvents").arr) {
    if (ev.at("ph").str != "X") continue;
    const int tid = static_cast<int>(ev.at("tid").num);
    spans_by_tid[tid].emplace_back(ev.at("ts").num,
                                   ev.at("ts").num + ev.at("dur").num);
    if (tid >= 1 && ev.at("name").str == "task") ++worker_tasks;
  }
  EXPECT_GT(worker_tasks, 0u);
  for (const auto& [tid, spans] : spans_by_tid) expect_laminar(spans);
}

// ---- env hook --------------------------------------------------------------

TEST(EnvTrace, PathOnlyWhenSetAndNonEmpty) {
  unsetenv("PSME_TRACE");
  EXPECT_EQ(obs::env_trace_path(), nullptr);
  setenv("PSME_TRACE", "", 1);
  EXPECT_EQ(obs::env_trace_path(), nullptr);
  setenv("PSME_TRACE", "/tmp/x.json", 1);
  ASSERT_NE(obs::env_trace_path(), nullptr);
  EXPECT_STREQ(obs::env_trace_path(), "/tmp/x.json");
  unsetenv("PSME_TRACE");
}

}  // namespace
}  // namespace psme
