// Allocation-free engine cycle (DESIGN.md §10): after warm-up, the full
// match → select → fire → apply loop performs ZERO heap allocations, for
// every match policy. The workload is a ping-pong pair driven through the
// network-retraction regime (fire in place, let the match retract the fired
// instantiation), so every storage structure in the cycle is exercised:
//
//   make-it fires  -> adds (thing ^v 1)   [negation retracts make-it's PI,
//                                          join inserts del-it's PI]
//   del-it fires   -> removes the thing   [join retracts del-it's PI,
//                                          negation re-inserts make-it's PI]
//
// Each iteration recycles: a WorkingMemory rec, alpha-memory chunk entries,
// hash-line right entries, conflict-set slab nodes, the fire delta's add
// slots, the seed/queue scratch, and (parallel policies) the per-worker
// batches. Timetags grow monotonically, so hash keys shift every cycle —
// placement changes must not trigger growth once high-water capacity exists.
#include <gtest/gtest.h>

#include <string>

#include "alloc_probe.h"
#include "engine/engine.h"
#include "par/parallel_match.h"

namespace psme {
namespace {

using test::heap_allocs;

constexpr const char* kPingPong =
    "(p make-it (ctl ^phase go) -(thing ^v 1) --> (make thing ^v 1))\n"
    "(p del-it (ctl ^phase go) (thing ^v 1) --> (remove 2))";

/// One engine cycle: fire the single unfired instantiation (in place; the
/// next match's retraction removes it) and drain the match.
void cycle(Engine& e) {
  const Instantiation* inst = e.cs().select_lex();
  ASSERT_NE(inst, nullptr) << "ping-pong must never go quiescent";
  e.fire(inst, /*remove_after_fire=*/false, /*dedup_adds=*/false);
  e.match();
}

void expect_allocation_free_cycles(size_t workers, TaskQueueSet::Policy policy,
                                   bool tracing = false,
                                   StealTuning tuning = {},
                                   bool profiling = false) {
  EngineOptions opts;
  opts.record_traces = false;  // trace recording allocates by design
  opts.match_workers = workers;
  opts.match_policy = policy;
  opts.steal = tuning;
  // Event tracing, by contrast, must NOT allocate in steady state: rings
  // are preallocated (small here, so overflow's drop-and-count path is
  // exercised too) and events are fixed-size PODs.
  opts.trace.enabled = tracing;
  opts.trace.ring_events = 1u << 10;
  // Profiling shards grow only at quiescent drain boundaries; once the
  // network stops growing, sample()/record() touch preallocated cells only.
  opts.profile = profiling;
  opts.profile_sample_shift = 2;  // sampling tick + timing both exercised
  Engine e(opts);
  e.load(kPingPong);
  e.add_wme_text("(ctl ^phase go)");
  e.match();

  // Warm-up: reach high-water capacity in every pool, ring, and scratch
  // buffer (and spin up the worker pool for parallel policies).
  for (int i = 0; i < 32; ++i) cycle(e);

  const uint64_t before = heap_allocs();
  for (int i = 0; i < 1000; ++i) cycle(e);
  EXPECT_EQ(heap_allocs() - before, 0u)
      << "steady-state engine cycles must not touch the heap";

  // The regime stayed balanced: exactly one live instantiation remains.
  EXPECT_EQ(e.cs().size(), 1u);

  if (tracing) {
    // The tracer really ran: the small rings overflowed (drop-and-count,
    // still allocation-free) and events were recorded on every track that
    // executed work.
    ASSERT_NE(e.tracer(), nullptr);
    EXPECT_GT(e.tracer()->total_events(), 0u);
    EXPECT_GT(e.tracer()->total_dropped(), 0u)
        << "1032 cycles into 1024-event rings must overflow";
  }
  if (profiling) {
    // The profiler really ran: activations were counted, and a subset of
    // them was timed (shift 2 = 1 in 4 per worker tick).
    ASSERT_NE(e.profiler(), nullptr);
    const obs::ProfileSnapshot s = e.profiler()->snapshot();
    EXPECT_GT(s.total_activations, 0u);
    EXPECT_GT(s.total_sampled, 0u);
    EXPECT_LE(s.total_sampled, s.total_activations);
  }
}

TEST(EngineAlloc, SerialCycleIsAllocationFree) {
  expect_allocation_free_cycles(0, TaskQueueSet::Policy::Steal);
}

TEST(EngineAlloc, SingleQueueCycleIsAllocationFree) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Single);
}

TEST(EngineAlloc, MultiQueueCycleIsAllocationFree) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Multi);
}

TEST(EngineAlloc, StealCycleIsAllocationFree) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Steal);
}

// The chain-splitting corners must hold the guarantee too: split-every-link
// (every continuation round-trips through the activation pool and deque, with
// the backoff ladder off so the park path runs every cycle) and never-split
// (continuations live entirely in a stack slot — no pool traffic at all).
TEST(EngineAlloc, StealSplitEveryLinkCycleIsAllocationFree) {
  StealTuning t;
  t.chain_split_depth = 1;
  t.backoff_park_sweeps = 0;
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Steal, false, t);
}

TEST(EngineAlloc, StealNeverSplitCycleIsAllocationFree) {
  StealTuning t;
  t.chain_split_depth = 0;
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Steal, false, t);
}

// Same four regimes with event tracing on: recording a span is a clock read
// plus a bump-and-store into a preallocated ring, so the §10 guarantee must
// hold with the obs layer enabled (the ISSUE's hard constraint).
TEST(EngineAlloc, SerialCycleIsAllocationFreeWithTracing) {
  expect_allocation_free_cycles(0, TaskQueueSet::Policy::Steal, true);
}

TEST(EngineAlloc, SingleQueueCycleIsAllocationFreeWithTracing) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Single, true);
}

TEST(EngineAlloc, MultiQueueCycleIsAllocationFreeWithTracing) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Multi, true);
}

TEST(EngineAlloc, StealCycleIsAllocationFreeWithTracing) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Steal, true);
}

// Same four regimes with the match profiler on (ISSUE 10 acceptance): the
// hot path is a shard-local tick, at most two clock reads, and writes into
// preallocated cells — §10 must hold with profiling enabled.
TEST(EngineAlloc, SerialCycleIsAllocationFreeWithProfiling) {
  expect_allocation_free_cycles(0, TaskQueueSet::Policy::Steal, false, {},
                                /*profiling=*/true);
}

TEST(EngineAlloc, SingleQueueCycleIsAllocationFreeWithProfiling) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Single, false, {},
                                /*profiling=*/true);
}

TEST(EngineAlloc, MultiQueueCycleIsAllocationFreeWithProfiling) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Multi, false, {},
                                /*profiling=*/true);
}

TEST(EngineAlloc, StealCycleIsAllocationFreeWithProfiling) {
  expect_allocation_free_cycles(4, TaskQueueSet::Policy::Steal, false, {},
                                /*profiling=*/true);
}

}  // namespace
}  // namespace psme
