// Context-reachability garbage collection (§3: the decision module
// "automatically garbage collects inaccessible wmes").
#include <gtest/gtest.h>

#include "soar/kernel.h"

namespace psme {
namespace {

/// A two-step task whose operator application replaces the state; old states
/// become garbage.
void setup(SoarKernel& k) {
  k.load_productions(
      "(p propose"
      "  (wme ^id <g> ^attr problem-space ^value gc)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  -->"
      "  (bind <o> (genatom o))"
      "  (make wme ^id <o> ^attr name ^value step)"
      "  (make wme ^id <o> ^attr for-state ^value <s>)"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "acceptable))"
      "(p apply"
      "  (wme ^id <g> ^attr operator ^value <o>)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <o> ^attr for-state ^value <s>)"
      "  (wme ^id <s> ^attr count ^value <n>)"
      "  -->"
      "  (bind <ns> (genatom s))"
      "  (make wme ^id <ns> ^attr prev ^value <s>)"
      "  (make wme ^id <ns> ^attr count ^value (compute <n> + 1))"
      "  (make wme ^id <ns> ^attr junk ^value (genatom j))"
      "  (make pref ^gid <g> ^sid <s> ^role state ^value <ns> ^kind "
      "acceptable))"
      "(p done"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <s> ^attr count ^value 4)"
      "  -->"
      "  (make wme ^id <g> ^attr success ^value yes))");
  const Symbol s0 = k.make_id("s", 1);
  k.add_triple(s0, "count", Value(static_cast<int64_t>(0)));
  k.create_top_goal(k.engine().syms().intern("gc"), s0);
  k.set_goal_test(
      [](SoarKernel& kk) { return kk.has_triple_attr("success", "yes"); });
}

TEST(SoarGc, SupersededStatesAreCollected) {
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 30;
  SoarKernel k(opts);
  setup(k);
  const auto stats = k.run();
  ASSERT_TRUE(stats.goal_achieved);
  // After 4 state replacements, exactly one state object (the current one)
  // should still have a count triple in WM.
  const Symbol count = k.engine().syms().find("count");
  int live_counts = 0;
  for (const Wme* w : k.engine().wm().live()) {
    if (w->field(1) == Value(count)) ++live_counts;
  }
  EXPECT_EQ(live_counts, 1);
}

TEST(SoarGc, StalePreferencesAreCollected) {
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 30;
  SoarKernel k(opts);
  setup(k);
  k.run();
  // Every surviving preference must be scoped to the current state.
  const Symbol pref = k.engine().syms().find("pref");
  const Symbol cur = k.goal_stack().front().state;
  for (const Wme* w : k.engine().wm().live()) {
    if (w->cls != pref) continue;
    if (w->field(1).is_nil()) continue;
    EXPECT_EQ(w->field(1), Value(cur))
        << w->to_string(k.engine().syms(), k.engine().schemas());
  }
}

TEST(SoarGc, OldOperatorObjectsAreCollected) {
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 30;
  SoarKernel k(opts);
  setup(k);
  k.run();
  // Operators for superseded states (their for-state triples) are gone.
  const Symbol for_state = k.engine().syms().find("for-state");
  const Symbol cur = k.goal_stack().front().state;
  for (const Wme* w : k.engine().wm().live()) {
    if (w->field(1) == Value(for_state)) {
      EXPECT_EQ(w->field(2), Value(cur));
    }
  }
}

TEST(SoarGc, StaticStructureSurvives) {
  // Structure hanging off the goal must never be collected.
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 30;
  SoarKernel k(opts);
  setup(k);
  const Symbol fixture = k.make_id("f", 1);
  // Attach after setup's create_top_goal: hang it off the goal.
  k.add_triple(k.goal_stack().front().id, "fixture", Value(fixture));
  k.add_triple(fixture, "label", Value(k.engine().syms().intern("keep-me")));
  const auto stats = k.run();
  ASSERT_TRUE(stats.goal_achieved);
  EXPECT_TRUE(k.has_triple_attr("label", "keep-me"));
}

TEST(SoarGc, MatchStateShrinksWithCollection) {
  // The retracted wmes must leave the Rete memories, not just WM.
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 30;
  SoarKernel k(opts);
  setup(k);
  k.run();
  // WM holds only the live structure; the alpha/beta memories cannot hold
  // more wme references than WM has live wmes times the network fan-out.
  const size_t live = k.engine().wm().size();
  EXPECT_LT(live, 30u);
  EXPECT_LT(k.engine().state().tables.total_right_entries(), live * 12);
}

TEST(SoarGc, ChunkProvenanceSurvivesCollection) {
  // Learning on: chunks built after GC ran must still be able to backtrace
  // (removed wmes stay allocated).
  SoarOptions opts;
  opts.learning = true;
  opts.max_decisions = 30;
  SoarKernel k(opts);
  setup(k);
  const auto stats = k.run();
  EXPECT_TRUE(stats.goal_achieved);  // and no crash while chunking
}

}  // namespace
}  // namespace psme
