// Engine-level behaviour: OPS5 match-select-fire loop, LEX conflict
// resolution, RHS actions, working memory bookkeeping.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace psme {
namespace {

TEST(WorkingMemory, AddFindRemove) {
  WorkingMemory wm;
  SymbolTable syms;
  const Symbol cls = syms.intern("a");
  const Wme* w = wm.add(cls, {Value(int64_t{1})});
  EXPECT_EQ(wm.size(), 1u);
  EXPECT_EQ(wm.find(cls, {Value(int64_t{1})}), w);
  EXPECT_TRUE(wm.remove(w));
  EXPECT_EQ(wm.find(cls, {Value(int64_t{1})}), nullptr);
  EXPECT_FALSE(wm.remove(w));  // already gone
  wm.end_cycle();
}

TEST(WorkingMemory, TimetagsIncrease) {
  WorkingMemory wm;
  SymbolTable syms;
  const Wme* a = wm.add(syms.intern("a"), {});
  const Wme* b = wm.add(syms.intern("a"), {});
  EXPECT_LT(a->timetag, b->timetag);
}

TEST(WorkingMemory, DuplicateContentsAllowed) {
  WorkingMemory wm;
  SymbolTable syms;
  const Symbol cls = syms.intern("a");
  wm.add(cls, {Value(int64_t{1})});
  wm.add(cls, {Value(int64_t{1})});
  EXPECT_EQ(wm.size(), 2u);
}

TEST(Engine, HaltStopsRun) {
  Engine e;
  e.load("(p stop (go ^now yes) --> (halt))");
  e.add_wme_text("(go ^now yes)");
  const auto res = e.run(100);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.cycles, 1u);
}

TEST(Engine, WriteCollectsOutput) {
  Engine e;
  e.load("(p w (msg ^text <t>) --> (write saying <t>) (remove 1))");
  e.add_wme_text("(msg ^text hello)");
  e.run(10);
  ASSERT_EQ(e.output().size(), 1u);
  EXPECT_EQ(e.output()[0], "saying hello");
}

TEST(Engine, CountdownLoopWithCompute) {
  Engine e;
  e.load(
      "(p count (counter ^n { > 0 <n> }) --> "
      "(modify 1 ^n (compute <n> - 1)))"
      "(p done (counter ^n 0) --> (write done) (halt))");
  e.add_wme_text("(counter ^n 5)");
  const auto res = e.run(100);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(res.cycles, 6u);  // 5 decrements + halt
}

TEST(Engine, LexPrefersRecentWmes) {
  Engine e;
  e.load("(p p1 (a ^v <x>) --> (write got <x>))");
  e.add_wme_text("(a ^v old)");
  e.add_wme_text("(a ^v new)");
  e.match();
  const Instantiation* pick = e.cs().select_lex();
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->token[0]->field(0).to_string(e.syms()), "new");
}

TEST(Engine, LexPrefersSpecificProduction) {
  Engine e;
  // Same wme satisfies both; tie on recency resolved by specificity.
  e.load("(p loose (a ^v <x>) --> (write loose))"
         "(p tight (a ^v <x> ^w 1) --> (write tight))");
  e.add_wme_text("(a ^v 7 ^w 1)");
  e.match();
  const Instantiation* pick = e.cs().select_lex();
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(e.syms().name(pick->pnode->prod->name), "tight");
}

TEST(Engine, RefractionFiredInstantiationDoesNotRefire) {
  Engine e;
  e.load("(p once (a ^v 1) --> (write fired))");
  e.add_wme_text("(a ^v 1)");
  const auto res = e.run(10);
  EXPECT_EQ(res.cycles, 1u);
  EXPECT_EQ(e.output().size(), 1u);
}

TEST(Engine, RemoveActionRetractsDownstream) {
  Engine e;
  e.load("(p eat (hungry ^who <w>) (food ^for <w>) --> (remove 2))");
  e.add_wme_text("(hungry ^who me)");
  e.add_wme_text("(food ^for me)");
  const auto res = e.run(10);
  EXPECT_EQ(res.cycles, 1u);
  EXPECT_EQ(e.wm().size(), 1u);  // food gone
}

TEST(Engine, GensymCreatesFreshSymbols) {
  Engine e;
  e.load(
      "(p spawn (seed ^n <n>) --> (bind <id> (genatom item)) "
      "(make thing ^id <id>) (remove 1))");
  e.add_wme_text("(seed ^n 1)");
  e.add_wme_text("(seed ^n 2)");
  e.run(10);
  // Two things with distinct gensym ids.
  int things = 0;
  std::set<std::string> ids;
  for (const Wme* w : e.wm().live()) {
    if (e.syms().name(w->cls) == "thing") {
      ++things;
      ids.insert(w->field(0).to_string(e.syms()));
    }
  }
  EXPECT_EQ(things, 2);
  EXPECT_EQ(ids.size(), 2u);
}

TEST(Engine, TraceRecordsTasksAndParents) {
  Engine e;
  e.load("(p j (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  const CycleTrace t = e.match();
  ASSERT_GT(t.task_count(), 0u);
  // Seeds have no parent; all parent links point backwards.
  bool saw_seed = false;
  for (size_t i = 0; i < t.tasks.size(); ++i) {
    if (t.tasks[i].parent == UINT32_MAX) {
      saw_seed = true;
    } else {
      EXPECT_LT(t.tasks[i].parent, i);
    }
  }
  EXPECT_TRUE(saw_seed);
  // At least one P-node task fired.
  bool saw_prod = false;
  for (const auto& r : t.tasks) saw_prod |= r.type == NodeType::Prod;
  EXPECT_TRUE(saw_prod);
}

TEST(Engine, EmptyMatchIsEmptyTrace) {
  Engine e;
  e.load("(p j (a ^v 1) --> (halt))");
  const CycleTrace t = e.match();
  EXPECT_EQ(t.task_count(), 0u);
}

TEST(Engine, UnknownClassWmeIsIgnoredByMatch) {
  Engine e;
  e.load("(p j (a ^v 1) --> (halt))");
  e.add_wme_text("(unrelated ^x 9)");
  const CycleTrace t = e.match();
  EXPECT_EQ(t.task_count(), 0u);
  EXPECT_EQ(e.wm().size(), 1u);
}

TEST(ConflictSet, InsertRetractBookkeeping) {
  Engine e;
  e.load("(p j (a ^v <x>) --> (halt))");
  const Wme* w = e.add_wme_text("(a ^v 1)");
  e.match();
  EXPECT_EQ(e.cs().total_inserts(), 1u);
  e.remove_wme(w);
  e.match();
  EXPECT_EQ(e.cs().total_retracts(), 1u);
  EXPECT_EQ(e.cs().size(), 0u);
}

}  // namespace
}  // namespace psme
