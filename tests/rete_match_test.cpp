// Core Rete behaviour: constant tests, joins, variable consistency,
// deletion, hashing, sharing.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace psme {
namespace {

using test::instantiation_count;
using test::matched_productions;

TEST(ReteMatch, SingleConditionConstantMatch) {
  Engine e;
  e.load("(p blue (block ^color blue) --> (halt))");
  e.add_wme_text("(block ^name b1 ^color blue)");
  e.add_wme_text("(block ^name b2 ^color red)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "blue"), 1);
}

TEST(ReteMatch, TwoConditionJoinOnVariable) {
  Engine e;
  e.load(
      "(p on-top (block ^name <a> ^on <b>) (block ^name <b>) --> (halt))");
  e.add_wme_text("(block ^name b1 ^on b2)");
  e.add_wme_text("(block ^name b2)");
  e.add_wme_text("(block ^name b3 ^on b9)");  // b9 does not exist
  e.match();
  EXPECT_EQ(instantiation_count(e, "on-top"), 1);
}

TEST(ReteMatch, CrossProductWithoutSharedVariables) {
  Engine e;
  e.load("(p cross (a ^v <x>) (b ^w <y>) --> (halt))");
  for (int i = 0; i < 3; ++i) {
    e.add_wme(e.syms().intern("a"),
              {Value(static_cast<int64_t>(i))});
    e.add_wme(e.syms().intern("b"),
              {Value(static_cast<int64_t>(i))});
  }
  // Schemas: class a slot0 = v, class b slot0 = w (from the production).
  e.match();
  EXPECT_EQ(instantiation_count(e, "cross"), 9);
}

TEST(ReteMatch, NumericPredicates) {
  Engine e;
  e.load("(p big (box ^size > 5) --> (halt))"
         "(p mid (box ^size { >= 3 <= 5 }) --> (halt))");
  e.add_wme_text("(box ^size 2)");
  e.add_wme_text("(box ^size 4)");
  e.add_wme_text("(box ^size 9)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "big"), 1);
  EXPECT_EQ(instantiation_count(e, "mid"), 1);
}

TEST(ReteMatch, VariablePredicateAcrossConditions) {
  Engine e;
  e.load("(p bigger (a ^size <s>) (b ^size > <s>) --> (halt))");
  e.add_wme_text("(a ^size 3)");
  e.add_wme_text("(b ^size 5)");
  e.add_wme_text("(b ^size 2)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "bigger"), 1);
}

TEST(ReteMatch, IntraConditionVariableConsistency) {
  Engine e;
  e.load("(p same (pair ^left <x> ^right <x>) --> (halt))");
  e.add_wme_text("(pair ^left a ^right a)");
  e.add_wme_text("(pair ^left a ^right b)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "same"), 1);
}

TEST(ReteMatch, Disjunction) {
  Engine e;
  e.load("(p warm (block ^color << red orange yellow >>) --> (halt))");
  e.add_wme_text("(block ^color red)");
  e.add_wme_text("(block ^color blue)");
  e.add_wme_text("(block ^color yellow)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "warm"), 2);
}

TEST(ReteMatch, DeletionRetractsInstantiation) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const Wme* wa = e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 1);
  e.remove_wme(wa);
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 0);
  EXPECT_EQ(e.cs().size(), 0u);
}

TEST(ReteMatch, DeletionOfRightWme) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  const Wme* wb = e.add_wme_text("(b ^v 1)");
  e.match();
  ASSERT_EQ(instantiation_count(e, "p1"), 1);
  e.remove_wme(wb);
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 0);
  // Memory state is fully cleaned.
  EXPECT_EQ(e.state().tables.total_right_entries(), 0u);
}

TEST(ReteMatch, ThreeLevelJoinChain) {
  Engine e;
  e.load(
      "(p chain (n ^id <a> ^next <b>) (n ^id <b> ^next <c>) (n ^id <c>) "
      "--> (halt))");
  for (int i = 0; i < 5; ++i) {
    std::string s = "(n ^id n" + std::to_string(i) + " ^next n" +
                    std::to_string(i + 1) + ")";
    e.add_wme_text(s);
  }
  e.match();
  // Chains: n0-n1-n2, n1-n2-n3, n2-n3-n4 and n3-n4-(n4 matches ^id n5? no).
  EXPECT_EQ(instantiation_count(e, "chain"), 3);
}

TEST(ReteMatch, AlphaSharingAcrossProductions) {
  Engine e;
  e.load("(p p1 (block ^color blue ^size 1) --> (halt))");
  const auto census1 = e.net().census();
  e.load("(p p2 (block ^color blue ^size 1) --> (halt))");
  const auto census2 = e.net().census();
  // Identical alpha chain: no new const nodes or alpha memories.
  EXPECT_EQ(census1.consts, census2.consts);
  EXPECT_EQ(census1.alpha_mems, census2.alpha_mems);
  EXPECT_EQ(census2.prods, census1.prods + 1);
}

TEST(ReteMatch, BetaSharingAcrossProductions) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const auto census1 = e.net().census();
  e.load("(p p2 (a ^v <x>) (b ^v <x>) --> (write two))");
  const auto census2 = e.net().census();
  EXPECT_EQ(census2.joins, census1.joins);  // join node shared
  EXPECT_EQ(e.builder().beta_nodes_shared(), 1u);
  // Both P-nodes still fire.
  e.add_wme_text("(a ^v 7)");
  e.add_wme_text("(b ^v 7)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 1);
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
}

TEST(ReteMatch, SharingDisabledCreatesSeparateNodes) {
  EngineOptions opts;
  opts.builder.share_beta = false;
  Engine e(opts);
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))"
         "(p p2 (a ^v <x>) (b ^v <x>) --> (halt))");
  EXPECT_EQ(e.net().census().joins, 2u);
  EXPECT_EQ(e.builder().beta_nodes_shared(), 0u);
}

TEST(ReteMatch, WildcardVariableMatchesAnything) {
  Engine e;
  e.load("(p any (block ^owner <who>) --> (halt))");
  e.add_wme_text("(block ^owner alice)");
  e.add_wme_text("(block ^owner 42)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "any"), 2);
}

TEST(ReteMatch, HashDistributesAcrossLines) {
  Engine e;
  e.load("(p j (a ^v <x>) (b ^v <x>) --> (halt))");
  for (int i = 0; i < 64; ++i) {
    e.add_wme(e.syms().intern("a"), {Value(static_cast<int64_t>(i))});
  }
  auto trace = e.match();
  // 64 distinct binding values should touch many distinct lines.
  std::set<uint32_t> lines;
  for (const auto& la : trace.line_accesses) lines.insert(la.line);
  EXPECT_GT(lines.size(), 16u);
}

TEST(ReteMatch, SameBindingsShareALine) {
  Engine e;
  e.load("(p j (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  auto trace = e.match();
  // The left token and right wme for binding 1 hash to the same line: one
  // line shows both a left and a right access.
  bool both = false;
  for (const auto& la : trace.line_accesses) {
    if (la.left > 0 && la.right > 0) both = true;
  }
  EXPECT_TRUE(both);
  EXPECT_EQ(instantiation_count(e, "j"), 1);
}

TEST(ReteMatch, ModifySemantics) {
  Engine e;
  e.load("(p grasp (block ^state free) --> (modify 1 ^state held))"
         "(p held (block ^state held) --> (halt))");
  e.add_wme_text("(block ^name b1 ^state free)");
  auto res = e.run(10);
  EXPECT_TRUE(res.halted);
  EXPECT_EQ(e.wm().size(), 1u);
}

}  // namespace
}  // namespace psme
