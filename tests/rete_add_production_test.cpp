// Run-time production addition (§5.1) and state update (§5.2).
//
// The central property: adding a production to a live network and updating
// its memories must leave the conflict set exactly as if the production had
// been loaded before any wme arrived ("incremental add == rebuild from
// scratch").
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "lang/parser.h"
#include "test_util.h"

namespace psme {
namespace {

using test::cs_fingerprint;
using test::instantiation_count;

Production parse_one(Engine& e, std::string_view src) {
  Parser p(e.syms(), e.schemas(), test::test_rhs_arena());
  return p.parse_production(src);
}

TEST(AddProduction, MatchesExistingWmes) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.add_wme_text("(b ^v 2)");
  e.match();
  ASSERT_EQ(e.cs().size(), 1u);

  auto res = e.add_production_runtime(
      parse_one(e, "(p p2 (a ^v <x>) (b ^v <x>) --> (write hi))"));
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
  EXPECT_GT(res.update_tasks, 0u);
}

TEST(AddProduction, SharedPrefixGetsNoDuplicateState) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.match();
  const size_t lefts_before = e.state().tables.total_left_entries();

  // p2 shares (a)(b) join, extends with (c).
  e.add_production_runtime(parse_one(
      e, "(p p2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"));
  // The shared join's memories must not have grown.
  // New left entries belong only to the new join (one token: [a1 b1]).
  EXPECT_EQ(e.state().tables.total_left_entries(), lefts_before + 1);
  EXPECT_EQ(instantiation_count(e, "p2"), 0);
  e.add_wme_text("(c ^v 1)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
  EXPECT_EQ(instantiation_count(e, "p1"), 1);  // p1 unaffected
}

TEST(AddProduction, FullyDuplicateProductionSharesEverything) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.match();
  const auto census1 = e.net().census();
  e.add_production_runtime(
      parse_one(e, "(p p1-copy (a ^v <x>) (b ^v <x>) --> (write w))"));
  const auto census2 = e.net().census();
  EXPECT_EQ(census2.joins, census1.joins);
  EXPECT_EQ(census2.prods, census1.prods + 1);
  EXPECT_EQ(instantiation_count(e, "p1-copy"), 1);
}

TEST(AddProduction, NewAlphaChainUpdatedFromWm) {
  Engine e;
  e.load("(p p1 (a ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(zed ^q 5)");  // class unknown to any production yet
  e.match();
  e.add_production_runtime(parse_one(e, "(p p2 (zed ^q 5) --> (halt))"));
  EXPECT_EQ(instantiation_count(e, "p2"), 1);
}

TEST(AddProduction, NegatedConditionUpdated) {
  Engine e;
  e.load("(p p0 (a ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(a ^v 2)");
  e.add_wme_text("(blocker ^v 1)");
  e.match();
  e.add_production_runtime(parse_one(
      e, "(p p1 (a ^v <x>) -(blocker ^v <x>) --> (halt))"));
  EXPECT_EQ(instantiation_count(e, "p1"), 1);  // only v=2 unblocked
  // Dynamics still work after the update.
  e.add_wme_text("(blocker ^v 2)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 0);
}

TEST(AddProduction, NccConditionUpdated) {
  Engine e;
  e.load("(p p0 (area ^name <a>) --> (halt))");
  e.add_wme_text("(area ^name lobby)");
  e.add_wme_text("(area ^name vault)");
  e.add_wme_text("(alarm ^area vault)");
  e.add_wme_text("(alarm-active ^area vault)");
  e.match();
  e.add_production_runtime(parse_one(
      e,
      "(p safe (area ^name <a>) -{ (alarm ^area <a>) (alarm-active ^area "
      "<a>) } --> (halt))"));
  EXPECT_EQ(instantiation_count(e, "safe"), 1);  // lobby
}

/// Incremental-vs-rebuild equivalence over a batch of productions and wmes.
class IncrementalEquivalence
    : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEquivalence, MatchesRebuild) {
  const int split = GetParam();
  const std::vector<std::string> prods = {
      "(p q1 (a ^v <x>) (b ^v <x>) --> (halt))",
      "(p q2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))",
      "(p q3 (a ^v <x>) -(c ^v <x>) --> (halt))",
      "(p q4 (b ^v <x>) (c ^w <y>) --> (halt))",
      "(p q5 (a ^v <x>) -{ (b ^v <x>) (c ^v <x>) } --> (halt))",
  };
  auto add_wmes = [](Engine& e) {
    for (int i = 0; i < 6; ++i) {
      const auto v = std::to_string(i % 3);
      if (i % 2 == 0) e.add_wme_text("(a ^v " + v + ")");
      if (i % 3 != 1) e.add_wme_text("(b ^v " + v + ")");
      if (i % 3 == 0) e.add_wme_text("(c ^v " + v + " ^w " + v + ")");
    }
    e.match();
  };

  // Reference: everything loaded up front.
  Engine ref;
  for (const auto& p : prods) ref.load(p);
  add_wmes(ref);

  // Incremental: first `split` productions up front, wmes, then the rest at
  // run time with the §5.2 update.
  Engine inc;
  for (int i = 0; i < split; ++i) inc.load(prods[static_cast<size_t>(i)]);
  add_wmes(inc);
  for (size_t i = static_cast<size_t>(split); i < prods.size(); ++i) {
    inc.add_production_runtime(parse_one(inc, prods[i]));
  }

  EXPECT_EQ(cs_fingerprint(ref), cs_fingerprint(inc));
}

INSTANTIATE_TEST_SUITE_P(Splits, IncrementalEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(AddProduction, CompileProducesCodeAndTiming) {
  Engine e;
  e.load("(p p0 (a ^v <x>) --> (halt))");
  auto res = e.add_production_runtime(parse_one(
      e, "(p big (a ^v <x>) (b ^v <x>) (c ^v <x>) (d ^v <x>) --> (halt))"));
  EXPECT_GT(res.code_bytes, 0u);
  EXPECT_GE(res.compile_seconds, 0.0);
  const auto& cp = e.record(res.prod).compiled;
  EXPECT_FALSE(cp.new_nodes.empty());
  // Node id monotonicity: every new node id >= first_new_id.
  for (const uint32_t id : cp.new_nodes) {
    EXPECT_GE(id, cp.first_new_id);
  }
}

TEST(AddProduction, SharingReducesGeneratedCode) {
  // Compile the same chunk-like production into (a) a network that already
  // contains its prefix and (b) an empty network; shared compilation must
  // generate less code.
  const std::string prefix_src =
      "(p base (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))";
  const std::string chunk_src =
      "(p chunk (a ^v <x>) (b ^v <x>) (c ^v <x>) (d ^v <x>) --> (halt))";

  Engine shared;
  shared.load(prefix_src);
  auto res_shared = shared.add_production_runtime(parse_one(shared, chunk_src));

  Engine fresh;
  fresh.load("(p other (q ^r 1) --> (halt))");  // unrelated network
  auto res_fresh = fresh.add_production_runtime(parse_one(fresh, chunk_src));

  EXPECT_LT(res_shared.code_bytes, res_fresh.code_bytes);
}

}  // namespace
}  // namespace psme
