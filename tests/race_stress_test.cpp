// Sanitizer-targeted stress tests: many workers hammering the TaskQueueSet
// (push/pop/steal), repeated parallel match cycles on a live network, and
// run-time production addition whose §5.2 state update drains through the
// ParallelMatcher at full width. These exist primarily to give
// ThreadSanitizer (the `tsan` preset) real interleavings to chew on; they
// also assert serial-equivalence so they are meaningful correctness tests in
// every build.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "lang/parser.h"
#include "par/parallel_match.h"
#include "par/task_queue.h"
#include "par/worker_pool.h"
#include "rete/update.h"
#include "test_util.h"

// Iteration counts scale down under sanitizer instrumentation (5-20x
// slowdown) so the suite stays fast; the interleaving coverage TSan needs
// comes from the thread count, not raw iteration volume.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PSME_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PSME_SANITIZED_BUILD 1
#endif
#endif
#ifndef PSME_SANITIZED_BUILD
#define PSME_SANITIZED_BUILD 0
#endif

namespace psme {
namespace {

using test::cs_fingerprint;

constexpr int kIters = PSME_SANITIZED_BUILD ? 400 : 3000;
constexpr size_t kWorkers = 8;

class SeedCollector final : public ExecContext {
 public:
  void emit(Activation&& a) override { seeds.push_back(std::move(a)); }
  std::vector<Activation> seeds;
};

TEST(RaceStress, TaskQueueSetPushPopSteal) {
  // Every worker pushes to its home queue and pops with stealing; half the
  // pops are issued under a *different* worker index to force cross-queue
  // traffic. Conservation (pushed == popped + left over) proves no task was
  // lost or duplicated under contention.
  TaskQueueSet queues(TaskQueueSet::Policy::Multi, kWorkers);
  std::atomic<uint64_t> pushed{0};
  std::atomic<uint64_t> popped{0};

  run_workers(kWorkers, [&](size_t worker) {
    Activation out;
    for (int i = 0; i < kIters; ++i) {
      Activation a;
      a.node = static_cast<uint32_t>(worker * kIters + i);
      queues.push(worker, std::move(a));
      pushed.fetch_add(1, std::memory_order_relaxed);
      // Pop as self, then occasionally as a thief with a rotated identity.
      if (queues.pop(worker, out)) popped.fetch_add(1, std::memory_order_relaxed);
      if (i % 2 == 0) {
        const size_t thief = (worker + 1 + static_cast<size_t>(i)) % kWorkers;
        if (queues.pop(thief, out)) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  uint64_t drained = 0;
  Activation out;
  while (queues.pop(0, out)) ++drained;
  EXPECT_EQ(pushed.load(), popped.load() + drained);
  EXPECT_EQ(pushed.load(), static_cast<uint64_t>(kIters) * kWorkers);
  EXPECT_GT(queues.lock_acquires(), 0u);
}

TEST(RaceStress, SingleQueuePolicyUnderContention) {
  // Policy::Single: every worker fights over one lock — the Figure 6-1
  // configuration and the worst case for the queue spinlock.
  TaskQueueSet queues(TaskQueueSet::Policy::Single, kWorkers);
  std::atomic<uint64_t> balance{0};
  run_workers(kWorkers, [&](size_t worker) {
    Activation out;
    for (int i = 0; i < kIters / 2; ++i) {
      queues.push(worker, Activation{});
      if (queues.pop(worker, out)) balance.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Activation out;
  uint64_t drained = 0;
  while (queues.pop(0, out)) ++drained;
  EXPECT_EQ(balance.load() + drained,
            static_cast<uint64_t>(kIters / 2) * kWorkers);
}

std::string stress_productions() {
  // Same value-skew as the parallel_test workload (v mod 7) so many tokens
  // hash to the same lines, maximizing line-lock contention; plus a negation
  // and a cross product to exercise not-node counts and wide emits.
  return "(p j2 (a ^v <x>) (b ^v <x>) --> (halt))"
         "(p j3 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
         "(p neg (a ^v <x>) -(blocker ^v <x>) --> (halt))"
         "(p cross (a ^v <x>) (c ^w <y>) --> (halt))";
}

void add_stress_wmes(Engine& e, int n, int salt) {
  for (int i = 0; i < n; ++i) {
    const std::string v = std::to_string((i + salt) % 7);
    e.add_wme_text("(a ^v " + v + ")");
    if (i % 2 == 0) e.add_wme_text("(b ^v " + v + ")");
    if (i % 3 == 0) e.add_wme_text("(c ^v " + v + " ^w " + v + ")");
    if (i % 5 == 0) e.add_wme_text("(blocker ^v " + v + ")");
  }
}

// One stress configuration: a scheduler policy plus (for Steal) a corner of
// the backoff/chain-splitting tuning space.
struct RaceCase {
  const char* name;
  TaskQueueSet::Policy policy;
  StealTuning tuning = {};
};

StealTuning race_split_heavy() {
  StealTuning t;
  t.chain_split_depth = 1;   // every chain link crosses the deque
  t.backoff_park_sweeps = 0; // park after the first failed sweep
  return t;
}

StealTuning race_never_split() {
  StealTuning t;
  t.chain_split_depth = 0;
  return t;
}

/// Drains one engine's pending wme set through a ParallelMatcher running
/// `c` (a persistent `matcher` may be supplied to reuse one pool).
void parallel_cycle(Engine& e, const std::vector<const Wme*>& adds,
                    const std::vector<const Wme*>& removes, const RaceCase& c,
                    ParallelMatcher* matcher = nullptr) {
  SeedCollector sc;
  for (const Wme* w : removes) e.net().inject(w, false, sc);
  for (const Wme* w : adds) e.net().inject(w, true, sc);
  if (matcher != nullptr) {
    matcher->run_cycle(std::move(sc.seeds));
  } else {
    ParallelMatcher local(e.net(), e.state(), kWorkers, c.policy, nullptr, c.tuning);
    local.run_cycle(std::move(sc.seeds));
  }
}

// Live-network stress runs under the paper's locked scheduler (Multi) and
// the lock-free work-stealing scheduler at three tunings: default,
// split-every-link with the backoff ladder disabled (maximal deque/park
// churn), and never-split (unbounded inline chains). The tuned Steal cases
// give TSan the new continuation-task and backoff interleavings.
class RaceStressPolicy : public ::testing::TestWithParam<RaceCase> {};

INSTANTIATE_TEST_SUITE_P(
    Policies, RaceStressPolicy,
    ::testing::Values(RaceCase{"Multi", TaskQueueSet::Policy::Multi},
                      RaceCase{"Steal", TaskQueueSet::Policy::Steal},
                      RaceCase{"StealSplitAll", TaskQueueSet::Policy::Steal,
                               race_split_heavy()},
                      RaceCase{"StealNoSplit", TaskQueueSet::Policy::Steal,
                               race_never_split()}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(RaceStressPolicy, RepeatedParallelCyclesMatchSerial) {
  // Several add-then-delete cycles, each drained by 8 workers on the live
  // network: line locks, alpha locks, the CS lock and the scheduler (queue
  // locks or deque CASes) all contended in one run. The serial engine is the
  // oracle after each cycle.
  const int rounds = PSME_SANITIZED_BUILD ? 2 : 4;
  const RaceCase c = GetParam();

  Engine serial, par;
  serial.load(stress_productions());
  par.load(stress_productions());

  for (int r = 0; r < rounds; ++r) {
    // Add wave.
    add_stress_wmes(serial, 18, r);
    serial.match();

    std::vector<const Wme*> before = par.wm().live();
    add_stress_wmes(par, 18, r);
    std::vector<const Wme*> adds;
    for (const Wme* w : par.wm().live()) {
      if (std::find(before.begin(), before.end(), w) == before.end()) {
        adds.push_back(w);
      }
    }
    parallel_cycle(par, adds, {}, c);
    ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(par)) << "add round " << r;

    // Delete wave: every third a-wme.
    auto pick_removals = [](Engine& e) {
      std::vector<const Wme*> out;
      int i = 0;
      for (const Wme* w : e.wm().live()) {
        if (e.syms().name(w->cls) == "a" && ++i % 3 == 0) out.push_back(w);
      }
      return out;
    };
    const auto sr = pick_removals(serial);
    for (const Wme* w : sr) serial.remove_wme(w);
    serial.match();

    const auto pr = pick_removals(par);
    parallel_cycle(par, {}, pr, c);
    for (const Wme* w : pr) par.wm().remove(w);
    par.wm().end_cycle();
    ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(par))
        << "delete round " << r;
  }
}

TEST_P(RaceStressPolicy, RuntimeAddWithParallelUpdateMatchesUpfrontLoad) {
  // The §5.2 scenario the paper's Figure 6-9 measures, with real threads:
  // productions added to a live network one at a time, each state update
  // drained through the ParallelMatcher at full width (phases A/B under the
  // task filter with alpha-left suppression, then the last-shared-node
  // replay). The oracle is an engine that knew every production up front.
  // One persistent matcher carries every wave and every update phase, so
  // under Steal this also stresses pool reuse (park/unpark across cycles).
  const int waves = PSME_SANITIZED_BUILD ? 2 : 3;
  const RaceCase c = GetParam();

  const std::string base = stress_productions();
  const std::vector<std::string> extras = {
      "(p late-j2 (b ^v <x>) (c ^v <x>) --> (halt))",
      "(p late-j3 (a ^v <x>) (c ^v <x> ^w <x>) --> (halt))",
      "(p late-neg (b ^v <x>) -(a ^v <x>) --> (halt))",
  };

  Engine ref;
  {
    std::string all = base;
    for (const auto& p : extras) all += p;
    ref.load(all);
  }
  Engine live;
  live.load(base);
  ParallelMatcher matcher(live.net(), live.state(), kWorkers, c.policy, nullptr, c.tuning);

  for (int wv = 0; wv < waves; ++wv) {
    add_stress_wmes(ref, 12, wv);
    ref.match();
    std::vector<const Wme*> before = live.wm().live();
    add_stress_wmes(live, 12, wv);
    std::vector<const Wme*> adds;
    for (const Wme* w : live.wm().live()) {
      if (std::find(before.begin(), before.end(), w) == before.end()) {
        adds.push_back(w);
      }
    }
    parallel_cycle(live, adds, {}, c, &matcher);
  }

  // Runtime additions on the live (already-matched) network.
  RhsArena arena;
  std::vector<std::unique_ptr<Production>> owned;  // must outlive `live`'s CS
  for (const auto& src : extras) {
    Parser parser(live.syms(), live.schemas(), arena);
    auto parsed = parser.parse_file(src);
    ASSERT_EQ(parsed.size(), 1u);
    owned.push_back(std::make_unique<Production>(std::move(parsed.front())));
    const CompiledProduction cp =
        live.builder().add_production(*owned.back());
    const auto wm_snapshot = live.wm().live();

    // Phase A: alpha chains + right memories fed by new alpha memories.
    matcher.run_update(update_alpha_seeds(live.net(), cp, wm_snapshot),
                       {cp.first_new_id, /*suppress_alpha_left=*/true});
    // Phase B: right memories fed by shared (old) alpha memories.
    matcher.run_update(update_right_seeds(live.net(), live.state(), cp),
                       {cp.first_new_id, false});
    // Phase C: last-shared-node replay, only after A and B drained.
    matcher.run_update(update_left_seeds(live.net(), live.state(), cp),
                       {cp.first_new_id, false});
  }

  EXPECT_EQ(cs_fingerprint(ref), cs_fingerprint(live));

  // And the combined system keeps matching correctly after the adds: one
  // more parallel wme wave over the now-extended network.
  add_stress_wmes(ref, 8, 99);
  ref.match();
  std::vector<const Wme*> before = live.wm().live();
  add_stress_wmes(live, 8, 99);
  std::vector<const Wme*> adds;
  for (const Wme* w : live.wm().live()) {
    if (std::find(before.begin(), before.end(), w) == before.end()) {
      adds.push_back(w);
    }
  }
  parallel_cycle(live, adds, {}, c, &matcher);
  EXPECT_EQ(cs_fingerprint(ref), cs_fingerprint(live));
}

TEST(RaceStress, StealParkingUnderUnevenLoad) {
  // Tiny seed sets on a wide Steal pool: most workers find nothing and park;
  // the emitting worker's unpark-on-publish must wake them without losing
  // the termination signal. Many short cycles back to back hammer the
  // park/unpark edge where lost wakeups would hang. backoff_park_sweeps = 0
  // removes the backoff ladder entirely, so every failed sweep takes the
  // ticket path immediately — the densest possible park/unpark traffic.
  const int cycles = PSME_SANITIZED_BUILD ? 20 : 80;

  Engine serial, par;
  serial.load(stress_productions());
  par.load(stress_productions());
  StealTuning eager;
  eager.backoff_park_sweeps = 0;
  ParallelMatcher matcher(par.net(), par.state(), kWorkers, TaskQueueSet::Policy::Steal,
                          nullptr, eager);

  uint64_t parks = 0;
  for (int c = 0; c < cycles; ++c) {
    add_stress_wmes(serial, 2, c);
    serial.match();

    std::vector<const Wme*> before = par.wm().live();
    add_stress_wmes(par, 2, c);
    SeedCollector sc;
    for (const Wme* w : par.wm().live()) {
      if (std::find(before.begin(), before.end(), w) == before.end()) {
        par.net().inject(w, true, sc);
      }
    }
    const ParallelStats st = matcher.run_cycle(std::move(sc.seeds));
    parks += st.parks;
    ASSERT_EQ(cs_fingerprint(serial), cs_fingerprint(par)) << "cycle " << c;
  }
  EXPECT_EQ(matcher.lifetime_cycles(), static_cast<uint64_t>(cycles));
  // Not asserted > 0: on a loaded 1-cpu host every worker may finish its
  // spin window only after the cycle drained. Recorded for visibility.
  (void)parks;
}

TEST(RaceStress, ConflictSetConcurrentInsertRetract) {
  // The CS lock under direct many-thread fire: half the workers insert,
  // half retract the same (pnode, token) keys.
  ProdNode pnode;
  Production prod;
  pnode.prod = &prod;
  ConflictSet cs;
  const int iters = kIters / 4;
  run_workers(kWorkers, [&](size_t worker) {
    for (int i = 0; i < iters; ++i) {
      if (worker % 2 == 0) {
        cs.on_insert(pnode, Token{});
      } else {
        cs.on_retract(pnode, Token{});
      }
      if (i % 64 == 0) (void)cs.size();
    }
  });
  // Conservation: inserts - successful retracts == remaining instantiations.
  // (on_retract counts even unmatched retracts, so just sanity-check size.)
  EXPECT_LE(cs.size(), static_cast<size_t>(kWorkers / 2 + 1) *
                           static_cast<size_t>(iters));
  EXPECT_EQ(cs.total_inserts(), static_cast<uint64_t>(kWorkers / 2) *
                                    static_cast<uint64_t>(iters));
}

}  // namespace
}  // namespace psme
