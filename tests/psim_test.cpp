// Virtual multiprocessor: determinism, monotonicity, dependency-chain
// limits, queue-policy effects, and the report helpers.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "psim/report.h"
#include "psim/sim.h"

namespace psme {
namespace {

/// A synthetic trace: `width` independent chains of `depth` dependent tasks,
/// all with equal per-task work.
CycleTrace synthetic_trace(uint32_t width, uint32_t depth) {
  CycleTrace t;
  for (uint32_t w = 0; w < width; ++w) {
    uint32_t parent = UINT32_MAX;
    for (uint32_t d = 0; d < depth; ++d) {
      TaskRecord r;
      r.parent = parent;
      r.node = w * depth + d;
      r.type = NodeType::Join;
      r.stats.probes = 2;
      r.stats.tests = 2;
      r.stats.inserts = 1;
      r.stats.emits = d + 1 < depth ? 1 : 0;
      parent = static_cast<uint32_t>(t.tasks.size());
      t.tasks.push_back(r);
    }
  }
  return t;
}

SimOptions opts_with(uint32_t procs, QueuePolicy pol = QueuePolicy::Multi) {
  SimOptions o;
  o.processors = procs;
  o.policy = pol;
  return o;
}

TEST(Psim, DeterministicAcrossRuns) {
  const CycleTrace t = synthetic_trace(8, 5);
  const auto a = simulate_cycle(t, opts_with(4));
  const auto b = simulate_cycle(t, opts_with(4));
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.spins, b.spins);
  EXPECT_EQ(a.failed_pops, b.failed_pops);
}

TEST(Psim, AllTasksExecute) {
  const CycleTrace t = synthetic_trace(6, 4);
  const auto r = simulate_cycle(t, opts_with(3));
  EXPECT_EQ(r.tasks, 24u);
  EXPECT_EQ(r.pops, 24u);
}

TEST(Psim, MoreProcessorsNeverSlowMultiQueue) {
  const CycleTrace t = synthetic_trace(16, 4);
  const auto p1 = simulate_cycle(t, opts_with(1));
  const auto p4 = simulate_cycle(t, opts_with(4));
  const auto p8 = simulate_cycle(t, opts_with(8));
  EXPECT_GT(p1.makespan_us, p4.makespan_us);
  EXPECT_GE(p4.makespan_us, p8.makespan_us * 0.95);
}

TEST(Psim, SpeedupBoundedByProcessorsAndWidth) {
  const CycleTrace t = synthetic_trace(4, 6);
  const auto r = simulate_cycle(t, opts_with(13));
  // Only 4 independent chains exist: speedup can't exceed ~4.
  EXPECT_LE(r.speedup(), 4.5);
  EXPECT_GT(r.speedup(), 1.5);
}

TEST(Psim, LongChainBoundsMakespan) {
  // One chain of 30 dependent tasks vs 30 independent tasks.
  const CycleTrace chain = synthetic_trace(1, 30);
  const CycleTrace flat = synthetic_trace(30, 1);
  const auto rc = simulate_cycle(chain, opts_with(8));
  const auto rf = simulate_cycle(flat, opts_with(8));
  EXPECT_GT(rf.speedup(), 3.0);
  EXPECT_LT(rc.speedup(), 1.3);  // serialized by dependencies
}

TEST(Psim, SingleQueueContendsMoreThanMulti) {
  const CycleTrace t = synthetic_trace(64, 3);
  const auto single = simulate_cycle(t, opts_with(12, QueuePolicy::Single));
  const auto multi = simulate_cycle(t, opts_with(12, QueuePolicy::Multi));
  EXPECT_GT(single.spins_per_task(), multi.spins_per_task());
  EXPECT_GT(multi.speedup(), single.speedup());
}

TEST(Psim, SingleQueueContentionRisesWithProcessors) {
  const CycleTrace t = synthetic_trace(64, 3);
  const auto p3 = simulate_cycle(t, opts_with(3, QueuePolicy::Single));
  const auto p13 = simulate_cycle(t, opts_with(13, QueuePolicy::Single));
  EXPECT_GT(p13.spins_per_task(), p3.spins_per_task());
}

TEST(Psim, EmptyCyclePaysOverheadOnly) {
  const CycleTrace t;
  SimOptions o = opts_with(4);
  const auto r = simulate_cycle(t, o);
  EXPECT_EQ(r.tasks, 0u);
  EXPECT_DOUBLE_EQ(r.makespan_us, o.overhead_at(4));
}

TEST(Psim, PerProcessOverheadPenalizesSmallCycles) {
  // A tiny dependent chain: more processors cannot help, and the extra
  // per-process synchronization makes P=11 *slower* than P=1 (the paper's
  // sub-1 speedups on small cycles).
  const CycleTrace t = synthetic_trace(1, 4);
  const auto r = simulate_cycle(t, opts_with(11));
  EXPECT_LT(r.speedup(), 1.0);
}

TEST(Psim, TimelineTracksTasksInSystem) {
  const CycleTrace t = synthetic_trace(5, 3);
  const auto r = simulate_cycle(t, opts_with(2), /*record_timeline=*/true);
  ASSERT_FALSE(r.timeline.empty());
  // Timeline starts with the seeded tasks and ends at zero.
  EXPECT_EQ(r.timeline.back().second, 0u);
  uint32_t peak = 0;
  for (const auto& [time, level] : r.timeline) peak = std::max(peak, level);
  EXPECT_GE(peak, 5u);  // all five seeds in the system at time 0
}

TEST(Psim, RunAggregatesCycles) {
  std::vector<CycleTrace> cycles = {synthetic_trace(4, 2),
                                    synthetic_trace(8, 3)};
  const auto run = simulate_run(cycles, opts_with(4), /*keep_cycles=*/true);
  EXPECT_EQ(run.cycles.size(), 2u);
  EXPECT_EQ(run.tasks, 4u * 2 + 8u * 3);
  EXPECT_DOUBLE_EQ(run.parallel_us, run.cycles[0].makespan_us +
                                        run.cycles[1].makespan_us);
}

TEST(CostModel, CalibrationRange) {
  CostModel cm;
  TaskRecord cheap;
  cheap.type = NodeType::Const;
  cheap.stats.tests = 1;
  TaskRecord expensive;
  expensive.type = NodeType::Join;
  expensive.stats.probes = 8;
  expensive.stats.tests = 10;
  expensive.stats.inserts = 1;
  expensive.stats.emits = 3;
  EXPECT_LT(cm.task_cost(cheap), 250.0);
  EXPECT_GT(cm.task_cost(expensive), 500.0);
}

TEST(Report, CriticalPathOfChainIsWholeChain) {
  const CycleTrace chain = synthetic_trace(1, 10);
  const CycleTrace flat = synthetic_trace(10, 1);
  CostModel cm;
  EXPECT_EQ(critical_path(chain, cm).length, 10u);
  EXPECT_EQ(critical_path(flat, cm).length, 1u);
  EXPECT_GT(critical_path(chain, cm).cost_us,
            critical_path(flat, cm).cost_us * 5);
}

TEST(Report, TasksPerCycleHistogram) {
  std::vector<CycleTrace> cycles = {synthetic_trace(10, 1),  // 10 tasks
                                    synthetic_trace(10, 1),
                                    synthetic_trace(30, 2)};  // 60 tasks
  const auto h = tasks_per_cycle_histogram(cycles, 25, 100);
  ASSERT_GE(h.size(), 3u);
  EXPECT_NEAR(h[0], 66.67, 0.1);  // two cycles in [0,25)
  EXPECT_NEAR(h[2], 33.34, 0.1);  // one cycle in [50,75)
}

TEST(Report, LeftAccessDistributionSumsTo100) {
  CycleTrace t;
  t.line_accesses = {{0, 3, 0}, {1, 1, 2}, {2, 0, 5}};
  const auto pct = left_access_distribution({t});
  double sum = 0;
  for (const double p : pct) sum += p;
  EXPECT_NEAR(sum, 100.0, 1e-9);
  EXPECT_NEAR(pct[1], 25.0, 1e-9);  // 1 of 4 left tokens in a 1-access bucket
  EXPECT_NEAR(pct[3], 75.0, 1e-9);
}

}  // namespace
}  // namespace psme
