// Chunking: results detected, backtrace collects supergoal conditions,
// chunks are installed at run time and transfer to later situations.
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "soar/kernel.h"

namespace psme {
namespace {

/// Task where a tie between operators is resolved in a subgoal by an
/// evaluation that inspects a feature of the operator; the resulting best
/// preference is a result and becomes a chunk. Operators are re-proposed for
/// each new state, so the learned chunk applies again (transfer) and later
/// decisions avoid the impasse.
std::string chunking_task_productions() {
  return
      // Propose one operator per item object.
      "(p propose"
      "  (wme ^id <g> ^attr problem-space ^value ct)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <g> ^attr thing ^value <t>)"
      "  -(wme ^id <s> ^attr used ^value <t>)"
      "  -->"
      "  (bind <o> (genatom o))"
      "  (make wme ^id <o> ^attr name ^value use-thing)"
      "  (make wme ^id <o> ^attr thing ^value <t>)"
      "  (make wme ^id <o> ^attr for-state ^value <s>)"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "acceptable))"
      // Apply: new state recording the thing used.
      "(p apply"
      "  (wme ^id <g> ^attr operator ^value <o>)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <o> ^attr for-state ^value <s>)"
      "  (wme ^id <o> ^attr thing ^value <t>)"
      "  -->"
      "  (bind <ns> (genatom s))"
      "  (make wme ^id <ns> ^attr prev ^value <s>)"
      "  (make wme ^id <ns> ^attr used ^value <t>)"
      "  (make pref ^gid <g> ^sid <s> ^role state ^value <ns> ^kind "
      "acceptable))"
      // Carry use-history onto the successor state (old states are garbage
      // collected once superseded).
      "(p carry-used"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <ns> ^attr prev ^value <s>)"
      "  (wme ^id <s> ^attr used ^value <t>)"
      "  -->"
      "  (make wme ^id <ns> ^attr used ^value <t>))"
      // Success once two distinct things have been used.
      "(p done"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (wme ^id <s> ^attr used ^value <t1>)"
      "  (wme ^id <s> ^attr used ^value { <t2> <> <t1> })"
      "  -->"
      "  (make wme ^id <g> ^attr success ^value yes))"
      // Subgoal evaluations: prefer the shiny thing; everything else
      // indifferent.
      "(p eval-shiny"
      "  (wme ^id <sg> ^attr impasse ^value tie)"
      "  (wme ^id <sg> ^attr object ^value <g>)"
      "  (wme ^id <sg> ^attr item ^value <o>)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)"
      "  (wme ^id <o> ^attr thing ^value <t>)"
      "  (wme ^id <t> ^attr shiny ^value yes)"
      "  -->"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind best))"
      "(p eval-default"
      "  (wme ^id <sg> ^attr impasse ^value tie)"
      "  (wme ^id <sg> ^attr object ^value <g>)"
      "  (wme ^id <sg> ^attr item ^value <o>)"
      "  (wme ^id <g> ^attr state ^value <s>)"
      "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)"
      "  -->"
      "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
      "indifferent))";
}

void init_chunking_task(SoarKernel& k) {
  SymbolTable& syms = k.engine().syms();
  const Symbol s0 = k.make_id("s", 1);
  const Symbol g = k.create_top_goal(syms.intern("ct"), s0);
  const Symbol t1 = k.make_id("th", 1);
  const Symbol t2 = k.make_id("th", 1);
  k.add_triple(g, "thing", Value(t1));
  k.add_triple(g, "thing", Value(t2));
  k.add_triple(t2, "shiny", Value(syms.intern("yes")));
  k.set_goal_test(
      [](SoarKernel& kk) { return kk.has_triple_attr("success", "yes"); });
}

TEST(Chunking, BuildsChunksDuringRun) {
  SoarOptions opts;
  opts.learning = true;
  opts.max_decisions = 40;
  SoarKernel k(opts);
  k.load_productions(chunking_task_productions());
  init_chunking_task(k);
  const auto stats = k.run();
  EXPECT_TRUE(stats.goal_achieved);
  EXPECT_GE(stats.chunks_built, 1u);
  EXPECT_EQ(stats.chunk_texts.size(), stats.chunks_built);
  EXPECT_EQ(stats.chunk_costs.size(), stats.chunks_built);
  for (const auto& c : stats.chunk_costs) {
    EXPECT_GT(c.code_bytes, 0u);
    EXPECT_GT(c.total_ces, 0);
  }
}

TEST(Chunking, UpdateTracesRecorded) {
  SoarOptions opts;
  opts.learning = true;
  opts.max_decisions = 40;
  SoarKernel k(opts);
  k.load_productions(chunking_task_productions());
  init_chunking_task(k);
  const auto stats = k.run();
  ASSERT_GE(stats.chunks_built, 1u);
  EXPECT_EQ(stats.update_ab.size(), stats.chunks_built);
  EXPECT_EQ(stats.update_c.size(), stats.chunks_built);
  // The update actually ran tasks (WM was non-trivial).
  uint64_t update_tasks = 0;
  for (const auto& t : stats.update_ab) update_tasks += t.task_count();
  for (const auto& t : stats.update_c) update_tasks += t.task_count();
  EXPECT_GT(update_tasks, 0u);
}

TEST(Chunking, FewerImpassesAfterLearning) {
  // During-chunking run.
  SoarOptions opts;
  opts.learning = true;
  opts.max_decisions = 60;
  SoarKernel k1(opts);
  k1.load_productions(chunking_task_productions());
  init_chunking_task(k1);
  const auto during = k1.run();
  ASSERT_TRUE(during.goal_achieved);
  ASSERT_GE(during.chunks_built, 1u);

  // After-chunking run: fresh kernel seeded with the learned chunks.
  SoarOptions opts2;
  opts2.learning = false;
  opts2.max_decisions = 60;
  SoarKernel k2(opts2);
  k2.load_productions(chunking_task_productions());
  for (const auto& text : during.chunk_texts) k2.load_productions(text);
  init_chunking_task(k2);
  const auto after = k2.run();
  EXPECT_TRUE(after.goal_achieved);
  EXPECT_LT(after.impasses, during.impasses);
}

TEST(Chunking, ChunkTextIsReparseable) {
  SoarOptions opts;
  opts.learning = true;
  opts.max_decisions = 40;
  SoarKernel k(opts);
  k.load_productions(chunking_task_productions());
  init_chunking_task(k);
  const auto stats = k.run();
  ASSERT_GE(stats.chunk_texts.size(), 1u);
  SoarKernel k2(SoarOptions{});
  for (const auto& text : stats.chunk_texts) {
    EXPECT_NO_THROW(k2.load_productions(text)) << text;
  }
}

TEST(Chunking, NoChunksWhenLearningOff) {
  SoarOptions opts;
  opts.learning = false;
  opts.max_decisions = 40;
  SoarKernel k(opts);
  k.load_productions(chunking_task_productions());
  init_chunking_task(k);
  const auto stats = k.run();
  EXPECT_EQ(stats.chunks_built, 0u);
}

TEST(Chunking, ChunkConditionsAreAnchored) {
  SoarOptions opts;
  opts.learning = true;
  opts.max_decisions = 40;
  SoarKernel k(opts);
  k.load_productions(chunking_task_productions());
  init_chunking_task(k);
  const auto stats = k.run();
  // Every chunk mentions the pref class (the traced acceptable preference)
  // and makes a pref: shaped like a real selection chunk.
  for (const auto& text : stats.chunk_texts) {
    EXPECT_NE(text.find("(pref"), std::string::npos) << text;
    EXPECT_NE(text.find("(make pref"), std::string::npos) << text;
  }
}

TEST(Chunking, ExciseRemovesChunkAndReleasesSignature) {
  SoarOptions opts;
  opts.learning = true;
  opts.max_decisions = 40;
  SoarKernel k(opts);
  k.load_productions(chunking_task_productions());
  init_chunking_task(k);
  const auto stats = k.run();
  ASSERT_GE(stats.chunks_built, 1u);

  Engine& e = k.engine();
  const size_t prods_before = e.productions().size();
  const uint32_t live_before = e.net().live_node_count();

  // The chunk is the last production adopted.
  const Production* chunk = e.productions().back();
  const auto res = k.excise(chunk);
  EXPECT_GT(res.nodes_removed, 0u);
  EXPECT_EQ(e.productions().size(), prods_before - 1);
  EXPECT_LT(e.net().live_node_count(), live_before);
  const auto rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();

  // The signature was forgotten: an identical chunk can be re-learned (the
  // network-wide dedup would otherwise silently swallow it forever).
  ASSERT_FALSE(stats.chunk_texts.empty());
  const size_t before_reload = e.productions().size();
  k.load_productions(stats.chunk_texts.back());
  EXPECT_EQ(e.productions().size(), before_reload + 1);

  // Excising a task production (never a chunk) also works: provenance is
  // scrubbed without disturbing working memory.
  const size_t wm_size = e.wm().live().size();
  k.excise(e.productions().front());
  EXPECT_EQ(e.wm().live().size(), wm_size);
  const auto rep2 = e.verify_network();
  EXPECT_TRUE(rep2.ok()) << rep2.to_string();
}

}  // namespace
}  // namespace psme
