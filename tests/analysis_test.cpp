// The static analysis subsystem: network verifier on clean and deliberately
// corrupted networks (the seeded-corruption corpus — every corruption must
// be caught with a precise, distinct diagnostic), the production cost
// linter, and the golden-file test for the JSON report on a paper task.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>

#include "analysis/cost_lint.h"
#include "analysis/report_json.h"
#include "analysis/verify.h"
#include "engine/engine.h"
#include "tasks/registry.h"

namespace psme {
namespace {

using analysis::Check;
using analysis::VerifyReport;

/// First violation of `check` whose message contains `needle` (any node).
const analysis::Violation* find_violation(const VerifyReport& rep, Check check,
                                          std::string_view needle = "") {
  for (const auto& v : rep.violations) {
    if (v.check == check && v.message.find(needle) != std::string::npos) {
      return &v;
    }
  }
  return nullptr;
}

/// Same, pinned to a specific node.
const analysis::Violation* find_violation(const VerifyReport& rep, Check check,
                                          uint32_t node,
                                          std::string_view needle = "") {
  for (const auto& v : rep.violations) {
    if (v.check == check && v.node == node &&
        v.message.find(needle) != std::string::npos) {
      return &v;
    }
  }
  return nullptr;
}

uint32_t find_node(const Network& net, NodeType type, uint32_t skip = 0) {
  for (uint32_t i = 0; i < net.node_count(); ++i) {
    if (net.node(i) != nullptr && net.node(i)->type == type) {
      if (skip == 0) return i;
      --skip;
    }
  }
  ADD_FAILURE() << "no node of type " << node_type_name(type);
  return UINT32_MAX;
}

// ---------------------------------------------------------------------------
// Clean networks verify clean.
// ---------------------------------------------------------------------------

TEST(Verifier, SimpleProductionIsClean) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const VerifyReport rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  for (uint32_t i = 0; i < e.net().node_count(); ++i) {
    EXPECT_TRUE(rep.nodes[i].reachable) << "node " << i;
    EXPECT_TRUE(rep.nodes[i].owned) << "node " << i;
  }
  // root -> amem -> join -> p-node is the longest chain.
  EXPECT_EQ(rep.max_depth, 3u);
}

TEST(Verifier, NegationAndNccAreClean) {
  Engine e;
  e.load(
      "(p p1 (a ^v 1 ^w <x>) (b ^v <x>) -(c ^v <x>) "
      "-{ (d ^v <x>) (f ^v <x>) } --> (halt))");
  const VerifyReport rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  // The NCC partner's subnetwork is owned through the owner->partner link.
  const uint32_t partner = find_node(e.net(), NodeType::NccPartner);
  EXPECT_TRUE(rep.nodes[partner].owned);
}

TEST(Verifier, SharedProductionsAreClean) {
  Engine e;
  e.load(
      "(p p1 (a ^v <x>) (b ^v <x>) --> (halt))\n"
      "(p p2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))");
  const VerifyReport rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(Verifier, PaperTasksAreClean) {
  for (const std::string& name : task_names()) {
    Engine e;
    e.load(make_task(name).productions);
    const VerifyReport rep = e.verify_network();
    EXPECT_TRUE(rep.ok()) << name << ": " << rep.to_string();
    EXPECT_GT(rep.max_depth, 0u);
    EXPECT_GT(rep.max_fan_out, 0u);
  }
}

TEST(Verifier, CleanAfterMatchingAndRuntimeAdd) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.match();
  EXPECT_TRUE(e.verify_network().ok());

  RhsArena arena;
  Parser parser(e.syms(), e.schemas(), arena);
  auto parsed =
      parser.parse_file("(p p2 (a ^v <x>) (c ^v <x>) --> (halt))");
  ASSERT_EQ(parsed.size(), 1u);
  e.add_production_runtime(std::move(parsed.front()));
  const VerifyReport rep = e.verify_network();
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// ---------------------------------------------------------------------------
// The seeded-corruption corpus: each corruption caught, precisely.
// ---------------------------------------------------------------------------

TEST(Corruption, OrphanNodeIsUnreachableAndUnowned) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const uint32_t orphan = e.net().make_node<ConstNode>()->id;  // never spliced
  const VerifyReport rep = e.verify_network();
  ASSERT_FALSE(rep.ok());
  const auto* reach = find_violation(rep, Check::Reachability, orphan);
  ASSERT_NE(reach, nullptr);
  EXPECT_NE(reach->message.find("unreachable"), std::string::npos);
  const auto* owned = find_violation(rep, Check::Ownership, orphan);
  ASSERT_NE(owned, nullptr);
  EXPECT_NE(owned->message.find("not owned"), std::string::npos);
}

TEST(Corruption, DanglingJumptableTargetIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const uint32_t amem = find_node(e.net(), NodeType::AlphaMem);
  e.net().jumptable().add(e.net().node(amem)->jt_slot,
                          SuccessorRef{9999, Side::Left});
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::Resolution, amem);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("nonexistent node 9999"), std::string::npos);
}

TEST(Corruption, JumptableCycleIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const uint32_t join = find_node(e.net(), NodeType::Join);
  const uint32_t pnode = find_node(e.net(), NodeType::Prod);
  // Splice the P-node's slot back up into the join: join -> pnode -> join.
  e.net().jumptable().add(e.net().node(pnode)->jt_slot,
                          SuccessorRef{join, Side::Left});
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::Acyclicity);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("cycle"), std::string::npos);
}

TEST(Corruption, MismatchedNegationPairIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) -{ (d ^v <x>) (f ^v <x>) } --> (halt))");
  const uint32_t ncc = find_node(e.net(), NodeType::Ncc);
  const uint32_t pnode = find_node(e.net(), NodeType::Prod);
  static_cast<NccNode*>(e.net().node(ncc))->partner = pnode;
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::NegationPair, ncc);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("not an NCC partner"), std::string::npos);
}

TEST(Corruption, PartnerPrefixMismatchIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) -{ (d ^v <x>) (f ^v <x>) } --> (halt))");
  const uint32_t partner = find_node(e.net(), NodeType::NccPartner);
  static_cast<NccPartnerNode*>(e.net().node(partner))->prefix_len += 1;
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::NegationPair);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("prefix_len"), std::string::npos);
}

TEST(Corruption, BrokenSharingArityIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const uint32_t join = find_node(e.net(), NodeType::Join);
  // Claim a longer left token than the predecessor emits — the invariant
  // shared nodes rely on ("shared nodes agree on variable bindings").
  static_cast<TwoInputNode*>(e.net().node(join))->left_arity += 1;
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::Bindings, join);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("left_arity"), std::string::npos);
}

TEST(Corruption, JoinTestOutOfTokenRangeIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const uint32_t join = find_node(e.net(), NodeType::Join);
  auto* t = static_cast<TwoInputNode*>(e.net().node(join));
  ASSERT_FALSE(t->tests.empty());
  t->tests[0].left_ce = 99;
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::Bindings, join);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("left CE 99"), std::string::npos);
}

TEST(Corruption, RightEdgeIntoAlphaPartIsReported) {
  Engine e;
  e.load("(p p1 (a ^v 1) (b ^v <x>) --> (halt))");
  const uint32_t cnode = find_node(e.net(), NodeType::Const);
  const uint32_t amem = find_node(e.net(), NodeType::AlphaMem);
  e.net().jumptable().add(e.net().node(amem)->jt_slot,
                          SuccessorRef{cnode, Side::Right});
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::SideRef, cnode);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("Right-side predecessor"), std::string::npos);
}

TEST(Corruption, StolenJumptableSlotIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const uint32_t join = find_node(e.net(), NodeType::Join);
  const uint32_t pnode = find_node(e.net(), NodeType::Prod);
  e.net().node(pnode)->jt_slot = e.net().node(join)->jt_slot;
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::SlotOwnership);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("owned by both"), std::string::npos);
}

TEST(Corruption, AlphaMemFieldNamingNonMemoryIsReported) {
  Engine e;
  e.load("(p p1 (a ^v 1) (b ^v <x>) --> (halt))");
  const uint32_t join = find_node(e.net(), NodeType::Join);
  const uint32_t cnode = find_node(e.net(), NodeType::Const);
  static_cast<TwoInputNode*>(e.net().node(join))->alpha_mem = cnode;
  const VerifyReport rep = e.verify_network();
  const auto* v =
      find_violation(rep, Check::TwoInputWiring, join, "not an alpha memory");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("const"), std::string::npos);
}

TEST(Corruption, NullProductionPointerIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) --> (halt))");
  const uint32_t pnode = find_node(e.net(), NodeType::Prod);
  static_cast<ProdNode*>(e.net().node(pnode))->prod = nullptr;
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::ProdRecord, pnode);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("null production"), std::string::npos);
}

TEST(Corruption, StaleTableEntryIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.match();  // stores the token as a left entry at the join
  bool corrupted = false;
  auto& tables = e.state().tables;
  for (size_t i = 0; i < tables.line_count() && !corrupted; ++i) {
    auto& line = tables.line_at(i);
    SpinGuard g(line.lock);
    for (auto& entry : line.left) {
      entry.node_id = 4242;  // simulates an unsplice that forgot its memories
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "expected a left entry after matching";
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::Resolution);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("stale left-table entry"), std::string::npos);
  EXPECT_NE(v->message.find("4242"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Botched-unsplice corpus: each way a production removal can go wrong leaves
// a tombstone-referencing needle the verifier must find (the removal oracle).
// ---------------------------------------------------------------------------

TEST(Corruption, DanglingUnspliceRefIsReported) {
  Engine e;
  e.load(
      "(p keep (a ^v <x>) (b ^v <x>) --> (halt))\n"
      "(p victim (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))");
  const uint32_t victim_pnode =
      e.record(e.productions()[1]).compiled.pnode;
  e.remove_production_runtime(e.productions()[1]);
  ASSERT_TRUE(e.verify_network().ok());  // the real removal is clean

  // Re-splice a ref to the tombstoned P-node: the signature of an unsplice
  // that missed a slot.
  const uint32_t join = find_node(e.net(), NodeType::Join);
  e.net().jumptable().add(e.net().node(join)->jt_slot,
                          SuccessorRef{victim_pnode, Side::Left});
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::Resolution, join,
                                 "dangling unsplice");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("removed node"), std::string::npos);
}

TEST(Corruption, OrphanedNccPartnerIsReported) {
  Engine e;
  e.load("(p p1 (a ^v <x>) -{ (b ^v <x>) (c ^v <x>) } --> (halt))");
  const uint32_t owner = find_node(e.net(), NodeType::Ncc);
  const uint32_t pnode = find_node(e.net(), NodeType::Prod);

  // Simulate a removal that freed the NCC owner (and its successor P-node)
  // but forgot the partner: the partner survives pointing at a tombstone.
  std::vector<uint8_t> dead(e.net().node_count(), 0);
  dead[owner] = 1;
  dead[pnode] = 1;
  e.net().jumptable().erase_refs(dead);
  e.net().free_node(pnode);
  e.net().free_node(owner);

  const VerifyReport rep = e.verify_network();
  const auto* v =
      find_violation(rep, Check::NegationPair, "orphaned NCC partner");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("removed node"), std::string::npos);
}

TEST(Corruption, LeftoverMemoryEntryAfterRemovalIsReported) {
  Engine e;
  e.load(
      "(p keep (a ^v <x>) (b ^v <x>) --> (halt))\n"
      "(p victim (a ^v <x>) (c ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.match();  // a left entry waits at each production's join

  // The victim's own (unshared) join dies with it.
  const auto& cp = e.record(e.productions()[1]).compiled;
  uint32_t victim_join = UINT32_MAX;
  for (const uint32_t id : cp.new_nodes) {
    if (e.net().node(id)->type == NodeType::Join) victim_join = id;
  }
  ASSERT_NE(victim_join, UINT32_MAX);
  e.remove_production_runtime(e.productions()[1]);
  ASSERT_TRUE(e.verify_network().ok());

  // Resurrect a memory entry for the dead join: the signature of a drain
  // that missed a line.
  bool corrupted = false;
  auto& tables = e.state().tables;
  for (size_t i = 0; i < tables.line_count() && !corrupted; ++i) {
    auto& line = tables.line_at(i);
    SpinGuard g(line.lock);
    for (auto& entry : line.left) {
      entry.node_id = victim_join;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "expected a surviving left entry after removal";
  const VerifyReport rep = e.verify_network();
  const auto* v = find_violation(rep, Check::Resolution,
                                 "memory not drained before removal");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->message.find("removed node"), std::string::npos);
}

// Every corpus corruption yields a *distinct* leading diagnostic: the same
// network state never maps two corruptions onto one catch-all message.
TEST(Corruption, DiagnosticsAreDistinctPerCheck) {
  const Check corpus[] = {
      Check::Reachability,  Check::Resolution,   Check::Acyclicity,
      Check::NegationPair,  Check::Bindings,     Check::SideRef,
      Check::SlotOwnership, Check::TwoInputWiring, Check::ProdRecord,
  };
  std::set<std::string> names;
  for (const Check c : corpus) names.insert(analysis::check_name(c));
  EXPECT_EQ(names.size(), std::size(corpus));
}

// ---------------------------------------------------------------------------
// Cost linter.
// ---------------------------------------------------------------------------

TEST(CostLinter, ChainDepthAndCountsAreExact) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const auto lint = analysis::lint_costs(e.net(), e.all_records());
  ASSERT_EQ(lint.productions.size(), 1u);
  const auto& pc = lint.productions[0];
  EXPECT_EQ(pc.name, "p1");
  // root -> amem(a) -> join -> p-node.
  EXPECT_EQ(pc.chain_depth, 3u);
  EXPECT_EQ(pc.two_input_nodes, 1u);
  EXPECT_EQ(pc.shared_nodes, 0u);
  EXPECT_GT(pc.worst_case_cost_us, 0.0);
  EXPECT_GT(pc.chain_cost_us, 0.0);
  EXPECT_TRUE(lint.ok());
}

TEST(CostLinter, LongerChainCostsMore) {
  Engine e;
  e.load(
      "(p shallow (a ^v <x>) (b ^v <x>) --> (halt))\n"
      "(p deep (a ^v <x>) (b ^v <x>) (c ^v <x>) (d ^v <x>) (f ^v <x>) "
      "--> (halt))");
  const auto lint = analysis::lint_costs(e.net(), e.all_records());
  ASSERT_EQ(lint.productions.size(), 2u);
  EXPECT_GT(lint.productions[1].chain_depth, lint.productions[0].chain_depth);
  EXPECT_GT(lint.productions[1].chain_cost_us,
            lint.productions[0].chain_cost_us);
  EXPECT_GT(lint.productions[1].worst_case_cost_us,
            lint.productions[0].worst_case_cost_us);
}

TEST(CostLinter, BudgetsFlagOffenders) {
  Engine e;
  e.load(
      "(p shallow (a ^v <x>) (b ^v <x>) --> (halt))\n"
      "(p deep (a ^v <x>) (b ^v <x>) (c ^v <x>) (d ^v <x>) (f ^v <x>) "
      "--> (halt))");
  analysis::CostBudget budget;
  budget.max_depth = 4;  // shallow chains to depth 3; deep to depth 6
  const auto lint = analysis::lint_costs(e.net(), e.all_records(), {}, budget);
  ASSERT_EQ(lint.productions.size(), 2u);
  EXPECT_FALSE(lint.productions[0].over_budget());
  ASSERT_TRUE(lint.productions[1].over_budget());
  EXPECT_EQ(lint.productions[1].flags[0], "depth");
  EXPECT_EQ(lint.flagged, 1u);
  EXPECT_FALSE(lint.ok());

  analysis::CostBudget tight;
  tight.max_cost_us = 1;  // everything is over
  const auto lint2 = analysis::lint_costs(e.net(), e.all_records(), {}, tight);
  EXPECT_EQ(lint2.flagged, 2u);
  EXPECT_EQ(lint2.productions[0].flags[0], "cost");
}

TEST(CostLinter, SharedNodesAreCountedPerProduction) {
  Engine e;
  e.load(
      "(p p1 (a ^v <x>) (b ^v <x>) --> (halt))\n"
      "(p p2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))");
  const auto lint = analysis::lint_costs(e.net(), e.all_records());
  ASSERT_EQ(lint.productions.size(), 2u);
  EXPECT_EQ(lint.productions[0].shared_nodes, 0u);
  EXPECT_GT(lint.productions[1].shared_nodes, 0u);  // reuses p1's join
}

// ---------------------------------------------------------------------------
// Golden-file test: the JSON report for a paper task is byte-stable. The
// model is integer-exact in doubles, so this holds across compilers.
// Regenerate with: PSME_UPDATE_GOLDEN=1 ./analysis_test
// ---------------------------------------------------------------------------

TEST(ReportJson, EightPuzzleGoldenFile) {
  Engine e;
  e.load(make_task("eight-puzzle").productions);
  const VerifyReport verify = e.verify_network();
  const auto lint = analysis::lint_costs(e.net(), e.all_records());
  const std::string json =
      analysis::report_json("eight-puzzle", e.net(), verify, lint);

  const std::string path =
      std::string(PSME_GOLDEN_DIR) + "/cost_lint_eight_puzzle.json";
  if (std::getenv("PSME_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << json;
    GTEST_SKIP() << "golden file regenerated: " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with PSME_UPDATE_GOLDEN=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(json, want.str());
}

TEST(ReportJson, ViolationsAreSerialized) {
  Engine e;
  e.load("(p p1 (a ^v <x>) --> (halt))");
  e.net().make_node<ConstNode>();  // orphan
  const VerifyReport verify = e.verify_network();
  const auto lint = analysis::lint_costs(e.net(), e.all_records());
  const std::string json = analysis::report_json("t", e.net(), verify, lint);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"reachability\""), std::string::npos);
}

}  // namespace
}  // namespace psme
