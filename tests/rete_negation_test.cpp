// Negated condition elements (not-nodes) and Soar conjunctive negations
// (NCC node pairs), including incremental add/delete behaviour.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace psme {
namespace {

using test::instantiation_count;

TEST(Negation, AbsenceMatches) {
  Engine e;
  e.load("(p clear (block ^name <b>) -(block ^on <b>) --> (halt))");
  e.add_wme_text("(block ^name b1)");
  e.add_wme_text("(block ^name b2)");
  e.add_wme_text("(block ^name b3 ^on b1)");
  e.match();
  // b1 is covered; b2 and b3 are clear.
  EXPECT_EQ(instantiation_count(e, "clear"), 2);
}

TEST(Negation, AddingBlockerRetracts) {
  Engine e;
  e.load("(p clear (block ^name <b>) -(block ^on <b>) --> (halt))");
  e.add_wme_text("(block ^name b1)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "clear"), 1);
  e.add_wme_text("(block ^name b2 ^on b1)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "clear"), 1);  // b2 clear, b1 covered
  EXPECT_EQ(test::matched_productions(e).count("clear"), 1u);
}

TEST(Negation, RemovingBlockerReasserts) {
  Engine e;
  e.load("(p clear (block ^name <b>) -(block ^on <b>) --> (halt))");
  e.add_wme_text("(block ^name b1)");
  const Wme* blocker = e.add_wme_text("(block ^name b2 ^on b1)");
  e.match();
  // b1 blocked; b2 clear.
  EXPECT_EQ(instantiation_count(e, "clear"), 1);
  e.remove_wme(blocker);
  e.match();
  EXPECT_EQ(instantiation_count(e, "clear"), 1);  // b1 clear again, b2 gone
}

TEST(Negation, MultipleBlockersCounted) {
  Engine e;
  e.load("(p clear (block ^name <b>) -(block ^on <b>) --> (halt))");
  e.add_wme_text("(block ^name b1)");
  const Wme* x = e.add_wme_text("(block ^name b2 ^on b1)");
  const Wme* y = e.add_wme_text("(block ^name b3 ^on b1)");
  e.match();
  // b1 blocked twice; b2 and b3 are clear.
  EXPECT_EQ(instantiation_count(e, "clear"), 2);
  // Removing one of two blockers must not reassert b1 (count 2 -> 1), and
  // the removed block's own instantiation goes away.
  e.remove_wme(x);
  e.match();
  EXPECT_EQ(instantiation_count(e, "clear"), 1);  // b3 clear; b1 still blocked
  e.remove_wme(y);
  e.match();
  EXPECT_EQ(instantiation_count(e, "clear"), 1);  // only b1 remains, now clear
}

TEST(Negation, NegatedFirstAmongSeveral) {
  Engine e;
  e.load(
      "(p p1 (goal ^want <x>) -(have ^item <x>) (shop ^sells <x>) "
      "--> (halt))");
  e.add_wme_text("(goal ^want milk)");
  e.add_wme_text("(shop ^sells milk)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 1);
  e.add_wme_text("(have ^item milk)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 0);
}

TEST(Ncc, ConjunctiveNegationBlocksOnlyWhenAllMatch) {
  Engine e;
  e.load(
      "(p safe (area ^name <a>) -{ (alarm ^area <a>) (alarm-active ^area <a>) "
      "} --> (halt))");
  e.add_wme_text("(area ^name lobby)");
  e.add_wme_text("(alarm ^area lobby)");  // alarm exists but not active
  e.match();
  EXPECT_EQ(instantiation_count(e, "safe"), 1);
  e.add_wme_text("(alarm-active ^area lobby)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "safe"), 0);
}

TEST(Ncc, RemovalOfOneConjunctReasserts) {
  Engine e;
  e.load(
      "(p safe (area ^name <a>) -{ (alarm ^area <a>) (alarm-active ^area <a>) "
      "} --> (halt))");
  e.add_wme_text("(area ^name lobby)");
  e.add_wme_text("(alarm ^area lobby)");
  const Wme* active = e.add_wme_text("(alarm-active ^area lobby)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "safe"), 0);
  e.remove_wme(active);
  e.match();
  EXPECT_EQ(instantiation_count(e, "safe"), 1);
}

TEST(Ncc, IndependentPerBinding) {
  Engine e;
  e.load(
      "(p safe (area ^name <a>) -{ (alarm ^area <a>) (alarm-active ^area <a>) "
      "} --> (halt))");
  e.add_wme_text("(area ^name lobby)");
  e.add_wme_text("(area ^name vault)");
  e.add_wme_text("(alarm ^area vault)");
  e.add_wme_text("(alarm-active ^area vault)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "safe"), 1);  // lobby only
}

TEST(Ncc, SubnetworkJoinWithinGroup) {
  // The two NCC conditions join with each other through a group-local
  // variable.
  Engine e;
  e.load(
      "(p no-pair (item ^name <i>) "
      "-{ (tag ^item <i> ^label <l>) (label ^name <l> ^kind bad) } "
      "--> (halt))");
  e.add_wme_text("(item ^name apple)");
  e.add_wme_text("(tag ^item apple ^label l1)");
  e.add_wme_text("(label ^name l1 ^kind good)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "no-pair"), 1);
  e.add_wme_text("(label ^name l1 ^kind bad)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "no-pair"), 0);
}

TEST(Ncc, DeleteOwnerToken) {
  Engine e;
  e.load(
      "(p safe (area ^name <a>) -{ (alarm ^area <a>) (alarm-active ^area <a>) "
      "} --> (halt))");
  const Wme* area = e.add_wme_text("(area ^name lobby)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "safe"), 1);
  e.remove_wme(area);
  e.match();
  EXPECT_EQ(instantiation_count(e, "safe"), 0);
  EXPECT_EQ(e.state().tables.total_left_entries(), 0u);
}

TEST(Negation, NotNodePassesThroughLaterJoins) {
  Engine e;
  e.load(
      "(p p1 (a ^v <x>) -(blocker ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme_text("(a ^v 1)");
  e.add_wme_text("(b ^v 1)");
  e.add_wme_text("(a ^v 2)");
  e.add_wme_text("(b ^v 2)");
  e.add_wme_text("(blocker ^v 2)");
  e.match();
  EXPECT_EQ(instantiation_count(e, "p1"), 1);
}

}  // namespace
}  // namespace psme
