// End-to-end determinism: identical runs produce identical statistics,
// traces, chunks and simulation results — the property every benchmark
// number in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include <sstream>

#include "psim/sim.h"
#include "tasks/registry.h"

namespace psme {
namespace {

std::string stats_signature(const SoarRunStats& s) {
  std::ostringstream os;
  os << s.decisions << '/' << s.elab_cycles << '/' << s.impasses << '/'
     << s.chunks_built << '/' << s.goal_achieved;
  for (const auto& t : s.traces) os << ':' << t.task_count();
  for (const auto& c : s.chunk_texts) os << '#' << c.size();
  return os.str();
}

class TaskDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(TaskDeterminism, RunsAreBitIdentical) {
  const Task task = make_task(GetParam());
  const auto a = run_task(task, /*learning=*/true);
  const auto b = run_task(task, /*learning=*/true);
  EXPECT_EQ(stats_signature(a.stats), stats_signature(b.stats));
  ASSERT_EQ(a.stats.chunk_texts.size(), b.stats.chunk_texts.size());
  for (size_t i = 0; i < a.stats.chunk_texts.size(); ++i) {
    EXPECT_EQ(a.stats.chunk_texts[i], b.stats.chunk_texts[i]);
  }
}

TEST_P(TaskDeterminism, TraceContentsIdentical) {
  const Task task = make_task(GetParam());
  const auto a = run_task(task, false);
  const auto b = run_task(task, false);
  ASSERT_EQ(a.stats.traces.size(), b.stats.traces.size());
  for (size_t c = 0; c < a.stats.traces.size(); ++c) {
    const auto& ta = a.stats.traces[c];
    const auto& tb = b.stats.traces[c];
    ASSERT_EQ(ta.task_count(), tb.task_count()) << "cycle " << c;
    for (size_t i = 0; i < ta.tasks.size(); ++i) {
      EXPECT_EQ(ta.tasks[i].parent, tb.tasks[i].parent);
      EXPECT_EQ(ta.tasks[i].type, tb.tasks[i].type);
      EXPECT_EQ(ta.tasks[i].stats.probes, tb.tasks[i].stats.probes);
      EXPECT_EQ(ta.tasks[i].stats.tests, tb.tasks[i].stats.tests);
    }
  }
}

TEST_P(TaskDeterminism, SimulationIsReproducible) {
  const Task task = make_task(GetParam());
  const auto run = run_task(task, false);
  SimOptions opts;
  opts.processors = 11;
  const auto r1 = simulate_run(run.stats.traces, opts);
  const auto r2 = simulate_run(run.stats.traces, opts);
  EXPECT_EQ(r1.parallel_us, r2.parallel_us);
  EXPECT_EQ(r1.spins, r2.spins);
  EXPECT_EQ(r1.failed_pops, r2.failed_pops);
  EXPECT_EQ(r1.bucket_spins, r2.bucket_spins);
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskDeterminism,
                         ::testing::Values("eight-puzzle", "strips",
                                           "cypress"));

/// The satellite-1 acceptance check: Eight-Puzzle LEARNING runs — chunk
/// building included — land on the identical decision sequence and the
/// byte-identical chunk texts at every matcher width, with tracing enabled.
/// The conflict set orders instantiations by a schedule-invariant content
/// key (production id, token timetags — see det_less in conflict_set.cpp),
/// so worker count and steal schedule cannot leak into firing order, chunk
/// backtraces, or gensym'd identifiers. (Per-task CycleTraces are compared
/// only at width 1: parallel cycles intentionally return empty traces.)
TEST(LearningDeterminism, EightPuzzleIdenticalAcrossMatcherWidths) {
  const Task task = make_task("eight-puzzle");

  auto run_at = [&](size_t workers) {
    EngineOptions eo;
    eo.match_workers = workers;
    eo.trace.enabled = true;  // tracing on, per the acceptance criterion
    return run_task(task, /*learning=*/true, nullptr, eo);
  };

  const auto oracle = run_task(task, /*learning=*/true);  // serial default
  auto decision_signature = [](const SoarRunStats& s) {
    std::ostringstream os;
    os << s.decisions << '/' << s.elab_cycles << '/' << s.impasses << '/'
       << s.chunks_built << '/' << s.goal_achieved;
    return os.str();
  };

  for (const size_t workers : {1u, 2u, 4u, 8u}) {
    const auto r = run_at(workers);
    EXPECT_EQ(decision_signature(r.stats), decision_signature(oracle.stats))
        << "match_workers=" << workers;
    ASSERT_EQ(r.stats.chunk_texts.size(), oracle.stats.chunk_texts.size())
        << "match_workers=" << workers;
    for (size_t i = 0; i < r.stats.chunk_texts.size(); ++i) {
      EXPECT_EQ(r.stats.chunk_texts[i], oracle.stats.chunk_texts[i])
          << "chunk " << i << " at match_workers=" << workers;
    }
  }
}

TEST(SimMonotonicity, RealTracesNeverGetSlowerWithMoreProcsMultiQueue) {
  const auto run = run_task(make_eight_puzzle(), false);
  SimOptions opts;
  opts.policy = QueuePolicy::Multi;
  double prev = 1e18;
  for (const uint32_t p : {1u, 3u, 6u, 9u}) {
    opts.processors = p;
    const double t = simulate_run(run.stats.traces, opts).parallel_us;
    EXPECT_LT(t, prev * 1.02) << "at " << p << " procs";
    prev = t;
  }
}

TEST(SimSanity, SpeedupNeverExceedsProcessorCount) {
  const auto run = run_task(make_strips(), false);
  for (const uint32_t p : {2u, 5u, 8u, 13u}) {
    SimOptions opts;
    opts.processors = p;
    SimOptions uni = opts;
    uni.processors = 1;
    const double s = simulate_run(run.stats.traces, uni).parallel_us /
                     simulate_run(run.stats.traces, opts).parallel_us;
    EXPECT_LE(s, static_cast<double>(p) * 1.001);
    EXPECT_GE(s, 0.9);
  }
}

}  // namespace
}  // namespace psme
