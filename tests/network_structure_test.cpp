// Structural properties of the compiled network: census, jumptable
// splicing, code-size model, node-id monotonicity, and cross-type value
// semantics flowing through joins.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "rete/codesize.h"
#include "test_util.h"

namespace psme {
namespace {

TEST(NetworkCensus, CountsEveryNodeKind) {
  Engine e;
  e.load(
      "(p p1 (a ^v 1 ^w <x>) (b ^v <x>) -(c ^v <x>) "
      "-{ (d ^v <x>) (f ^v <x>) } --> (halt))");
  const auto c = e.net().census();
  EXPECT_GE(c.consts, 1u);   // the v==1 test
  EXPECT_EQ(c.alpha_mems, 5u);  // a, b, c, d, f
  EXPECT_EQ(c.joins, 3u);    // (a)(b) join + 2 NCC subnetwork joins
  EXPECT_EQ(c.nots, 1u);
  EXPECT_EQ(c.nccs, 1u);
  EXPECT_EQ(c.partners, 1u);
  EXPECT_EQ(c.prods, 1u);
  EXPECT_EQ(c.total(), e.net().node_count());
}

TEST(NetworkCensus, TwoInputCountMatchesPaperTerminology) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) -(c ^v <x>) --> (halt))");
  EXPECT_EQ(e.net().census().two_input(), 2u);  // one and, one not
}

TEST(Jumptable, SuccessorSplicingPreservesExistingEntries) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  // The amem(a) slot has one Left successor (the join).
  const Jumptable& jt = e.net().jumptable();
  // Find the alpha memory for class a by scanning nodes.
  uint32_t amem = UINT32_MAX;
  for (uint32_t i = 0; i < e.net().node_count(); ++i) {
    if (e.net().node(i)->type == NodeType::AlphaMem) {
      amem = i;
      break;
    }
  }
  ASSERT_NE(amem, UINT32_MAX);
  const size_t before = jt.peek(e.net().node(amem)->jt_slot).size();
  e.load("(p p2 (a ^v <x>) (c ^v <x>) --> (halt))");
  const size_t after = jt.peek(e.net().node(amem)->jt_slot).size();
  EXPECT_EQ(after, before + 1);  // p2's join spliced in next to p1's
}

TEST(Jumptable, IndirectionCounterAdvancesDuringMatch) {
  Engine e;
  e.load("(p p1 (a ^v <x>) --> (halt))");
  e.net().jumptable().reset_stats();
  e.add_wme_text("(a ^v 1)");
  e.match();
  EXPECT_GT(e.net().jumptable().indirections(), 0u);
}

TEST(NodeIds, StrictlyMonotonicAcrossAdds) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  const uint32_t n1 = e.net().node_count();
  e.load("(p p2 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))");
  const auto& cp = e.record(e.productions().back()).compiled;
  for (const uint32_t id : cp.new_nodes) EXPECT_GE(id, n1);
  // Linearity invariant (§5.2): once sharing stops, everything is new —
  // first_new_id is the minimum of all new nodes.
  for (const uint32_t id : cp.new_nodes) EXPECT_GE(id, cp.first_new_id);
}

TEST(CodeSize, TwoInputNodesCostPaperScaleBytes) {
  JoinNode j;
  j.tests.resize(3);
  const size_t bytes = modeled_node_bytes(j);
  EXPECT_GE(bytes, 200u);
  EXPECT_LE(bytes, 320u);  // the paper's 219-304 bytes/2-input range
  ConstNode c;
  EXPECT_LT(modeled_node_bytes(c), 64u);
}

TEST(CodeSize, GenerationWritesExactlyModeledBytes) {
  NotNode n;
  n.tests.resize(2);
  std::vector<uint8_t> image;
  generate_code(n, image);
  EXPECT_EQ(image.size(), modeled_node_bytes(n));
  // Deterministic content.
  std::vector<uint8_t> image2;
  generate_code(n, image2);
  EXPECT_EQ(image, image2);
}

TEST(ValueSemantics, IntFloatCrossTypeJoin) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.add_wme(e.syms().intern("a"), {Value(int64_t{3})});
  e.add_wme(e.syms().intern("b"), {Value(3.0)});
  e.match();
  // 3 == 3.0 in OPS5 numeric semantics, and they hash alike.
  EXPECT_EQ(test::instantiation_count(e, "p1"), 1);
}

TEST(ValueSemantics, SameTypePredicateThroughRete) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <=> <x>) --> (halt))");
  e.add_wme_text("(a ^v 5)");
  e.add_wme_text("(b ^v 9)");       // number vs number: same type
  e.add_wme_text("(b ^v word)");    // symbol vs number: different
  e.match();
  EXPECT_EQ(test::instantiation_count(e, "p1"), 1);
}

TEST(ValueSemantics, OrderingPredicateOnSymbolsFails) {
  Engine e;
  e.load("(p p1 (a ^v > 3) --> (halt))");
  e.add_wme_text("(a ^v hello)");
  e.match();
  EXPECT_EQ(test::instantiation_count(e, "p1"), 0);
}

TEST(SharePoint, FullySharedBodyPointsAtLastJoin) {
  Engine e;
  e.load("(p p1 (a ^v <x>) (b ^v <x>) --> (halt))");
  e.load("(p p2 (a ^v <x>) (b ^v <x>) --> (write w))");
  const auto& cp = e.record(e.productions().back()).compiled;
  const Node* sp = e.net().node(cp.share_point);
  EXPECT_EQ(sp->type, NodeType::Join);
  EXPECT_EQ(cp.first_new_id, cp.pnode);  // only the P-node is new
}

TEST(SharePoint, SingleConditionProductionPointsAtAlphaMem) {
  Engine e;
  e.load("(p p1 (a ^v 1) --> (halt))");
  const auto& cp = e.record(e.productions().back()).compiled;
  EXPECT_EQ(e.net().node(cp.share_point)->type, NodeType::AlphaMem);
}

}  // namespace
}  // namespace psme
