// Counting global allocator for allocation-discipline tests.
//
// Including this header replaces the process-wide operator new/delete with
// counting versions; psme::test::heap_allocs() reads the running count.
// Tests snapshot the counter around a measured window (gtest's own
// allocations happen outside those windows).
//
// Because it *defines* the global operators, this header may be included by
// exactly ONE translation unit per test binary. Every psme_test target is a
// single .cpp, so including it from the test file is always safe; never put
// it in a shared utility TU.
#pragma once

#include <atomic>
#include <cstdlib>
#include <new>

namespace psme::test {
inline std::atomic<uint64_t> g_heap_allocs{0};

inline uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace psme::test

namespace {
inline void* psme_counted_alloc(std::size_t n) {
  psme::test::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return psme_counted_alloc(n); }
void* operator new[](std::size_t n) { return psme_counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  psme::test::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

void* operator new(std::size_t n, std::align_val_t a) {
  psme::test::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
