// Deterministic PRNG (xoshiro256**) used by workload generators and the cost
// model. std::mt19937 output differs across standard libraries for
// distributions; we need bit-identical workloads everywhere, so distributions
// are hand-rolled here.
#pragma once

#include <cstdint>

namespace psme {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// True with probability p.
  bool chance(double p) { return unit() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace psme
