// Clang thread-safety-analysis annotation macros (PSME_ prefix).
//
// These expand to Clang's capability attributes when the compiler supports
// them (-Wthread-safety turns on the analysis; the root CMakeLists enables it
// plus -Werror=thread-safety whenever the flag probe succeeds) and to nothing
// everywhere else, so GCC builds are unaffected. The vocabulary follows the
// standard capability model:
//
//   PSME_CAPABILITY      — a type that is a lock (psme::Spinlock)
//   PSME_GUARDED_BY(l)   — a member that may only be touched while holding l
//   PSME_REQUIRES(l)     — a function that must be called with l held
//   PSME_ACQUIRE/RELEASE — functions that take / drop a capability
//
// Deliberately-unsynchronized access (the quiescent-only readers documented
// in DESIGN.md §"Concurrency invariants") is marked
// PSME_NO_THREAD_SAFETY_ANALYSIS rather than silenced with casts, so every
// exemption is searchable.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define PSME_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PSME_THREAD_ANNOTATION_(x)
#endif

#define PSME_CAPABILITY(x) PSME_THREAD_ANNOTATION_(capability(x))
#define PSME_SCOPED_CAPABILITY PSME_THREAD_ANNOTATION_(scoped_lockable)

#define PSME_GUARDED_BY(x) PSME_THREAD_ANNOTATION_(guarded_by(x))
#define PSME_PT_GUARDED_BY(x) PSME_THREAD_ANNOTATION_(pt_guarded_by(x))

#define PSME_ACQUIRED_BEFORE(...) \
  PSME_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PSME_ACQUIRED_AFTER(...) \
  PSME_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define PSME_REQUIRES(...) \
  PSME_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PSME_REQUIRES_SHARED(...) \
  PSME_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define PSME_ACQUIRE(...) \
  PSME_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PSME_ACQUIRE_SHARED(...) \
  PSME_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define PSME_RELEASE(...) \
  PSME_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PSME_RELEASE_SHARED(...) \
  PSME_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define PSME_TRY_ACQUIRE(...) \
  PSME_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define PSME_EXCLUDES(...) PSME_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define PSME_ASSERT_CAPABILITY(x) \
  PSME_THREAD_ANNOTATION_(assert_capability(x))
#define PSME_RETURN_CAPABILITY(x) PSME_THREAD_ANNOTATION_(lock_returned(x))

#define PSME_NO_THREAD_SAFETY_ANALYSIS \
  PSME_THREAD_ANNOTATION_(no_thread_safety_analysis)
