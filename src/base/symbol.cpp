#include "base/symbol.h"

#include <stdexcept>

namespace psme {

Symbol SymbolTable::intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return Symbol(it->second);
  const auto raw = static_cast<uint32_t>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), raw);
  return Symbol(raw);
}

std::string_view SymbolTable::name(Symbol sym) const {
  if (!sym.valid() || sym.raw() >= names_.size())
    throw std::out_of_range("SymbolTable::name: unknown symbol");
  return names_[sym.raw()];
}

Symbol SymbolTable::find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? Symbol() : Symbol(it->second);
}

Symbol SymbolTable::gensym(std::string_view prefix) {
  for (;;) {
    std::string candidate(prefix);
    candidate += std::to_string(++gensym_counter_);
    if (!find(candidate).valid()) return intern(candidate);
  }
}

}  // namespace psme
