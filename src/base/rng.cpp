#include "base/rng.h"

namespace psme {
namespace {
constexpr uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) {
  // Lemire-style rejection-free enough for our purposes: use 128-bit multiply.
  return static_cast<uint64_t>((static_cast<__uint128_t>(next()) * bound) >> 64);
}

int64_t Rng::range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

}  // namespace psme
