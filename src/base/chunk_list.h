// Recycled chunked storage for match-memory entry lists.
//
// The paper's dominant cost is the probe path: scanning the right-memory
// entries of a line and the wme list of an alpha memory (§6). Per-line
// `std::vector`s pay a heap round-trip every time a line's population crosses
// a capacity boundary, and thousands of mostly-small vectors scatter the
// probe path across the heap. A ChunkedList instead stores entries in
// fixed-size chunks drawn from a shared ChunkPool: entries within a chunk
// are contiguous (the probe scans cache lines, not pointer chains per
// entry), and a chunk released by one line is reused by the next — after
// warm-up the steady-state engine cycle performs no entry-storage heap
// allocation at all (enforced by tests/engine_alloc_test.cpp; see
// DESIGN.md §10).
//
// Concurrency: a ChunkedList is guarded by whatever lock guards the
// structure that owns it (a table line's Bucket lock, an alpha memory's
// Bucket lock). The ChunkPool's internal free-list lock carries
// LockRank::SlabPool — strictly above Bucket — so acquiring/releasing a
// chunk while holding a line lock respects the global hierarchy
// (par/lock_order.h). The pool lock protects only the free list; nothing
// that can emit or block is ever done under it.
//
// Erase order: erase() fills the hole with the list's *last* element
// (swap-with-last), so a ChunkedList is unordered storage. Every consumer
// (line right memories, alpha wme lists) either probes by predicate or
// feeds order-insensitive fingerprints, so this is safe — and it is what
// makes erase O(1) without per-entry links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "par/spinlock.h"

namespace psme {

/// Shared recycler of fixed-capacity entry chunks. Owns every chunk it ever
/// allocated (the registry), so list teardown never frees — lists are plain
/// views into pool-owned storage and have trivial destruction order.
template <typename T, size_t N>
class ChunkPool {
 public:
  struct Chunk {
    T items[N];
    uint32_t count = 0;
    Chunk* next = nullptr;  // list linkage while in use; free-list when idle
  };

  ChunkPool() = default;
  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  Chunk* acquire() {
    {
      SpinGuard g(lock_);
      if (free_ != nullptr) {
        Chunk* c = free_;
        free_ = c->next;
        c->next = nullptr;
        c->count = 0;
        return c;
      }
    }
    // Cold path: allocate outside the lock, register under it.
    auto owned = std::make_unique<Chunk>();
    Chunk* c = owned.get();
    SpinGuard g(lock_);
    registry_.push_back(std::move(owned));
    ++chunk_allocs_;
    return c;
  }

  void release(Chunk* c) {
    SpinGuard g(lock_);
    c->count = 0;
    c->next = free_;
    free_ = c;
  }

  /// Lifetime chunk mallocs (diagnostics; flat once warm).
  [[nodiscard]] uint64_t chunk_allocs() const {
    SpinGuard g(lock_);
    return chunk_allocs_;
  }

  /// Rank of the free-list lock (the network verifier checks it against the
  /// lockdep table; Unranked when PSME_LOCKDEP is off).
  [[nodiscard]] LockRank lock_rank() const noexcept { return lock_.rank(); }

 private:
  mutable Spinlock lock_{LockRank::SlabPool, "chunk-pool"};
  Chunk* free_ PSME_GUARDED_BY(lock_) = nullptr;
  std::vector<std::unique_ptr<Chunk>> registry_ PSME_GUARDED_BY(lock_);
  uint64_t chunk_allocs_ PSME_GUARDED_BY(lock_) = 0;
};

/// Unordered entry list over pool chunks. Invariant: every chunk except the
/// tail is full; the tail holds the partial remainder. Mutators take the
/// pool explicitly so lists stay default-constructible (they live inside
/// per-line structs built by the thousands).
template <typename T, size_t N>
class ChunkedList {
 public:
  using Pool = ChunkPool<T, N>;
  using Chunk = typename Pool::Chunk;

  class const_iterator {
   public:
    const_iterator() = default;
    const_iterator(const Chunk* c, uint32_t i) : c_(c), i_(i) { settle(); }

    const T& operator*() const { return c_->items[i_]; }
    const T* operator->() const { return &c_->items[i_]; }
    const_iterator& operator++() {
      ++i_;
      settle();
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.c_ == b.c_ && a.i_ == b.i_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return !(a == b);
    }

   private:
    friend class ChunkedList;
    void settle() {
      while (c_ != nullptr && i_ >= c_->count) {
        c_ = c_->next;
        i_ = 0;
      }
    }
    const Chunk* c_ = nullptr;
    uint32_t i_ = 0;
  };

  class iterator {
   public:
    iterator() = default;
    iterator(Chunk* c, uint32_t i) : c_(c), i_(i) { settle(); }

    T& operator*() const { return c_->items[i_]; }
    T* operator->() const { return &c_->items[i_]; }
    iterator& operator++() {
      ++i_;
      settle();
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.c_ == b.c_ && a.i_ == b.i_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    friend class ChunkedList;
    void settle() {
      while (c_ != nullptr && i_ >= c_->count) {
        c_ = c_->next;
        i_ = 0;
      }
    }
    Chunk* c_ = nullptr;
    uint32_t i_ = 0;
  };

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] iterator begin() { return iterator(head_, 0); }
  [[nodiscard]] iterator end() { return iterator(nullptr, 0); }
  [[nodiscard]] const_iterator begin() const { return const_iterator(head_, 0); }
  [[nodiscard]] const_iterator end() const { return const_iterator(nullptr, 0); }

  void push_back(const T& v, Pool& pool) {
    if (tail_ == nullptr) {
      head_ = tail_ = pool.acquire();
    } else if (tail_->count == N) {
      Chunk* c = pool.acquire();
      tail_->next = c;
      tail_ = c;
    }
    tail_->items[tail_->count++] = v;
    ++size_;
  }

  /// Swap-with-last erase: `it` stays valid and now refers to the element
  /// that filled the hole (callers that continue iterating must re-examine
  /// it; all current callers stop after the erase).
  void erase(iterator it, Pool& pool) {
    Chunk* last = tail_;
    T& hole = it.c_->items[it.i_];
    T& back = last->items[last->count - 1];
    if (&hole != &back) hole = back;
    --last->count;
    --size_;
    if (last->count == 0 && last != head_) {
      // Find the predecessor of the (now empty) tail. Chains are short —
      // lists hold one chunk per N entries — and this runs only when a
      // chunk boundary is crossed downward.
      Chunk* prev = head_;
      while (prev->next != last) prev = prev->next;
      prev->next = nullptr;
      tail_ = prev;
      pool.release(last);
    }
    // Hysteresis: an emptied single-chunk list keeps its chunk, so a line
    // that toggles between 0 and a few entries every cycle never touches
    // the pool lock in steady state.
  }

  /// Returns every chunk to the pool (structure teardown / clear()).
  void clear(Pool& pool) {
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next;
      pool.release(c);
      c = next;
    }
    head_ = tail_ = nullptr;
    size_ = 0;
  }

 private:
  Chunk* head_ = nullptr;
  Chunk* tail_ = nullptr;
  size_t size_ = 0;
};

}  // namespace psme
