#include "base/arena.h"

#include <cassert>
#include <cstdlib>
#include <new>

namespace psme {

TokenArena::TokenArena(size_t n_workers, uint32_t chunk_bytes)
    : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes) {
  ensure_workers(n_workers == 0 ? 1 : n_workers);
}

TokenArena::~TokenArena() {
  // Quiescent by contract: no worker can be allocating or holding live
  // tokens once the Network that owns us is being destroyed.
  for (auto& p : pools_) {
    std::free(p->current);
    p->current = nullptr;
  }
  Chunk* c = sealed_head_.exchange(nullptr, std::memory_order_acquire);
  while (c != nullptr) {
    Chunk* next = c->next;
    std::free(c);
    c = next;
  }
}

void TokenArena::ensure_workers(size_t n) {
  while (pools_.size() < n) {
    pools_.push_back(std::make_unique<Pool>());
  }
}

TokenArena::Chunk* TokenArena::new_chunk(size_t worker,
                                         uint32_t payload_bytes) {
  void* mem = std::malloc(sizeof(Chunk) + payload_bytes);
  if (mem == nullptr) throw std::bad_alloc();
  Chunk* c = new (mem) Chunk();
  c->capacity = payload_bytes;
  ++pools_[worker]->chunks_allocated;
  return c;
}

void TokenArena::seal(Pool& p) {
  Chunk* c = p.current;
  p.current = nullptr;
  if (c == nullptr) return;
  // Stamp with the *current* epoch, then Treiber-push onto the sealed list.
  // Reclamation frees the chunk only once every worker of a later drain has
  // entered a strictly greater epoch, so unpinned transient copies made
  // during this drain (and seed copies carried into the next one) stay
  // valid through at least one full drain after sealing.
  c->sealed_epoch = epoch_.load(std::memory_order_relaxed);
  Chunk* head = sealed_head_.load(std::memory_order_relaxed);
  do {
    c->next = head;
  } while (!sealed_head_.compare_exchange_weak(
      head, c, std::memory_order_release, std::memory_order_relaxed));
}

void* TokenArena::alloc(size_t worker, uint32_t bytes, Chunk** chunk_out) {
  assert(worker < pools_.size());
  Pool& p = *pools_[worker];
  const uint32_t need = (bytes + 7u) & ~7u;
  Chunk* c = p.current;
  if (c == nullptr || c->capacity - c->used < need) {
    seal(p);
    const uint32_t cap = need > chunk_bytes_ ? need : chunk_bytes_;
    c = new_chunk(worker, cap);
    p.current = c;
  }
  void* out = c->payload() + c->used;
  c->used += need;
  ++p.spill_allocs;
  p.spill_bytes += bytes;
  *chunk_out = c;
  return out;
}

void TokenArena::begin_drain(size_t workers_in_drain) {
  const uint64_t e = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (workers_in_drain > pools_.size()) workers_in_drain = pools_.size();
  if (workers_in_drain == 0) workers_in_drain = 1;
  // Only the participating pools are stamped: a pool outside this drain may
  // hold a stale entered_epoch, but its transients died at its *own* drain's
  // quiescence, so reclaim() taking the min over just the participants is
  // exactly the bound that matters.
  for (size_t i = 0; i < workers_in_drain; ++i) {
    pools_[i]->entered_epoch = e;
  }
  last_drain_workers_ = workers_in_drain;
}

void TokenArena::reclaim_at_quiescence() {
  uint64_t min_entered = ~0ull;
  for (size_t i = 0; i < last_drain_workers_ && i < pools_.size(); ++i) {
    const uint64_t e = pools_[i]->entered_epoch;
    if (e < min_entered) min_entered = e;
  }
  if (min_entered == ~0ull) return;

  // Single-threaded sweep (all workers parked): detach the whole sealed
  // list, free what is reclaimable, push back the rest. Pins are re-checked
  // here, at quiescence — a chunk that was pin-free mid-drain but got
  // pinned by a late conflict-set insert is simply kept.
  Chunk* c = sealed_head_.exchange(nullptr, std::memory_order_acquire);
  Chunk* keep = nullptr;
  uint64_t freed = 0;
  while (c != nullptr) {
    Chunk* next = c->next;
    if (c->sealed_epoch < min_entered &&
        c->pins.load(std::memory_order_acquire) == 0) {
      std::free(c);
      ++freed;
    } else {
      c->next = keep;
      keep = c;
    }
    c = next;
  }
  if (freed != 0) chunks_freed_.fetch_add(freed, std::memory_order_relaxed);
  // Reattach survivors (other threads are parked, but stay CAS-correct).
  while (keep != nullptr) {
    Chunk* next = keep->next;
    Chunk* head = sealed_head_.load(std::memory_order_relaxed);
    do {
      keep->next = head;
    } while (!sealed_head_.compare_exchange_weak(
        head, keep, std::memory_order_release, std::memory_order_relaxed));
    keep = next;
  }
}

MatchStats TokenArena::stats() const {
  MatchStats s;
  for (const auto& p : pools_) {
    s.spill_allocs += p->spill_allocs;
    s.spill_bytes += p->spill_bytes;
    s.chunks_allocated += p->chunks_allocated;
  }
  s.chunks_freed = chunks_freed_.load(std::memory_order_relaxed);
  s.chunks_live = s.chunks_allocated - s.chunks_freed;
  s.sealed_pending = sealed_pending();
  s.epoch = epoch_.load(std::memory_order_relaxed);
  return s;
}

std::vector<MatchStats> TokenArena::worker_stats() const {
  std::vector<MatchStats> out;
  out.reserve(pools_.size());
  for (const auto& p : pools_) {
    MatchStats s;
    s.spill_allocs = p->spill_allocs;
    s.spill_bytes = p->spill_bytes;
    s.chunks_allocated = p->chunks_allocated;
    out.push_back(s);
  }
  return out;
}

size_t TokenArena::sealed_pending() const {
  size_t n = 0;
  for (Chunk* c = sealed_head_.load(std::memory_order_acquire); c != nullptr;
       c = c->next) {
    ++n;
  }
  return n;
}

}  // namespace psme
