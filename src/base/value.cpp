#include "base/value.h"

#include <sstream>

namespace psme {

std::string Value::to_string(const SymbolTable& tab) const {
  switch (kind_) {
    case Kind::Nil:
      return "nil";
    case Kind::Sym:
      return std::string(tab.name(sym()));
    case Kind::Int:
      return std::to_string(i_);
    case Kind::Float: {
      std::ostringstream os;
      os << f_;
      return os.str();
    }
  }
  return "?";
}

}  // namespace psme
