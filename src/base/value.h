// Tagged runtime value: the contents of one wme attribute slot.
//
// OPS5 attribute values are symbols or numbers. We support interned symbols,
// 64-bit integers and doubles. Values are 16 bytes, trivially copyable, and
// hash/compare without touching the symbol table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "base/symbol.h"

namespace psme {

class Value {
 public:
  enum class Kind : uint8_t { Nil, Sym, Int, Float };

  constexpr Value() : kind_(Kind::Nil), i_(0) {}
  constexpr Value(Symbol s) : kind_(Kind::Sym), i_(s.raw()) {}  // NOLINT implicit
  constexpr Value(int64_t i) : kind_(Kind::Int), i_(i) {}       // NOLINT implicit
  constexpr Value(double f) : kind_(Kind::Float), f_(f) {}      // NOLINT implicit

  [[nodiscard]] constexpr Kind kind() const { return kind_; }
  [[nodiscard]] constexpr bool is_nil() const { return kind_ == Kind::Nil; }
  [[nodiscard]] constexpr bool is_sym() const { return kind_ == Kind::Sym; }
  [[nodiscard]] constexpr bool is_num() const {
    return kind_ == Kind::Int || kind_ == Kind::Float;
  }

  [[nodiscard]] constexpr Symbol sym() const { return Symbol(static_cast<uint32_t>(i_)); }
  [[nodiscard]] constexpr int64_t as_int() const { return i_; }
  [[nodiscard]] constexpr double as_float() const {
    return kind_ == Kind::Float ? f_ : static_cast<double>(i_);
  }

  /// Numeric value as double; only valid when is_num().
  [[nodiscard]] constexpr double num() const { return as_float(); }

  friend constexpr bool operator==(const Value& a, const Value& b) {
    if (a.kind_ == b.kind_) {
      return a.kind_ == Kind::Float ? a.f_ == b.f_ : a.i_ == b.i_;
    }
    // Int/Float cross-compare: OPS5 predicates compare numbers by value.
    if (a.is_num() && b.is_num()) return a.as_float() == b.as_float();
    return false;
  }
  friend constexpr bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// OPS5 `<=>` (same type) predicate.
  [[nodiscard]] constexpr bool same_type(const Value& other) const {
    return (is_num() && other.is_num()) || kind_ == other.kind_;
  }

  /// Stable hash; equal values hash equally (incl. int/float numeric equality
  /// for integral doubles, which we side-step by hashing canonical doubles).
  [[nodiscard]] size_t hash() const noexcept {
    uint64_t h;
    if (kind_ == Kind::Float) {
      const double d = f_;
      // Canonicalize integral floats so 3 and 3.0 hash alike (they compare ==).
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        h = static_cast<uint64_t>(static_cast<int64_t>(d)) ^ 0x517cc1b727220a95ull;
      } else {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        h = bits;
      }
    } else if (kind_ == Kind::Int) {
      h = static_cast<uint64_t>(i_) ^ 0x517cc1b727220a95ull;
    } else {
      h = static_cast<uint64_t>(i_) + (static_cast<uint64_t>(kind_) << 56);
    }
    h *= 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }

  /// Human-readable form; needs the table that interned any symbol.
  [[nodiscard]] std::string to_string(const SymbolTable& tab) const;

 private:
  Kind kind_;
  union {
    int64_t i_;
    double f_;
  };
};

static_assert(sizeof(Value) == 16);

}  // namespace psme

template <>
struct std::hash<psme::Value> {
  size_t operator()(const psme::Value& v) const noexcept { return v.hash(); }
};
