// Growable power-of-two ring buffer with retained capacity.
//
// The FIFO work queues of this system (locked task queues, the serial
// executor, the §5.2 update drain) used `std::deque`, which allocates and
// frees a block roughly every 64 activations of churn (~0.12 heap
// allocs/activation measured in bench_scheduler). A RingBuffer grows by
// doubling and never shrinks, so after warm-up every push/pop is a store
// and an index bump — the property the zero-allocation engine-cycle gate
// (tests/engine_alloc_test.cpp, DESIGN.md §10) requires of every queue on
// the steady-state path.
//
// T must be trivially copyable (elements are relocated with plain copies on
// growth); the queues hold Activation and small pairs of it, which are.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace psme {

template <typename T>
class RingBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingBuffer relocates elements with plain copies");

 public:
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] size_t size() const { return static_cast<size_t>(tail_ - head_); }
  [[nodiscard]] size_t capacity() const { return buf_.size(); }

  void push_back(const T& v) {
    if (size() == buf_.size()) grow();
    buf_[tail_++ & mask_] = v;
  }

  /// Precondition: !empty().
  T pop_front() {
    return buf_[head_++ & mask_];
  }

  [[nodiscard]] const T& front() const { return buf_[head_ & mask_]; }

  void clear() { head_ = tail_ = 0; }

  /// Pre-sizes the ring so pushes stay allocation-free until `n` elements
  /// are queued at once. Rounds up to the power-of-two growth schedule;
  /// never shrinks. Existing contents are preserved.
  void reserve(size_t n) {
    while (buf_.size() < n) grow();
  }

 private:
  void grow() {
    const size_t n = size();
    const size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (size_t i = 0; i < n; ++i) next[i] = buf_[(head_ + i) & mask_];
    buf_.swap(next);
    mask_ = cap - 1;
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> buf_;  // power-of-two length
  uint64_t mask_ = 0;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
};

}  // namespace psme
