// Arena-backed token storage: chunked bump allocation with per-worker pools
// and epoch-based reclamation.
//
// The match hot path creates one partial instantiation per successful join;
// the paper attributes most of match cost to creating, hashing and storing
// these PIs (§2, §6). Tokens of ≤ Token::kInlineCap wmes live entirely
// inside the Token value (no heap traffic at all); longer tokens spill their
// wme-pointer array into this arena. Allocation is a per-worker pointer
// bump — no locks, no atomics on the fast path — so the Steal scheduler's
// lock-free property is preserved.
//
// Lifecycle:
//   * Each worker owns a Pool (cache-line padded). alloc() bumps the pool's
//     current chunk; when a chunk fills, the worker *seals* it onto a global
//     lock-free list (one Treiber push per ~64 KiB of token traffic).
//   * Structures that outlive a match drain (memory-node lines, the conflict
//     set, Soar provenance) hold *pinned* copies: Token::pin() bumps the
//     owning chunk's pin count, unpin() drops it. Transient copies (queued
//     activations, seeds, scratch) do not pin — they are guaranteed dead by
//     the next quiescence point.
//   * Reclamation is epoch-based, pinned to match quiescence: begin_drain()
//     opens a new epoch and stamps every participating worker into it;
//     reclaim_at_quiescence() (called after the drain's join/exit cascade —
//     the same lifecycle hook the ParkingLot exit cascade provides) frees
//     every sealed chunk whose pin count is zero and whose sealing epoch
//     precedes the epoch all workers have since entered. A chunk sealed
//     *during* drain E is therefore never freed before the end of drain E+1,
//     which is what makes unpinned transient copies safe without any
//     per-copy bookkeeping.
//
// Invariants (see DESIGN.md §9):
//   I1  a spilled payload is immutable after construction;
//   I2  every stored (cross-drain) Token copy is pinned exactly once and
//       unpinned exactly once, by the structure that stores it;
//   I3  a chunk is freed only when sealed ∧ pins == 0 ∧ sealed_epoch <
//       min(entered epoch over the last drain's workers);
//   I4  begin_drain/reclaim_at_quiescence/ensure_workers are quiescent-only
//       (no worker is inside a drain when they run).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace psme {

/// Allocation/footprint counters for token memory. Per-worker counts come
/// from TokenArena::worker_stats(); the aggregate (plus chunk-lifecycle
/// gauges) from TokenArena::stats(). ParallelMatcher surfaces a per-cycle
/// delta of these in ParallelStats so bench JSON output can report
/// allocations/activation.
struct MatchStats {
  uint64_t spill_allocs = 0;     // payloads spilled to the arena
  uint64_t spill_bytes = 0;      // bytes of spilled payloads
  uint64_t chunks_allocated = 0; // chunk mallocs (lifetime)
  uint64_t chunks_freed = 0;     // chunks reclaimed by the epoch sweep
  uint64_t chunks_live = 0;      // allocated - freed (point in time)
  uint64_t sealed_pending = 0;   // sealed, awaiting pins/epoch (gauge)
  uint64_t epoch = 0;            // current reclamation epoch (gauge)

  /// this − base, counter fields only; gauges keep this snapshot's value
  /// (same semantics as obs::MetricsRegistry::delta). Benches use this for
  /// measured-window accounting instead of hand-subtracting field lists.
  [[nodiscard]] MatchStats delta(const MatchStats& base) const {
    MatchStats d = *this;
    d.spill_allocs -= base.spill_allocs;
    d.spill_bytes -= base.spill_bytes;
    d.chunks_allocated -= base.chunks_allocated;
    d.chunks_freed -= base.chunks_freed;
    return d;
  }
};

class TokenArena {
 public:
  /// Chunk header; payload bytes follow in the same allocation. `pins`
  /// counts stored (cross-drain) token copies referencing this chunk.
  struct Chunk {
    std::atomic<uint32_t> pins{0};
    uint64_t sealed_epoch = 0;
    Chunk* next = nullptr;  // sealed-list linkage (arena-owned)
    uint32_t capacity = 0;  // payload bytes
    uint32_t used = 0;      // payload bytes bumped (owner-only until sealed)

    [[nodiscard]] std::byte* payload() {
      return reinterpret_cast<std::byte*>(this + 1);
    }
  };

  static constexpr uint32_t kDefaultChunkBytes = 64 * 1024;

  explicit TokenArena(size_t n_workers = 1,
                      uint32_t chunk_bytes = kDefaultChunkBytes);
  ~TokenArena();
  TokenArena(const TokenArena&) = delete;
  TokenArena& operator=(const TokenArena&) = delete;

  /// Grows the pool set to at least `n` workers. Quiescent-only (I4);
  /// called by ParallelMatcher construction.
  void ensure_workers(size_t n);

  [[nodiscard]] size_t worker_count() const { return pools_.size(); }

  /// Bump-allocates `bytes` (8-byte aligned) from `worker`'s pool. Returns
  /// the payload pointer and the owning chunk through `chunk_out`. Only the
  /// owning worker may call this for a given pool, and only inside a drain
  /// (or while globally quiescent, e.g. node_outputs replay).
  void* alloc(size_t worker, uint32_t bytes, Chunk** chunk_out);

  /// Opens a new epoch and stamps workers [0, workers_in_drain) into it.
  /// Quiescent-only; the matcher calls it immediately before dispatching a
  /// drain's workers.
  void begin_drain(size_t workers_in_drain);

  /// Frees every sealed chunk with pins == 0 sealed before the epoch all of
  /// the last drain's workers entered. Quiescent-only: runs after the
  /// drain's join (ParkingLot exit cascade → WorkerPool::run return).
  void reclaim_at_quiescence();

  [[nodiscard]] MatchStats stats() const;
  [[nodiscard]] std::vector<MatchStats> worker_stats() const;
  [[nodiscard]] uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// Sealed chunks currently awaiting reclamation (tests/diagnostics).
  [[nodiscard]] size_t sealed_pending() const;

 private:
  /// Cache-line padded so one worker's bump pointer and counters never share
  /// a line with another's.
  struct alignas(64) Pool {
    Chunk* current = nullptr;
    uint64_t entered_epoch = 0;  // epoch this worker last entered (begin_drain)
    uint64_t spill_allocs = 0;
    uint64_t spill_bytes = 0;
    uint64_t chunks_allocated = 0;
  };

  Chunk* new_chunk(size_t worker, uint32_t payload_bytes);
  void seal(Pool& p);

  uint32_t chunk_bytes_;
  std::vector<std::unique_ptr<Pool>> pools_;
  std::atomic<Chunk*> sealed_head_{nullptr};
  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> chunks_freed_{0};
  size_t last_drain_workers_ = 1;
};

}  // namespace psme
