// Interned symbol table.
//
// Every identifier, class name, attribute name and symbolic constant in the
// production system is interned once and referred to by a 32-bit index.
// Symbol comparison is therefore a single integer compare, which is what makes
// constant-test nodes and the join hash function cheap (PSM-E compiled these
// to immediate compares in machine code; an interned index is the portable
// equivalent).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psme {

/// An interned string. Value-semantic, 4 bytes, totally ordered by intern
/// index (NOT lexicographic order).
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(uint32_t raw) : raw_(raw) {}

  [[nodiscard]] constexpr uint32_t raw() const { return raw_; }
  [[nodiscard]] constexpr bool valid() const { return raw_ != kInvalid; }

  friend constexpr bool operator==(Symbol a, Symbol b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.raw_ < b.raw_; }

  static constexpr uint32_t kInvalid = 0xffffffffu;

 private:
  uint32_t raw_ = kInvalid;
};

/// Intern table. One per engine instance; not thread-safe for interning (all
/// interning happens at compile/parse time or between cycles, never inside the
/// parallel match), but lookup by Symbol is immutable-after-publish and safe.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Interns `s`, returning the existing Symbol if already present.
  Symbol intern(std::string_view s);

  /// Name of an interned symbol. `sym` must come from this table.
  [[nodiscard]] std::string_view name(Symbol sym) const;

  /// Returns the symbol for `s` if interned, otherwise an invalid Symbol.
  [[nodiscard]] Symbol find(std::string_view s) const;

  [[nodiscard]] size_t size() const { return names_.size(); }

  /// Generates a fresh symbol of the form `<prefix><n>` guaranteed not to
  /// collide with any existing symbol. Used for Soar identifiers (g0012,
  /// o0003, ...) and chunk names.
  Symbol gensym(std::string_view prefix);

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
  uint64_t gensym_counter_ = 0;
};

}  // namespace psme

template <>
struct std::hash<psme::Symbol> {
  size_t operator()(psme::Symbol s) const noexcept {
    // Fibonacci scramble: intern indices are small and dense.
    return static_cast<size_t>(s.raw()) * 0x9e3779b97f4a7c15ull;
  }
};
