#include "engine/rhs.h"

#include <sstream>
#include <stdexcept>

namespace psme {

Value RhsExecutor::eval(const RhsValue& v, const CompiledProduction& cp,
                        const Token& token, std::vector<Value>& locals) {
  switch (v.kind) {
    case RhsValue::Kind::Const:
      return v.constant;
    case RhsValue::Kind::Var: {
      if (!locals[v.var].is_nil()) return locals[v.var];
      const auto& site = cp.bindings[v.var];
      if (site.ce < 0) {
        throw std::runtime_error("RHS references unbound variable in '" +
                                 std::string(syms_.name(cp.ast->name)) + "'");
      }
      return token[static_cast<size_t>(site.ce)]->field(site.slot);
    }
    case RhsValue::Kind::Gensym: {
      const Symbol s = syms_.gensym(syms_.name(v.gensym_prefix));
      if (gensym_hook_) gensym_hook_(s);
      return Value(s);
    }
    case RhsValue::Kind::Compute: {
      const Value a = eval(*v.arith.lhs, cp, token, locals);
      const Value b = eval(*v.arith.rhs, cp, token, locals);
      if (!a.is_num() || !b.is_num()) {
        throw std::runtime_error("compute on non-numeric values");
      }
      const bool both_int =
          a.kind() == Value::Kind::Int && b.kind() == Value::Kind::Int;
      const double x = a.num();
      const double y = b.num();
      double r = 0;
      switch (v.arith.op) {
        case '+': r = x + y; break;
        case '-': r = x - y; break;
        case '*': r = x * y; break;
        case '/':
          if (y == 0) throw std::runtime_error("compute: division by zero");
          r = x / y;
          break;
        default: throw std::runtime_error("compute: bad operator");
      }
      if (both_int && v.arith.op != '/') {
        return Value(static_cast<int64_t>(r));
      }
      return Value(r);
    }
  }
  return Value();
}

void RhsExecutor::fire(const CompiledProduction& cp, const Token& token,
                       WmeDelta& delta) {
  const Production& p = *cp.ast;
  std::vector<Value>& locals = locals_;  // `bind` results, reused capacity
  locals.assign(p.num_vars, Value());
  for (const Action& a : p.actions) {
    switch (a.kind) {
      case Action::Kind::Make: {
        // Filled in place: the AddList slot's fields vector keeps its
        // capacity from previous cycles.
        WmeDelta::Add& add = delta.adds.push();
        add.cls = a.cls;
        add.fields.assign(static_cast<size_t>(schemas_.arity(a.cls)), Value());
        for (const RhsAssignment& asg : a.sets) {
          if (asg.slot >= static_cast<int>(add.fields.size())) {
            add.fields.resize(static_cast<size_t>(asg.slot) + 1);
          }
          add.fields[static_cast<size_t>(asg.slot)] =
              eval(asg.value, cp, token, locals);
        }
        break;
      }
      case Action::Kind::Modify: {
        const Wme* old = token[static_cast<size_t>(a.ce_index - 1)];
        WmeDelta::Add& add = delta.adds.push();
        add.cls = old->cls;
        add.fields = old->fields;
        for (const RhsAssignment& asg : a.sets) {
          if (asg.slot >= static_cast<int>(add.fields.size())) {
            add.fields.resize(static_cast<size_t>(asg.slot) + 1);
          }
          add.fields[static_cast<size_t>(asg.slot)] =
              eval(asg.value, cp, token, locals);
        }
        delta.removes.push_back(old);
        break;
      }
      case Action::Kind::Remove:
        delta.removes.push_back(token[static_cast<size_t>(a.ce_index - 1)]);
        break;
      case Action::Kind::Write: {
        std::ostringstream os;
        for (size_t i = 0; i < a.write_args.size(); ++i) {
          if (i) os << ' ';
          os << eval(a.write_args[i], cp, token, locals).to_string(syms_);
        }
        delta.writes.push_back(os.str());
        break;
      }
      case Action::Kind::Bind:
        locals[a.bind_var] = eval(a.bind_value, cp, token, locals);
        break;
      case Action::Kind::Halt:
        delta.halt = true;
        break;
    }
  }
}

}  // namespace psme
