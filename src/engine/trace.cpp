#include "engine/trace.h"

#include "obs/record.h"

namespace psme {

void CycleTrace::append(CycleTrace&& other) {
  const uint32_t base = static_cast<uint32_t>(tasks.size());
  for (TaskRecord& r : other.tasks) {
    if (r.parent != UINT32_MAX) r.parent += base;
    tasks.push_back(std::move(r));
  }
  for (auto& la : other.line_accesses) line_accesses.push_back(la);
}

void TraceExecutor::emit(Activation&& a) {
  queue_.push_back(QueuedTask{a, current_parent_});
}

CycleTrace TraceExecutor::run_to_quiescence(std::vector<Activation> seeds) {
  return run_to_quiescence_inplace(seeds);
}

CycleTrace TraceExecutor::run_to_quiescence_inplace(
    std::vector<Activation>& seeds) {
  trace_ = CycleTrace{};
  current_parent_ = UINT32_MAX;
  // Quiescent drain boundary: alpha state compiled since the last drain
  // (chunk additions) must exist before any task touches it.
  state->ensure_alpha(net_.alpha_mem_count());
  if (profiler_ != nullptr) {
    profiler_->ensure_nodes(net_.node_count());
    profiler_->ensure_agents(1 + agent);
  }
  for (auto& s : seeds) emit(std::move(s));
  while (!queue_.empty()) {
    const QueuedTask task = queue_.front();
    queue_.pop_front();
    if (!net_.should_execute(task.act, *this)) continue;
    ++executed_;
    uint32_t index = UINT32_MAX;
    if (record_) {
      index = static_cast<uint32_t>(trace_.tasks.size());
      TaskRecord r;
      r.parent = task.parent;
      r.node = task.act.node;
      r.type = net_.node(task.act.node)->type;
      r.side = task.act.side;
      r.add = task.act.add;
      trace_.tasks.push_back(std::move(r));
    }
    stats.reset();
    current_parent_ = index;
    const uint64_t t0 = tracer_ != nullptr ? tracer_->now_ns() : 0;
    uint64_t p0 = 0;
    bool timed = false;
    if (profiler_ != nullptr) {
      timed = profiler_->sample(0);
      if (timed) p0 = obs::profile_now_ns();
    }
    net_.execute(task.act, *this);
    if (profiler_ != nullptr) {
      profiler_->record(0, task.act.node, task.act.agent, timed,
                        timed ? obs::profile_now_ns() - p0 : 0, stats.emits);
    }
    if (tracer_ != nullptr) {
      obs::record_task(*tracer_, tracer_->ring(track_), t0, task.act, stats);
    }
    if (record_) trace_.tasks[index].stats = stats;
  }
  current_parent_ = UINT32_MAX;
  if (record_) {
    trace_.line_accesses = state->tables.harvest_cycle_accesses();
  } else {
    // No-trace cycles still reset the per-cycle counters, but without
    // building (and so allocating) the harvest vector.
    state->tables.reset_cycle_accesses();
  }
  return std::move(trace_);
}

}  // namespace psme
