#include "engine/trace.h"

namespace psme {

void CycleTrace::append(CycleTrace&& other) {
  const uint32_t base = static_cast<uint32_t>(tasks.size());
  for (TaskRecord& r : other.tasks) {
    if (r.parent != UINT32_MAX) r.parent += base;
    tasks.push_back(std::move(r));
  }
  for (auto& la : other.line_accesses) line_accesses.push_back(la);
}

void TraceExecutor::emit(Activation&& a) {
  queue_.emplace_back(std::move(a), current_parent_);
}

CycleTrace TraceExecutor::run_to_quiescence(std::vector<Activation> seeds) {
  trace_ = CycleTrace{};
  current_parent_ = UINT32_MAX;
  for (auto& s : seeds) emit(std::move(s));
  while (!queue_.empty()) {
    auto [act, parent] = std::move(queue_.front());
    queue_.pop_front();
    if (!net_.should_execute(act, *this)) continue;
    ++executed_;
    uint32_t index = UINT32_MAX;
    if (record_) {
      index = static_cast<uint32_t>(trace_.tasks.size());
      TaskRecord r;
      r.parent = parent;
      r.node = act.node;
      r.type = net_.node(act.node)->type;
      r.side = act.side;
      r.add = act.add;
      trace_.tasks.push_back(std::move(r));
    }
    stats.reset();
    current_parent_ = index;
    net_.execute(act, *this);
    if (record_) trace_.tasks[index].stats = stats;
  }
  current_parent_ = UINT32_MAX;
  trace_.line_accesses = net_.tables().harvest_cycle_accesses();
  return std::move(trace_);
}

}  // namespace psme
