#include "engine/agent_group.h"

#include <cstdio>

namespace psme {

AgentGroup::AgentGroup(AgentGroupOptions opts) : opts_(std::move(opts)) {
  if (opts_.workers == 0) opts_.workers = 1;
  cnet_ = std::make_shared<CompiledNetwork>(
      CompiledNetworkOptions{opts_.agent.builder});
  if (opts_.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(opts_.trace);
  }
  if (opts_.profile) {
    profiler_ =
        std::make_unique<obs::MatchProfiler>(opts_.profile_sample_shift);
  }
  // Agent-less matcher: sessions register as they are added. prewarm()
  // ensures worker tracks 1..W on the tracer; agent tracks follow.
  matcher_ = std::make_unique<ParallelMatcher>(
      cnet_->net(), opts_.workers, opts_.policy, tracer_.get(), opts_.steal,
      profiler_.get());
}

AgentGroup::~AgentGroup() {
  // Agents detach from cnet_ in their destructors; drop them before the
  // matcher that still holds their MatchState pointers.
  agents_.clear();
}

Engine& AgentGroup::add_agent() {
  EngineOptions eo = opts_.agent;
  // The group owns scheduling, tracing and profiling; per-agent knobs stay.
  eo.match_workers = 0;
  eo.trace.enabled = false;
  eo.profile = false;
  agents_.push_back(std::make_unique<Engine>(cnet_, eo, matcher_.get()));
  Engine& e = *agents_.back();
  if (tracer_ != nullptr) {
    // Track layout: 0 = coordinator, 1..W = workers, W+1..W+N = agents.
    const size_t track = 1 + opts_.workers + e.agent_id();
    tracer_->ensure_tracks(track + 1);
    e.set_trace_sink(tracer_.get(), track);
  }
  if (profiler_ != nullptr) {
    // Quiescent (no cycle in flight during add_agent): grow the agent cells
    // now so the next drain's ensure is a compare, and route the agent's
    // serial drains (private match(), §5.2 updates) into the shared shards.
    profiler_->ensure_agents(agents_.size());
    e.set_profiler(profiler_.get());
  }
  return e;
}

std::vector<const Production*> AgentGroup::load(std::string_view src) {
  if (!agents_.empty()) return agents_.front()->load(src);
  return cnet_->load(src);
}

ParallelStats AgentGroup::step_all() {
  ParallelStats total;
  obs::Span cycle_span(tracer_.get(), 0, obs::EventKind::MatchCycle);
  std::vector<Activation>& seeds = seed_scratch_;
  seeds.clear();
  // All agents' removals first (homogeneous batch; see run_cycle's seed
  // contract), then all agents' additions — the same two-drain split a
  // single agent's match() uses, shared N ways.
  bool any_adds = false;
  for (auto& a : agents_) {
    a->collect_seeds(false, seeds);
    any_adds |= !a->pending_adds_.empty();
  }
  if (!seeds.empty() || !any_adds) {
    obs::Span span(tracer_.get(), 0, obs::EventKind::DrainRemoves);
    total = matcher_->run_cycle_inplace(seeds);
    seeds.clear();
  }
  if (any_adds) {
    obs::Span span(tracer_.get(), 0, obs::EventKind::DrainAdds);
    for (auto& a : agents_) a->collect_seeds(true, seeds);
    total.accumulate(matcher_->run_cycle_inplace(seeds));
  }
  for (auto& a : agents_) {
    a->end_group_cycle();
    // Shared scheduler numbers, but each agent's own arena snapshot (the
    // matcher's snapshot covers only agent 0's arena).
    ParallelStats st = total;
    st.arena = a->state().arena.stats();
    a->last_parallel_stats_ = st;
  }
  return total;
}

void AgentGroup::collect_metrics(obs::MetricsRegistry& m) const {
  char prefix[32];
  for (size_t i = 0; i < agents_.size(); ++i) {
    obs::MetricsRegistry per_agent;
    agents_[i]->collect_metrics(per_agent);
    std::snprintf(prefix, sizeof prefix, "agent%zu.", i);
    for (const obs::Metric& metric : per_agent.metrics()) {
      const std::string name = prefix + metric.name;
      if (metric.kind == obs::MetricKind::Counter) {
        m.counter(name, metric.value);
      } else {
        m.gauge(name, metric.value);
      }
    }
  }
  m.gauge("group.agents", agents_.size());
  m.gauge("group.cow_publishes", cnet_->cow_publishes());
  if (tracer_ != nullptr) obs::collect(m, *tracer_);
  if (profiler_ != nullptr) obs::collect(m, *profiler_);
}

}  // namespace psme
