// The immutable-at-match-time half of the engine split: one CompiledNetwork
// holds everything that is a function of the production set alone — symbol
// table, class schemas, the Rete node graph and jumptable, the builder, the
// adopted ASTs and their compilation records — and N Agent sessions (Engine
// instances) share it read-only while matching. Everything a wme ever
// touches (hash-table lines, alpha-memory lists, token arenas, the conflict
// set) lives in each agent's MatchState instead (rete/match_state.h).
//
// Run-time production addition (the chunking path) is the one mutation the
// shared half sees after load. It is copy-on-write on the jumptable:
// compile_cow() clones the successor table, splices the new production into
// the clone, and publishes the clone at the caller's quiescent safe point —
// the same epoch boundary the token arenas reclaim at — so a learning agent
// never blocks matching peers on a half-spliced dispatch table. Builds with
// PSME_NET_VERIFY re-verify the whole network after every publish.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lang/ast.h"
#include "rete/add_production.h"
#include "rete/builder.h"
#include "rete/network.h"
#include "rete/remove_production.h"

namespace psme {

class Engine;

struct CompiledNetworkOptions {
  BuilderOptions builder;
};

class CompiledNetwork {
 public:
  explicit CompiledNetwork(CompiledNetworkOptions opts = {})
      : net_(syms_, schemas_), builder_(net_, opts.builder) {}
  CompiledNetwork(const CompiledNetwork&) = delete;
  CompiledNetwork& operator=(const CompiledNetwork&) = delete;

  SymbolTable& syms() { return syms_; }
  ClassSchemas& schemas() { return schemas_; }
  RhsArena& ast_arena() { return ast_arena_; }
  Network& net() { return net_; }
  [[nodiscard]] const Network& net() const { return net_; }
  Builder& builder() { return builder_; }

  /// Parses and compiles a source string (literalize forms + productions).
  /// Build-time path: no COW (no agent is matching yet by contract), no
  /// per-agent state update — callers with live working memories run the
  /// §5.2 update themselves (Engine::load does, for every attached agent).
  std::vector<const Production*> load(std::string_view src);

  /// Adopts a run-time AST (chunk) into the store without compiling it.
  const Production* adopt(Production&& ast) { return store_.adopt(std::move(ast)); }

  /// Run-time compile: splices `p` into a copy-on-write clone of the
  /// jumptable and publishes the clone (this call IS the safe point — the
  /// caller guarantees no match cycle is in flight, the same quiescent-only
  /// contract as the §5.2 update). Under PSME_NET_VERIFY the network is
  /// re-verified immediately after the swap.
  const AddRecord& compile_cow(const Production* p);

  /// Run-time removal, unsplice half: plans the dead-set (backward
  /// reachability from every surviving P-node — the victim's own compile
  /// record can't tell owned from shared, see rete/remove_production.h) and
  /// erases the dead nodes' successor entries under a COW edit. The publish
  /// inside this call is the safe point: the same quiescent-only contract as
  /// compile_cow, and the instant the production stops matching. The dead
  /// nodes themselves are still alive on return — every attached agent must
  /// drain its state for them before finish_removal frees them (the engine
  /// sequences this; see Engine::remove_production_runtime). Throws
  /// std::out_of_range for a production this network never compiled.
  /// `refs_unspliced`, when non-null, receives the erased entry count.
  RemovePlan unsplice_cow(const Production* p,
                          size_t* refs_unspliced = nullptr);

  /// Run-time removal, reclaim half: tombstones the dead nodes (their
  /// jumptable slots and alpha mem indexes return to the recycling pools),
  /// then drops the record, the production-list entry, and the adopted AST.
  /// Under PSME_NET_VERIFY the whole network is re-verified afterward —
  /// the verifier's stale-entry sweep, Resolution, and Ownership checks are
  /// the removal oracle.
  void finish_removal(const RemovePlan& plan, const Production* p);

  /// Productions removed at run time since load (diagnostics).
  [[nodiscard]] uint64_t removals() const { return removals_; }

  [[nodiscard]] const AddRecord& record(const Production* p) const;
  [[nodiscard]] const std::vector<const Production*>& productions() const {
    return productions_;
  }
  /// All records in load order (what verify_network and the linter consume).
  [[nodiscard]] std::vector<const AddRecord*> all_records() const;

  /// How many COW jumptable publishes have happened (0 = the successor
  /// table is still the build-time original). network_lint reports shared-
  /// node statistics as "from a COW snapshot" when this is non-zero.
  [[nodiscard]] uint64_t cow_publishes() const {
    return net_.jumptable().cow_publishes();
  }

  /// Registers a chunk signature; false when an identical chunk — learned
  /// by ANY attached agent — was already compiled into the shared network,
  /// so sessions don't install duplicate productions of each other's
  /// chunks. (The signature is the chunker's canonical text; see
  /// SoarKernel::flush_chunks.)
  bool note_chunk_signature(std::string sig) {
    return chunk_signatures_.insert(std::move(sig)).second;
  }

  /// Drops a chunk signature when its production is excised, so any agent
  /// can relearn an identical chunk later (SoarKernel::excise).
  bool forget_chunk_signature(const std::string& sig) {
    return chunk_signatures_.erase(sig) > 0;
  }

  /// Attached agent sessions. Engine registers itself at construction and
  /// deregisters at destruction; run-time production addition walks this
  /// list to bring every agent's memories up to date (§5.2) after the COW
  /// publish. Quiescent-only, like everything else on the compile side.
  void attach(Engine* e) { agents_.push_back(e); }
  void detach(Engine* e);
  [[nodiscard]] const std::vector<Engine*>& agents() const { return agents_; }

 private:
  const AddRecord& finish(const Production* p, CompiledProduction&& cp);
  /// PSME_NET_VERIFY hooks: abort with the full report on violation.
  void debug_verify_after_add(const Production* p) const;
  void debug_verify_after_remove(const std::string& name) const;

  SymbolTable syms_;
  ClassSchemas schemas_;
  RhsArena ast_arena_;  // parsed RHS expression storage; ASTs point into it
  Network net_;
  Builder builder_;
  ProductionStore store_;
  std::vector<const Production*> productions_;
  std::unordered_map<const Production*, AddRecord> records_;
  std::unordered_set<std::string> chunk_signatures_;  // network-wide dedup
  std::vector<Engine*> agents_;
  uint64_t removals_ = 0;
};

}  // namespace psme
