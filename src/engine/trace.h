// Serial executor and task-trace recorder.
//
// This is the reference executor: it drains node activations in FIFO order
// (like PSM-E's shared task queue, minus the other processes) and records,
// for every task, which task spawned it and how much raw work it did. That
// trace is the exact task DAG of the cycle; the virtual multiprocessor
// (src/psim) schedules it on P processors to produce the paper's speedup
// figures, and the threaded matcher's results are checked against this
// executor's for equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "base/ring.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "rete/hash_tables.h"
#include "rete/network.h"

namespace psme {

struct TaskRecord {
  uint32_t parent = UINT32_MAX;  // index of the spawning task; UINT32_MAX = seed
  uint32_t node = 0;
  NodeType type = NodeType::Const;
  Side side = Side::Left;
  bool add = true;
  TaskStats stats;
};

struct CycleTrace {
  std::vector<TaskRecord> tasks;
  std::vector<PairedHashTables::LineAccess> line_accesses;

  [[nodiscard]] size_t task_count() const { return tasks.size(); }

  /// Appends another trace's tasks (parents re-based); used to merge the
  /// update phases that may run concurrently.
  void append(CycleTrace&& other);
};

class TraceExecutor final : public ExecContext {
 public:
  TraceExecutor(Network& net, MatchState& ms, bool record_tasks = true)
      : net_(net), record_(record_tasks) {
    state = &ms;
  }

  void emit(Activation&& a) override;

  /// Drains `seeds` and everything they spawn; returns the recorded trace
  /// (empty task list when recording is off — task_count is still correct
  /// via executed()).
  CycleTrace run_to_quiescence(std::vector<Activation> seeds);

  /// In-place form: seeds are consumed but the vector's capacity stays with
  /// the caller. With recording off, a whole drain is heap-free once the
  /// ring and scratch buffers have reached their high-water capacity —
  /// Engine holds one TraceExecutor across all cycles for exactly this.
  CycleTrace run_to_quiescence_inplace(std::vector<Activation>& seeds);

  [[nodiscard]] uint64_t executed() const { return executed_; }

  /// Attaches an event ring (obs layer): every executed task additionally
  /// records a TaskExec span into `tracer`'s ring `track`. Orthogonal to
  /// the CycleTrace recording — task spans are fixed-size and drop on ring
  /// overflow, so they stay allocation-free where CycleTrace cannot.
  void set_tracer(obs::Tracer* tracer, size_t track) {
    tracer_ = tracer;
    track_ = static_cast<uint32_t>(track);
  }

  /// Attaches a match profiler (obs/profiler.h): every executed task is
  /// folded into shard 0 — the engine thread's shard, which a co-owned
  /// ParallelMatcher only writes while this executor is idle. Shards grow
  /// at the top of each drain, so profiled serial cycles stay heap-free at
  /// steady state like the traced ones.
  void set_profiler(obs::MatchProfiler* profiler) { profiler_ = profiler; }

 private:
  // std::pair is not trivially copyable in libstdc++ (its operator= is
  // user-provided), so the FIFO ring carries this explicit POD instead.
  struct QueuedTask {
    Activation act;
    uint32_t parent = UINT32_MAX;
  };
  static_assert(std::is_trivially_copyable_v<QueuedTask>);

  Network& net_;
  bool record_;
  obs::Tracer* tracer_ = nullptr;  // null = no task spans
  obs::MatchProfiler* profiler_ = nullptr;  // null = profiling off
  uint32_t track_ = 0;
  uint64_t executed_ = 0;
  uint32_t current_parent_ = UINT32_MAX;
  RingBuffer<QueuedTask> queue_;
  CycleTrace trace_;
};

}  // namespace psme
