// The production-system engine, post network/state split: an Engine is ONE
// AGENT SESSION — working memory, match state (hash tables, alpha lists,
// token arena), conflict set, RHS executor and pending wme queues — bound to
// a CompiledNetwork it either owns (classic single-agent embedding) or
// shares with sibling sessions (multi-agent serving; see
// engine/agent_group.h). It provides the match/select/fire loop (OPS5 mode)
// plus the primitives the Soar kernel drives (batched wme changes,
// match-to-quiescence, fire-all, run-time production addition with the §5.2
// state update for EVERY attached agent).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/compiled_network.h"
#include "engine/conflict_set.h"
#include "engine/rhs.h"
#include "engine/trace.h"
#include "engine/working_memory.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "par/parallel_match.h"
#include "rete/add_production.h"
#include "rete/builder.h"
#include "rete/match_state.h"
#include "rete/network.h"
#include "rete/update.h"

namespace psme {

namespace analysis {
struct VerifyReport;
}

struct EngineOptions {
  size_t hash_lines = 4096;
  BuilderOptions builder;  // ignored in attach mode (the network exists)
  bool record_traces = true;

  /// TokenArena spill-chunk size (bytes). Larger chunks amortize the mmap
  /// cost of deep token spills; smaller chunks waste less on quiet workers.
  /// bench_tokens sweeps this knob (see BENCH_tokens.json).
  uint32_t arena_chunk_bytes = TokenArena::kDefaultChunkBytes;

  /// >1 switches match() and the §5.2 runtime-add state update to the
  /// threaded ParallelMatcher with this many workers. The matcher (and its
  /// worker pool) is created once and persists across cycles. Parallel
  /// cycles record no per-task trace (CycleTrace comes back empty), so keep
  /// the serial default for psim trace collection. Ignored in attach mode
  /// (the shared matcher's worker count governs).
  size_t match_workers = 0;
  TaskQueueSet::Policy match_policy = TaskQueueSet::Policy::Steal;

  /// Steal-scheduler tuning: the idle path's sweep-backoff ladder
  /// (steal.backoff_*) and the dependent-chain split depth
  /// (steal.chain_split_depth; 0 = never split, 1 = split every link).
  /// Ignored by the locked policies. network_lint's cost table reports each
  /// production's chain depth against this split depth as the tuning hint.
  StealTuning steal;

  /// Tracing (src/obs). When enabled the engine owns a Tracer: track 0
  /// carries engine-level spans (match cycles, drain sub-phases, chunk
  /// compiles, the §5.2 update phases, serial task spans) and tracks 1..N
  /// the parallel workers' task/steal/park events. All rings are
  /// preallocated (at Engine construction and ParallelMatcher::prewarm),
  /// so tracing preserves the §10 zero-allocation guarantee. In attach mode
  /// the group's tracer (if any) carries the worker tracks; this one only
  /// carries the agent's own track-0 spans.
  obs::TraceOptions trace;

  /// Match profiling (obs/profiler.h). When enabled the engine owns a
  /// MatchProfiler wired into both executors (serial and parallel): every
  /// executed task is attributed to its (node, agent) cell in the executing
  /// worker's shard. Shards are preallocated/grown only at quiescent drain
  /// boundaries, so profiling preserves the §10 guarantee under all four
  /// policies (engine_alloc_test proves it). Read via profiler()/snapshot
  /// at quiescence; production attribution happens at reporting time
  /// (analysis/profile_report.h). In attach mode the group owns the shared
  /// profiler instead (AgentGroupOptions::profile) and this flag is ignored.
  bool profile = false;
  /// Power-of-two activation TIMING sampling: a worker times every
  /// 2^shift-th task it executes (0 = time all). Counts stay exact either
  /// way; reports scale time per cell. Shift 6 holds profiling overhead
  /// under the always-on budget for resident servers (EXPERIMENTS.md).
  uint32_t profile_sample_shift = 0;
};

class Engine {
 public:
  /// Classic single-agent form: creates and owns a private CompiledNetwork.
  explicit Engine(EngineOptions opts = {});

  /// Attach mode (multi-agent serving): joins `cnet` as a new agent session.
  /// When `shared_matcher` is non-null the session registers its MatchState
  /// with it and all parallel drains multiplex over that matcher's workers
  /// (opts.match_workers is ignored); its agent tag is stamped on every
  /// seed. The matcher and network must outlive the engine.
  Engine(std::shared_ptr<CompiledNetwork> cnet, EngineOptions opts,
         ParallelMatcher* shared_matcher = nullptr);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SymbolTable& syms() { return cnet_->syms(); }
  ClassSchemas& schemas() { return cnet_->schemas(); }
  Network& net() { return cnet_->net(); }
  WorkingMemory& wm() { return wm_; }
  ConflictSet& cs() { return cs_; }
  Builder& builder() { return cnet_->builder(); }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }

  /// This session's match state (per-agent half of the split).
  MatchState& state() { return state_; }
  [[nodiscard]] const MatchState& state() const { return state_; }
  /// The shared compile-side half. Never null.
  CompiledNetwork& network() { return *cnet_; }
  [[nodiscard]] std::shared_ptr<CompiledNetwork> shared_network() const {
    return cnet_;
  }
  /// This session's tag in the shared matcher (0 for a standalone engine).
  [[nodiscard]] uint32_t agent_id() const { return agent_; }

  /// Parses and compiles a source string (literalize forms + productions)
  /// into the shared network. Every attached agent with a non-empty working
  /// memory gets its memories updated via the §5.2 algorithm. Returns the
  /// adopted productions.
  std::vector<const Production*> load(std::string_view src);

  /// Compilation record of a loaded production.
  [[nodiscard]] const AddRecord& record(const Production* p) const {
    return cnet_->record(p);
  }
  [[nodiscard]] const std::vector<const Production*>& productions() const {
    return cnet_->productions();
  }

  /// Run-time addition (chunking path): compiles `ast` into the live network
  /// copy-on-write on the shared jumptable, then updates EVERY attached
  /// agent's memories from its own WM (§5.2) — this session first, so the
  /// returned traces are the learning agent's. Returns the traces of the
  /// update phases (`ab`: alpha+right fill, which may run concurrently;
  /// `c`: the last-shared-node replay, which must follow).
  struct RuntimeAddResult {
    const Production* prod = nullptr;
    CycleTrace ab, c;
    double compile_seconds = 0;
    size_t code_bytes = 0;
    uint64_t update_tasks = 0;  // summed over all attached agents
  };
  RuntimeAddResult add_production_runtime(Production&& ast);

  /// Run-time removal (the dual of add_production_runtime; the query
  /// subsystem's churn path and SoarKernel::excise both ride it). Sequence:
  /// plan the dead-set, unsplice it under a COW publish (the safe point —
  /// the production can never fire past it), drain EVERY attached agent's
  /// state for the dead nodes (beta entries with their token unpins, alpha
  /// wme lists, conflict-set instantiations), then free the nodes and drop
  /// the record/AST. Token memory itself is reclaimed by the existing epoch
  /// machinery: the unpins make the dead entries' chunks collectable at the
  /// next arena reclaim boundary. Quiescent-only, like addition; pending
  /// wme changes are allowed and stay pending (they never saw the victim).
  /// Throws std::out_of_range for a production this network never compiled.
  struct RuntimeRemoveResult {
    size_t nodes_removed = 0;    // victim-owned nodes freed (incl. P-node)
    size_t refs_unspliced = 0;   // jumptable successor entries erased
    size_t left_entries = 0;     // beta left entries drained, all agents
    size_t right_entries = 0;    // beta right entries drained, all agents
    size_t alpha_wmes = 0;       // alpha-memory wmes drained, all agents
    size_t instantiations = 0;   // CS instantiations dropped, all agents
  };
  RuntimeRemoveResult remove_production_runtime(const Production* p);

  /// Creates a wme now (visible in wm()) and queues its add for the next
  /// match(). The span form copies straight into a recycled wme (no
  /// temporary vector); the vector form delegates.
  const Wme* add_wme(Symbol cls, const Value* fields, size_t n);
  const Wme* add_wme(Symbol cls, const std::vector<Value>& fields) {
    return add_wme(cls, fields.data(), fields.size());
  }

  /// Convenience: parses a wme literal like "(block ^name b1 ^size 3)".
  const Wme* add_wme_text(std::string_view text);

  /// Removes `w` from WM now and queues its retraction for the next match().
  void remove_wme(const Wme* w);

  /// Injects all queued changes and runs the match to quiescence. One call
  /// is one "cycle" in the paper's corrected regime: all wme changes of the
  /// cycle are complete before matching starts.
  CycleTrace match();

  /// AgentGroup batching half of match(): injects this agent's pending
  /// removes (adds=false) or adds (adds=true) as agent-tagged seeds into
  /// `out` without clearing the queues, so N agents' cycles share one
  /// threaded drain. Pair with end_group_cycle() after both drains.
  void collect_seeds(bool adds, std::vector<Activation>& out);
  /// AgentGroup batching: clears the pending queues and closes the wme
  /// cycle (what match() does after its drains).
  void end_group_cycle();

  /// Fires one instantiation: evaluates its RHS, applies the delta (queues
  /// wme changes), marks it fired. With `remove_after_fire` the
  /// instantiation leaves the CS (OPS5). Returns true if a halt executed.
  bool fire(const Instantiation* inst, bool remove_after_fire,
            bool dedup_adds);

  /// Evaluates an instantiation's RHS without applying anything (the Soar
  /// kernel applies the delta itself to record provenance and levels).
  WmeDelta evaluate(const Instantiation* inst);

  /// See RhsExecutor::set_gensym_hook.
  void set_gensym_hook(std::function<void(Symbol)> fn) {
    rhs_.set_gensym_hook(std::move(fn));
  }

  /// OPS5 top level: match, select (LEX), fire, repeat.
  struct RunResult {
    uint64_t cycles = 0;
    bool halted = false;
  };
  RunResult run(uint64_t max_cycles);

  /// Everything `write` actions printed, in firing order.
  [[nodiscard]] const std::vector<std::string>& output() const {
    return output_;
  }

  [[nodiscard]] bool has_pending_changes() const {
    return !pending_adds_.empty() || !pending_removes_.empty();
  }

  /// True when match() drains on a threaded matcher (own or shared).
  [[nodiscard]] bool parallel() const {
    return external_matcher_ != nullptr || opts_.match_workers > 1;
  }

  /// The persistent parallel matcher: the shared one in attach mode, else
  /// the privately owned one (created on first parallel match()); nullptr
  /// while serial or before the first cycle.
  [[nodiscard]] ParallelMatcher* parallel_matcher() const {
    return external_matcher_ != nullptr ? external_matcher_ : matcher_.get();
  }
  /// Scheduler statistics of the most recent parallel cycle this session
  /// ran (in a group, step_all's aggregate lands on every participant).
  [[nodiscard]] const ParallelStats& last_parallel_stats() const {
    return last_parallel_stats_;
  }

  /// Null unless options().trace.enabled. Read rings only at quiescence.
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_.get(); }

  /// The active match profiler: the engine's own when options().profile,
  /// else whatever set_profiler attached (AgentGroup's shared one); null
  /// when profiling is off. Snapshot/reset only at quiescence.
  [[nodiscard]] obs::MatchProfiler* profiler() const {
    return external_profiler_ != nullptr ? external_profiler_
                                         : profiler_.get();
  }

  /// Routes this session's serial task profiling into `p` instead of an
  /// owned profiler (AgentGroup shares one across agents and workers).
  /// Quiescent-only; the profiler must outlive the engine. Null restores
  /// the own-profiler default.
  void set_profiler(obs::MatchProfiler* p) {
    external_profiler_ = p;
    serial_exec_.set_profiler(profiler());
  }

  /// Routes this session's engine-level spans (match cycles, §5.2 update
  /// phases, chunk compiles, serial task spans) into `t`'s ring `track`
  /// instead of the engine's own tracer — AgentGroup gives every agent its
  /// own track on the shared tracer (tracks W+1..W+A, after the workers').
  /// Quiescent-only. Null restores the own-tracer default.
  void set_trace_sink(obs::Tracer* t, size_t track);

  /// Dumps the engine's current stats — last parallel cycle ("par.*"),
  /// token arena ("arena.*"), tracer accounting ("obs.*") — into `m`.
  /// Reporting-time only: allocates, never call from the match hot path.
  void collect_metrics(obs::MetricsRegistry& m) const;

  /// Runs the static network verifier (src/analysis/verify.h) over the live
  /// network, this agent's match state, and all production records.
  /// Quiescent-only, like the §5.2 update. Builds with PSME_NET_VERIFY call
  /// it automatically after every add_production (and after every COW
  /// jumptable publish) and abort on violation; callers (tests,
  /// network_lint) may call it in any build type.
  [[nodiscard]] analysis::VerifyReport verify_network() const;

  /// The records of all loaded productions, in load order (the shape
  /// verify_network and the cost linter consume).
  [[nodiscard]] std::vector<const AddRecord*> all_records() const {
    return cnet_->all_records();
  }

 private:
  friend class AgentGroup;

  void apply_delta(const WmeDelta& delta, bool dedup_adds);
  ParallelMatcher& matcher();
  /// One agent's §5.2 state update after a runtime add. Returns executed
  /// task count; fills `res` (traces) when non-null (the learning agent).
  uint64_t apply_runtime_update(const CompiledProduction& cp,
                                RuntimeAddResult* res);
  /// PSME_NET_VERIFY hooks: abort with the full report on violation.
  void debug_verify_after_add(const Production* p) const;
  void debug_verify_after_remove(const std::string& name) const;

  EngineOptions opts_;
  std::shared_ptr<CompiledNetwork> cnet_;  // owned or shared; never null
  MatchState state_;  // the per-agent half: tables, alpha lists, arena, sink
  WorkingMemory wm_;
  ConflictSet cs_;
  RhsExecutor rhs_;
  std::vector<const Wme*> pending_adds_;
  std::vector<const Wme*> pending_removes_;
  std::vector<std::string> output_;
  ParallelMatcher* external_matcher_ = nullptr;  // attach mode (group-owned)
  std::unique_ptr<ParallelMatcher> matcher_;     // standalone, persistent
  ParallelStats last_parallel_stats_;
  std::unique_ptr<obs::Tracer> tracer_;  // created at ctor when trace.enabled
  obs::Tracer* trace_sink_ = nullptr;  // own tracer, or the group's
  uint32_t trace_track_ = 0;           // this agent's track in trace_sink_
  std::unique_ptr<obs::MatchProfiler> profiler_;  // created when opts.profile
  obs::MatchProfiler* external_profiler_ = nullptr;  // group-owned (attach)
  // Steady-state scratch, alive for the Engine's lifetime so repeated
  // cycles reuse high-water capacity (DESIGN.md §10): the serial executor
  // (ring + trace state), the per-cycle seed vector, and the fire delta.
  TraceExecutor serial_exec_;
  std::vector<Activation> seed_scratch_;
  WmeDelta fire_delta_;
  UpdateScratch update_scratch_;  // load()'s §5.2 drains, capacity reused
  uint32_t agent_ = 0;  // tag in the shared matcher (attach mode)
};

}  // namespace psme
