// The production-system engine: owns the symbol table, schemas, working
// memory, network, conflict set and production store, and provides the
// match/select/fire loop (OPS5 mode) plus the primitives the Soar kernel
// drives (batched wme changes, match-to-quiescence, fire-all, run-time
// production addition with the §5.2 state update).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/conflict_set.h"
#include "engine/rhs.h"
#include "engine/trace.h"
#include "engine/working_memory.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "par/parallel_match.h"
#include "rete/add_production.h"
#include "rete/builder.h"
#include "rete/network.h"
#include "rete/update.h"

namespace psme {

namespace analysis {
struct VerifyReport;
}

struct EngineOptions {
  size_t hash_lines = 4096;
  BuilderOptions builder;
  bool record_traces = true;

  /// TokenArena spill-chunk size (bytes). Larger chunks amortize the mmap
  /// cost of deep token spills; smaller chunks waste less on quiet workers.
  /// bench_tokens sweeps this knob (see BENCH_tokens.json).
  uint32_t arena_chunk_bytes = TokenArena::kDefaultChunkBytes;

  /// >1 switches match() and the §5.2 runtime-add state update to the
  /// threaded ParallelMatcher with this many workers. The matcher (and its
  /// worker pool) is created once and persists across cycles. Parallel
  /// cycles record no per-task trace (CycleTrace comes back empty), so keep
  /// the serial default for psim trace collection.
  size_t match_workers = 0;
  TaskQueueSet::Policy match_policy = TaskQueueSet::Policy::Steal;

  /// Steal-scheduler tuning: the idle path's sweep-backoff ladder
  /// (steal.backoff_*) and the dependent-chain split depth
  /// (steal.chain_split_depth; 0 = never split, 1 = split every link).
  /// Ignored by the locked policies. network_lint's cost table reports each
  /// production's chain depth against this split depth as the tuning hint.
  StealTuning steal;

  /// Tracing (src/obs). When enabled the engine owns a Tracer: track 0
  /// carries engine-level spans (match cycles, drain sub-phases, chunk
  /// compiles, the §5.2 update phases, serial task spans) and tracks 1..N
  /// the parallel workers' task/steal/park events. All rings are
  /// preallocated (at Engine construction and ParallelMatcher::prewarm),
  /// so tracing preserves the §10 zero-allocation guarantee.
  obs::TraceOptions trace;
};

class Engine {
 public:
  explicit Engine(EngineOptions opts = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SymbolTable& syms() { return syms_; }
  ClassSchemas& schemas() { return schemas_; }
  Network& net() { return net_; }
  WorkingMemory& wm() { return wm_; }
  ConflictSet& cs() { return cs_; }
  Builder& builder() { return builder_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }

  /// Parses and compiles a source string (literalize forms + productions).
  /// If working memory is non-empty, each production's memories are updated
  /// via the §5.2 algorithm. Returns the adopted productions.
  std::vector<const Production*> load(std::string_view src);

  /// Compilation record of a loaded production.
  [[nodiscard]] const AddRecord& record(const Production* p) const;
  [[nodiscard]] const std::vector<const Production*>& productions() const {
    return productions_;
  }

  /// Run-time addition (chunking path): compiles `ast` into the live network
  /// and updates its memories from current WM. Returns the traces of the
  /// update phases (`ab`: alpha+right fill, which may run concurrently;
  /// `c`: the last-shared-node replay, which must follow).
  struct RuntimeAddResult {
    const Production* prod = nullptr;
    CycleTrace ab, c;
    double compile_seconds = 0;
    size_t code_bytes = 0;
    uint64_t update_tasks = 0;
  };
  RuntimeAddResult add_production_runtime(Production&& ast);

  /// Creates a wme now (visible in wm()) and queues its add for the next
  /// match(). The span form copies straight into a recycled wme (no
  /// temporary vector); the vector form delegates.
  const Wme* add_wme(Symbol cls, const Value* fields, size_t n);
  const Wme* add_wme(Symbol cls, const std::vector<Value>& fields) {
    return add_wme(cls, fields.data(), fields.size());
  }

  /// Convenience: parses a wme literal like "(block ^name b1 ^size 3)".
  const Wme* add_wme_text(std::string_view text);

  /// Removes `w` from WM now and queues its retraction for the next match().
  void remove_wme(const Wme* w);

  /// Injects all queued changes and runs the match to quiescence. One call
  /// is one "cycle" in the paper's corrected regime: all wme changes of the
  /// cycle are complete before matching starts.
  CycleTrace match();

  /// Fires one instantiation: evaluates its RHS, applies the delta (queues
  /// wme changes), marks it fired. With `remove_after_fire` the
  /// instantiation leaves the CS (OPS5). Returns true if a halt executed.
  bool fire(const Instantiation* inst, bool remove_after_fire,
            bool dedup_adds);

  /// Evaluates an instantiation's RHS without applying anything (the Soar
  /// kernel applies the delta itself to record provenance and levels).
  WmeDelta evaluate(const Instantiation* inst);

  /// See RhsExecutor::set_gensym_hook.
  void set_gensym_hook(std::function<void(Symbol)> fn) {
    rhs_.set_gensym_hook(std::move(fn));
  }

  /// OPS5 top level: match, select (LEX), fire, repeat.
  struct RunResult {
    uint64_t cycles = 0;
    bool halted = false;
  };
  RunResult run(uint64_t max_cycles);

  /// Everything `write` actions printed, in firing order.
  [[nodiscard]] const std::vector<std::string>& output() const {
    return output_;
  }

  [[nodiscard]] bool has_pending_changes() const {
    return !pending_adds_.empty() || !pending_removes_.empty();
  }

  /// The persistent parallel matcher, created on first parallel match();
  /// nullptr while serial (match_workers <= 1) or before the first cycle.
  [[nodiscard]] ParallelMatcher* parallel_matcher() const {
    return matcher_.get();
  }
  /// Scheduler statistics of the most recent parallel cycle.
  [[nodiscard]] const ParallelStats& last_parallel_stats() const {
    return last_parallel_stats_;
  }

  /// Null unless options().trace.enabled. Read rings only at quiescence.
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_.get(); }

  /// Dumps the engine's current stats — last parallel cycle ("par.*"),
  /// token arena ("arena.*"), tracer accounting ("obs.*") — into `m`.
  /// Reporting-time only: allocates, never call from the match hot path.
  void collect_metrics(obs::MetricsRegistry& m) const;

  /// Runs the static network verifier (src/analysis/verify.h) over the live
  /// network with all production records. Quiescent-only, like the §5.2
  /// update. Builds with PSME_NET_VERIFY call this automatically after every
  /// add_production and abort on violation; callers (tests, network_lint)
  /// may call it in any build type.
  [[nodiscard]] analysis::VerifyReport verify_network() const;

  /// The records of all loaded productions, in load order (the shape
  /// verify_network and the cost linter consume).
  [[nodiscard]] std::vector<const AddRecord*> all_records() const;

 private:
  void apply_delta(const WmeDelta& delta, bool dedup_adds);
  ParallelMatcher& matcher();
  /// PSME_NET_VERIFY hook: abort with the full report on violation.
  void debug_verify_after_add(const Production* p) const;

  EngineOptions opts_;
  SymbolTable syms_;
  ClassSchemas schemas_;
  RhsArena arena_;
  Network net_;
  Builder builder_;
  WorkingMemory wm_;
  ConflictSet cs_;
  RhsExecutor rhs_;
  ProductionStore store_;
  std::vector<const Production*> productions_;
  std::unordered_map<const Production*, AddRecord> records_;
  std::vector<const Wme*> pending_adds_;
  std::vector<const Wme*> pending_removes_;
  std::vector<std::string> output_;
  std::unique_ptr<ParallelMatcher> matcher_;  // persistent across cycles
  ParallelStats last_parallel_stats_;
  std::unique_ptr<obs::Tracer> tracer_;  // created at ctor when trace.enabled
  // Steady-state scratch, alive for the Engine's lifetime so repeated
  // cycles reuse high-water capacity (DESIGN.md §10): the serial executor
  // (ring + trace state), the per-cycle seed vector, and the fire delta.
  TraceExecutor serial_exec_;
  std::vector<Activation> seed_scratch_;
  WmeDelta fire_delta_;
  UpdateScratch update_scratch_;  // load()'s §5.2 drains, capacity reused
};

}  // namespace psme
