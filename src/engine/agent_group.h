// Multi-agent serving: N independent Agent sessions (Engines) multiplexed
// over ONE CompiledNetwork and ONE persistent WorkerPool. Each agent keeps
// its own WorkingMemory, MatchState and ConflictSet; every task carries its
// agent tag, so one agent's drain can neither observe nor stall another's.
//
// The group's one scheduling lever is step_all(): it batches every agent's
// pending wme changes into two shared drains (all agents' removals, then
// all agents' additions — the homogeneity rule holds per agent and so
// trivially across agents), amortizing the fork-join dispatch and park
// traffic of the pool across N sessions instead of paying it N times. That
// amortization is where the aggregate-throughput win of bench_multiagent
// comes from; agents remain free to call Engine::match() individually when
// they need a private cycle.
//
// Runtime chunk addition from any agent is copy-on-write on the shared
// jumptable (CompiledNetwork::compile_cow) followed by a §5.2 state update
// per attached agent — a learning agent never blocks matching peers.
//
// Observability: collect_metrics() namespaces every agent's counters as
// "agentN.*"; with tracing enabled the shared tracer lays tracks out as
// 0 = coordinator, 1..W = workers, W+1..W+N = agents.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "engine/engine.h"

namespace psme {

struct AgentGroupOptions {
  /// Worker threads of the shared matcher (>=1; the calling thread is
  /// worker 0, exactly as in a standalone parallel Engine).
  size_t workers = 4;
  TaskQueueSet::Policy policy = TaskQueueSet::Policy::Steal;
  StealTuning steal;
  /// Per-agent engine options. match_workers/match_policy/steal/trace are
  /// overridden by the group (shared matcher, shared tracer); hash_lines,
  /// arena_chunk_bytes, record_traces and builder apply per agent.
  EngineOptions agent;
  /// Shared tracer (one ring per worker + one per agent). Disabled default.
  obs::TraceOptions trace;
  /// Shared match profiler (obs/profiler.h): one shard per worker, agent
  /// cells tagged per session, so per-agent attribution survives the batched
  /// drains. Per-agent EngineOptions::profile is overridden off — a private
  /// profiler can't observe the shared workers.
  bool profile = false;
  uint32_t profile_sample_shift = 0;
};

class AgentGroup {
 public:
  explicit AgentGroup(AgentGroupOptions opts = {});
  ~AgentGroup();
  AgentGroup(const AgentGroup&) = delete;
  AgentGroup& operator=(const AgentGroup&) = delete;

  /// Creates a new agent session over the shared network. Quiescent-only.
  /// The returned Engine is group-owned and valid for the group's lifetime;
  /// its agent_id() is its tag in the shared matcher and its index here.
  Engine& add_agent();

  [[nodiscard]] size_t agent_count() const { return agents_.size(); }
  Engine& agent(size_t i) { return *agents_[i]; }
  [[nodiscard]] const Engine& agent(size_t i) const { return *agents_[i]; }

  CompiledNetwork& network() { return *cnet_; }
  ParallelMatcher& matcher() { return *matcher_; }
  /// Null unless options().trace.enabled.
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_.get(); }
  /// Null unless options().profile. Snapshot/reset only between step_all
  /// calls (quiescence); agent cells are indexed by agent_id().
  [[nodiscard]] obs::MatchProfiler* profiler() const {
    return profiler_.get();
  }
  [[nodiscard]] const AgentGroupOptions& options() const { return opts_; }

  /// Loads productions into the shared network (visible to every agent; any
  /// agent with live wmes gets the §5.2 memory update).
  std::vector<const Production*> load(std::string_view src);

  /// One batched group cycle: drains every agent's pending removals in one
  /// shared cycle, then every agent's pending additions in another. Each
  /// agent ends exactly as if it had run Engine::match() alone (same final
  /// state; the drains just share workers). Returns the accumulated
  /// scheduler stats of both drains (also stored on every participant as
  /// last_parallel_stats()).
  ParallelStats step_all();

  /// Every agent's metrics under "agentN.*" plus the group's own
  /// ("group.agents", "group.cow_publishes", shared-tracer "obs.*").
  void collect_metrics(obs::MetricsRegistry& m) const;

 private:
  AgentGroupOptions opts_;
  std::shared_ptr<CompiledNetwork> cnet_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MatchProfiler> profiler_;
  std::unique_ptr<ParallelMatcher> matcher_;
  std::vector<std::unique_ptr<Engine>> agents_;
  std::vector<Activation> seed_scratch_;  // batched seeds, capacity reused
};

}  // namespace psme
