#include "engine/compiled_network.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "analysis/verify.h"
#include "lang/parser.h"

namespace psme {

std::vector<const Production*> CompiledNetwork::load(std::string_view src) {
  Parser parser(syms_, schemas_, ast_arena_);
  auto parsed = parser.parse_file(src);
  std::vector<const Production*> out;
  out.reserve(parsed.size());
  for (Production& p : parsed) {
    const Production* adopted = store_.adopt(std::move(p));
    finish(adopted, builder_.add_production(*adopted));
    out.push_back(adopted);
  }
  return out;
}

const AddRecord& CompiledNetwork::compile_cow(const Production* p) {
  Jumptable& jt = net_.jumptable();
  jt.begin_cow();
  CompiledProduction cp = builder_.add_production(*p);
  // The caller is at a match-quiescent safe point (the same epoch boundary
  // the token arenas reclaim at), so the swap is unobserved by any in-
  // flight succs() walk; the retired table is still held one publish for
  // any reader the contract failed to cover to crash loudly on, not to
  // race.
  jt.publish_cow();
  return finish(p, std::move(cp));
}

const AddRecord& CompiledNetwork::finish(const Production* p,
                                         CompiledProduction&& cp) {
  auto [it, inserted] = records_.emplace(p, AddRecord{p, std::move(cp)});
  if (!inserted) {
    throw std::logic_error("CompiledNetwork: production compiled twice");
  }
  productions_.push_back(p);
#if PSME_NET_VERIFY
  debug_verify_after_add(p);
#endif
  return it->second;
}

void CompiledNetwork::debug_verify_after_add(const Production* p) const {
  // Structure-only pass (no MatchState): every attached agent's state is
  // additionally checked by Engine's own PSME_NET_VERIFY hook.
  const analysis::VerifyReport rep = analysis::verify_network(net_, all_records());
  if (rep.ok()) return;
  std::fprintf(stderr,
               "PSME_NET_VERIFY: invariant violation after adding '%s'\n%s",
               std::string(syms_.name(p->name)).c_str(),
               rep.to_string().c_str());
  std::abort();
}

RemovePlan CompiledNetwork::unsplice_cow(const Production* p,
                                         size_t* refs_unspliced) {
  const AddRecord& rec = record(p);  // throws for an unknown production
  RemovePlan plan = plan_removal(net_, rec.compiled.pnode);
  Jumptable& jt = net_.jumptable();
  jt.begin_cow();
  const size_t erased = jt.erase_refs(plan.dead_mask);
  // Same safe-point contract as compile_cow: the caller is match-quiescent,
  // so no succs() walk observes the swap. From this publish on, the victim
  // can never fire again — its P-node is unreachable from every root.
  jt.publish_cow();
  if (refs_unspliced != nullptr) *refs_unspliced = erased;
  return plan;
}

void CompiledNetwork::finish_removal(const RemovePlan& plan,
                                     const Production* p) {
#if PSME_NET_VERIFY
  // The AST dies below; keep the name for the verifier's diagnostics.
  const std::string name(syms_.name(p->name));
#endif
  for (uint32_t id : plan.dead_nodes) net_.free_node(id);
  records_.erase(p);
  productions_.erase(
      std::remove(productions_.begin(), productions_.end(), p),
      productions_.end());
  store_.release(p);
  ++removals_;
#if PSME_NET_VERIFY
  debug_verify_after_remove(name);
#endif
}

void CompiledNetwork::debug_verify_after_remove(const std::string& name) const {
  const analysis::VerifyReport rep =
      analysis::verify_network(net_, all_records());
  if (rep.ok()) return;
  std::fprintf(stderr,
               "PSME_NET_VERIFY: invariant violation after removing '%s'\n%s",
               name.c_str(), rep.to_string().c_str());
  std::abort();
}

const AddRecord& CompiledNetwork::record(const Production* p) const {
  auto it = records_.find(p);
  if (it == records_.end()) {
    throw std::out_of_range("CompiledNetwork::record: unknown production");
  }
  return it->second;
}

std::vector<const AddRecord*> CompiledNetwork::all_records() const {
  std::vector<const AddRecord*> recs;
  recs.reserve(productions_.size());
  for (const Production* p : productions_) {
    auto it = records_.find(p);
    if (it != records_.end()) recs.push_back(&it->second);
  }
  return recs;
}

void CompiledNetwork::detach(Engine* e) {
  agents_.erase(std::remove(agents_.begin(), agents_.end(), e), agents_.end());
}

}  // namespace psme
