#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "analysis/verify.h"

namespace psme {
namespace {

class CollectCtx final : public ExecContext {
 public:
  explicit CollectCtx(std::vector<Activation>& out) : out_(out) {}
  void emit(Activation&& a) override { out_.push_back(std::move(a)); }

 private:
  std::vector<Activation>& out_;
};

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(opts),
      net_(syms_, schemas_, opts.hash_lines, opts.arena_chunk_bytes),
      builder_(net_, opts.builder),
      rhs_(syms_, schemas_),
      serial_exec_(net_, opts.record_traces) {
  net_.set_sink(&cs_);
  if (opts_.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(opts_.trace);
    serial_exec_.set_tracer(tracer_.get(), 0);
  }
}

std::vector<const Production*> Engine::load(std::string_view src) {
  Parser parser(syms_, schemas_, arena_);
  auto parsed = parser.parse_file(src);
  std::vector<const Production*> out;
  const auto wm_snapshot = wm_.live();
  for (Production& p : parsed) {
    const Production* adopted = store_.adopt(std::move(p));
    CompiledProduction cp = builder_.add_production(*adopted);
    if (!wm_snapshot.empty()) {
      run_update_serial(net_, cp, wm_snapshot, update_scratch_, tracer_.get());
    }
    records_.emplace(adopted, AddRecord{adopted, std::move(cp)});
    productions_.push_back(adopted);
    out.push_back(adopted);
#if PSME_NET_VERIFY
    debug_verify_after_add(adopted);
#endif
  }
  return out;
}

std::vector<const AddRecord*> Engine::all_records() const {
  std::vector<const AddRecord*> recs;
  recs.reserve(productions_.size());
  for (const Production* p : productions_) {
    auto it = records_.find(p);
    if (it != records_.end()) recs.push_back(&it->second);
  }
  return recs;
}

analysis::VerifyReport Engine::verify_network() const {
  return analysis::verify_network(net_, all_records());
}

void Engine::debug_verify_after_add(const Production* p) const {
  const analysis::VerifyReport rep = verify_network();
  if (rep.ok()) return;
  std::fprintf(stderr,
               "PSME_NET_VERIFY: invariant violation after adding '%s'\n%s",
               std::string(syms_.name(p->name)).c_str(),
               rep.to_string().c_str());
  std::abort();
}

const AddRecord& Engine::record(const Production* p) const {
  auto it = records_.find(p);
  if (it == records_.end()) {
    throw std::out_of_range("Engine::record: unknown production");
  }
  return it->second;
}

ParallelMatcher& Engine::matcher() {
  if (!matcher_) {
    matcher_ = std::make_unique<ParallelMatcher>(
        net_, opts_.match_workers, opts_.match_policy, tracer_.get(),
        opts_.steal);
  }
  return *matcher_;
}

Engine::RuntimeAddResult Engine::add_production_runtime(Production&& ast) {
  RuntimeAddResult res;
  const Production* p = store_.adopt(std::move(ast));
  obs::Span compile_span(tracer_.get(), 0, obs::EventKind::ChunkCompile);
  CompiledProduction cp = builder_.add_production(*p);
  compile_span.set_node(cp.first_new_id);
  compile_span.end();
  res.prod = p;
  res.compile_seconds = cp.compile_seconds;
  res.code_bytes = cp.code_bytes();
  const auto wm_snapshot = wm_.live();

  if (opts_.match_workers > 1) {
    // The §5.2 state update with full match parallelism (Figure 6-9's
    // regime): phases A and B under the task filter, then the
    // last-shared-node replay once both have drained.
    ParallelMatcher& m = matcher();
    {
      obs::Span span(tracer_.get(), 0, obs::EventKind::UpdateA,
                     cp.first_new_id);
      const ParallelStats st = m.run_update(
          update_alpha_seeds(net_, cp, wm_snapshot), {cp.first_new_id, true});
      res.update_tasks += st.tasks;
    }
    {
      obs::Span span(tracer_.get(), 0, obs::EventKind::UpdateB,
                     cp.first_new_id);
      const ParallelStats st =
          m.run_update(update_right_seeds(net_, cp), {cp.first_new_id, false});
      res.update_tasks += st.tasks;
    }
    {
      obs::Span span(tracer_.get(), 0, obs::EventKind::UpdateC,
                     cp.first_new_id);
      const ParallelStats st =
          m.run_update(update_left_seeds(net_, cp), {cp.first_new_id, false});
      res.update_tasks += st.tasks;
    }
  } else {
    TraceExecutor ex(net_, opts_.record_traces);
    ex.set_tracer(tracer_.get(), 0);
    ex.update_mode = true;
    ex.min_node_id = cp.first_new_id;

    ex.suppress_alpha_left = true;
    {
      obs::Span span(tracer_.get(), 0, obs::EventKind::UpdateA,
                     cp.first_new_id);
      res.ab = ex.run_to_quiescence(update_alpha_seeds(net_, cp, wm_snapshot));
    }
    ex.suppress_alpha_left = false;
    {
      obs::Span span(tracer_.get(), 0, obs::EventKind::UpdateB,
                     cp.first_new_id);
      res.ab.append(ex.run_to_quiescence(update_right_seeds(net_, cp)));
    }
    {
      obs::Span span(tracer_.get(), 0, obs::EventKind::UpdateC,
                     cp.first_new_id);
      res.c = ex.run_to_quiescence(update_left_seeds(net_, cp));
    }
    res.update_tasks = ex.executed();
  }

  records_.emplace(p, AddRecord{p, std::move(cp)});
  productions_.push_back(p);
#if PSME_NET_VERIFY
  debug_verify_after_add(p);
#endif
  return res;
}

const Wme* Engine::add_wme(Symbol cls, const Value* fields, size_t n) {
  const Wme* w = wm_.add(cls, fields, n);
  pending_adds_.push_back(w);
  return w;
}

const Wme* Engine::add_wme_text(std::string_view text) {
  const auto toks = lex(text);
  size_t i = 0;
  auto expect = [&](Tok k, const char* what) {
    if (toks[i].kind != k) {
      throw ParseError(std::string("wme literal: expected ") + what,
                       toks[i].line);
    }
    return toks[i++];
  };
  expect(Tok::LParen, "'('");
  const LexToken cls_tok = expect(Tok::Sym, "class name");
  const Symbol cls = syms_.intern(cls_tok.text);
  std::vector<Value> fields(static_cast<size_t>(schemas_.arity(cls)));
  while (toks[i].kind == Tok::Hat) {
    const Symbol attr = syms_.intern(toks[i++].text);
    const int slot = schemas_.slot(cls, attr);
    if (slot >= static_cast<int>(fields.size())) {
      fields.resize(static_cast<size_t>(slot) + 1);
    }
    Value v;
    switch (toks[i].kind) {
      case Tok::Sym: v = Value(syms_.intern(toks[i].text)); break;
      case Tok::Int: v = Value(toks[i].int_val); break;
      case Tok::Float: v = Value(toks[i].float_val); break;
      default:
        throw ParseError("wme literal: expected constant value", toks[i].line);
    }
    ++i;
    fields[static_cast<size_t>(slot)] = v;
  }
  expect(Tok::RParen, "')'");
  return add_wme(cls, std::move(fields));
}

void Engine::remove_wme(const Wme* w) {
  if (!wm_.remove(w)) return;
  // A wme added and removed within the same batch never reaches the network:
  // cancel the pending add instead of queuing a retraction that would be
  // injected before the add.
  auto it = std::find(pending_adds_.begin(), pending_adds_.end(), w);
  if (it != pending_adds_.end()) {
    pending_adds_.erase(it);
    return;
  }
  pending_removes_.push_back(w);
}

CycleTrace Engine::match() {
  CycleTrace trace;
  obs::Span cycle_span(tracer_.get(), 0, obs::EventKind::MatchCycle);
  std::vector<Activation>& seeds = seed_scratch_;  // capacity reused per cycle
  seeds.clear();
  if (opts_.match_workers > 1) {
    // Threaded drain on the persistent matcher; no per-task trace. The
    // cycle's removals drain to quiescence before its additions: a delete
    // token racing a sibling addition is order-dependent (a join can install
    // a new PI behind a delete token that already passed that memory), so
    // each threaded drain gets a homogeneous seed batch. Serial injection
    // order (removes first) makes the final state identical.
    CollectCtx cc(seeds);
    for (const Wme* w : pending_removes_) net_.inject(w, false, cc);
    ParallelStats total;
    if (!seeds.empty() || pending_adds_.empty()) {
      obs::Span span(tracer_.get(), 0, obs::EventKind::DrainRemoves);
      total = matcher().run_cycle_inplace(seeds);
      seeds.clear();
    }
    if (!pending_adds_.empty()) {
      obs::Span span(tracer_.get(), 0, obs::EventKind::DrainAdds);
      for (const Wme* w : pending_adds_) net_.inject(w, true, cc);
      total.accumulate(matcher().run_cycle_inplace(seeds));
    }
    last_parallel_stats_ = total;
  } else {
    CollectCtx cc(seeds);
    for (const Wme* w : pending_removes_) net_.inject(w, false, cc);
    for (const Wme* w : pending_adds_) net_.inject(w, true, cc);
    net_.arena().begin_drain(1);
    trace = serial_exec_.run_to_quiescence_inplace(seeds);
    net_.arena().reclaim_at_quiescence();
  }
  pending_removes_.clear();
  pending_adds_.clear();
  wm_.end_cycle();
  return trace;
}

void Engine::apply_delta(const WmeDelta& delta, bool dedup_adds) {
  for (const auto& add : delta.adds) {
    if (dedup_adds &&
        wm_.find(add.cls, add.fields.data(), add.fields.size()) != nullptr) {
      continue;
    }
    add_wme(add.cls, add.fields.data(), add.fields.size());
  }
  for (const Wme* w : delta.removes) remove_wme(w);
  for (const auto& s : delta.writes) output_.push_back(s);
}

WmeDelta Engine::evaluate(const Instantiation* inst) {
  const CompiledProduction& cp = record(inst->pnode->prod).compiled;
  WmeDelta delta;
  rhs_.fire(cp, inst->token, delta);
  return delta;
}

bool Engine::fire(const Instantiation* inst, bool remove_after_fire,
                  bool dedup_adds) {
  const CompiledProduction& cp = record(inst->pnode->prod).compiled;
  fire_delta_.reset();  // persistent delta: slot capacity reused every fire
  rhs_.fire(cp, inst->token, fire_delta_);
  cs_.mark_fired(inst);
  if (remove_after_fire) cs_.remove(inst);
  apply_delta(fire_delta_, dedup_adds);
  return fire_delta_.halt;
}

void Engine::collect_metrics(obs::MetricsRegistry& m) const {
  if (opts_.match_workers > 1) {
    // Includes the arena snapshot taken at the end of the last cycle.
    obs::collect(m, last_parallel_stats_);
  } else {
    obs::collect(m, net_.arena().stats());
  }
  if (tracer_ != nullptr) obs::collect(m, *tracer_);
}

Engine::RunResult Engine::run(uint64_t max_cycles) {
  RunResult res;
  match();
  while (res.cycles < max_cycles) {
    const Instantiation* inst = cs_.select_lex();
    if (inst == nullptr) break;
    ++res.cycles;
    const bool halted = fire(inst, /*remove_after_fire=*/true,
                             /*dedup_adds=*/false);
    if (halted) {
      res.halted = true;
      break;
    }
    match();
  }
  return res;
}

}  // namespace psme
