#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "analysis/verify.h"

namespace psme {
namespace {

class CollectCtx final : public ExecContext {
 public:
  CollectCtx(std::vector<Activation>& out, uint32_t agent_tag) : out_(out) {
    agent = agent_tag;
  }
  void emit(Activation&& a) override { out_.push_back(std::move(a)); }

 private:
  std::vector<Activation>& out_;
};

}  // namespace

Engine::Engine(EngineOptions opts)
    : Engine(std::make_shared<CompiledNetwork>(
                 CompiledNetworkOptions{opts.builder}),
             opts, nullptr) {}

Engine::Engine(std::shared_ptr<CompiledNetwork> cnet, EngineOptions opts,
               ParallelMatcher* shared_matcher)
    : opts_(opts),
      cnet_(std::move(cnet)),
      state_(opts.hash_lines, opts.arena_chunk_bytes),
      rhs_(cnet_->syms(), cnet_->schemas()),
      external_matcher_(shared_matcher),
      serial_exec_(cnet_->net(), state_, opts.record_traces) {
  state_.sink = &cs_;
  state_.ensure_alpha(net().alpha_mem_count());
  if (opts_.trace.enabled) {
    tracer_ = std::make_unique<obs::Tracer>(opts_.trace);
    trace_sink_ = tracer_.get();
    serial_exec_.set_tracer(trace_sink_, 0);
  }
  if (opts_.profile && external_matcher_ == nullptr) {
    // Attach mode leaves profiling to the group's shared profiler
    // (set_profiler): the shared matcher's workers can't write into a
    // per-agent profiler's shards without racing the other sessions.
    profiler_ = std::make_unique<obs::MatchProfiler>(opts_.profile_sample_shift);
    serial_exec_.set_profiler(profiler_.get());
  }
  if (external_matcher_ != nullptr) {
    agent_ = external_matcher_->register_agent(state_);
  }
  cnet_->attach(this);
}

Engine::~Engine() { cnet_->detach(this); }

void Engine::set_trace_sink(obs::Tracer* t, size_t track) {
  trace_sink_ = t != nullptr ? t : tracer_.get();
  trace_track_ = t != nullptr ? static_cast<uint32_t>(track) : 0;
  serial_exec_.set_tracer(trace_sink_, trace_track_);
}

std::vector<const Production*> Engine::load(std::string_view src) {
  auto out = cnet_->load(src);
  // §5.2 memory update for every attached agent that already holds wmes
  // (the common build-time load on empty WMs skips straight through).
  for (const Production* p : out) {
    const CompiledProduction& cp = cnet_->record(p).compiled;
    for (Engine* agent : cnet_->agents()) {
      const auto snapshot = agent->wm_.live();
      if (snapshot.empty()) continue;
      run_update_serial(net(), agent->state_, cp, snapshot,
                        agent->update_scratch_, agent->trace_sink_,
                        agent->trace_track_);
    }
#if PSME_NET_VERIFY
    debug_verify_after_add(p);
#endif
  }
  return out;
}

analysis::VerifyReport Engine::verify_network() const {
  return analysis::verify_network(cnet_->net(), &state_, cnet_->all_records());
}

void Engine::debug_verify_after_add(const Production* p) const {
  const analysis::VerifyReport rep = verify_network();
  if (rep.ok()) return;
  std::fprintf(stderr,
               "PSME_NET_VERIFY: invariant violation after adding '%s'\n%s",
               std::string(cnet_->syms().name(p->name)).c_str(),
               rep.to_string().c_str());
  std::abort();
}

ParallelMatcher& Engine::matcher() {
  if (external_matcher_ != nullptr) return *external_matcher_;
  if (!matcher_) {
    matcher_ = std::make_unique<ParallelMatcher>(
        net(), state_, opts_.match_workers, opts_.match_policy, tracer_.get(),
        opts_.steal, profiler_.get());
  }
  return *matcher_;
}

Engine::RuntimeAddResult Engine::add_production_runtime(Production&& ast) {
  RuntimeAddResult res;
  const Production* p = cnet_->adopt(std::move(ast));
  obs::Span compile_span(trace_sink_, trace_track_,
                          obs::EventKind::ChunkCompile);
  // Copy-on-write splice + publish; the publish is this call's quiescent
  // safe point (no agent has a cycle in flight — quiescent-only contract).
  const CompiledProduction& cp = cnet_->compile_cow(p).compiled;
  compile_span.set_node(cp.first_new_id);
  compile_span.end();
  res.prod = p;
  res.compile_seconds = cp.compile_seconds;
  res.code_bytes = cp.code_bytes();
#if PSME_NET_VERIFY
  // compile_cow already verified the structure; re-verify against this
  // agent's state (stale-entry and lock-rank checks).
  debug_verify_after_add(p);
#endif
  // §5.2 state update for every attached agent, the learning agent first so
  // the returned traces are its own. A learning agent therefore never
  // blocks a peer's *matching* (the publish is the only shared mutation);
  // peers pay only their own memory fill, at their next safe point — here,
  // since the whole group is quiescent during a runtime add.
  res.update_tasks += apply_runtime_update(cp, &res);
  for (Engine* agent : cnet_->agents()) {
    if (agent == this) continue;
    res.update_tasks += agent->apply_runtime_update(cp, nullptr);
  }
  return res;
}

uint64_t Engine::apply_runtime_update(const CompiledProduction& cp,
                                      RuntimeAddResult* res) {
  const auto wm_snapshot = wm_.live();
  uint64_t tasks = 0;
  if (parallel()) {
    // The §5.2 state update with full match parallelism (Figure 6-9's
    // regime): phases A and B under the task filter, then the
    // last-shared-node replay once both have drained.
    ParallelMatcher& m = matcher();
    {
      obs::Span span(trace_sink_, trace_track_, obs::EventKind::UpdateA,
                     cp.first_new_id);
      const ParallelStats st =
          m.run_update(update_alpha_seeds(net(), cp, wm_snapshot, agent_),
                       {cp.first_new_id, true});
      tasks += st.tasks;
    }
    {
      obs::Span span(trace_sink_, trace_track_, obs::EventKind::UpdateB,
                     cp.first_new_id);
      const ParallelStats st =
          m.run_update(update_right_seeds(net(), state_, cp, agent_),
                       {cp.first_new_id, false});
      tasks += st.tasks;
    }
    {
      obs::Span span(trace_sink_, trace_track_, obs::EventKind::UpdateC,
                     cp.first_new_id);
      const ParallelStats st =
          m.run_update(update_left_seeds(net(), state_, cp, agent_),
                       {cp.first_new_id, false});
      tasks += st.tasks;
    }
  } else {
    TraceExecutor ex(net(), state_, opts_.record_traces);
    ex.set_tracer(trace_sink_, trace_track_);
    // The §5.2 update IS the evaluation for a transient query: without the
    // profiler, a cue's new-node activations would be invisible to the
    // per-CE costing (query_demo --profile / bench_query).
    ex.set_profiler(profiler());
    ex.update_mode = true;
    ex.min_node_id = cp.first_new_id;

    ex.suppress_alpha_left = true;
    CycleTrace ab, c;
    {
      obs::Span span(trace_sink_, trace_track_, obs::EventKind::UpdateA,
                     cp.first_new_id);
      ab = ex.run_to_quiescence(
          update_alpha_seeds(net(), cp, wm_snapshot, agent_));
    }
    ex.suppress_alpha_left = false;
    {
      obs::Span span(trace_sink_, trace_track_, obs::EventKind::UpdateB,
                     cp.first_new_id);
      ab.append(ex.run_to_quiescence(
          update_right_seeds(net(), state_, cp, agent_)));
    }
    {
      obs::Span span(trace_sink_, trace_track_, obs::EventKind::UpdateC,
                     cp.first_new_id);
      c = ex.run_to_quiescence(update_left_seeds(net(), state_, cp, agent_));
    }
    tasks = ex.executed();
    if (res != nullptr) {
      res->ab = std::move(ab);
      res->c = std::move(c);
    }
  }
  return tasks;
}

Engine::RuntimeRemoveResult Engine::remove_production_runtime(
    const Production* p) {
  RuntimeRemoveResult res;
#if PSME_NET_VERIFY
  // The AST dies in finish_removal; keep the name for diagnostics.
  const std::string name(cnet_->syms().name(p->name));
#endif
  obs::Span remove_span(trace_sink_, trace_track_,
                        obs::EventKind::ProdRemove);
  // Plan + unsplice under COW; the publish inside is the safe point. Past
  // it the victim can never fire, but its nodes are still alive — agents
  // drain their state against them before anything is freed.
  const RemovePlan plan = cnet_->unsplice_cow(p, &res.refs_unspliced);
  remove_span.set_node(plan.pnode);
  const auto* pnode = static_cast<const ProdNode*>(net().node(plan.pnode));
  for (Engine* agent : cnet_->agents()) {
    // Beta memories: erase_left unpins each drained token, which is what
    // lets the next epoch boundary reclaim the dead partial instantiations.
    const auto counts = agent->state_.tables.purge_nodes(plan.dead_mask);
    res.left_entries += counts.left;
    res.right_entries += counts.right;
    for (uint32_t mi : plan.dead_alpha_mems) {
      // An agent that never matched since the add may not have grown its
      // alpha array to cover this index yet — nothing to drain then.
      if (mi >= agent->state_.alpha_count()) continue;
      AlphaMemState& ams = agent->state_.alpha(mi);
      SpinGuard g(ams.lock);
      res.alpha_wmes += ams.wmes.size();
      ams.wmes.clear(agent->state_.alpha_pool);
    }
    res.instantiations += agent->cs_.purge_production(pnode);
  }
  res.nodes_removed = plan.dead_nodes.size();
  cnet_->finish_removal(plan, p);
  remove_span.end();
#if PSME_NET_VERIFY
  debug_verify_after_remove(name);
#endif
  return res;
}

void Engine::debug_verify_after_remove(const std::string& name) const {
  // The drain touched every attached agent's state, so every agent's view
  // must be clean — not just the remover's (contrast debug_verify_after_add,
  // where only the compile structure and the caller's state changed).
  for (Engine* agent : cnet_->agents()) {
    const analysis::VerifyReport rep = agent->verify_network();
    if (rep.ok()) continue;
    std::fprintf(stderr,
                 "PSME_NET_VERIFY: invariant violation after removing '%s' "
                 "(agent %u)\n%s",
                 name.c_str(), agent->agent_id(), rep.to_string().c_str());
    std::abort();
  }
}

const Wme* Engine::add_wme(Symbol cls, const Value* fields, size_t n) {
  const Wme* w = wm_.add(cls, fields, n);
  pending_adds_.push_back(w);
  return w;
}

const Wme* Engine::add_wme_text(std::string_view text) {
  const auto toks = lex(text);
  size_t i = 0;
  auto expect = [&](Tok k, const char* what) {
    if (toks[i].kind != k) {
      throw ParseError(std::string("wme literal: expected ") + what,
                       toks[i].line);
    }
    return toks[i++];
  };
  expect(Tok::LParen, "'('");
  const LexToken cls_tok = expect(Tok::Sym, "class name");
  const Symbol cls = syms().intern(cls_tok.text);
  std::vector<Value> fields(static_cast<size_t>(schemas().arity(cls)));
  while (toks[i].kind == Tok::Hat) {
    const Symbol attr = syms().intern(toks[i++].text);
    const int slot = schemas().slot(cls, attr);
    if (slot >= static_cast<int>(fields.size())) {
      fields.resize(static_cast<size_t>(slot) + 1);
    }
    Value v;
    switch (toks[i].kind) {
      case Tok::Sym: v = Value(syms().intern(toks[i].text)); break;
      case Tok::Int: v = Value(toks[i].int_val); break;
      case Tok::Float: v = Value(toks[i].float_val); break;
      default:
        throw ParseError("wme literal: expected constant value", toks[i].line);
    }
    ++i;
    fields[static_cast<size_t>(slot)] = v;
  }
  expect(Tok::RParen, "')'");
  return add_wme(cls, std::move(fields));
}

void Engine::remove_wme(const Wme* w) {
  if (!wm_.remove(w)) return;
  // A wme added and removed within the same batch never reaches the network:
  // cancel the pending add instead of queuing a retraction that would be
  // injected before the add.
  auto it = std::find(pending_adds_.begin(), pending_adds_.end(), w);
  if (it != pending_adds_.end()) {
    pending_adds_.erase(it);
    return;
  }
  pending_removes_.push_back(w);
}

void Engine::collect_seeds(bool adds, std::vector<Activation>& out) {
  CollectCtx cc(out, agent_);
  const auto& pend = adds ? pending_adds_ : pending_removes_;
  for (const Wme* w : pend) net().inject(w, adds, cc);
}

void Engine::end_group_cycle() {
  pending_removes_.clear();
  pending_adds_.clear();
  wm_.end_cycle();
}

CycleTrace Engine::match() {
  CycleTrace trace;
  obs::Span cycle_span(trace_sink_, trace_track_,
                       obs::EventKind::MatchCycle);
  std::vector<Activation>& seeds = seed_scratch_;  // capacity reused per cycle
  seeds.clear();
  if (parallel()) {
    // Threaded drain on the persistent matcher; no per-task trace. The
    // cycle's removals drain to quiescence before its additions: a delete
    // token racing a sibling addition is order-dependent (a join can install
    // a new PI behind a delete token that already passed that memory), so
    // each threaded drain gets a homogeneous seed batch. Serial injection
    // order (removes first) makes the final state identical.
    CollectCtx cc(seeds, agent_);
    for (const Wme* w : pending_removes_) net().inject(w, false, cc);
    ParallelStats total;
    if (!seeds.empty() || pending_adds_.empty()) {
      obs::Span span(trace_sink_, trace_track_,
                     obs::EventKind::DrainRemoves);
      total = matcher().run_cycle_inplace(seeds);
      seeds.clear();
    }
    if (!pending_adds_.empty()) {
      obs::Span span(trace_sink_, trace_track_,
                     obs::EventKind::DrainAdds);
      for (const Wme* w : pending_adds_) net().inject(w, true, cc);
      total.accumulate(matcher().run_cycle_inplace(seeds));
    }
    last_parallel_stats_ = total;
  } else {
    CollectCtx cc(seeds, agent_);
    for (const Wme* w : pending_removes_) net().inject(w, false, cc);
    for (const Wme* w : pending_adds_) net().inject(w, true, cc);
    state_.arena.begin_drain(1);
    trace = serial_exec_.run_to_quiescence_inplace(seeds);
    state_.arena.reclaim_at_quiescence();
  }
  pending_removes_.clear();
  pending_adds_.clear();
  wm_.end_cycle();
  return trace;
}

void Engine::apply_delta(const WmeDelta& delta, bool dedup_adds) {
  for (const auto& add : delta.adds) {
    if (dedup_adds &&
        wm_.find(add.cls, add.fields.data(), add.fields.size()) != nullptr) {
      continue;
    }
    add_wme(add.cls, add.fields.data(), add.fields.size());
  }
  for (const Wme* w : delta.removes) remove_wme(w);
  for (const auto& s : delta.writes) output_.push_back(s);
}

WmeDelta Engine::evaluate(const Instantiation* inst) {
  const CompiledProduction& cp = record(inst->pnode->prod).compiled;
  WmeDelta delta;
  rhs_.fire(cp, inst->token, delta);
  return delta;
}

bool Engine::fire(const Instantiation* inst, bool remove_after_fire,
                  bool dedup_adds) {
  const CompiledProduction& cp = record(inst->pnode->prod).compiled;
  fire_delta_.reset();  // persistent delta: slot capacity reused every fire
  rhs_.fire(cp, inst->token, fire_delta_);
  cs_.mark_fired(inst);
  if (remove_after_fire) cs_.remove(inst);
  apply_delta(fire_delta_, dedup_adds);
  return fire_delta_.halt;
}

void Engine::collect_metrics(obs::MetricsRegistry& m) const {
  if (parallel()) {
    // Includes the arena snapshot taken at the end of the last cycle.
    obs::collect(m, last_parallel_stats_);
  } else {
    obs::collect(m, state_.arena.stats());
  }
  if (tracer_ != nullptr) obs::collect(m, *tracer_);
  // Own profiler only: a group-shared profiler holds every session's cells
  // and is collected once by the group, not once per agent.
  if (profiler_ != nullptr) obs::collect(m, *profiler_);
}

Engine::RunResult Engine::run(uint64_t max_cycles) {
  RunResult res;
  match();
  while (res.cycles < max_cycles) {
    const Instantiation* inst = cs_.select_lex();
    if (inst == nullptr) break;
    ++res.cycles;
    const bool halted = fire(inst, /*remove_after_fire=*/true,
                             /*dedup_adds=*/false);
    if (halted) {
      res.halted = true;
      break;
    }
    match();
  }
  return res;
}

}  // namespace psme
