#include "engine/conflict_set.h"

#include <algorithm>

namespace psme {

void ConflictSet::on_insert(const ProdNode& p, const Token& t) {
  SpinGuard g(lock_);
  ++inserts_;
  // A conjugate retract that overtook this insert (threaded match; the pair
  // was created in order under a not/NCC line lock but raced here) is held
  // in pending_ — cancel against it instead of installing a stale
  // instantiation.
  auto pend = pending_.equal_range(key_of(p, t));
  for (auto ii = pend.first; ii != pend.second; ++ii) {
    if (ii->second.first == &p && ii->second.second == t) {
      ii->second.second.unpin();
      pending_.erase(ii);
      return;
    }
  }
  Instantiation inst;
  inst.pnode = &p;
  inst.token = t;
  // Instantiations outlive the drain that produced them (they are fired in
  // a later phase), so the CS holds a pinned copy (DESIGN.md §9 I2).
  inst.token.pin();
  inst.arrival = ++arrival_;
  items_.push_back(std::move(inst));
  auto it = std::prev(items_.end());
  index_.emplace(key_of(p, t), it);
}

void ConflictSet::on_retract(const ProdNode& p, const Token& t) {
  SpinGuard g(lock_);
  auto range = index_.equal_range(key_of(p, t));
  for (auto ii = range.first; ii != range.second; ++ii) {
    if (ii->second->pnode == &p && ii->second->token == t) {
      ii->second->token.unpin();
      items_.erase(ii->second);
      index_.erase(ii);
      ++retracts_;
      return;
    }
  }
  // Retract before its conjugate insert: hold it for the insert to cancel
  // against. (At quiescence pending_ is empty; a leftover entry means the
  // executor produced a genuinely inconsistent token stream.)
  ++retracts_;
  auto it = pending_.emplace(key_of(p, t), std::make_pair(&p, t));
  it->second.second.pin();
}

size_t ConflictSet::size() const {
  SpinGuard g(lock_);
  return items_.size();
}

std::vector<const Instantiation*> ConflictSet::unfired() const {
  SpinGuard g(lock_);
  std::vector<const Instantiation*> out;
  for (const auto& inst : items_) {
    if (!inst.fired) out.push_back(&inst);
  }
  std::sort(out.begin(), out.end(),
            [](const Instantiation* a, const Instantiation* b) {
              return a->arrival < b->arrival;
            });
  return out;
}

void ConflictSet::mark_fired(const Instantiation* inst) {
  SpinGuard g(lock_);
  const_cast<Instantiation*>(inst)->fired = true;
}

void ConflictSet::remove(const Instantiation* inst) {
  SpinGuard g(lock_);
  auto range = index_.equal_range(key_of(*inst->pnode, inst->token));
  for (auto ii = range.first; ii != range.second; ++ii) {
    if (&*ii->second == inst) {
      ii->second->token.unpin();
      items_.erase(ii->second);
      index_.erase(ii);
      return;
    }
  }
}

namespace {

/// Number of tests in a production (LEX specificity).
int specificity(const Production* p) {
  int n = 0;
  for (const Condition& c : p->conditions) {
    n += static_cast<int>(c.consts.size() + c.disjs.size() + c.vars.size());
    for (const Condition& inner : c.ncc) {
      n += static_cast<int>(inner.consts.size() + inner.disjs.size() +
                            inner.vars.size());
    }
  }
  return n;
}

/// LEX recency comparison: timetags sorted descending, compared
/// lexicographically; the instantiation with the more recent tag wins.
bool lex_less(const Instantiation* a, const Instantiation* b) {
  std::vector<uint64_t> ta, tb;
  ta.reserve(a->token.size());
  tb.reserve(b->token.size());
  for (const Wme* w : a->token) ta.push_back(w->timetag);
  for (const Wme* w : b->token) tb.push_back(w->timetag);
  std::sort(ta.rbegin(), ta.rend());
  std::sort(tb.rbegin(), tb.rend());
  if (ta != tb) {
    return std::lexicographical_compare(ta.begin(), ta.end(), tb.begin(),
                                        tb.end());
  }
  const int sa = specificity(a->pnode->prod);
  const int sb = specificity(b->pnode->prod);
  if (sa != sb) return sa < sb;
  return a->arrival > b->arrival;  // older arrival wins ties
}

}  // namespace

const Instantiation* ConflictSet::select_lex() const {
  SpinGuard g(lock_);
  const Instantiation* best = nullptr;
  for (const auto& inst : items_) {
    if (inst.fired) continue;
    if (best == nullptr || lex_less(best, &inst)) best = &inst;
  }
  return best;
}

std::vector<const Instantiation*> ConflictSet::all() const {
  SpinGuard g(lock_);
  std::vector<const Instantiation*> out;
  out.reserve(items_.size());
  for (const auto& inst : items_) out.push_back(&inst);
  return out;
}

void ConflictSet::clear() {
  SpinGuard g(lock_);
  for (const auto& inst : items_) inst.token.unpin();
  for (const auto& [key, val] : pending_) val.second.unpin();
  items_.clear();
  index_.clear();
  pending_.clear();
}

}  // namespace psme
