#include "engine/conflict_set.h"

#include <algorithm>

namespace psme {

ConflictSet::ConflictSet() {
  SpinGuard g(lock_);
  buckets_.assign(kInitialBuckets, nullptr);
  bucket_mask_ = kInitialBuckets - 1;
}

ConflictSet::Node* ConflictSet::alloc_node() {
  if (free_ == nullptr) {
    auto slab = std::make_unique<Node[]>(kSlabNodes);
    for (size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next = free_;
      free_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
  }
  Node* n = free_;
  free_ = n->next;
  n->inst = Instantiation{};
  n->key = 0;
  n->prev = n->next = n->hnext = nullptr;
  return n;
}

void ConflictSet::free_node(Node* n) {
  n->next = free_;
  free_ = n;
}

void ConflictSet::unlink(Node* n) {
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    head_ = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    tail_ = n->prev;
  }
  Node** link = &buckets_[bucket_of(n->key)];
  while (*link != n) link = &(*link)->hnext;
  *link = n->hnext;
  --count_;
}

void ConflictSet::grow_buckets() {
  // Growth-only doubling; rehash by walking the arrival list. Allocates only
  // when the CS population reaches a new high-water mark.
  buckets_.assign(buckets_.size() * 2, nullptr);
  bucket_mask_ = buckets_.size() - 1;
  for (Node* n = head_; n != nullptr; n = n->next) {
    Node** b = &buckets_[bucket_of(n->key)];
    n->hnext = *b;
    *b = n;
  }
}

void ConflictSet::on_insert(const ProdNode& p, const Token& t) {
  SpinGuard g(lock_);
  ++inserts_;
  const size_t key = key_of(p, t);
  // A conjugate retract that overtook this insert (threaded match; the pair
  // was created in order under a not/NCC line lock but raced here) is held
  // in the pending list — cancel against it instead of installing a stale
  // instantiation.
  for (Node** link = &pending_head_; *link != nullptr;
       link = &(*link)->next) {
    Node* pn = *link;
    if (pn->key == key && pn->inst.pnode == &p && pn->inst.token == t) {
      pn->inst.token.unpin();
      *link = pn->next;
      --pending_count_;
      free_node(pn);
      return;
    }
  }
  Node* n = alloc_node();
  n->inst.pnode = &p;
  n->inst.token = t;
  // Instantiations outlive the drain that produced them (they are fired in
  // a later phase), so the CS holds a pinned copy (DESIGN.md §9 I2).
  n->inst.token.pin();
  n->inst.arrival = ++arrival_;
  n->key = key;
  n->prev = tail_;
  n->next = nullptr;
  if (tail_ != nullptr) {
    tail_->next = n;
  } else {
    head_ = n;
  }
  tail_ = n;
  Node** b = &buckets_[bucket_of(key)];
  n->hnext = *b;
  *b = n;
  ++count_;
  if (count_ > buckets_.size() * 2) grow_buckets();
}

void ConflictSet::on_retract(const ProdNode& p, const Token& t) {
  SpinGuard g(lock_);
  ++retracts_;
  const size_t key = key_of(p, t);
  for (Node* n = buckets_[bucket_of(key)]; n != nullptr; n = n->hnext) {
    if (n->key == key && n->inst.pnode == &p && n->inst.token == t) {
      n->inst.token.unpin();
      unlink(n);
      free_node(n);
      return;
    }
  }
  // Retract before its conjugate insert: hold it for the insert to cancel
  // against. (At quiescence the pending list is empty; a leftover entry
  // means the executor produced a genuinely inconsistent token stream.)
  Node* pn = alloc_node();
  pn->inst.pnode = &p;
  pn->inst.token = t;
  pn->inst.token.pin();
  pn->key = key;
  pn->next = pending_head_;
  pending_head_ = pn;
  ++pending_count_;
}

size_t ConflictSet::size() const {
  SpinGuard g(lock_);
  return count_;
}

namespace {

/// Schedule-invariant total order on instantiations: production id, then
/// token arity, then the wme timetags in token order. Two distinct
/// instantiations always differ in one of these (the CS dedups on exactly
/// (pnode, token) and timetags are unique per wme), so the order is total —
/// and it is a pure function of WM content, never of task interleaving.
/// Arrival order is NOT schedule-invariant even per agent: when a left and
/// a right activation race into the same join, whichever parent executes
/// second under the line lock emits the child, so CS insertion order varies
/// with worker count. Ordering fires by this key instead is what makes
/// learning runs bit-identical from match_workers=1 to 8 (DESIGN.md §13).
bool det_less(const Instantiation* a, const Instantiation* b) {
  if (a->pnode->id != b->pnode->id) return a->pnode->id < b->pnode->id;
  const size_t na = a->token.size(), nb = b->token.size();
  if (na != nb) return na < nb;
  for (size_t i = 0; i < na; ++i) {
    if (a->token[i]->timetag != b->token[i]->timetag) {
      return a->token[i]->timetag < b->token[i]->timetag;
    }
  }
  return false;
}

}  // namespace

void ConflictSet::unfired_into(std::vector<const Instantiation*>& out) const {
  out.clear();
  {
    SpinGuard g(lock_);
    for (const Node* n = head_; n != nullptr; n = n->next) {
      if (!n->inst.fired) out.push_back(&n->inst);
    }
  }
  // Deterministic firing order regardless of how the threaded match
  // interleaved the inserts (the arrival list's order is schedule-
  // dependent). Sorted outside the lock: the harvest runs at quiescence.
  std::sort(out.begin(), out.end(), det_less);
}

std::vector<const Instantiation*> ConflictSet::unfired() const {
  std::vector<const Instantiation*> out;
  unfired_into(out);
  return out;
}

void ConflictSet::mark_fired(const Instantiation* inst) {
  SpinGuard g(lock_);
  const_cast<Instantiation*>(inst)->fired = true;
}

void ConflictSet::remove(const Instantiation* inst) {
  SpinGuard g(lock_);
  // The handle is the first member of its Node (asserted in the header).
  Node* n = reinterpret_cast<Node*>(const_cast<Instantiation*>(inst));
  n->inst.token.unpin();
  unlink(n);
  free_node(n);
}

namespace {

/// Number of tests in a production (LEX specificity).
int specificity(const Production* p) {
  int n = 0;
  for (const Condition& c : p->conditions) {
    n += static_cast<int>(c.consts.size() + c.disjs.size() + c.vars.size());
    for (const Condition& inner : c.ncc) {
      n += static_cast<int>(inner.consts.size() + inner.disjs.size() +
                            inner.vars.size());
    }
  }
  return n;
}

}  // namespace

/// LEX recency comparison: timetags sorted descending, compared
/// lexicographically; the instantiation with the more recent tag wins.
bool ConflictSet::lex_less(const Instantiation* a,
                           const Instantiation* b) const {
  lex_a_.clear();
  lex_b_.clear();
  for (const Wme* w : a->token) lex_a_.push_back(w->timetag);
  for (const Wme* w : b->token) lex_b_.push_back(w->timetag);
  std::sort(lex_a_.rbegin(), lex_a_.rend());
  std::sort(lex_b_.rbegin(), lex_b_.rend());
  if (lex_a_ != lex_b_) {
    return std::lexicographical_compare(lex_a_.begin(), lex_a_.end(),
                                        lex_b_.begin(), lex_b_.end());
  }
  const int sa = specificity(a->pnode->prod);
  const int sb = specificity(b->pnode->prod);
  if (sa != sb) return sa < sb;
  // Final tiebreak by the deterministic content key (not arrival, which is
  // schedule-dependent under the threaded match): b wins iff it sorts first.
  return det_less(b, a);
}

const Instantiation* ConflictSet::select_lex() const {
  SpinGuard g(lock_);
  const Instantiation* best = nullptr;
  for (const Node* n = head_; n != nullptr; n = n->next) {
    if (n->inst.fired) continue;
    if (best == nullptr || lex_less(best, &n->inst)) best = &n->inst;
  }
  return best;
}

std::vector<const Instantiation*> ConflictSet::all() const {
  SpinGuard g(lock_);
  std::vector<const Instantiation*> out;
  out.reserve(count_);
  for (const Node* n = head_; n != nullptr; n = n->next) out.push_back(&n->inst);
  return out;
}

size_t ConflictSet::purge_production(const ProdNode* pnode) {
  SpinGuard g(lock_);
  size_t dropped = 0;
  for (Node* n = head_; n != nullptr;) {
    Node* next = n->next;
    if (n->inst.pnode == pnode) {
      n->inst.token.unpin();
      unlink(n);
      free_node(n);
      ++dropped;
    }
    n = next;
  }
  for (Node** link = &pending_head_; *link != nullptr;) {
    Node* pn = *link;
    if (pn->inst.pnode == pnode) {
      pn->inst.token.unpin();
      *link = pn->next;
      --pending_count_;
      free_node(pn);
      ++dropped;
    } else {
      link = &pn->next;
    }
  }
  return dropped;
}

void ConflictSet::clear() {
  SpinGuard g(lock_);
  for (Node* n = head_; n != nullptr;) {
    Node* next = n->next;
    n->inst.token.unpin();
    free_node(n);
    n = next;
  }
  for (Node* n = pending_head_; n != nullptr;) {
    Node* next = n->next;
    n->inst.token.unpin();
    free_node(n);
    n = next;
  }
  head_ = tail_ = pending_head_ = nullptr;
  count_ = pending_count_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), nullptr);
}

}  // namespace psme
