// Working memory: owns all wmes, assigns timetags, provides structural
// lookup (Soar-mode deduplication), and defers freeing removed wmes until
// the end of the match cycle (delete tokens still reference them while they
// traverse the network).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "rete/wme.h"

namespace psme {

class WorkingMemory {
 public:
  WorkingMemory() = default;
  WorkingMemory(const WorkingMemory&) = delete;
  WorkingMemory& operator=(const WorkingMemory&) = delete;

  const Wme* add(Symbol cls, std::vector<Value> fields);

  /// Marks `w` removed. It stays allocated (in limbo) until end_cycle().
  /// Returns false if `w` is not live.
  bool remove(const Wme* w);

  /// Structural lookup among live wmes.
  [[nodiscard]] const Wme* find(Symbol cls,
                                const std::vector<Value>& fields) const;

  [[nodiscard]] bool is_live(const Wme* w) const { return live_.count(w) != 0; }

  /// Snapshot of live wmes ordered by timetag.
  [[nodiscard]] std::vector<const Wme*> live() const;

  [[nodiscard]] size_t size() const { return live_.size(); }

  /// Frees wmes removed during the cycle. Call only at quiescence. With
  /// retain_removed set, removed wmes stay allocated (the Soar kernel keeps
  /// them so chunking's provenance records remain readable after garbage
  /// collection).
  void end_cycle() {
    if (!retain_removed_) limbo_.clear();
  }

  void set_retain_removed(bool retain) { retain_removed_ = retain; }

  [[nodiscard]] uint64_t timetags_issued() const { return timetag_; }

 private:
  std::unordered_map<const Wme*, std::unique_ptr<Wme>> live_;
  std::unordered_multimap<size_t, const Wme*> by_content_;
  std::vector<std::unique_ptr<Wme>> limbo_;
  uint64_t timetag_ = 0;
  bool retain_removed_ = false;
};

}  // namespace psme
