// Working memory: owns all wmes, assigns timetags, provides structural
// lookup (Soar-mode deduplication), and defers freeing removed wmes until
// the end of the match cycle (delete tokens still reference them while they
// traverse the network).
//
// Storage is a slab recycler: wmes live inside Recs carved from slabs the WM
// owns, and a removed wme's Rec returns to the free list at end_cycle() with
// its fields vector's capacity intact. The structural index is an intrusive
// growth-only chained table over the same Recs. At steady state (population
// oscillating under its high-water mark) an add/remove/end_cycle round trip
// touches no heap — the WM leg of the allocation-free engine cycle
// (tests/engine_alloc_test.cpp).
#pragma once

#include <memory>
#include <vector>

#include "rete/wme.h"

namespace psme {

class WorkingMemory {
 public:
  WorkingMemory();
  WorkingMemory(const WorkingMemory&) = delete;
  WorkingMemory& operator=(const WorkingMemory&) = delete;

  /// Span primary: copies the fields into a recycled wme (the vector-taking
  /// overload delegates here). The returned pointer is stable until the
  /// end_cycle() after its removal.
  const Wme* add(Symbol cls, const Value* fields, size_t n);
  const Wme* add(Symbol cls, std::vector<Value> fields) {
    return add(cls, fields.data(), fields.size());
  }

  /// Marks `w` removed. It stays allocated (in limbo) until end_cycle().
  /// Returns false if `w` is not live. `w` must have come from this WM's
  /// add() (handles cast back to their Rec).
  bool remove(const Wme* w);

  /// Structural lookup among live wmes.
  [[nodiscard]] const Wme* find(Symbol cls, const Value* fields,
                                size_t n) const;
  [[nodiscard]] const Wme* find(Symbol cls,
                                const std::vector<Value>& fields) const {
    return find(cls, fields.data(), fields.size());
  }

  [[nodiscard]] bool is_live(const Wme* w) const {
    return rec_of(w)->state == Rec::State::Live;
  }

  /// Snapshot of live wmes ordered by timetag.
  [[nodiscard]] std::vector<const Wme*> live() const;

  [[nodiscard]] size_t size() const { return live_count_; }

  /// Recycles wmes removed during the cycle. Call only at quiescence. With
  /// retain_removed set, removed wmes stay allocated (the Soar kernel keeps
  /// them so chunking's provenance records remain readable after garbage
  /// collection).
  void end_cycle();

  void set_retain_removed(bool retain) { retain_removed_ = retain; }

  [[nodiscard]] uint64_t timetags_issued() const { return timetag_; }

  /// Slabs allocated since construction (diagnostics: flat at steady state).
  [[nodiscard]] size_t slab_allocs() const { return slabs_.size(); }

 private:
  // Wme is the first member: the const Wme* handles handed out cast back to
  // their Rec (same pattern as ConflictSet::Node / ActivationPool::Node).
  struct Rec {
    Wme wme;
    Rec* next = nullptr;  // content-bucket chain (Live) or free list (Free)
    enum class State : uint8_t { Free, Live, Limbo } state = State::Free;
  };
  static_assert(std::is_standard_layout_v<Rec>,
                "Wme* <-> Rec* relies on first-member layout");

  static constexpr size_t kSlabRecs = 64;
  static constexpr size_t kInitialBuckets = 64;

  static Rec* rec_of(const Wme* w) {
    return reinterpret_cast<Rec*>(const_cast<Wme*>(w));
  }
  [[nodiscard]] size_t bucket_of(size_t hash) const {
    return (hash ^ (hash >> 17)) & bucket_mask_;
  }
  Rec* alloc_rec();
  void grow_buckets();

  std::vector<std::unique_ptr<Rec[]>> slabs_;
  Rec* free_ = nullptr;
  std::vector<Rec*> buckets_;  // structural index over live recs
  size_t bucket_mask_ = 0;
  size_t live_count_ = 0;
  std::vector<Rec*> limbo_;
  uint64_t timetag_ = 0;
  bool retain_removed_ = false;
};

}  // namespace psme
