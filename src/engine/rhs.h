// Right-hand-side execution: evaluates a fired instantiation's actions into
// a batch of wme changes. The engine applies the batch and re-matches; this
// module never touches the network.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "base/symbol.h"
#include "lang/ast.h"
#include "rete/builder.h"
#include "rete/token.h"

namespace psme {

struct WmeDelta {
  struct Add {
    Symbol cls;
    std::vector<Value> fields;
  };
  std::vector<Add> adds;
  std::vector<const Wme*> removes;
  std::vector<std::string> writes;
  bool halt = false;
};

class RhsExecutor {
 public:
  RhsExecutor(SymbolTable& syms, ClassSchemas& schemas)
      : syms_(syms), schemas_(schemas) {}

  /// Evaluates `cp.ast`'s actions in the context of `token`, appending the
  /// results to `delta`. Throws std::runtime_error on unbound-variable use.
  void fire(const CompiledProduction& cp, const Token& token,
            WmeDelta& delta);

  /// Observes every symbol minted by a (genatom) during fire(); the Soar
  /// kernel uses this to register new identifiers at the firing goal level.
  void set_gensym_hook(std::function<void(Symbol)> fn) {
    gensym_hook_ = std::move(fn);
  }

 private:
  Value eval(const RhsValue& v, const CompiledProduction& cp,
             const Token& token, std::vector<Value>& locals);

  SymbolTable& syms_;
  ClassSchemas& schemas_;
  std::function<void(Symbol)> gensym_hook_;
};

}  // namespace psme
