// Right-hand-side execution: evaluates a fired instantiation's actions into
// a batch of wme changes. The engine applies the batch and re-matches; this
// module never touches the network.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "base/symbol.h"
#include "lang/ast.h"
#include "rete/builder.h"
#include "rete/token.h"

namespace psme {

struct WmeDelta {
  struct Add {
    Symbol cls;
    std::vector<Value> fields;
  };

  /// Count-based reuse wrapper: vector<Add>::clear() would destroy every Add
  /// and free its fields buffer, so a reused delta would reallocate them all
  /// next cycle. AddList instead keeps dead slots constructed (their
  /// capacity intact) and tracks a live count; reset() just rewinds it.
  class AddList {
   public:
    /// Returns a cleared-by-caller slot to fill in place.
    Add& push() {
      if (count_ == slots_.size()) slots_.emplace_back();
      return slots_[count_++];
    }
    [[nodiscard]] Add* begin() { return slots_.data(); }
    [[nodiscard]] Add* end() { return slots_.data() + count_; }
    [[nodiscard]] const Add* begin() const { return slots_.data(); }
    [[nodiscard]] const Add* end() const { return slots_.data() + count_; }
    [[nodiscard]] size_t size() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }
    void reset() { count_ = 0; }

   private:
    std::vector<Add> slots_;
    size_t count_ = 0;
  };

  AddList adds;
  std::vector<const Wme*> removes;
  std::vector<std::string> writes;
  bool halt = false;

  /// Rewinds for reuse, retaining add-slot and remove-list capacity.
  /// (writes still free their strings; the text path is not on the
  /// steady-state cycle.)
  void reset() {
    adds.reset();
    removes.clear();
    writes.clear();
    halt = false;
  }
};

class RhsExecutor {
 public:
  RhsExecutor(SymbolTable& syms, ClassSchemas& schemas)
      : syms_(syms), schemas_(schemas) {}

  /// Evaluates `cp.ast`'s actions in the context of `token`, appending the
  /// results to `delta`. Throws std::runtime_error on unbound-variable use.
  void fire(const CompiledProduction& cp, const Token& token,
            WmeDelta& delta);

  /// Observes every symbol minted by a (genatom) during fire(); the Soar
  /// kernel uses this to register new identifiers at the firing goal level.
  void set_gensym_hook(std::function<void(Symbol)> fn) {
    gensym_hook_ = std::move(fn);
  }

 private:
  Value eval(const RhsValue& v, const CompiledProduction& cp,
             const Token& token, std::vector<Value>& locals);

  SymbolTable& syms_;
  ClassSchemas& schemas_;
  std::function<void(Symbol)> gensym_hook_;
  std::vector<Value> locals_;  // `bind` results, reused across fire() calls
};

}  // namespace psme
