// The conflict set (CS).
//
// P-node activations insert/retract instantiations here; the executor may be
// running them from several threads, so mutation is lock-protected. OPS5
// mode selects one instantiation per cycle with the LEX strategy; Soar mode
// fires every unfired instantiation in parallel (§3: "all of the
// instantiations in the CS are then fired in parallel").
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "base/thread_annotations.h"
#include "par/spinlock.h"
#include "rete/network.h"
#include "rete/token.h"

namespace psme {

struct Instantiation {
  const ProdNode* pnode = nullptr;
  Token token;
  uint64_t arrival = 0;  // insertion order (refraction bookkeeping)
  bool fired = false;
};

class ConflictSet final : public MatchSink {
 public:
  ConflictSet() = default;

  void on_insert(const ProdNode& p, const Token& t) override;
  void on_retract(const ProdNode& p, const Token& t) override;

  [[nodiscard]] size_t size() const;

  /// Unfired instantiations, in arrival order. Soar fires all of these in
  /// one elaboration cycle; call mark_fired for each afterwards.
  [[nodiscard]] std::vector<const Instantiation*> unfired() const;

  void mark_fired(const Instantiation* inst);

  /// Removes a fired instantiation (OPS5 fires then discards).
  void remove(const Instantiation* inst);

  /// OPS5 LEX selection among unfired instantiations: recency of timetags
  /// (lexicographic over descending-sorted tags), then specificity (test
  /// count of the production), then arrival order. Returns nullptr if no
  /// unfired instantiation exists.
  [[nodiscard]] const Instantiation* select_lex() const;

  /// All current instantiations (tests/diagnostics).
  [[nodiscard]] std::vector<const Instantiation*> all() const;

  [[nodiscard]] uint64_t total_inserts() const {
    SpinGuard g(lock_);
    return inserts_;
  }
  [[nodiscard]] uint64_t total_retracts() const {
    SpinGuard g(lock_);
    return retracts_;
  }

  /// Retracts still waiting for their conjugate insert (see on_retract).
  /// Nonzero only while a parallel cycle is in flight; at quiescence every
  /// conjugate pair has cancelled.
  [[nodiscard]] size_t pending_retracts() const {
    SpinGuard g(lock_);
    return pending_.size();
  }

  void clear();

 private:
  using List = std::list<Instantiation>;
  static size_t key_of(const ProdNode& p, const Token& t) {
    return token_identity_hash(t) ^ (static_cast<size_t>(p.id) * 0x9e3779b9u);
  }

  mutable Spinlock lock_{LockRank::ConflictSet, "conflict-set"};
  List items_ PSME_GUARDED_BY(lock_);
  std::unordered_multimap<size_t, List::iterator> index_
      PSME_GUARDED_BY(lock_);
  // Conjugate retracts that overtook their insert (threaded match only):
  // held here so the late insert cancels instead of installing a stale
  // instantiation.
  std::unordered_multimap<size_t, std::pair<const ProdNode*, Token>>
      pending_ PSME_GUARDED_BY(lock_);
  uint64_t arrival_ PSME_GUARDED_BY(lock_) = 0;
  uint64_t inserts_ PSME_GUARDED_BY(lock_) = 0;
  uint64_t retracts_ PSME_GUARDED_BY(lock_) = 0;
};

}  // namespace psme
