// The conflict set (CS).
//
// P-node activations insert/retract instantiations here; the executor may be
// running them from several threads, so mutation is lock-protected. OPS5
// mode selects one instantiation per cycle with the LEX strategy; Soar mode
// fires every unfired instantiation in parallel (§3: "all of the
// instantiations in the CS are then fired in parallel").
//
// Storage is slab-pooled (modeled on ActivationPool in par/parallel_match.*):
// instantiations live in intrusive nodes carved from slabs the CS owns, kept
// on a free list when retracted. The arrival-ordered doubly-linked list
// replaces std::list (no per-insert heap node), and a growth-only power-of-two
// chained index replaces the unordered_multimap (no per-insert map node). At
// steady state — CS population oscillating below its high-water mark — an
// insert/retract pair touches no heap at all, which is what
// tests/engine_alloc_test.cpp asserts across full engine cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/thread_annotations.h"
#include "par/spinlock.h"
#include "rete/network.h"
#include "rete/token.h"

namespace psme {

struct Instantiation {
  const ProdNode* pnode = nullptr;
  Token token;
  /// CS insertion order. Diagnostics only: under the threaded match this is
  /// schedule-dependent (racing parents emit the join child in lock-arrival
  /// order), so nothing that affects firing may read it — ordering uses the
  /// deterministic content key instead (see det_less in conflict_set.cpp).
  uint64_t arrival = 0;
  bool fired = false;
};

class ConflictSet final : public MatchSink {
 public:
  ConflictSet();

  void on_insert(const ProdNode& p, const Token& t) override;
  void on_retract(const ProdNode& p, const Token& t) override;

  [[nodiscard]] size_t size() const;

  /// Unfired instantiations, in the deterministic content-key order
  /// (production id, token timetags) — identical for every worker count and
  /// schedule. Soar fires all of these in one elaboration cycle; call
  /// mark_fired for each afterwards.
  [[nodiscard]] std::vector<const Instantiation*> unfired() const;

  /// Same, into a caller-owned buffer (cleared first, capacity retained) so
  /// the per-cycle harvest stops allocating once the buffer has grown.
  void unfired_into(std::vector<const Instantiation*>& out) const;

  void mark_fired(const Instantiation* inst);

  /// Removes a fired instantiation (OPS5 fires then discards).
  void remove(const Instantiation* inst);

  /// OPS5 LEX selection among unfired instantiations: recency of timetags
  /// (lexicographic over descending-sorted tags), then specificity (test
  /// count of the production), then the deterministic content key. Returns
  /// nullptr if no unfired instantiation exists.
  [[nodiscard]] const Instantiation* select_lex() const;

  /// All current instantiations (tests/diagnostics).
  [[nodiscard]] std::vector<const Instantiation*> all() const;

  [[nodiscard]] uint64_t total_inserts() const {
    SpinGuard g(lock_);
    return inserts_;
  }
  [[nodiscard]] uint64_t total_retracts() const {
    SpinGuard g(lock_);
    return retracts_;
  }

  /// Retracts still waiting for their conjugate insert (see on_retract).
  /// Nonzero only while a parallel cycle is in flight; at quiescence every
  /// conjugate pair has cancelled.
  [[nodiscard]] size_t pending_retracts() const {
    SpinGuard g(lock_);
    return pending_count_;
  }

  /// Slabs allocated since construction (diagnostics: flat at steady state).
  [[nodiscard]] uint64_t slab_allocs() const {
    SpinGuard g(lock_);
    return slabs_.size();
  }

  void clear();

  /// Production removal's drain: discards every instantiation (fired or
  /// not, including pending conjugate retracts) whose P-node is the removed
  /// production's. Unpinning here is what releases the removed production's
  /// instantiation tokens to the next epoch boundary. Does not count as
  /// retracts — the production is gone, not refuted. Returns how many
  /// instantiations were dropped.
  size_t purge_production(const ProdNode* pnode);

 private:
  // Instantiation is the first member: the Instantiation* handles handed to
  // callers cast back to their Node (same trick as ActivationPool's slabs).
  struct Node {
    Instantiation inst;
    size_t key = 0;
    Node* prev = nullptr;   // arrival list links (or free/pending list via next)
    Node* next = nullptr;
    Node* hnext = nullptr;  // index bucket chain
  };
  static_assert(std::is_standard_layout_v<Node>,
                "Instantiation* <-> Node* relies on first-member layout");

  static constexpr size_t kSlabNodes = 64;
  static constexpr size_t kInitialBuckets = 64;

  static size_t key_of(const ProdNode& p, const Token& t) {
    return token_identity_hash(t) ^ (static_cast<size_t>(p.id) * 0x9e3779b9u);
  }

  [[nodiscard]] size_t bucket_of(size_t key) const PSME_REQUIRES(lock_) {
    return (key ^ (key >> 17)) & bucket_mask_;
  }

  Node* alloc_node() PSME_REQUIRES(lock_);
  void free_node(Node* n) PSME_REQUIRES(lock_);
  /// Unlinks from both the arrival list and the index chain.
  void unlink(Node* n) PSME_REQUIRES(lock_);
  void grow_buckets() PSME_REQUIRES(lock_);
  [[nodiscard]] bool lex_less(const Instantiation* a,
                              const Instantiation* b) const PSME_REQUIRES(lock_);

  mutable Spinlock lock_{LockRank::ConflictSet, "conflict-set"};
  std::vector<std::unique_ptr<Node[]>> slabs_ PSME_GUARDED_BY(lock_);
  Node* free_ PSME_GUARDED_BY(lock_) = nullptr;
  Node* head_ PSME_GUARDED_BY(lock_) = nullptr;  // arrival order
  Node* tail_ PSME_GUARDED_BY(lock_) = nullptr;
  std::vector<Node*> buckets_ PSME_GUARDED_BY(lock_);
  size_t bucket_mask_ PSME_GUARDED_BY(lock_) = 0;
  size_t count_ PSME_GUARDED_BY(lock_) = 0;
  // Conjugate retracts that overtook their insert (threaded match only):
  // held here (singly linked via Node::next, always tiny and transient) so
  // the late insert cancels instead of installing a stale instantiation.
  Node* pending_head_ PSME_GUARDED_BY(lock_) = nullptr;
  size_t pending_count_ PSME_GUARDED_BY(lock_) = 0;
  uint64_t arrival_ PSME_GUARDED_BY(lock_) = 0;
  uint64_t inserts_ PSME_GUARDED_BY(lock_) = 0;
  uint64_t retracts_ PSME_GUARDED_BY(lock_) = 0;
  // LEX comparison scratch (timetag sort buffers), reused across calls.
  mutable std::vector<uint64_t> lex_a_ PSME_GUARDED_BY(lock_);
  mutable std::vector<uint64_t> lex_b_ PSME_GUARDED_BY(lock_);
};

}  // namespace psme
