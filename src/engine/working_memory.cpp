#include "engine/working_memory.h"

#include <algorithm>

namespace psme {

const Wme* WorkingMemory::add(Symbol cls, std::vector<Value> fields) {
  auto w = std::make_unique<Wme>();
  w->cls = cls;
  w->fields = std::move(fields);
  w->timetag = ++timetag_;
  const Wme* ptr = w.get();
  by_content_.emplace(ptr->contents_hash(), ptr);
  live_.emplace(ptr, std::move(w));
  return ptr;
}

bool WorkingMemory::remove(const Wme* w) {
  auto it = live_.find(w);
  if (it == live_.end()) return false;
  auto range = by_content_.equal_range(w->contents_hash());
  for (auto bi = range.first; bi != range.second; ++bi) {
    if (bi->second == w) {
      by_content_.erase(bi);
      break;
    }
  }
  limbo_.push_back(std::move(it->second));
  live_.erase(it);
  return true;
}

const Wme* WorkingMemory::find(Symbol cls,
                               const std::vector<Value>& fields) const {
  Wme probe;
  probe.cls = cls;
  probe.fields = fields;
  auto range = by_content_.equal_range(probe.contents_hash());
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second->same_contents(probe)) return it->second;
  }
  return nullptr;
}

std::vector<const Wme*> WorkingMemory::live() const {
  std::vector<const Wme*> out;
  out.reserve(live_.size());
  for (const auto& [ptr, owned] : live_) out.push_back(ptr);
  std::sort(out.begin(), out.end(), [](const Wme* a, const Wme* b) {
    return a->timetag < b->timetag;
  });
  return out;
}

}  // namespace psme
