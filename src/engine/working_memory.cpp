#include "engine/working_memory.h"

#include <algorithm>

namespace psme {

WorkingMemory::WorkingMemory() {
  buckets_.assign(kInitialBuckets, nullptr);
  bucket_mask_ = kInitialBuckets - 1;
}

WorkingMemory::Rec* WorkingMemory::alloc_rec() {
  if (free_ == nullptr) {
    auto slab = std::make_unique<Rec[]>(kSlabRecs);
    for (size_t i = 0; i < kSlabRecs; ++i) {
      slab[i].next = free_;
      free_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
  }
  Rec* r = free_;
  free_ = r->next;
  r->next = nullptr;
  return r;
}

void WorkingMemory::grow_buckets() {
  // Growth-only doubling: allocates only when the live population reaches a
  // new high-water mark.
  std::vector<Rec*> grown(buckets_.size() * 2, nullptr);
  const size_t mask = grown.size() - 1;
  for (Rec* chain : buckets_) {
    while (chain != nullptr) {
      Rec* next = chain->next;
      const size_t h = chain->wme.contents_hash();
      Rec** b = &grown[(h ^ (h >> 17)) & mask];
      chain->next = *b;
      *b = chain;
      chain = next;
    }
  }
  buckets_.swap(grown);
  bucket_mask_ = mask;
}

const Wme* WorkingMemory::add(Symbol cls, const Value* fields, size_t n) {
  Rec* r = alloc_rec();
  r->wme.cls = cls;
  // assign() reuses the recycled vector's capacity.
  r->wme.fields.assign(fields, fields + n);
  r->wme.timetag = ++timetag_;
  r->state = Rec::State::Live;
  Rec** b = &buckets_[bucket_of(r->wme.contents_hash())];
  r->next = *b;
  *b = r;
  ++live_count_;
  if (live_count_ > buckets_.size() * 2) grow_buckets();
  return &r->wme;
}

bool WorkingMemory::remove(const Wme* w) {
  Rec* r = rec_of(w);
  if (r->state != Rec::State::Live) return false;
  Rec** link = &buckets_[bucket_of(r->wme.contents_hash())];
  while (*link != r) link = &(*link)->next;
  *link = r->next;
  r->next = nullptr;
  r->state = Rec::State::Limbo;
  limbo_.push_back(r);
  --live_count_;
  return true;
}

const Wme* WorkingMemory::find(Symbol cls, const Value* fields,
                               size_t n) const {
  const size_t h = Wme::contents_hash_of(cls, fields, n);
  for (const Rec* r = buckets_[bucket_of(h)]; r != nullptr; r = r->next) {
    const Wme& cand = r->wme;
    if (cand.cls != cls || cand.fields.size() != n) continue;
    if (std::equal(cand.fields.begin(), cand.fields.end(), fields)) {
      return &cand;
    }
  }
  return nullptr;
}

std::vector<const Wme*> WorkingMemory::live() const {
  std::vector<const Wme*> out;
  out.reserve(live_count_);
  for (const auto& slab : slabs_) {
    for (size_t i = 0; i < kSlabRecs; ++i) {
      if (slab[i].state == Rec::State::Live) out.push_back(&slab[i].wme);
    }
  }
  std::sort(out.begin(), out.end(), [](const Wme* a, const Wme* b) {
    return a->timetag < b->timetag;
  });
  return out;
}

void WorkingMemory::end_cycle() {
  if (retain_removed_) return;  // limbo recs stay readable (and allocated)
  for (Rec* r : limbo_) {
    r->state = Rec::State::Free;
    r->next = free_;
    free_ = r;
  }
  limbo_.clear();
}

}  // namespace psme
