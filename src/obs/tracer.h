// Trace session: one clock, one event ring per track (DESIGN.md §11).
//
// Track layout: track 0 is the engine/coordinator thread (cycle spans,
// Decide, chunk compiles, the §5.2 phases, serial task spans); tracks
// 1..N are the parallel matcher's workers 0..N-1 (task spans, steal
// attempts, parks, queue-depth samples). A pool's worker 0 is the same OS
// thread as the coordinator, but it gets its own track: what it does *as a
// scheduler worker* and *as the engine* are different timelines.
//
// Lifecycle rules (the ones that keep §10's zero-allocation guarantee):
//   * ensure_tracks() is quiescent-only — ParallelMatcher::prewarm() calls
//     it from the (single-threaded) constructor, before any worker runs.
//   * During a cycle each ring is written by exactly one thread; recording
//     is a clock read plus a bump-and-store into preallocated memory.
//   * Export (obs/export.h) is quiescent-only: it reads every ring after
//     the cycle's join, which carries the happens-before edge.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/event_ring.h"

namespace psme::obs {

struct TraceOptions {
  /// Master switch. Off costs one null-pointer test per potential event.
  bool enabled = false;
  /// Per-track ring capacity, in events (40 bytes each). Overflow drops.
  uint32_t ring_events = 1u << 15;
};

class Tracer {
 public:
  explicit Tracer(const TraceOptions& opts) : opts_(opts) {
    epoch_ = std::chrono::steady_clock::now();
    ensure_tracks(1);  // track 0 (engine) always exists
  }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Grows the track set to at least `n` rings. Quiescent-only.
  void ensure_tracks(size_t n) {
    while (rings_.size() < n) {
      rings_.push_back(std::make_unique<EventRing>(opts_.ring_events));
    }
  }

  [[nodiscard]] size_t tracks() const { return rings_.size(); }
  [[nodiscard]] EventRing& ring(size_t track) { return *rings_[track]; }
  [[nodiscard]] const EventRing& ring(size_t track) const {
    return *rings_[track];
  }
  [[nodiscard]] const TraceOptions& options() const { return opts_; }

  /// Nanoseconds since this tracer's epoch (monotonic, thread-safe).
  [[nodiscard]] uint64_t now_ns() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  [[nodiscard]] uint64_t total_events() const {
    uint64_t n = 0;
    for (const auto& r : rings_) n += r->size();
    return n;
  }
  [[nodiscard]] uint64_t total_dropped() const {
    uint64_t n = 0;
    for (const auto& r : rings_) n += r->dropped();
    return n;
  }

 private:
  TraceOptions opts_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<EventRing>> rings_;
};

/// RAII span: stamps the start time at construction, pushes one complete
/// event at destruction (or at end()). A null tracer disables it entirely,
/// so untraced call sites pay a single branch.
class Span {
 public:
  Span() = default;
  Span(Tracer* t, size_t track, EventKind kind, uint32_t node = 0)
      : t_(t), track_(static_cast<uint32_t>(track)), kind_(kind), node_(node) {
    if (t_ != nullptr) t0_ = t_->now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attaches/overrides the node payload (e.g. an id known only mid-span).
  void set_node(uint32_t node) { node_ = node; }

  /// Closes the span early (idempotent).
  void end() {
    if (t_ == nullptr) return;
    TraceEvent e;
    e.ts_ns = t0_;
    e.dur_ns = t_->now_ns() - t0_;
    e.kind = kind_;
    e.node = node_;
    t_->ring(track_).push(e);
    t_ = nullptr;
  }

 private:
  Tracer* t_ = nullptr;
  uint32_t track_ = 0;
  EventKind kind_ = EventKind::MatchCycle;
  uint32_t node_ = 0;
  uint64_t t0_ = 0;
};

/// The PSME_TRACE=<path> env hook: nullptr when unset or empty. Demos and
/// benches use it both to switch tracing on and as the export destination.
const char* env_trace_path();

}  // namespace psme::obs
