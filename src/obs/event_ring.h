// Per-worker event storage for the tracing layer (DESIGN.md §11).
//
// A ring is a fixed-size buffer of fixed-size POD events, preallocated
// before any worker runs (ParallelMatcher::prewarm / Tracer construction)
// and written by exactly one thread for its lifetime. This is what lets the
// tracing layer coexist with the §10 zero-allocation guarantee: recording an
// event is a bump-and-store, overflow DROPS the event and counts it (the
// buffer never grows), and reading happens only at quiescence — export, the
// end-of-run table — when no writer is inside a cycle.
//
// The name "ring" describes the recycling discipline, not overwrite
// semantics: clear() rewinds the ring so the same storage records the next
// window, but within a window the earliest events win and the tail is
// dropped. Keeping the prefix (rather than the suffix) means a trace always
// shows how a cycle *started* — the part the §6-style attribution needs —
// and makes the drop accounting a single counter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace psme::obs {

/// Every recordable occurrence. Spans carry a duration; instants and
/// counter samples have dur_ns == 0. The exporters own the kind -> name /
/// Chrome-phase mapping (export.h).
enum class EventKind : uint8_t {
  // -- spans (dur_ns meaningful) ------------------------------------------
  TaskExec = 0,   // one node activation: node = node id, v0..v3 = TaskStats
                  // (tests, probes, inserts, emits), flags = side/add bits
  MatchCycle,     // Engine::match(), the whole cycle
  DrainRemoves,   // parallel match: the removals drain
  DrainAdds,      // parallel match: the additions drain
  Elaborate,      // Soar: one elaboration phase (fires + matches)
  Decide,         // Soar: one decision
  Gc,             // Soar: context-reachability garbage collection
  ChunkBuild,     // chunker backtrace + variablization (node = result level)
  ChunkCompile,   // run-time production compile (node = first new node id)
  ProdRemove,     // run-time production removal (node = victim P-node id)
  UpdateA,        // §5.2 phase A: alpha-chain fill   (node = first new id)
  UpdateB,        // §5.2 phase B: shared-amem right fill
  UpdateC,        // §5.2 phase C: last-shared-node replay
  Park,           // Steal worker parked; span covers the sleep
  // -- instants (dur_ns == 0) ---------------------------------------------
  StealOk,        // successful cross-worker take; node = victim worker
  StealFail,      // one full failed sweep over all peers; v0 = peers probed
  // -- counter samples ----------------------------------------------------
  QueueDepth,     // v0 = owner deque depth right after an emit burst
};

/// Fixed-size POD record. 40 bytes: a 32K-event ring is 1.25 MiB per track.
struct TraceEvent {
  uint64_t ts_ns = 0;   // start time, ns since the Tracer's epoch
  uint64_t dur_ns = 0;  // span length; 0 for instants/counters
  EventKind kind = EventKind::TaskExec;
  uint8_t flags = 0;  // TaskExec: bit0 = add, bit1 = right side
  uint16_t reserved = 0;
  uint32_t node = 0;  // node id / victim worker / kind-specific
  uint32_t v0 = 0, v1 = 0, v2 = 0, v3 = 0;  // kind-specific payload
};
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "rings memcpy events; keep TraceEvent POD");
static_assert(sizeof(TraceEvent) == 40, "event size is part of ring sizing");

inline constexpr uint8_t kTaskFlagAdd = 1u << 0;
inline constexpr uint8_t kTaskFlagRight = 1u << 1;

/// Single-writer event buffer. push() never allocates and never blocks:
/// when the buffer is full the event is dropped and counted. Readers
/// (exporters, tests) run only at quiescence — after the writer's cycle has
/// joined — so no synchronization is needed beyond that lifecycle rule.
class EventRing {
 public:
  explicit EventRing(uint32_t capacity_events)
      : buf_(std::make_unique<TraceEvent[]>(
            capacity_events == 0 ? 1 : capacity_events)),
        cap_(capacity_events == 0 ? 1 : capacity_events) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Owner-thread only. Allocation-free; drops and counts on overflow.
  void push(const TraceEvent& e) {
    if (size_ == cap_) {
      ++dropped_;
      return;
    }
    buf_[size_++] = e;
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] size_t capacity() const { return cap_; }
  [[nodiscard]] uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const TraceEvent& operator[](size_t i) const {
    return buf_[i];
  }

  /// Rewinds the ring for the next recording window (quiescent-only). The
  /// drop counter is cumulative across windows: it answers "did this run
  /// ever lose events", which clear() must not erase.
  void clear() { size_ = 0; }

 private:
  std::unique_ptr<TraceEvent[]> buf_;
  uint32_t cap_;
  uint32_t size_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace psme::obs
