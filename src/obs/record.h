// Shared hot-path recording helpers that need rete types (Activation,
// TaskStats). Kept out of tracer.h so the core tracing header stays
// dependency-free; included only by the executors that record task spans
// (engine/trace.cpp, par/parallel_match.cpp).
#pragma once

#include "obs/tracer.h"
#include "rete/network.h"

namespace psme::obs {

/// Pushes one TaskExec span: `t0` is the start stamp taken before
/// Network::execute, `st` the per-task stats the context accumulated during
/// it (callers reset the context's stats before execute when tracing).
/// Allocation-free: one clock read plus an EventRing::push.
inline void record_task(Tracer& t, EventRing& ring, uint64_t t0,
                        const Activation& a, const TaskStats& st) {
  TraceEvent e;
  e.ts_ns = t0;
  e.dur_ns = t.now_ns() - t0;
  e.kind = EventKind::TaskExec;
  e.flags = static_cast<uint8_t>((a.add ? kTaskFlagAdd : 0) |
                                 (a.side == Side::Right ? kTaskFlagRight : 0));
  e.node = a.node;
  e.v0 = st.tests;
  e.v1 = st.probes;
  e.v2 = st.inserts;
  e.v3 = st.emits;
  ring.push(e);
}

/// Pushes an instant event (dur == 0) stamped now.
inline void record_instant(Tracer& t, EventRing& ring, EventKind kind,
                           uint32_t node = 0, uint32_t v0 = 0) {
  TraceEvent e;
  e.ts_ns = t.now_ns();
  e.kind = kind;
  e.node = node;
  e.v0 = v0;
  ring.push(e);
}

}  // namespace psme::obs
