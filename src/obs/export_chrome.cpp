// Chrome trace_event JSON serialization (see export.h for the contract).
//
// Format notes (Trace Event Format spec, "JSON Object Format"):
//   * ts/dur are microseconds; doubles are legal, so we keep the rings'
//     nanosecond precision as fractional µs.
//   * A complete event ("X") carries its own duration — no begin/end
//     pairing needed, which matches how rings record spans (one event
//     pushed at span close, start time inside).
//   * Events need not be sorted; Perfetto sorts on load. Rings are pushed
//     in end-time order, which is not start-time order for nested spans.
#include <cinttypes>

#include "obs/export.h"

namespace psme::obs {
namespace {

/// Chrome phase for a kind: span, instant or counter.
char phase_of(EventKind k) {
  switch (k) {
    case EventKind::StealOk:
    case EventKind::StealFail: return 'i';
    case EventKind::QueueDepth: return 'C';
    default: return 'X';
  }
}

void write_common(std::FILE* out, const char* name, char ph, size_t tid,
                  uint64_t ts_ns) {
  std::fprintf(out,
               "{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":1,\"tid\":%zu,"
               "\"ts\":%.3f",
               name, ph, tid, static_cast<double>(ts_ns) / 1e3);
}

void write_event(std::FILE* out, size_t tid, const TraceEvent& e) {
  const char ph = phase_of(e.kind);
  write_common(out, event_name(e.kind), ph, tid, e.ts_ns);
  if (ph == 'X') {
    std::fprintf(out, ",\"dur\":%.3f", static_cast<double>(e.dur_ns) / 1e3);
  }
  if (ph == 'i') std::fputs(",\"s\":\"t\"", out);
  switch (e.kind) {
    case EventKind::TaskExec:
      std::fprintf(out,
                   ",\"args\":{\"node\":%" PRIu32 ",\"tests\":%" PRIu32
                   ",\"probes\":%" PRIu32 ",\"inserts\":%" PRIu32
                   ",\"emits\":%" PRIu32 ",\"add\":%d,\"side\":\"%s\"}",
                   e.node, e.v0, e.v1, e.v2, e.v3,
                   (e.flags & kTaskFlagAdd) != 0 ? 1 : 0,
                   (e.flags & kTaskFlagRight) != 0 ? "R" : "L");
      break;
    case EventKind::StealOk:
      std::fprintf(out, ",\"args\":{\"victim\":%" PRIu32 "}", e.node);
      break;
    case EventKind::StealFail:
      std::fprintf(out, ",\"args\":{\"peers_probed\":%" PRIu32 "}", e.v0);
      break;
    case EventKind::QueueDepth:
      std::fprintf(out, ",\"args\":{\"depth\":%" PRIu32 "}", e.v0);
      break;
    case EventKind::ChunkCompile:
    case EventKind::UpdateA:
    case EventKind::UpdateB:
    case EventKind::UpdateC:
      std::fprintf(out, ",\"args\":{\"first_new_node\":%" PRIu32 "}", e.node);
      break;
    default:
      if (e.node != 0) {
        std::fprintf(out, ",\"args\":{\"node\":%" PRIu32 "}", e.node);
      }
      break;
  }
  std::fputc('}', out);
}

}  // namespace

const char* event_name(EventKind kind) {
  switch (kind) {
    case EventKind::TaskExec: return "task";
    case EventKind::MatchCycle: return "match";
    case EventKind::DrainRemoves: return "drain.removes";
    case EventKind::DrainAdds: return "drain.adds";
    case EventKind::Elaborate: return "elaborate";
    case EventKind::Decide: return "decide";
    case EventKind::Gc: return "gc";
    case EventKind::ChunkBuild: return "chunk.build";
    case EventKind::ChunkCompile: return "chunk.compile";
    case EventKind::ProdRemove: return "prod.remove";
    case EventKind::UpdateA: return "update.A";
    case EventKind::UpdateB: return "update.B";
    case EventKind::UpdateC: return "update.C";
    case EventKind::Park: return "park";
    case EventKind::StealOk: return "steal";
    case EventKind::StealFail: return "steal.fail";
    case EventKind::QueueDepth: return "queue_depth";
  }
  return "?";
}

void export_chrome_json(const Tracer& t, std::FILE* out) {
  std::fputs("{\"traceEvents\":[", out);
  bool first = true;
  auto sep = [&] {
    if (!first) std::fputc(',', out);
    first = false;
  };
  for (size_t tr = 0; tr < t.tracks(); ++tr) {
    sep();
    std::fprintf(out,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%zu,\"args\":{\"name\":\"",
                 tr);
    if (tr == 0) {
      std::fputs("engine", out);
    } else {
      std::fprintf(out, "worker %zu", tr - 1);
    }
    std::fputs("\"}}", out);
  }
  for (size_t tr = 0; tr < t.tracks(); ++tr) {
    const EventRing& ring = t.ring(tr);
    for (size_t i = 0; i < ring.size(); ++i) {
      sep();
      write_event(out, tr, ring[i]);
    }
  }
  std::fprintf(out,
               "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
               "\"tracks\":%zu,\"events\":%" PRIu64 ",\"dropped\":%" PRIu64
               "}}\n",
               t.tracks(), t.total_events(), t.total_dropped());
}

bool export_chrome_file(const Tracer& t, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace path %s\n", path);
    return false;
  }
  export_chrome_json(t, f);
  std::fclose(f);
  return true;
}

void export_env_trace(const Tracer& t, std::FILE* log) {
  const char* path = env_trace_path();
  if (path == nullptr) return;
  if (export_chrome_file(t, path) && log != nullptr) {
    std::fprintf(log,
                 "obs: wrote %" PRIu64 " events (%" PRIu64
                 " dropped) to %s — open in ui.perfetto.dev\n",
                 t.total_events(), t.total_dropped(), path);
  }
}

}  // namespace psme::obs
