#include "obs/metrics.h"

#include "base/arena.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "par/parallel_match.h"
#include "soar/kernel.h"

namespace psme::obs {

Metric& MetricsRegistry::slot(std::string_view name, MetricKind kind) {
  for (Metric& m : metrics_) {
    if (m.name == name) return m;
  }
  metrics_.push_back(Metric{std::string(name), kind, 0});
  return metrics_.back();
}

void MetricsRegistry::counter(std::string_view name, uint64_t v) {
  slot(name, MetricKind::Counter).value += v;
}

void MetricsRegistry::gauge(std::string_view name, uint64_t v) {
  Metric& m = slot(name, MetricKind::Gauge);
  m.kind = MetricKind::Gauge;
  m.value = v;
}

bool MetricsRegistry::has(std::string_view name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return true;
  }
  return false;
}

uint64_t MetricsRegistry::value(std::string_view name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) return m.value;
  }
  return 0;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const Metric& m : other.metrics_) {
    if (m.kind == MetricKind::Counter) {
      counter(m.name, m.value);
    } else {
      gauge(m.name, m.value);
    }
  }
}

MetricsRegistry MetricsRegistry::delta(const MetricsRegistry& base) const {
  MetricsRegistry out;
  for (const Metric& m : metrics_) {
    if (m.kind == MetricKind::Gauge) {
      out.gauge(m.name, m.value);
      continue;
    }
    const uint64_t b = base.value(m.name);
    out.counter(m.name, m.value >= b ? m.value - b : 0);
  }
  return out;
}

void collect(MetricsRegistry& m, const ParallelStats& st) {
  m.counter("par.tasks", st.tasks);
  m.counter("par.failed_pops", st.failed_pops);
  m.counter("par.queue_lock_spins", st.queue_lock_spins);
  m.counter("par.queue_lock_acquires", st.queue_lock_acquires);
  m.counter("par.steals", st.steals);
  m.counter("par.failed_steals", st.failed_steals);
  m.counter("par.failed_sweeps", st.failed_sweeps);
  m.counter("par.sweep_backoff_ns", st.sweep_backoff_ns);
  m.counter("par.parks", st.parks);
  m.counter("par.chain_inline", st.chain_inline);
  m.counter("par.chain_splits", st.chain_splits);
  // Consecutive-failed-sweep run lengths (see ParallelStats::sweep_hist):
  // the shape tells whether idle workers give up quickly (mass at 1-2, the
  // backoff ladder working) or grind through long runs before parking.
  static constexpr const char* kSweepHistNames[
      ParallelStats::kSweepHistBuckets] = {
      "par.sweep_hist_1",    "par.sweep_hist_2",    "par.sweep_hist_le4",
      "par.sweep_hist_le8",  "par.sweep_hist_le16", "par.sweep_hist_gt16"};
  for (size_t i = 0; i < ParallelStats::kSweepHistBuckets; ++i) {
    m.counter(kSweepHistNames[i], st.sweep_hist[i]);
  }
  m.gauge("par.pool_slabs", st.pool_slabs);
  m.counter("par.wall_us", static_cast<uint64_t>(st.wall_seconds * 1e6));
  collect(m, st.arena);
}

void collect(MetricsRegistry& m, const MatchStats& st) {
  m.counter("arena.spill_allocs", st.spill_allocs);
  m.counter("arena.spill_bytes", st.spill_bytes);
  m.counter("arena.chunks_allocated", st.chunks_allocated);
  m.counter("arena.chunks_freed", st.chunks_freed);
  m.gauge("arena.chunks_live", st.chunks_live);
  m.gauge("arena.sealed_pending", st.sealed_pending);
  m.gauge("arena.epoch", st.epoch);
}

void collect(MetricsRegistry& m, const SoarRunStats& st) {
  m.counter("soar.decisions", st.decisions);
  m.counter("soar.elab_cycles", st.elab_cycles);
  m.counter("soar.impasses", st.impasses);
  m.counter("soar.chunks_built", st.chunks_built);
  m.counter("soar.elaborate_ns", st.elaborate_ns);
  m.counter("soar.decide_ns", st.decide_ns);
  m.counter("soar.gc_ns", st.gc_ns);
  m.gauge("soar.goal_achieved", st.goal_achieved ? 1 : 0);
  uint64_t match_tasks = 0;
  for (const CycleTrace& t : st.traces) match_tasks += t.task_count();
  m.counter("soar.match_tasks", match_tasks);
  uint64_t update_tasks = 0;
  for (const CycleTrace& t : st.update_ab) update_tasks += t.task_count();
  for (const CycleTrace& t : st.update_c) update_tasks += t.task_count();
  m.counter("soar.update_tasks", update_tasks);
}

void collect(MetricsRegistry& m, const Tracer& t) {
  m.gauge("obs.tracks", t.tracks());
  m.counter("obs.events", t.total_events());
  m.counter("obs.events_dropped", t.total_dropped());
}

void collect(MetricsRegistry& m, const MatchProfiler& p) {
  // Reporting-time merge across shards (quiescent-only, like every collect).
  const ProfileSnapshot s = p.snapshot();
  m.gauge("prof.sample_shift", s.sample_shift);
  m.counter("prof.activations", s.total_activations);
  m.counter("prof.sampled", s.total_sampled);
  m.counter("prof.time_ns", s.total_time_ns);
}

}  // namespace psme::obs
