#include "obs/profiler.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace psme::obs {

void MatchProfiler::snapshot_into(ProfileSnapshot& out) const {
  out.sample_shift = shift_;
  out.total_activations = 0;
  out.total_sampled = 0;
  out.total_time_ns = 0;
  out.nodes.assign(node_capacity(), ProfileCell{});
  out.agents.assign(agent_capacity(), ProfileAgentCell{});
  for (const auto& s : shards_) {
    for (size_t i = 0; i < s->nodes.size(); ++i) {
      const ProfileCell& c = s->nodes[i];
      ProfileCell& o = out.nodes[i];
      o.activations += c.activations;
      o.sampled += c.sampled;
      o.time_ns += c.time_ns;
      o.emits += c.emits;
    }
    for (size_t i = 0; i < s->agents.size(); ++i) {
      const ProfileAgentCell& c = s->agents[i];
      ProfileAgentCell& o = out.agents[i];
      o.activations += c.activations;
      o.sampled += c.sampled;
      o.time_ns += c.time_ns;
    }
  }
  for (const ProfileCell& c : out.nodes) {
    out.total_activations += c.activations;
    out.total_sampled += c.sampled;
    out.total_time_ns += c.time_ns;
  }
}

void MatchProfiler::reset() {
  for (auto& s : shards_) {
    for (ProfileCell& c : s->nodes) c = ProfileCell{};
    for (ProfileAgentCell& c : s->agents) c = ProfileAgentCell{};
  }
}

void FlightRecorder::snapshot(const MetricsRegistry& m,
                              const MatchProfiler* prof, uint64_t marker) {
  FlightSnapshot& slot = ring_[count_ % ring_.size()];
  slot.seq = count_;
  slot.marker = marker;
  slot.metrics = m;  // vector assign: capacity reused after warm-up
  if (prof != nullptr) {
    prof->snapshot_into(slot.profile);
  } else {
    slot.profile = ProfileSnapshot{};
  }
  ++count_;
}

const FlightSnapshot& FlightRecorder::at(size_t i) const {
  // Chronological: the oldest retained slot is count_ - size(), and slots
  // live at seq % capacity.
  const uint64_t seq = count_ - size() + i;
  return ring_[seq % ring_.size()];
}

namespace {

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_us(std::string& out, double ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", ns / 1e3);
  out += buf;
}

}  // namespace

std::string FlightRecorder::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"flight\": {\"capacity\": ";
  append_u64(out, ring_.size());
  out += ", \"taken\": ";
  append_u64(out, count_);
  out += ", \"retained\": ";
  append_u64(out, size());
  out += "},\n  \"snapshots\": [";
  for (size_t i = 0; i < size(); ++i) {
    const FlightSnapshot& s = at(i);
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"seq\": ";
    append_u64(out, s.seq);
    out += ", \"marker\": ";
    append_u64(out, s.marker);
    out += ",\n     \"metrics\": {";
    bool first = true;
    for (const Metric& m : s.metrics.metrics()) {
      if (!first) out += ", ";
      first = false;
      out += '"';
      out += m.name;  // metric names are identifier-shaped; no escaping
      out += "\": ";
      append_u64(out, m.value);
    }
    out += "},\n     \"profile\": {\"sample_shift\": ";
    append_u64(out, s.profile.sample_shift);
    out += ", \"activations\": ";
    append_u64(out, s.profile.total_activations);
    out += ", \"sampled\": ";
    append_u64(out, s.profile.total_sampled);
    out += ", \"time_us\": ";
    append_us(out, static_cast<double>(s.profile.total_time_ns));
    out += ",\n      \"nodes\": [";
    bool fn = true;
    for (size_t n = 0; n < s.profile.nodes.size(); ++n) {
      const ProfileCell& c = s.profile.nodes[n];
      if (c.activations == 0) continue;
      if (!fn) out += ", ";
      fn = false;
      out += "{\"node\": ";
      append_u64(out, n);
      out += ", \"acts\": ";
      append_u64(out, c.activations);
      out += ", \"est_us\": ";
      append_us(out, ProfileSnapshot::est_ns(c));
      out += "}";
    }
    out += "],\n      \"agents\": [";
    bool fa = true;
    for (size_t a = 0; a < s.profile.agents.size(); ++a) {
      const ProfileAgentCell& c = s.profile.agents[a];
      if (c.activations == 0) continue;
      if (!fa) out += ", ";
      fa = false;
      out += "{\"agent\": ";
      append_u64(out, a);
      out += ", \"acts\": ";
      append_u64(out, c.activations);
      out += ", \"est_us\": ";
      append_us(out, ProfileSnapshot::est_ns(c));
      out += "}";
    }
    out += "]}}";
  }
  if (size() != 0) out += "\n  ";
  out += "]\n}\n";
  return out;
}

bool FlightRecorder::dump(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

const char* env_flight_path() {
  const char* p = std::getenv("PSME_FLIGHT");
  return p != nullptr && p[0] != '\0' ? p : nullptr;
}

}  // namespace psme::obs
