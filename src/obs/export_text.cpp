// Human-readable end-of-run output: the metrics table behind the demos'
// --stats flag and the per-track trace accounting. Quiescence-only, like
// every exporter (see export.h).
#include <cinttypes>

#include "obs/export.h"

namespace psme::obs {

void print_metrics_table(const MetricsRegistry& m, std::FILE* out) {
  size_t width = 0;
  for (const Metric& mt : m.metrics()) {
    if (mt.name.size() > width) width = mt.name.size();
  }
  std::fprintf(out, "%-*s  %-7s %14s\n", static_cast<int>(width), "metric",
               "kind", "value");
  for (const Metric& mt : m.metrics()) {
    std::fprintf(out, "%-*s  %-7s %14" PRIu64 "\n", static_cast<int>(width),
                 mt.name.c_str(),
                 mt.kind == MetricKind::Counter ? "counter" : "gauge",
                 mt.value);
  }
}

void print_trace_summary(const Tracer& t, std::FILE* out) {
  for (size_t tr = 0; tr < t.tracks(); ++tr) {
    const EventRing& r = t.ring(tr);
    char label[32];
    if (tr == 0) {
      std::snprintf(label, sizeof label, "engine");
    } else {
      std::snprintf(label, sizeof label, "worker %zu", tr - 1);
    }
    std::fprintf(out, "track %zu (%s): %zu/%zu events, %" PRIu64 " dropped\n",
                 tr, label, r.size(), r.capacity(), r.dropped());
  }
}

}  // namespace psme::obs
