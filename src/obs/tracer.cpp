#include "obs/tracer.h"

#include <cstdlib>

namespace psme::obs {

const char* env_trace_path() {
  const char* p = std::getenv("PSME_TRACE");
  return (p != nullptr && p[0] != '\0') ? p : nullptr;
}

}  // namespace psme::obs
