// Unified stats registry: every ad-hoc stats struct in the system
// (ParallelStats, MatchStats, SoarRunStats, the tracer's own accounting)
// dumps into one named-counter/gauge namespace with snapshot/delta
// semantics, so end-of-run tables, bench JSON and tests all read the same
// numbers through the same interface instead of copy-pasting field lists.
//
// Semantics:
//   * counter — monotone total. merge() adds; delta() subtracts.
//   * gauge   — point-in-time level. merge() overwrites; delta() keeps the
//               newer value (a gauge has no meaningful difference).
//
// The registry is a REPORTING-TIME structure: it allocates (names, vector
// growth) and is meant for end-of-run / per-phase boundaries, never for the
// per-task hot path. Hot-path accounting stays in the existing POD structs
// (that is what keeps the §10 zero-allocation guarantee); the registry is
// how those PODs become legible.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace psme {
struct ParallelStats;
struct MatchStats;
struct SoarRunStats;
}  // namespace psme

namespace psme::obs {

class Tracer;
class MatchProfiler;

enum class MetricKind : uint8_t { Counter, Gauge };

struct Metric {
  std::string name;  // dotted: "<group>.<field>", e.g. "par.failed_steals"
  MetricKind kind = MetricKind::Counter;
  uint64_t value = 0;
};

class MetricsRegistry {
 public:
  /// Adds `v` to the named counter (creating it at zero).
  void counter(std::string_view name, uint64_t v);
  /// Sets the named gauge to `v` (creating it).
  void gauge(std::string_view name, uint64_t v);

  [[nodiscard]] bool has(std::string_view name) const;
  /// 0 when absent — deltas and tables treat missing as zero.
  [[nodiscard]] uint64_t value(std::string_view name) const;

  /// Counters add, gauges overwrite (the newer level wins).
  void merge(const MetricsRegistry& other);

  /// A copy taken now; pair with delta() for before/after accounting.
  [[nodiscard]] MetricsRegistry snapshot() const { return *this; }

  /// this − base: counters subtract (saturating at 0 — a counter that went
  /// "backwards" means the base belongs to a different run, and a huge
  /// wrapped value would poison every table built from the delta); gauges
  /// keep this registry's value. Metrics absent from `base` count from 0.
  [[nodiscard]] MetricsRegistry delta(const MetricsRegistry& base) const;

  [[nodiscard]] const std::vector<Metric>& metrics() const { return metrics_; }
  [[nodiscard]] size_t size() const { return metrics_.size(); }

 private:
  Metric& slot(std::string_view name, MetricKind kind);

  std::vector<Metric> metrics_;  // insertion order; linear lookup (small N)
};

// ---- collectors: one per existing stats struct ---------------------------
// Each maps its struct's fields into a dotted group. Calling a collector
// twice accumulates counters (snapshot semantics are the caller's job).

/// "par.*" — scheduler traffic of one (or an accumulated) parallel cycle.
/// wall_seconds lands as the counter "par.wall_us".
void collect(MetricsRegistry& m, const ParallelStats& st);

/// "arena.*" — token-arena traffic and chunk-lifecycle gauges.
void collect(MetricsRegistry& m, const MatchStats& st);

/// "soar.*" — decisions, elaboration cycles, impasses, chunks, match and
/// §5.2 update task totals of a Soar run.
void collect(MetricsRegistry& m, const SoarRunStats& st);

/// "obs.*" — the tracing layer's own accounting (tracks, events, drops).
void collect(MetricsRegistry& m, const Tracer& t);

/// "prof.*" — the match profiler's merged totals (activations, timed
/// samples, sampled wall ns). Per-node/per-production detail stays in
/// analysis/profile_report.h; these three let a metrics table confirm the
/// profiler saw the run.
void collect(MetricsRegistry& m, const MatchProfiler& p);

}  // namespace psme::obs
