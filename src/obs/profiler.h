// Runtime match profiler (DESIGN.md §15): attributes executed activations,
// emitted children and nanosecond wall time to (node id, agent id), in
// per-worker cache-line-padded shards that are written lock-free on the
// match hot path and merged only at quiescence.
//
// Allocation discipline (the §10 guarantee must survive with profiling on):
//   * ensure_workers()/ensure_nodes()/ensure_agents() are quiescent-only —
//     ParallelMatcher calls them at the drain boundary of run_impl (next to
//     MatchState::ensure_alpha) and from prewarm(); the serial TraceExecutor
//     calls them at the top of its drain. Once the network and agent set
//     stop growing these are three integer compares per cycle.
//   * sample()/record() are the hot path: a shard-local tick, at most two
//     steady-clock reads, and a handful of array writes into preallocated
//     cells. No locks, no atomics — each shard is written by exactly one
//     worker during a cycle, and merges happen after the fork-join.
//
// Sampling (`sample_shift`): activation COUNTS are always exact; TIMING is
// taken on every 2^shift-th activation per worker (shift 0 = time all).
// Reports scale sampled time by activations/sampled per cell, so a resident
// multi-tenant server can keep the profiler always-on at, say, shift 6 and
// pay two clock reads per 64 activations.
//
// Node-id caveat: run-time production removal tombstones node ids and
// recycles the slots (rete/remove_production.cpp), so a cell indexed by a
// recycled id accumulates both tenants' numbers. Take snapshot()/reset()
// windows around churn when per-node attribution must be exact (bench_query
// does this for its per-CE costing).
//
// The flight recorder keeps the last N (metrics + profile) snapshots in a
// preallocated ring for post-hoc inspection of long-lived sessions without
// tracing overhead: SoarKernel snapshots it every `flight_every` decisions
// and PSME_FLIGHT=<path> dumps the retained window as JSON at end of run.
// Snapshot capture is a reporting-time operation (it copies into the slot,
// reusing capacity after warm-up) and runs only at quiescent decision
// boundaries, never inside a match cycle.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace psme::obs {

/// Per-(shard, node) counters. POD; merged by field-wise addition.
struct ProfileCell {
  uint64_t activations = 0;  // tasks executed at this node
  uint64_t sampled = 0;      // of those, how many were timed
  uint64_t time_ns = 0;      // wall ns summed over the sampled ones
  uint64_t emits = 0;        // child activations emitted
};

/// Per-(shard, agent) counters (node detail collapses per agent; the full
/// node × agent × worker matrix would not stay cache-resident at 64 agents).
struct ProfileAgentCell {
  uint64_t activations = 0;
  uint64_t sampled = 0;
  uint64_t time_ns = 0;
};

/// Merged view across all shards. Reused across captures: snapshot_into()
/// assigns element-wise into retained capacity.
struct ProfileSnapshot {
  uint32_t sample_shift = 0;
  uint64_t total_activations = 0;
  uint64_t total_sampled = 0;
  uint64_t total_time_ns = 0;            // over sampled activations only
  std::vector<ProfileCell> nodes;        // indexed by node id
  std::vector<ProfileAgentCell> agents;  // indexed by agent id

  /// Estimated full-time of a cell: sampled time scaled back up by the
  /// cell's own activation/sampled ratio (exact when shift == 0).
  [[nodiscard]] static double est_ns(const ProfileCell& c) {
    if (c.sampled == 0) return 0;
    return static_cast<double>(c.time_ns) *
           (static_cast<double>(c.activations) /
            static_cast<double>(c.sampled));
  }
  [[nodiscard]] static double est_ns(const ProfileAgentCell& c) {
    if (c.sampled == 0) return 0;
    return static_cast<double>(c.time_ns) *
           (static_cast<double>(c.activations) /
            static_cast<double>(c.sampled));
  }
};

/// Monotonic timestamp for profiling spans. Separate from Tracer::now_ns so
/// profiling works with tracing off; only differences are ever used.
[[nodiscard]] inline uint64_t profile_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class MatchProfiler {
 public:
  explicit MatchProfiler(uint32_t sample_shift = 0)
      : shift_(sample_shift > 63 ? 63 : sample_shift),
        mask_((uint64_t{1} << shift_) - 1) {
    ensure_workers(1);  // shard 0 (the serial/coordinator thread) always exists
  }
  MatchProfiler(const MatchProfiler&) = delete;
  MatchProfiler& operator=(const MatchProfiler&) = delete;

  [[nodiscard]] uint32_t sample_shift() const { return shift_; }
  [[nodiscard]] size_t workers() const { return shards_.size(); }
  [[nodiscard]] size_t node_capacity() const {
    return shards_.empty() ? 0 : shards_[0]->nodes.size();
  }
  [[nodiscard]] size_t agent_capacity() const {
    return shards_.empty() ? 0 : shards_[0]->agents.size();
  }

  // ---- quiescent-only growth (drain boundaries, prewarm) -----------------
  void ensure_workers(size_t n) {
    while (shards_.size() < n) {
      auto s = std::make_unique<Shard>();
      if (!shards_.empty()) {
        s->nodes.resize(shards_[0]->nodes.size());
        s->agents.resize(shards_[0]->agents.size());
      }
      shards_.push_back(std::move(s));
    }
  }
  void ensure_nodes(size_t n) {
    if (n <= node_capacity()) return;
    for (auto& s : shards_) s->nodes.resize(n);
  }
  void ensure_agents(size_t n) {
    if (n <= agent_capacity()) return;
    for (auto& s : shards_) s->agents.resize(n);
  }

  // ---- hot path (one writer per shard during a cycle) --------------------
  /// Pre-execute: advances the shard's sampling tick; true = time this one.
  [[nodiscard]] bool sample(size_t worker) {
    return (shards_[worker]->tick++ & mask_) == 0;
  }

  /// Post-execute: folds one task into the worker's shard. `dur_ns` is
  /// meaningful only when `timed` (callers pass 0 otherwise).
  void record(size_t worker, uint32_t node, uint32_t agent, bool timed,
              uint64_t dur_ns, uint64_t emits) {
    Shard& s = *shards_[worker];
    ProfileCell& c = s.nodes[node];
    ++c.activations;
    c.emits += emits;
    ProfileAgentCell& a = s.agents[agent];
    ++a.activations;
    if (timed) {
      ++c.sampled;
      c.time_ns += dur_ns;
      ++a.sampled;
      a.time_ns += dur_ns;
    }
  }

  // ---- quiescent-only reads ----------------------------------------------
  /// Merges every shard into `out`, reusing its capacity.
  void snapshot_into(ProfileSnapshot& out) const;
  [[nodiscard]] ProfileSnapshot snapshot() const {
    ProfileSnapshot s;
    snapshot_into(s);
    return s;
  }
  /// Zeroes every cell (capacity retained). Sampling ticks keep running.
  void reset();

 private:
  struct alignas(64) Shard {
    uint64_t tick = 0;  // sampling counter; never reset (phase-free)
    std::vector<ProfileCell> nodes;
    std::vector<ProfileAgentCell> agents;
  };

  uint32_t shift_;
  uint64_t mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// One retained flight-recorder entry.
struct FlightSnapshot {
  uint64_t seq = 0;     // 0-based capture index (monotonic over the run)
  uint64_t marker = 0;  // caller-supplied position (Soar: decision count)
  MetricsRegistry metrics;
  ProfileSnapshot profile;
};

/// Bounded ring of (metrics, profile) snapshots: capacity slots allocated up
/// front, overwritten round-robin, so a long-lived session retains exactly
/// the last `capacity` captures. Single-writer, quiescent-only (the §11
/// read rules), reporting-time allocation only (slot reuse after warm-up).
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] size_t capacity() const { return ring_.size(); }
  /// Snapshots retained (== min(count, capacity)).
  [[nodiscard]] size_t size() const {
    return count_ < ring_.size() ? static_cast<size_t>(count_) : ring_.size();
  }
  /// Snapshots ever taken (overwritten ones included).
  [[nodiscard]] uint64_t count() const { return count_; }

  /// Captures `m` plus (when non-null) `prof`'s merged profile into the
  /// oldest slot. Quiescent-only.
  void snapshot(const MetricsRegistry& m, const MatchProfiler* prof,
                uint64_t marker);

  /// Retained snapshots in chronological order: 0 = oldest, size()-1 =
  /// newest.
  [[nodiscard]] const FlightSnapshot& at(size_t i) const;

  /// Deterministic JSON of the retained window (schema in DESIGN.md §15).
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`. Returns false on IO failure.
  bool dump(const char* path) const;

 private:
  std::vector<FlightSnapshot> ring_;
  uint64_t count_ = 0;
};

/// The PSME_FLIGHT=<path> env hook: nullptr when unset or empty. SoarKernel
/// arms its per-decision flight recorder when this is set and dumps the
/// retained window there at the end of run() (same shape as PSME_TRACE).
const char* env_flight_path();

}  // namespace psme::obs
