// Quiescence-only exporters for the tracing/metrics layer.
//
//   export_chrome_json — serializes every ring into Chrome trace_event
//     JSON (the JSON Array Format wrapped in {"traceEvents": ...}), loadable
//     in Perfetto (ui.perfetto.dev) and chrome://tracing. Spans become
//     complete ("X") events, steal attempts become instants ("i"),
//     queue-depth samples become counter ("C") series; each track gets a
//     thread_name metadata record plus a drop-accounting summary in
//     "otherData".
//   print_metrics_table — the human-readable end-of-run table of a
//     MetricsRegistry (what the demos' --stats flag prints).
//   print_trace_summary — one line per track: events recorded / dropped.
//
// All of these read rings and registries without synchronization; the
// caller must be at quiescence (no match cycle in flight) — the same
// contract as TokenArena::reclaim_at_quiescence. See DESIGN.md §11.
#pragma once

#include <cstdio>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace psme::obs {

/// Stable display name of an event kind ("task", "match", "update.A", ...).
const char* event_name(EventKind kind);

/// Writes the whole trace as Chrome trace_event JSON to `out`.
void export_chrome_json(const Tracer& t, std::FILE* out);

/// Convenience: export_chrome_json into `path`. Returns false (and prints
/// to stderr) when the file cannot be opened.
bool export_chrome_file(const Tracer& t, const char* path);

/// If the PSME_TRACE env hook is set, exports there and reports the path on
/// `log` (may be null). No-op without the env var.
void export_env_trace(const Tracer& t, std::FILE* log = stderr);

/// Aligned name/kind/value table, one metric per line.
void print_metrics_table(const MetricsRegistry& m, std::FILE* out);

/// Per-track recorded/dropped accounting.
void print_trace_summary(const Tracer& t, std::FILE* out);

}  // namespace psme::obs
