#include "tasks/registry.h"

#include <stdexcept>

#include "analysis/profile_report.h"
#include "obs/export.h"

namespace psme {

Task make_task(std::string_view name) {
  if (name == "eight-puzzle") return make_eight_puzzle();
  if (name == "strips") return make_strips();
  if (name == "cypress") return make_cypress();
  throw std::invalid_argument("unknown task: " + std::string(name));
}

std::vector<std::string> task_names() {
  return {"eight-puzzle", "strips", "cypress"};
}

TaskRunResult run_task(const Task& task, bool learning,
                       const std::vector<std::string>* extra_chunk_texts,
                       EngineOptions engine_opts) {
  SoarOptions opts;
  opts.learning = learning;
  opts.max_decisions = task.max_decisions;
  opts.engine = engine_opts;
  SoarKernel kernel(opts);
  kernel.load_productions(task.productions);
  if (extra_chunk_texts != nullptr) {
    for (const std::string& text : *extra_chunk_texts) {
      kernel.load_productions(text);
    }
  }
  task.init(kernel);

  TaskRunResult res;
  res.production_count = kernel.engine().productions().size();
  res.stats = kernel.run();
  obs::collect(res.metrics, res.stats);
  kernel.engine().collect_metrics(res.metrics);
  if (kernel.engine().profiler() != nullptr) {
    // Snapshot before teardown; the run is quiescent here. The document is
    // named after the task so a later `network_lint --profile` run joins it
    // against the same task's static cost table by production name.
    const analysis::ProfileReport rep = analysis::build_profile_report(
        kernel.engine().net(), kernel.engine().all_records(),
        kernel.engine().profiler()->snapshot());
    res.profile_json = analysis::profile_json(task.name, rep);
  }
  if (kernel.engine().tracer() != nullptr) {
    // Export before the kernel (and its rings) is torn down. The run is
    // quiescent here — export may read every ring.
    obs::export_env_trace(*kernel.engine().tracer());
  }
  return res;
}

}  // namespace psme
