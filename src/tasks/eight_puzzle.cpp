// Eight-Puzzle-Soar: 71 productions.
//
// Representation (triples): a state <s> owns nine bindings; each binding
// pairs a cell with a tile; cell adjacency and tile identities are static
// level-1 structure; the desired configuration hangs off the goal. Operators
// slide one adjacent tile into the blank cell. Operator selection ties are
// resolved in a selection subgoal whose evaluation productions create best /
// reject / indifferent preferences at the top level — those are the results
// chunking turns into new productions.
#include <array>
#include <cassert>
#include <sstream>
#include <string>

#include "tasks/registry.h"

namespace psme {
namespace {

/// Shared context prefix for productions matching the top-level task state.
constexpr const char* kCtx =
    "  (wme ^id <g> ^attr problem-space ^value eight-puzzle)\n"
    "  (wme ^id <g> ^attr state ^value <s>)\n";

void core_productions(std::ostringstream& os, int& count) {
  // Operator proposal: slide any tile adjacent to the blank into the blank.
  os << R"((p propose-move
)" << kCtx
     << R"(  (wme ^id <s> ^attr binding ^value <bb>)
  (wme ^id <bb> ^attr tile ^value <blank>)
  (wme ^id <blank> ^attr kind ^value blank)
  (wme ^id <bb> ^attr cell ^value <bc>)
  (wme ^id <bc> ^attr adj ^value <ac>)
  (wme ^id <s> ^attr binding ^value <ab>)
  (wme ^id <ab> ^attr cell ^value <ac>)
  (wme ^id <ab> ^attr tile ^value <t>)
  (wme ^id <t> ^attr kind ^value tile)
  -->
  (bind <o> (genatom o))
  (make wme ^id <o> ^attr name ^value move-tile)
  (make wme ^id <o> ^attr tile ^value <t>)
  (make wme ^id <o> ^attr from ^value <ac>)
  (make wme ^id <o> ^attr to ^value <bc>)
  (make wme ^id <o> ^attr for-state ^value <s>)
  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable))
)";
  ++count;

  // Operator application: build the successor state over several firings.
  os << R"((p apply-create-state
  (wme ^id <g> ^attr operator ^value <o>)
  (wme ^id <g> ^attr state ^value <s>)
  (wme ^id <o> ^attr for-state ^value <s>)
  (wme ^id <o> ^attr tile ^value <t>)
  -->
  (bind <ns> (genatom s))
  (make wme ^id <ns> ^attr prev ^value <s>)
  (make wme ^id <ns> ^attr last-moved ^value <t>)
  (make pref ^gid <g> ^sid <s> ^role state ^value <ns> ^kind acceptable))
)";
  ++count;

  os << R"((p apply-copy-binding
  (wme ^id <g> ^attr operator ^value <o>)
  (wme ^id <g> ^attr state ^value <s>)
  (wme ^id <o> ^attr for-state ^value <s>)
  (wme ^id <o> ^attr from ^value <from>)
  (wme ^id <o> ^attr to ^value <to>)
  (wme ^id <ns> ^attr prev ^value <s>)
  (wme ^id <s> ^attr binding ^value <b>)
  (wme ^id <b> ^attr cell ^value { <c> <> <from> <> <to> })
  (wme ^id <b> ^attr tile ^value <t2>)
  -->
  (bind <nb> (genatom b))
  (make wme ^id <ns> ^attr binding ^value <nb>)
  (make wme ^id <nb> ^attr cell ^value <c>)
  (make wme ^id <nb> ^attr tile ^value <t2>))
)";
  ++count;

  os << R"((p apply-place-tile
  (wme ^id <g> ^attr operator ^value <o>)
  (wme ^id <g> ^attr state ^value <s>)
  (wme ^id <o> ^attr for-state ^value <s>)
  (wme ^id <o> ^attr tile ^value <t>)
  (wme ^id <o> ^attr to ^value <to>)
  (wme ^id <ns> ^attr prev ^value <s>)
  -->
  (bind <nb> (genatom b))
  (make wme ^id <ns> ^attr binding ^value <nb>)
  (make wme ^id <nb> ^attr cell ^value <to>)
  (make wme ^id <nb> ^attr tile ^value <t>))
)";
  ++count;

  os << R"((p apply-place-blank
  (wme ^id <g> ^attr operator ^value <o>)
  (wme ^id <g> ^attr state ^value <s>)
  (wme ^id <o> ^attr for-state ^value <s>)
  (wme ^id <o> ^attr from ^value <from>)
  (wme ^id <blank> ^attr kind ^value blank)
  (wme ^id <ns> ^attr prev ^value <s>)
  -->
  (bind <nb> (genatom b))
  (make wme ^id <ns> ^attr binding ^value <nb>)
  (make wme ^id <nb> ^attr cell ^value <from>)
  (make wme ^id <nb> ^attr tile ^value <blank>))
)";
  ++count;

  // Goal detection: mismatches computed per state, success two cycles later
  // so every mismatch wme is in place before the negated test runs.
  os << R"((p detect-mismatch
)" << kCtx
     << R"(  (wme ^id <g> ^attr desired ^value <d>)
  (wme ^id <d> ^attr binding ^value <db>)
  (wme ^id <db> ^attr cell ^value <c>)
  (wme ^id <db> ^attr tile ^value <t>)
  (wme ^id <s> ^attr binding ^value <b>)
  (wme ^id <b> ^attr cell ^value <c>)
  (wme ^id <b> ^attr tile ^value { <t2> <> <t> })
  -->
  (make wme ^id <s> ^attr mismatch ^value <c>))
)";
  ++count;

  os << R"((p mark-phase1
)" << kCtx
     << R"(  (wme ^id <s> ^attr binding ^value <b>)
  -->
  (make wme ^id <s> ^attr phase1 ^value yes))
)";
  ++count;

  os << R"((p mark-phase2
)" << kCtx
     << R"(  (wme ^id <s> ^attr phase1 ^value yes)
  -->
  (make wme ^id <s> ^attr phase2 ^value yes))
)";
  ++count;

  os << R"((p detect-success
)" << kCtx
     << R"(  (wme ^id <s> ^attr phase2 ^value yes)
  -(wme ^id <s> ^attr mismatch)
  -->
  (make wme ^id <g> ^attr success ^value yes))
)";
  ++count;

  // Selection subgoal: default indifference keeps every tie resolvable.
  // The evaluation tests the blank position and the moved tile's identity
  // (numeric features, so they stay constant in chunks): each evaluated
  // situation yields its own search-control chunk, as in the paper's runs.
  os << R"((p eval-default
  (wme ^id <sg> ^attr impasse ^value tie)
  (wme ^id <sg> ^attr object ^value <g>)
  (wme ^id <sg> ^attr item ^value <o>)
  (wme ^id <g> ^attr state ^value <s>)
  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)
  (wme ^id <s> ^attr blank-at ^value <k>)
  (wme ^id <o> ^attr tile ^value <t>)
  (wme ^id <t> ^attr tile-id ^value <n>)
  (wme ^id <o> ^attr from ^value <fc>)
  (wme ^id <fc> ^attr cell-id ^value <fk>)
  -->
  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind indifferent))
)";
  ++count;

  // Reject the move that undoes the previous one.
  os << R"((p eval-reject-undo
  (wme ^id <sg> ^attr impasse ^value tie)
  (wme ^id <sg> ^attr object ^value <g>)
  (wme ^id <sg> ^attr item ^value <o>)
  (wme ^id <g> ^attr state ^value <s>)
  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)
  (wme ^id <o> ^attr tile ^value <t>)
  (wme ^id <o> ^attr from ^value <fc>)
  (wme ^id <fc> ^attr cell-id ^value <fk>)
  (wme ^id <o> ^attr to ^value <tc>)
  (wme ^id <tc> ^attr cell-id ^value <tk>)
  (wme ^id <s> ^attr last-moved ^value <t>)
  -->
  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind reject))
)";
  ++count;

  // Generic "this move completes a tile" evaluation.
  os << R"((p eval-good-generic
  (wme ^id <sg> ^attr impasse ^value tie)
  (wme ^id <sg> ^attr object ^value <g>)
  (wme ^id <sg> ^attr item ^value <o>)
  (wme ^id <g> ^attr state ^value <s>)
  (wme ^id <g> ^attr desired ^value <d>)
  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)
  (wme ^id <o> ^attr tile ^value <t>)
  (wme ^id <o> ^attr to ^value <to>)
  (wme ^id <d> ^attr binding ^value <db>)
  (wme ^id <db> ^attr cell ^value <to>)
  (wme ^id <db> ^attr tile ^value <t>)
  -->
  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind best))
)";
  ++count;
}

void generated_productions(std::ostringstream& os, int& count) {
  // Per-tile best evaluations: the specialized form also tests the state
  // elaborations (at-K wmes), so the chunks built from them backtrace into
  // the monitor productions and grow realistically long condition lists.
  for (int k = 1; k <= 8; ++k) {
    os << "(p eval-good-tile-" << k << "\n"
       << "  (wme ^id <sg> ^attr impasse ^value tie)\n"
          "  (wme ^id <sg> ^attr object ^value <g>)\n"
          "  (wme ^id <sg> ^attr item ^value <o>)\n"
          "  (wme ^id <g> ^attr state ^value <s>)\n"
          "  (wme ^id <g> ^attr desired ^value <d>)\n"
          "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "acceptable)\n"
          "  (wme ^id <o> ^attr tile ^value <t>)\n"
       << "  (wme ^id <t> ^attr tile-id ^value " << k << ")\n"
       << "  (wme ^id <o> ^attr to ^value <to>)\n"
       << "  (wme ^id <o> ^attr from ^value <fc>)\n"
          "  (wme ^id <fc> ^attr cell-id ^value <fk>)\n"
          "  (wme ^id <s> ^attr at ^value <av>)\n"
          "  (wme ^id <av> ^attr cell ^value <to>)\n"
          "  (wme ^id <d> ^attr binding ^value <db>)\n"
          "  (wme ^id <db> ^attr cell ^value <to>)\n"
          "  (wme ^id <db> ^attr tile ^value <t>)\n"
          "  -->\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "best))\n";
    ++count;
  }

  // Per-tile displacement rejection: do not move a correctly-placed tile.
  for (int k = 1; k <= 8; ++k) {
    os << "(p eval-reject-displace-" << k << "\n"
       << "  (wme ^id <sg> ^attr impasse ^value tie)\n"
          "  (wme ^id <sg> ^attr object ^value <g>)\n"
          "  (wme ^id <sg> ^attr item ^value <o>)\n"
          "  (wme ^id <g> ^attr state ^value <s>)\n"
          "  (wme ^id <g> ^attr desired ^value <d>)\n"
          "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "acceptable)\n"
          "  (wme ^id <o> ^attr tile ^value <t>)\n"
       << "  (wme ^id <t> ^attr tile-id ^value " << k << ")\n"
       << "  (wme ^id <o> ^attr from ^value <from>)\n"
          "  (wme ^id <from> ^attr cell-id ^value <fk>)\n"
          "  (wme ^id <o> ^attr to ^value <tc>)\n"
          "  (wme ^id <tc> ^attr cell-id ^value <tk>)\n"
          "  (wme ^id <d> ^attr binding ^value <db>)\n"
          "  (wme ^id <db> ^attr cell ^value <from>)\n"
          "  (wme ^id <db> ^attr tile ^value <t>)\n"
          "  -->\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "reject))\n";
    ++count;
  }

  // Per-cell monitors: state elaborations naming the tile occupying each
  // cell. Their instantiations are the per-cycle parallel work, and chunks
  // backtrace through them.
  for (int k = 1; k <= 9; ++k) {
    os << "(p monitor-cell-" << k << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr binding ^value <b>)\n"
          "  (wme ^id <b> ^attr cell ^value <c>)\n"
       << "  (wme ^id <c> ^attr cell-id ^value " << k << ")\n"
       << "  (wme ^id <b> ^attr tile ^value <t>)\n"
          "  -->\n"
          "  (bind <av> (genatom a))\n"
          "  (make wme ^id <s> ^attr at ^value <av>)\n"
          "  (make wme ^id <av> ^attr cell ^value <c>)\n"
          "  (make wme ^id <av> ^attr tile ^value <t>))\n";
    ++count;
  }

  // Line monitors (rows, columns, diagonals): longer-chain productions that
  // recognize a completed line of the desired configuration.
  static constexpr std::array<std::array<int, 3>, 8> kLines = {{{1, 2, 3},
                                                                {4, 5, 6},
                                                                {7, 8, 9},
                                                                {1, 4, 7},
                                                                {2, 5, 8},
                                                                {3, 6, 9},
                                                                {1, 5, 9},
                                                                {3, 5, 7}}};
  for (size_t li = 0; li < kLines.size(); ++li) {
    os << "(p monitor-line-" << li + 1 << "\n"
       << kCtx << "  (wme ^id <g> ^attr desired ^value <d>)\n";
    for (int j = 0; j < 3; ++j) {
      const int cell = kLines[li][static_cast<size_t>(j)];
      os << "  (wme ^id <s> ^attr binding ^value <b" << j << ">)\n"
         << "  (wme ^id <b" << j << "> ^attr cell ^value <c" << j << ">)\n"
         << "  (wme ^id <c" << j << "> ^attr cell-id ^value " << cell << ")\n"
         << "  (wme ^id <b" << j << "> ^attr tile ^value <t" << j << ">)\n"
         << "  (wme ^id <d> ^attr binding ^value <db" << j << ">)\n"
         << "  (wme ^id <db" << j << "> ^attr cell ^value <c" << j << ">)\n"
         << "  (wme ^id <db" << j << "> ^attr tile ^value <t" << j << ">)\n";
    }
    os << "  -->\n  (make wme ^id <s> ^attr line-done ^value line-" << li + 1
       << "))\n";
    ++count;
  }

  // Blank-position elaboration.
  os << R"((p elaborate-blank-pos
)" << kCtx
     << R"(  (wme ^id <s> ^attr binding ^value <b>)
  (wme ^id <b> ^attr tile ^value <blank>)
  (wme ^id <blank> ^attr kind ^value blank)
  (wme ^id <b> ^attr cell ^value <c>)
  (wme ^id <c> ^attr cell-id ^value <k>)
  -->
  (make wme ^id <s> ^attr blank-at ^value <k>))
)";
  ++count;

  // Per-tile placement notes (placed-K), used by the pad monitors below.
  for (int k = 1; k <= 8; ++k) {
    os << "(p monitor-placed-" << k << "\n"
       << kCtx << "  (wme ^id <g> ^attr desired ^value <d>)\n"
       << "  (wme ^id <s> ^attr binding ^value <b>)\n"
          "  (wme ^id <b> ^attr cell ^value <c>)\n"
          "  (wme ^id <b> ^attr tile ^value <t>)\n"
       << "  (wme ^id <t> ^attr tile-id ^value " << k << ")\n"
       << "  (wme ^id <d> ^attr binding ^value <db>)\n"
          "  (wme ^id <db> ^attr cell ^value <c>)\n"
          "  (wme ^id <db> ^attr tile ^value <t>)\n"
          "  -->\n"
       << "  (make wme ^id <s> ^attr placed ^value " << k << "))\n";
    ++count;
  }
}

void pad_productions(std::ostringstream& os, int& count, int target) {
  // Auxiliary two-cell pattern monitors: realistic state elaborations that
  // bring the production count to the paper's 71.
  static constexpr std::array<std::array<int, 2>, 12> kPairs = {
      {{1, 2}, {2, 3}, {4, 5}, {5, 6}, {7, 8}, {8, 9},
       {1, 4}, {4, 7}, {2, 5}, {5, 8}, {3, 6}, {6, 9}}};
  for (size_t i = 0; count < target; ++i) {
    os << "(p monitor-pair-" << i + 1 << "\n"
       << kCtx;
    for (int j = 0; j < 2; ++j) {
      const int cell = kPairs[i % kPairs.size()][static_cast<size_t>(j)];
      os << "  (wme ^id <s> ^attr binding ^value <b" << j << ">)\n"
         << "  (wme ^id <b" << j << "> ^attr cell ^value <c" << j << ">)\n"
         << "  (wme ^id <c" << j << "> ^attr cell-id ^value " << cell << ")\n"
         << "  (wme ^id <b" << j << "> ^attr tile ^value <t" << j << ">)\n";
    }
    os << "  -->\n  (make wme ^id <s> ^attr pair-seen ^value pair-" << i + 1
       << "))\n";
    ++count;
  }
}

}  // namespace

Task make_eight_puzzle() {
  Task task;
  task.name = "eight-puzzle";
  task.max_decisions = 120;

  std::ostringstream os;
  int count = 0;
  core_productions(os, count);
  generated_productions(os, count);
  pad_productions(os, count, 71);
  assert(count == 71);
  task.productions = os.str();

  task.init = [](SoarKernel& k) {
    SymbolTable& syms = k.engine().syms();
    // Static level-1 structure: cells, adjacency, tiles.
    std::array<Symbol, 10> cell{}, tile{};
    for (int i = 1; i <= 9; ++i) {
      cell[static_cast<size_t>(i)] = k.make_id("c", 1);
      k.add_triple(cell[static_cast<size_t>(i)], "cell-id",
                   Value(static_cast<int64_t>(i)));
    }
    auto adj = [&](int a, int b) {
      k.add_triple(cell[static_cast<size_t>(a)], "adj",
                   Value(cell[static_cast<size_t>(b)]));
      k.add_triple(cell[static_cast<size_t>(b)], "adj",
                   Value(cell[static_cast<size_t>(a)]));
    };
    adj(1, 2); adj(2, 3); adj(4, 5); adj(5, 6); adj(7, 8); adj(8, 9);
    adj(1, 4); adj(4, 7); adj(2, 5); adj(5, 8); adj(3, 6); adj(6, 9);

    for (int i = 0; i <= 8; ++i) {
      tile[static_cast<size_t>(i)] = k.make_id("t", 1);
      k.add_triple(tile[static_cast<size_t>(i)], "tile-id",
                   Value(static_cast<int64_t>(i)));
      k.add_triple(tile[static_cast<size_t>(i)], "kind",
                   Value(syms.intern(i == 0 ? "blank" : "tile")));
    }

    // Goal configuration: tiles 1..8 on cells 1..8, blank on cell 9.
    std::array<int, 10> board{};  // board[cell] = tile id (0 = blank)
    for (int c = 1; c <= 8; ++c) board[static_cast<size_t>(c)] = c;
    board[9] = 0;

    const Symbol desired = k.make_id("d", 1);
    for (int c = 1; c <= 9; ++c) {
      const Symbol db = k.make_id("b", 1);
      k.add_triple(desired, "binding", Value(db));
      k.add_triple(db, "cell", Value(cell[static_cast<size_t>(c)]));
      k.add_triple(db, "tile",
                   Value(tile[static_cast<size_t>(board[static_cast<size_t>(c)])]));
    }

    // Scramble from the goal with a fixed legal move sequence (each step
    // slides the tile in the named cell into the current blank cell).
    int blank = 9;
    for (const int from : {8, 5, 4, 1, 2, 5, 6, 9}) {
      board[static_cast<size_t>(blank)] = board[static_cast<size_t>(from)];
      board[static_cast<size_t>(from)] = 0;
      blank = from;
    }

    const Symbol s0 = k.make_id("s", 1);
    for (int c = 1; c <= 9; ++c) {
      const Symbol b = k.make_id("b", 1);
      k.add_triple(s0, "binding", Value(b));
      k.add_triple(b, "cell", Value(cell[static_cast<size_t>(c)]));
      k.add_triple(b, "tile",
                   Value(tile[static_cast<size_t>(board[static_cast<size_t>(c)])]));
    }

    const Symbol g =
        k.create_top_goal(syms.intern("eight-puzzle"), s0);
    k.add_triple(g, "desired", Value(desired));
    k.set_goal_test([](SoarKernel& kk) {
      return kk.has_triple_attr("success", "yes");
    });
  };
  return task;
}

}  // namespace psme
