// Strips-Soar: 105 productions. Robot planning after Fikes/Hart/Nilsson:
// rooms in a corridor, doors that can be opened, boxes to push. The
// monitor-strips-state productions reproduce Figure 6-7's long-chain
// phenomenon: single productions whose CE chains run through every door and
// box in the world model.
#include <array>
#include <cassert>
#include <sstream>
#include <string>

#include "tasks/registry.h"

namespace psme {
namespace {

constexpr int kRooms = 12;  // corridor r1 - r2 - ... - r12, doors d1..d11
constexpr int kDoors = kRooms - 1;
constexpr int kBoxes = 4;

constexpr const char* kCtx =
    "  (wme ^id <g> ^attr problem-space ^value strips)\n"
    "  (wme ^id <g> ^attr state ^value <s>)\n";

// Shared prefix for evaluation productions inside the tie subgoal.
constexpr const char* kEvalCtx =
    "  (wme ^id <sg> ^attr impasse ^value tie)\n"
    "  (wme ^id <sg> ^attr object ^value <g>)\n"
    "  (wme ^id <sg> ^attr item ^value <o>)\n"
    "  (wme ^id <g> ^attr state ^value <s>)\n"
    "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)\n";

void proposal_productions(std::ostringstream& os, int& count) {
  // open-door: robot beside a closed door.
  for (const char* side : {"room-a", "room-b"}) {
    os << "(p propose-open-" << side << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr robot-at ^value <r>)\n"
          "  (wme ^id <d> ^attr "
       << side
       << " ^value <r>)\n"
          "  (wme ^id <s> ^attr door-st ^value <ds>)\n"
          "  (wme ^id <ds> ^attr door ^value <d>)\n"
          "  (wme ^id <ds> ^attr status ^value closed)\n"
          "  -->\n"
          "  (bind <o> (genatom o))\n"
          "  (make wme ^id <o> ^attr name ^value open-door)\n"
          "  (make wme ^id <o> ^attr door ^value <d>)\n"
          "  (make wme ^id <o> ^attr for-state ^value <s>)\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "acceptable))\n";
    ++count;
  }
  // go-thru in both directions.
  for (const auto& [from, to] : std::array<std::array<const char*, 2>, 2>{
           {{"room-a", "room-b"}, {"room-b", "room-a"}}}) {
    os << "(p propose-go-" << from << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr robot-at ^value <r>)\n"
          "  (wme ^id <d> ^attr "
       << from
       << " ^value <r>)\n"
          "  (wme ^id <d> ^attr "
       << to
       << " ^value <r2>)\n"
          "  (wme ^id <s> ^attr door-st ^value <ds>)\n"
          "  (wme ^id <ds> ^attr door ^value <d>)\n"
          "  (wme ^id <ds> ^attr status ^value open)\n"
          "  -->\n"
          "  (bind <o> (genatom o))\n"
          "  (make wme ^id <o> ^attr name ^value go-thru)\n"
          "  (make wme ^id <o> ^attr door ^value <d>)\n"
          "  (make wme ^id <o> ^attr to-room ^value <r2>)\n"
          "  (make wme ^id <o> ^attr for-state ^value <s>)\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "acceptable))\n";
    ++count;
  }
  // push-thru in both directions.
  for (const auto& [from, to] : std::array<std::array<const char*, 2>, 2>{
           {{"room-a", "room-b"}, {"room-b", "room-a"}}}) {
    os << "(p propose-push-" << from << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr robot-at ^value <r>)\n"
          "  (wme ^id <s> ^attr box-loc ^value <bl>)\n"
          "  (wme ^id <bl> ^attr room ^value <r>)\n"
          "  (wme ^id <bl> ^attr box ^value <b>)\n"
          "  (wme ^id <d> ^attr "
       << from
       << " ^value <r>)\n"
          "  (wme ^id <d> ^attr "
       << to
       << " ^value <r2>)\n"
          "  (wme ^id <s> ^attr door-st ^value <ds>)\n"
          "  (wme ^id <ds> ^attr door ^value <d>)\n"
          "  (wme ^id <ds> ^attr status ^value open)\n"
          "  -->\n"
          "  (bind <o> (genatom o))\n"
          "  (make wme ^id <o> ^attr name ^value push-thru)\n"
          "  (make wme ^id <o> ^attr door ^value <d>)\n"
          "  (make wme ^id <o> ^attr box ^value <b>)\n"
          "  (make wme ^id <o> ^attr to-room ^value <r2>)\n"
          "  (make wme ^id <o> ^attr for-state ^value <s>)\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "acceptable))\n";
    ++count;
  }
}

void apply_productions(std::ostringstream& os, int& count) {
  const std::string op_ctx =
      "  (wme ^id <g> ^attr operator ^value <o>)\n"
      "  (wme ^id <g> ^attr state ^value <s>)\n"
      "  (wme ^id <o> ^attr for-state ^value <s>)\n";
  // Successor-state creation, one per operator kind (records last-door for
  // undo rejection).
  for (const char* op : {"open-door", "go-thru", "push-thru"}) {
    os << "(p apply-create-" << op << "\n"
       << op_ctx << "  (wme ^id <o> ^attr name ^value " << op
       << ")\n"
          "  (wme ^id <o> ^attr door ^value <d>)\n"
          "  -->\n"
          "  (bind <ns> (genatom s))\n"
          "  (make wme ^id <ns> ^attr prev ^value <s>)\n"
          "  (make wme ^id <ns> ^attr last-door ^value <d>)\n"
          "  (make wme ^id <ns> ^attr last-op ^value "
       << op
       << ")\n"
          "  (make pref ^gid <g> ^sid <s> ^role state ^value <ns> ^kind "
          "acceptable))\n";
    ++count;
  }
  // Copy door statuses (unchanged doors).
  os << "(p apply-copy-doors\n"
     << op_ctx
     << "  (wme ^id <o> ^attr door ^value <d>)\n"
        "  (wme ^id <ns> ^attr prev ^value <s>)\n"
        "  (wme ^id <s> ^attr door-st ^value <ds>)\n"
        "  (wme ^id <ds> ^attr door ^value { <d2> <> <d> })\n"
        "  (wme ^id <ds> ^attr status ^value <st>)\n"
        "  -->\n"
        "  (bind <nds> (genatom ds))\n"
        "  (make wme ^id <ns> ^attr door-st ^value <nds>)\n"
        "  (make wme ^id <nds> ^attr door ^value <d2>)\n"
        "  (make wme ^id <nds> ^attr status ^value <st>))\n";
  ++count;
  // The touched door: open-door opens it; go/push keep it open.
  os << "(p apply-set-door-open\n"
     << op_ctx
     << "  (wme ^id <o> ^attr door ^value <d>)\n"
        "  (wme ^id <ns> ^attr prev ^value <s>)\n"
        "  -->\n"
        "  (bind <nds> (genatom ds))\n"
        "  (make wme ^id <ns> ^attr door-st ^value <nds>)\n"
        "  (make wme ^id <nds> ^attr door ^value <d>)\n"
        "  (make wme ^id <nds> ^attr status ^value open))\n";
  ++count;
  // Copy boxes not pushed.
  os << "(p apply-copy-boxes\n"
     << op_ctx
     << "  (wme ^id <ns> ^attr prev ^value <s>)\n"
        "  (wme ^id <s> ^attr box-loc ^value <bl>)\n"
        "  (wme ^id <bl> ^attr box ^value <b>)\n"
        "  (wme ^id <bl> ^attr room ^value <r>)\n"
        "  -(wme ^id <o> ^attr box ^value <b>)\n"
        "  -->\n"
        "  (bind <nbl> (genatom bl))\n"
        "  (make wme ^id <ns> ^attr box-loc ^value <nbl>)\n"
        "  (make wme ^id <nbl> ^attr box ^value <b>)\n"
        "  (make wme ^id <nbl> ^attr room ^value <r>))\n";
  ++count;
  // Pushed box lands in the destination room.
  os << "(p apply-move-box\n"
     << op_ctx
     << "  (wme ^id <o> ^attr name ^value push-thru)\n"
        "  (wme ^id <o> ^attr box ^value <b>)\n"
        "  (wme ^id <o> ^attr to-room ^value <r2>)\n"
        "  (wme ^id <ns> ^attr prev ^value <s>)\n"
        "  -->\n"
        "  (bind <nbl> (genatom bl))\n"
        "  (make wme ^id <ns> ^attr box-loc ^value <nbl>)\n"
        "  (make wme ^id <nbl> ^attr box ^value <b>)\n"
        "  (make wme ^id <nbl> ^attr room ^value <r2>))\n";
  ++count;
  // Robot position: moves with go/push, stays for open.
  for (const char* op : {"go-thru", "push-thru"}) {
    os << "(p apply-move-robot-" << op << "\n"
       << op_ctx << "  (wme ^id <o> ^attr name ^value " << op
       << ")\n"
          "  (wme ^id <o> ^attr to-room ^value <r2>)\n"
          "  (wme ^id <ns> ^attr prev ^value <s>)\n"
          "  -->\n"
          "  (make wme ^id <ns> ^attr robot-at ^value <r2>))\n";
    ++count;
  }
  os << "(p apply-keep-robot\n"
     << op_ctx
     << "  (wme ^id <o> ^attr name ^value open-door)\n"
        "  (wme ^id <s> ^attr robot-at ^value <r>)\n"
        "  (wme ^id <ns> ^attr prev ^value <s>)\n"
        "  -->\n"
        "  (make wme ^id <ns> ^attr robot-at ^value <r>))\n";
  ++count;
}

void goal_and_eval_productions(std::ostringstream& os, int& count) {
  os << "(p detect-success\n"
     << kCtx
     << "  (wme ^id <g> ^attr target-box ^value <b>)\n"
        "  (wme ^id <g> ^attr target-room ^value <r>)\n"
        "  (wme ^id <s> ^attr box-loc ^value <bl>)\n"
        "  (wme ^id <bl> ^attr box ^value <b>)\n"
        "  (wme ^id <bl> ^attr room ^value <r>)\n"
        "  -->\n"
        "  (make wme ^id <g> ^attr success ^value yes))\n";
  ++count;

  // Default indifference + undo rejection. The evaluation reads the robot's
  // room and the operator's door (numeric ids stay constant in chunks), so
  // each evaluated situation contributes a distinct search-control chunk.
  os << "(p eval-default\n"
     << kEvalCtx
     << "  (wme ^id <s> ^attr robot-at ^value <rr>)\n"
        "  (wme ^id <rr> ^attr room-id ^value <rn>)\n"
        "  -->\n"
        "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
        "indifferent))\n";
  ++count;
  os << "(p eval-reject-undo\n"
     << kEvalCtx
     << "  (wme ^id <o> ^attr name ^value go-thru)\n"
        "  (wme ^id <o> ^attr door ^value <d>)\n"
        "  (wme ^id <s> ^attr last-door ^value <d>)\n"
        "  (wme ^id <s> ^attr last-op ^value go-thru)\n"
        "  -->\n"
        "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
        "reject))\n";
  ++count;

  // Push the target box toward the target room (room-ids are corridor
  // coordinates, so "closer" is a numeric comparison in each direction).
  for (const char* dir : {"right", "left"}) {
    const bool right = std::string(dir) == "right";
    os << "(p eval-push-toward-" << dir << "\n"
       << kEvalCtx
       << "  (wme ^id <g> ^attr target-box ^value <b>)\n"
          "  (wme ^id <g> ^attr target-room ^value <tr>)\n"
          "  (wme ^id <tr> ^attr room-id ^value <tn>)\n"
          "  (wme ^id <o> ^attr name ^value push-thru)\n"
          "  (wme ^id <o> ^attr box ^value <b>)\n"
          "  (wme ^id <o> ^attr to-room ^value <r2>)\n"
          "  (wme ^id <r2> ^attr room-id ^value <n2>)\n"
          "  (wme ^id <s> ^attr robot-at ^value <rr>)\n"
          "  (wme ^id <rr> ^attr room-id ^value "
       << (right ? "{ <nr> < <tn> }" : "{ <nr> > <tn> }") << ")\n"
       << "  (wme ^id <o> ^attr door ^value <d>)\n"
       << (right ? "  (wme ^id <r2> ^attr room-id ^value { <n2> > <nr> })\n"
                 : "  (wme ^id <r2> ^attr room-id ^value { <n2> < <nr> })\n")
       << "  -->\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "best))\n";
    ++count;
  }

  // Walk toward the target box when not colocated with it.
  for (const char* dir : {"right", "left"}) {
    const bool right = std::string(dir) == "right";
    os << "(p eval-go-toward-box-" << dir << "\n"
       << kEvalCtx
       << "  (wme ^id <g> ^attr target-box ^value <b>)\n"
          "  (wme ^id <s> ^attr box-loc ^value <bl>)\n"
          "  (wme ^id <bl> ^attr box ^value <b>)\n"
          "  (wme ^id <bl> ^attr room ^value <br>)\n"
          "  (wme ^id <br> ^attr room-id ^value <bn>)\n"
          "  (wme ^id <s> ^attr robot-at ^value <rr>)\n"
          "  (wme ^id <rr> ^attr room-id ^value "
       << (right ? "{ <nr> < <bn> }" : "{ <nr> > <bn> }") << ")\n"
       << "  (wme ^id <o> ^attr name ^value go-thru)\n"
          "  (wme ^id <o> ^attr to-room ^value <r2>)\n"
          "  (wme ^id <r2> ^attr room-id ^value "
       << (right ? "{ <n2> > <nr> }" : "{ <n2> < <nr> }") << ")\n"
       << "  -->\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "best))\n";
    ++count;
  }

  // Open a door that blocks progress toward the target box or room.
  for (const char* dir : {"right", "left"}) {
    const bool right = std::string(dir) == "right";
    os << "(p eval-open-toward-" << dir << "\n"
       << kEvalCtx
       << "  (wme ^id <g> ^attr target-room ^value <tr>)\n"
          "  (wme ^id <tr> ^attr room-id ^value <tn>)\n"
          "  (wme ^id <o> ^attr name ^value open-door)\n"
          "  (wme ^id <o> ^attr door ^value <d>)\n"
          "  (wme ^id <s> ^attr robot-at ^value <rr>)\n"
          "  (wme ^id <rr> ^attr room-id ^value "
       << (right ? "{ <nr> < <tn> }" : "{ <nr> > <tn> }") << ")\n"
       << "  (wme ^id <d> ^attr "
       << (right ? "room-a" : "room-b")
       << " ^value <rr>)\n"
          "  -->\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "best))\n";
    ++count;
  }
}

void monitor_productions(std::ostringstream& os, int& count, int target) {
  // monitor-strips-state: the Figure 6-7 long chain — one production whose
  // CEs run through the robot and every door status in the world model.
  // Several variants of increasing length (the longest covers all doors and
  // all boxes: 4 + 3*kDoors + 3*kBoxes + 2 CEs).
  for (int n_doors = 2; n_doors <= kDoors; ++n_doors) {
    os << "(p monitor-strips-state-" << n_doors << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr robot-at ^value <rr>)\n"
          "  (wme ^id <rr> ^attr room-id ^value <nr>)\n";
    for (int d = 0; d < n_doors; ++d) {
      os << "  (wme ^id <s> ^attr door-st ^value <ds" << d << ">)\n"
         << "  (wme ^id <ds" << d << "> ^attr door ^value <d" << d << ">)\n"
         << "  (wme ^id <d" << d << "> ^attr door-id ^value " << d + 1
         << ")\n"
         << "  (wme ^id <ds" << d << "> ^attr status ^value <st" << d
         << ">)\n";
    }
    if (n_doors == kDoors) {
      for (int b = 0; b < kBoxes; ++b) {
        os << "  (wme ^id <s> ^attr box-loc ^value <bl" << b << ">)\n"
           << "  (wme ^id <bl" << b << "> ^attr box ^value <b" << b << ">)\n"
           << "  (wme ^id <bl" << b << "> ^attr room ^value <br" << b
           << ">)\n";
      }
    }
    os << "  -->\n  (make wme ^id <s> ^attr snapshot ^value snap-" << n_doors
       << "))\n";
    ++count;
  }

  // Per-door status notes.
  for (int d = 1; d <= kDoors; ++d) {
    for (const char* st : {"open", "closed"}) {
      os << "(p monitor-door-" << d << "-" << st << "\n"
         << kCtx
         << "  (wme ^id <s> ^attr door-st ^value <ds>)\n"
            "  (wme ^id <ds> ^attr door ^value <d>)\n"
         << "  (wme ^id <d> ^attr door-id ^value " << d << ")\n"
         << "  (wme ^id <ds> ^attr status ^value " << st
         << ")\n"
            "  -->\n"
         << "  (make wme ^id <s> ^attr door-note ^value door-" << d << "-"
         << st << "))\n";
      ++count;
    }
  }

  // Per-room robot notes and per-box room notes.
  for (int r = 1; r <= kRooms; ++r) {
    os << "(p monitor-robot-room-" << r << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr robot-at ^value <r>)\n"
       << "  (wme ^id <r> ^attr room-id ^value " << r << ")\n"
       << "  -->\n"
       << "  (make wme ^id <s> ^attr robot-note ^value room-" << r << "))\n";
    ++count;
  }
  for (int b = 1; b <= kBoxes; ++b) {
    for (int r = 1; r <= kRooms; ++r) {
      if (count >= target) return;
      os << "(p monitor-box-" << b << "-room-" << r << "\n"
         << kCtx
         << "  (wme ^id <s> ^attr box-loc ^value <bl>)\n"
            "  (wme ^id <bl> ^attr box ^value <b>)\n"
         << "  (wme ^id <b> ^attr box-id ^value " << b << ")\n"
         << "  (wme ^id <bl> ^attr room ^value <r>)\n"
         << "  (wme ^id <r> ^attr room-id ^value " << r << ")\n"
         << "  -->\n"
         << "  (make wme ^id <s> ^attr box-note ^value box-" << b << "-room-"
         << r << "))\n";
      ++count;
    }
  }

  // Pairwise room-adjacency notes to round out the count.
  int i = 0;
  while (count < target) {
    ++i;
    os << "(p monitor-aux-" << i << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr robot-at ^value <rr>)\n"
          "  (wme ^id <d> ^attr room-a ^value <rr>)\n"
          "  (wme ^id <d> ^attr door-id ^value "
       << ((i - 1) % kDoors) + 1
       << ")\n"
          "  (wme ^id <s> ^attr door-st ^value <ds>)\n"
          "  (wme ^id <ds> ^attr door ^value <d>)\n"
          "  (wme ^id <ds> ^attr status ^value <st>)\n"
          "  -->\n"
       << "  (make wme ^id <s> ^attr aux-note ^value aux-" << i << "))\n";
    ++count;
  }
}

}  // namespace

Task make_strips() {
  Task task;
  task.name = "strips";
  task.max_decisions = 250;

  std::ostringstream os;
  int count = 0;
  proposal_productions(os, count);
  apply_productions(os, count);
  goal_and_eval_productions(os, count);
  monitor_productions(os, count, 105);
  assert(count == 105);
  task.productions = os.str();

  task.init = [](SoarKernel& k) {
    SymbolTable& syms = k.engine().syms();
    std::array<Symbol, kRooms + 1> room{};
    for (int r = 1; r <= kRooms; ++r) {
      room[static_cast<size_t>(r)] = k.make_id("r", 1);
      k.add_triple(room[static_cast<size_t>(r)], "room-id",
                   Value(static_cast<int64_t>(r)));
    }
    std::array<Symbol, kDoors + 1> door{};
    for (int d = 1; d <= kDoors; ++d) {
      door[static_cast<size_t>(d)] = k.make_id("dr", 1);
      k.add_triple(door[static_cast<size_t>(d)], "door-id",
                   Value(static_cast<int64_t>(d)));
      k.add_triple(door[static_cast<size_t>(d)], "room-a",
                   Value(room[static_cast<size_t>(d)]));
      k.add_triple(door[static_cast<size_t>(d)], "room-b",
                   Value(room[static_cast<size_t>(d + 1)]));
    }
    std::array<Symbol, kBoxes + 1> box{};
    for (int b = 1; b <= kBoxes; ++b) {
      box[static_cast<size_t>(b)] = k.make_id("bx", 1);
      k.add_triple(box[static_cast<size_t>(b)], "box-id",
                   Value(static_cast<int64_t>(b)));
    }

    // Initial state: robot in r1; box1 in r2, box2 in r4, box3 in r5;
    // doors 1 and 3 open, the rest closed.
    const Symbol s0 = k.make_id("s", 1);
    k.add_triple(s0, "robot-at", Value(room[1]));
    const std::array<int, kBoxes + 1> box_room{0, 2, 4, 5, 7};
    for (int b = 1; b <= kBoxes; ++b) {
      const Symbol bl = k.make_id("bl", 1);
      k.add_triple(s0, "box-loc", Value(bl));
      k.add_triple(bl, "box", Value(box[static_cast<size_t>(b)]));
      k.add_triple(
          bl, "room",
          Value(room[static_cast<size_t>(box_room[static_cast<size_t>(b)])]));
    }
    for (int d = 1; d <= kDoors; ++d) {
      const Symbol ds = k.make_id("ds", 1);
      k.add_triple(s0, "door-st", Value(ds));
      k.add_triple(ds, "door", Value(door[static_cast<size_t>(d)]));
      k.add_triple(ds, "status",
                   Value(syms.intern(d == 1 ? "open" : "closed")));
    }

    const Symbol g = k.create_top_goal(syms.intern("strips"), s0);
    k.add_triple(g, "target-box", Value(box[1]));
    k.add_triple(g, "target-room", Value(room[kRooms]));
    k.set_goal_test([](SoarKernel& kk) {
      return kk.has_triple_attr("success", "yes");
    });
  };
  return task;
}

}  // namespace psme
