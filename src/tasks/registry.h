// The three Soar systems of the paper's evaluation:
//   eight-puzzle — 71 productions (Laird/Rosenbloom/Newell 1986 formulation:
//                  states bind tiles to cells, operators slide a tile into
//                  the blank cell, lookahead evaluation in tie subgoals);
//   strips       — 105 productions (robot/rooms/doors/boxes planning after
//                  Fikes/Hart/Nilsson 1972, with the long-chain
//                  monitor-strips-state productions of Figure 6-7);
//   cypress      — 196 productions (surrogate for the proprietary
//                  Cypress-Soar algorithm-design system; a rule-driven
//                  derivation search with the paper's production statistics,
//                  see DESIGN.md §2).
//
// Each task provides its production source text, an init function that
// populates working memory and creates the top goal, and a recommended
// decision cap matching the paper's run lengths.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "soar/kernel.h"

namespace psme {

struct Task {
  std::string name;
  std::string productions;
  std::function<void(SoarKernel&)> init;
  uint64_t max_decisions = 100;
};

Task make_eight_puzzle();
Task make_strips();
Task make_cypress();

/// By name: "eight-puzzle", "strips", "cypress".
Task make_task(std::string_view name);
std::vector<std::string> task_names();

/// Convenience: builds a kernel, loads the task and runs it. Run stats,
/// engine/arena/scheduler stats and tracer accounting all land in `metrics`
/// (the demos' --stats table). When tracing was enabled and PSME_TRACE is
/// set, the trace is exported before the kernel is torn down.
struct TaskRunResult {
  SoarRunStats stats;
  uint64_t production_count = 0;
  obs::MetricsRegistry metrics;
  /// Deterministic analysis::profile_json document of the run's measured
  /// match profile, built before teardown when engine_opts.profile was set
  /// (empty otherwise). Named after the task, so network_lint --profile
  /// correlates it against the same task's static cost table.
  std::string profile_json;
};
TaskRunResult run_task(const Task& task, bool learning,
                       const std::vector<std::string>* extra_chunk_texts = nullptr,
                       EngineOptions engine_opts = {});

}  // namespace psme
