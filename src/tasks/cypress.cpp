// Cypress surrogate: 196 productions.
//
// Cypress-Soar (Steier 1987) designed sorting algorithms by heuristic search
// over a derivation space; the system itself was never released. This
// surrogate reproduces its *match-load profile* as reported in the paper:
// 196 productions, unusually large initial productions (~26 CEs on average —
// mostly long monitor chains), deep dependent node-activation chains, a
// monotonic derivation state, and ~26 chunks added during learning.
//
// The task: expand a derivation tree from a root design node. Each node has
// a type (t0..t7); grammar rules expand a node into two typed children up to
// depth 3. Rule selection ties are resolved in subgoals whose evaluations
// prefer the designated "divide-and-conquer" rule for each type — those
// preferences become chunks. Operators mark themselves done (the state
// object is never replaced), exercising the kernel's monotonic-operator
// path.
#include <cassert>
#include <sstream>
#include <string>

#include "tasks/registry.h"

namespace psme {
namespace {

constexpr int kTypes = 8;
constexpr int kMaxDepth = 3;  // nodes at depth <= 3 may expand (leaves at 4)

struct Rule {
  int type;     // applies to nodes of type t<type>
  int variant;  // rule-<type>-<variant>
  int child_a, child_b, child_c;
};

std::vector<Rule> grammar() {
  std::vector<Rule> rules;
  for (int t = 0; t < kTypes; ++t) {
    rules.push_back(
        {t, 0, (t + 1) % kTypes, (t + 2) % kTypes, (t + 3) % kTypes});
    rules.push_back(
        {t, 1, (t + 3) % kTypes, (t + 4) % kTypes, (t + 5) % kTypes});
    if (t % 2 == 0) {
      rules.push_back(
          {t, 2, (t + 5) % kTypes, (t + 6) % kTypes, (t + 7) % kTypes});
    }
  }
  return rules;  // 20 rules
}

constexpr const char* kCtx =
    "  (wme ^id <g> ^attr problem-space ^value cypress)\n"
    "  (wme ^id <g> ^attr state ^value <s>)\n";

constexpr const char* kEvalCtx =
    "  (wme ^id <sg> ^attr impasse ^value tie)\n"
    "  (wme ^id <sg> ^attr object ^value <g>)\n"
    "  (wme ^id <sg> ^attr item ^value <o>)\n"
    "  (wme ^id <g> ^attr state ^value <s>)\n"
    "  (pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind acceptable)\n";

void rule_productions(std::ostringstream& os, int& count) {
  for (const Rule& r : grammar()) {
    // Proposal: expandable node of the rule's type.
    os << "(p propose-rule-" << r.type << "-" << r.variant << "\n"
       << kCtx
       << "  (wme ^id <s> ^attr node ^value <n>)\n"
          "  (wme ^id <n> ^attr type ^value t"
       << r.type
       << ")\n"
          "  (wme ^id <n> ^attr depth ^value { <k> <= "
       << kMaxDepth
       << " })\n"
          "  -(wme ^id <n> ^attr expanded ^value yes)\n"
          "  -->\n"
          "  (bind <o> (genatom o))\n"
          "  (make wme ^id <o> ^attr name ^value expand)\n"
          "  (make wme ^id <o> ^attr node ^value <n>)\n"
          "  (make wme ^id <o> ^attr rule ^value rule-"
       << r.type << "-" << r.variant
       << ")\n"
          "  (make wme ^id <o> ^attr for-state ^value <s>)\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "acceptable))\n";
    ++count;

    // Application: two typed children, node marked expanded, operator done.
    os << "(p apply-rule-" << r.type << "-" << r.variant << "\n"
       << "  (wme ^id <g> ^attr operator ^value <o>)\n"
          "  (wme ^id <g> ^attr state ^value <s>)\n"
          "  (wme ^id <o> ^attr for-state ^value <s>)\n"
          "  (wme ^id <o> ^attr rule ^value rule-"
       << r.type << "-" << r.variant
       << ")\n"
          "  (wme ^id <o> ^attr node ^value <n>)\n"
          "  (wme ^id <n> ^attr depth ^value <k>)\n"
          "  -->\n"
          "  (bind <ca> (genatom n))\n"
          "  (bind <cb> (genatom n))\n"
          "  (bind <cc> (genatom n))\n"
          "  (make wme ^id <s> ^attr node ^value <ca>)\n"
          "  (make wme ^id <ca> ^attr type ^value t"
       << r.child_a
       << ")\n"
          "  (make wme ^id <ca> ^attr depth ^value (compute <k> + 1))\n"
          "  (make wme ^id <n> ^attr child ^value <ca>)\n"
          "  (make wme ^id <s> ^attr node ^value <cb>)\n"
          "  (make wme ^id <cb> ^attr type ^value t"
       << r.child_b
       << ")\n"
          "  (make wme ^id <cb> ^attr depth ^value (compute <k> + 1))\n"
          "  (make wme ^id <n> ^attr child ^value <cb>)\n"
          "  (make wme ^id <s> ^attr node ^value <cc>)\n"
          "  (make wme ^id <cc> ^attr type ^value t"
       << r.child_c
       << ")\n"
          "  (make wme ^id <cc> ^attr depth ^value (compute <k> + 1))\n"
          "  (make wme ^id <n> ^attr child ^value <cc>)\n"
          "  (make wme ^id <n> ^attr expanded ^value yes)\n"
          "  (make wme ^id <n> ^attr by-rule ^value rule-"
       << r.type << "-" << r.variant
       << ")\n"
          "  (make wme ^id <o> ^attr done ^value yes))\n";
    ++count;
  }
}

void eval_productions(std::ostringstream& os, int& count) {
  // Default indifference, specific to the node's type, depth and rule
  // (type and rule symbols and the depth number stay constant in chunks, so
  // each evaluated expansion situation contributes its own chunk — this is
  // what drives the chunk count to the paper's ~26 for Cypress).
  os << "(p eval-default\n"
     << kEvalCtx
     << "  (wme ^id <o> ^attr node ^value <n>)\n"
        "  (wme ^id <n> ^attr type ^value <ty>)\n"
        "  -->\n"
        "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
        "indifferent))\n";
  ++count;

  // Prefer the divide-and-conquer rule (variant 0) for each node type; the
  // evaluation also inspects the node's parent context so the chunks carry a
  // realistic condition chain.
  for (int t = 0; t < kTypes; ++t) {
    os << "(p eval-prefer-dc-" << t << "\n"
       << kEvalCtx
       << "  (wme ^id <o> ^attr rule ^value rule-" << t << "-0)\n"
       << "  (wme ^id <o> ^attr node ^value <n>)\n"
          "  (wme ^id <n> ^attr type ^value t"
       << t
       << ")\n"
          "  (wme ^id <n> ^attr depth ^value <k>)\n"
          "  (wme ^id <g> ^attr style ^value divide-and-conquer)\n"
          "  -->\n"
          "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
          "best))\n";
    ++count;
  }

  // Prefer expanding shallower nodes first: reject deep expansions when a
  // shallower open node of any type exists.
  os << "(p eval-reject-deep\n"
     << kEvalCtx
     << "  (wme ^id <o> ^attr node ^value <n>)\n"
        "  (wme ^id <n> ^attr depth ^value <k>)\n"
        "  (wme ^id <s> ^attr node ^value <m>)\n"
        "  (wme ^id <m> ^attr depth ^value { <k2> < <k> })\n"
        "  -(wme ^id <m> ^attr expanded ^value yes)\n"
        "  -->\n"
        "  (make pref ^gid <g> ^sid <s> ^role operator ^value <o> ^kind "
        "reject))\n";
  ++count;

  // Success: a fully elaborated derivation — a root-path node at depth 2
  // whose three children (depth 3) have all been expanded, plus expanded
  // siblings at depth 1. This forces the derivation deep into the depth-3
  // wave before the run completes.
  // The anchoring path root -(t3)-> n1 -(t6)-> n2 is the last-created
  // depth-2 subtree under the divide-and-conquer rules, so its children are
  // the final group of the breadth-first depth-3 wave: the run covers
  // (nearly) the whole derivation before succeeding.
  os << "(p detect-success\n"
     << kCtx
     << "  (wme ^id <s> ^attr root ^value <n0>)\n"
        "  (wme ^id <n0> ^attr child ^value <n1>)\n"
        "  (wme ^id <n1> ^attr type ^value t3)\n"
        "  (wme ^id <n1> ^attr child ^value <n2>)\n"
        "  (wme ^id <n2> ^attr type ^value t6)\n"
        "  (wme ^id <n2> ^attr child ^value <n3a>)\n"
        "  (wme ^id <n2> ^attr child ^value { <n3b> <> <n3a> })\n"
        "  (wme ^id <n2> ^attr child ^value { <n3c> <> <n3a> <> <n3b> })\n"
        "  (wme ^id <n3a> ^attr expanded ^value yes)\n"
        "  (wme ^id <n3b> ^attr expanded ^value yes)\n"
        "  (wme ^id <n3c> ^attr expanded ^value yes)\n"
        "  -->\n"
        "  (make wme ^id <g> ^attr success ^value yes))\n";
  ++count;
}

/// Long-chain monitors: each tests a typed subtree pattern — root, both
/// children, grandchildren, plus depth and rule bookkeeping — averaging ~26
/// CEs as in the paper's Cypress production set (Table 5-1).
void monitor_productions(std::ostringstream& os, int& count, int target) {
  int v = 0;
  while (count < target) {
    const int t0 = v % kTypes;
    const int ta = (v + 1 + v / kTypes) % kTypes;
    const int tb = (v + 3 + v / (kTypes * 2)) % kTypes;
    os << "(p monitor-subtree-" << ++v << "\n" << kCtx;
    int ces = 2;
    // Root of the pattern: any expanded node of type t0.
    os << "  (wme ^id <s> ^attr node ^value <n0>)\n"
          "  (wme ^id <n0> ^attr type ^value t"
       << t0
       << ")\n"
          "  (wme ^id <n0> ^attr expanded ^value yes)\n"
          "  (wme ^id <n0> ^attr by-rule ^value <rl>)\n"
          "  (wme ^id <n0> ^attr depth ^value <k0>)\n";
    ces += 5;
    // Two children with type and depth tests.
    const char* kids[2] = {"<na>", "<nb>"};
    const int kid_type[2] = {ta, tb};
    for (int j = 0; j < 2; ++j) {
      os << "  (wme ^id <n0> ^attr child ^value " << kids[j] << ")\n"
         << "  (wme ^id " << kids[j] << " ^attr type ^value t" << kid_type[j]
         << ")\n"
         << "  (wme ^id " << kids[j] << " ^attr depth ^value <kd" << j
         << ">)\n";
      ces += 3;
    }
    // Grandchild chain of varying length: this is what pushes the average CE
    // count to the paper's ~26 and produces the long dependent activation
    // chains.
    const int extra_levels = 2 + (v % 4);  // 2..5 extra node hops
    std::string cur = "<na>";
    for (int j = 0; j < extra_levels; ++j) {
      const std::string next = "<x" + std::to_string(j) + ">";
      os << "  (wme ^id " << cur << " ^attr child ^value " << next << ")\n"
         << "  (wme ^id " << next << " ^attr type ^value <xt" << j << ">)\n"
         << "  (wme ^id " << next << " ^attr depth ^value <xk" << j << ">)\n";
      ces += 3;
      cur = next;
    }
    // A few sibling notes on the second child.
    os << "  (wme ^id <nb> ^attr child ^value <y0>)\n"
          "  (wme ^id <y0> ^attr type ^value <yt>)\n"
          "  (wme ^id <y0> ^attr depth ^value <yk>)\n";
    ces += 3;
    os << "  -->\n  (make wme ^id <s> ^attr pattern ^value pattern-" << v
       << "))\n";
    (void)ces;
    ++count;
  }
}

}  // namespace

Task make_cypress() {
  Task task;
  task.name = "cypress";
  task.max_decisions = 400;

  std::ostringstream os;
  int count = 0;
  rule_productions(os, count);     // 40
  eval_productions(os, count);     // 11
  monitor_productions(os, count, 196);
  assert(count == 196);
  task.productions = os.str();

  task.init = [](SoarKernel& k) {
    SymbolTable& syms = k.engine().syms();
    const Symbol s0 = k.make_id("s", 1);
    const Symbol root = k.make_id("n", 1);
    k.add_triple(s0, "node", Value(root));
    k.add_triple(s0, "root", Value(root));
    k.add_triple(root, "type", Value(syms.intern("t0")));
    k.add_triple(root, "depth", Value(static_cast<int64_t>(0)));

    const Symbol g = k.create_top_goal(syms.intern("cypress"), s0);
    k.add_triple(g, "style", Value(syms.intern("divide-and-conquer")));
    k.set_goal_test([](SoarKernel& kk) {
      return kk.has_triple_attr("success", "yes");
    });
  };
  return task;
}

}  // namespace psme
