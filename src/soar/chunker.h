// Chunking: builds a new production from the dependency trace of a result.
//
// "Chunking works by recording the wmes of each instantiation and the wmes
// created by firing that instantiation. [...] Chunking performs a dependency
// analysis by searching backward through the instantiation records to find
// the wmes that existed before the result context that were used to generate
// this result. It then constructs a new production whose LHS is based on
// these wmes and whose RHS reconstructs the result." (§3)
//
// Negated conditions of traced productions ARE transferred: each negated CE
// is re-instantiated against the firing's bindings (identifiers variablized
// consistently with the positive conditions, everything else grounded to the
// matched constants) and appended to the chunk. A chunk is abandoned when a
// negation cannot be resolved soundly (it references a subgoal-local
// identifier, or a local variable repeats within the negated CE).
//
// Simplifications vs. full Soar chunking (documented in DESIGN.md §6):
// architectural wmes (subgoal scaffolding, which has no creating
// instantiation) terminate the backtrace and contribute no conditions, and
// traced conjunctive negations abandon the chunk. Chunks whose conditions
// fail to mention the result's anchor identifier are discarded as
// over-general.
#pragma once

#include <optional>
#include <string>

#include "lang/ast.h"
#include "rete/wme.h"

namespace psme {

class SoarKernel;

class Chunker {
 public:
  explicit Chunker(SoarKernel& kernel) : k_(kernel) {}

  /// Builds a chunk for `result` (a wme created in a subgoal but attached at
  /// `result_level`). Returns nullopt when no useful chunk can be formed.
  /// On success `signature` receives a canonical string for deduplication.
  std::optional<Production> build_chunk(const Wme* result, int result_level,
                                        std::string* signature);

 private:
  SoarKernel& k_;
};

}  // namespace psme
