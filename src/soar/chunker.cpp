#include "soar/chunker.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "soar/kernel.h"

namespace psme {

std::optional<Production> Chunker::build_chunk(const Wme* result,
                                               int result_level,
                                               std::string* signature) {
  auto prov_it = k_.provenance_.find(result);
  if (prov_it == k_.provenance_.end()) return std::nullopt;

  // Backtrace: collect supergoal-level condition wmes, and remember every
  // traced instantiation so its negated conditions can be transferred.
  std::vector<const Wme*> frontier = {result};
  std::set<const Wme*> visited;
  std::vector<const Wme*> conditions;
  std::set<const Wme*> cond_set;
  std::vector<const Provenance*> traced;
  std::set<std::pair<const Production*, size_t>> traced_insts;
  while (!frontier.empty()) {
    const Wme* w = frontier.back();
    frontier.pop_back();
    if (!visited.insert(w).second) continue;
    auto pit = k_.provenance_.find(w);
    if (pit == k_.provenance_.end()) continue;  // architectural: trace stops
    if (traced_insts
            .insert({pit->second.prod, token_identity_hash(pit->second.token)})
            .second) {
      traced.push_back(&pit->second);
    }
    for (const Wme* cond : pit->second.token) {
      if (k_.wme_level(cond) <= result_level) {
        if (cond_set.insert(cond).second) conditions.push_back(cond);
      } else {
        frontier.push_back(cond);
      }
    }
  }
  if (conditions.empty()) return std::nullopt;

  // Variablize identifiers consistently across conditions and the result.
  Production chunk;
  chunk.is_chunk = true;
  std::map<Symbol, uint32_t> var_of;
  auto variablize = [&](Symbol id) -> uint32_t {
    auto it = var_of.find(id);
    if (it != var_of.end()) return it->second;
    const uint32_t v = chunk.num_vars++;
    chunk.var_names.push_back("<c" + std::to_string(v) + ">");
    var_of.emplace(id, v);
    return v;
  };
  auto is_identifier = [&](const Value& v) {
    return v.is_sym() && k_.id_level(v.sym()) > 0;
  };

  // The result must be anchored: at least one condition must mention the
  // result's root identifier (its id/gid field), else the chunk would fire
  // on unrelated goals.
  Symbol anchor;
  if (!result->fields.empty() && result->fields[0].is_sym()) {
    anchor = result->fields[0].sym();
  }
  bool anchored = false;
  for (const Wme* c : conditions) {
    for (const Value& v : c->fields) {
      if (v.is_sym() && v.sym() == anchor) anchored = true;
    }
  }
  if (!anchored) return std::nullopt;

  // Order conditions for connectivity: start with one mentioning the anchor,
  // then greedily append conditions sharing an identifier with what's
  // already placed.
  std::vector<const Wme*> ordered;
  {
    std::set<Symbol> known;
    auto mentions_known = [&](const Wme* w) {
      for (const Value& v : w->fields) {
        if (is_identifier(v) && known.count(v.sym())) return true;
      }
      return false;
    };
    auto place = [&](size_t idx) {
      const Wme* w = conditions[idx];
      ordered.push_back(w);
      for (const Value& v : w->fields) {
        if (is_identifier(v)) known.insert(v.sym());
      }
      conditions.erase(conditions.begin() + static_cast<ptrdiff_t>(idx));
    };
    // Seed with an anchor-mentioning condition.
    for (size_t i = 0; i < conditions.size(); ++i) {
      bool has_anchor = false;
      for (const Value& v : conditions[i]->fields) {
        if (v.is_sym() && v.sym() == anchor) has_anchor = true;
      }
      if (has_anchor) {
        place(i);
        break;
      }
    }
    while (!conditions.empty()) {
      bool placed = false;
      for (size_t i = 0; i < conditions.size(); ++i) {
        if (mentions_known(conditions[i])) {
          place(i);
          placed = true;
          break;
        }
      }
      if (!placed) place(0);  // disconnected remainder: append as-is
    }
  }

  // Build condition ASTs. Slot layout comes straight from the wme contents;
  // nil fields generate no test.
  for (const Wme* w : ordered) {
    Condition ce;
    ce.cls = w->cls;
    for (size_t slot = 0; slot < w->fields.size(); ++slot) {
      const Value& v = w->fields[slot];
      if (v.is_nil()) continue;
      if (is_identifier(v)) {
        ce.vars.push_back(
            {static_cast<int>(slot), Pred::Eq, variablize(v.sym())});
      } else {
        ce.consts.push_back({static_cast<int>(slot), Pred::Eq, v});
      }
    }
    chunk.conditions.push_back(std::move(ce));
  }

  // Transfer negated conditions of every traced instantiation: the chunk
  // must not fire in situations the original productions' negations
  // excluded. Each negated CE is grounded against the instantiation's actual
  // bindings; identifiers become chunk variables (they already appear in the
  // positive conditions), everything else becomes a constant test.
  std::string neg_signature;
  {
    std::set<std::string> neg_seen;
    for (const Provenance* prov : traced) {
      const Production& tp = *prov->prod;
      const CompiledProduction& cp =
          k_.engine().record(prov->prod).compiled;
      for (const Condition& ce : tp.conditions) {
        if (ce.is_ncc()) return std::nullopt;  // conservative: abandon
        if (!ce.negated) continue;
        Condition neg;
        neg.cls = ce.cls;
        neg.negated = true;
        neg.consts = ce.consts;
        neg.disjs = ce.disjs;
        bool ok = true;
        std::set<uint32_t> locals_used;
        for (const VarTest& vt : ce.vars) {
          const auto& site = cp.bindings[vt.var];
          if (site.ce < 0) {
            // Local to the negated CE: a single occurrence is a wildcard; a
            // repeat would need an intra test we cannot reconstruct soundly.
            if (!locals_used.insert(vt.var).second) {
              ok = false;
              break;
            }
            continue;
          }
          const Value bound =
              prov->token[static_cast<size_t>(site.ce)]->field(site.slot);
          if (is_identifier(bound)) {
            auto vit = var_of.find(bound.sym());
            if (vit == var_of.end()) {
              // References a subgoal-local object: unsound to transfer.
              ok = false;
              break;
            }
            if (vt.pred == Pred::Eq) {
              neg.vars.push_back({vt.slot, Pred::Eq, vit->second});
            } else {
              ok = false;  // ordering predicate on an identifier: give up
              break;
            }
          } else {
            neg.consts.push_back({vt.slot, vt.pred, bound});
          }
        }
        if (!ok) return std::nullopt;
        // Dedup structurally identical transferred negations.
        std::ostringstream key;
        key << neg.cls.raw();
        for (const auto& t : neg.consts) {
          key << '|' << t.slot << pred_name(t.pred) << t.value.hash();
        }
        for (const auto& t : neg.vars) {
          key << '|' << t.slot << 'v' << t.var;
        }
        if (neg_seen.insert(key.str()).second) {
          neg_signature += "-" + key.str();
          chunk.conditions.push_back(std::move(neg));
        }
      }
    }
  }

  // RHS: reconstruct the result.
  Action make;
  make.kind = Action::Kind::Make;
  make.cls = result->cls;
  for (size_t slot = 0; slot < result->fields.size(); ++slot) {
    const Value& v = result->fields[slot];
    if (v.is_nil()) continue;
    RhsAssignment asg;
    asg.slot = static_cast<int>(slot);
    if (is_identifier(v)) {
      auto it = var_of.find(v.sym());
      if (it != var_of.end()) {
        asg.value.kind = RhsValue::Kind::Var;
        asg.value.var = it->second;
      } else {
        // A subgoal-created identifier escaping in the result: mint a fresh
        // one each firing (real Soar promotes the id; this is the documented
        // approximation).
        asg.value.kind = RhsValue::Kind::Gensym;
        asg.value.gensym_prefix = k_.engine().syms().intern("c");
      }
    } else {
      asg.value.kind = RhsValue::Kind::Const;
      asg.value.constant = v;
    }
    make.sets.push_back(std::move(asg));
  }
  chunk.actions.push_back(std::move(make));

  // Canonical signature for duplicate suppression: conditions and action
  // with identifiers replaced by their variable numbers.
  {
    std::ostringstream sig;
    const SymbolTable& syms = k_.engine().syms();
    auto fmt = [&](const Wme* w) {
      sig << '(' << syms.name(w->cls);
      for (const Value& v : w->fields) {
        sig << ' ';
        if (is_identifier(v)) {
          sig << 'v' << var_of[v.sym()];
        } else {
          sig << v.to_string(syms);
        }
      }
      sig << ')';
    };
    for (const Wme* w : ordered) fmt(w);
    sig << neg_signature << "=>";
    fmt(result);
    *signature = sig.str();
  }

  chunk.name = k_.engine().syms().gensym("chunk-");
  return chunk;
}

}  // namespace psme
