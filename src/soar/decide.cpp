// The decision procedure (Decide module).
//
// After each elaboration phase reaches quiescence, Decide scans the context
// stack from the oldest goal down and makes at most one context change:
// install a new state (operator application result), install an operator, or
// raise an impasse and push a subgoal. Installing a change at level L
// terminates every goal below L (those subgoals addressed an impasse that is
// now moot) and garbage-collects their wmes.
#include <algorithm>
#include <optional>

#include "soar/kernel.h"

namespace psme {

std::vector<SoarKernel::Candidate> SoarKernel::slot_candidates(
    const GoalEntry& g, Symbol role) {
  std::vector<Symbol> acceptable;
  std::vector<Symbol> rejects, bests, indiffs;
  std::vector<std::pair<Symbol, Symbol>> betters;  // (better, worse)

  const bool state_scoped = role == sym_op_ || role == sym_state_;
  for (const Wme* w : engine_.wm().live()) {
    if (w->cls != cls_pref_) continue;
    if (w->field(0) != Value(g.id)) continue;
    if (w->field(2) != Value(role)) continue;
    if (state_scoped && !w->field(1).is_nil() &&
        w->field(1) != Value(g.state)) {
      continue;  // preference is scoped to a state no longer current
    }
    if (!w->field(3).is_sym()) continue;
    const Symbol v = w->field(3).sym();
    // A finished operator never becomes a candidate again: its acceptable
    // preference is a plain wme (productions only add), so candidacy is
    // filtered here instead of by preference retraction.
    if (role == sym_op_ &&
        engine_.wm().find(cls_wme_, {Value(v), Value(sym_done_),
                                     Value(sym_yes_)}) != nullptr) {
      continue;
    }
    const Value kind = w->field(4);
    if (kind == Value(sym_acceptable_)) {
      if (std::find(acceptable.begin(), acceptable.end(), v) ==
          acceptable.end()) {
        acceptable.push_back(v);
      }
    } else if (kind == Value(sym_reject_)) {
      rejects.push_back(v);
    } else if (kind == Value(sym_best_)) {
      bests.push_back(v);
    } else if (kind == Value(sym_indiff_)) {
      indiffs.push_back(v);
    } else if (kind == Value(sym_better_) && w->field(5).is_sym()) {
      betters.emplace_back(v, w->field(5).sym());
    }
  }

  // Deterministic candidate order: acceptable preferences by symbol id.
  std::sort(acceptable.begin(), acceptable.end());

  std::vector<Candidate> out;
  auto contains = [](const std::vector<Symbol>& v, Symbol s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  for (const Symbol v : acceptable) {
    if (contains(rejects, v)) continue;
    out.push_back(Candidate{v, contains(bests, v), contains(indiffs, v)});
  }
  // Best filter: if any surviving candidate is best, keep only bests.
  if (std::any_of(out.begin(), out.end(),
                  [](const Candidate& c) { return c.best; })) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const Candidate& c) { return !c.best; }),
              out.end());
  }
  // Better/worse filter: drop dominated candidates.
  for (const auto& [better, worse] : betters) {
    const bool better_present =
        std::any_of(out.begin(), out.end(),
                    [&](const Candidate& c) { return c.value == better; });
    if (!better_present) continue;
    out.erase(std::remove_if(
                  out.begin(), out.end(),
                  [&](const Candidate& c) { return c.value == worse; }),
              out.end());
  }
  return out;
}

void SoarKernel::install(GoalEntry& g, Symbol role, Symbol value) {
  Symbol* slot = nullptr;
  if (role == sym_ps_) {
    slot = &g.problem_space;
  } else if (role == sym_state_) {
    slot = &g.state;
  } else {
    slot = &g.op;
  }
  if (slot->valid()) remove_triple(g.id, role, Value(*slot));
  *slot = value;
  add_triple(g.id, role, Value(value));
  if (role == sym_state_ && g.op.valid()) {
    // A new state retires the operator that produced it.
    remove_triple(g.id, sym_op_, Value(g.op));
    g.op = Symbol();
  }
}

void SoarKernel::push_subgoal(GoalEntry& g, Symbol role, Symbol type,
                              const std::vector<Candidate>& items,
                              SoarRunStats& stats) {
  // Copy out of `g` before push_back: it references into stack_, which may
  // reallocate.
  const Symbol super_id = g.id;
  const Symbol super_state = g.state;
  const int level = g.level;
  const Symbol sg = make_id("g", level + 1);
  GoalEntry e;
  e.id = sg;
  e.level = level + 1;
  e.impasse_role = role;
  e.impasse_type = type;
  stack_.push_back(e);
  add_triple(sg, "object", Value(super_id));
  add_triple(sg, "role", Value(role));
  add_triple(sg, "impasse", Value(type));
  add_triple(sg, "superstate", Value(super_state));
  for (const Candidate& c : items) {
    add_triple(sg, "item", Value(c.value));
  }
  ++stats.impasses;
}

bool SoarKernel::subgoal_exists_for(size_t gi, Symbol role) const {
  return gi + 1 < stack_.size() && stack_[gi + 1].impasse_role == role;
}

namespace {

/// Resolves a multi-candidate slot: a unique best wins; otherwise, if every
/// candidate carries an indifferent preference, the lowest symbol wins
/// deterministically; otherwise the tie stands.
std::optional<Symbol> choose(
    const std::vector<SoarKernel::Candidate>& cands) {
  if (cands.size() == 1) return cands.front().value;
  size_t n_best = 0;
  Symbol best;
  for (const auto& c : cands) {
    if (c.best) {
      ++n_best;
      best = c.value;
    }
  }
  if (n_best == 1) return best;
  const bool all_indiff = std::all_of(
      cands.begin(), cands.end(),
      [](const SoarKernel::Candidate& c) { return c.indifferent || c.best; });
  if (!cands.empty() && (all_indiff || n_best > 1)) {
    // Deterministic pick among mutually indifferent (or equally best)
    // candidates.
    std::optional<Symbol> min;
    for (const auto& c : cands) {
      if (n_best > 0 && !c.best) continue;
      if (!min || c.value < *min) min = c.value;
    }
    return min;
  }
  return std::nullopt;
}

}  // namespace

bool SoarKernel::decide(SoarRunStats& stats) {
  for (size_t gi = 0; gi < stack_.size(); ++gi) {
    GoalEntry& g = stack_[gi];

    // Problem-space slot (tasks usually pre-install it at setup).
    if (!g.problem_space.valid()) {
      auto cands = slot_candidates(g, sym_ps_);
      if (auto pick = choose(cands)) {
        install(g, sym_ps_, *pick);
        pop_goals_below(g.level);
        return true;
      }
    }

    // Operator completion without a state change (monotonic tasks mark the
    // operator (o ^done yes) instead of proposing a successor state).
    if (g.op.valid() &&
        engine_.wm().find(cls_wme_, {Value(g.op), Value(sym_done_),
                                     Value(sym_yes_)}) != nullptr) {
      remove_triple(g.id, sym_op_, Value(g.op));
      g.op = Symbol();
      pop_goals_below(g.level);
      return true;
    }

    // State slot: operator applications propose the successor state.
    {
      auto cands = slot_candidates(g, sym_state_);
      cands.erase(std::remove_if(cands.begin(), cands.end(),
                                 [&](const Candidate& c) {
                                   return c.value == g.state;
                                 }),
                  cands.end());
      if (!cands.empty()) {
        if (auto pick = choose(cands)) {
          install(g, sym_state_, *pick);
          pop_goals_below(g.level);
          return true;
        }
        // Several competing successor states: rare; treat as a tie impasse
        // on the state slot.
        if (!subgoal_exists_for(gi, sym_state_)) {
          push_subgoal(g, sym_state_, sym_tie_, cands, stats);
          return true;
        }
      }
    }

    // Operator slot.
    if (!g.op.valid() && g.state.valid()) {
      auto cands = slot_candidates(g, sym_op_);
      if (!cands.empty()) {
        if (auto pick = choose(cands)) {
          install(g, sym_op_, *pick);
          pop_goals_below(g.level);
          return true;
        }
        if (!subgoal_exists_for(gi, sym_op_)) {
          push_subgoal(g, sym_op_, sym_tie_, cands, stats);
          return true;
        }
        // The tie subgoal exists but has not produced a resolution yet;
        // give deeper goals a chance (they have none to give in this
        // simplified architecture, so the run will end as "stuck").
      }
      // No candidates at all: nothing to decide at this goal.
    }
  }
  return false;
}

}  // namespace psme
