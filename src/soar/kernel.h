// Soar kernel: the Decide module (universal subgoaling), the synchronous
// elaboration phase, chunking, and working-memory garbage collection by
// context reachability (§3 of the paper).
//
// Representation (Soar-style triples, cf. "Soar systems use collections of
// smaller wmes"):
//   (wme  ^id <i> ^attr <a> ^value <v>)                      task state
//   (pref ^gid <g> ^sid <s> ^role <slot> ^value <v> ^kind <k> ^ref <v2>)
//     preferences for the context slots; kind is acceptable, best, reject,
//     better (with ^ref), or indifferent; ^sid scopes operator/state
//     preferences to the state they were proposed for.
//
// Context slots per goal: problem-space, state, operator — "each goal entry
// in the context stack is represented using three wmes". Decide fills them
// from preferences after each elaboration phase reaches quiescence; an
// unresolvable slot raises a tie or no-change impasse and pushes a subgoal.
//
// Chunking: every wme created by a production firing records its creating
// instantiation. When a firing in a subgoal creates a wme attached to a
// less-deep goal (a *result*), the chunker backtraces through subgoal-level
// wmes to the supergoal wmes that produced it, variablizes identifiers, and
// emits a new production, which is compiled into the live Rete at the end of
// the elaboration cycle (§5).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"

namespace psme {

struct SoarOptions {
  bool learning = true;
  uint64_t max_decisions = 200;
  uint64_t max_elab_cycles = 100000;
  EngineOptions engine;

  /// Convenience override: when non-zero, forwarded into
  /// engine.match_workers/match_policy so a whole Soar run (every
  /// elaboration cycle plus every chunk's §5.2 state update) drains through
  /// one persistent ParallelMatcher. Parallel cycles record no traces.
  size_t match_workers = 0;
  TaskQueueSet::Policy match_policy = TaskQueueSet::Policy::Steal;

  /// Flight recorder (obs/profiler.h): when non-zero, run() captures a
  /// (metrics + profile) snapshot into a preallocated ring every
  /// `flight_every` decisions — a post-hoc window over a long-lived session
  /// without tracing overhead. PSME_FLIGHT=<path> arms it too (defaulting
  /// flight_every to 1) and dumps the retained window there at the end of
  /// run(). Capture is a reporting-time operation at the quiescent decision
  /// boundary, never inside a match cycle.
  uint64_t flight_every = 0;
  size_t flight_capacity = 32;
};

/// Provenance of one wme: the instantiation whose firing created it.
struct Provenance {
  const Production* prod = nullptr;
  Token token;
  int level = 0;  // goal level of the creating instantiation
};

struct SoarRunStats {
  uint64_t decisions = 0;
  uint64_t elab_cycles = 0;
  uint64_t impasses = 0;
  uint64_t chunks_built = 0;
  bool goal_achieved = false;
  bool halted_on_limit = false;

  /// Per-phase wall time of the run loop (always-on: two clock reads per
  /// phase per decision). Elaborate covers the parallel-drain-friendly match
  /// work; Decide and GC run serially between drains — these three settle
  /// the ROADMAP question of whether that serial gap matters as sessions
  /// scale (bench_multiagent reports their shares).
  uint64_t elaborate_ns = 0;
  uint64_t decide_ns = 0;
  uint64_t gc_ns = 0;

  /// One trace per elaboration cycle (the match workload of the run).
  std::vector<CycleTrace> traces;
  /// Traces of the §5.2 update phases for every chunk added at run time.
  std::vector<CycleTrace> update_ab, update_c;
  /// Compile cost per chunk (Table 5-1/5-2 raw data).
  struct ChunkCost {
    double compile_seconds = 0;
    size_t code_bytes = 0;
    int total_ces = 0;
    uint32_t new_two_input_nodes = 0;
  };
  std::vector<ChunkCost> chunk_costs;
  /// Source text of the chunks built, parseable by a fresh kernel (used to
  /// seed after-chunking runs).
  std::vector<std::string> chunk_texts;
};

class SoarKernel {
 public:
  explicit SoarKernel(SoarOptions opts = {});

  /// Per-agent session over a shared network (multi-agent serving): the
  /// kernel's engine joins `cnet` — and `shared_matcher`'s worker pool, when
  /// given — as a new agent session (see engine/agent_group.h for the
  /// group-managed form). Chunks this kernel learns are compiled
  /// copy-on-write into the shared jumptable and every sibling agent's
  /// memories are brought up to date (§5.2); chunk dedup is network-wide.
  SoarKernel(SoarOptions opts, std::shared_ptr<CompiledNetwork> cnet,
             ParallelMatcher* shared_matcher = nullptr);

  Engine& engine() { return engine_; }
  [[nodiscard]] const SoarOptions& options() const { return opts_; }

  /// Loads task productions (initial production memory).
  void load_productions(std::string_view src);

  // ---- identifiers -------------------------------------------------------
  /// Creates and registers a fresh identifier at `level`.
  Symbol make_id(std::string_view prefix, int level);
  void register_id(Symbol s, int level);
  /// Goal level of an identifier; 0 if `s` is not a registered identifier.
  [[nodiscard]] int id_level(Symbol s) const;

  // ---- task setup --------------------------------------------------------
  /// Adds a task triple (wme ^id ^attr ^value); architectural (no creator).
  const Wme* add_triple(Symbol id, std::string_view attr, Value v);
  const Wme* add_triple(Symbol id, Symbol attr, Value v);

  /// Removes the live triple (id ^attr value) if present.
  void remove_triple(Symbol id, Symbol attr, Value v);

  /// Creates the top goal with the given problem space and initial state
  /// identifiers installed in its context. Must be called exactly once.
  Symbol create_top_goal(Symbol problem_space, Symbol initial_state);

  /// The run halts with goal_achieved when this returns true (checked after
  /// each decision). Typical tasks test for a wme like (<s> ^task-done yes).
  void set_goal_test(std::function<bool(SoarKernel&)> fn) {
    goal_test_ = std::move(fn);
  }

  /// Observer called after every decision (tracing, examples, debugging).
  void set_decision_listener(std::function<void(SoarKernel&)> fn) {
    on_decision_ = std::move(fn);
  }

  /// Convenience goal test helper: does any live triple (id ^attr value)
  /// exist?
  [[nodiscard]] bool has_triple_attr(std::string_view attr,
                                     std::string_view value);

  // ---- main loop ---------------------------------------------------------
  SoarRunStats run();

  /// The flight recorder, non-null once run() armed it (SoarOptions::
  /// flight_every or PSME_FLIGHT). Retained across runs, so a caller can
  /// inspect the last window after run() returns or dump() it elsewhere.
  [[nodiscard]] obs::FlightRecorder* flight() const { return flight_.get(); }

  // ---- production removal ------------------------------------------------
  /// Excises a production at run time: scrubs the provenance of every wme it
  /// created (the chunker must never backtrace into a torn-down
  /// instantiation), removes it from the live Rete through
  /// Engine::remove_production_runtime, and — if it was a chunk this network
  /// learned — forgets its dedup signature so an identical chunk can be
  /// re-learned later. The wmes themselves stay in working memory: Soar
  /// results outlive their creators (they are retracted by goal GC, not by
  /// production removal).
  Engine::RuntimeRemoveResult excise(const Production* p);

  // ---- introspection (tests/benches) --------------------------------------
  struct GoalEntry {
    Symbol id;
    int level = 1;
    Symbol problem_space, state, op;
    Symbol impasse_role;  // role of the impasse this goal was created for
    Symbol impasse_type;
  };
  [[nodiscard]] const std::vector<GoalEntry>& goal_stack() const {
    return stack_;
  }
  [[nodiscard]] int wme_level(const Wme* w) const;

  struct Candidate {
    Symbol value;
    bool best = false;
    bool indifferent = false;
  };

 private:
  friend class Chunker;

  /// Shared ctor tail: symbol interning, gensym hook, wme retention.
  void init();

  // Elaboration phase: fire all unfired instantiations, match, repeat until
  // quiescence. Appends traces to `stats`.
  void elaborate(SoarRunStats& stats);

  // One decision: fills a slot, replaces a state, or raises an impasse.
  // Returns false when nothing at all can change (system quiescent).
  bool decide(SoarRunStats& stats);

  std::vector<Candidate> slot_candidates(const GoalEntry& g, Symbol role);

  void install(GoalEntry& g, Symbol role, Symbol value);
  void push_subgoal(GoalEntry& g, Symbol role, Symbol type,
                    const std::vector<Candidate>& items, SoarRunStats& stats);
  void pop_goals_below(int level);
  void gc_wmes_above(int level);

  // Context-reachability garbage collection (§3: "The decision module keeps
  // track of which wmes are accessible from the context stack, and
  // automatically garbage collects inaccessible wmes"). Runs after every
  // decision; superseded states, their substructure and their stale
  // preferences are retracted from the match.
  void gc_unreachable();

  // Fire bookkeeping: applies a delta with provenance recording.
  void apply_fire_delta(const Instantiation* inst, SoarRunStats& stats);
  int instantiation_level(const Token& token) const;

  // All provenance_ mutation goes through these two: a Provenance token is
  // held across elaboration cycles, so the map owns a pinned copy (the
  // chunker backtraces through it long after the creating drain ended).
  void set_provenance(const Wme* w, const Production* prod, const Token& tok,
                      int level);
  void drop_provenance(const Wme* w);

  // Builds and installs chunks for the pending results (end of elaboration
  // cycle; WM is consistent with the network at this point).
  void flush_chunks(SoarRunStats& stats);

  [[nodiscard]] bool subgoal_exists_for(size_t gi, Symbol role) const;

  SoarOptions opts_;
  Engine engine_;
  std::function<bool(SoarKernel&)> goal_test_;
  std::function<void(SoarKernel&)> on_decision_;
  std::unique_ptr<obs::FlightRecorder> flight_;  // armed on first run()

  Symbol cls_wme_, cls_pref_;
  Symbol attr_id_, attr_attr_, attr_value_;
  Symbol attr_gid_, attr_sid_, attr_role_, attr_kind_, attr_ref_;
  Symbol sym_ps_, sym_state_, sym_op_;
  Symbol sym_acceptable_, sym_best_, sym_reject_, sym_better_, sym_indiff_;
  Symbol sym_tie_, sym_nochange_;
  Symbol sym_done_, sym_yes_, sym_prev_;

  std::unordered_map<Symbol, int> id_level_;
  std::unordered_map<const Wme*, Provenance> provenance_;
  std::unordered_map<const Wme*, int> wme_level_;
  std::vector<GoalEntry> stack_;

  // Results awaiting chunking at the end of the current elaboration cycle.
  struct PendingResult {
    const Wme* wme;
    int result_level;
  };
  std::vector<PendingResult> pending_results_;
  // Chunk signature dedup lives on the shared CompiledNetwork (network-wide
  // across agent sessions), not here. This map only remembers which signature
  // each locally-built chunk carries, so excise() can release it.
  std::unordered_map<const Production*, std::string> chunk_sigs_;
  std::vector<const Instantiation*> unfired_scratch_;  // per-elab harvest
  int current_fire_level_ = 1;

  friend struct SoarAccess;
};

}  // namespace psme
