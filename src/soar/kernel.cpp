#include "soar/kernel.h"

#include <algorithm>

#include "lang/print.h"
#include "obs/tracer.h"
#include "soar/chunker.h"

namespace psme {
namespace {

/// Applies the SoarOptions match-parallelism override before the engine is
/// constructed, so the persistent matcher covers the kernel's whole
/// lifetime — every elaboration cycle and chunk state update reuses the
/// same worker pool instead of re-spawning threads per cycle.
EngineOptions with_match_override(const SoarOptions& opts) {
  EngineOptions eo = opts.engine;
  if (opts.match_workers != 0) {
    eo.match_workers = opts.match_workers;
    eo.match_policy = opts.match_policy;
    eo.record_traces = eo.record_traces && opts.match_workers <= 1;
  }
  return eo;
}

}  // namespace

SoarKernel::SoarKernel(SoarOptions opts)
    : opts_(opts), engine_(with_match_override(opts)) {
  init();
}

SoarKernel::SoarKernel(SoarOptions opts, std::shared_ptr<CompiledNetwork> cnet,
                       ParallelMatcher* shared_matcher)
    : opts_(opts),
      engine_(std::move(cnet), with_match_override(opts), shared_matcher) {
  // Interning is idempotent, so N sessions sharing one symbol table all
  // resolve the same architectural symbols and slot layouts.
  init();
}

void SoarKernel::init() {
  SymbolTable& syms = engine_.syms();
  ClassSchemas& sch = engine_.schemas();
  cls_wme_ = syms.intern("wme");
  cls_pref_ = syms.intern("pref");
  attr_id_ = syms.intern("id");
  attr_attr_ = syms.intern("attr");
  attr_value_ = syms.intern("value");
  attr_gid_ = syms.intern("gid");
  attr_sid_ = syms.intern("sid");
  attr_role_ = syms.intern("role");
  attr_kind_ = syms.intern("kind");
  attr_ref_ = syms.intern("ref");
  // Pin slot layouts: (wme id attr value), (pref gid sid role value kind ref).
  sch.slot(cls_wme_, attr_id_);
  sch.slot(cls_wme_, attr_attr_);
  sch.slot(cls_wme_, attr_value_);
  sch.slot(cls_pref_, attr_gid_);
  sch.slot(cls_pref_, attr_sid_);
  sch.slot(cls_pref_, attr_role_);
  sch.slot(cls_pref_, attr_value_);
  sch.slot(cls_pref_, attr_kind_);
  sch.slot(cls_pref_, attr_ref_);

  sym_ps_ = syms.intern("problem-space");
  sym_state_ = syms.intern("state");
  sym_op_ = syms.intern("operator");
  sym_acceptable_ = syms.intern("acceptable");
  sym_best_ = syms.intern("best");
  sym_reject_ = syms.intern("reject");
  sym_better_ = syms.intern("better");
  sym_indiff_ = syms.intern("indifferent");
  sym_tie_ = syms.intern("tie");
  sym_nochange_ = syms.intern("no-change");
  sym_done_ = syms.intern("done");
  sym_yes_ = syms.intern("yes");
  sym_prev_ = syms.intern("prev");

  engine_.set_gensym_hook(
      [this](Symbol s) { register_id(s, current_fire_level_); });
  // Removed wmes stay allocated: chunking's provenance records may still
  // point at garbage-collected wmes (their contents are patterns, not live
  // state).
  engine_.wm().set_retain_removed(true);
}

void SoarKernel::load_productions(std::string_view src) {
  engine_.load(src);
}

Symbol SoarKernel::make_id(std::string_view prefix, int level) {
  const Symbol s = engine_.syms().gensym(prefix);
  register_id(s, level);
  return s;
}

void SoarKernel::register_id(Symbol s, int level) {
  id_level_.emplace(s, level);
}

int SoarKernel::id_level(Symbol s) const {
  auto it = id_level_.find(s);
  return it == id_level_.end() ? 0 : it->second;
}

int SoarKernel::wme_level(const Wme* w) const {
  auto it = wme_level_.find(w);
  return it == wme_level_.end() ? 1 : it->second;
}

const Wme* SoarKernel::add_triple(Symbol id, std::string_view attr, Value v) {
  return add_triple(id, engine_.syms().intern(attr), v);
}

const Wme* SoarKernel::add_triple(Symbol id, Symbol attr, Value v) {
  std::vector<Value> fields{Value(id), Value(attr), v};
  if (const Wme* existing = engine_.wm().find(cls_wme_, fields)) {
    return existing;
  }
  const Wme* w = engine_.add_wme(cls_wme_, std::move(fields));
  const int lvl = id_level(id);
  wme_level_[w] = lvl > 0 ? lvl : 1;
  return w;
}

void SoarKernel::remove_triple(Symbol id, Symbol attr, Value v) {
  const Wme* w = engine_.wm().find(cls_wme_, {Value(id), Value(attr), v});
  if (w == nullptr) return;
  drop_provenance(w);
  wme_level_.erase(w);
  engine_.remove_wme(w);
}

Symbol SoarKernel::create_top_goal(Symbol problem_space, Symbol initial_state) {
  const Symbol g = make_id("g", 1);
  GoalEntry e;
  e.id = g;
  e.level = 1;
  e.problem_space = problem_space;
  e.state = initial_state;
  stack_.push_back(e);
  add_triple(g, sym_ps_, Value(problem_space));
  add_triple(g, sym_state_, Value(initial_state));
  return g;
}

bool SoarKernel::has_triple_attr(std::string_view attr,
                                 std::string_view value) {
  const Symbol a = engine_.syms().find(attr);
  const Symbol v = engine_.syms().find(value);
  if (!a.valid() || !v.valid()) return false;
  for (const Wme* w : engine_.wm().live()) {
    if (w->cls == cls_wme_ && w->field(1) == Value(a) &&
        w->field(2) == Value(v)) {
      return true;
    }
  }
  return false;
}

void SoarKernel::set_provenance(const Wme* w, const Production* prod,
                                const Token& tok, int level) {
  Provenance& slot = provenance_[w];
  slot.token.unpin();  // no-op for the freshly default-constructed slot
  slot = Provenance{prod, tok, level};
  slot.token.pin();
}

void SoarKernel::drop_provenance(const Wme* w) {
  auto it = provenance_.find(w);
  if (it == provenance_.end()) return;
  it->second.token.unpin();
  provenance_.erase(it);
}

int SoarKernel::instantiation_level(const Token& token) const {
  int lvl = 1;
  for (const Wme* w : token) {
    for (const Value& v : w->fields) {
      if (v.is_sym()) lvl = std::max(lvl, id_level(v.sym()));
    }
  }
  return lvl;
}

void SoarKernel::apply_fire_delta(const Instantiation* inst,
                                  SoarRunStats& stats) {
  (void)stats;
  const Production* prod = inst->pnode->prod;
  const int lvl = instantiation_level(inst->token);
  current_fire_level_ = lvl;
  WmeDelta delta = engine_.evaluate(inst);
  engine_.cs().mark_fired(inst);

  for (const auto& add : delta.adds) {
    if (engine_.wm().find(add.cls, add.fields.data(), add.fields.size()) !=
        nullptr) {
      continue;  // dedup
    }
    const Wme* w =
        engine_.add_wme(add.cls, add.fields.data(), add.fields.size());
    int wl = lvl;
    if (!add.fields.empty() && add.fields[0].is_sym()) {
      const int l0 = id_level(add.fields[0].sym());
      if (l0 > 0) wl = l0;
    }
    wme_level_[w] = wl;
    set_provenance(w, prod, inst->token, lvl);
    if (opts_.learning && lvl > 1 && wl < lvl) {
      // Indifference results are deliberately not chunked: an over-general
      // indifference chunk would fire at the top level and mask the tie
      // impasse in situations where deliberate evaluation would have found a
      // best candidate — the classic over-general-chunk hazard ("Why Some
      // Chunks Are Expensive" discusses related pathologies). Only
      // substantive evaluations (best / reject / better) become chunks.
      const bool indifferent_pref =
          w->cls == cls_pref_ && w->field(4) == Value(sym_indiff_);
      if (!indifferent_pref) pending_results_.push_back({w, wl});
    }
  }
  for (const Wme* rm : delta.removes) {
    drop_provenance(rm);
    wme_level_.erase(rm);
    engine_.remove_wme(rm);
  }
}

void SoarKernel::flush_chunks(SoarRunStats& stats) {
  if (pending_results_.empty()) return;
  if (!opts_.learning) {
    pending_results_.clear();
    return;
  }
  Chunker chunker(*this);
  for (const PendingResult& pr : pending_results_) {
    if (!engine_.wm().is_live(pr.wme)) continue;
    std::string sig;
    obs::Span build_span(engine_.tracer(), 0, obs::EventKind::ChunkBuild);
    auto chunk = chunker.build_chunk(pr.wme, pr.result_level, &sig);
    build_span.end();
    if (!chunk) continue;
    // Network-wide dedup: a signature any attached agent already compiled
    // into the shared Rete is skipped here too.
    if (!engine_.network().note_chunk_signature(sig)) continue;
    stats.chunk_texts.push_back(
        production_to_text(*chunk, engine_.syms(), engine_.schemas()));
    auto res = engine_.add_production_runtime(std::move(*chunk));
    chunk_sigs_.emplace(res.prod, std::move(sig));
    ++stats.chunks_built;
    SoarRunStats::ChunkCost cost;
    cost.compile_seconds = res.compile_seconds;
    cost.code_bytes = res.code_bytes;
    cost.total_ces = res.prod->total_ce_count();
    const CompiledProduction& cp = engine_.record(res.prod).compiled;
    for (const uint32_t id : cp.new_nodes) {
      const NodeType t = engine_.net().node(id)->type;
      if (t == NodeType::Join || t == NodeType::Not) ++cost.new_two_input_nodes;
    }
    stats.chunk_costs.push_back(cost);
    stats.update_ab.push_back(std::move(res.ab));
    stats.update_c.push_back(std::move(res.c));
  }
  pending_results_.clear();
}

Engine::RuntimeRemoveResult SoarKernel::excise(const Production* p) {
  // Provenance first: the map holds pinned tokens whose nodes the removal
  // drain is about to make reclaimable. The wmes keep their level and stay
  // live — only the backtrace trail to this production is severed.
  for (auto it = provenance_.begin(); it != provenance_.end();) {
    if (it->second.prod == p) {
      it->second.token.unpin();
      it = provenance_.erase(it);
    } else {
      ++it;
    }
  }
  const auto sig = chunk_sigs_.find(p);
  if (sig != chunk_sigs_.end()) {
    engine_.network().forget_chunk_signature(sig->second);
    chunk_sigs_.erase(sig);
  }
  return engine_.remove_production_runtime(p);
}

void SoarKernel::elaborate(SoarRunStats& stats) {
  uint64_t guard = 0;
  for (;;) {
    if (++guard > opts_.max_elab_cycles) break;
    if (engine_.has_pending_changes()) {
      stats.traces.push_back(engine_.match());
      ++stats.elab_cycles;
    }
    // The match is quiescent and WM is consistent with the network: chunks
    // created by the previous firing batch are compiled and updated now
    // ("Soar adds chunks only at the end of an elaboration cycle").
    flush_chunks(stats);
    engine_.cs().unfired_into(unfired_scratch_);
    const auto& insts = unfired_scratch_;
    if (insts.empty()) {
      if (!engine_.has_pending_changes()) break;
      continue;
    }
    for (const Instantiation* inst : insts) {
      apply_fire_delta(inst, stats);
    }
  }
}

SoarRunStats SoarKernel::run() {
  SoarRunStats stats;
  // Flight recorder: armed by options or by PSME_FLIGHT (which defaults the
  // cadence to every decision). The ring is preallocated once and survives
  // across run() calls; snapshot capture is reporting-time work at the
  // quiescent decision boundary (the kernel's own bookkeeping allocates
  // there anyway — see ROADMAP's heap-free-the-kernel item).
  const char* flight_path = obs::env_flight_path();
  uint64_t flight_every = opts_.flight_every;
  if (flight_every == 0 && flight_path != nullptr) flight_every = 1;
  if (flight_every != 0 && flight_ == nullptr) {
    flight_ = std::make_unique<obs::FlightRecorder>(opts_.flight_capacity);
  }
  for (;;) {
    {
      obs::Span span(engine_.tracer(), 0, obs::EventKind::Elaborate);
      const uint64_t t0 = obs::profile_now_ns();
      elaborate(stats);
      stats.elaborate_ns += obs::profile_now_ns() - t0;
    }
    if (goal_test_ && goal_test_(*this)) {
      stats.goal_achieved = true;
      break;
    }
    if (stats.decisions >= opts_.max_decisions) {
      stats.halted_on_limit = true;
      break;
    }
    ++stats.decisions;
    bool changed = false;
    {
      obs::Span span(engine_.tracer(), 0, obs::EventKind::Decide);
      const uint64_t t0 = obs::profile_now_ns();
      changed = decide(stats);
      stats.decide_ns += obs::profile_now_ns() - t0;
    }
    if (changed) {
      obs::Span span(engine_.tracer(), 0, obs::EventKind::Gc);
      const uint64_t t0 = obs::profile_now_ns();
      gc_unreachable();
      stats.gc_ns += obs::profile_now_ns() - t0;
    }
    if (flight_ != nullptr && stats.decisions % flight_every == 0) {
      obs::MetricsRegistry m;
      obs::collect(m, stats);
      engine_.collect_metrics(m);
      flight_->snapshot(m, engine_.profiler(), stats.decisions);
    }
    if (on_decision_) on_decision_(*this);
    if (!changed) break;  // fully quiescent: nothing can change
  }
  if (flight_ != nullptr && flight_path != nullptr) {
    flight_->dump(flight_path);
  }
  return stats;
}

void SoarKernel::pop_goals_below(int level) {
  if (stack_.empty() || stack_.back().level <= level) return;
  gc_wmes_above(level);
  while (!stack_.empty() && stack_.back().level > level) stack_.pop_back();
}

void SoarKernel::gc_unreachable() {
  // Reachable identifiers: start from the context stack (goal ids and slot
  // values), follow wme triples id -> value, and let preferences scoped to a
  // *current* state keep their operator objects alive.
  std::unordered_map<Symbol, bool> reachable;
  auto mark = [&](Symbol s) -> bool {
    if (id_level_.count(s) == 0) return false;  // constants need no marking
    auto [it, inserted] = reachable.emplace(s, true);
    return inserted;
  };
  for (const GoalEntry& g : stack_) {
    mark(g.id);
    if (g.problem_space.valid()) mark(g.problem_space);
    if (g.state.valid()) mark(g.state);
    if (g.op.valid()) mark(g.op);
  }
  const auto live = engine_.wm().live();
  auto current_state = [&](const Value& sid) {
    if (sid.is_nil()) return true;
    if (!sid.is_sym()) return false;
    for (const GoalEntry& g : stack_) {
      if (g.state == sid.sym()) return true;
    }
    return false;
  };
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Wme* w : live) {
      if (w->cls == cls_wme_) {
        // ^prev links are weak references (a state's pointer to the state it
        // was derived from); following them would keep every superseded
        // state alive forever.
        if (w->field(1) == Value(sym_prev_)) continue;
        const Value id = w->field(0);
        const Value v = w->field(2);
        if (id.is_sym() && reachable.count(id.sym()) != 0 && v.is_sym()) {
          grew |= mark(v.sym());
        }
      } else if (w->cls == cls_pref_) {
        const Value gid = w->field(0);
        if (gid.is_sym() && reachable.count(gid.sym()) != 0 &&
            current_state(w->field(1))) {
          if (w->field(3).is_sym()) grew |= mark(w->field(3).sym());
          if (w->field(5).is_sym()) grew |= mark(w->field(5).sym());
        }
      }
    }
  }
  // Retract everything inaccessible from the context stack.
  for (const Wme* w : live) {
    bool keep = true;
    if (w->cls == cls_wme_) {
      const Value id = w->field(0);
      keep = !id.is_sym() || id_level_.count(id.sym()) == 0 ||
             reachable.count(id.sym()) != 0;
    } else if (w->cls == cls_pref_) {
      keep = current_state(w->field(1));
      if (keep && w->field(3).is_sym() &&
          id_level_.count(w->field(3).sym()) != 0) {
        keep = reachable.count(w->field(3).sym()) != 0;
      }
    }
    if (!keep) {
      drop_provenance(w);
      wme_level_.erase(w);
      engine_.remove_wme(w);
    }
  }
}

void SoarKernel::gc_wmes_above(int level) {
  for (const Wme* w : engine_.wm().live()) {
    auto it = wme_level_.find(w);
    const int wl = it == wme_level_.end() ? 1 : it->second;
    if (wl > level) {
      drop_provenance(w);
      wme_level_.erase(w);
      engine_.remove_wme(w);
    }
  }
}

}  // namespace psme
