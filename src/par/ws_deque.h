// Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA 2005; memory
// orderings after Lê/Pop/Cocchi/Zappa Nardelli, PPoPP 2013).
//
// This is the scheduler core that replaces the paper's lock-and-look task
// queues (src/par/task_queue.*) for the `Steal` policy: the owning worker
// pushes and pops at the bottom with plain loads/stores, thieves take from
// the top with a single CAS, and an idle worker never acquires a lock to
// discover that a queue is empty — the §6 "failed pop" traffic that bends
// the paper's 13-process curve simply does not exist here.
//
// Properties relied on by the matcher:
//   * single owner: push()/pop() are called only by the owning worker (or
//     before the workers are dispatched, when there is no concurrency);
//   * steal() is safe from any thread, lock-free, and either returns a task
//     or nullptr (empty, or lost the CAS race to another thief/the owner);
//   * top_ is a monotone 64-bit counter, so the top CAS is ABA-free;
//   * the ring grows by doubling; retired rings are kept alive until the
//     deque is destroyed because a slow thief may still read a stale ring
//     pointer — its CAS on top_ then fails and the stale read is discarded,
//     which is what makes the stale ring access benign;
//   * slots are std::atomic<T*> so the owner's recycling store and a racing
//     thief's stale read are a data race in the hardware sense but not in
//     the C++ sense (the CAS validates which of the two values was taken).
//
// The deque deliberately carries no LockRank: there is no lock to rank.
// All orderings on top_/bottom_ are seq_cst rather than the minimal
// fence-based set from the literature — one uncontended seq_cst RMW per
// task is noise next to a node activation, and ThreadSanitizer reasons
// about seq_cst atomics precisely while it does not model standalone
// fences.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace psme {

template <typename T>
class WsDeque {
 public:
  /// `initial_capacity` is rounded up to a power of two. Tiny capacities are
  /// legal (the growth path is exercised by tests at capacity 2).
  explicit WsDeque(size_t initial_capacity = 64) {
    size_t cap = 2;
    while (cap < initial_capacity) cap <<= 1;
    rings_.push_back(std::make_unique<Ring>(cap));
    active_.store(rings_.back().get(), std::memory_order_relaxed);
  }
  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner only. The deque never takes ownership of `item` semantics beyond
  /// storing the pointer; the scheduler deletes what it pops/steals.
  void push(T* item) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = active_.load(std::memory_order_relaxed);
    if (b - t > static_cast<int64_t>(ring->mask)) {
      ring = grow(ring, t, b);
    }
    ring->put(b, item);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only; LIFO. Returns nullptr when the deque is empty.
  T* pop() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = active_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_seq_cst);
      return nullptr;
    }
    T* item = ring->get(b);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return item;
  }

  /// Any thread; FIFO. Returns nullptr when empty or when the CAS race was
  /// lost (the caller treats both as "try elsewhere").
  T* steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* ring = active_.load(std::memory_order_acquire);
    T* item = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Approximate (racy) — exact only at quiescence or from the owner.
  [[nodiscard]] bool empty() const {
    return top_.load(std::memory_order_seq_cst) >=
           bottom_.load(std::memory_order_seq_cst);
  }

  /// Approximate size; exact at quiescence.
  [[nodiscard]] size_t size() const {
    const int64_t d = bottom_.load(std::memory_order_seq_cst) -
                      top_.load(std::memory_order_seq_cst);
    return d > 0 ? static_cast<size_t>(d) : 0;
  }

  /// Current ring capacity (owner/tests).
  [[nodiscard]] size_t capacity() const {
    return active_.load(std::memory_order_relaxed)->mask + 1;
  }

  /// Number of rings ever allocated (tests: growth happened).
  [[nodiscard]] size_t ring_count() const { return rings_.size(); }

 private:
  struct Ring {
    explicit Ring(size_t cap) : mask(cap - 1), slots(cap) {}
    size_t mask;
    std::vector<std::atomic<T*>> slots;

    [[nodiscard]] T* get(int64_t i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(int64_t i, T* v) {
      slots[static_cast<size_t>(i) & mask].store(v,
                                                 std::memory_order_relaxed);
    }
  };

  /// Owner only: doubles the ring, copying the live window [t, b). The old
  /// ring stays allocated (rings_) until destruction — see header comment.
  Ring* grow(Ring* old, int64_t t, int64_t b) {
    rings_.push_back(std::make_unique<Ring>((old->mask + 1) * 2));
    Ring* next = rings_.back().get();
    for (int64_t i = t; i < b; ++i) next->put(i, old->get(i));
    active_.store(next, std::memory_order_release);
    return next;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Ring*> active_{nullptr};
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-only; active + retired
};

}  // namespace psme
