#include "par/parallel_match.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "par/worker_pool.h"

namespace psme {
namespace {

class WorkerCtx final : public ExecContext {
 public:
  WorkerCtx(TaskQueueSet& queues, std::atomic<int64_t>& outstanding,
            size_t worker)
      : queues_(queues), outstanding_(outstanding), worker_(worker) {}

  void emit(Activation&& a) override {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    queues_.push(worker_, std::move(a));
  }

 private:
  TaskQueueSet& queues_;
  std::atomic<int64_t>& outstanding_;
  size_t worker_;
};

}  // namespace

ParallelStats ParallelMatcher::run_cycle(std::vector<Activation> seeds) {
  TaskQueueSet queues(policy_, n_workers_);
  std::atomic<int64_t> outstanding{0};
  std::atomic<uint64_t> executed{0};

  // Seed round-robin across queues so multi-queue workers start with work.
  {
    size_t w = 0;
    for (auto& s : seeds) {
      outstanding.fetch_add(1, std::memory_order_acq_rel);
      queues.push(w, std::move(s));
      w = (w + 1) % n_workers_;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  run_workers(n_workers_, [&](size_t worker) {
    WorkerCtx ctx(queues, outstanding, worker);
    Activation a;
    while (outstanding.load(std::memory_order_acquire) > 0) {
      if (queues.pop(worker, a)) {
        net_.execute(a, ctx);
        executed.fetch_add(1, std::memory_order_relaxed);
        outstanding.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        // Nothing found anywhere; let someone else run (we are likely
        // oversubscribed on this machine).
        std::this_thread::yield();
      }
    }
  });

  ParallelStats st;
  st.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  st.tasks = executed.load();
  st.failed_pops = queues.failed_pops();
  st.queue_lock_spins = queues.lock_spins();
  st.queue_lock_acquires = queues.lock_acquires();
  return st;
}

}  // namespace psme
