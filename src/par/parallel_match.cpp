#include "par/parallel_match.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "par/worker_pool.h"

namespace psme {
namespace {

class WorkerCtx final : public ExecContext {
 public:
  WorkerCtx(Network& net, TaskQueueSet& queues,
            std::atomic<int64_t>& outstanding, size_t worker,
            const ParallelMatcher::UpdateFilter* filter)
      : net_(net), queues_(queues), outstanding_(outstanding),
        worker_(worker) {
    if (filter != nullptr) {
      update_mode = true;
      min_node_id = filter->min_node_id;
      suppress_alpha_left = filter->suppress_alpha_left;
    }
  }

  void emit(Activation&& a) override {
    // §5.2 filter applied at emit time, like the serial DrainCtx: tasks that
    // would be dropped are never counted as outstanding, so quiescence
    // detection is unaffected.
    if (!net_.should_execute(a, *this)) return;
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    queues_.push(worker_, std::move(a));
  }

 private:
  Network& net_;
  TaskQueueSet& queues_;
  std::atomic<int64_t>& outstanding_;
  size_t worker_;
};

}  // namespace

ParallelStats ParallelMatcher::run_cycle(std::vector<Activation> seeds) {
  return run_impl(std::move(seeds), nullptr);
}

ParallelStats ParallelMatcher::run_update(std::vector<Activation> seeds,
                                          const UpdateFilter& filter) {
  return run_impl(std::move(seeds), &filter);
}

ParallelStats ParallelMatcher::run_impl(std::vector<Activation> seeds,
                                        const UpdateFilter* filter) {
  TaskQueueSet queues(policy_, n_workers_);
  std::atomic<int64_t> outstanding{0};
  std::atomic<uint64_t> executed{0};

  // Seed round-robin across queues so multi-queue workers start with work.
  // Seeds pass through the same §5.2 filter as emitted tasks.
  {
    WorkerCtx seed_ctx(net_, queues, outstanding, 0, filter);
    size_t w = 0;
    for (auto& s : seeds) {
      if (!net_.should_execute(s, seed_ctx)) continue;
      outstanding.fetch_add(1, std::memory_order_acq_rel);
      queues.push(w, std::move(s));
      w = (w + 1) % n_workers_;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  run_workers(n_workers_, [&](size_t worker) {
    WorkerCtx ctx(net_, queues, outstanding, worker, filter);
    Activation a;
    while (outstanding.load(std::memory_order_acquire) > 0) {
      if (queues.pop(worker, a)) {
        net_.execute(a, ctx);
        executed.fetch_add(1, std::memory_order_relaxed);
        outstanding.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        // Nothing found anywhere; let someone else run (we are likely
        // oversubscribed on this machine).
        std::this_thread::yield();
      }
    }
  });

  ParallelStats st;
  st.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  st.tasks = executed.load();
  st.failed_pops = queues.failed_pops();
  st.queue_lock_spins = queues.lock_spins();
  st.queue_lock_acquires = queues.lock_acquires();
  return st;
}

}  // namespace psme
