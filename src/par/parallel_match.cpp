#include "par/parallel_match.h"

#include <chrono>

#include "obs/record.h"

namespace psme {
namespace {

/// Histogram bucket for a run of `run` consecutive failed whole-pool
/// sweeps: 1, 2, 3-4, 5-8, 9-16, >16 (ParallelStats::kSweepHistBuckets).
inline size_t sweep_bucket(uint32_t run) {
  if (run <= 2) return run - 1;
  if (run <= 4) return 2;
  if (run <= 8) return 3;
  if (run <= 16) return 4;
  return 5;
}

inline uint64_t backoff_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// ExecContext that buffers emits locally. The §5.2 filter is applied at
/// emit time, like the serial DrainCtx, so dropped tasks are never counted
/// or published. The owner publishes the whole batch once per node
/// execution (counter bump + pushes + a single unpark), instead of touching
/// shared state per activation.
class BatchCtx final : public ExecContext {
 public:
  BatchCtx(Network& net, const ParallelMatcher::UpdateFilter* filter)
      : net_(net) {
    if (filter != nullptr) {
      update_mode = true;
      min_node_id = filter->min_node_id;
      suppress_alpha_left = filter->suppress_alpha_left;
    }
  }

  void emit(Activation&& a) override {
    if (!net_.should_execute(a, *this)) return;
    batch.push_back(std::move(a));
  }

  std::vector<Activation> batch;

 private:
  Network& net_;
};

/// The locked-policy worker context: pushes straight through to the shared
/// queues, one lock acquisition per activation — the paper-faithful
/// behavior the Figure 6-x configurations measure.
class LockedCtx final : public ExecContext {
 public:
  LockedCtx(Network& net, TaskQueueSet& queues,
            std::atomic<int64_t>& outstanding, size_t worker,
            const ParallelMatcher::UpdateFilter* filter)
      : net_(net), queues_(queues), outstanding_(outstanding),
        worker_(worker) {
    this->worker = worker;  // arena pool index (ExecContext)
    if (filter != nullptr) {
      update_mode = true;
      min_node_id = filter->min_node_id;
      suppress_alpha_left = filter->suppress_alpha_left;
    }
  }

  void emit(Activation&& a) override {
    // Tasks that would be dropped are never counted as outstanding, so
    // quiescence detection is unaffected; the count lands *before* the push
    // so the counter can only reach zero at true quiescence.
    if (!net_.should_execute(a, *this)) return;
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    queues_.push(worker_, std::move(a));
  }

 private:
  Network& net_;
  TaskQueueSet& queues_;
  std::atomic<int64_t>& outstanding_;
  size_t worker_;
};

/// Swaps a worker's persistent scratch buffers into its cycle-local
/// ExecContext (and the emit batch, when the context buffers emits) and back
/// out on scope exit — exception-safe, so an aborted cycle still returns the
/// buffers. This is what makes the per-cycle contexts allocation-free: the
/// vectors live in the WorkerSlot and keep their high-water capacity for the
/// matcher's whole lifetime.
template <typename Slot>
class ScratchLease {
 public:
  ScratchLease(ExecContext& ctx, Slot& slot,
               std::vector<Activation>* batch = nullptr)
      : ctx_(ctx), slot_(slot), batch_(batch) {
    ctx_.scratch_children.swap(slot_.scratch_children);
    ctx_.scratch_emissions.swap(slot_.scratch_emissions);
    if (batch_ != nullptr) {
      batch_->swap(slot_.emit_batch);
      batch_->clear();  // a previously aborted cycle may have left residue
    }
  }
  ~ScratchLease() {
    ctx_.scratch_children.swap(slot_.scratch_children);
    ctx_.scratch_emissions.swap(slot_.scratch_emissions);
    if (batch_ != nullptr) batch_->swap(slot_.emit_batch);
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

 private:
  ExecContext& ctx_;
  Slot& slot_;
  std::vector<Activation>* batch_;
};

}  // namespace

ActivationPool::ActivationPool(size_t n_workers) {
  shards_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Activation* ActivationPool::alloc(size_t worker, Activation&& a) {
  Shard& s = *shards_[worker];
  Node* n = s.free;
  if (n != nullptr) {
    s.free = n->next;
  } else if (Node* ret =
                 s.returns.exchange(nullptr, std::memory_order_acquire);
             ret != nullptr) {
    n = ret;
    s.free = ret->next;
  } else {
    if (s.fill == kSlabNodes) {
      s.slabs.push_back(std::make_unique<Node[]>(kSlabNodes));
      s.fill = 0;
      ++s.slab_allocs;
    }
    n = &s.slabs.back()[s.fill++];
    n->owner = static_cast<uint32_t>(worker);
  }
  n->act = std::move(a);
  return &n->act;
}

void ActivationPool::release(size_t worker, Activation* a) {
  Node* n = reinterpret_cast<Node*>(a);
  Shard& home = *shards_[n->owner];
  if (n->owner == worker) {
    n->next = home.free;
    home.free = n;
    return;
  }
  Node* head = home.returns.load(std::memory_order_relaxed);
  do {
    n->next = head;
  } while (!home.returns.compare_exchange_weak(
      head, n, std::memory_order_release, std::memory_order_relaxed));
}

void ActivationPool::warm(size_t worker) {
  Activation* a = alloc(worker, Activation{});
  release(worker, a);
}

uint64_t ActivationPool::slab_allocs() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->slab_allocs;
  return total;
}

ParallelMatcher::ParallelMatcher(Network& net, MatchState& primary,
                                 size_t n_workers,
                                 TaskQueueSet::Policy policy,
                                 obs::Tracer* tracer, StealTuning tuning,
                                 obs::MatchProfiler* profiler)
    : ParallelMatcher(net, n_workers, policy, tracer, tuning, profiler) {
  // Agent 0 is the primary state (single-agent call sites).
  register_agent(primary);
}

ParallelMatcher::ParallelMatcher(Network& net, size_t n_workers,
                                 TaskQueueSet::Policy policy,
                                 obs::Tracer* tracer, StealTuning tuning,
                                 obs::MatchProfiler* profiler)
    : net_(net),
      n_workers_(n_workers == 0 ? 1 : n_workers),
      policy_(policy),
      tuning_(tuning),
      tracer_(tracer),
      profiler_(profiler),
      pool_(n_workers == 0 ? 1 : n_workers),
      apool_(n_workers == 0 ? 1 : n_workers) {
  // Slots exist under every policy: the locked policies use only the
  // persistent scratch (the deque stays empty), the Steal policy uses all
  // of it.
  slots_.reserve(n_workers_);
  for (size_t i = 0; i < n_workers_; ++i) {
    // Deterministic per-worker seeds: victim choice is randomized but
    // reproducible run to run.
    slots_.push_back(std::make_unique<WorkerSlot>(0x9e3779b9u + i));
  }
  if (policy_ != TaskQueueSet::Policy::Steal) {
    queues_ = std::make_unique<TaskQueueSet>(policy_, n_workers_);
    locked_parts_.resize(n_workers_);
  }
  prewarm();
}

void ParallelMatcher::prewarm() {
  // Touch every per-worker structure from the (quiescent, single-threaded)
  // constructor so first-touch growth can never land inside a measured
  // cycle. Without this the allocation-free guarantee of DESIGN.md §10
  // would depend on which workers happened to win tasks during an
  // application's warm-up cycles: a worker that sat idle through warm-up —
  // routine on a loaded machine — would charge its scratch-vector, queue-
  // ring and pool-slab growth to the first steady-state cycle it joins.
  // All the touches below are owner-only operations, legal here because no
  // worker thread has been dispatched yet (same contract as the seed
  // distribution in run_steal).
  constexpr size_t kScratch = 64;  // matches the rings' initial capacity
  for (size_t w = 0; w < n_workers_; ++w) {
    WorkerSlot& s = *slots_[w];
    s.emit_batch.reserve(kScratch);
    s.scratch_children.reserve(kScratch);
    s.scratch_emissions.reserve(kScratch);
    apool_.warm(w);
  }
  if (queues_ != nullptr) {
    queues_->warm(kScratch);
    for (auto& part : locked_parts_) part.reserve(kScratch);
  }
  if (tracer_ != nullptr) {
    // One ring per worker (tracks 1..n; track 0 is the engine thread),
    // allocated here — quiescent, single-threaded — so event recording
    // inside a cycle is a pure bump-and-store (DESIGN.md §11).
    tracer_->ensure_tracks(1 + n_workers_);
  }
  if (profiler_ != nullptr) {
    // Shards sized before any worker runs, same contract as the rings. Node
    // and agent capacity grow again at each drain boundary (run_impl) as the
    // network and agent table do.
    profiler_->ensure_workers(n_workers_);
    profiler_->ensure_nodes(net_.node_count());
    profiler_->ensure_agents(states_.empty() ? 1 : states_.size());
  }
}

uint32_t ParallelMatcher::register_agent(MatchState& st) {
  // Quiescent-only (caller contract): no cycle is in flight, so growing the
  // state table and the new agent's arena is single-threaded.
  st.arena.ensure_workers(n_workers_);
  st.ensure_alpha(net_.alpha_mem_count());
  states_.push_back(&st);
  return static_cast<uint32_t>(states_.size() - 1);
}

ParallelMatcher::~ParallelMatcher() { reset_slots(); }

void ParallelMatcher::reset_slots() {
  for (auto& s : slots_) {
    // A previous cycle that aborted on an exception may leave tasks behind;
    // every cycle starts from a clean, balanced state. Runs quiescent on the
    // coordinating thread (worker 0's shard takes the strays).
    while (Activation* a = s->deque.pop()) apool_.release(0, a);
    s->created.store(0, std::memory_order_relaxed);
    s->executed.store(0, std::memory_order_relaxed);
    s->done = 0;
    s->steals = 0;
    s->failed_steals = 0;
    s->failed_sweeps = 0;
    s->sweep_backoff_ns = 0;
    s->parks = 0;
    s->chain_inline = 0;
    s->chain_splits = 0;
    for (uint64_t& b : s->sweep_hist) b = 0;
  }
}

ParallelStats ParallelMatcher::run_cycle(std::vector<Activation> seeds) {
  return run_impl(seeds, nullptr);
}

ParallelStats ParallelMatcher::run_update(std::vector<Activation> seeds,
                                          const UpdateFilter& filter) {
  return run_impl(seeds, &filter);
}

ParallelStats ParallelMatcher::run_cycle_inplace(
    std::vector<Activation>& seeds) {
  return run_impl(seeds, nullptr);
}

ParallelStats ParallelMatcher::run_update_inplace(
    std::vector<Activation>& seeds, const UpdateFilter& filter) {
  return run_impl(seeds, &filter);
}

ParallelStats ParallelMatcher::run_impl(std::vector<Activation>& seeds,
                                        const UpdateFilter* filter) {
  // Epoch lifecycle, pinned to the drain: every worker of this cycle enters
  // the new epoch before dispatch; the sweep runs after the pool join (the
  // ParkingLot exit cascade has completed and all workers are parked), when
  // all transient token copies of previous epochs are dead. Every
  // registered agent's arena participates — a cycle's seeds may carry any
  // mix of agent tags — and alpha state compiled since the last drain
  // (chunk additions) is materialized per agent at this quiescent boundary.
  for (MatchState* ms : states_) {
    ms->ensure_alpha(net_.alpha_mem_count());
    ms->arena.begin_drain(n_workers_);
  }
  if (profiler_ != nullptr) {
    // Quiescent boundary: grow the shards to whatever the network/agent
    // table became since the last drain, so record() never writes past a
    // cell array mid-cycle. Steady state: three integer compares.
    profiler_->ensure_workers(n_workers_);
    profiler_->ensure_nodes(net_.node_count());
    profiler_->ensure_agents(states_.empty() ? 1 : states_.size());
  }
  ParallelStats st = policy_ == TaskQueueSet::Policy::Steal
                         ? run_steal(seeds, filter)
                         : run_locked(seeds, filter);
  for (MatchState* ms : states_) ms->arena.reclaim_at_quiescence();
  if (!states_.empty()) st.arena = states_[0]->arena.stats();
  st.pool_slabs = apool_.slab_allocs();
  lifetime_tasks_ += st.tasks;
  ++lifetime_cycles_;
  return st;
}

bool ParallelMatcher::quiescent() const {
  // Sweep order matters: executed before created. Every execution the sweep
  // observes carries a happens-before edge back to its creation count (the
  // creation was published before the task could be popped), so equality
  // can only be observed at true quiescence for all tasks the observer can
  // know about; tasks it cannot know about keep their creator active.
  uint64_t done = 0;
  for (const auto& s : slots_) {
    done += s->executed.load(std::memory_order_seq_cst);
  }
  uint64_t made = 0;
  for (const auto& s : slots_) {
    made += s->created.load(std::memory_order_seq_cst);
  }
  return done == made;
}

Activation* ParallelMatcher::take_task(size_t worker) {
  WorkerSlot& me = *slots_[worker];
  if (Activation* a = me.deque.pop()) return a;
  if (n_workers_ == 1) return nullptr;
  // Drained cycle: the termination counters say every created task has
  // executed, so every deque is provably empty — skip the probe sweep. A
  // sweep here would be pure exit-path noise in the idle accounting (one
  // guaranteed-failed sweep per worker per cycle) and real cache traffic
  // against the peers' deque tops. The counter sweep costs the same loads
  // but touches only padded, mostly-read lines.
  if (quiescent()) return nullptr;
  // Randomized stealing: one full sweep over the victims from a random
  // starting point — every peer is probed exactly once per look, and
  // different thieves start at different offsets so they spread out. A
  // failed attempt is a couple of loads — no lock, no lock-and-look, no
  // queue-side cost to the victim.
  const size_t peers = n_workers_ - 1;
  const size_t start = me.rng.below(peers);
  for (size_t i = 0; i < peers; ++i) {
    const size_t victim = (worker + 1 + ((start + i) % peers)) % n_workers_;
    if (Activation* a = slots_[victim]->deque.steal()) {
      ++me.steals;
      if (tracer_ != nullptr) {
        obs::record_instant(*tracer_, tracer_->ring(1 + worker),
                            obs::EventKind::StealOk,
                            static_cast<uint32_t>(victim));
      }
      return a;
    }
    ++me.failed_steals;
  }
  // One event per *failed sweep*, not per failed probe: the sweep is the
  // unit an idle worker pays for, and per-probe instants would flood the
  // ring during the pre-park spin.
  ++me.failed_sweeps;
  if (tracer_ != nullptr) {
    obs::record_instant(*tracer_, tracer_->ring(1 + worker),
                        obs::EventKind::StealFail, 0,
                        static_cast<uint32_t>(peers));
  }
  return nullptr;
}

void ParallelMatcher::steal_loop(size_t worker, const UpdateFilter* filter,
                                 std::atomic<bool>& abort) {
  WorkerSlot& me = *slots_[worker];
  obs::EventRing* ring =
      tracer_ != nullptr ? &tracer_->ring(1 + worker) : nullptr;
  BatchCtx ctx(net_, filter);
  ctx.worker = worker;  // child tokens spill into this worker's arena pool
  ScratchLease lease(ctx, me, &ctx.batch);
  const uint32_t split_depth = tuning_.chain_split_depth;
  uint32_t idle = 0;  // consecutive failed whole-pool sweeps
  for (;;) {
    // Pre-sweep ticket: every publish bumps the ParkingLot epoch, so a
    // publish after this read invalidates any park taken on it, and a
    // publish before it is visible to the sweep below (both seq_cst). The
    // sweep itself is therefore the parking protocol's "final look" —
    // no separate post-ticket re-sweep is needed.
    uint64_t ticket = lot_.ticket();
    Activation* a = take_task(worker);
    if (a == nullptr) {
      if (abort.load(std::memory_order_acquire) || quiescent()) break;
      ++idle;
      // Exponential pause/yield ladder between the failed sweep and the
      // park, watching the publish epoch. A round re-sweeps only if the
      // epoch moved: deques grow only through publishes, so with the epoch
      // unchanged the previous sweep's empty verdict still holds and a
      // re-sweep is guaranteed to fail — the ladder waits without any
      // deque-top traffic. (Clock reads only run on this already-idle
      // path, never per task.)
      for (uint32_t round = 0;
           a == nullptr && round < tuning_.backoff_park_sweeps; ++round) {
        const uint64_t b0 = backoff_now_ns();
        sweep_backoff(round, tuning_.backoff_base_spins,
                      tuning_.backoff_max_spins);
        me.sweep_backoff_ns += backoff_now_ns() - b0;
        const uint64_t moved = lot_.ticket();
        if (moved == ticket) continue;  // nothing published: provably empty
        ticket = moved;
        a = take_task(worker);
        if (a == nullptr) ++idle;
      }
      if (a == nullptr) {
        // Quiescence never bumps the epoch (only the exiting worker's
        // unpark_all does), so re-check before sleeping on the ticket.
        if (abort.load(std::memory_order_acquire) || quiescent()) break;
        ++me.parks;
        ++me.sweep_hist[sweep_bucket(idle)];  // the run ends at the park
        if (ring != nullptr) {
          // The park interval is the span the idle-time accounting sums.
          const uint64_t p0 = tracer_->now_ns();
          lot_.park(ticket);
          obs::TraceEvent e;
          e.ts_ns = p0;
          e.dur_ns = tracer_->now_ns() - p0;
          e.kind = obs::EventKind::Park;
          ring->push(e);
        } else {
          lot_.park(ticket);
        }
        idle = 0;
        continue;
      }
    }
    if (idle != 0) {
      ++me.sweep_hist[sweep_bucket(idle)];
      idle = 0;
    }
    // Execute the task and, below the split depth, its dependent chain
    // inline: each node execution continues directly into its last-emitted
    // child (the one the deque's LIFO pop would run next anyway) while the
    // siblings are published as stealable tasks. Inline links skip the
    // pool-alloc/push/pop and the two seq_cst counter bumps that made long
    // chains pay scheduler overhead per link; the depth-k split pushes the
    // continuation back onto the deque so a chain's suffix stays stealable
    // and no single chain can pin a cycle's tail to one worker
    // (StealTuning::chain_split_depth; 0 = never split).
    //
    // Termination invariant: the popped task's `executed` bump is deferred
    // until the whole inline chain (and every sibling publish) completes,
    // so an observer can never see created == executed while work derived
    // from this task is still unpublished. Token safety: arena reclamation
    // is pinned to reclaim_at_quiescence() after the pool join, so tokens
    // referenced by inline or split continuations stay live either way.
    Activation cont;         // stack slot for inline continuations
    bool is_inline = false;  // current link lives in `cont`, not the pool
    uint32_t depth = 1;      // links executed in this chain so far
    for (;;) {
      Activation* cur = is_inline ? &cont : a;
      uint64_t t0 = 0;
      if (ring != nullptr) {
        t0 = tracer_->now_ns();
        ctx.stats.reset();  // per-task deltas, like the serial recorder
      }
      uint64_t p0 = 0;
      bool timed = false;
      if (profiler_ != nullptr) {
        if (ring == nullptr) ctx.stats.reset();  // emits must be a delta
        timed = profiler_->sample(worker);
        if (timed) p0 = obs::profile_now_ns();
      }
      // Re-bind the context to this task's agent: the tag names the only
      // MatchState the task may touch, and emit stamps it onto children.
      ctx.state = states_[cur->agent];
      ctx.agent = cur->agent;
      try {
        net_.execute(*cur, ctx);
      } catch (...) {
        // The pooled head was already released once the chain went inline.
        if (!is_inline) apool_.release(worker, a);
        // Count the popped task as executed so the cycle's books still
        // balance, then fail the whole cycle.
        me.executed.fetch_add(1, std::memory_order_seq_cst);
        abort.store(true, std::memory_order_release);
        lot_.unpark_all();
        throw;
      }
      if (profiler_ != nullptr) {
        profiler_->record(worker, cur->node, cur->agent, timed,
                          timed ? obs::profile_now_ns() - p0 : 0,
                          ctx.stats.emits);
      }
      if (ring != nullptr) {
        obs::record_task(*tracer_, *ring, t0, *cur, ctx.stats);
      }
      if (!is_inline) apool_.release(worker, a);
      ++me.done;
      bool have_cont = false;
      if (!ctx.batch.empty()) {
        if (split_depth == 0 || depth < split_depth) {
          cont = std::move(ctx.batch.back());
          ctx.batch.pop_back();
          have_cont = true;
          ++me.chain_inline;
        } else {
          ++me.chain_splits;  // cap reached: continuation goes to the deque
        }
      }
      if (!ctx.batch.empty()) {
        // Publish the emit burst once: one counter bump, owner-side pushes,
        // one wake. The count precedes the pushes (termination invariant).
        // unpark_one, not unpark_all: waking every sleeper per publish is a
        // thundering herd at high worker counts (all wake, sweep, fail,
        // re-park); one waker per publish keeps the wake chain proportional
        // to the work supply, and the exit cascade below still wakes
        // everyone for the final quiescence check.
        me.created.fetch_add(ctx.batch.size(), std::memory_order_seq_cst);
        for (Activation& child : ctx.batch) {
          me.deque.push(apool_.alloc(worker, std::move(child)));
        }
        ctx.batch.clear();
        lot_.unpark_one();
        if (ring != nullptr) {
          // Depth sampled at the natural load-balance point: right after an
          // emit burst is the moment thieves decide whether this deque is
          // worth raiding.
          obs::record_instant(*tracer_, *ring, obs::EventKind::QueueDepth, 0,
                              static_cast<uint32_t>(me.deque.size()));
        }
      }
      if (!have_cont) break;
      is_inline = true;
      ++depth;
    }
    me.executed.fetch_add(1, std::memory_order_seq_cst);
  }
  if (idle != 0) ++me.sweep_hist[sweep_bucket(idle)];  // run ended at drain
  // Cascade the wake so every parked peer re-checks quiescence and exits.
  lot_.unpark_all();
}

ParallelStats ParallelMatcher::run_steal(std::vector<Activation>& seeds,
                                         const UpdateFilter* filter) {
  reset_slots();

  // Seed round-robin across the worker deques. Workers are not running yet,
  // so the owner-only push is safe from this thread; the pool dispatch
  // publishes everything before the first worker looks. Seeds pass through
  // the same §5.2 filter as emitted tasks.
  {
    BatchCtx seed_ctx(net_, filter);
    size_t w = 0;
    for (Activation& s : seeds) {
      if (!net_.should_execute(s, seed_ctx)) continue;
      slots_[w]->created.fetch_add(1, std::memory_order_relaxed);
      // Pre-dispatch, single-threaded: allocating from shard `w` on behalf
      // of its future owner is safe here (workers are not running yet).
      slots_[w]->deque.push(apool_.alloc(w, std::move(s)));
      w = (w + 1) % n_workers_;
    }
  }

  std::atomic<bool> abort{false};
  const auto t0 = std::chrono::steady_clock::now();
  // Raw-pointer dispatch over a stack job: a capturing lambda through the
  // std::function overload would heap-allocate its closure every cycle.
  struct Job {
    ParallelMatcher* self;
    const UpdateFilter* filter;
    std::atomic<bool>* abort;
  } job{this, filter, &abort};
  pool_.run(
      [](void* arg, size_t worker) {
        auto* j = static_cast<Job*>(arg);
        j->self->steal_loop(worker, j->filter, *j->abort);
      },
      &job);

  ParallelStats st;
  st.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& s : slots_) {
    st.tasks += s->done;
    st.steals += s->steals;
    st.failed_steals += s->failed_steals;
    st.failed_sweeps += s->failed_sweeps;
    st.sweep_backoff_ns += s->sweep_backoff_ns;
    st.parks += s->parks;
    st.chain_inline += s->chain_inline;
    st.chain_splits += s->chain_splits;
    for (size_t i = 0; i < ParallelStats::kSweepHistBuckets; ++i) {
      st.sweep_hist[i] += s->sweep_hist[i];
    }
  }
  return st;
}

void ParallelMatcher::locked_loop(size_t worker, const UpdateFilter* filter,
                                  std::atomic<uint64_t>& executed) {
  TaskQueueSet& queues = *queues_;
  obs::EventRing* ring =
      tracer_ != nullptr ? &tracer_->ring(1 + worker) : nullptr;
  LockedCtx ctx(net_, queues, outstanding_, worker, filter);
  ScratchLease lease(ctx, *slots_[worker]);
  Activation a;
  uint32_t idle = 0;
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    if (queues.pop(worker, a)) {
      idle = 0;
      uint64_t t0 = 0;
      if (ring != nullptr) {
        t0 = tracer_->now_ns();
        ctx.stats.reset();
      }
      uint64_t p0 = 0;
      bool timed = false;
      if (profiler_ != nullptr) {
        if (ring == nullptr) ctx.stats.reset();  // emits must be a delta
        timed = profiler_->sample(worker);
        if (timed) p0 = obs::profile_now_ns();
      }
      ctx.state = states_[a.agent];
      ctx.agent = a.agent;
      try {
        net_.execute(a, ctx);
      } catch (...) {
        // Zero the counter so the other workers exit instead of spinning
        // on a count that can no longer drain, then fail the cycle.
        outstanding_.store(0, std::memory_order_release);
        throw;
      }
      if (profiler_ != nullptr) {
        profiler_->record(worker, a.node, a.agent, timed,
                          timed ? obs::profile_now_ns() - p0 : 0,
                          ctx.stats.emits);
      }
      if (ring != nullptr) obs::record_task(*tracer_, *ring, t0, a, ctx.stats);
      executed.fetch_add(1, std::memory_order_relaxed);
      outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      // Nothing found anywhere: bounded exponential backoff instead of a
      // raw yield loop, so an idle worker on an oversubscribed machine
      // stops burning a full core (it still re-checks every few µs).
      idle_backoff(idle++);
    }
  }
}

ParallelStats ParallelMatcher::run_locked(std::vector<Activation>& seeds,
                                          const UpdateFilter* filter) {
  TaskQueueSet& queues = *queues_;
  queues.reset_stats();  // per-cycle numbers, like the pre-pool matcher
  std::atomic<uint64_t> executed{0};

  // Seed distribution: partition round-robin into the persistent member
  // buffers, then one push_batch (one lock acquisition) per home queue
  // instead of one per seed.
  {
    BatchCtx seed_ctx(net_, filter);
    for (auto& part : locked_parts_) part.clear();
    size_t w = 0;
    int64_t kept = 0;
    for (Activation& s : seeds) {
      if (!net_.should_execute(s, seed_ctx)) continue;
      locked_parts_[w].push_back(std::move(s));
      w = (w + 1) % n_workers_;
      ++kept;
    }
    // Counted before any push, preserving the invariant that the counter
    // can only reach zero at true quiescence.
    outstanding_.store(kept, std::memory_order_release);
    for (size_t i = 0; i < n_workers_; ++i) {
      queues.push_batch(i, std::move(locked_parts_[i]));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  struct Job {
    ParallelMatcher* self;
    const UpdateFilter* filter;
    std::atomic<uint64_t>* executed;
  } job{this, filter, &executed};
  pool_.run(
      [](void* arg, size_t worker) {
        auto* j = static_cast<Job*>(arg);
        j->self->locked_loop(worker, j->filter, *j->executed);
      },
      &job);

  ParallelStats st;
  st.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  st.tasks = executed.load();
  st.failed_pops = queues.failed_pops();
  st.queue_lock_spins = queues.lock_spins();
  st.queue_lock_acquires = queues.lock_acquires();
  return st;
}

}  // namespace psme
