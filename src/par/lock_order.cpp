#include "par/lock_order.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace psme::lockdep {
namespace {

constexpr size_t kMaxHeld = 32;

struct HeldStack {
  LockInfo entries[kMaxHeld];
  size_t n = 0;
};

thread_local HeldStack tls_held;

std::atomic<FailureHandler> g_handler{nullptr};

std::vector<LockInfo> snapshot_held() {
  return {tls_held.entries, tls_held.entries + tls_held.n};
}

void report(Violation::Kind kind, const LockInfo& attempted) {
  Violation v{kind, attempted, snapshot_held()};
  if (FailureHandler h = g_handler.load(std::memory_order_acquire)) {
    h(v);
    return;
  }
  const std::string text = format_report(v);
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

const char* rank_name(LockRank r) noexcept {
  switch (r) {
    case LockRank::Unranked: return "unranked";
    case LockRank::Bucket: return "bucket";
    case LockRank::SlabPool: return "slab-pool";
    case LockRank::Queue: return "queue";
    case LockRank::ConflictSet: return "conflict-set";
    case LockRank::Park: return "park";
    case LockRank::Dispatch: return "dispatch";
  }
  return "?";
}

const char* kind_name(Violation::Kind k) noexcept {
  switch (k) {
    case Violation::Kind::SelfDeadlock: return "self-deadlock";
    case Violation::Kind::RankInversion: return "rank inversion";
    case Violation::Kind::UnheldRelease: return "release of unheld lock";
    case Violation::Kind::Overflow: return "held-lock stack overflow";
  }
  return "?";
}

void on_acquire(const void* lock, LockRank rank, const char* name) {
  const LockInfo attempted{lock, rank, name};
  HeldStack& hs = tls_held;

  // At most one report per acquire; self-deadlock takes precedence (a
  // re-entered ranked lock would otherwise also trip the >= rank check).
  bool self_deadlock = false;
  for (size_t i = 0; i < hs.n; ++i) {
    if (hs.entries[i].addr == lock) {
      self_deadlock = true;
      report(Violation::Kind::SelfDeadlock, attempted);
      break;
    }
  }
  if (!self_deadlock && rank != LockRank::Unranked) {
    for (size_t i = 0; i < hs.n; ++i) {
      const LockRank held = hs.entries[i].rank;
      if (held != LockRank::Unranked && held >= rank) {
        report(Violation::Kind::RankInversion, attempted);
        break;
      }
    }
  }
  if (hs.n >= kMaxHeld) {
    report(Violation::Kind::Overflow, attempted);
    return;  // cannot record; only reachable with a handler installed
  }
  hs.entries[hs.n++] = attempted;
}

void on_release(const void* lock) {
  HeldStack& hs = tls_held;
  // Out-of-order release is legal; search from the top (common case: LIFO).
  for (size_t i = hs.n; i > 0; --i) {
    if (hs.entries[i - 1].addr == lock) {
      for (size_t j = i - 1; j + 1 < hs.n; ++j) {
        hs.entries[j] = hs.entries[j + 1];
      }
      --hs.n;
      return;
    }
  }
  report(Violation::Kind::UnheldRelease, {lock, LockRank::Unranked, nullptr});
}

size_t held_count() noexcept { return tls_held.n; }

FailureHandler set_failure_handler(FailureHandler h) noexcept {
  return g_handler.exchange(h, std::memory_order_acq_rel);
}

std::string format_report(const Violation& v) {
  std::ostringstream os;
  auto put = [&os](const LockInfo& li) {
    os << (li.name != nullptr ? li.name : rank_name(li.rank)) << " (rank "
       << rank_name(li.rank) << ", " << li.addr << ")";
  };
  os << "psme lockdep: " << kind_name(v.kind) << " in thread "
     << std::this_thread::get_id() << "\n  attempted acquire: ";
  put(v.attempted);
  os << "\n  held-lock chain (" << v.held.size() << ", oldest first):\n";
  if (v.held.empty()) os << "    <none>\n";
  for (const LockInfo& li : v.held) {
    os << "    ";
    put(li);
    os << "\n";
  }
  return std::move(os).str();
}

}  // namespace psme::lockdep
