// Spinlock is header-only; this TU exists so the target has a symbol anchor
// and so future out-of-line additions have a home.
#include "par/spinlock.h"

namespace psme {
static_assert(sizeof(Spinlock) <= 64, "Spinlock should stay within a cache line");
}  // namespace psme
