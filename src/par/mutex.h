// A std::mutex with the same treatment Spinlock gets (par/spinlock.h):
// a clang thread-safety capability, a LockRank, and lockdep hooks on every
// acquire/release. The scheduler's sleeping locks (ParkingLot, WorkerPool
// dispatch) use this so the lock-order checker and -Wthread-safety cover the
// blocking side of the hierarchy, not just the spinning side.
//
// Condition waits go through Mutex::wait with a std::condition_variable_any:
// the wait drops and retakes the mutex through unlock()/lock(), so the
// lockdep held-set stays accurate across the sleep (a plain
// std::condition_variable on the inner std::mutex would leave lockdep
// believing the lock was held while the thread slept).
#pragma once

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"
#include "par/lock_order.h"

namespace psme {

class PSME_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::Unranked,
                 const char* name = nullptr) noexcept {
#if PSME_LOCKDEP
    rank_ = rank;
    name_ = name;
#else
    (void)rank;
    (void)name;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PSME_ACQUIRE() {
#if PSME_LOCKDEP
    // Checked before blocking: a self-deadlock would otherwise hang here.
    lockdep::on_acquire(this, rank_, name_);
#endif
    mu_.lock();
  }

  void unlock() PSME_RELEASE() {
    mu_.unlock();
#if PSME_LOCKDEP
    lockdep::on_release(this);
#endif
  }

  /// Rank under lockdep builds; LockRank::Unranked when compiled out.
  [[nodiscard]] LockRank rank() const noexcept {
#if PSME_LOCKDEP
    return rank_;
#else
    return LockRank::Unranked;
#endif
  }

  /// Blocks on `cv` until `pred()` holds, with this mutex held on entry and
  /// exit. The temporary release inside the wait is invisible to the static
  /// analysis, hence the exemption; lockdep sees it exactly (the
  /// condition_variable_any round-trips through unlock()/lock()).
  template <typename Pred>
  void wait(std::condition_variable_any& cv, Pred&& pred)
      PSME_REQUIRES(this) PSME_NO_THREAD_SAFETY_ANALYSIS {
    cv.wait(*this, static_cast<Pred&&>(pred));
  }

 private:
  std::mutex mu_;
#if PSME_LOCKDEP
  LockRank rank_ = LockRank::Unranked;
  const char* name_ = nullptr;
#endif
};

/// RAII guard, the std::lock_guard of Mutex (scoped capability so the
/// analysis tracks the critical section).
class PSME_SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(Mutex& m) PSME_ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~MutexGuard() PSME_RELEASE() { mu_.unlock(); }
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace psme
