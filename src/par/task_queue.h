// Shared task queues holding node activations (§2.3).
//
// Two policies, matching the paper's two configurations:
//   Single — one shared queue, one lock (Figure 6-1/6-3 configuration);
//   Multi  — one queue per match process; a process pushes and pops its own
//            queue and, when it runs dry, cycles through the other queues
//            looking for work (Figure 6-4 configuration).
//
// The queue counts its own contention (lock spins) and *failed pops*: "when a
// task is pushed into a queue, all the idle processes try to access that
// task [...] the efficient way of informing other processes about the empty
// queue is to let them lock the queue and find the empty queue for
// themselves" — those wasted lock-and-look operations are what bends the
// speedup curve down at 13 processes.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/ring.h"
#include "base/thread_annotations.h"
#include "par/spinlock.h"
#include "rete/network.h"

namespace psme {

class TaskQueueSet {
 public:
  /// Single/Multi are the paper's two configurations, served by this locked
  /// queue set. Steal selects the lock-free Chase–Lev scheduler in
  /// ParallelMatcher (par/ws_deque.h) — a TaskQueueSet constructed under
  /// Steal behaves like Multi so generic policy-sweep code keeps working.
  enum class Policy { Single, Multi, Steal };

  TaskQueueSet(Policy policy, size_t n_workers);

  void push(size_t worker, Activation&& a);

  /// Pushes a whole batch into `worker`'s home queue under one lock
  /// acquisition (seed distribution previously paid one lock per seed).
  void push_batch(size_t worker, std::vector<Activation>&& batch);

  /// Pops a task for `worker`. Returns false if every queue it tried was
  /// empty (each empty look is counted as a failed pop).
  bool pop(size_t worker, Activation& out);

  /// Pre-sizes every queue's ring so the first `per_queue_capacity` queued
  /// tasks never allocate. Called once from the matcher constructor
  /// (quiescent), so cold queues can't charge their first-touch ring growth
  /// to a measured cycle; safe mid-run too (takes each queue's lock).
  void warm(size_t per_queue_capacity);

  [[nodiscard]] Policy policy() const { return policy_; }
  [[nodiscard]] size_t queue_count() const { return queues_.size(); }

  [[nodiscard]] uint64_t failed_pops() const {
    return failed_pops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t lock_spins() const;
  [[nodiscard]] uint64_t lock_acquires() const;
  void reset_stats();

 private:
  // FIFO over a recycled power-of-two ring (base/ring.h): std::deque
  // allocates/frees map blocks as the queue breathes, the ring only grows to
  // its high-water capacity and is heap-silent from then on.
  struct Q {
    Spinlock lock{LockRank::Queue, "task-queue"};
    RingBuffer<Activation> items PSME_GUARDED_BY(lock);
  };

  [[nodiscard]] size_t home_queue(size_t worker) const {
    return policy_ == Policy::Single ? 0 : worker % queues_.size();
  }

  Policy policy_;
  std::vector<Q> queues_;
  std::atomic<uint64_t> failed_pops_{0};
};

}  // namespace psme
