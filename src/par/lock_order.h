// Lockdep-style runtime lock-order checker for the parallel matcher.
//
// Every Spinlock in the system carries a rank from the global lock hierarchy
// (DESIGN.md §"Concurrency invariants"):
//
//   Bucket (1)       paired-table line locks and alpha-memory locks. A
//                    thread never holds two of them, which is what makes
//                    insert-then-probe under one line lock atomic.
//   SlabPool (2)     chunk-pool free-list locks (base/chunk_list.h). A line
//                    or alpha-memory mutation holding its Bucket lock may
//                    acquire/release a storage chunk; the pool lock nests
//                    strictly inside and protects nothing that emits.
//   Queue (3)        task-queue locks. May be taken while a Bucket lock is
//                    held (a node execution emitting child tasks), never the
//                    other way around.
//   ConflictSet (4)  the CS lock. P-node activations take it with nothing
//                    else held; ranking it after the match locks keeps that
//                    one-way.
//
// The rule is strict: a thread may only acquire a lock whose rank is
// GREATER than the rank of every ranked lock it already holds. Equal ranks
// are a violation too — that is how "at most one bucket lock at a time" is
// enforced. Acquiring a lock already held by the same thread is reported as
// a self-deadlock. Unranked locks are exempt from the rank comparison but
// still participate in self-deadlock detection.
//
// Cost model: the checker core below is always compiled (so tests can drive
// it in any configuration), but the hooks inside Spinlock::lock()/unlock()
// exist only when PSME_LOCKDEP is 1 — by default that is debug builds
// (!NDEBUG); release builds compile the hooks away entirely. Configure with
// -DPSME_LOCKDEP=ON (the tsan preset does) to force the hooks on in any
// build type.
//
// On a violation the checker writes the acquiring thread's full held-lock
// chain plus the offending acquisition to stderr and aborts; tests install a
// failure handler instead (set_failure_handler) to capture the Violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef PSME_LOCKDEP
#ifdef NDEBUG
#define PSME_LOCKDEP 0
#else
#define PSME_LOCKDEP 1
#endif
#endif

namespace psme {

enum class LockRank : uint8_t {
  Unranked = 0,     // no ordering constraint; self-deadlock checked only
  Bucket = 1,       // hash-table line locks + alpha-memory locks
  SlabPool = 2,     // chunk-pool free-list locks (base/chunk_list.h); above
                    // Bucket because a line/alpha mutation under its Bucket
                    // lock may acquire/release a storage chunk
  Queue = 3,        // task-queue locks
  ConflictSet = 4,  // the conflict-set lock
  Park = 5,         // the ParkingLot mutex (worker_pool.h); last among the
                    // match-cycle locks, so a worker may park or unpark
                    // others no matter what match-state lock it still holds
  Dispatch = 6,     // the WorkerPool dispatch mutex (worker_pool.h); taken
                    // only at cycle boundaries with no match lock held, so
                    // it sits above the entire match hierarchy
};

namespace lockdep {

[[nodiscard]] const char* rank_name(LockRank r) noexcept;

struct LockInfo {
  const void* addr = nullptr;
  LockRank rank = LockRank::Unranked;
  const char* name = nullptr;  // may be null; rank_name(rank) then
};

struct Violation {
  enum class Kind { SelfDeadlock, RankInversion, UnheldRelease, Overflow };
  Kind kind;
  LockInfo attempted;
  std::vector<LockInfo> held;  // acquisition order, oldest first
};

[[nodiscard]] const char* kind_name(Violation::Kind k) noexcept;

/// Called immediately before a lock is acquired. Reports (and by default
/// aborts) on self-deadlock, rank inversion, or held-stack overflow; then
/// records the lock in the calling thread's held set.
void on_acquire(const void* lock, LockRank rank, const char* name);

/// Called when a lock is released. Out-of-order release is legal; releasing
/// a lock the thread does not hold is reported.
void on_release(const void* lock);

/// Number of locks the calling thread currently holds (tests/diagnostics).
[[nodiscard]] size_t held_count() noexcept;

/// Installed handler is called instead of the print-and-abort default.
/// Returns the previous handler (nullptr = default). Handlers are global;
/// intended for single-threaded unit tests.
using FailureHandler = void (*)(const Violation&);
FailureHandler set_failure_handler(FailureHandler h) noexcept;

/// Formats a violation report (same text the abort path prints).
[[nodiscard]] std::string format_report(const Violation& v);

}  // namespace lockdep
}  // namespace psme
