// Instrumented test-and-test-and-set spinlock.
//
// The paper measures contention as "spins before the lock is acquired"
// (spins/access for hash-bucket lines, spins/task for the task queue), so the
// lock counts its own spins. Counters are relaxed atomics: they are
// diagnostics, not synchronization.
//
// Every Spinlock carries a LockRank (see par/lock_order.h). In builds with
// PSME_LOCKDEP=1 each acquire/release is checked against the global lock
// hierarchy and the calling thread's held set; in release builds the hooks
// (and the rank/name storage) compile away entirely.
//
// The class is annotated as a Clang thread-safety capability so that
// -Wthread-safety statically checks every PSME_GUARDED_BY member against
// SpinGuard scopes.
#pragma once

#include <atomic>
#include <cstdint>

#include "base/thread_annotations.h"
#include "par/lock_order.h"

namespace psme {

class PSME_CAPABILITY("mutex") Spinlock {
 public:
  explicit Spinlock(LockRank rank = LockRank::Unranked,
                    const char* name = nullptr) noexcept {
#if PSME_LOCKDEP
    rank_ = rank;
    name_ = name;
#else
    (void)rank;
    (void)name;
#endif
  }
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  /// Acquires the lock; returns the number of spins (failed acquisition
  /// attempts) performed while waiting.
  uint64_t lock() PSME_ACQUIRE() {
#if PSME_LOCKDEP
    // Checked before spinning: a self-deadlock would otherwise hang here.
    lockdep::on_acquire(this, rank_, name_);
#endif
    uint64_t spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) break;
      ++spins;
      // Test loop: wait for the lock to look free before retrying the RMW.
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
    total_spins_.fetch_add(spins, std::memory_order_relaxed);
    total_acquires_.fetch_add(1, std::memory_order_relaxed);
    return spins;
  }

  void unlock() PSME_RELEASE() {
#if PSME_LOCKDEP
    lockdep::on_release(this);
#endif
    flag_.store(false, std::memory_order_release);
  }

  /// The rank this lock was constructed with. Ranks are only stored when
  /// PSME_LOCKDEP is on; otherwise every lock reports Unranked (callers like
  /// the network verifier skip rank checks in that case).
  [[nodiscard]] LockRank rank() const noexcept {
#if PSME_LOCKDEP
    return rank_;
#else
    return LockRank::Unranked;
#endif
  }

  [[nodiscard]] uint64_t total_spins() const {
    return total_spins_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t total_acquires() const {
    return total_acquires_.load(std::memory_order_relaxed);
  }
  void reset_stats() {
    total_spins_.store(0, std::memory_order_relaxed);
    total_acquires_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<uint64_t> total_spins_{0};
  std::atomic<uint64_t> total_acquires_{0};
#if PSME_LOCKDEP
  LockRank rank_ = LockRank::Unranked;
  const char* name_ = nullptr;
#endif
};

/// RAII guard.
class PSME_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(Spinlock& l) PSME_ACQUIRE(l) : lock_(l) {
    spins_ = lock_.lock();
  }
  ~SpinGuard() PSME_RELEASE() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

  [[nodiscard]] uint64_t spins() const { return spins_; }

 private:
  Spinlock& lock_;
  uint64_t spins_ = 0;
};

}  // namespace psme
