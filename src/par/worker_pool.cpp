#include "par/worker_pool.h"

namespace psme {

void run_workers(size_t n, const std::function<void(size_t)>& fn) {
  if (n <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  std::exception_ptr first_error;
  Mutex error_mu(LockRank::Unranked, "run-workers-error");
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      try {
        fn(i);
      } catch (...) {
        MutexGuard lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(size_t n_workers) : n_(n_workers == 0 ? 1 : n_workers) {
  threads_.reserve(n_ - 1);
  for (size_t i = 1; i < n_; ++i) {
    threads_.emplace_back([this, i] { thread_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexGuard lk(mu_);
    stop_ = true;
    job_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void WorkerPool::thread_main(size_t index) {
  uint64_t seen = 0;
  for (;;) {
    void (*fn)(void*, size_t) = nullptr;
    void* arg = nullptr;
    {
      MutexGuard lk(mu_);
      mu_.wait(job_cv_, [&]() PSME_NO_THREAD_SAFETY_ANALYSIS {
        return stop_ || epoch_ != seen;
      });
      if (stop_) return;
      seen = epoch_;
      fn = job_fn_;
      arg = job_arg_;
    }
    try {
      fn(arg, index);
    } catch (...) {
      MutexGuard lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      MutexGuard lk(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(void (*fn)(void* arg, size_t worker), void* arg) {
  if (n_ == 1) {
    fn(arg, 0);
    return;
  }
  {
    MutexGuard lk(mu_);
    job_fn_ = fn;
    job_arg_ = arg;
    active_ = n_ - 1;
    ++epoch_;
    job_cv_.notify_all();
  }
  // The caller is worker 0; its exception still waits for the others so the
  // pool is reusable afterwards.
  std::exception_ptr own_error;
  try {
    fn(arg, 0);
  } catch (...) {
    own_error = std::current_exception();
  }
  std::exception_ptr err;
  {
    MutexGuard lk(mu_);
    mu_.wait(done_cv_,
             [&]() PSME_NO_THREAD_SAFETY_ANALYSIS { return active_ == 0; });
    err = own_error ? own_error : error_;
    error_ = nullptr;
    job_fn_ = nullptr;
    job_arg_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::run(const std::function<void(size_t)>& fn) {
  run(
      [](void* arg, size_t worker) {
        (*static_cast<const std::function<void(size_t)>*>(arg))(worker);
      },
      const_cast<std::function<void(size_t)>*>(&fn));
}

}  // namespace psme
