#include "par/worker_pool.h"

#include <mutex>
#include <thread>
#include <vector>

namespace psme {

void run_workers(size_t n, const std::function<void(size_t)>& fn) {
  if (n <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace psme
