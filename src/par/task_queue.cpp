#include "par/task_queue.h"

namespace psme {

TaskQueueSet::TaskQueueSet(Policy policy, size_t n_workers)
    : policy_(policy),
      queues_(policy == Policy::Single ? 1 : (n_workers == 0 ? 1 : n_workers)) {}

void TaskQueueSet::push(size_t worker, Activation&& a) {
  Q& q = queues_[home_queue(worker)];
  SpinGuard g(q.lock);
  q.items.push_back(a);
}

void TaskQueueSet::push_batch(size_t worker, std::vector<Activation>&& batch) {
  if (batch.empty()) return;
  Q& q = queues_[home_queue(worker)];
  SpinGuard g(q.lock);
  for (const Activation& a : batch) q.items.push_back(a);
  batch.clear();
}

void TaskQueueSet::warm(size_t per_queue_capacity) {
  for (Q& q : queues_) {
    SpinGuard g(q.lock);
    q.items.reserve(per_queue_capacity);
  }
}

bool TaskQueueSet::pop(size_t worker, Activation& out) {
  const size_t n = queues_.size();
  const size_t home = home_queue(worker);
  for (size_t k = 0; k < n; ++k) {
    Q& q = queues_[(home + k) % n];
    SpinGuard g(q.lock);
    if (!q.items.empty()) {
      out = q.items.front();
      q.items.pop_front();
      return true;
    }
    failed_pops_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

uint64_t TaskQueueSet::lock_spins() const {
  uint64_t n = 0;
  for (const Q& q : queues_) n += q.lock.total_spins();
  return n;
}

uint64_t TaskQueueSet::lock_acquires() const {
  uint64_t n = 0;
  for (const Q& q : queues_) n += q.lock.total_acquires();
  return n;
}

void TaskQueueSet::reset_stats() {
  failed_pops_.store(0, std::memory_order_relaxed);
  for (Q& q : queues_) q.lock.reset_stats();
}

}  // namespace psme
