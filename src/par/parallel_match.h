// The threaded match executor: N match processes pull node activations from
// the scheduler and execute them against the shared network.
//
// Two scheduler generations live side by side:
//
//   * `Single`/`Multi` — the paper-faithful PSM-E organization (§2.3/§4):
//     spinlocked task queues, shared outstanding-task counter, idle workers
//     locking queues to find them empty (the counted "failed pops" whose
//     traffic bends the Figure 6-1/6-4 curves). Kept selectable so the
//     Figure 6-x reproductions keep measuring what the paper measured.
//
//   * `Steal` (the default) — the modern core: one lock-free Chase–Lev
//     deque per worker (par/ws_deque.h), owner-side push/pop, randomized
//     CAS-only stealing, per-worker cache-line-padded counters for
//     termination detection and statistics, emit bursts published once per
//     node execution, dependent activation chains executed inline up to a
//     tunable split depth (long chains become stealable suffixes — see
//     StealTuning), and idle workers that back off exponentially across
//     failed whole-pool sweeps and then park on a condvar
//     (par/worker_pool.h) instead of hammering locks.
//
// Worker threads are spawned once per ParallelMatcher lifetime (WorkerPool)
// and parked between cycles, so a matcher held by an Engine runs thousands
// of cycles without re-spawning threads or re-building queues.
//
// Termination detection (Steal): each worker owns a padded (created,
// executed) counter pair; a creation is counted *before* the task is pushed
// and an execution *after* it completes, and idle workers sweep executed
// totals before created totals. Any observed equality therefore implies
// true quiescence for every task the observer can know about, and a task it
// cannot know about yet keeps its creator (or its thief) active — so the
// last worker standing always drains the residue. See DESIGN.md §8.
//
// On this container (1 CPU) the threads interleave rather than run in
// parallel; the executor is exercised for *correctness* (its final match
// state must equal the serial executor's) and for real scheduler
// statistics. Paper speedup *curves* come from the virtual multiprocessor
// (src/psim), which schedules recorded task DAGs on P virtual processors.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/arena.h"
#include "base/rng.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "par/task_queue.h"
#include "par/worker_pool.h"
#include "par/ws_deque.h"
#include "rete/network.h"

namespace psme {

/// Tunables for the Steal scheduler's idle path and chain execution.
/// Exposed on EngineOptions (`steal`) and the demos' CLIs; the defaults are
/// what every production caller gets.
struct StealTuning {
  /// Sweep backoff ladder: after a failed whole-pool sweep a worker runs
  /// `backoff_park_sweeps` backoff rounds before parking on its pre-sweep
  /// ticket; in round i it spins `backoff_base_spins << i` pause
  /// instructions (once the doubled budget reaches `backoff_max_spins` it
  /// yields the core instead). Rounds re-sweep only when the publish epoch
  /// has moved — otherwise the deques are provably still empty — so a
  /// quiet idle episode costs exactly one failed sweep. Zero rounds means
  /// park right after the first failed sweep. Lower park thresholds trade
  /// steal latency for idle cost — on an oversubscribed host (the common
  /// case at 8-13 workers) parking early is what keeps failed sweeps off
  /// the bus.
  uint32_t backoff_base_spins = 4;
  uint32_t backoff_max_spins = 512;
  uint32_t backoff_park_sweeps = 2;

  /// Dependent-chain splitting: a worker executes up to `chain_split_depth`
  /// dependent activations inline (each node execution continues directly
  /// into its last-emitted child, skipping the pool/deque/counter round
  /// trip), then pushes the continuation back onto its deque as a fresh,
  /// stealable task. 0 = never split (unbounded inline chains);
  /// 1 = split at every link (no inline chaining — the pre-backoff
  /// scheduler's behavior). The default is CostBudget::max_depth (64) / 8:
  /// the linter's longest tolerated chain split into one stealable segment
  /// per worker of a typical 8-wide pool.
  uint32_t chain_split_depth = 8;
};

struct ParallelStats {
  /// Buckets of the consecutive-failed-sweep histogram: run lengths
  /// 1, 2, 3-4, 5-8, 9-16, >16 (a run ends when a take succeeds, the worker
  /// parks, or the cycle drains).
  static constexpr size_t kSweepHistBuckets = 6;

  uint64_t tasks = 0;
  uint64_t failed_pops = 0;          // locked policies: lock-and-look misses
  uint64_t queue_lock_spins = 0;     // locked policies
  uint64_t queue_lock_acquires = 0;  // locked policies
  uint64_t steals = 0;               // Steal: successful cross-worker takes
  uint64_t failed_steals = 0;        // Steal: empty/lost-race steal attempts
  uint64_t failed_sweeps = 0;        // Steal: whole-pool sweeps finding nothing
  uint64_t sweep_backoff_ns = 0;     // Steal: time spent in the backoff ladder
  uint64_t parks = 0;                // Steal: times a worker parked
  uint64_t chain_inline = 0;         // Steal: continuations executed inline
  uint64_t chain_splits = 0;         // Steal: continuations split to the deque
  uint64_t pool_slabs = 0;           // Steal: activation-pool slab mallocs
  uint64_t sweep_hist[kSweepHistBuckets] = {};  // failed-sweep run lengths
  double wall_seconds = 0;
  /// Token-arena snapshot taken at the end of the cycle (counters are
  /// lifetime totals; benches difference consecutive snapshots).
  MatchStats arena;

  /// Folds another cycle's numbers into this accumulator: traffic counters
  /// and wall time add; the lifetime gauges (pool slabs, arena snapshot)
  /// take the newer cycle's value. The one merge rule for every call site
  /// (Engine::match, bench_scheduler, ...) instead of per-site field lists.
  void accumulate(const ParallelStats& st) {
    tasks += st.tasks;
    failed_pops += st.failed_pops;
    queue_lock_spins += st.queue_lock_spins;
    queue_lock_acquires += st.queue_lock_acquires;
    steals += st.steals;
    failed_steals += st.failed_steals;
    failed_sweeps += st.failed_sweeps;
    sweep_backoff_ns += st.sweep_backoff_ns;
    parks += st.parks;
    chain_inline += st.chain_inline;
    chain_splits += st.chain_splits;
    for (size_t i = 0; i < kSweepHistBuckets; ++i) {
      sweep_hist[i] += st.sweep_hist[i];
    }
    wall_seconds += st.wall_seconds;
    pool_slabs = st.pool_slabs;
    arena = st.arena;
  }
};

/// Slab recycler for the heap Activations the Steal deques point at. Each
/// worker owns a shard: allocation is a local free-list pop (or a slab bump
/// when cold), so the steady state does one slab malloc per kSlabNodes tasks
/// at most — in practice zero once warm. A task is usually freed by a
/// *different* worker than the one that allocated it (thieves execute what
/// victims push), so release returns the node to its owner shard through a
/// lock-free MPSC Treiber stack: push-only CAS (ABA-safe — the owner takes
/// the whole list with one exchange and never CAS-pops). No locks anywhere,
/// preserving the Steal path's lock-freedom.
class ActivationPool {
 public:
  explicit ActivationPool(size_t n_workers);
  ActivationPool(const ActivationPool&) = delete;
  ActivationPool& operator=(const ActivationPool&) = delete;

  /// Owner-only (or pre-dispatch from the coordinating thread).
  Activation* alloc(size_t worker, Activation&& a);

  /// Callable from any worker; `worker` is the *caller's* index (used to
  /// shortcut the CAS when a task dies on its home shard).
  void release(size_t worker, Activation* a);

  /// Materializes shard `worker`'s first slab (and the slab vector's
  /// buffer) so the shard's first real allocation is a free-list pop, not a
  /// malloc. Owner-only or pre-dispatch, like alloc().
  void warm(size_t worker);

  [[nodiscard]] uint64_t slab_allocs() const;

 private:
  struct Node {
    Activation act;  // first member: Activation* <-> Node* cast
    Node* next = nullptr;
    uint32_t owner = 0;
  };
  static constexpr size_t kSlabNodes = 256;

  struct alignas(64) Shard {
    Node* free = nullptr;                 // owner-only
    std::atomic<Node*> returns{nullptr};  // MPSC: any worker pushes
    std::vector<std::unique_ptr<Node[]>> slabs;
    size_t fill = kSlabNodes;  // next unused node in slabs.back()
    uint64_t slab_allocs = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

class ParallelMatcher {
 public:
  /// `primary` is registered as agent 0 — the single-agent call sites'
  /// state. Additional agent sessions multiplex over the same workers and
  /// network via register_agent(); every task carries its agent tag
  /// (Activation::agent) and is executed against exactly that agent's
  /// MatchState, so one agent's drain cannot observe or stall another's.
  /// `tracer`, when non-null, turns on event recording: prewarm() sizes one
  /// ring per worker (tracks 1..n; track 0 belongs to the engine thread)
  /// before any worker runs, and the scheduler loops record task spans,
  /// steal attempts/outcomes, park intervals and queue-depth samples into
  /// their own track. The tracer must outlive the matcher.
  /// `tuning` parameterizes the Steal policy's idle backoff and chain
  /// splitting (ignored by the locked policies).
  /// `profiler`, when non-null, attributes every executed task to its
  /// (node, agent) cell in the worker's shard (obs/profiler.h): prewarm()
  /// and the run_impl drain boundary grow the shards quiescently, the
  /// scheduler loops call sample()/record() around each execute. The
  /// profiler must outlive the matcher; it may be shared with the serial
  /// executor (worker indices line up: shard 0 is the engine thread only
  /// when the matcher is idle).
  ParallelMatcher(Network& net, MatchState& primary, size_t n_workers,
                  TaskQueueSet::Policy policy = TaskQueueSet::Policy::Steal,
                  obs::Tracer* tracer = nullptr, StealTuning tuning = {},
                  obs::MatchProfiler* profiler = nullptr);

  /// Agent-less form for multi-agent serving (AgentGroup): no state is
  /// registered at construction; every agent — including agent 0 — joins via
  /// register_agent(). A cycle run before any registration must carry no
  /// seeds.
  ParallelMatcher(Network& net, size_t n_workers,
                  TaskQueueSet::Policy policy = TaskQueueSet::Policy::Steal,
                  obs::Tracer* tracer = nullptr, StealTuning tuning = {},
                  obs::MatchProfiler* profiler = nullptr);
  ~ParallelMatcher();
  ParallelMatcher(const ParallelMatcher&) = delete;
  ParallelMatcher& operator=(const ParallelMatcher&) = delete;

  /// Registers another agent's state; returns its agent id (the tag its
  /// seeds must carry). Quiescent-only: never call while a cycle is in
  /// flight. The state must outlive the matcher (or at least every cycle
  /// that references its id).
  uint32_t register_agent(MatchState& st);

  [[nodiscard]] size_t agent_count() const { return states_.size(); }
  [[nodiscard]] MatchState& agent_state(uint32_t agent) {
    return *states_[agent];
  }

  /// The §5.2 task filter for run-time production addition: activations of
  /// stateful nodes older than `min_node_id` are dropped at emit time, and
  /// (during phase A) alpha memories do not emit to their Left successors.
  /// Mirrors ExecContext's update fields; see rete/update.h for the phase
  /// contract.
  struct UpdateFilter {
    uint32_t min_node_id = 0;
    bool suppress_alpha_left = false;
  };

  /// Drains `seeds` and everything they spawn across all workers; returns
  /// when the match is quiescent. Seeds must be homogeneous — all additions
  /// or all deletions, not both: a delete token racing a sibling addition
  /// through the same memories is order-dependent (the join can install a
  /// fresh PI behind a delete token that already swept that line). Callers
  /// with a mixed wme batch drain the removals as their own cycle first,
  /// which yields the serial executor's final state (see Engine::match).
  /// Seeds may mix *agents* freely (each tagged task only touches its own
  /// agent's state; the homogeneity rule applies per agent and holds
  /// trivially across agents) — this is how AgentGroup batches N agents'
  /// cycles into one drain, amortizing the pool dispatch across sessions.
  ParallelStats run_cycle(std::vector<Activation> seeds);

  /// Same, but with the update filter applied — the parallel form of
  /// run_update_serial's phases (what Figure 6-9 measures: the new
  /// production's state update enjoys the full parallelism of the match).
  ParallelStats run_update(std::vector<Activation> seeds,
                           const UpdateFilter& filter);

  /// In-place primaries: the seed vector is caller-owned scratch (elements
  /// are consumed, capacity is retained), so a persistent caller (Engine)
  /// pays no per-cycle seed-vector allocation. The by-value forms above
  /// delegate here.
  ParallelStats run_cycle_inplace(std::vector<Activation>& seeds);
  ParallelStats run_update_inplace(std::vector<Activation>& seeds,
                                   const UpdateFilter& filter);

  [[nodiscard]] TaskQueueSet::Policy policy() const { return policy_; }
  [[nodiscard]] size_t workers() const { return n_workers_; }
  [[nodiscard]] const StealTuning& tuning() const { return tuning_; }

  /// Aggregate over every cycle this matcher has run (persistent-lifetime
  /// diagnostics; per-cycle numbers come from the run_* return value).
  [[nodiscard]] uint64_t lifetime_tasks() const { return lifetime_tasks_; }
  [[nodiscard]] uint64_t lifetime_cycles() const { return lifetime_cycles_; }

 private:
  /// Per-worker scheduler state, one cache line apart so the hot counters
  /// of different workers never share a line (the shared `failed_pops_` /
  /// `outstanding` atomics of the locked path are exactly such false-sharing
  /// hot spots).
  struct alignas(64) WorkerSlot {
    explicit WorkerSlot(uint64_t seed) : rng(seed) {}

    WsDeque<Activation> deque;  // Steal only
    // Termination counters: written by the owner, swept by idle workers.
    std::atomic<uint64_t> created{0};
    std::atomic<uint64_t> executed{0};
    // Owner-private statistics, aggregated at quiescence.
    uint64_t done = 0;
    uint64_t steals = 0;
    uint64_t failed_steals = 0;
    uint64_t failed_sweeps = 0;
    uint64_t sweep_backoff_ns = 0;
    uint64_t parks = 0;
    uint64_t chain_inline = 0;
    uint64_t chain_splits = 0;
    uint64_t sweep_hist[ParallelStats::kSweepHistBuckets] = {};
    Rng rng;
    // Persistent per-worker scratch, leased into the worker's ExecContext
    // for the duration of a cycle (see Lease in parallel_match.cpp): emit
    // bursts and execute()'s under-lock child buffers reuse their
    // high-water capacity across every cycle this matcher ever runs.
    std::vector<Activation> emit_batch;
    std::vector<Token> scratch_children;
    std::vector<std::pair<Token, bool>> scratch_emissions;
  };

  ParallelStats run_impl(std::vector<Activation>& seeds,
                         const UpdateFilter* filter);
  ParallelStats run_steal(std::vector<Activation>& seeds,
                          const UpdateFilter* filter);
  ParallelStats run_locked(std::vector<Activation>& seeds,
                           const UpdateFilter* filter);

  void steal_loop(size_t worker, const UpdateFilter* filter,
                  std::atomic<bool>& abort);
  void locked_loop(size_t worker, const UpdateFilter* filter,
                   std::atomic<uint64_t>& executed);
  Activation* take_task(size_t worker);
  [[nodiscard]] bool quiescent() const;
  void reset_slots();
  void prewarm();

  Network& net_;
  // Registered agent states, indexed by agent id (0 = the primary). The
  // worker loops re-bind their ExecContext from this table per task.
  std::vector<MatchState*> states_;
  size_t n_workers_;
  TaskQueueSet::Policy policy_;
  StealTuning tuning_;
  obs::Tracer* tracer_;  // null = tracing off (one branch per event site)
  obs::MatchProfiler* profiler_;  // null = profiling off (same discipline)
  WorkerPool pool_;
  ParkingLot lot_;
  ActivationPool apool_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;  // all policies (scratch)
  std::unique_ptr<TaskQueueSet> queues_;            // Single/Multi, persistent
  std::atomic<int64_t> outstanding_{0};             // locked-policy counter
  // Locked-policy seed partition, reused across cycles (inner vectors keep
  // their capacity; Activation owns no heap so clear() frees nothing).
  std::vector<std::vector<Activation>> locked_parts_;
  uint64_t lifetime_tasks_ = 0;
  uint64_t lifetime_cycles_ = 0;
};

}  // namespace psme
