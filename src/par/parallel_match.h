// The threaded match executor: N match processes pull node activations from
// the task queues and execute them against the shared network, exactly the
// PSM-E organization (§2.3/§4). Cycle termination is detected with an
// outstanding-task counter: a task is counted before it is pushed and
// uncounted after its execution completes, so the counter can only reach
// zero at true quiescence.
//
// On this container (1 CPU) the threads interleave rather than run in
// parallel; the executor is still exercised for *correctness* (its final
// match state must equal the serial executor's) and for real lock/queue
// statistics. Speedup *curves* come from the virtual multiprocessor
// (src/psim), which schedules recorded task DAGs on P virtual processors.
#pragma once

#include <cstdint>

#include "par/task_queue.h"
#include "rete/network.h"

namespace psme {

struct ParallelStats {
  uint64_t tasks = 0;
  uint64_t failed_pops = 0;
  uint64_t queue_lock_spins = 0;
  uint64_t queue_lock_acquires = 0;
  double wall_seconds = 0;
};

class ParallelMatcher {
 public:
  ParallelMatcher(Network& net, size_t n_workers, TaskQueueSet::Policy policy)
      : net_(net), n_workers_(n_workers == 0 ? 1 : n_workers), policy_(policy) {}

  /// The §5.2 task filter for run-time production addition: activations of
  /// stateful nodes older than `min_node_id` are dropped at emit time, and
  /// (during phase A) alpha memories do not emit to their Left successors.
  /// Mirrors ExecContext's update fields; see rete/update.h for the phase
  /// contract.
  struct UpdateFilter {
    uint32_t min_node_id = 0;
    bool suppress_alpha_left = false;
  };

  /// Drains `seeds` and everything they spawn across all workers; returns
  /// when the match is quiescent.
  ParallelStats run_cycle(std::vector<Activation> seeds);

  /// Same, but with the update filter applied — the parallel form of
  /// run_update_serial's phases (what Figure 6-9 measures: the new
  /// production's state update enjoys the full parallelism of the match).
  ParallelStats run_update(std::vector<Activation> seeds,
                           const UpdateFilter& filter);

 private:
  ParallelStats run_impl(std::vector<Activation> seeds,
                         const UpdateFilter* filter);

  Network& net_;
  size_t n_workers_;
  TaskQueueSet::Policy policy_;
};

}  // namespace psme
