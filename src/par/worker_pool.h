// Minimal fork-join helper: runs `n` copies of a worker function on
// std::thread and joins them all. Exceptions in workers are rethrown on the
// caller thread (first one wins).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

namespace psme {

/// fn(worker_index) is called once per worker, concurrently.
void run_workers(size_t n, const std::function<void(size_t)>& fn);

}  // namespace psme
