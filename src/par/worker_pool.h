// Worker scheduling primitives for the parallel matcher.
//
//   run_workers  — the original fork-join helper: spawns `n` std::threads,
//                  joins them, rethrows the first worker exception. Still
//                  used by tests and one-shot drains; costs a thread spawn
//                  per worker per call.
//   WorkerPool   — persistent pool: threads are spawned once and parked on a
//                  condition variable between jobs, so a ParallelMatcher can
//                  run thousands of match cycles without touching
//                  pthread_create. The calling thread participates as
//                  worker 0, so a pool of size n holds n-1 threads.
//   ParkingLot   — epoch-based park/unpark used *inside* a match cycle: a
//                  worker that has run out of work (and out of spin budget)
//                  parks here; a worker that publishes new tasks bumps the
//                  epoch and wakes the sleepers. The ticket protocol makes
//                  the lost-wakeup race impossible: take a ticket, re-check
//                  for work, then park — a publish after the ticket always
//                  either is seen by the re-check or invalidates the ticket.
//
// Both sleeping locks here are psme::Mutex (par/mutex.h), so they carry
// clang thread-safety capabilities and lockdep ranks like every Spinlock.
// The ParkingLot mutex carries LockRank::Park (the top of the match-lock
// hierarchy, see par/lock_order.h): parking and unparking are legal no
// matter which match locks the thread still holds, and lockdep verifies no
// match lock is ever acquired the other way around while it is held. The
// WorkerPool dispatch mutex carries LockRank::Dispatch: it is touched only
// at cycle boundaries, with no match lock held.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "base/thread_annotations.h"
#include "par/lock_order.h"
#include "par/mutex.h"

namespace psme {

/// fn(worker_index) is called once per worker, concurrently. One-shot:
/// spawns and joins threads every call.
void run_workers(size_t n, const std::function<void(size_t)>& fn);

/// One spin-wait hint: tells the core a sibling hyperthread may run (x86
/// `pause`); elsewhere a compiler barrier so the loop is not optimized away.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded spin-then-yield-then-sleep backoff for idle workers. `round` is
/// the caller's consecutive-failure count: early rounds burn a few pause
/// instructions, middle rounds yield the core, late rounds sleep with an
/// exponentially growing but capped interval (max ~256 µs), so an idle
/// worker on an oversubscribed machine costs microseconds, not a core.
inline void idle_backoff(uint32_t round) {
  if (round < 8) {
    for (uint32_t i = 0; i < (1u << round); ++i) cpu_pause();
  } else if (round < 16) {
    std::this_thread::yield();
  } else {
    const uint32_t shift = round - 16 < 6 ? round - 16 : 6;
    std::this_thread::sleep_for(std::chrono::microseconds(4u << shift));
  }
}

/// Exponential backoff between failed whole-pool steal sweeps (the Steal
/// scheduler's pre-park ladder, StealTuning): round i spins
/// `base_spins << i` pauses; once the doubled budget reaches `max_spins`
/// the worker yields its core instead of spinning harder. Unlike
/// idle_backoff this never sleeps — sleeping is the ParkingLot's job, which
/// the caller reaches after its park threshold.
inline void sweep_backoff(uint32_t round, uint32_t base_spins,
                          uint32_t max_spins) {
  const uint32_t shift = round < 16 ? round : 16;
  const uint64_t spins = static_cast<uint64_t>(base_spins == 0 ? 1 : base_spins)
                         << shift;
  if (spins >= max_spins) {
    std::this_thread::yield();
    return;
  }
  for (uint64_t i = 0; i < spins; ++i) cpu_pause();
}

/// Epoch-based parking. See file comment for the ticket protocol.
class ParkingLot {
 public:
  /// Step 1 of parking: take a ticket *before* the final look for work.
  [[nodiscard]] uint64_t ticket() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Step 2: blocks until the epoch moves past `ticket`. Returns
  /// immediately if it already has.
  void park(uint64_t ticket) {
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      MutexGuard lk(mu_);
      mu_.wait(cv_, [&] {
        return epoch_.load(std::memory_order_seq_cst) != ticket;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Publisher side: invalidates all outstanding tickets and wakes every
  /// sleeper. Cheap when nobody sleeps (one RMW + one load).
  void unpark_all() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) != 0) {
      MutexGuard lk(mu_);
      cv_.notify_all();
    }
  }

  /// Publisher side for a single new task: invalidates all outstanding
  /// tickets but wakes only one sleeper. A woken worker that finds more
  /// than one task behind the publish wakes the next sleeper itself when
  /// it republishes, so the wake-up chain tracks the actual work supply
  /// instead of stampeding every sleeper on every publish.
  void unpark_one() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) != 0) {
      MutexGuard lk(mu_);
      cv_.notify_one();
    }
  }

  [[nodiscard]] uint32_t sleeper_count() const {
    return sleepers_.load(std::memory_order_seq_cst);
  }

 private:
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> sleepers_{0};
  Mutex mu_{LockRank::Park, "park-mutex"};
  std::condition_variable_any cv_;
};

/// Persistent fork-join pool. run() dispatches fn(0..n-1) across the pool
/// (caller runs worker 0), blocks until all workers finish, and rethrows
/// the first worker exception. Not itself reentrant: one run() at a time.
class WorkerPool {
 public:
  explicit WorkerPool(size_t n_workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Primary dispatch: a raw function pointer plus context. Capturing
  /// lambdas over a couple of pointers overflow libstdc++'s 16-byte
  /// std::function SBO and heap-allocate per call; per-cycle callers
  /// (ParallelMatcher) pass a captureless trampoline over a stack-held job
  /// struct instead, keeping dispatch allocation-free.
  void run(void (*fn)(void* arg, size_t worker), void* arg);

  /// Convenience overload for setup/test call sites.
  void run(const std::function<void(size_t)>& fn);

  [[nodiscard]] size_t size() const { return n_; }

 private:
  void thread_main(size_t index);

  size_t n_;
  std::vector<std::thread> threads_;
  Mutex mu_{LockRank::Dispatch, "pool-dispatch"};
  std::condition_variable_any job_cv_;
  std::condition_variable_any done_cv_;
  // The job slot: written by run(), read by every worker, cleared when the
  // last worker reports done. All of it lives under the dispatch mutex.
  uint64_t epoch_ PSME_GUARDED_BY(mu_) = 0;
  void (*job_fn_)(void*, size_t) PSME_GUARDED_BY(mu_) = nullptr;
  void* job_arg_ PSME_GUARDED_BY(mu_) = nullptr;
  size_t active_ PSME_GUARDED_BY(mu_) = 0;
  bool stop_ PSME_GUARDED_BY(mu_) = false;
  std::exception_ptr error_ PSME_GUARDED_BY(mu_);
};

}  // namespace psme
