#include "rete/nodes.h"

namespace psme {

const char* node_type_name(NodeType t) {
  switch (t) {
    case NodeType::Const: return "const";
    case NodeType::Disj: return "disj";
    case NodeType::Intra: return "intra";
    case NodeType::BJoin: return "bjoin";
    case NodeType::AlphaMem: return "alpha-mem";
    case NodeType::Join: return "and";
    case NodeType::Not: return "not";
    case NodeType::Ncc: return "ncc";
    case NodeType::NccPartner: return "ncc-partner";
    case NodeType::Prod: return "p-node";
  }
  return "?";
}

namespace {
constexpr uint64_t kSeed = 0x2545f4914f6cdd1dull;

uint64_t mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}
}  // namespace

uint64_t TwoInputNode::hash_left(const Token& t) const {
  uint64_t h = mix(kSeed, id);
  for (uint16_t i = 0; i < n_eq; ++i) {
    const JoinTest& jt = tests[i];
    h = mix(h, t[jt.left_ce]->field(jt.left_slot).hash());
  }
  return h;
}

uint64_t TwoInputNode::hash_right(const Wme* w) const {
  uint64_t h = mix(kSeed, id);
  for (uint16_t i = 0; i < n_eq; ++i) {
    h = mix(h, w->field(tests[i].right_slot).hash());
  }
  return h;
}

bool TwoInputNode::tests_pass(const Token& t, const Wme* w,
                              uint32_t* tests_run) const {
  uint32_t n = 0;
  bool ok = true;
  for (const JoinTest& jt : tests) {
    ++n;
    if (!eval_pred(jt.pred, t[jt.left_ce]->field(jt.left_slot),
                   w->field(jt.right_slot))) {
      ok = false;
      break;
    }
  }
  if (tests_run != nullptr) *tests_run += n;
  return ok;
}

uint64_t BJoinNode::hash_prefix(const Token& t) const {
  uint64_t h = mix(kSeed ^ 0x5151ull, id);
  for (uint32_t i = 0; i < prefix_len && i < t.size(); ++i) {
    h = mix(h, t[i]->timetag);
  }
  return h;
}

uint64_t NccNode::hash_prefix(const Token& t) const {
  uint64_t h = mix(kSeed ^ 0xabcdefull, id);
  // Identity of the prefix (wme timetags), independent of binding values.
  for (uint32_t i = 0; i < left_arity && i < t.size(); ++i) {
    h = mix(h, t[i]->timetag);
  }
  return h;
}

}  // namespace psme
