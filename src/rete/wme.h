// Working memory elements.
//
// A wme is a record: a class symbol plus a dense vector of attribute values
// (slot layout per class comes from ClassSchemas). Each wme carries the OPS5
// timetag — a monotonically increasing creation stamp used by conflict
// resolution and by token hashing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/symbol.h"
#include "base/value.h"
#include "lang/ast.h"

namespace psme {

struct Wme {
  Symbol cls;
  std::vector<Value> fields;
  uint64_t timetag = 0;

  [[nodiscard]] Value field(int slot) const {
    return slot < static_cast<int>(fields.size()) ? fields[static_cast<size_t>(slot)]
                                                  : Value();
  }

  /// Structural equality ignoring the timetag (used by WM dedup in Soar mode,
  /// where re-deriving an existing wme must not create a duplicate).
  [[nodiscard]] bool same_contents(const Wme& o) const {
    return cls == o.cls && fields == o.fields;
  }

  /// Span form so callers can hash prospective contents without building a
  /// probe Wme (WorkingMemory::find's allocation-free lookup).
  [[nodiscard]] static size_t contents_hash_of(Symbol cls, const Value* fields,
                                               size_t n) {
    size_t h = std::hash<Symbol>()(cls);
    for (size_t i = 0; i < n; ++i) h = h * 0x100000001b3ull ^ fields[i].hash();
    return h;
  }

  [[nodiscard]] size_t contents_hash() const {
    return contents_hash_of(cls, fields.data(), fields.size());
  }

  [[nodiscard]] std::string to_string(const SymbolTable& syms,
                                      const ClassSchemas& schemas) const;
};

}  // namespace psme
