// Per-agent match state, split out of the Network (DESIGN.md §13).
//
// The compiled network — nodes, jumptable, alpha-net structure — is a
// read-mostly shared artifact: N agent sessions multiplex over one copy of
// it. Everything the match *mutates* lives here instead, one MatchState per
// agent: the paired beta hash tables, the token arena (with its epoch
// reclamation), the alpha-memory wme lists, and the sink the P-nodes report
// to (the agent's conflict set). Executors carry a MatchState pointer in
// their ExecContext; Network::execute reads structure from the shared
// network and state through the context, so the same compiled node serves
// every agent without their tokens ever meeting.
//
// Invariant (task tagging): an activation tagged with agent A is only ever
// executed against A's MatchState, and every child it emits inherits the
// tag — so one agent's drain can share worker threads with another's
// without observing its state. The ParallelMatcher enforces the tag at
// dispatch; this file just owns the state being protected.
#pragma once

#include <cstdint>
#include <deque>

#include "base/arena.h"
#include "base/thread_annotations.h"
#include "par/spinlock.h"
#include "rete/hash_tables.h"
#include "rete/nodes.h"

namespace psme {

class MatchSink;

/// The mutable half of one alpha memory for one agent. The node itself
/// (AlphaMemNode, shared structure) carries only the dense `mem_index` that
/// names this slot. Ranked Bucket like the table lines: a worker holds at
/// most one match-state Bucket lock at a time.
struct AlphaMemState {
  mutable Spinlock lock{LockRank::Bucket, "alpha-mem"};
  AlphaWmeList wmes PSME_GUARDED_BY(lock);
};

/// One agent's complete mutable match state.
class MatchState {
 public:
  explicit MatchState(size_t hash_lines = 4096,
                      uint32_t arena_chunk_bytes = TokenArena::kDefaultChunkBytes)
      : tables(hash_lines), arena(1, arena_chunk_bytes) {}
  MatchState(const MatchState&) = delete;
  MatchState& operator=(const MatchState&) = delete;

  PairedHashTables tables;
  /// mutable use: the quiescent node_outputs() replay builds transient
  /// tokens through a const MatchState.
  mutable TokenArena arena;
  AlphaWmePool alpha_pool;
  MatchSink* sink = nullptr;

  /// Grows the alpha-state array to cover `count` alpha memories (the
  /// network's alpha_mem_count()). Quiescent-only, like the arena's
  /// ensure_workers: executors call it at drain boundaries so state created
  /// for a freshly compiled production exists before any task touches it.
  /// A deque keeps existing entries' addresses (and their spinlocks) stable
  /// across growth.
  void ensure_alpha(size_t count) {
    while (alpha_.size() < count) alpha_.emplace_back();
  }

  AlphaMemState& alpha(uint32_t mem_index) { return alpha_[mem_index]; }
  [[nodiscard]] const AlphaMemState& alpha(uint32_t mem_index) const {
    return alpha_[mem_index];
  }
  [[nodiscard]] size_t alpha_count() const { return alpha_.size(); }

 private:
  std::deque<AlphaMemState> alpha_;
};

}  // namespace psme
