// Tokens: partial instantiations (PIs).
//
// Following the paper, a token is simply "a list of wmes, matching CEs".
// We keep tokens *flat* (a vector of wme pointers) rather than parent-linked:
// flat PIs can be compared for equality structurally, which is what delete-
// flag tokens need when they re-traverse the network and remove state from
// memory nodes. Flat tokens also cross thread boundaries without shared
// ownership headaches; wmes themselves are owned by working memory and are
// never freed in the middle of a match cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rete/wme.h"

namespace psme {

using TokenData = std::vector<const Wme*>;

/// Identity hash of a PI (combines the wme timetags). Used for NCC prefix
/// keying and conflict-set indexing — NOT for join-memory placement, which
/// hashes the *bindings* tested at the destination node instead (see
/// JoinNode::hash_left/hash_right).
[[nodiscard]] inline size_t token_identity_hash(const TokenData& t) {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Wme* w : t) {
    h ^= static_cast<size_t>(w->timetag) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

[[nodiscard]] inline TokenData token_extend(const TokenData& t, const Wme* w) {
  TokenData out;
  out.reserve(t.size() + 1);
  out = t;
  out.push_back(w);
  return out;
}

[[nodiscard]] std::string token_to_string(const TokenData& t,
                                          const SymbolTable& syms,
                                          const ClassSchemas& schemas);

}  // namespace psme
