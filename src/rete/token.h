// Tokens: partial instantiations (PIs).
//
// Following the paper, a token is simply "a list of wmes, matching CEs".
// We keep tokens *flat* (an array of wme pointers) rather than parent-linked:
// flat PIs can be compared for equality structurally, which is what delete-
// flag tokens need when they re-traverse the network and remove state from
// memory nodes. Flat tokens also cross thread boundaries without shared
// ownership headaches; wmes themselves are owned by working memory and are
// never freed in the middle of a match cycle.
//
// Representation: `Token` is a trivially copyable value. Up to kInlineCap
// wme pointers live inside the token itself — most productions have ≤4 CEs,
// so the common case touches no allocator at all. Longer tokens *spill*: the
// pointer array is written once into a TokenArena chunk (per-worker bump
// allocation, see base/arena.h) and the token carries {payload, chunk}.
// Spilled payloads are immutable; extending a token always builds a new one.
//
// Ownership: tokens queued through the scheduler, used as seeds, or held in
// scratch are *transient* — they need no bookkeeping because arena chunks
// survive at least one full drain past the one that sealed them (epoch
// deferral). Structures that keep a token *across* drains (memory-node
// entries, the conflict set, Soar provenance) pin()/unpin() it, which
// ref-counts the underlying chunk. See DESIGN.md §9.
//
// `TokenData` (a plain wme-pointer vector) remains as the legacy
// representation for the old-vs-new allocation benchmarks.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "base/arena.h"
#include "rete/wme.h"

namespace psme {

class Token {
 public:
  static constexpr uint32_t kInlineCap = 4;

  Token() noexcept : size_(0) { u_.spill = {nullptr, nullptr}; }
  explicit Token(const Wme* w) noexcept : size_(1) { u_.inl[0] = w; }

  [[nodiscard]] uint32_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool spilled() const noexcept { return size_ > kInlineCap; }

  [[nodiscard]] const Wme* const* begin() const noexcept { return data(); }
  [[nodiscard]] const Wme* const* end() const noexcept {
    return data() + size_;
  }
  [[nodiscard]] const Wme* operator[](size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] const Wme* front() const noexcept { return data()[0]; }
  [[nodiscard]] const Wme* back() const noexcept { return data()[size_ - 1]; }

  /// Marks this copy as stored across drains: the owning arena chunk cannot
  /// be reclaimed while pinned. Inline tokens pin nothing. const because it
  /// mutates shared chunk state, not the token value.
  void pin() const noexcept {
    if (spilled()) {
      u_.spill.chunk->pins.fetch_add(1, std::memory_order_relaxed);
    }
  }
  /// Releases a pin(). Release order: the unpinner's last reads of the
  /// payload must be visible before the reclaimer (acquire) frees the chunk.
  void unpin() const noexcept {
    if (spilled()) {
      u_.spill.chunk->pins.fetch_sub(1, std::memory_order_release);
    }
  }

  friend bool operator==(const Token& a, const Token& b) noexcept {
    if (a.size_ != b.size_) return false;
    const Wme* const* pa = a.data();
    const Wme* const* pb = b.data();
    for (uint32_t i = 0; i < a.size_; ++i) {
      if (pa[i] != pb[i]) return false;
    }
    return true;
  }

 private:
  [[nodiscard]] const Wme* const* data() const noexcept {
    return size_ <= kInlineCap ? u_.inl : u_.spill.data;
  }

  struct Spill {
    const Wme* const* data;
    TokenArena::Chunk* chunk;
  };
  union U {
    const Wme* inl[kInlineCap];
    Spill spill;
  } u_;
  uint32_t size_;

  friend Token token_make(const Wme* const*, uint32_t, const Wme* const*,
                          uint32_t, TokenArena&, size_t);
};

static_assert(std::is_trivially_copyable_v<Token>,
              "Activations must stay trivially movable handles");

/// Builds a token from the concatenation of two wme-pointer spans, spilling
/// to `arena` (worker `w`'s pool) when the result exceeds kInlineCap.
[[nodiscard]] inline Token token_make(const Wme* const* a, uint32_t na,
                                      const Wme* const* b, uint32_t nb,
                                      TokenArena& arena, size_t w) {
  Token t;
  t.size_ = na + nb;
  if (t.size_ <= Token::kInlineCap) {
    for (uint32_t i = 0; i < na; ++i) t.u_.inl[i] = a[i];
    for (uint32_t i = 0; i < nb; ++i) t.u_.inl[na + i] = b[i];
    return t;
  }
  TokenArena::Chunk* chunk = nullptr;
  auto** p = static_cast<const Wme**>(
      arena.alloc(w, t.size_ * static_cast<uint32_t>(sizeof(const Wme*)),
                  &chunk));
  if (na != 0) std::memcpy(p, a, na * sizeof(const Wme*));
  if (nb != 0) std::memcpy(p + na, b, nb * sizeof(const Wme*));
  t.u_.spill = {p, chunk};
  return t;
}

[[nodiscard]] inline Token token_extend(const Token& t, const Wme* w,
                                        TokenArena& arena, size_t worker) {
  return token_make(t.begin(), t.size(), &w, 1, arena, worker);
}

/// Child of a BJoin: left ++ right[prefix_len:].
[[nodiscard]] inline Token token_concat(const Token& l, const Token& r,
                                        uint32_t prefix_len, TokenArena& arena,
                                        size_t worker) {
  return token_make(l.begin(), l.size(), r.begin() + prefix_len,
                    r.size() - prefix_len, arena, worker);
}

[[nodiscard]] inline Token token_prefix(const Token& t, uint32_t len,
                                        TokenArena& arena, size_t worker) {
  return token_make(t.begin(), len, nullptr, 0, arena, worker);
}

/// Identity hash of a PI (combines the wme timetags). Used for NCC prefix
/// keying and conflict-set indexing — NOT for join-memory placement, which
/// hashes the *bindings* tested at the destination node instead (see
/// JoinNode::hash_left/hash_right). Works on Token and legacy TokenData.
template <typename Tok>
[[nodiscard]] inline size_t token_identity_hash(const Tok& t) {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (const Wme* w : t) {
    h ^= static_cast<size_t>(w->timetag) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

// ---- legacy vector representation (old-vs-new benchmarks) -----------------

using TokenData = std::vector<const Wme*>;

[[nodiscard]] inline TokenData token_extend(const TokenData& t, const Wme* w) {
  // reserve-then-insert: copy-assignment after reserve() may shed the
  // reserved capacity (capacity after assignment is unspecified), which made
  // the push_back below a potential second allocation. insert into an empty
  // reserved vector is guaranteed a single allocation total.
  TokenData out;
  out.reserve(t.size() + 1);
  out.insert(out.end(), t.begin(), t.end());
  out.push_back(w);
  return out;
}

[[nodiscard]] std::string token_to_string(const Token& t,
                                          const SymbolTable& syms,
                                          const ClassSchemas& schemas);
[[nodiscard]] std::string token_to_string(const TokenData& t,
                                          const SymbolTable& syms,
                                          const ClassSchemas& schemas);

}  // namespace psme
