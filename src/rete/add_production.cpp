// ProductionStore is header-only; anchor TU.
#include "rete/add_production.h"

namespace psme {
static_assert(sizeof(AddRecord) > 0);
}  // namespace psme
