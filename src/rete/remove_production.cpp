#include "rete/remove_production.h"

#include <cassert>

namespace psme {

RemovePlan plan_removal(const Network& net, uint32_t victim_pnode) {
  const uint32_t n = net.node_count();
  assert(victim_pnode < n && net.node(victim_pnode) != nullptr &&
         net.node(victim_pnode)->type == NodeType::Prod &&
         "plan_removal: victim is not a live P-node");

  // Reverse adjacency over the live network. Jumptable slots give the
  // forward edges (node -> each SuccessorRef in its slot, covering left
  // chains, alpha->join right inputs, and class-root entries alike); the
  // NCC partner->owner count channel is the one edge that bypasses the
  // jumptable, so it is added explicitly — a kept owner must keep its
  // partner subnetwork.
  std::vector<std::vector<uint32_t>> preds(n);
  const Jumptable& jt = net.jumptable();
  for (uint32_t i = 0; i < n; ++i) {
    const Node* node = net.node(i);
    if (node == nullptr) continue;  // tombstone from an earlier removal
    for (const SuccessorRef& ref : jt.peek(node->jt_slot)) {
      preds[ref.node].push_back(i);
    }
    if (node->type == NodeType::NccPartner) {
      preds[static_cast<const NccPartnerNode*>(node)->owner].push_back(i);
    }
  }

  // Keep-set: backward BFS from every surviving P-node.
  std::vector<uint8_t> keep(n, 0);
  std::vector<uint32_t> work;
  for (uint32_t i = 0; i < n; ++i) {
    const Node* node = net.node(i);
    if (node != nullptr && node->type == NodeType::Prod && i != victim_pnode) {
      keep[i] = 1;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    const uint32_t cur = work.back();
    work.pop_back();
    for (uint32_t p : preds[cur]) {
      if (!keep[p]) {
        keep[p] = 1;
        work.push_back(p);
      }
    }
  }

  RemovePlan plan;
  plan.pnode = victim_pnode;
  plan.dead_mask.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    const Node* node = net.node(i);
    if (node == nullptr || keep[i]) continue;
    plan.dead_mask[i] = 1;
    plan.dead_nodes.push_back(i);
    if (node->type == NodeType::AlphaMem) {
      plan.dead_alpha_mems.push_back(
          static_cast<const AlphaMemNode*>(node)->mem_index);
    }
  }
  assert(plan.dead_mask[victim_pnode] && "victim P-node survived its removal");
  return plan;
}

}  // namespace psme
