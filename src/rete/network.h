// The compiled Rete network: node storage, the jumptable, and the
// node-activation interpreter.
//
// The unit of work is the *activation* — "the address of the code for a node
// in the RETE network and an input token for that node" (§2.3). Executors
// (serial trace recorder, threaded worker pool) pop activations, call
// Network::execute, and push whatever child activations execute() emits into
// their ExecContext. The network itself never schedules anything.
//
// The network holds only *compiled, read-mostly structure* — nodes, the
// jumptable, the class roots. Everything the match mutates (beta hash
// tables, token arena, alpha wme lists, the P-node sink) is per-agent state
// (rete/match_state.h) reached through ExecContext::state, so N agent
// sessions multiplex over one compiled network (DESIGN.md §13).
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "base/symbol.h"
#include "lang/ast.h"
#include "rete/hash_tables.h"
#include "rete/match_state.h"
#include "rete/nodes.h"

namespace psme {

struct Activation {
  uint32_t node = 0;
  Side side = Side::Left;
  bool add = true;
  Token token;  // right-side activations carry a single wme
  // Which agent's MatchState this task runs against. Trails the aggregate so
  // single-agent call sites can keep the historical four-element braced
  // init; emit paths stamp it from the emitting context's agent.
  uint32_t agent = 0;
};

static_assert(std::is_trivially_copyable_v<Activation>,
              "the scheduler moves Activations as raw handles");

/// Per-task work counters, filled by execute(). These are the raw material
/// for the psim cost model and for the paper's contention figures.
struct TaskStats {
  uint32_t tests = 0;        // consistency/constant tests evaluated
  uint32_t probes = 0;       // memory entries scanned
  uint32_t inserts = 0;      // memory insertions/removals
  uint32_t emits = 0;        // successor activations emitted
  uint32_t lock_spins = 0;   // spins on the line lock
  uint32_t line = UINT32_MAX;     // hash line touched (if any)
  bool touched_line = false;
  Side line_side = Side::Left;

  void reset() { *this = TaskStats{}; }
};

class MatchSink {
 public:
  virtual ~MatchSink() = default;
  virtual void on_insert(const ProdNode& p, const Token& t) = 0;
  virtual void on_retract(const ProdNode& p, const Token& t) = 0;
};

/// Execution context handed to execute(). Concrete executors implement emit()
/// to enqueue child activations. The update-mode fields implement the §5.2
/// task filter.
class ExecContext {
 public:
  virtual ~ExecContext() = default;
  virtual void emit(Activation&& a) = 0;

  TaskStats stats;

  /// The agent state every execute() call reads and writes: beta tables,
  /// token arena, alpha wme lists, sink. Executors bind it before the first
  /// execute (single-agent executors once at construction; the multi-agent
  /// scheduler re-binds per task from Activation::agent).
  MatchState* state = nullptr;
  /// Agent tag stamped onto every emitted child (matches `state`).
  uint32_t agent = 0;

  /// Which arena pool this context allocates child tokens from. Executors
  /// that run one context per thread set it to the worker index; serial
  /// executors keep the default 0.
  size_t worker = 0;

  // §5.2 run-time state update: when update_mode is set, activations of
  // stateful nodes with id < min_node_id are ignored, and alpha memories do
  // not emit to their Left-side successors (left seeding happens in the
  // explicit replay phase).
  bool update_mode = false;
  uint32_t min_node_id = 0;
  bool suppress_alpha_left = false;

  // Reusable per-context scratch for execute(): child tokens built under a
  // line lock, emitted after it is released. Living here (capacity retained
  // across tasks) instead of as locals keeps the steady-state execute path
  // free of heap traffic. execute() is not reentrant per context.
  std::vector<Token> scratch_children;
  std::vector<std::pair<Token, bool>> scratch_emissions;  // (token, add)
};

class Network {
 public:
  Network(SymbolTable& syms, ClassSchemas& schemas);

  SymbolTable& syms() { return syms_; }
  [[nodiscard]] const SymbolTable& syms() const { return syms_; }
  ClassSchemas& schemas() { return schemas_; }
  Jumptable& jumptable() { return jt_; }
  [[nodiscard]] const Jumptable& jumptable() const { return jt_; }

  /// Creates a node of type T; assigns the next node id and a jumptable
  /// slot. New nodes always get ids greater than all existing nodes — the
  /// invariant the §5.2 update filter relies on, which is why removed nodes
  /// are tombstoned (free_node) and ids never recycled. Jumptable slots and
  /// alpha mem_indexes, by contrast, ARE recycled from removal's free lists:
  /// both are dense resources whose per-agent state is drained before the
  /// slot is freed, so reuse keeps the dispatch table and every MatchState's
  /// alpha array flat under add/remove churn. Alpha-memory nodes get a dense
  /// mem_index: the slot their per-agent state occupies in every MatchState.
  template <typename T>
  T* make_node() {
    auto owned = std::make_unique<T>();
    T* n = owned.get();
    n->id = static_cast<uint32_t>(nodes_.size());
    if (free_slots_.empty()) {
      n->jt_slot = jt_.new_slot();
    } else {
      n->jt_slot = free_slots_.back();
      free_slots_.pop_back();
    }
    if constexpr (std::is_same_v<T, AlphaMemNode>) {
      if (free_mem_indexes_.empty()) {
        n->mem_index = alpha_mem_count_++;
      } else {
        n->mem_index = free_mem_indexes_.back();
        free_mem_indexes_.pop_back();
      }
    }
    nodes_.push_back(std::move(owned));
    return n;
  }

  /// Tombstones a removed node: recycles its jumptable slot (which must be
  /// empty — the unsplice erased every entry, and a dead node's successors
  /// are dead too) and, for alpha memories, its mem_index; then frees the
  /// node. node(id) returns nullptr forever after — the id itself is never
  /// reused, preserving the make_node invariant the §5.2 update filter
  /// depends on. Caller contract (Engine::remove_production_runtime): the
  /// node is unspliced from the published jumptable and every agent's state
  /// for it has been drained.
  void free_node(uint32_t id) {
    Node* n = nodes_[id].get();
    assert(n != nullptr && "free_node: node already freed");
    assert(jt_.peek(n->jt_slot).empty() && "free_node: slot not unspliced");
    free_slots_.push_back(n->jt_slot);
    if (n->type == NodeType::AlphaMem) {
      free_mem_indexes_.push_back(static_cast<AlphaMemNode*>(n)->mem_index);
    }
    nodes_[id].reset();
    ++freed_nodes_;
  }

  /// How many alpha memories exist (every MatchState sizes its alpha-state
  /// array to this via ensure_alpha at drain boundaries). Counts recycled
  /// indexes once: removal returns a mem_index to the free list instead of
  /// shrinking this.
  [[nodiscard]] uint32_t alpha_mem_count() const { return alpha_mem_count_; }

  /// Null for tombstoned (removed) ids; loops over the id space must skip.
  [[nodiscard]] Node* node(uint32_t id) { return nodes_[id].get(); }
  [[nodiscard]] const Node* node(uint32_t id) const { return nodes_[id].get(); }
  [[nodiscard]] uint32_t node_count() const {
    return static_cast<uint32_t>(nodes_.size());
  }
  /// Nodes minus tombstones (diagnostics; the churn tests assert flatness).
  [[nodiscard]] uint32_t live_node_count() const {
    return static_cast<uint32_t>(nodes_.size()) - freed_nodes_;
  }
  /// Recycled-resource watermarks (diagnostics).
  [[nodiscard]] size_t free_slot_count() const { return free_slots_.size(); }
  [[nodiscard]] size_t free_mem_index_count() const {
    return free_mem_indexes_.size();
  }

  /// Jumptable slot holding the entry nodes for wmes of class `cls`.
  uint32_t root_slot(Symbol cls);
  [[nodiscard]] bool has_root(Symbol cls) const;

  /// All class-root slots (the network verifier's entry points).
  [[nodiscard]] const std::map<Symbol, uint32_t>& roots() const {
    return roots_;
  }

  /// Entry point for a wme change: queues the class-root activations.
  void inject(const Wme* w, bool add, ExecContext& ctx);

  /// Executes one node activation; emits child activations through ctx.
  void execute(const Activation& act, ExecContext& ctx);

  /// The §5.2 task filter, applied by executors (or by emit paths).
  [[nodiscard]] bool should_execute(const Activation& a,
                                    const ExecContext& ctx) const {
    if (!ctx.update_mode) return true;
    const Node* n = nodes_[a.node].get();
    return is_stateless(n->type) || n->id >= ctx.min_node_id;
  }

  /// All output tokens a node would pass downstream, regenerated from the
  /// given agent's stored state. Only meaningful between cycles; used by the
  /// §5.2 replay ("the last shared node must be specially executed in order
  /// to pass down all of the PIs that it has stored as state").
  /// Quiescent-only: reads lock-guarded memories without their locks.
  [[nodiscard]] std::vector<Token> node_outputs(uint32_t node_id,
                                                const MatchState& ms) const
      PSME_NO_THREAD_SAFETY_ANALYSIS;

  /// Allocation-conscious form: appends into a caller-owned buffer whose
  /// capacity survives across replays (the §5.2 phase-C scratch; see
  /// UpdateScratch in rete/update.h). `out` is not cleared.
  void node_outputs_into(uint32_t node_id, const MatchState& ms,
                         std::vector<Token>& out) const
      PSME_NO_THREAD_SAFETY_ANALYSIS;

  /// Node census for diagnostics and the code-size model.
  struct Census {
    uint32_t consts = 0, disjs = 0, intras = 0, alpha_mems = 0, joins = 0,
             nots = 0, nccs = 0, partners = 0, bjoins = 0, prods = 0;
    [[nodiscard]] uint32_t two_input() const { return joins + nots + bjoins; }
    [[nodiscard]] uint32_t total() const {
      return consts + disjs + intras + alpha_mems + joins + nots + nccs +
             partners + bjoins + prods;
    }
  };
  [[nodiscard]] Census census() const;

 private:
  void emit_succs(uint32_t jt_slot, const Token& token, bool add,
                  ExecContext& ctx, bool from_alpha = false);

  /// The bound agent state of a context, asserted in debug builds: every
  /// execute() path goes through this accessor, so a task ever dispatched
  /// without its agent's state trips immediately.
  static MatchState& state_of(ExecContext& ctx) {
    assert(ctx.state != nullptr && "ExecContext has no MatchState bound");
    return *ctx.state;
  }

  void exec_const(const ConstNode& n, const Activation& a, ExecContext& ctx);
  void exec_disj(const DisjNode& n, const Activation& a, ExecContext& ctx);
  void exec_intra(const IntraNode& n, const Activation& a, ExecContext& ctx);
  void exec_bjoin(const BJoinNode& n, const Activation& a, ExecContext& ctx);
  void exec_alpha(const AlphaMemNode& n, const Activation& a,
                  ExecContext& ctx);
  void exec_join(const JoinNode& n, const Activation& a, ExecContext& ctx);
  void exec_not(const NotNode& n, const Activation& a, ExecContext& ctx);
  void exec_ncc(const NccNode& n, const Activation& a, ExecContext& ctx);
  void exec_partner(const NccPartnerNode& n, const Activation& a,
                    ExecContext& ctx);
  void exec_prod(const ProdNode& n, const Activation& a, ExecContext& ctx);

  SymbolTable& syms_;
  ClassSchemas& schemas_;
  Jumptable jt_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<Symbol, uint32_t> roots_;  // class -> jumptable slot
  uint32_t alpha_mem_count_ = 0;
  uint32_t freed_nodes_ = 0;
  // Removal's recycling pools, consumed LIFO by make_node.
  std::vector<uint32_t> free_slots_;
  std::vector<uint32_t> free_mem_indexes_;
};

}  // namespace psme
