// Rete node types.
//
// Node kinds follow the paper's Figure 2-2: constant test nodes form the
// alpha (discrimination) part; alpha memory nodes hold wme lists; two-input
// nodes (and/not, plus Soar's conjunctive-negation pair) hold the beta state
// in the global paired hash tables; P-nodes terminate each production.
//
// Successor dispatch goes through the Jumptable (§5.1): every node that can
// acquire successors owns a jumptable slot; queuing the activations of a
// slot's successors and then "falling through" is the run-time analogue of
// the paper's indirect jump. Adding a production at run time splices new
// successor entries into existing slots — no other structure is touched.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/chunk_list.h"
#include "lang/ast.h"
#include "rete/token.h"

namespace psme {

enum class NodeType : uint8_t {
  Const,       // one constant/predicate test on one slot
  Disj,        // << ... >> membership test on one slot
  Intra,       // slot-vs-slot test within one wme (same variable twice in a CE)
  AlphaMem,    // alpha memory: stores matching wmes
  Join,        // two-input and-node
  Not,         // two-input not-node (negated CE)
  Ncc,         // conjunctive negation owner (left input only)
  NccPartner,  // bottom of an NCC subnetwork; feeds counts to its Ncc owner
  BJoin,       // token-x-token join (constrained bilinear organization, §6.2)
  Prod,        // P-node
};

[[nodiscard]] const char* node_type_name(NodeType t);

/// Is this node stateless (pure test, no memory)? Stateless nodes always
/// execute during the §5.2 update; stateful ones are filtered by node id.
[[nodiscard]] constexpr bool is_stateless(NodeType t) {
  return t == NodeType::Const || t == NodeType::Disj || t == NodeType::Intra;
}

enum class Side : uint8_t { Left, Right };

struct SuccessorRef {
  uint32_t node = 0;
  Side side = Side::Left;

  friend bool operator==(const SuccessorRef&, const SuccessorRef&) = default;
};

/// The jumptable: slot -> list of successor activations to queue.
/// "When there are two or more successors to a node, only one jumptable entry
/// is maintained for all of the successors together."
///
/// Run-time production addition mutates the table copy-on-write: begin_cow()
/// clones the slot array, the builder's new_slot()/add() calls land on the
/// clone, and publish_cow() swaps the clone in at a quiescent safe point (the
/// same epoch-reclamation boundary the token arenas use). Matching agents
/// therefore only ever read a table that is either fully old or fully new —
/// a learning agent's chunk compile never exposes a half-spliced slot to its
/// peers. The retired table is kept until the next publish so any pointer
/// taken before the swap stays valid through its own safe point.
class Jumptable {
 public:
  using Slots = std::vector<std::vector<SuccessorRef>>;

  uint32_t new_slot() {
    Slots& t = table();
    t.emplace_back();
    return static_cast<uint32_t>(t.size() - 1);
  }

  /// Splices a new successor into an existing slot (run-time production
  /// addition). Mirrors the paper's Jumptable[new] := Jumptable[old] swap.
  void add(uint32_t slot, SuccessorRef s) { table()[slot].push_back(s); }

  [[nodiscard]] const std::vector<SuccessorRef>& succs(uint32_t slot) const {
    // Relaxed: a diagnostics counter bumped concurrently by every match
    // worker. (A plain uint64_t here was a genuine data race under TSan.)
    indirections_.fetch_add(1, std::memory_order_relaxed);
    return slots_[slot];
  }

  /// Successor list without counting an indirection (structure inspection).
  /// While a COW edit is staged this reads the *staged* table, so the
  /// builder sees its own splices before publish.
  [[nodiscard]] const std::vector<SuccessorRef>& peek(uint32_t slot) const {
    return cow_active_ ? (*staged_)[slot] : slots_[slot];
  }

  [[nodiscard]] size_t size() const {
    return cow_active_ ? staged_->size() : slots_.size();
  }
  [[nodiscard]] uint64_t indirections() const {
    return indirections_.load(std::memory_order_relaxed);
  }
  void reset_stats() { indirections_.store(0, std::memory_order_relaxed); }

  /// Starts a COW edit: clones the live slot array; subsequent
  /// new_slot()/add() calls mutate the clone. Quiescent-caller only (the
  /// clone itself is not concurrency-safe against another begin_cow).
  void begin_cow() {
    staged_ = std::make_unique<Slots>(slots_);
    cow_active_ = true;
  }

  /// Publishes the staged table. Must be called at a match-quiescent safe
  /// point: no worker holds a reference from succs() across this swap (the
  /// fork-join drain guarantees it). The previous table is retired, not
  /// freed, until the next publish.
  void publish_cow() {
    retired_ = std::make_unique<Slots>(std::move(slots_));
    slots_ = std::move(*staged_);
    staged_.reset();
    cow_active_ = false;
    ++cow_publishes_;
  }

  /// Abandons a staged edit (failed compile); the live table is untouched.
  void abort_cow() {
    staged_.reset();
    cow_active_ = false;
  }

  /// Production removal's unsplice: erases every successor entry targeting a
  /// node marked in `dead` (indexed by node id) from every slot. During a
  /// COW edit this mutates the staged table, so a removal publishes
  /// atomically exactly like an addition — matchers only ever observe the
  /// production fully present or fully gone. A dead node's own slot ends up
  /// empty as a corollary (its successors are provably dead too), which is
  /// what lets Network::free_node recycle the slot. Returns entries erased.
  size_t erase_refs(const std::vector<uint8_t>& dead) {
    Slots& t = table();
    size_t erased = 0;
    for (auto& slot : t) {
      auto keep = std::remove_if(
          slot.begin(), slot.end(), [&](const SuccessorRef& r) {
            return r.node < dead.size() && dead[r.node] != 0;
          });
      erased += static_cast<size_t>(slot.end() - keep);
      slot.erase(keep, slot.end());
    }
    return erased;
  }

  [[nodiscard]] bool cow_active() const { return cow_active_; }
  /// How many COW swaps have been published (network_lint reports shared-
  /// node statistics as coming from a COW snapshot when nonzero).
  [[nodiscard]] uint64_t cow_publishes() const { return cow_publishes_; }

 private:
  Slots& table() { return cow_active_ ? *staged_ : slots_; }

  Slots slots_;
  std::unique_ptr<Slots> staged_;   // COW clone under edit
  std::unique_ptr<Slots> retired_;  // previous table, held one publish
  bool cow_active_ = false;
  uint64_t cow_publishes_ = 0;
  mutable std::atomic<uint64_t> indirections_{0};
};

struct Node {
  NodeType type;
  uint32_t id = 0;
  uint32_t jt_slot = 0;  // successors live in Jumptable[jt_slot]

  explicit Node(NodeType t) : type(t) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
};

struct ConstNode final : Node {
  ConstNode() : Node(NodeType::Const) {}
  ConstTest test;
};

struct DisjNode final : Node {
  DisjNode() : Node(NodeType::Disj) {}
  DisjTest test;
};

struct IntraNode final : Node {
  IntraNode() : Node(NodeType::Intra) {}
  int slot_a = 0;
  int slot_b = 0;
  Pred pred = Pred::Eq;
};

/// Alpha wme lists share one recycled chunk pool (owned by each agent's
/// MatchState): like the right-entry lists, steady-state add/remove churn
/// reuses chunks instead of hitting the heap. Unordered storage
/// (swap-with-last erase).
constexpr size_t kAlphaWmesPerChunk = 16;
using AlphaWmeList = ChunkedList<const Wme*, kAlphaWmesPerChunk>;
using AlphaWmePool = ChunkPool<const Wme*, kAlphaWmesPerChunk>;

struct AlphaMemNode final : Node {
  AlphaMemNode() : Node(NodeType::AlphaMem) {}
  // The wme list itself is per-agent state (AlphaMemState in
  // rete/match_state.h — what §5.2 update replays and what Figure 2-2 draws
  // as the memory under each constant chain); the shared node carries only
  // the dense index of that state slot, assigned by Network::make_node.
  uint32_t mem_index = 0;
};

/// One consistency test at a two-input node: compares a slot of an earlier
/// wme in the left token with a slot of the right wme.
struct JoinTest {
  uint16_t left_ce = 0;    // index into the left token
  uint16_t left_slot = 0;  // slot within that wme
  uint16_t right_slot = 0; // slot within the right wme
  Pred pred = Pred::Eq;

  friend bool operator==(const JoinTest&, const JoinTest&) = default;
};

struct TwoInputNode : Node {
  explicit TwoInputNode(NodeType t) : Node(t) {}
  std::vector<JoinTest> tests;  // Eq tests first (the hash basis), then others
  uint16_t n_eq = 0;            // leading Eq-test count
  uint32_t left_arity = 0;      // incoming left token length
  uint32_t left_pred = 0;       // node id of the left predecessor (sharing key)
  uint32_t alpha_mem = 0;       // node id of the right-input alpha memory

  /// Binding hash of a left token for this node (covers the Eq tests and the
  /// node id, per §6.1).
  [[nodiscard]] uint64_t hash_left(const Token& t) const;

  /// Binding hash of a right wme; equal to hash_left of any joinable token.
  [[nodiscard]] uint64_t hash_right(const Wme* w) const;

  /// Runs all consistency tests.
  [[nodiscard]] bool tests_pass(const Token& t, const Wme* w,
                                uint32_t* tests_run = nullptr) const;
};

struct JoinNode final : TwoInputNode {
  JoinNode() : TwoInputNode(NodeType::Join) {}
};

struct NotNode final : TwoInputNode {
  NotNode() : TwoInputNode(NodeType::Not) {}
};

struct NccNode final : Node {
  NccNode() : Node(NodeType::Ncc) {}
  uint32_t left_arity = 0;
  uint32_t partner = 0;  // NccPartner node id

  /// NCC state is keyed by the token identity (not bindings): owner and
  /// partner activations for the same prefix must land on the same line.
  [[nodiscard]] uint64_t hash_prefix(const Token& t) const;
};

struct NccPartnerNode final : Node {
  NccPartnerNode() : Node(NodeType::NccPartner) {}
  uint32_t owner = 0;       // NccNode id
  uint32_t prefix_len = 0;  // strip subnetwork wmes down to this many
};

/// Token-x-token join for the constrained bilinear organization (§6.2,
/// Figure 6-8): both inputs carry tokens that share the same constraint
/// prefix. The child token is left ++ right[prefix_len:]. Both sides store
/// in the *left* table, distinguished by the entry tag, keyed by the shared
/// prefix identity.
struct BJoinNode final : Node {
  BJoinNode() : Node(NodeType::BJoin) {}
  uint32_t prefix_len = 0;

  [[nodiscard]] uint64_t hash_prefix(const Token& t) const;
};

struct ProdNode final : Node {
  ProdNode() : Node(NodeType::Prod) {}
  const Production* prod = nullptr;
};

}  // namespace psme
