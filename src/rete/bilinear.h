// Constrained bilinear network organization (§6.2, Figure 6-8).
//
// Long-chain productions (Figure 6-7: a Strips chunk with 43 CEs) serialize
// the match: each join depends on the previous one, so no amount of
// processors shortens the chain. The constrained bilinear organization
// matches the first few CEs (the constraint prefix) linearly, hangs each
// *group* of the remaining CEs off the prefix as an independent short chain,
// and combines group results with token-x-token joins. The constraint
// prevents the combinatorial explosion an unconstrained bilinear split would
// cause.
//
// The paper's compiler could not yet emit this organization ("we plan to
// develop the compiler technology"); here it is implemented as an opt-in
// builder used by the Figure 6-8 ablation bench. It supports match-only
// productions whose non-prefix variables do not cross group boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "lang/ast.h"
#include "rete/network.h"

namespace psme {

struct BilinearOptions {
  uint32_t prefix_ces = 3;   // length of the constraint prefix chain
  uint32_t group_size = 8;   // CEs per hanging group
  bool balanced_tree = false;  // combine groups pairwise instead of linearly
};

struct BilinearResult {
  uint32_t pnode = 0;
  std::vector<uint32_t> nodes;
};

/// Compiles `p` with the constrained bilinear organization. Throws
/// std::runtime_error if `p` has non-positive CEs or variables that cross
/// group boundaries (other than through the prefix).
BilinearResult build_bilinear(Network& net, const Production& p,
                              const BilinearOptions& opts);

}  // namespace psme
