#include "rete/codesize.h"

namespace psme {

size_t modeled_node_bytes(const Node& n) {
  // Calibrated against Table 5-1: with inline-expanded procedures a two-input
  // node costs 219-304 bytes depending on its test count, constant tests are
  // a compare-and-branch, and alpha memories are list-insert stubs.
  switch (n.type) {
    case NodeType::Const:
      return 28;
    case NodeType::Disj: {
      const auto& d = static_cast<const DisjNode&>(n);
      return 24 + 10 * d.test.options.size();
    }
    case NodeType::Intra:
      return 34;
    case NodeType::AlphaMem:
      return 52;
    case NodeType::Join: {
      const auto& j = static_cast<const JoinNode&>(n);
      return 150 + 34 * j.tests.size();
    }
    case NodeType::Not: {
      const auto& j = static_cast<const NotNode&>(n);
      return 170 + 34 * j.tests.size();
    }
    case NodeType::Ncc:
      return 200;
    case NodeType::NccPartner:
      return 130;
    case NodeType::BJoin:
      return 190;
    case NodeType::Prod:
      return 96;
  }
  return 0;
}

void generate_code(const Node& n, std::vector<uint8_t>& image) {
  const size_t bytes = modeled_node_bytes(n);
  image.reserve(image.size() + bytes);
  // Deterministic filler derived from the node identity; writing every byte
  // keeps generation cost proportional to generated size.
  uint32_t x = n.id * 0x9e3779b9u + static_cast<uint32_t>(n.type) + 1u;
  for (size_t i = 0; i < bytes; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    image.push_back(static_cast<uint8_t>(x));
  }
}

}  // namespace psme
