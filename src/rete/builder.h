// Compiles Production ASTs into the Rete network, sharing nodes with the
// existing network exactly where PSM-E did: constant-test chains share
// prefixes in the alpha part, and two-input nodes are shared when an
// existing node has the same left predecessor, the same right alpha memory
// and the same test sequence.
//
// add_production() works identically for the initial production set and for
// chunks added at run time (§5.1): because every new node receives an id
// greater than all existing ids and successor splicing goes through the
// jumptable, "the process of integration of the new code reduces to changing
// entries in the jumptable".
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "lang/ast.h"
#include "rete/network.h"

namespace psme {

/// One slot-vs-slot test within a wme (same variable twice in one CE).
struct IntraTestSpec {
  int slot_a = 0, slot_b = 0;
  Pred pred = Pred::Eq;
};

/// Entry point of a new alpha-network chain: the first node of the chain
/// that this production created. During the §5.2 update, wmes are seeded
/// directly here after synthetically evaluating the shared prefix tests —
/// the run-time equivalent of the paper's task filter, under which
/// activations of pre-existing nodes are never executed.
struct AlphaFrontier {
  Symbol cls;
  uint32_t entry_node = 0;
  std::vector<ConstTest> prefix_consts;
  std::vector<DisjTest> prefix_disjs;
  std::vector<IntraTestSpec> prefix_intras;
};

/// What a production compiled to. The engine keeps one per production.
struct CompiledProduction {
  const Production* ast = nullptr;
  uint32_t pnode = 0;

  /// Lowest node id created while adding this production. If the production
  /// was entirely shared except for its P-node, this is the P-node id.
  uint32_t first_new_id = 0;

  /// Left predecessor of the first new beta-level node: "the last shared
  /// node" of §5.2. Its stored PIs are replayed during the update.
  uint32_t share_point = UINT32_MAX;

  std::vector<uint32_t> new_nodes;     // created for this production
  std::vector<uint32_t> shared_nodes;  // reused two-input/alpha nodes
  std::vector<AlphaFrontier> alpha_frontiers;  // new alpha-chain entries

  /// RHS variable binding sites: var id -> (positive-CE index, slot).
  struct BindSite {
    int ce = -1;  // -1: bound only on the RHS (via `bind`) or never
    int slot = 0;
  };
  std::vector<BindSite> bindings;

  /// Generated "machine code" image (run-time compiler emulation; size is the
  /// Table 5-1 bytes/chunk figure, generation time feeds Table 5-2).
  std::vector<uint8_t> code;

  double compile_seconds = 0.0;

  [[nodiscard]] size_t code_bytes() const { return code.size(); }
};

struct BuilderOptions {
  bool share_alpha = true;
  bool share_beta = true;   // two-input node sharing (Table 5-2 ablation)
  bool generate_code = true;
};

class Builder {
 public:
  explicit Builder(Network& net, BuilderOptions opts = {})
      : net_(net), opts_(opts) {}

  /// Compiles `p` into the network. `p` must outlive the network (the caller
  /// owns production storage).
  CompiledProduction add_production(const Production& p);

  [[nodiscard]] const BuilderOptions& options() const { return opts_; }

  /// Count of two-input nodes reused instead of created, over all calls.
  [[nodiscard]] uint64_t beta_nodes_shared() const { return beta_shared_; }
  [[nodiscard]] uint64_t alpha_nodes_shared() const { return alpha_shared_; }

 private:
  struct BuildState {
    CompiledProduction cp;
    // Binding sites discovered so far: var -> (positive CE index, slot).
    std::vector<CompiledProduction::BindSite> sites;
    uint32_t pred = UINT32_MAX;  // current left predecessor node
    uint32_t arity = 0;          // current token length
    bool share_broken = false;   // sharing has stopped; everything below is new
    uint32_t base_node_count = 0;  // network size before this add began
  };

  /// Records Eq binding sites of `ce`'s variables into `sites` at token
  /// position `token_pos`; returns intra-CE (slot-vs-slot) tests.
  using IntraTest = IntraTestSpec;

  uint32_t build_alpha(const Condition& ce, BuildState& st,
                       const std::vector<IntraTest>& intras);
  void build_positive(const Condition& ce, BuildState& st);
  void build_negative(const Condition& ce, BuildState& st);
  void build_ncc(const Condition& group, BuildState& st);

  /// Collects join tests for `ce` against bindings in `sites` (group-local
  /// sites when inside an NCC subnetwork, where tokens extend past
  /// st.arity). Variables whose binding site is `current_pos` (this CE) are
  /// skipped: the binding itself is no test and repeats within the CE were
  /// already turned into intra tests. Returns tests with Eq tests first;
  /// sets n_eq.
  std::vector<JoinTest> make_join_tests(
      const Condition& ce, const std::vector<CompiledProduction::BindSite>& sites,
      int current_pos, uint16_t* n_eq) const;
  std::vector<IntraTest> bind_and_collect_intra(
      const Condition& ce, int token_pos,
      std::vector<CompiledProduction::BindSite>& sites) const;

  uint32_t attach_two_input(NodeType type, uint32_t pred, uint32_t amem,
                            std::vector<JoinTest> tests, uint16_t n_eq,
                            uint32_t left_arity, BuildState& st);

  void note_new_node(const Node& n, BuildState& st);
  void note_shared_beta(uint32_t id, BuildState& st);

  Network& net_;
  BuilderOptions opts_;
  uint64_t beta_shared_ = 0;
  uint64_t alpha_shared_ = 0;
};

}  // namespace psme
