#include "rete/bilinear.h"

#include <algorithm>
#include <stdexcept>

namespace psme {
namespace {

struct Site {
  int ce = -1;  // global CE index of the binding occurrence
  int slot = 0;
};

Pred mirror(Pred p) {
  switch (p) {
    case Pred::Lt: return Pred::Gt;
    case Pred::Le: return Pred::Ge;
    case Pred::Gt: return Pred::Lt;
    case Pred::Ge: return Pred::Le;
    default: return p;
  }
}

/// Builds a non-shared alpha chain (const tests only) for one CE.
uint32_t build_plain_alpha(Network& net, const Condition& ce,
                           std::vector<uint32_t>& created) {
  uint32_t cur_slot = net.root_slot(ce.cls);
  for (const ConstTest& t : ce.consts) {
    auto* n = net.make_node<ConstNode>();
    n->test = t;
    net.jumptable().add(cur_slot, SuccessorRef{n->id, Side::Left});
    created.push_back(n->id);
    cur_slot = n->jt_slot;
  }
  auto* am = net.make_node<AlphaMemNode>();
  net.jumptable().add(cur_slot, SuccessorRef{am->id, Side::Left});
  created.push_back(am->id);
  return am->id;
}

}  // namespace

BilinearResult build_bilinear(Network& net, const Production& p,
                              const BilinearOptions& opts) {
  const size_t n_ces = p.conditions.size();
  for (const Condition& ce : p.conditions) {
    if (ce.negated || ce.is_ncc()) {
      throw std::runtime_error(
          "build_bilinear: only positive CEs are supported");
    }
    if (!ce.disjs.empty()) {
      throw std::runtime_error("build_bilinear: disjunction tests unsupported");
    }
  }
  const uint32_t prefix = std::min<uint32_t>(
      opts.prefix_ces, static_cast<uint32_t>(n_ces > 1 ? n_ces - 1 : 1));

  // Global binding sites (first Eq occurrence in CE order).
  std::vector<Site> sites(p.num_vars);
  for (size_t c = 0; c < n_ces; ++c) {
    for (const VarTest& vt : p.conditions[c].vars) {
      if (vt.pred == Pred::Eq && sites[vt.var].ce == -1) {
        sites[vt.var].ce = static_cast<int>(c);
        sites[vt.var].slot = vt.slot;
      }
    }
  }

  // Group id per CE: prefix CEs -> -1, others chunked.
  auto group_of = [&](int ce) -> int {
    if (ce < static_cast<int>(prefix)) return -1;
    return (ce - static_cast<int>(prefix)) / static_cast<int>(opts.group_size);
  };

  // Validate: a non-prefix variable must not cross group boundaries.
  for (size_t c = prefix; c < n_ces; ++c) {
    for (const VarTest& vt : p.conditions[c].vars) {
      const Site& s = sites[vt.var];
      if (s.ce == -1 || group_of(s.ce) == -1) continue;  // wildcard or prefix
      if (group_of(s.ce) != group_of(static_cast<int>(c))) {
        throw std::runtime_error(
            "build_bilinear: variable crosses group boundary");
      }
    }
  }

  BilinearResult res;

  // Alpha memories, one per CE (deliberately unshared: this builder makes
  // standalone benchmark networks).
  std::vector<uint32_t> amems(n_ces);
  for (size_t c = 0; c < n_ces; ++c) {
    amems[c] = build_plain_alpha(net, p.conditions[c], res.nodes);
  }

  // Builds one linear chain over CE indices `ces`, whose token layout is
  // `layout` (global CE index per token position, prefix first).
  auto build_chain = [&](uint32_t start_pred, uint32_t start_arity,
                         const std::vector<int>& layout,
                         const std::vector<size_t>& ces) -> uint32_t {
    uint32_t pred = start_pred;
    uint32_t arity = start_arity;
    for (const size_t c : ces) {
      std::vector<JoinTest> eq, rest;
      for (const VarTest& vt : p.conditions[c].vars) {
        const Site& s = sites[vt.var];
        if (s.ce == -1) continue;
        if (s.ce == static_cast<int>(c)) continue;  // binding occurrence
        // Locate the binding CE in this chain's token layout.
        const auto it = std::find(layout.begin(), layout.end(), s.ce);
        if (it == layout.end()) {
          throw std::runtime_error("build_bilinear: binding outside chain");
        }
        JoinTest jt;
        jt.left_ce = static_cast<uint16_t>(it - layout.begin());
        jt.left_slot = static_cast<uint16_t>(s.slot);
        jt.right_slot = static_cast<uint16_t>(vt.slot);
        jt.pred = mirror(vt.pred);
        (jt.pred == Pred::Eq ? eq : rest).push_back(jt);
      }
      const uint16_t n_eq = static_cast<uint16_t>(eq.size());
      eq.insert(eq.end(), rest.begin(), rest.end());
      auto* j = net.make_node<JoinNode>();
      j->tests = std::move(eq);
      j->n_eq = n_eq;
      j->left_arity = arity;
      j->left_pred = pred;
      j->alpha_mem = amems[c];
      net.jumptable().add(net.node(pred)->jt_slot, SuccessorRef{j->id, Side::Left});
      net.jumptable().add(net.node(amems[c])->jt_slot,
                          SuccessorRef{j->id, Side::Right});
      res.nodes.push_back(j->id);
      pred = j->id;
      ++arity;
    }
    return pred;
  };

  // Prefix chain.
  std::vector<int> prefix_layout;
  for (uint32_t c = 0; c < prefix; ++c) prefix_layout.push_back(static_cast<int>(c));
  std::vector<size_t> prefix_ces;
  for (uint32_t c = 1; c < prefix; ++c) prefix_ces.push_back(c);
  const uint32_t prefix_bottom =
      build_chain(amems[0], 1, prefix_layout, prefix_ces);

  // Group chains, each hanging off the prefix bottom.
  struct GroupOut {
    uint32_t bottom;
    std::vector<int> layout;  // token layout of this group's output
  };
  std::vector<GroupOut> groups;
  for (size_t c = prefix; c < n_ces; c += opts.group_size) {
    std::vector<size_t> ces;
    std::vector<int> layout = prefix_layout;
    for (size_t k = c; k < std::min(n_ces, c + opts.group_size); ++k) {
      ces.push_back(k);
      layout.push_back(static_cast<int>(k));
    }
    GroupOut g;
    g.layout = layout;
    g.bottom = build_chain(prefix_bottom, prefix, layout, ces);
    groups.push_back(std::move(g));
  }

  // Combine group outputs with token-x-token joins on the shared prefix.
  auto combine = [&](const GroupOut& a, const GroupOut& b) -> GroupOut {
    auto* bj = net.make_node<BJoinNode>();
    bj->prefix_len = prefix;
    net.jumptable().add(net.node(a.bottom)->jt_slot,
                        SuccessorRef{bj->id, Side::Left});
    net.jumptable().add(net.node(b.bottom)->jt_slot,
                        SuccessorRef{bj->id, Side::Right});
    res.nodes.push_back(bj->id);
    GroupOut out;
    out.bottom = bj->id;
    out.layout = a.layout;
    out.layout.insert(out.layout.end(), b.layout.begin() + prefix,
                      b.layout.end());
    return out;
  };

  uint32_t final_pred = prefix_bottom;
  if (!groups.empty()) {
    if (opts.balanced_tree) {
      std::vector<GroupOut> level = std::move(groups);
      while (level.size() > 1) {
        std::vector<GroupOut> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
          next.push_back(combine(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
        level = std::move(next);
      }
      final_pred = level.front().bottom;
    } else {
      GroupOut acc = std::move(groups.front());
      for (size_t i = 1; i < groups.size(); ++i) {
        acc = combine(acc, groups[i]);
      }
      final_pred = acc.bottom;
    }
  }

  auto* pn = net.make_node<ProdNode>();
  pn->prod = &p;
  net.jumptable().add(net.node(final_pred)->jt_slot,
                      SuccessorRef{pn->id, Side::Left});
  res.nodes.push_back(pn->id);
  res.pnode = pn->id;
  return res;
}

}  // namespace psme
