#include "rete/builder.h"

#include <algorithm>
#include <stdexcept>

#include "rete/codesize.h"

namespace psme {
namespace {

/// Mirrors an ordering predicate: `w PRED bound` expressed as
/// `bound MIRROR(PRED) w` (join tests evaluate left-PRED-right).
Pred mirror(Pred p) {
  switch (p) {
    case Pred::Lt: return Pred::Gt;
    case Pred::Le: return Pred::Ge;
    case Pred::Gt: return Pred::Lt;
    case Pred::Ge: return Pred::Le;
    default: return p;  // Eq, Ne, SameType are symmetric
  }
}

/// Total order on values for canonical alpha-chain ordering (sharing needs a
/// deterministic test order so equal test sets produce equal chains).
bool value_less(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return a.kind() < b.kind();
  switch (a.kind()) {
    case Value::Kind::Sym: return a.sym() < b.sym();
    case Value::Kind::Int: return a.as_int() < b.as_int();
    case Value::Kind::Float: return a.as_float() < b.as_float();
    case Value::Kind::Nil: return false;
  }
  return false;
}

bool const_test_less(const ConstTest& a, const ConstTest& b) {
  if (a.slot != b.slot) return a.slot < b.slot;
  if (a.pred != b.pred) return a.pred < b.pred;
  return value_less(a.value, b.value);
}

}  // namespace

void Builder::note_new_node(const Node& n, BuildState& st) {
  st.cp.new_nodes.push_back(n.id);
  if (st.cp.new_nodes.size() == 1 || n.id < st.cp.first_new_id) {
    st.cp.first_new_id = n.id;
  }
  if (opts_.generate_code) generate_code(n, st.cp.code);
}

void Builder::note_shared_beta(uint32_t id, BuildState& st) {
  st.cp.shared_nodes.push_back(id);
  ++beta_shared_;
}

std::vector<Builder::IntraTest> Builder::bind_and_collect_intra(
    const Condition& ce, int token_pos,
    std::vector<CompiledProduction::BindSite>& sites) const {
  std::vector<IntraTest> intras;
  // Pass 1: record the first Eq occurrence of each still-unbound variable.
  // Remember which (var, slot) pair was the binding so pass 2 skips it.
  std::vector<std::pair<uint32_t, int>> bound_here;
  for (const VarTest& vt : ce.vars) {
    if (vt.pred != Pred::Eq) continue;
    auto& site = sites[vt.var];
    if (site.ce == -1) {
      site.ce = token_pos;
      site.slot = vt.slot;
      bound_here.emplace_back(vt.var, vt.slot);
    }
  }
  // Pass 2: occurrences whose binding lives in this same CE become intra
  // (slot-vs-slot) tests evaluated in the alpha part.
  for (const VarTest& vt : ce.vars) {
    const auto& site = sites[vt.var];
    if (site.ce != token_pos) continue;
    const bool is_binding =
        vt.pred == Pred::Eq &&
        std::find(bound_here.begin(), bound_here.end(),
                  std::make_pair(vt.var, vt.slot)) != bound_here.end() &&
        site.slot == vt.slot;
    if (is_binding) continue;
    intras.push_back({vt.slot, site.slot, vt.pred});
  }
  return intras;
}

std::vector<JoinTest> Builder::make_join_tests(
    const Condition& ce, const std::vector<CompiledProduction::BindSite>& sites,
    int current_pos, uint16_t* n_eq) const {
  std::vector<JoinTest> eq, rest;
  for (const VarTest& vt : ce.vars) {
    const auto& site = sites[vt.var];
    if (site.ce == -1) {
      if (vt.pred != Pred::Eq) {
        throw std::runtime_error(
            "variable used with a predicate but never bound");
      }
      continue;  // wildcard
    }
    if (site.ce == current_pos) continue;  // bound here: intra or no test
    JoinTest jt;
    jt.left_ce = static_cast<uint16_t>(site.ce);
    jt.left_slot = static_cast<uint16_t>(site.slot);
    jt.right_slot = static_cast<uint16_t>(vt.slot);
    jt.pred = mirror(vt.pred);
    if (jt.pred == Pred::Eq) {
      eq.push_back(jt);
    } else {
      rest.push_back(jt);
    }
  }
  *n_eq = static_cast<uint16_t>(eq.size());
  eq.insert(eq.end(), rest.begin(), rest.end());
  return eq;
}

uint32_t Builder::build_alpha(const Condition& ce, BuildState& st,
                              const std::vector<IntraTest>& intras) {
  // Canonical chain: class root -> sorted const tests -> sorted disjunction
  // tests -> sorted intra tests -> alpha memory. Equal test sets thus share
  // the whole chain.
  std::vector<ConstTest> consts = ce.consts;
  std::sort(consts.begin(), consts.end(), const_test_less);
  std::vector<DisjTest> disjs = ce.disjs;
  std::sort(disjs.begin(), disjs.end(),
            [](const DisjTest& a, const DisjTest& b) { return a.slot < b.slot; });
  std::vector<IntraTest> sorted_intras = intras;
  std::sort(sorted_intras.begin(), sorted_intras.end(),
            [](const IntraTest& a, const IntraTest& b) {
              if (a.slot_a != b.slot_a) return a.slot_a < b.slot_a;
              if (a.slot_b != b.slot_b) return a.slot_b < b.slot_b;
              return a.pred < b.pred;
            });

  uint32_t cur_slot = net_.root_slot(ce.cls);

  // Frontier tracking: remember how far the chain runs through pre-existing
  // nodes; the first node created (or the first reused node built earlier in
  // this same add) ends the "old prefix". Updates later seed wmes directly
  // at the frontier after evaluating the recorded prefix tests.
  bool entered_new = false;
  AlphaFrontier frontier;
  frontier.cls = ce.cls;
  auto record_frontier = [&](uint32_t entry_node) {
    if (entered_new) return;
    entered_new = true;
    frontier.entry_node = entry_node;
    st.cp.alpha_frontiers.push_back(frontier);
  };

  auto descend = [&](auto&& matches, auto&& create) -> void {
    if (opts_.share_alpha) {
      for (const SuccessorRef& s : net_.jumptable().peek(cur_slot)) {
        Node* cand = net_.node(s.node);
        if (matches(cand)) {
          ++alpha_shared_;
          if (cand->id >= st.base_node_count) entered_new = true;  // built
          // earlier within this same add: its frontier is already recorded
          cur_slot = cand->jt_slot;
          return;
        }
      }
    }
    Node* n = create();
    net_.jumptable().add(cur_slot, SuccessorRef{n->id, Side::Left});
    record_frontier(n->id);
    note_new_node(*n, st);
    cur_slot = n->jt_slot;
  };

  for (const ConstTest& t : consts) {
    descend(
        [&](Node* cand) {
          return cand->type == NodeType::Const &&
                 static_cast<ConstNode*>(cand)->test == t;
        },
        [&]() -> Node* {
          auto* n = net_.make_node<ConstNode>();
          n->test = t;
          return n;
        });
    if (!entered_new) frontier.prefix_consts.push_back(t);
  }
  for (const DisjTest& t : disjs) {
    descend(
        [&](Node* cand) {
          return cand->type == NodeType::Disj &&
                 static_cast<DisjNode*>(cand)->test == t;
        },
        [&]() -> Node* {
          auto* n = net_.make_node<DisjNode>();
          n->test = t;
          return n;
        });
    if (!entered_new) frontier.prefix_disjs.push_back(t);
  }
  for (const IntraTest& t : sorted_intras) {
    descend(
        [&](Node* cand) {
          if (cand->type != NodeType::Intra) return false;
          auto* in = static_cast<IntraNode*>(cand);
          return in->slot_a == t.slot_a && in->slot_b == t.slot_b &&
                 in->pred == t.pred;
        },
        [&]() -> Node* {
          auto* n = net_.make_node<IntraNode>();
          n->slot_a = t.slot_a;
          n->slot_b = t.slot_b;
          n->pred = t.pred;
          return n;
        });
    if (!entered_new) frontier.prefix_intras.push_back(t);
  }

  // Terminal alpha memory.
  if (opts_.share_alpha) {
    for (const SuccessorRef& s : net_.jumptable().peek(cur_slot)) {
      Node* cand = net_.node(s.node);
      if (cand->type == NodeType::AlphaMem) {
        ++alpha_shared_;
        return cand->id;
      }
    }
  }
  auto* am = net_.make_node<AlphaMemNode>();
  net_.jumptable().add(cur_slot, SuccessorRef{am->id, Side::Left});
  record_frontier(am->id);
  note_new_node(*am, st);
  return am->id;
}

uint32_t Builder::attach_two_input(NodeType type, uint32_t pred, uint32_t amem,
                                   std::vector<JoinTest> tests, uint16_t n_eq,
                                   uint32_t left_arity, BuildState& st) {
  const uint32_t pred_slot = net_.node(pred)->jt_slot;
  if (opts_.share_beta && !st.share_broken) {
    for (const SuccessorRef& s : net_.jumptable().peek(pred_slot)) {
      if (s.side != Side::Left) continue;
      Node* cand = net_.node(s.node);
      if (cand->type != type) continue;
      auto* t = static_cast<TwoInputNode*>(cand);
      if (t->alpha_mem == amem && t->n_eq == n_eq && t->tests == tests) {
        note_shared_beta(t->id, st);
        return t->id;
      }
    }
  }
  // No share: create, splice into both parents' jumptable slots.
  if (st.cp.share_point == UINT32_MAX) st.cp.share_point = pred;
  st.share_broken = true;
  TwoInputNode* n = nullptr;
  if (type == NodeType::Join) {
    n = net_.make_node<JoinNode>();
  } else {
    n = net_.make_node<NotNode>();
  }
  n->tests = std::move(tests);
  n->n_eq = n_eq;
  n->left_arity = left_arity;
  n->left_pred = pred;
  n->alpha_mem = amem;
  net_.jumptable().add(pred_slot, SuccessorRef{n->id, Side::Left});
  net_.jumptable().add(net_.node(amem)->jt_slot, SuccessorRef{n->id, Side::Right});
  note_new_node(*n, st);
  return n->id;
}

void Builder::build_positive(const Condition& ce, BuildState& st) {
  const int token_pos = static_cast<int>(st.arity);
  const auto intras = bind_and_collect_intra(ce, token_pos, st.sites);
  const uint32_t amem = build_alpha(ce, st, intras);
  if (st.pred == UINT32_MAX) {
    // First CE: its alpha memory is the beta chain's source.
    st.pred = amem;
    st.arity = 1;
    return;
  }
  uint16_t n_eq = 0;
  auto tests = make_join_tests(ce, st.sites, token_pos, &n_eq);
  st.pred = attach_two_input(NodeType::Join, st.pred, amem, std::move(tests),
                             n_eq, st.arity, st);
  ++st.arity;
}

void Builder::build_negative(const Condition& ce, BuildState& st) {
  // Negated CE variables bind only locally (for intra tests); they are not
  // visible to later CEs. Work on a scoped copy of the sites.
  auto local_sites = st.sites;
  const auto intras = bind_and_collect_intra(ce, /*token_pos=*/-3, local_sites);
  // bind_and_collect_intra records binding site ce = -3 for locally bound
  // vars; make_join_tests must treat those as wildcards, not join tests.
  auto test_sites = local_sites;
  for (auto& site : test_sites) {
    if (site.ce == -3) site.ce = -1;
  }
  // Re-resolve intra tests (they used the -3 sites, which is fine: intra
  // tests are slot-vs-slot and need no CE index).
  const uint32_t amem = build_alpha(ce, st, intras);
  uint16_t n_eq = 0;
  auto tests = make_join_tests(ce, test_sites, /*current_pos=*/-3, &n_eq);
  st.pred = attach_two_input(NodeType::Not, st.pred, amem, std::move(tests),
                             n_eq, st.arity, st);
  // arity unchanged: not-nodes pass tokens through.
}

void Builder::build_ncc(const Condition& group, BuildState& st) {
  // Subnetwork: chains off the same predecessor; its tokens extend the main
  // token, so group CE k sits at token position st.arity + k.
  const uint32_t prefix_len = st.arity;
  auto group_sites = st.sites;  // group-local bindings are scoped
  uint32_t sub_pred = st.pred;
  uint32_t sub_arity = st.arity;
  if (st.cp.share_point == UINT32_MAX) st.cp.share_point = st.pred;
  st.share_broken = true;  // NCC groups are never shared
  for (const Condition& ce : group.ncc) {
    const int token_pos = static_cast<int>(sub_arity);
    const auto intras = bind_and_collect_intra(ce, token_pos, group_sites);
    const uint32_t amem = build_alpha(ce, st, intras);
    uint16_t n_eq = 0;
    auto tests = make_join_tests(ce, group_sites, token_pos, &n_eq);
    sub_pred = attach_two_input(NodeType::Join, sub_pred, amem,
                                std::move(tests), n_eq, sub_arity, st);
    ++sub_arity;
  }
  auto* ncc = net_.make_node<NccNode>();
  ncc->left_arity = prefix_len;
  auto* partner = net_.make_node<NccPartnerNode>();
  partner->owner = ncc->id;
  partner->prefix_len = prefix_len;
  ncc->partner = partner->id;
  // Partner hangs under the subnetwork bottom; owner under the main pred.
  net_.jumptable().add(net_.node(sub_pred)->jt_slot,
                       SuccessorRef{partner->id, Side::Left});
  net_.jumptable().add(net_.node(st.pred)->jt_slot,
                       SuccessorRef{ncc->id, Side::Left});
  note_new_node(*ncc, st);
  note_new_node(*partner, st);
  st.pred = ncc->id;
  // arity unchanged.
}

CompiledProduction Builder::add_production(const Production& p) {
  const auto t0 = std::chrono::steady_clock::now();
  BuildState st;
  st.cp.ast = &p;
  st.base_node_count = net_.node_count();
  st.sites.assign(p.num_vars, CompiledProduction::BindSite{});

  for (const Condition& ce : p.conditions) {
    if (ce.is_ncc()) {
      build_ncc(ce, st);
    } else if (ce.negated) {
      build_negative(ce, st);
    } else {
      build_positive(ce, st);
    }
  }

  auto* pn = net_.make_node<ProdNode>();
  pn->prod = &p;
  if (st.cp.share_point == UINT32_MAX) st.cp.share_point = st.pred;
  net_.jumptable().add(net_.node(st.pred)->jt_slot,
                       SuccessorRef{pn->id, Side::Left});
  note_new_node(*pn, st);

  st.cp.pnode = pn->id;
  st.cp.bindings = std::move(st.sites);
  // Drop binding sites that live in negated CEs (they never made it into
  // tokens; sites recorded with negative ce sentinels are already -1/-3 only
  // inside scoped copies, so nothing to do here).
  st.cp.compile_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return std::move(st.cp);
}

}  // namespace psme
