#include "rete/wme.h"

#include <sstream>

namespace psme {

std::string Wme::to_string(const SymbolTable& syms,
                           const ClassSchemas& schemas) const {
  std::ostringstream os;
  os << '(' << syms.name(cls);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].is_nil()) continue;
    const Symbol attr = schemas.attr_name(cls, static_cast<int>(i));
    os << " ^" << (attr.valid() ? syms.name(attr) : "?") << ' '
       << fields[i].to_string(syms);
  }
  os << ')';
  return os.str();
}

}  // namespace psme
