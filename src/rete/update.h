// Run-time update of state for a newly added production (§5.2).
//
// The update re-runs working memory through the normal network under the
// task filter (activations of stateful nodes older than the first new node
// are ignored; see Network::should_execute), then specially executes the
// last shared node, replaying the partial instantiations it stores down to
// the new nodes only. Because it reuses the ordinary task machinery, the
// full parallelism of the match is available to the update — this is what
// Figure 6-9 measures.
//
// Phase order matters and is the caller's contract:
//   A. alpha_seeds, drained with suppress_alpha_left set: fills new alpha
//      memories and the right memories of new two-input nodes fed by them.
//   B. right_seeds, drained: fills right memories of new two-input nodes fed
//      by *old* (shared) alpha memories.
//   C. left_seeds (computed only after A and B have drained), drained: the
//      last-shared-node replay. Left tokens now meet fully-populated right
//      memories, so no match can be missed and no duplicate state is added.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "base/ring.h"
#include "obs/tracer.h"
#include "rete/builder.h"
#include "rete/network.h"

namespace psme {

/// Reusable buffers for the three-phase update. A system that chunks
/// continuously (the paper's whole premise) runs the §5.2 update once per
/// chunk; holding one of these per engine keeps the replay's seed vector,
/// the phase-C output buffer, and the serial drain queue at their high-water
/// capacity instead of reallocating them per addition (the regression test
/// in tests/rete_update_test.cpp asserts the allocation count stays flat).
struct UpdateScratch {
  std::vector<Activation> seeds;
  std::vector<Token> outputs;              // phase-C node_outputs_into target
  RingBuffer<Activation> queue;            // serial drain FIFO
  std::vector<Token> children;             // ExecContext scratch, leased
  std::vector<std::pair<Token, bool>> emissions;
};

/// Phase A seeds: for each new alpha-network chain, every wme of the right
/// class that passes the shared prefix tests is seeded at the chain's entry
/// node. Evaluating the prefix synthetically is the run-time equivalent of
/// the paper's queue filter, under which activations of pre-existing nodes
/// are never executed ("the task queues are changed to ignore tasks with IDs
/// less than the first new node").
std::vector<Activation> update_alpha_seeds(Network& net,
                                           const CompiledProduction& cp,
                                           const std::vector<const Wme*>& wm,
                                           uint32_t agent = 0);

/// Appends into a caller-owned buffer (capacity retained across additions).
void update_alpha_seeds_into(Network& net, const CompiledProduction& cp,
                             const std::vector<const Wme*>& wm,
                             std::vector<Activation>& out, uint32_t agent = 0);

/// Quiescent-only: reads `ms`'s alpha memories without their locks (the §5.2
/// contract — structural add and seeding happen while match is quiescent).
/// The update fills one agent's memories from that agent's WM; a shared
/// network with N attached agents runs the three phases once per agent.
std::vector<Activation> update_right_seeds(Network& net, const MatchState& ms,
                                           const CompiledProduction& cp,
                                           uint32_t agent = 0)
    PSME_NO_THREAD_SAFETY_ANALYSIS;

void update_right_seeds_into(Network& net, const MatchState& ms,
                             const CompiledProduction& cp,
                             std::vector<Activation>& out, uint32_t agent = 0)
    PSME_NO_THREAD_SAFETY_ANALYSIS;

/// Must be called after phases A and B have fully drained.
std::vector<Activation> update_left_seeds(Network& net, const MatchState& ms,
                                          const CompiledProduction& cp,
                                          uint32_t agent = 0);

/// Phase-C replay without per-seed allocation: the share point's stored
/// outputs land in `scratch.outputs`, the seeds in `scratch.seeds` (both
/// cleared first, capacity retained).
void update_left_seeds_into(Network& net, const MatchState& ms,
                            const CompiledProduction& cp,
                            UpdateScratch& scratch, uint32_t agent = 0);

/// Serial convenience used by tests and the incremental-vs-rebuild property
/// checks. Returns the number of tasks executed.
uint64_t run_update_serial(Network& net, MatchState& ms,
                           const CompiledProduction& cp,
                           const std::vector<const Wme*>& wm);

/// Same, draining through caller-owned scratch so repeated run-time
/// additions stop paying per-addition heap traffic. A non-null `tracer`
/// records one UpdateA/B/C span per phase into `track` (the engine track),
/// so Perfetto shows exactly where a chunk's state update spent its time.
uint64_t run_update_serial(Network& net, MatchState& ms,
                           const CompiledProduction& cp,
                           const std::vector<const Wme*>& wm,
                           UpdateScratch& scratch,
                           obs::Tracer* tracer = nullptr, size_t track = 0);

}  // namespace psme
