// The two global hash tables that hold all two-input-node memory state.
//
// Following PSM-E (§6.1 of the paper):
//   * one table holds every *left* memory entry (partial-instantiation tokens
//     waiting at a two-input node's left input, plus the not/NCC counters),
//   * the second table holds every *right* memory entry (wmes specialized to
//     a two-input node's right input),
//   * the hash function covers (1) the variable bindings tested for equality
//     at the destination two-input node and (2) that node's unique id,
//   * a *line* is the pair of corresponding left/right buckets; one lock
//     guards a line.
//
// Because a left token and a right wme that can pass the node's equality
// tests hash identically, insert-then-probe under the single line lock is
// atomic: concurrent left/right arrivals serialize on the line and cannot
// miss each other. This is the property the paper's locking design exists to
// provide, and it is why the parallel matcher needs no other match-state
// locks.
//
// Conjugate token pairs: a not/NCC node can emit an insertion and the
// matching deletion of the same token within one cycle (the pair is created
// in order under that node's line lock, but the two downstream tasks race).
// When the deletion overtakes its insertion at a downstream memory, the
// deletion finds nothing to erase; dropping it would let the late insertion
// install a token that should no longer exist. Instead the deletion leaves
// an *anti-entry* (`anti > 0`) and emits nothing; the conjugate insertion
// cancels against it and also emits nothing (net effect zero, equal to the
// in-order execution). Anti-entries are invisible to probes and exist only
// while a cycle is in flight — at quiescence every conjugate has met its
// partner and no anti-entry remains.
#pragma once

#include <cstdint>
#include <vector>

#include "base/chunk_list.h"
#include "base/thread_annotations.h"
#include "par/spinlock.h"
#include "rete/token.h"

namespace psme {

struct LeftEntry {
  uint64_t full_hash = 0;   // binding hash incl. node id (pre-modulo)
  uint32_t node_id = 0;     // destination two-input node
  int32_t neg_count = 0;    // Not: matching right wmes; Ncc: subnetwork matches
  bool ncc_present = false; // Ncc: left token has arrived and not been deleted
  bool ncc_emitted = false; // Ncc: an add has been sent downstream
  uint8_t tag = 0;          // BJoin: 1 = left-side token, 2 = right-side token
  Token token;
  int32_t anti = 0;  // pending conjugate deletions that overtook their insert
};

struct RightEntry {
  uint64_t full_hash = 0;
  uint32_t node_id = 0;
  const Wme* wme = nullptr;
};

/// Right entries live in recycled chunks (base/chunk_list.h) instead of one
/// heap vector per line: the right-probe scan walks contiguous chunk
/// payloads, and a line whose population shrinks hands its chunks to lines
/// that grow — zero steady-state heap traffic on the paper's dominant path.
constexpr size_t kRightEntriesPerChunk = 8;
using RightEntryList = ChunkedList<RightEntry, kRightEntriesPerChunk>;
using RightEntryPool = ChunkPool<RightEntry, kRightEntriesPerChunk>;

class PairedHashTables {
 public:
  struct Line {
    Spinlock lock{LockRank::Bucket, "rete-line"};
    std::vector<LeftEntry> left PSME_GUARDED_BY(lock);
    RightEntryList right PSME_GUARDED_BY(lock);
    // Per-cycle access counts, maintained under the line lock; harvested by
    // the trace recorder for the Figure 6-2 contention histogram.
    uint32_t left_accesses_cycle PSME_GUARDED_BY(lock) = 0;
    uint32_t right_accesses_cycle PSME_GUARDED_BY(lock) = 0;

    // All left-entry insertion/erasure goes through these two so the
    // pin/unpin bookkeeping cannot be forgotten at a call site: a left entry
    // outlives the drain that created it, so its token must keep the
    // backing arena chunk alive (Token copies don't re-pin, so vector
    // reallocation and erase-shifting stay balanced).
    void store_left(LeftEntry&& e) PSME_REQUIRES(lock) {
      e.token.pin();
      left.push_back(std::move(e));
    }
    void erase_left(std::vector<LeftEntry>::iterator it) PSME_REQUIRES(lock) {
      it->token.unpin();
      left.erase(it);
    }
  };

  /// `line_count` is rounded up to a power of two.
  explicit PairedHashTables(size_t line_count = 4096);

  [[nodiscard]] size_t line_count() const { return lines_.size(); }

  [[nodiscard]] size_t line_index(uint64_t hash) const {
    return (hash ^ (hash >> 21)) & mask_;
  }

  Line& line_at(size_t index) { return lines_[index]; }
  [[nodiscard]] const Line& line_at(size_t index) const {
    return lines_[index];
  }
  Line& line_for(uint64_t hash) { return lines_[line_index(hash)]; }

  /// Shared chunk recycler for every line's right-entry list. Callers pass
  /// it to RightEntryList mutators while holding the line's Bucket lock;
  /// the pool's own lock ranks SlabPool, strictly above Bucket.
  [[nodiscard]] RightEntryPool& right_pool() { return right_pool_; }
  [[nodiscard]] const RightEntryPool& right_pool() const {
    return right_pool_;
  }

  /// Collects nonzero (left, right) per-cycle access counts and resets them.
  struct LineAccess {
    uint32_t line;
    uint32_t left;
    uint32_t right;
  };
  /// Quiescent-only (between cycles): reads the guarded counters without the
  /// line locks, relying on the worker join for ordering.
  std::vector<LineAccess> harvest_cycle_accesses()
      PSME_NO_THREAD_SAFETY_ANALYSIS;

  /// Zeroes the per-cycle access counters without building the harvest
  /// vector; the non-recording serial executor uses this so a no-trace
  /// cycle stays allocation-free. Quiescent-only, like harvest.
  void reset_cycle_accesses() PSME_NO_THREAD_SAFETY_ANALYSIS;

  /// Total entries (diagnostics / tests). Quiescent-only.
  [[nodiscard]] size_t total_left_entries() const
      PSME_NO_THREAD_SAFETY_ANALYSIS;
  [[nodiscard]] size_t total_right_entries() const
      PSME_NO_THREAD_SAFETY_ANALYSIS;

  /// Sum of spins over all line locks (diagnostics for the threaded matcher).
  [[nodiscard]] uint64_t total_lock_spins() const;

  /// Enumerates left entries belonging to `node_id`. Not synchronized with
  /// concurrent match; callers use it only between cycles (the §5.2 update
  /// runs when match is quiescent).
  template <typename Fn>
  void for_each_left_of(uint32_t node_id,
                        Fn&& fn) const PSME_NO_THREAD_SAFETY_ANALYSIS {
    for (const auto& ln : lines_)
      for (const auto& e : ln.left)
        if (e.node_id == node_id) fn(e);
  }

  template <typename Fn>
  void for_each_right_of(uint32_t node_id,
                         Fn&& fn) const PSME_NO_THREAD_SAFETY_ANALYSIS {
    for (const auto& ln : lines_)
      for (const auto& e : ln.right)
        if (e.node_id == node_id) fn(e);
  }

  /// Enumerates every entry's destination node id (the network verifier's
  /// stale-entry sweep); `left` says which table the entry lives in.
  /// Quiescent-only, like the per-node enumerators.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const PSME_NO_THREAD_SAFETY_ANALYSIS {
    for (const auto& ln : lines_) {
      for (const auto& e : ln.left) fn(e.node_id, /*left=*/true);
      for (const auto& e : ln.right) fn(e.node_id, /*left=*/false);
    }
  }

  /// Production removal's memory drain: erases every entry, left and right,
  /// whose destination node is marked in `dead` (indexed by node id).
  /// Left erasure goes through erase_left so the token unpins — that unpin
  /// is what lets the next epoch boundary reclaim the removed production's
  /// partial instantiations. Quiescent-only, like the enumerators (the
  /// engine calls it between the unsplice publish and free_node).
  struct PurgeCounts {
    size_t left = 0;
    size_t right = 0;
  };
  PurgeCounts purge_nodes(const std::vector<uint8_t>& dead)
      PSME_NO_THREAD_SAFETY_ANALYSIS;

 private:
  std::vector<Line> lines_;
  RightEntryPool right_pool_;
  size_t mask_ = 0;
};

}  // namespace psme
