// Run-time production removal: the planning half.
//
// Removal is the dual of the §5.1/§5.2 run-time addition. Where addition
// splices new successor entries into existing jumptable slots under a COW
// edit, removal erases every entry that targets a node only the victim
// production reaches, and publishes the erasure at the same quiescent safe
// point. The hard part is deciding *which* nodes die: productions share
// prefixes (the builder reuses alpha chains, alpha memories, and join
// prefixes across productions), and a production added later may share nodes
// with one added earlier — so the victim's own compile record is not enough
// to tell owned from shared. The planner instead computes the keep-set by a
// backward walk over the live network from every surviving P-node; whatever
// the walk never reaches is owned by the victim alone and dies with it.
//
// The planner only reads; Engine::remove_production_runtime sequences the
// actual unsplice/drain/free (see engine/engine.cpp for the protocol and
// DESIGN.md §14 for why the order is what it is).
#pragma once

#include <cstdint>
#include <vector>

#include "rete/network.h"

namespace psme {

/// What dies when one production is removed. Produced by plan_removal from
/// the live (pre-COW) network; consumed by Jumptable::erase_refs (the mask),
/// the per-agent memory drains (node list + alpha mem indexes), and
/// Network::free_node (node list).
struct RemovePlan {
  uint32_t pnode = 0;                    // the victim's P-node id
  std::vector<uint32_t> dead_nodes;      // ascending id order; includes pnode
  std::vector<uint8_t> dead_mask;        // indexed by node id, 1 = dies
  std::vector<uint32_t> dead_alpha_mems; // mem_index of each dying alpha mem
};

/// Computes the dead-set for removing the production terminated by
/// `victim_pnode`: a backward BFS over jumptable in-edges (plus the
/// synthetic NCC partner→owner edge, which carries counts outside the
/// jumptable) seeded from every other live P-node marks the keep-set;
/// everything live outside it is dead. The victim's P-node is always dead
/// (P-nodes have no successors, so nothing can keep one alive but itself).
[[nodiscard]] RemovePlan plan_removal(const Network& net,
                                      uint32_t victim_pnode);

}  // namespace psme
