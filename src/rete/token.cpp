#include "rete/token.h"

#include <sstream>

namespace psme {

std::string token_to_string(const TokenData& t, const SymbolTable& syms,
                            const ClassSchemas& schemas) {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) os << ' ';
    os << t[i]->to_string(syms, schemas);
  }
  os << ')';
  return os.str();
}

}  // namespace psme
