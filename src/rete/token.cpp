#include "rete/token.h"

#include <sstream>

namespace psme {
namespace {

std::string span_to_string(const Wme* const* p, size_t n,
                           const SymbolTable& syms,
                           const ClassSchemas& schemas) {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < n; ++i) {
    if (i) os << ' ';
    os << p[i]->to_string(syms, schemas);
  }
  os << ')';
  return os.str();
}

}  // namespace

std::string token_to_string(const Token& t, const SymbolTable& syms,
                            const ClassSchemas& schemas) {
  return span_to_string(t.begin(), t.size(), syms, schemas);
}

std::string token_to_string(const TokenData& t, const SymbolTable& syms,
                            const ClassSchemas& schemas) {
  return span_to_string(t.data(), t.size(), syms, schemas);
}

}  // namespace psme
