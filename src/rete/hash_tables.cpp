#include "rete/hash_tables.h"

namespace psme {
namespace {
size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

PairedHashTables::PairedHashTables(size_t line_count)
    : lines_(round_up_pow2(line_count == 0 ? 1 : line_count)),
      mask_(lines_.size() - 1) {}

std::vector<PairedHashTables::LineAccess>
PairedHashTables::harvest_cycle_accesses() {
  std::vector<LineAccess> out;
  for (size_t i = 0; i < lines_.size(); ++i) {
    Line& ln = lines_[i];
    if (ln.left_accesses_cycle != 0 || ln.right_accesses_cycle != 0) {
      out.push_back({static_cast<uint32_t>(i), ln.left_accesses_cycle,
                     ln.right_accesses_cycle});
      ln.left_accesses_cycle = 0;
      ln.right_accesses_cycle = 0;
    }
  }
  return out;
}

void PairedHashTables::reset_cycle_accesses() {
  for (Line& ln : lines_) {
    ln.left_accesses_cycle = 0;
    ln.right_accesses_cycle = 0;
  }
}

size_t PairedHashTables::total_left_entries() const {
  size_t n = 0;
  for (const auto& ln : lines_) n += ln.left.size();
  return n;
}

size_t PairedHashTables::total_right_entries() const {
  size_t n = 0;
  for (const auto& ln : lines_) n += ln.right.size();
  return n;
}

PairedHashTables::PurgeCounts PairedHashTables::purge_nodes(
    const std::vector<uint8_t>& dead) {
  const auto is_dead = [&](uint32_t node_id) {
    return node_id < dead.size() && dead[node_id] != 0;
  };
  PurgeCounts counts;
  // Right entries survive via collect-clear-repush rather than in-place
  // erase: ChunkedList::erase can release an emptied tail chunk to the pool,
  // which makes continuing a chunk walk after an erase unsafe. The scratch
  // vector's capacity is reused across lines.
  std::vector<RightEntry> survivors;
  for (Line& ln : lines_) {
    for (size_t i = ln.left.size(); i-- > 0;) {
      if (is_dead(ln.left[i].node_id)) {
        ln.erase_left(ln.left.begin() + static_cast<ptrdiff_t>(i));
        ++counts.left;
      }
    }
    bool any_right_dead = false;
    for (const RightEntry& e : ln.right) {
      if (is_dead(e.node_id)) {
        any_right_dead = true;
        break;
      }
    }
    if (!any_right_dead) continue;
    survivors.clear();
    for (const RightEntry& e : ln.right) {
      if (!is_dead(e.node_id)) survivors.push_back(e);
    }
    counts.right += ln.right.size() - survivors.size();
    ln.right.clear(right_pool_);
    for (const RightEntry& e : survivors) ln.right.push_back(e, right_pool_);
  }
  return counts;
}

uint64_t PairedHashTables::total_lock_spins() const {
  uint64_t n = 0;
  for (const auto& ln : lines_) n += ln.lock.total_spins();
  return n;
}

}  // namespace psme
