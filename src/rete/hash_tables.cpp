#include "rete/hash_tables.h"

namespace psme {
namespace {
size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

PairedHashTables::PairedHashTables(size_t line_count)
    : lines_(round_up_pow2(line_count == 0 ? 1 : line_count)),
      mask_(lines_.size() - 1) {}

std::vector<PairedHashTables::LineAccess>
PairedHashTables::harvest_cycle_accesses() {
  std::vector<LineAccess> out;
  for (size_t i = 0; i < lines_.size(); ++i) {
    Line& ln = lines_[i];
    if (ln.left_accesses_cycle != 0 || ln.right_accesses_cycle != 0) {
      out.push_back({static_cast<uint32_t>(i), ln.left_accesses_cycle,
                     ln.right_accesses_cycle});
      ln.left_accesses_cycle = 0;
      ln.right_accesses_cycle = 0;
    }
  }
  return out;
}

void PairedHashTables::reset_cycle_accesses() {
  for (Line& ln : lines_) {
    ln.left_accesses_cycle = 0;
    ln.right_accesses_cycle = 0;
  }
}

size_t PairedHashTables::total_left_entries() const {
  size_t n = 0;
  for (const auto& ln : lines_) n += ln.left.size();
  return n;
}

size_t PairedHashTables::total_right_entries() const {
  size_t n = 0;
  for (const auto& ln : lines_) n += ln.right.size();
  return n;
}

uint64_t PairedHashTables::total_lock_spins() const {
  uint64_t n = 0;
  for (const auto& ln : lines_) n += ln.lock.total_spins();
  return n;
}

}  // namespace psme
