// Production storage and the run-time add facade.
//
// Production ASTs must outlive the network (P-nodes point at them), so the
// engine adopts parsed productions into a ProductionStore. AddRecord couples
// an AST with its compilation result; the engine and the Soar kernel keep one
// per production, including chunks added at run time.
#pragma once

#include <memory>
#include <vector>

#include "lang/ast.h"
#include "rete/builder.h"

namespace psme {

class ProductionStore {
 public:
  ProductionStore() = default;
  ProductionStore(const ProductionStore&) = delete;
  ProductionStore& operator=(const ProductionStore&) = delete;

  const Production* adopt(Production&& p) {
    owned_.push_back(std::make_unique<Production>(std::move(p)));
    return owned_.back().get();
  }

  [[nodiscard]] size_t size() const { return owned_.size(); }
  [[nodiscard]] const Production* at(size_t i) const { return owned_[i].get(); }

  /// Drops the AST of a removed production (swap-with-last; order within the
  /// store is not meaningful). Returns false if `p` was never adopted here.
  /// Only valid once every pointer into the AST is gone — the engine calls
  /// it after the P-node and its record are destroyed.
  bool release(const Production* p) {
    for (size_t i = 0; i < owned_.size(); ++i) {
      if (owned_[i].get() == p) {
        if (i + 1 != owned_.size()) owned_[i] = std::move(owned_.back());
        owned_.pop_back();
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<Production>> owned_;
};

/// One production as known to the engine.
struct AddRecord {
  const Production* ast = nullptr;
  CompiledProduction compiled;
};

}  // namespace psme
