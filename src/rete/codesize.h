// Run-time code generation emulation.
//
// PSM-E's run-time compiler emitted OPS83-style machine code directly into
// shared memory (§5.1). We cannot emit NS32032 code, so the portable
// equivalent "generates" a byte image per node whose size follows the paper's
// reported inline-expansion footprints (~250 bytes per two-input node,
// Table 5-1). Generation writes every byte, so generation *time* scales with
// generated size the way the real compiler's did — that relationship is what
// Table 5-2 measures (shared compile time < unshared, because sharing
// generates less code even after paying for the sharing search).
#pragma once

#include <cstdint>
#include <vector>

#include "rete/nodes.h"

namespace psme {

/// Modeled machine-code bytes for `n`.
[[nodiscard]] size_t modeled_node_bytes(const Node& n);

/// Appends the modeled code image for `n` to `image` (deterministic bytes).
void generate_code(const Node& n, std::vector<uint8_t>& image);

}  // namespace psme
