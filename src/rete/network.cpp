#include "rete/network.h"

#include <algorithm>
#include <cassert>

namespace psme {

Network::Network(SymbolTable& syms, ClassSchemas& schemas)
    : syms_(syms), schemas_(schemas) {}

uint32_t Network::root_slot(Symbol cls) {
  auto it = roots_.find(cls);
  if (it != roots_.end()) return it->second;
  const uint32_t slot = jt_.new_slot();
  roots_.emplace(cls, slot);
  return slot;
}

bool Network::has_root(Symbol cls) const { return roots_.count(cls) != 0; }

void Network::inject(const Wme* w, bool add, ExecContext& ctx) {
  auto it = roots_.find(w->cls);
  if (it == roots_.end()) return;  // no production tests this class
  for (const SuccessorRef& s : jt_.succs(it->second)) {
    Activation a{s.node, s.side, add, Token{w}};
    a.agent = ctx.agent;
    ctx.emit(std::move(a));
  }
}

void Network::emit_succs(uint32_t jt_slot, const Token& token, bool add,
                         ExecContext& ctx, bool from_alpha) {
  for (const SuccessorRef& s : jt_.succs(jt_slot)) {
    if (from_alpha && ctx.suppress_alpha_left && s.side == Side::Left) continue;
    ++ctx.stats.emits;
    Activation a{s.node, s.side, add, token};
    a.agent = ctx.agent;  // children stay inside the emitting agent's state
    ctx.emit(std::move(a));
  }
}

void Network::execute(const Activation& act, ExecContext& ctx) {
  Node* n = nodes_[act.node].get();
  switch (n->type) {
    case NodeType::Const:
      exec_const(static_cast<const ConstNode&>(*n), act, ctx);
      break;
    case NodeType::Disj:
      exec_disj(static_cast<const DisjNode&>(*n), act, ctx);
      break;
    case NodeType::Intra:
      exec_intra(static_cast<const IntraNode&>(*n), act, ctx);
      break;
    case NodeType::BJoin:
      exec_bjoin(static_cast<const BJoinNode&>(*n), act, ctx);
      break;
    case NodeType::AlphaMem:
      exec_alpha(static_cast<const AlphaMemNode&>(*n), act, ctx);
      break;
    case NodeType::Join:
      exec_join(static_cast<const JoinNode&>(*n), act, ctx);
      break;
    case NodeType::Not:
      exec_not(static_cast<const NotNode&>(*n), act, ctx);
      break;
    case NodeType::Ncc:
      exec_ncc(static_cast<const NccNode&>(*n), act, ctx);
      break;
    case NodeType::NccPartner:
      exec_partner(static_cast<const NccPartnerNode&>(*n), act, ctx);
      break;
    case NodeType::Prod:
      exec_prod(static_cast<const ProdNode&>(*n), act, ctx);
      break;
  }
}

void Network::exec_const(const ConstNode& n, const Activation& a,
                         ExecContext& ctx) {
  ++ctx.stats.tests;
  const Wme* w = a.token.front();
  if (eval_pred(n.test.pred, w->field(n.test.slot), n.test.value)) {
    emit_succs(n.jt_slot, a.token, a.add, ctx);
  }
}

void Network::exec_disj(const DisjNode& n, const Activation& a,
                        ExecContext& ctx) {
  const Wme* w = a.token.front();
  const Value v = w->field(n.test.slot);
  for (const Value& opt : n.test.options) {
    ++ctx.stats.tests;
    if (v == opt) {
      emit_succs(n.jt_slot, a.token, a.add, ctx);
      return;
    }
  }
}

void Network::exec_intra(const IntraNode& n, const Activation& a,
                         ExecContext& ctx) {
  ++ctx.stats.tests;
  const Wme* w = a.token.front();
  if (eval_pred(n.pred, w->field(n.slot_a), w->field(n.slot_b))) {
    emit_succs(n.jt_slot, a.token, a.add, ctx);
  }
}

void Network::exec_bjoin(const BJoinNode& n, const Activation& a,
                         ExecContext& ctx) {
  // Side encodes which sub-result the token comes from. Both sides store in
  // the left table under the shared-prefix identity hash; a child token is
  // left ++ right[prefix_len:], and the two sides agree on the prefix by
  // construction (identical wme pointers).
  MatchState& ms = state_of(ctx);
  const uint64_t h = n.hash_prefix(a.token);
  const size_t li = ms.tables.line_index(h);
  auto& line = ms.tables.line_at(li);
  const uint8_t my_tag = a.side == Side::Left ? 1 : 2;
  const uint8_t other_tag = a.side == Side::Left ? 2 : 1;
  auto& children = ctx.scratch_children;
  children.clear();
  {
    SpinGuard g(line.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ctx.stats.touched_line = true;
    ctx.stats.line = static_cast<uint32_t>(li);
    ctx.stats.line_side = a.side;
    if (a.side == Side::Left) {
      ++line.left_accesses_cycle;
    } else {
      ++line.right_accesses_cycle;
    }
    ++ctx.stats.inserts;
    if (a.add) {
      // Cancel against a conjugate deletion that overtook this insertion.
      for (auto it = line.left.begin(); it != line.left.end(); ++it) {
        if (it->node_id == n.id && it->tag == my_tag && it->anti > 0 &&
            it->full_hash == h && it->token == a.token) {
          line.erase_left(it);
          return;
        }
      }
      line.store_left(LeftEntry{h, n.id, 0, false, false, my_tag, a.token});
    } else {
      bool found = false;
      for (auto it = line.left.begin(); it != line.left.end(); ++it) {
        if (it->node_id == n.id && it->tag == my_tag && it->anti == 0 &&
            it->full_hash == h && it->token == a.token) {
          line.erase_left(it);
          found = true;
          break;
        }
      }
      if (!found) {
        LeftEntry anti{h, n.id, 0, false, false, my_tag, a.token};
        anti.anti = 1;
        line.store_left(std::move(anti));
        return;
      }
    }
    for (const LeftEntry& e : line.left) {
      ++ctx.stats.probes;
      if (e.node_id != n.id || e.tag != other_tag || e.anti > 0 ||
          e.full_hash != h) {
        continue;
      }
      // Verify the shared prefix is identical (hash collisions).
      bool same = true;
      for (uint32_t i = 0; i < n.prefix_len; ++i) {
        ++ctx.stats.tests;
        if (e.token[i] != a.token[i]) {
          same = false;
          break;
        }
      }
      if (!same) continue;
      const Token& l = a.side == Side::Left ? a.token : e.token;
      const Token& r = a.side == Side::Left ? e.token : a.token;
      children.push_back(
          token_concat(l, r, n.prefix_len, ms.arena, ctx.worker));
    }
  }
  for (auto& c : children) emit_succs(n.jt_slot, c, a.add, ctx);
}

void Network::exec_alpha(const AlphaMemNode& n, const Activation& a,
                         ExecContext& ctx) {
  MatchState& ms = state_of(ctx);
  AlphaMemState& am = ms.alpha(n.mem_index);
  const Wme* w = a.token.front();
  {
    SpinGuard g(am.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ++ctx.stats.inserts;
    if (a.add) {
      am.wmes.push_back(w, ms.alpha_pool);
    } else {
      for (auto it = am.wmes.begin(); it != am.wmes.end(); ++it) {
        if (*it == w) {
          am.wmes.erase(it, ms.alpha_pool);
          break;
        }
      }
    }
  }
  emit_succs(n.jt_slot, a.token, a.add, ctx, /*from_alpha=*/true);
}

void Network::exec_join(const JoinNode& n, const Activation& a,
                        ExecContext& ctx) {
  MatchState& ms = state_of(ctx);
  auto& children = ctx.scratch_children;
  children.clear();
  if (a.side == Side::Left) {
    const uint64_t h = n.hash_left(a.token);
    const size_t li = ms.tables.line_index(h);
    auto& line = ms.tables.line_at(li);
    SpinGuard g(line.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ctx.stats.touched_line = true;
    ctx.stats.line = static_cast<uint32_t>(li);
    ctx.stats.line_side = Side::Left;
    ++line.left_accesses_cycle;
    ++ctx.stats.inserts;
    if (a.add) {
      // A conjugate deletion that overtook this insertion cancels it; both
      // halves emit nothing (see the anti-entry note in hash_tables.h).
      for (auto it = line.left.begin(); it != line.left.end(); ++it) {
        if (it->node_id == n.id && it->anti > 0 && it->full_hash == h &&
            it->token == a.token) {
          line.erase_left(it);
          return;
        }
      }
      line.store_left(LeftEntry{h, n.id, 0, false, false, 0, a.token});
    } else {
      bool found = false;
      for (auto it = line.left.begin(); it != line.left.end(); ++it) {
        if (it->node_id == n.id && it->anti == 0 && it->full_hash == h &&
            it->token == a.token) {
          line.erase_left(it);
          found = true;
          break;
        }
      }
      if (!found) {
        // Deletion before its conjugate insertion: leave an anti-entry for
        // the insertion to cancel against, and emit nothing.
        LeftEntry anti{h, n.id, 0, false, false, 0, a.token};
        anti.anti = 1;
        line.store_left(std::move(anti));
        return;
      }
    }
    for (const RightEntry& r : line.right) {
      ++ctx.stats.probes;
      if (r.node_id != n.id || r.full_hash != h) continue;
      if (n.tests_pass(a.token, r.wme, &ctx.stats.tests)) {
        children.push_back(token_extend(a.token, r.wme, ms.arena, ctx.worker));
      }
    }
  } else {
    const Wme* w = a.token.front();
    const uint64_t h = n.hash_right(w);
    const size_t li = ms.tables.line_index(h);
    auto& line = ms.tables.line_at(li);
    SpinGuard g(line.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ctx.stats.touched_line = true;
    ctx.stats.line = static_cast<uint32_t>(li);
    ctx.stats.line_side = Side::Right;
    ++line.right_accesses_cycle;
    ++ctx.stats.inserts;
    if (a.add) {
      line.right.push_back(RightEntry{h, n.id, w}, ms.tables.right_pool());
    } else {
      for (auto it = line.right.begin(); it != line.right.end(); ++it) {
        if (it->node_id == n.id && it->wme == w) {
          line.right.erase(it, ms.tables.right_pool());
          break;
        }
      }
    }
    for (const LeftEntry& l : line.left) {
      ++ctx.stats.probes;
      if (l.node_id != n.id || l.anti > 0 || l.full_hash != h) continue;
      if (n.tests_pass(l.token, w, &ctx.stats.tests)) {
        children.push_back(token_extend(l.token, w, ms.arena, ctx.worker));
      }
    }
  }
  // Emit outside the line lock: children go to other nodes' lines.
  for (auto& c : children) emit_succs(n.jt_slot, c, a.add, ctx);
}

void Network::exec_not(const NotNode& n, const Activation& a,
                       ExecContext& ctx) {
  // A not-node passes its left token through unchanged iff no right wme
  // matches it. Counts live in the left entries.
  MatchState& ms = state_of(ctx);
  auto& emissions = ctx.scratch_emissions;
  emissions.clear();
  if (a.side == Side::Left) {
    const uint64_t h = n.hash_left(a.token);
    const size_t li = ms.tables.line_index(h);
    auto& line = ms.tables.line_at(li);
    SpinGuard g(line.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ctx.stats.touched_line = true;
    ctx.stats.line = static_cast<uint32_t>(li);
    ctx.stats.line_side = Side::Left;
    ++line.left_accesses_cycle;
    ++ctx.stats.inserts;
    if (a.add) {
      // Cancel against a conjugate deletion that overtook this insertion.
      bool cancelled = false;
      for (auto it = line.left.begin(); it != line.left.end(); ++it) {
        if (it->node_id == n.id && it->anti > 0 && it->full_hash == h &&
            it->token == a.token) {
          line.erase_left(it);
          cancelled = true;
          break;
        }
      }
      if (!cancelled) {
        int32_t count = 0;
        for (const RightEntry& r : line.right) {
          ++ctx.stats.probes;
          if (r.node_id != n.id || r.full_hash != h) continue;
          if (n.tests_pass(a.token, r.wme, &ctx.stats.tests)) ++count;
        }
        line.store_left(LeftEntry{h, n.id, count, false, false, 0, a.token});
        if (count == 0) emissions.emplace_back(a.token, true);
      }
    } else {
      bool found = false;
      for (auto it = line.left.begin(); it != line.left.end(); ++it) {
        if (it->node_id == n.id && it->anti == 0 && it->full_hash == h &&
            it->token == a.token) {
          if (it->neg_count == 0) emissions.emplace_back(a.token, false);
          line.erase_left(it);
          found = true;
          break;
        }
      }
      if (!found) {
        LeftEntry anti{h, n.id, 0, false, false, 0, a.token};
        anti.anti = 1;
        line.store_left(std::move(anti));
      }
    }
  } else {
    const Wme* w = a.token.front();
    const uint64_t h = n.hash_right(w);
    const size_t li = ms.tables.line_index(h);
    auto& line = ms.tables.line_at(li);
    SpinGuard g(line.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ctx.stats.touched_line = true;
    ctx.stats.line = static_cast<uint32_t>(li);
    ctx.stats.line_side = Side::Right;
    ++line.right_accesses_cycle;
    ++ctx.stats.inserts;
    if (a.add) {
      line.right.push_back(RightEntry{h, n.id, w}, ms.tables.right_pool());
      for (LeftEntry& l : line.left) {
        ++ctx.stats.probes;
        if (l.node_id != n.id || l.anti > 0 || l.full_hash != h) continue;
        if (n.tests_pass(l.token, w, &ctx.stats.tests)) {
          if (++l.neg_count == 1) emissions.emplace_back(l.token, false);
        }
      }
    } else {
      for (auto it = line.right.begin(); it != line.right.end(); ++it) {
        if (it->node_id == n.id && it->wme == w) {
          line.right.erase(it, ms.tables.right_pool());
          break;
        }
      }
      for (LeftEntry& l : line.left) {
        ++ctx.stats.probes;
        if (l.node_id != n.id || l.anti > 0 || l.full_hash != h) continue;
        if (n.tests_pass(l.token, w, &ctx.stats.tests)) {
          if (--l.neg_count == 0) emissions.emplace_back(l.token, true);
        }
      }
    }
  }
  for (auto& [tok, add] : emissions) emit_succs(n.jt_slot, tok, add, ctx);
}

void Network::exec_ncc(const NccNode& n, const Activation& a,
                       ExecContext& ctx) {
  MatchState& ms = state_of(ctx);
  const uint64_t h = n.hash_prefix(a.token);
  const size_t li = ms.tables.line_index(h);
  auto& line = ms.tables.line_at(li);
  auto& emissions = ctx.scratch_emissions;
  emissions.clear();
  {
    SpinGuard g(line.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ctx.stats.touched_line = true;
    ctx.stats.line = static_cast<uint32_t>(li);
    ctx.stats.line_side = Side::Left;
    ++line.left_accesses_cycle;
    ++ctx.stats.inserts;
    LeftEntry* entry = nullptr;
    for (LeftEntry& e : line.left) {
      ++ctx.stats.probes;
      if (e.node_id == n.id && e.full_hash == h && e.token == a.token) {
        entry = &e;
        break;
      }
    }
    if (a.add) {
      if (entry != nullptr && entry->anti > 0) {
        // Cancel against a conjugate deletion that overtook this insertion.
        --entry->anti;
        if (entry->anti == 0 && !entry->ncc_present &&
            entry->neg_count == 0) {
          line.erase_left(line.left.begin() + (entry - line.left.data()));
        }
      } else {
        if (entry == nullptr) {
          line.store_left(LeftEntry{h, n.id, 0, false, false, 0, a.token});
          entry = &line.left.back();
        }
        entry->ncc_present = true;
        if (entry->neg_count == 0 && !entry->ncc_emitted) {
          entry->ncc_emitted = true;
          emissions.emplace_back(a.token, true);
        }
      }
    } else if (entry == nullptr || !entry->ncc_present) {
      // Deletion before its conjugate insertion (the entry may exist already
      // as a partner-created placeholder): hold it as a pending anti.
      if (entry == nullptr) {
        line.store_left(LeftEntry{h, n.id, 0, false, false, 0, a.token});
        entry = &line.left.back();
      }
      ++entry->anti;
    } else {
      entry->ncc_present = false;
      if (entry->ncc_emitted) {
        entry->ncc_emitted = false;
        emissions.emplace_back(a.token, false);
      }
      if (entry->neg_count == 0 && entry->anti == 0) {
        line.erase_left(line.left.begin() + (entry - line.left.data()));
      }
    }
  }
  for (auto& [tok, add] : emissions) emit_succs(n.jt_slot, tok, add, ctx);
}

void Network::exec_partner(const NccPartnerNode& n, const Activation& a,
                           ExecContext& ctx) {
  MatchState& ms = state_of(ctx);
  const NccNode& owner = static_cast<const NccNode&>(*nodes_[n.owner]);
  const Token prefix = token_prefix(a.token, n.prefix_len, ms.arena,
                                    ctx.worker);
  const uint64_t h = owner.hash_prefix(prefix);
  const size_t li = ms.tables.line_index(h);
  auto& line = ms.tables.line_at(li);
  auto& emissions = ctx.scratch_emissions;
  emissions.clear();
  {
    SpinGuard g(line.lock);
    ctx.stats.lock_spins += static_cast<uint32_t>(g.spins());
    ctx.stats.touched_line = true;
    ctx.stats.line = static_cast<uint32_t>(li);
    ctx.stats.line_side = Side::Left;
    ++line.left_accesses_cycle;
    ++ctx.stats.inserts;
    LeftEntry* entry = nullptr;
    for (LeftEntry& e : line.left) {
      ++ctx.stats.probes;
      if (e.node_id == owner.id && e.full_hash == h && e.token == prefix) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr) {
      // Subnetwork result arrived before the owner's left activation.
      line.store_left(LeftEntry{h, owner.id, 0, false, false, 0, prefix});
      entry = &line.left.back();
    }
    if (a.add) {
      ++entry->neg_count;
      if (entry->ncc_present && entry->neg_count == 1 && entry->ncc_emitted) {
        entry->ncc_emitted = false;
        emissions.emplace_back(prefix, false);
      }
    } else {
      --entry->neg_count;
      if (entry->neg_count == 0) {
        if (entry->ncc_present && !entry->ncc_emitted) {
          entry->ncc_emitted = true;
          emissions.emplace_back(prefix, true);
        } else if (!entry->ncc_present && entry->anti == 0) {
          line.erase_left(line.left.begin() + (entry - line.left.data()));
        }
      }
    }
  }
  // Emissions flow from the owner NCC node's successors.
  for (auto& [tok, add] : emissions) emit_succs(owner.jt_slot, tok, add, ctx);
}

void Network::exec_prod(const ProdNode& n, const Activation& a,
                        ExecContext& ctx) {
  MatchSink* sink = state_of(ctx).sink;
  if (sink == nullptr) return;
  if (a.add) {
    sink->on_insert(n, a.token);
  } else {
    sink->on_retract(n, a.token);
  }
}

std::vector<Token> Network::node_outputs(uint32_t node_id,
                                         const MatchState& ms) const {
  std::vector<Token> out;
  node_outputs_into(node_id, ms, out);
  return out;
}

void Network::node_outputs_into(uint32_t node_id, const MatchState& ms,
                                std::vector<Token>& out) const {
  const Node* n = nodes_[node_id].get();
  switch (n->type) {
    case NodeType::AlphaMem: {
      const auto& am = static_cast<const AlphaMemNode&>(*n);
      for (const Wme* w : ms.alpha(am.mem_index).wmes) out.push_back(Token{w});
      break;
    }
    case NodeType::Join: {
      const auto& j = static_cast<const JoinNode&>(*n);
      ms.tables.for_each_left_of(n->id, [&](const LeftEntry& l) {
        if (l.anti > 0) return;
        ms.tables.for_each_right_of(n->id, [&](const RightEntry& r) {
          if (l.full_hash == r.full_hash && j.tests_pass(l.token, r.wme)) {
            // Quiescent replay: spill from pool 0 (no worker is running).
            out.push_back(token_extend(l.token, r.wme, ms.arena, 0));
          }
        });
      });
      break;
    }
    case NodeType::Not: {
      ms.tables.for_each_left_of(n->id, [&](const LeftEntry& l) {
        if (l.anti == 0 && l.neg_count == 0) out.push_back(l.token);
      });
      break;
    }
    case NodeType::Ncc: {
      ms.tables.for_each_left_of(n->id, [&](const LeftEntry& l) {
        if (l.ncc_present && l.neg_count == 0) out.push_back(l.token);
      });
      break;
    }
    default:
      assert(false && "node_outputs: not a share-point node type");
      break;
  }
}

Network::Census Network::census() const {
  Census c;
  for (const auto& n : nodes_) {
    if (!n) continue;  // tombstone of a removed production's node
    switch (n->type) {
      case NodeType::Const: ++c.consts; break;
      case NodeType::Disj: ++c.disjs; break;
      case NodeType::Intra: ++c.intras; break;
      case NodeType::BJoin: ++c.bjoins; break;
      case NodeType::AlphaMem: ++c.alpha_mems; break;
      case NodeType::Join: ++c.joins; break;
      case NodeType::Not: ++c.nots; break;
      case NodeType::Ncc: ++c.nccs; break;
      case NodeType::NccPartner: ++c.partners; break;
      case NodeType::Prod: ++c.prods; break;
    }
  }
  return c;
}

}  // namespace psme
