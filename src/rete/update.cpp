#include "rete/update.h"

#include <deque>

namespace psme {
namespace {

bool prefix_passes(const AlphaFrontier& f, const Wme* w) {
  for (const ConstTest& t : f.prefix_consts) {
    if (!eval_pred(t.pred, w->field(t.slot), t.value)) return false;
  }
  for (const DisjTest& t : f.prefix_disjs) {
    bool any = false;
    for (const Value& opt : t.options) any |= w->field(t.slot) == opt;
    if (!any) return false;
  }
  for (const IntraTestSpec& t : f.prefix_intras) {
    if (!eval_pred(t.pred, w->field(t.slot_a), w->field(t.slot_b))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Activation> update_alpha_seeds(Network& net,
                                           const CompiledProduction& cp,
                                           const std::vector<const Wme*>& wm) {
  (void)net;
  std::vector<Activation> seeds;
  for (const AlphaFrontier& f : cp.alpha_frontiers) {
    for (const Wme* w : wm) {
      if (w->cls != f.cls) continue;
      if (!prefix_passes(f, w)) continue;
      seeds.push_back(Activation{f.entry_node, Side::Left, true, Token{w}});
    }
  }
  return seeds;
}

std::vector<Activation> update_right_seeds(Network& net,
                                           const CompiledProduction& cp) {
  std::vector<Activation> seeds;
  for (const uint32_t id : cp.new_nodes) {
    const Node* n = net.node(id);
    if (n->type != NodeType::Join && n->type != NodeType::Not) continue;
    const auto* t = static_cast<const TwoInputNode*>(n);
    if (t->alpha_mem >= cp.first_new_id) continue;  // new amem: phase A fed it
    const auto* am = static_cast<const AlphaMemNode*>(net.node(t->alpha_mem));
    for (const Wme* w : am->wmes) {
      seeds.push_back(Activation{id, Side::Right, true, Token{w}});
    }
  }
  return seeds;
}

std::vector<Activation> update_left_seeds(Network& net,
                                          const CompiledProduction& cp) {
  std::vector<Activation> seeds;
  const auto outputs = net.node_outputs(cp.share_point);
  const uint32_t slot = net.node(cp.share_point)->jt_slot;
  for (const SuccessorRef& s : net.jumptable().peek(slot)) {
    if (s.side != Side::Left || s.node < cp.first_new_id) continue;
    for (const Token& t : outputs) {
      seeds.push_back(Activation{s.node, Side::Left, true, t});
    }
  }
  return seeds;
}

namespace {

class DrainCtx final : public ExecContext {
 public:
  explicit DrainCtx(Network& net) : net_(net) {}

  void emit(Activation&& a) override {
    if (net_.should_execute(a, *this)) queue_.push_back(std::move(a));
  }

  uint64_t drain(std::vector<Activation> seeds) {
    uint64_t n = 0;
    for (auto& s : seeds) emit(std::move(s));
    while (!queue_.empty()) {
      Activation a = std::move(queue_.front());
      queue_.pop_front();
      ++n;
      net_.execute(a, *this);
    }
    return n;
  }

 private:
  Network& net_;
  std::deque<Activation> queue_;
};

}  // namespace

uint64_t run_update_serial(Network& net, const CompiledProduction& cp,
                           const std::vector<const Wme*>& wm) {
  // One epoch for the whole three-phase update: the replay seeds built
  // between phases are transient tokens, and opening the epoch before any
  // seed is built keeps them inside the drain's deferral window.
  net.arena().begin_drain(1);
  uint64_t tasks = 0;
  DrainCtx ctx(net);
  ctx.update_mode = true;
  ctx.min_node_id = cp.first_new_id;
  ctx.suppress_alpha_left = true;
  tasks += ctx.drain(update_alpha_seeds(net, cp, wm));
  ctx.suppress_alpha_left = false;
  tasks += ctx.drain(update_right_seeds(net, cp));
  tasks += ctx.drain(update_left_seeds(net, cp));
  net.arena().reclaim_at_quiescence();
  return tasks;
}

}  // namespace psme
