#include "rete/update.h"

namespace psme {
namespace {

bool prefix_passes(const AlphaFrontier& f, const Wme* w) {
  for (const ConstTest& t : f.prefix_consts) {
    if (!eval_pred(t.pred, w->field(t.slot), t.value)) return false;
  }
  for (const DisjTest& t : f.prefix_disjs) {
    bool any = false;
    for (const Value& opt : t.options) any |= w->field(t.slot) == opt;
    if (!any) return false;
  }
  for (const IntraTestSpec& t : f.prefix_intras) {
    if (!eval_pred(t.pred, w->field(t.slot_a), w->field(t.slot_b))) {
      return false;
    }
  }
  return true;
}

Activation tagged(uint32_t node, Side side, bool add, Token token,
                  uint32_t agent) {
  Activation a{node, side, add, token};
  a.agent = agent;
  return a;
}

}  // namespace

void update_alpha_seeds_into(Network& net, const CompiledProduction& cp,
                             const std::vector<const Wme*>& wm,
                             std::vector<Activation>& out, uint32_t agent) {
  (void)net;
  for (const AlphaFrontier& f : cp.alpha_frontiers) {
    for (const Wme* w : wm) {
      if (w->cls != f.cls) continue;
      if (!prefix_passes(f, w)) continue;
      out.push_back(tagged(f.entry_node, Side::Left, true, Token{w}, agent));
    }
  }
}

std::vector<Activation> update_alpha_seeds(Network& net,
                                           const CompiledProduction& cp,
                                           const std::vector<const Wme*>& wm,
                                           uint32_t agent) {
  std::vector<Activation> seeds;
  update_alpha_seeds_into(net, cp, wm, seeds, agent);
  return seeds;
}

void update_right_seeds_into(Network& net, const MatchState& ms,
                             const CompiledProduction& cp,
                             std::vector<Activation>& out, uint32_t agent) {
  for (const uint32_t id : cp.new_nodes) {
    const Node* n = net.node(id);
    if (n->type != NodeType::Join && n->type != NodeType::Not) continue;
    const auto* t = static_cast<const TwoInputNode*>(n);
    if (t->alpha_mem >= cp.first_new_id) continue;  // new amem: phase A fed it
    const auto* am = static_cast<const AlphaMemNode*>(net.node(t->alpha_mem));
    for (const Wme* w : ms.alpha(am->mem_index).wmes) {
      out.push_back(tagged(id, Side::Right, true, Token{w}, agent));
    }
  }
}

std::vector<Activation> update_right_seeds(Network& net, const MatchState& ms,
                                           const CompiledProduction& cp,
                                           uint32_t agent) {
  std::vector<Activation> seeds;
  update_right_seeds_into(net, ms, cp, seeds, agent);
  return seeds;
}

void update_left_seeds_into(Network& net, const MatchState& ms,
                            const CompiledProduction& cp,
                            UpdateScratch& scratch, uint32_t agent) {
  scratch.seeds.clear();
  scratch.outputs.clear();
  net.node_outputs_into(cp.share_point, ms, scratch.outputs);
  const uint32_t slot = net.node(cp.share_point)->jt_slot;
  for (const SuccessorRef& s : net.jumptable().peek(slot)) {
    if (s.side != Side::Left || s.node < cp.first_new_id) continue;
    for (const Token& t : scratch.outputs) {
      scratch.seeds.push_back(tagged(s.node, Side::Left, true, t, agent));
    }
  }
}

std::vector<Activation> update_left_seeds(Network& net, const MatchState& ms,
                                          const CompiledProduction& cp,
                                          uint32_t agent) {
  UpdateScratch scratch;
  update_left_seeds_into(net, ms, cp, scratch, agent);
  return std::move(scratch.seeds);
}

namespace {

/// Serial FIFO drain over a caller-owned ring; leases the scratch's child/
/// emission buffers into the ExecContext so a full three-phase update
/// touches the heap only to raise high-water capacities.
class DrainCtx final : public ExecContext {
 public:
  DrainCtx(Network& net, MatchState& ms, UpdateScratch& scratch)
      : net_(net), scratch_(scratch) {
    state = &ms;
    scratch_children.swap(scratch_.children);
    scratch_emissions.swap(scratch_.emissions);
  }

  ~DrainCtx() override {
    scratch_children.swap(scratch_.children);
    scratch_emissions.swap(scratch_.emissions);
  }

  void emit(Activation&& a) override {
    if (net_.should_execute(a, *this)) scratch_.queue.push_back(a);
  }

  uint64_t drain(const std::vector<Activation>& seeds) {
    uint64_t n = 0;
    for (const Activation& s : seeds) {
      Activation copy = s;
      emit(std::move(copy));
    }
    while (!scratch_.queue.empty()) {
      Activation a = scratch_.queue.front();
      scratch_.queue.pop_front();
      ++n;
      net_.execute(a, *this);
    }
    return n;
  }

 private:
  Network& net_;
  UpdateScratch& scratch_;
};

}  // namespace

uint64_t run_update_serial(Network& net, MatchState& ms,
                           const CompiledProduction& cp,
                           const std::vector<const Wme*>& wm,
                           UpdateScratch& scratch, obs::Tracer* tracer,
                           size_t track) {
  // One epoch for the whole three-phase update: the replay seeds built
  // between phases are transient tokens, and opening the epoch before any
  // seed is built keeps them inside the drain's deferral window.
  ms.ensure_alpha(net.alpha_mem_count());
  ms.arena.begin_drain(1);
  uint64_t tasks = 0;
  scratch.queue.clear();
  DrainCtx ctx(net, ms, scratch);
  ctx.update_mode = true;
  ctx.min_node_id = cp.first_new_id;
  ctx.suppress_alpha_left = true;
  {
    obs::Span span(tracer, track, obs::EventKind::UpdateA, cp.first_new_id);
    scratch.seeds.clear();
    update_alpha_seeds_into(net, cp, wm, scratch.seeds);
    tasks += ctx.drain(scratch.seeds);
  }
  ctx.suppress_alpha_left = false;
  {
    obs::Span span(tracer, track, obs::EventKind::UpdateB, cp.first_new_id);
    scratch.seeds.clear();
    update_right_seeds_into(net, ms, cp, scratch.seeds);
    tasks += ctx.drain(scratch.seeds);
  }
  {
    obs::Span span(tracer, track, obs::EventKind::UpdateC, cp.first_new_id);
    update_left_seeds_into(net, ms, cp, scratch);  // fills scratch.seeds
    tasks += ctx.drain(scratch.seeds);
  }
  ms.arena.reclaim_at_quiescence();
  return tasks;
}

uint64_t run_update_serial(Network& net, MatchState& ms,
                           const CompiledProduction& cp,
                           const std::vector<const Wme*>& wm) {
  UpdateScratch scratch;
  return run_update_serial(net, ms, cp, wm, scratch);
}

}  // namespace psme
