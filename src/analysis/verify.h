// Static Rete-network verifier.
//
// Walks a compiled network (nodes, jumptable, paired hash tables, production
// records) and checks the catalog of structural invariants the runtime
// silently relies on (DESIGN.md §12). The paper's performance argument rests
// on these properties — node sharing, jumptable indirection integrity,
// bounded activation-chain depth — yet nothing at runtime checks them except
// crashes; the verifier is the safety net that makes network surgery
// (runtime addition today, production *removal* and copy-on-write jumptables
// next) shippable.
//
// Invariant catalog (each violation carries the Check that failed):
//   Resolution   — every SuccessorRef in every jumptable slot names an
//                  existing node; every node's jt_slot is in range.
//   SlotOwnership— no two nodes own the same jumptable slot, and no node
//                  owns a class-root slot.
//   Reachability — every node is reachable from the alpha net (a class-root
//                  slot) by following jumptable successors (plus the
//                  NCC owner→partner link).
//   Ownership    — every node is owned by ≥1 production: backward-reachable
//                  from some P-node over the same edges.
//   Acyclicity   — the successor graph is a DAG (activation chains
//                  terminate). Cycles are reported with one witness edge.
//   SideRef      — edge sides are legal for the target node type: alpha-part
//                  nodes (Const/Disj/Intra/AlphaMem) and Ncc/NccPartner/Prod
//                  accept Left only; Join/Not take exactly one Left (their
//                  left_pred) and one Right (their alpha_mem); BJoin takes
//                  exactly one Left and one Right token edge.
//   TwoInputWiring— a Join/Not's left_pred/alpha_mem fields agree with the
//                  actual spliced edges, and alpha_mem names an AlphaMemNode.
//   NegationPair — NccNode.partner names an NccPartnerNode whose owner
//                  points back, with prefix_len == the owner's left_arity.
//   Bindings     — shared nodes agree on variable bindings: token arity is
//                  consistent along every path (left_arity matches the
//                  predecessor's output arity), every JoinTest's left_ce is
//                  within the left token, and the "Eq tests first" layout
//                  (n_eq) holds.
//   LockRank     — memory-node locks carry the rank the lockdep table
//                  assigns them (alpha memories and table lines: Bucket;
//                  chunk pools: SlabPool). Only checkable when PSME_LOCKDEP
//                  is on (ranks are compiled out otherwise); reported as
//                  skipped when off.
//   ProdRecord   — each production record's pnode is a ProdNode pointing
//                  back at the record's AST, and its new/shared node lists
//                  name existing nodes.
//
// The verifier also records per-node activation fan-out and chain depth
// (longest root→node path), the raw material for the Fig 6-7 long-chain
// analysis and the cost linter.
//
// Quiescent-only: reads lock-guarded structure without locks, like the §5.2
// update machinery. Never call concurrently with a match.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rete/add_production.h"
#include "rete/network.h"

// PSME_NET_VERIFY gates the engine's automatic verify-after-add_production
// (assert-on-violation). Default: debug builds, mirroring PSME_LOCKDEP.
// Configure with -DPSME_NET_VERIFY=ON (the tsan preset does) to force it on
// in any build type; the verifier itself is always compiled.
#ifndef PSME_NET_VERIFY
#ifdef NDEBUG
#define PSME_NET_VERIFY 0
#else
#define PSME_NET_VERIFY 1
#endif
#endif

namespace psme::analysis {

enum class Check : uint8_t {
  Resolution,
  SlotOwnership,
  Reachability,
  Ownership,
  Acyclicity,
  SideRef,
  TwoInputWiring,
  NegationPair,
  Bindings,
  LockRank,
  ProdRecord,
};

[[nodiscard]] const char* check_name(Check c);

struct Violation {
  Check check;
  uint32_t node = UINT32_MAX;  // offending node id (UINT32_MAX: network-level)
  std::string message;         // precise diagnostic, includes ids/names
};

/// Per-node structural facts recorded during the walk (fan-out, depth).
/// Ids of removed productions' nodes stay in the id space as tombstones
/// (Network::free_node); their facts carry alive == false and defaulted
/// fields, and every check skips them — except that anything still
/// *referencing* a tombstone (a jumptable slot, a table entry, a node
/// field, a record) is a violation, which is what makes the verifier the
/// removal oracle.
struct NodeFacts {
  NodeType type = NodeType::Const;
  uint32_t fan_out = 0;    // successor entries in the node's jumptable slot
  uint32_t depth = 0;      // longest root→node path, in activations
  uint32_t out_arity = 0;  // token length this node passes downstream
  bool reachable = false;  // forward-reachable from a class root
  bool owned = false;      // backward-reachable from a P-node
  bool alive = true;       // false: tombstone of a removed production's node
};

struct VerifyReport {
  std::vector<Violation> violations;
  std::vector<NodeFacts> nodes;  // indexed by node id
  uint32_t max_depth = 0;        // longest activation chain in the network
  uint32_t max_fan_out = 0;
  bool lock_ranks_checked = false;  // false when PSME_LOCKDEP is off

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Multi-line human-readable summary of all violations (empty when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Verifies `net` against the invariant catalog. `records` lists every
/// production known to the owner (the engine's AddRecords); pass an empty
/// span to skip the ownership and ProdRecord checks (hand-built networks,
/// e.g. the bilinear bench compiler, have no records). `state` is one
/// agent's match state — when non-null the state-dependent checks (stale
/// table entries, LockRank) run against it; a shared network serving N
/// agents is verified once per agent. Null skips those checks (structure
/// only; lock_ranks_checked stays false).
VerifyReport verify_network(const Network& net, const MatchState* state,
                            const std::vector<const AddRecord*>& records);

/// Structure-only convenience (state = nullptr).
VerifyReport verify_network(const Network& net,
                            const std::vector<const AddRecord*>& records);

/// Convenience for call sites without records.
VerifyReport verify_network(const Network& net);

}  // namespace psme::analysis
