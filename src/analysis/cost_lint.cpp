#include "analysis/cost_lint.h"

#include <algorithm>

#include "psim/report.h"

namespace psme::analysis {

namespace {

struct InEdge {
  uint32_t from = 0;
  Side side = Side::Left;
  bool from_root = false;
};

/// Saturating multiply against the token cap.
double sat(double v, double cap) { return std::min(v, cap); }

/// In-edges per node (resolved refs only; the verifier reports dangling).
std::vector<std::vector<InEdge>> build_in_edges(const Network& net) {
  const uint32_t n = net.node_count();
  const Jumptable& jt = net.jumptable();
  std::vector<std::vector<InEdge>> ins(n);
  for (const auto& [cls, slot] : net.roots()) {
    (void)cls;
    if (slot >= jt.size()) continue;
    for (const SuccessorRef& ref : jt.peek(slot)) {
      if (ref.node < n) ins[ref.node].push_back({0, ref.side, true});
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    const Node* node = net.node(i);
    if (node == nullptr) continue;  // tombstone of a removed production
    const uint32_t slot = node->jt_slot;
    if (slot >= jt.size()) continue;
    for (const SuccessorRef& ref : jt.peek(slot)) {
      if (ref.node < n && ref.node != i && net.node(ref.node) != nullptr) {
        ins[ref.node].push_back({i, ref.side, false});
      }
    }
  }
  return ins;
}

/// Backward walk from `pnode` over `ins` (+ NCC partners of reached owners)
/// into `set`, sorted by id (= topological). `in_set` must be all-zero on
/// entry and is left MARKED for every node in `set` — callers clear it when
/// they are done with membership tests.
void slice_from(const Network& net, const std::vector<std::vector<InEdge>>& ins,
                uint32_t pnode, std::vector<uint8_t>& in_set,
                std::vector<uint32_t>& set, std::vector<uint32_t>& stack) {
  const uint32_t n = net.node_count();
  set.clear();
  stack.assign(1, pnode);
  in_set[pnode] = 1;
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    set.push_back(v);
    for (const InEdge& e : ins[v]) {
      if (!e.from_root && in_set[e.from] == 0) {
        in_set[e.from] = 1;
        stack.push_back(e.from);
      }
    }
    if (net.node(v)->type == NodeType::Ncc) {
      const auto& ncc = static_cast<const NccNode&>(*net.node(v));
      if (ncc.partner < n && in_set[ncc.partner] == 0) {
        in_set[ncc.partner] = 1;
        stack.push_back(ncc.partner);
      }
    }
  }
  std::sort(set.begin(), set.end());  // id order = topological
}

}  // namespace

LintReport lint_costs(const Network& net,
                      const std::vector<const AddRecord*>& records,
                      const CostModel& cost, const CostBudget& budget) {
  LintReport rep;
  rep.budget = budget;
  const uint32_t n = net.node_count();
  const Jumptable& jt = net.jumptable();
  const double W = budget.wme_bound;
  const double cap = budget.token_cap;

  const std::vector<std::vector<InEdge>> ins = build_in_edges(net);

  auto pred_of = [&](uint32_t i, Side side) -> uint32_t {
    for (const InEdge& e : ins[i]) {
      if (e.side == side && !e.from_root) return e.from;
    }
    return UINT32_MAX;
  };

  // Per-node model, in id order (ids are created predecessors-first, so this
  // is a topological order of any builder-produced network).
  std::vector<double> pop(n, 1);    // modeled stored population
  std::vector<double> em(n, 1);     // worst emissions per wme change
  std::vector<double> act(n, 0);    // worst single-activation cost, µs
  std::vector<double> total(n, 0);  // total cost charged per wme change, µs
  auto pop_of = [&](uint32_t id) { return id < n ? pop[id] : 1.0; };
  auto em_of = [&](uint32_t id) { return id < n ? em[id] : 1.0; };

  for (uint32_t i = 0; i < n; ++i) {
    const Node* node = net.node(i);
    if (node == nullptr) continue;  // tombstone: zero-cost, never in a slice
    const uint32_t left = pred_of(i, Side::Left);
    switch (node->type) {
      case NodeType::Const:
      case NodeType::Disj:
      case NodeType::Intra:
        pop[i] = W;
        em[i] = 1;
        act[i] = cost.base_const + cost.per_test;
        total[i] = act[i];
        break;
      case NodeType::AlphaMem: {
        const double fan =
            node->jt_slot < jt.size()
                ? static_cast<double>(jt.peek(node->jt_slot).size())
                : 0;
        pop[i] = W;
        em[i] = 1;
        act[i] = cost.base_alpha + cost.per_insert + cost.per_emit * fan;
        total[i] = act[i];
        break;
      }
      case NodeType::Join:
      case NodeType::Not: {
        const auto& t = static_cast<const TwoInputNode&>(*node);
        const double pop_l = pop_of(t.left_pred < n ? t.left_pred : left);
        const double em_l = em_of(t.left_pred < n ? t.left_pred : left);
        const double tests = static_cast<double>(t.tests.size());
        const double probe = cost.per_probe + cost.per_test * tests;
        const bool is_join = node->type == NodeType::Join;
        // Left arrival: probes the alpha memory (≤ W wmes), emits ≤ W
        // children (a not emits at most its own token). Right arrival:
        // probes the left memory (≤ pop_l tokens), emits ≤ pop_l.
        const double left_act = cost.base_two + cost.per_insert + probe * W +
                                cost.per_emit * (is_join ? W : 1);
        const double right_act = cost.base_two + cost.per_insert +
                                 probe * pop_l + cost.per_emit * pop_l;
        pop[i] = is_join ? sat(pop_l * W, cap) : pop_l;
        em[i] = is_join ? sat(std::max(em_l * W, pop_l), cap)
                        : sat(std::max(em_l, pop_l), cap);
        act[i] = std::max(left_act, right_act);
        total[i] = sat(em_l * left_act + right_act, cap * cost.per_emit);
        break;
      }
      case NodeType::Ncc: {
        const auto& ncc = static_cast<const NccNode&>(*node);
        (void)ncc;
        const double pop_l = pop_of(left);
        const double em_l = em_of(left);
        pop[i] = pop_l;
        em[i] = em_l;
        act[i] = cost.base_ncc + cost.per_probe * pop_l + cost.per_insert +
                 cost.per_emit;
        total[i] = em_l * act[i];
        break;
      }
      case NodeType::NccPartner: {
        const double pop_l = pop_of(left);
        const double em_l = em_of(left);
        pop[i] = pop_l;
        em[i] = sat(em_l, cap);
        act[i] = cost.base_ncc + cost.per_probe * pop_l + cost.per_insert +
                 cost.per_emit;
        total[i] = em_l * act[i];
        break;
      }
      case NodeType::BJoin: {
        const uint32_t right = pred_of(i, Side::Right);
        const double pop_l = pop_of(left), pop_r = pop_of(right);
        const double em_l = em_of(left), em_r = em_of(right);
        const double left_act = cost.base_two + cost.per_insert +
                                cost.per_probe * pop_r +
                                cost.per_emit * pop_r;
        const double right_act = cost.base_two + cost.per_insert +
                                 cost.per_probe * pop_l +
                                 cost.per_emit * pop_l;
        pop[i] = sat(pop_l * pop_r, cap);
        em[i] = sat(std::max(em_l * pop_r, em_r * pop_l), cap);
        act[i] = std::max(left_act, right_act);
        total[i] = sat(em_l * left_act + em_r * right_act,
                       cap * cost.per_emit);
        break;
      }
      case NodeType::Prod: {
        pop[i] = pop_of(left);
        em[i] = 0;
        act[i] = cost.base_prod + cost.per_insert;
        total[i] = em_of(left) * act[i];
        break;
      }
    }
  }

  // Per production: its network slice is everything backward-reachable from
  // its P-node (plus NCC partners of reached owners).
  std::vector<uint8_t> in_set(n, 0);
  std::vector<uint32_t> set, stack;
  std::vector<uint32_t> depth(n, 0);
  std::vector<double> chain(n, 0);
  for (const AddRecord* r : records) {
    if (r == nullptr || r->compiled.pnode >= n ||
        net.node(r->compiled.pnode) == nullptr) {
      continue;  // removed production's record (the verifier flags it)
    }
    const uint32_t pnode = r->compiled.pnode;
    slice_from(net, ins, pnode, in_set, set, stack);

    ProductionCost pc;
    pc.prod = r->ast;
    if (r->ast != nullptr) {
      pc.name = std::string(net.syms().name(r->ast->name));
    }
    pc.pnode = pnode;
    pc.nodes = static_cast<uint32_t>(set.size());
    pc.shared_nodes =
        static_cast<uint32_t>(r->compiled.shared_nodes.size());

    for (const uint32_t v : set) {
      const NodeType t = net.node(v)->type;
      if (t == NodeType::Join || t == NodeType::Not || t == NodeType::Ncc ||
          t == NodeType::BJoin) {
        ++pc.two_input_nodes;
      }
      pc.worst_case_cost_us += total[v];

      // Longest dependent chain within the slice. A predecessor that is an
      // NCC owner also exposes its partner's chain (emissions flow through
      // the owner's slot; the partner has the greater id, but both precede
      // every successor of the owner).
      uint32_t d = 0;
      double c = 0;
      for (const InEdge& e : ins[v]) {
        if (e.from_root) {
          d = std::max(d, 1u);
        } else if (in_set[e.from] != 0) {
          uint32_t pd = depth[e.from];
          double pcst = chain[e.from];
          if (net.node(e.from)->type == NodeType::Ncc) {
            const auto& ncc = static_cast<const NccNode&>(*net.node(e.from));
            if (ncc.partner < n && in_set[ncc.partner] != 0) {
              pd = std::max(pd, depth[ncc.partner]);
              pcst = std::max(pcst, chain[ncc.partner]);
            }
          }
          d = std::max(d, pd + 1);
          c = std::max(c, pcst);
        }
      }
      depth[v] = d;
      chain[v] = c + act[v];
    }
    pc.chain_depth = depth[pnode];
    pc.chain_cost_us = chain[pnode];

    if (pc.worst_case_cost_us > budget.max_cost_us) pc.flags.push_back("cost");
    if (pc.chain_depth > budget.max_depth) pc.flags.push_back("depth");
    if (pc.over_budget()) ++rep.flagged;
    rep.productions.push_back(std::move(pc));

    for (const uint32_t v : set) in_set[v] = 0;
  }

  return rep;
}

std::vector<std::vector<uint32_t>> production_slices(
    const Network& net, const std::vector<const AddRecord*>& records) {
  const uint32_t n = net.node_count();
  const std::vector<std::vector<InEdge>> ins = build_in_edges(net);
  std::vector<uint8_t> in_set(n, 0);
  std::vector<uint32_t> set, stack;
  std::vector<std::vector<uint32_t>> out(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const AddRecord* r = records[i];
    if (r == nullptr || r->compiled.pnode >= n ||
        net.node(r->compiled.pnode) == nullptr) {
      continue;  // removed production: empty slice
    }
    slice_from(net, ins, r->compiled.pnode, in_set, set, stack);
    out[i] = set;
    for (const uint32_t v : set) in_set[v] = 0;
  }
  return out;
}

void LintReport::print_table() const {
  TextTable table({"production", "nodes", "2-input", "shared", "depth",
                   "chain µs", "worst µs", "flags"});
  for (const ProductionCost& pc : productions) {
    std::string flags;
    for (const std::string& f : pc.flags) {
      if (!flags.empty()) flags += ",";
      flags += f;
    }
    table.add_row({pc.name, std::to_string(pc.nodes),
                   std::to_string(pc.two_input_nodes),
                   std::to_string(pc.shared_nodes),
                   std::to_string(pc.chain_depth),
                   TextTable::num(pc.chain_cost_us),
                   TextTable::num(pc.worst_case_cost_us),
                   flags.empty() ? "-" : flags});
  }
  table.print();
}

}  // namespace psme::analysis
