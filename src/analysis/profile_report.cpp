#include "analysis/profile_report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "psim/report.h"

namespace psme::analysis {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  out += buf;
}

void append_num(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// Ratios span many orders of magnitude; fixed two decimals would collapse
/// everything below 0.005 to zero, so they get scientific notation (C99
/// pins the %e format, so output stays platform-independent).
void append_ratio(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3e", v);
  out += buf;
}

}  // namespace

ProfileReport build_profile_report(const Network& net,
                                   const std::vector<const AddRecord*>& records,
                                   const obs::ProfileSnapshot& snap) {
  ProfileReport rep;
  rep.sample_shift = snap.sample_shift;
  rep.total_activations = snap.total_activations;
  rep.total_sampled = snap.total_sampled;
  rep.total_us = static_cast<double>(snap.total_time_ns) / 1e3;

  const std::vector<std::vector<uint32_t>> slices =
      production_slices(net, records);
  for (size_t i = 0; i < records.size(); ++i) {
    const AddRecord* r = records[i];
    if (slices[i].empty()) continue;  // removed production
    ProductionProfile pp;
    if (r->ast != nullptr) {
      pp.name = std::string(net.syms().name(r->ast->name));
    }
    pp.pnode = r->compiled.pnode;
    pp.nodes = static_cast<uint32_t>(slices[i].size());
    for (const uint32_t v : slices[i]) {
      if (v >= snap.nodes.size()) continue;  // node added after the snapshot
      const obs::ProfileCell& c = snap.nodes[v];
      pp.activations += c.activations;
      pp.sampled += c.sampled;
      pp.emits += c.emits;
      pp.est_us += obs::ProfileSnapshot::est_ns(c) / 1e3;
    }
    rep.productions.push_back(std::move(pp));
  }

  for (size_t v = 0; v < snap.nodes.size(); ++v) {
    const obs::ProfileCell& c = snap.nodes[v];
    if (c.activations == 0) continue;
    NodeProfile np;
    np.node = static_cast<uint32_t>(v);
    const Node* node =
        v < net.node_count() ? net.node(static_cast<uint32_t>(v)) : nullptr;
    np.type = node != nullptr ? node_type_name(node->type) : "";
    np.activations = c.activations;
    np.emits = c.emits;
    np.est_us = obs::ProfileSnapshot::est_ns(c) / 1e3;
    rep.nodes.push_back(np);
  }

  for (size_t a = 0; a < snap.agents.size(); ++a) {
    const obs::ProfileAgentCell& c = snap.agents[a];
    if (c.activations == 0) continue;
    AgentProfile ap;
    ap.agent = static_cast<uint32_t>(a);
    ap.activations = c.activations;
    ap.est_us = obs::ProfileSnapshot::est_ns(c) / 1e3;
    rep.agents.push_back(ap);
  }

  return rep;
}

void ProfileReport::print_table(size_t top_k) const {
  std::vector<size_t> order(productions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return productions[a].est_us > productions[b].est_us;
  });
  if (order.size() > top_k) order.resize(top_k);

  std::printf("profile: %" PRIu64 " activations (%" PRIu64
              " timed, shift %u), est %s µs total\n",
              total_activations, total_sampled, sample_shift,
              TextTable::num(total_us).c_str());
  TextTable table({"production", "nodes", "acts", "emits", "est µs"});
  for (const size_t i : order) {
    const ProductionProfile& pp = productions[i];
    table.add_row({pp.name, std::to_string(pp.nodes),
                   std::to_string(pp.activations), std::to_string(pp.emits),
                   TextTable::num(pp.est_us)});
  }
  table.print();

  if (agents.size() > 1) {
    TextTable at({"agent", "acts", "est µs"});
    for (const AgentProfile& ap : agents) {
      at.add_row({std::to_string(ap.agent), std::to_string(ap.activations),
                  TextTable::num(ap.est_us)});
    }
    at.print();
  }
}

std::string profile_json(const std::string& name, const ProfileReport& rep) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"network\": ";
  append_escaped(out, name);
  out += ",\n  \"profile\": {\n    \"sample_shift\": ";
  append_num(out, static_cast<uint64_t>(rep.sample_shift));
  out += ",\n    \"activations\": ";
  append_num(out, rep.total_activations);
  out += ",\n    \"sampled\": ";
  append_num(out, rep.total_sampled);
  out += ",\n    \"time_us\": ";
  append_num(out, rep.total_us);
  out += ",\n    \"productions\": [";
  for (size_t i = 0; i < rep.productions.size(); ++i) {
    const ProductionProfile& pp = rep.productions[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"name\": ";
    append_escaped(out, pp.name);
    out += ", \"pnode\": ";
    append_num(out, static_cast<uint64_t>(pp.pnode));
    out += ", \"nodes\": ";
    append_num(out, static_cast<uint64_t>(pp.nodes));
    out += ", \"acts\": ";
    append_num(out, pp.activations);
    out += ", \"sampled\": ";
    append_num(out, pp.sampled);
    out += ", \"emits\": ";
    append_num(out, pp.emits);
    out += ", \"est_us\": ";
    append_num(out, pp.est_us);
    out += "}";
  }
  if (!rep.productions.empty()) out += "\n    ";
  out += "],\n    \"nodes\": [";
  for (size_t i = 0; i < rep.nodes.size(); ++i) {
    const NodeProfile& np = rep.nodes[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"node\": ";
    append_num(out, static_cast<uint64_t>(np.node));
    out += ", \"type\": ";
    append_escaped(out, np.type);
    out += ", \"acts\": ";
    append_num(out, np.activations);
    out += ", \"emits\": ";
    append_num(out, np.emits);
    out += ", \"est_us\": ";
    append_num(out, np.est_us);
    out += "}";
  }
  if (!rep.nodes.empty()) out += "\n    ";
  out += "],\n    \"agents\": [";
  for (size_t i = 0; i < rep.agents.size(); ++i) {
    const AgentProfile& ap = rep.agents[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"agent\": ";
    append_num(out, static_cast<uint64_t>(ap.agent));
    out += ", \"acts\": ";
    append_num(out, ap.activations);
    out += ", \"est_us\": ";
    append_num(out, ap.est_us);
    out += "}";
  }
  if (!rep.agents.empty()) out += "\n    ";
  out += "]\n  }\n}\n";
  return out;
}

// ---- parsing (the profile_json subset only) --------------------------------

namespace {

size_t skip_ws(const std::string& t, size_t pos) {
  while (pos < t.size() &&
         (t[pos] == ' ' || t[pos] == '\n' || t[pos] == '\t' || t[pos] == '\r')) {
    ++pos;
  }
  return pos;
}

/// Position just past `"key":` at or after `pos`, bounded by `end`;
/// std::string::npos when absent.
size_t find_key(const std::string& t, size_t pos, size_t end, const char* key) {
  const std::string quoted = std::string("\"") + key + "\"";
  const size_t at = t.find(quoted, pos);
  if (at == std::string::npos || at >= end) return std::string::npos;
  size_t p = skip_ws(t, at + quoted.size());
  if (p >= t.size() || t[p] != ':') return std::string::npos;
  return skip_ws(t, p + 1);
}

bool parse_u64(const std::string& t, size_t pos, uint64_t& out) {
  if (pos >= t.size()) return false;
  char* endp = nullptr;
  out = std::strtoull(t.c_str() + pos, &endp, 10);
  return endp != t.c_str() + pos;
}

bool parse_double(const std::string& t, size_t pos, double& out) {
  if (pos >= t.size()) return false;
  char* endp = nullptr;
  out = std::strtod(t.c_str() + pos, &endp);
  return endp != t.c_str() + pos;
}

bool parse_string(const std::string& t, size_t pos, std::string& out) {
  if (pos >= t.size() || t[pos] != '"') return false;
  out.clear();
  for (size_t i = pos + 1; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < t.size()) {
      const char e = t[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u':
          // profile names never need non-ASCII; decode the low byte only.
          if (i + 4 < t.size()) {
            out += static_cast<char>(
                std::strtoul(t.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += e;
      }
    } else {
      out += c;
    }
  }
  return false;  // unterminated
}

}  // namespace

ParsedProfile parse_profile_json(const std::string& text) {
  ParsedProfile p;
  size_t pos = find_key(text, 0, text.size(), "network");
  if (pos == std::string::npos || !parse_string(text, pos, p.network)) {
    p.error = "missing \"network\"";
    return p;
  }
  const size_t prof = find_key(text, 0, text.size(), "profile");
  if (prof == std::string::npos) {
    p.error = "missing \"profile\"";
    return p;
  }
  uint64_t u = 0;
  pos = find_key(text, prof, text.size(), "sample_shift");
  if (pos != std::string::npos && parse_u64(text, pos, u)) {
    p.sample_shift = static_cast<uint32_t>(u);
  }
  pos = find_key(text, prof, text.size(), "activations");
  if (pos == std::string::npos || !parse_u64(text, pos, p.total_activations)) {
    p.error = "missing \"activations\"";
    return p;
  }
  pos = find_key(text, prof, text.size(), "time_us");
  if (pos != std::string::npos) parse_double(text, pos, p.total_us);

  size_t arr = find_key(text, prof, text.size(), "productions");
  if (arr == std::string::npos || text[arr] != '[') {
    p.error = "missing \"productions\"";
    return p;
  }
  const size_t arr_end = text.find(']', arr);
  if (arr_end == std::string::npos) {
    p.error = "unterminated \"productions\"";
    return p;
  }
  size_t obj = text.find('{', arr);
  while (obj != std::string::npos && obj < arr_end) {
    const size_t obj_end = text.find('}', obj);
    if (obj_end == std::string::npos || obj_end > arr_end) {
      p.error = "unterminated production row";
      return p;
    }
    ParsedProduction row;
    pos = find_key(text, obj, obj_end, "name");
    if (pos == std::string::npos || !parse_string(text, pos, row.name)) {
      p.error = "production row without \"name\"";
      return p;
    }
    pos = find_key(text, obj, obj_end, "acts");
    if (pos == std::string::npos || !parse_u64(text, pos, row.activations)) {
      p.error = "production row without \"acts\"";
      return p;
    }
    pos = find_key(text, obj, obj_end, "est_us");
    if (pos != std::string::npos) parse_double(text, pos, row.est_us);
    p.productions.push_back(std::move(row));
    obj = text.find('{', obj_end);
  }
  p.ok = true;
  return p;
}

// ---- correlation -----------------------------------------------------------

CorrelationReport correlate(const LintReport& lint, const ParsedProfile& prof,
                            double hot_ratio, double cold_ratio) {
  CorrelationReport rep;
  rep.hot_ratio = hot_ratio;
  rep.cold_ratio = cold_ratio;

  std::unordered_map<std::string, const ParsedProduction*> by_name;
  by_name.reserve(prof.productions.size());
  for (const ParsedProduction& pp : prof.productions) {
    by_name.emplace(pp.name, &pp);  // first wins; names are unique per network
  }

  for (const ProductionCost& pc : lint.productions) {
    CorrelationRow row;
    row.name = pc.name;
    row.static_us = pc.worst_case_cost_us;
    row.chain_depth = pc.chain_depth;
    const auto it = by_name.find(pc.name);
    const ParsedProduction* m = it != by_name.end() ? it->second : nullptr;
    if (m == nullptr || m->activations == 0) {
      row.flags.push_back("unmeasured");
    } else {
      ++rep.correlated;
      row.activations = m->activations;
      row.measured_us = m->est_us;
      row.ratio = row.static_us > 0 ? row.measured_us / row.static_us : 0;
      if (row.measured_us > hot_ratio * row.static_us) {
        row.flags.push_back("hot");
      } else if (row.measured_us < cold_ratio * row.static_us) {
        row.flags.push_back("cold");
      }
      if (!row.flags.empty()) ++rep.flagged;
    }
    rep.rows.push_back(std::move(row));
  }
  return rep;
}

void CorrelationReport::print_table() const {
  std::printf("static-vs-measured: %u correlated, %u flagged\n", correlated,
              flagged);
  TextTable table({"production", "static µs", "depth", "acts", "measured µs",
                   "ratio", "flags"});
  for (const CorrelationRow& r : rows) {
    std::string flags;
    for (const std::string& f : r.flags) {
      if (!flags.empty()) flags += ",";
      flags += f;
    }
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.3e", r.ratio);
    table.add_row({r.name, TextTable::num(r.static_us),
                   std::to_string(r.chain_depth), std::to_string(r.activations),
                   TextTable::num(r.measured_us), ratio,
                   flags.empty() ? "-" : flags});
  }
  table.print();
}

std::string correlation_json(const std::string& name,
                             const CorrelationReport& rep) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"network\": ";
  append_escaped(out, name);
  out += ",\n  \"correlation\": {\n    \"hot_ratio\": ";
  append_ratio(out, rep.hot_ratio);
  out += ",\n    \"cold_ratio\": ";
  append_ratio(out, rep.cold_ratio);
  out += ",\n    \"correlated\": ";
  append_num(out, static_cast<uint64_t>(rep.correlated));
  out += ",\n    \"flagged\": ";
  append_num(out, static_cast<uint64_t>(rep.flagged));
  out += ",\n    \"productions\": [";
  for (size_t i = 0; i < rep.rows.size(); ++i) {
    const CorrelationRow& r = rep.rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"name\": ";
    append_escaped(out, r.name);
    out += ", \"static_us\": ";
    append_num(out, r.static_us);
    out += ", \"chain_depth\": ";
    append_num(out, static_cast<uint64_t>(r.chain_depth));
    out += ", \"acts\": ";
    append_num(out, r.activations);
    out += ", \"measured_us\": ";
    append_num(out, r.measured_us);
    out += ", \"ratio\": ";
    append_ratio(out, r.ratio);
    out += ", \"flags\": [";
    for (size_t k = 0; k < r.flags.size(); ++k) {
      if (k != 0) out += ", ";
      append_escaped(out, r.flags[k]);
    }
    out += "]}";
  }
  if (!rep.rows.empty()) out += "\n    ";
  out += "]\n  }\n}\n";
  return out;
}

}  // namespace psme::analysis
