// Production cost linter: CORGI-style static worst-case bounds per production.
//
// CORGI (see PAPERS.md) showed that the worst-case match cost a production
// can incur per working-memory change is statically boundable from the
// compiled join structure alone. This linter walks each production's node
// set (its AddRecord's new + shared nodes, recovered by a backward walk from
// the P-node) and, using the psim cost model's per-operation constants,
// computes:
//
//   * `worst_case_cost_us` — an upper bound on the match time one wme change
//     can charge to this production. Token arrivals cascade multiplicatively
//     down the join chain (a right activation can emit up to the left
//     population, each emitted token re-probes the next alpha memory, ...),
//     with every modeled population bounded by `wme_bound` wmes per alpha
//     memory and saturated at `token_cap` — the classic product-of-join-
//     sizes bound.
//   * `chain_depth` / `chain_cost_us` — length and cost of the longest
//     dependent activation chain from a class root to the P-node. Chains
//     bound speedup regardless of processor count (the paper's Figures
//     6-6..6-8 long-chain effect); the linter finds them before they burn a
//     benchmark.
//
// Budgets are configurable; productions whose bound exceeds any budget are
// flagged with the budget's name. The model is deliberately simple and
// deterministic — same network, same numbers, on every platform — so the
// JSON report can be golden-file tested.
//
// The linter assumes a structurally valid network (run verify_network
// first); on a malformed network it still terminates (it walks node ids,
// which are created in topological order) but the numbers are meaningless.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/verify.h"
#include "psim/cost_model.h"
#include "rete/add_production.h"
#include "rete/network.h"

namespace psme::analysis {

struct CostBudget {
  double max_cost_us = 1e9;     // worst-case match cost per wme change
  uint32_t max_depth = 64;      // activations on the longest dependent chain
  uint32_t wme_bound = 8;       // modeled wmes per alpha memory
  double token_cap = 1e6;       // saturation for modeled token populations
};

struct ProductionCost {
  const Production* prod = nullptr;
  std::string name;
  uint32_t pnode = 0;
  uint32_t nodes = 0;            // nodes in this production's network slice
  uint32_t two_input_nodes = 0;  // join/not/ncc/bjoin among them
  uint32_t shared_nodes = 0;     // reused from earlier productions
  uint32_t chain_depth = 0;      // longest root -> P-node activation chain
  double chain_cost_us = 0;      // cost-weighted longest chain
  double worst_case_cost_us = 0; // static bound per wme change
  std::vector<std::string> flags;  // exceeded budgets: "cost", "depth"

  [[nodiscard]] bool over_budget() const { return !flags.empty(); }
};

struct LintReport {
  CostBudget budget;
  std::vector<ProductionCost> productions;  // record order (= load order)
  uint32_t flagged = 0;

  [[nodiscard]] bool ok() const { return flagged == 0; }
  /// Human-readable table (psim TextTable) on stdout, flagged productions
  /// marked in the last column.
  void print_table() const;
};

LintReport lint_costs(const Network& net,
                      const std::vector<const AddRecord*>& records,
                      const CostModel& cost = {}, const CostBudget& budget = {});

/// The network slice of every production, parallel to `records`: each entry
/// is the node set backward-reachable from that record's P-node (plus NCC
/// partners of reached owners), in id order; empty for a removed
/// production's record. This is the same walk lint_costs uses to charge
/// static cost, exported so the measured-profile report
/// (analysis/profile_report.h) attributes runtime node cells to productions
/// through the identical slicing — static and measured tables can then be
/// joined row by row (network_lint --profile).
std::vector<std::vector<uint32_t>> production_slices(
    const Network& net, const std::vector<const AddRecord*>& records);

}  // namespace psme::analysis
