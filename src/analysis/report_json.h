// Machine-readable serialization of the analysis reports.
//
// One function, one stable format: the `network_lint` CLI archives it in CI
// and tests/analysis_test.cpp golden-files it, so the two can never drift.
// Formatting is deterministic (fixed two-decimal doubles, record order)
// to keep the golden file platform-independent.
#pragma once

#include <string>

#include "analysis/cost_lint.h"
#include "analysis/verify.h"

namespace psme::analysis {

/// JSON report for one network: node counts, the verifier's result, and the
/// cost linter's per-production table. `name` labels the network (task name).
[[nodiscard]] std::string report_json(const std::string& name,
                                      const Network& net,
                                      const VerifyReport& verify,
                                      const LintReport& lint);

}  // namespace psme::analysis
