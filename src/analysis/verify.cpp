#include "analysis/verify.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "par/lock_order.h"

namespace psme::analysis {

const char* check_name(Check c) {
  switch (c) {
    case Check::Resolution: return "resolution";
    case Check::SlotOwnership: return "slot-ownership";
    case Check::Reachability: return "reachability";
    case Check::Ownership: return "ownership";
    case Check::Acyclicity: return "acyclicity";
    case Check::SideRef: return "side-ref";
    case Check::TwoInputWiring: return "two-input-wiring";
    case Check::NegationPair: return "negation-pair";
    case Check::Bindings: return "bindings";
    case Check::LockRank: return "lock-rank";
    case Check::ProdRecord: return "prod-record";
  }
  return "?";
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << "network verify: " << violations.size() << " violation(s)\n";
  for (const Violation& v : violations) {
    os << "  [" << check_name(v.check) << "] ";
    if (v.node != UINT32_MAX) os << "node " << v.node << ": ";
    os << v.message << "\n";
  }
  return std::move(os).str();
}

namespace {

/// Does a node of this type pass tokens downstream through its own slot?
/// (NccPartner emits through its owner; Prod terminates.)
bool is_token_source(NodeType t) {
  return t == NodeType::AlphaMem || t == NodeType::Join || t == NodeType::Not ||
         t == NodeType::Ncc || t == NodeType::BJoin;
}

bool is_alpha_part(NodeType t) {
  return t == NodeType::Const || t == NodeType::Disj || t == NodeType::Intra ||
         t == NodeType::AlphaMem;
}

struct InEdge {
  uint32_t from = 0;  // node id; meaningless when from_root
  Side side = Side::Left;
  bool from_root = false;
};

std::string fmt(const char* f, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, f, args...);
  return buf;
}

}  // namespace

VerifyReport verify_network(const Network& net) {
  return verify_network(net, nullptr, {});
}

VerifyReport verify_network(const Network& net,
                            const std::vector<const AddRecord*>& records) {
  return verify_network(net, nullptr, records);
}

VerifyReport verify_network(const Network& net, const MatchState* state,
                            const std::vector<const AddRecord*>& records) {
  VerifyReport rep;
  const uint32_t n = net.node_count();
  const Jumptable& jt = net.jumptable();
  rep.nodes.assign(n, NodeFacts{});
  // Tombstoned ids (removed productions' nodes) keep defaulted facts with
  // alive == false; every check below skips them, but any surviving
  // reference TO one is a violation — the removal oracle.
  uint32_t live_count = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (const Node* node = net.node(i); node != nullptr) {
      rep.nodes[i].type = node->type;
      ++live_count;
    } else {
      rep.nodes[i].alive = false;
    }
  }

  auto bad = [&](Check c, uint32_t node, std::string msg) {
    rep.violations.push_back(Violation{c, node, std::move(msg)});
  };
  auto type_name = [&](uint32_t id) { return node_type_name(rep.nodes[id].type); };
  auto alive = [&](uint32_t id) { return id < n && rep.nodes[id].alive; };

  // ---- Resolution + SlotOwnership: slots resolve and are uniquely owned ----
  std::vector<uint8_t> slot_is_root(jt.size(), 0);
  for (const auto& [cls, slot] : net.roots()) {
    (void)cls;
    if (slot >= jt.size()) {
      bad(Check::Resolution, UINT32_MAX,
          fmt("class-root slot %u out of range (%zu slots)", slot, jt.size()));
      continue;
    }
    slot_is_root[slot] = 1;
  }
  std::vector<uint32_t> slot_owner(jt.size(), UINT32_MAX);
  for (uint32_t i = 0; i < n; ++i) {
    if (!rep.nodes[i].alive) continue;  // freed slot, back in the recycler
    const uint32_t slot = net.node(i)->jt_slot;
    if (slot >= jt.size()) {
      bad(Check::Resolution, i,
          fmt("jt_slot %u out of range (%zu slots)", slot, jt.size()));
      continue;
    }
    if (slot_is_root[slot] != 0) {
      bad(Check::SlotOwnership, i,
          fmt("%s node owns class-root slot %u", type_name(i), slot));
    } else if (slot_owner[slot] != UINT32_MAX) {
      bad(Check::SlotOwnership, i,
          fmt("slot %u owned by both node %u and node %u", slot,
              slot_owner[slot], i));
    } else {
      slot_owner[slot] = i;
    }
  }
  for (uint32_t s = 0; s < jt.size(); ++s) {
    for (const SuccessorRef& ref : jt.peek(s)) {
      if (ref.node >= n) {
        bad(Check::Resolution, slot_owner[s],
            fmt("slot %u references nonexistent node %u (network has %u)", s,
                ref.node, n));
      } else if (!rep.nodes[ref.node].alive) {
        bad(Check::Resolution, slot_owner[s],
            fmt("slot %u references removed node %u (dangling unsplice)", s,
                ref.node));
      }
    }
  }

  // Stale match-state entries referencing reclaimed/nonexistent nodes: the
  // correctness oracle for production removal (ROADMAP) — unsplicing a node
  // must purge its memories first. State checks run per agent: a shared
  // network serving N agents is verified once structurally (state ==
  // nullptr) and once against each agent's MatchState.
  if (state != nullptr) {
    state->tables.for_each_entry([&](uint32_t node_id, bool left) {
      if (node_id >= n) {
        bad(Check::Resolution, UINT32_MAX,
            fmt("stale %s-table entry references nonexistent node %u",
                left ? "left" : "right", node_id));
      } else if (!rep.nodes[node_id].alive) {
        bad(Check::Resolution, UINT32_MAX,
            fmt("stale %s-table entry references removed node %u "
                "(memory not drained before removal)",
                left ? "left" : "right", node_id));
      }
    });
  }

  // ---- Edge collection (resolved refs only; dangling reported above) ----
  std::vector<std::vector<SuccessorRef>> outs(n);
  std::vector<std::vector<InEdge>> ins(n);
  for (const auto& [cls, slot] : net.roots()) {
    (void)cls;
    if (slot >= jt.size()) continue;
    for (const SuccessorRef& ref : jt.peek(slot)) {
      if (alive(ref.node)) ins[ref.node].push_back({0, ref.side, true});
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (!rep.nodes[i].alive) continue;
    const uint32_t slot = net.node(i)->jt_slot;
    if (slot >= jt.size()) continue;
    rep.nodes[i].fan_out = static_cast<uint32_t>(jt.peek(slot).size());
    rep.max_fan_out = std::max(rep.max_fan_out, rep.nodes[i].fan_out);
    for (const SuccessorRef& ref : jt.peek(slot)) {
      if (!alive(ref.node)) continue;
      outs[i].push_back(ref);
      ins[ref.node].push_back({i, ref.side, false});
    }
  }
  // NCC emission path: a partner's emissions flow through its owner's slot,
  // so for dependency purposes (cycles, depth) the owner depends on the
  // partner. Kept out of `ins` so side/arity checks see only real splices.
  std::vector<std::pair<uint32_t, uint32_t>> synthetic;  // (partner, owner)
  for (uint32_t i = 0; i < n; ++i) {
    if (!rep.nodes[i].alive || rep.nodes[i].type != NodeType::NccPartner)
      continue;
    const auto& p = static_cast<const NccPartnerNode&>(*net.node(i));
    if (alive(p.owner) && rep.nodes[p.owner].type == NodeType::Ncc) {
      synthetic.emplace_back(i, p.owner);
    }
  }

  // ---- Reachability: forward BFS from the class roots ----
  {
    std::vector<uint32_t> stack;
    for (uint32_t i = 0; i < n; ++i) {
      for (const InEdge& e : ins[i]) {
        if (e.from_root && !rep.nodes[i].reachable) {
          rep.nodes[i].reachable = true;
          stack.push_back(i);
        }
      }
    }
    while (!stack.empty()) {
      const uint32_t v = stack.back();
      stack.pop_back();
      for (const SuccessorRef& ref : outs[v]) {
        if (!rep.nodes[ref.node].reachable) {
          rep.nodes[ref.node].reachable = true;
          stack.push_back(ref.node);
        }
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (rep.nodes[i].alive && !rep.nodes[i].reachable) {
        bad(Check::Reachability, i,
            fmt("%s node unreachable from the alpha network", type_name(i)));
      }
    }
  }

  // ---- Ownership: backward BFS from every P-node ----
  {
    std::vector<uint32_t> stack;
    auto own = [&](uint32_t id) {
      if (!rep.nodes[id].owned) {
        rep.nodes[id].owned = true;
        stack.push_back(id);
      }
    };
    for (uint32_t i = 0; i < n; ++i) {
      if (rep.nodes[i].alive && rep.nodes[i].type == NodeType::Prod) own(i);
    }
    while (!stack.empty()) {
      const uint32_t v = stack.back();
      stack.pop_back();
      for (const InEdge& e : ins[v]) {
        if (!e.from_root) own(e.from);
      }
      // An owned NCC owns its partner (and thus the whole subnetwork).
      if (rep.nodes[v].type == NodeType::Ncc) {
        const auto& ncc = static_cast<const NccNode&>(*net.node(v));
        if (alive(ncc.partner)) own(ncc.partner);
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (rep.nodes[i].alive && !rep.nodes[i].owned) {
        bad(Check::Ownership, i,
            fmt("%s node not owned by any production (no P-node downstream)",
                type_name(i)));
      }
    }
  }

  // ---- Acyclicity: Kahn over real + synthetic edges ----
  bool acyclic = true;
  std::vector<uint32_t> topo;
  {
    std::vector<uint32_t> indeg(n, 0);
    for (uint32_t i = 0; i < n; ++i) {
      for (const SuccessorRef& ref : outs[i]) ++indeg[ref.node];
    }
    for (const auto& [partner, owner] : synthetic) {
      (void)partner;
      ++indeg[owner];
    }
    topo.reserve(live_count);
    for (uint32_t i = 0; i < n; ++i) {
      if (rep.nodes[i].alive && indeg[i] == 0) topo.push_back(i);
    }
    for (size_t head = 0; head < topo.size(); ++head) {
      const uint32_t v = topo[head];
      for (const SuccessorRef& ref : outs[v]) {
        if (--indeg[ref.node] == 0) topo.push_back(ref.node);
      }
      for (const auto& [partner, owner] : synthetic) {
        if (partner == v && --indeg[owner] == 0) topo.push_back(owner);
      }
    }
    if (topo.size() != live_count) {
      acyclic = false;
      for (uint32_t i = 0; i < n; ++i) {
        if (rep.nodes[i].alive && indeg[i] > 0) {
          bad(Check::Acyclicity, i,
              fmt("successor graph has a cycle through %s node %u",
                  type_name(i), i));
          break;  // one witness; the cycle set is usually one splice error
        }
      }
    }
  }

  // ---- SideRef / TwoInputWiring / NegationPair (per-node, order-free) ----
  for (uint32_t i = 0; i < n; ++i) {
    const Node* node = net.node(i);
    if (node == nullptr) continue;
    uint32_t lefts = 0, rights = 0;
    const InEdge* left_in = nullptr;
    const InEdge* right_in = nullptr;
    for (const InEdge& e : ins[i]) {
      if (e.side == Side::Left) {
        ++lefts;
        left_in = &e;
      } else {
        ++rights;
        right_in = &e;
      }
    }
    switch (node->type) {
      case NodeType::Const:
      case NodeType::Disj:
      case NodeType::Intra:
      case NodeType::AlphaMem: {
        if (rights != 0) {
          bad(Check::SideRef, i,
              fmt("alpha-part %s node has %u Right-side predecessor(s)",
                  type_name(i), rights));
        }
        if (lefts > 1) {
          bad(Check::SideRef, i,
              fmt("alpha-part %s node has %u predecessors (chains are trees)",
                  type_name(i), lefts));
        }
        if (left_in != nullptr && !left_in->from_root &&
            is_alpha_part(rep.nodes[left_in->from].type) &&
            rep.nodes[left_in->from].type == NodeType::AlphaMem) {
          bad(Check::SideRef, i,
              fmt("alpha-part %s node hangs under an alpha memory",
                  type_name(i)));
        }
        if (left_in != nullptr && !left_in->from_root &&
            !is_alpha_part(rep.nodes[left_in->from].type)) {
          bad(Check::SideRef, i,
              fmt("alpha-part %s node fed by beta-part %s node %u",
                  type_name(i), type_name(left_in->from), left_in->from));
        }
        break;
      }
      case NodeType::Join:
      case NodeType::Not: {
        const auto& t = static_cast<const TwoInputNode&>(*node);
        if (lefts != 1) {
          bad(Check::TwoInputWiring, i,
              fmt("two-input node has %u Left predecessors (want 1)", lefts));
        } else if (left_in->from_root || left_in->from != t.left_pred) {
          bad(Check::TwoInputWiring, i,
              fmt("Left edge comes from node %u but left_pred says %u",
                  left_in->from_root ? UINT32_MAX : left_in->from,
                  t.left_pred));
        } else if (!is_token_source(rep.nodes[left_in->from].type)) {
          bad(Check::SideRef, i,
              fmt("Left input fed by non-token %s node %u",
                  type_name(left_in->from), left_in->from));
        }
        if (rights != 1) {
          bad(Check::TwoInputWiring, i,
              fmt("two-input node has %u Right predecessors (want 1)",
                  rights));
        } else if (right_in->from_root || right_in->from != t.alpha_mem) {
          bad(Check::TwoInputWiring, i,
              fmt("Right edge comes from node %u but alpha_mem says %u",
                  right_in->from_root ? UINT32_MAX : right_in->from,
                  t.alpha_mem));
        }
        if (t.alpha_mem >= n) {
          bad(Check::TwoInputWiring, i,
              fmt("alpha_mem %u does not exist", t.alpha_mem));
        } else if (!rep.nodes[t.alpha_mem].alive) {
          bad(Check::TwoInputWiring, i,
              fmt("alpha_mem %u is a removed node", t.alpha_mem));
        } else if (rep.nodes[t.alpha_mem].type != NodeType::AlphaMem) {
          bad(Check::TwoInputWiring, i,
              fmt("alpha_mem %u is a %s node, not an alpha memory",
                  t.alpha_mem, type_name(t.alpha_mem)));
        }
        break;
      }
      case NodeType::BJoin: {
        if (lefts != 1 || rights != 1) {
          bad(Check::SideRef, i,
              fmt("bilinear join has %u Left / %u Right predecessors "
                  "(want 1/1)",
                  lefts, rights));
        }
        for (const InEdge& e : ins[i]) {
          if (!e.from_root && !is_token_source(rep.nodes[e.from].type)) {
            bad(Check::SideRef, i,
                fmt("bilinear join fed by non-token %s node %u",
                    type_name(e.from), e.from));
          }
        }
        break;
      }
      case NodeType::Ncc: {
        const auto& ncc = static_cast<const NccNode&>(*node);
        if (lefts != 1 || rights != 0) {
          bad(Check::SideRef, i,
              fmt("NCC owner has %u Left / %u Right predecessors (want 1/0)",
                  lefts, rights));
        }
        if (ncc.partner >= n) {
          bad(Check::NegationPair, i,
              fmt("partner %u does not exist", ncc.partner));
        } else if (!rep.nodes[ncc.partner].alive) {
          bad(Check::NegationPair, i,
              fmt("partner %u is a removed node (removal split the pair)",
                  ncc.partner));
        } else if (rep.nodes[ncc.partner].type != NodeType::NccPartner) {
          bad(Check::NegationPair, i,
              fmt("partner %u is a %s node, not an NCC partner", ncc.partner,
                  type_name(ncc.partner)));
        } else {
          const auto& p =
              static_cast<const NccPartnerNode&>(*net.node(ncc.partner));
          if (p.owner != i) {
            bad(Check::NegationPair, i,
                fmt("partner %u points back at node %u, not its owner",
                    ncc.partner, p.owner));
          }
          if (p.prefix_len != ncc.left_arity) {
            bad(Check::NegationPair, i,
                fmt("partner prefix_len %u != owner left_arity %u",
                    p.prefix_len, ncc.left_arity));
          }
        }
        break;
      }
      case NodeType::NccPartner: {
        const auto& p = static_cast<const NccPartnerNode&>(*node);
        if (lefts != 1 || rights != 0) {
          bad(Check::SideRef, i,
              fmt("NCC partner has %u Left / %u Right predecessors "
                  "(want 1/0)",
                  lefts, rights));
        }
        if (p.owner < n && !rep.nodes[p.owner].alive) {
          bad(Check::NegationPair, i,
              fmt("owner %u is a removed node (orphaned NCC partner)",
                  p.owner));
        } else if (p.owner >= n || rep.nodes[p.owner].type != NodeType::Ncc) {
          bad(Check::NegationPair, i,
              fmt("owner %u is not an NCC node", p.owner));
        }
        if (net.node(i)->jt_slot < jt.size() &&
            !jt.peek(net.node(i)->jt_slot).empty()) {
          bad(Check::SideRef, i,
              "NCC partner slot must be empty (emissions flow through its "
              "owner)");
        }
        break;
      }
      case NodeType::Prod: {
        const auto& pn = static_cast<const ProdNode&>(*node);
        if (lefts != 1 || rights != 0) {
          bad(Check::SideRef, i,
              fmt("P-node has %u Left / %u Right predecessors (want 1/0)",
                  lefts, rights));
        } else if (!left_in->from_root &&
                   !is_token_source(rep.nodes[left_in->from].type)) {
          bad(Check::SideRef, i,
              fmt("P-node fed by non-token %s node %u",
                  type_name(left_in->from), left_in->from));
        }
        if (pn.prod == nullptr) {
          bad(Check::ProdRecord, i, "P-node has a null production pointer");
        }
        break;
      }
    }
  }

  // ---- Static test-layout invariants of two-input nodes (order-free) ----
  for (uint32_t i = 0; i < n; ++i) {
    if (!rep.nodes[i].alive) continue;
    if (rep.nodes[i].type != NodeType::Join && rep.nodes[i].type != NodeType::Not)
      continue;
    const auto& t = static_cast<const TwoInputNode&>(*net.node(i));
    if (t.n_eq > t.tests.size()) {
      bad(Check::Bindings, i,
          fmt("n_eq %u exceeds test count %zu", t.n_eq, t.tests.size()));
      continue;
    }
    for (size_t k = 0; k < t.tests.size(); ++k) {
      const bool is_eq = t.tests[k].pred == Pred::Eq;
      if (k < t.n_eq && !is_eq) {
        bad(Check::Bindings, i,
            fmt("test %zu inside the Eq prefix (n_eq=%u) is not Eq", k,
                t.n_eq));
      }
      if (k >= t.n_eq && is_eq) {
        bad(Check::Bindings, i,
            fmt("Eq test %zu after the Eq prefix (n_eq=%u) breaks the hash "
                "basis",
                k, t.n_eq));
      }
      if (t.tests[k].left_ce >= t.left_arity) {
        bad(Check::Bindings, i,
            fmt("test %zu references left CE %u but the left token has "
                "arity %u",
                k, t.tests[k].left_ce, t.left_arity));
      }
    }
  }

  // ---- Depth + arity agreement along the DAG (needs the topo order) ----
  if (acyclic) {
    for (const uint32_t v : topo) {
      NodeFacts& f = rep.nodes[v];
      uint32_t depth = 0;
      uint32_t left_arity_in = 0;
      bool have_left = false;
      for (const InEdge& e : ins[v]) {
        const uint32_t d = e.from_root ? 1 : rep.nodes[e.from].depth + 1;
        depth = std::max(depth, d);
        if (e.side == Side::Left && !e.from_root) {
          left_arity_in = rep.nodes[e.from].out_arity;
          have_left = true;
        } else if (e.side == Side::Left && e.from_root) {
          left_arity_in = 1;
          have_left = true;
        }
      }
      for (const auto& [partner, owner] : synthetic) {
        if (owner == v) depth = std::max(depth, rep.nodes[partner].depth + 1);
      }
      f.depth = depth;
      rep.max_depth = std::max(rep.max_depth, depth);
      switch (f.type) {
        case NodeType::Const:
        case NodeType::Disj:
        case NodeType::Intra:
        case NodeType::AlphaMem:
          f.out_arity = 1;
          break;
        case NodeType::Join: {
          const auto& t = static_cast<const TwoInputNode&>(*net.node(v));
          if (have_left && left_arity_in != t.left_arity) {
            bad(Check::Bindings, v,
                fmt("left predecessor emits arity-%u tokens but left_arity "
                    "says %u (shared nodes must agree on bindings)",
                    left_arity_in, t.left_arity));
          }
          f.out_arity = t.left_arity + 1;
          break;
        }
        case NodeType::Not: {
          const auto& t = static_cast<const TwoInputNode&>(*net.node(v));
          if (have_left && left_arity_in != t.left_arity) {
            bad(Check::Bindings, v,
                fmt("left predecessor emits arity-%u tokens but left_arity "
                    "says %u (shared nodes must agree on bindings)",
                    left_arity_in, t.left_arity));
          }
          f.out_arity = t.left_arity;  // not-nodes pass tokens through
          break;
        }
        case NodeType::Ncc: {
          const auto& ncc = static_cast<const NccNode&>(*net.node(v));
          if (have_left && left_arity_in != ncc.left_arity) {
            bad(Check::Bindings, v,
                fmt("left predecessor emits arity-%u tokens but left_arity "
                    "says %u",
                    left_arity_in, ncc.left_arity));
          }
          f.out_arity = ncc.left_arity;
          break;
        }
        case NodeType::NccPartner: {
          const auto& p = static_cast<const NccPartnerNode&>(*net.node(v));
          if (have_left && left_arity_in <= p.prefix_len) {
            bad(Check::Bindings, v,
                fmt("subnetwork bottom emits arity-%u tokens but prefix_len "
                    "is %u (the group must extend the prefix)",
                    left_arity_in, p.prefix_len));
          }
          f.out_arity = p.prefix_len;  // emits stripped prefixes via owner
          break;
        }
        case NodeType::BJoin: {
          const auto& bj = static_cast<const BJoinNode&>(*net.node(v));
          uint32_t la = 0, ra = 0;
          for (const InEdge& e : ins[v]) {
            if (e.from_root) continue;
            (e.side == Side::Left ? la : ra) = rep.nodes[e.from].out_arity;
          }
          if (la < bj.prefix_len || ra < bj.prefix_len) {
            bad(Check::Bindings, v,
                fmt("prefix_len %u exceeds an input arity (left %u, "
                    "right %u)",
                    bj.prefix_len, la, ra));
          }
          f.out_arity = la + (ra > bj.prefix_len ? ra - bj.prefix_len : 0);
          break;
        }
        case NodeType::Prod: {
          const auto& pn = static_cast<const ProdNode&>(*net.node(v));
          if (pn.prod != nullptr && have_left) {
            const auto want =
                static_cast<uint32_t>(pn.prod->positive_ce_count());
            if (left_arity_in != want) {
              bad(Check::Bindings, v,
                  fmt("P-node receives arity-%u tokens but the production "
                      "has %u positive CEs",
                      left_arity_in, want));
            }
          }
          f.out_arity = left_arity_in;
          break;
        }
      }
    }
  }

  // ---- LockRank: memory-state locks agree with the lockdep table ----
  // All match-time locks live in the per-agent MatchState now (the compiled
  // network itself is lock-free), so this section needs a state to inspect.
#if PSME_LOCKDEP
  if (state != nullptr) {
    rep.lock_ranks_checked = true;
    for (uint32_t i = 0; i < n; ++i) {
      if (rep.nodes[i].type != NodeType::AlphaMem) continue;
      const auto& am = static_cast<const AlphaMemNode&>(*net.node(i));
      if (am.mem_index >= state->alpha_count()) continue;  // not materialized
      const Spinlock& lk = state->alpha(am.mem_index).lock;
      if (lk.rank() != LockRank::Bucket) {
        bad(Check::LockRank, i,
            fmt("alpha-memory lock ranks %s, lockdep table says %s",
                lockdep::rank_name(lk.rank()),
                lockdep::rank_name(LockRank::Bucket)));
      }
    }
    for (size_t li = 0; li < state->tables.line_count(); ++li) {
      if (state->tables.line_at(li).lock.rank() != LockRank::Bucket) {
        bad(Check::LockRank, UINT32_MAX,
            fmt("table line %zu lock ranks %s, lockdep table says %s", li,
                lockdep::rank_name(state->tables.line_at(li).lock.rank()),
                lockdep::rank_name(LockRank::Bucket)));
      }
    }
    if (state->tables.right_pool().lock_rank() != LockRank::SlabPool) {
      bad(Check::LockRank, UINT32_MAX,
          fmt("right-entry chunk pool ranks %s, lockdep table says %s",
              lockdep::rank_name(state->tables.right_pool().lock_rank()),
              lockdep::rank_name(LockRank::SlabPool)));
    }
    if (state->alpha_pool.lock_rank() != LockRank::SlabPool) {
      bad(Check::LockRank, UINT32_MAX,
          fmt("alpha-wme chunk pool ranks %s, lockdep table says %s",
              lockdep::rank_name(state->alpha_pool.lock_rank()),
              lockdep::rank_name(LockRank::SlabPool)));
    }
  }
#endif

  // ---- ProdRecord: production records agree with the network ----
  for (const AddRecord* r : records) {
    if (r == nullptr) continue;
    const CompiledProduction& cp = r->compiled;
    if (cp.pnode >= n) {
      bad(Check::ProdRecord, UINT32_MAX,
          fmt("record's pnode %u does not exist", cp.pnode));
      continue;
    }
    if (!rep.nodes[cp.pnode].alive) {
      bad(Check::ProdRecord, cp.pnode,
          fmt("record's pnode %u is a removed node (record outlived its "
              "removal)",
              cp.pnode));
      continue;
    }
    if (rep.nodes[cp.pnode].type != NodeType::Prod) {
      bad(Check::ProdRecord, cp.pnode,
          fmt("record's pnode is a %s node", type_name(cp.pnode)));
      continue;
    }
    const auto& pn = static_cast<const ProdNode&>(*net.node(cp.pnode));
    if (pn.prod != r->ast) {
      bad(Check::ProdRecord, cp.pnode,
          "P-node's production pointer does not match the record's AST");
    }
    for (const uint32_t id : cp.new_nodes) {
      if (id >= n) {
        bad(Check::ProdRecord, cp.pnode,
            fmt("record lists nonexistent new node %u", id));
      } else if (!rep.nodes[id].alive) {
        bad(Check::ProdRecord, cp.pnode,
            fmt("record lists removed node %u as a new node", id));
      }
    }
    for (const uint32_t id : cp.shared_nodes) {
      if (id >= n) {
        bad(Check::ProdRecord, cp.pnode,
            fmt("record lists nonexistent shared node %u", id));
      } else if (!rep.nodes[id].alive) {
        bad(Check::ProdRecord, cp.pnode,
            fmt("record lists removed node %u as a shared node", id));
      }
    }
  }

  return rep;
}

}  // namespace psme::analysis
