// Measured-cost report: joins a MatchProfiler snapshot against the network's
// production structure, and correlates it with the static cost linter.
//
// The profiler attributes time to (node id, agent id); productions re-enter
// the picture here, at reporting time, through the same backward slice walk
// the cost linter charges static cost with (analysis::production_slices), so
// a production's measured row sums exactly the node set its static row
// modeled. Shared nodes are charged to every sharer — same convention as
// lint_costs — which makes measured rows comparable to static rows but NOT
// disjoint across productions (the per-node table is the disjoint view).
//
// Three deterministic artifacts, same discipline as report_json:
//   * build_profile_report / profile_json — per-production, per-node and
//     per-agent measured tables for one snapshot (bench + demo output,
//     golden-file friendly: same snapshot, same bytes).
//   * parse_profile_json — reads profile_json output back (the subset this
//     module emits; not a general JSON parser) so network_lint can consume a
//     profile file produced by an earlier run.
//   * correlate / correlation_json — joins measured rows against the static
//     LintReport by production name and flags anomalies both directions:
//     "hot" (measured time exceeds the static worst-case bound — the linter
//     under-modeled this production) and "cold" (measured is a vanishing
//     fraction of a large static bound — the bound is too loose to rank
//     restructuring candidates). This is the oracle the CORGI join-ordering
//     work regresses against (ROADMAP).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_lint.h"
#include "obs/profiler.h"
#include "rete/add_production.h"
#include "rete/network.h"

namespace psme::analysis {

struct ProductionProfile {
  std::string name;
  uint32_t pnode = 0;
  uint32_t nodes = 0;         // slice size (nodes with any activity may be fewer)
  uint64_t activations = 0;   // summed over the slice
  uint64_t sampled = 0;
  uint64_t emits = 0;
  double est_us = 0;          // estimated measured time over the slice
};

struct NodeProfile {
  uint32_t node = 0;
  const char* type = "";      // node_type_name; "" for a tombstoned id
  uint64_t activations = 0;
  uint64_t emits = 0;
  double est_us = 0;
};

struct AgentProfile {
  uint32_t agent = 0;
  uint64_t activations = 0;
  double est_us = 0;
};

struct ProfileReport {
  uint32_t sample_shift = 0;
  uint64_t total_activations = 0;
  uint64_t total_sampled = 0;
  double total_us = 0;
  std::vector<ProductionProfile> productions;  // record order (= load order)
  std::vector<NodeProfile> nodes;              // id order, active nodes only
  std::vector<AgentProfile> agents;            // id order, active agents only

  /// Human table: the `top_k` hottest productions by est_us (ties broken by
  /// record order), then the per-agent rows when more than one agent ran.
  void print_table(size_t top_k = 10) const;
};

/// Builds the report from a quiescent snapshot. Records must come from the
/// same network the profiler observed (`Engine::all_records()` order).
ProfileReport build_profile_report(const Network& net,
                                   const std::vector<const AddRecord*>& records,
                                   const obs::ProfileSnapshot& snap);

/// Deterministic JSON: same report, same bytes, on every platform.
[[nodiscard]] std::string profile_json(const std::string& name,
                                       const ProfileReport& rep);

// ---- measured-vs-static correlation ---------------------------------------

/// One production row read back from a profile_json file.
struct ParsedProduction {
  std::string name;
  uint64_t activations = 0;
  double est_us = 0;
};

struct ParsedProfile {
  bool ok = false;
  std::string error;          // set when !ok
  std::string network;
  uint32_t sample_shift = 0;
  uint64_t total_activations = 0;
  double total_us = 0;
  std::vector<ParsedProduction> productions;
};

/// Parses profile_json output (the exact subset emitted above — quoted keys
/// in emission order; not a general JSON parser).
ParsedProfile parse_profile_json(const std::string& text);

struct CorrelationRow {
  std::string name;
  double static_us = 0;       // lint worst_case_cost_us
  uint32_t chain_depth = 0;
  uint64_t activations = 0;   // measured
  double measured_us = 0;     // measured estimate
  double ratio = 0;           // measured_us / static_us (0 when unmeasured)
  std::vector<std::string> flags;  // "hot", "cold", "unmeasured"
};

struct CorrelationReport {
  double hot_ratio = 1.0;
  double cold_ratio = 1e-4;
  uint32_t correlated = 0;    // rows with measured activations > 0
  uint32_t flagged = 0;       // rows with hot/cold flags (unmeasured excluded)
  std::vector<CorrelationRow> rows;  // lint order

  void print_table() const;
};

/// Joins lint rows against measured rows by production name. `hot_ratio`:
/// flag when measured_us > hot_ratio * static_us (the static bound was
/// violated). `cold_ratio`: flag when the production matched (activations
/// > 0) yet measured_us < cold_ratio * static_us (bound too loose to rank).
CorrelationReport correlate(const LintReport& lint, const ParsedProfile& prof,
                            double hot_ratio = 1.0, double cold_ratio = 1e-4);

/// Deterministic JSON of the join (network_lint --profile archives this).
[[nodiscard]] std::string correlation_json(const std::string& name,
                                           const CorrelationReport& rep);

}  // namespace psme::analysis
