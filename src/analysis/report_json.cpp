#include "analysis/report_json.h"

#include <cinttypes>
#include <cstdio>

namespace psme::analysis {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  out += buf;
}

void append_num(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string report_json(const std::string& name, const Network& net,
                        const VerifyReport& verify, const LintReport& lint) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"network\": ";
  append_escaped(out, name);
  out += ",\n  \"nodes\": ";
  append_num(out, static_cast<uint64_t>(net.node_count()));
  out += ",\n  \"productions\": ";
  append_num(out, static_cast<uint64_t>(lint.productions.size()));

  out += ",\n  \"verify\": {\n    \"ok\": ";
  out += verify.ok() ? "true" : "false";
  out += ",\n    \"max_depth\": ";
  append_num(out, static_cast<uint64_t>(verify.max_depth));
  out += ",\n    \"max_fan_out\": ";
  append_num(out, static_cast<uint64_t>(verify.max_fan_out));
  // lock_ranks_checked is deliberately NOT serialized: it depends on the
  // build configuration (PSME_LOCKDEP), and the report must stay
  // byte-identical across build types for the golden-file test.
  out += ",\n    \"violations\": [";
  for (size_t i = 0; i < verify.violations.size(); ++i) {
    const Violation& v = verify.violations[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"check\": ";
    append_escaped(out, check_name(v.check));
    out += ", \"node\": ";
    if (v.node == UINT32_MAX) {
      out += "null";
    } else {
      append_num(out, static_cast<uint64_t>(v.node));
    }
    out += ", \"message\": ";
    append_escaped(out, v.message);
    out += "}";
  }
  if (!verify.violations.empty()) out += "\n    ";
  out += "]\n  }";

  out += ",\n  \"lint\": {\n    \"budget\": {\"max_cost_us\": ";
  append_num(out, lint.budget.max_cost_us);
  out += ", \"max_depth\": ";
  append_num(out, static_cast<uint64_t>(lint.budget.max_depth));
  out += ", \"wme_bound\": ";
  append_num(out, static_cast<uint64_t>(lint.budget.wme_bound));
  out += ", \"token_cap\": ";
  append_num(out, lint.budget.token_cap);
  out += "},\n    \"flagged\": ";
  append_num(out, static_cast<uint64_t>(lint.flagged));
  out += ",\n    \"productions\": [";
  for (size_t i = 0; i < lint.productions.size(); ++i) {
    const ProductionCost& pc = lint.productions[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"name\": ";
    append_escaped(out, pc.name);
    out += ", \"nodes\": ";
    append_num(out, static_cast<uint64_t>(pc.nodes));
    out += ", \"two_input\": ";
    append_num(out, static_cast<uint64_t>(pc.two_input_nodes));
    out += ", \"shared\": ";
    append_num(out, static_cast<uint64_t>(pc.shared_nodes));
    out += ", \"chain_depth\": ";
    append_num(out, static_cast<uint64_t>(pc.chain_depth));
    out += ", \"chain_cost_us\": ";
    append_num(out, pc.chain_cost_us);
    out += ", \"worst_case_cost_us\": ";
    append_num(out, pc.worst_case_cost_us);
    out += ", \"flags\": [";
    for (size_t k = 0; k < pc.flags.size(); ++k) {
      if (k != 0) out += ", ";
      append_escaped(out, pc.flags[k]);
    }
    out += "]}";
  }
  if (!lint.productions.empty()) out += "\n    ";
  out += "]\n  }\n}\n";
  return out;
}

}  // namespace psme::analysis
