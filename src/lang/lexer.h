// Tokenizer for the OPS5-dialect production language.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psme {

enum class Tok : uint8_t {
  LParen,   // (
  RParen,   // )
  LBrace,   // {   (conjunctive test group / NCC body opener)
  RBrace,   // }
  Arrow,    // -->
  Dash,     // -   (CE negation)
  LDisj,    // <<
  RDisj,    // >>
  Hat,      // ^attr   (text() is the attribute name, without the ^)
  Variable, // <x>     (text() is the name including brackets)
  Sym,      // bare atom
  Int,
  Float,
  PredEq,   // =
  PredNe,   // <>
  PredLt,   // <
  PredLe,   // <=
  PredGt,   // >
  PredGe,   // >=
  PredSame, // <=>
  End,
};

struct LexToken {
  Tok kind = Tok::End;
  std::string text;     // symbol/attr/variable spelling
  int64_t int_val = 0;
  double float_val = 0;
  int line = 0;

  [[nodiscard]] bool is_pred() const {
    return kind >= Tok::PredEq && kind <= Tok::PredSame;
  }
};

/// Tokenizes `src`. Throws ParseError (see parser.h) on malformed input.
std::vector<LexToken> lex(std::string_view src);

}  // namespace psme
