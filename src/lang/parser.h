// Recursive-descent parser for the production language.
//
// Top-level forms:
//   (literalize class attr1 attr2 ...)   ; pin a class's slot layout
//   (p name CE+ --> action*)             ; a production
//
// See lang/ast.h for the shape of the result.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "base/symbol.h"
#include "lang/ast.h"
#include "lang/lexer.h"

namespace psme {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line)
      : std::runtime_error("parse error (line " + std::to_string(line) + "): " + what),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

class Parser {
 public:
  Parser(SymbolTable& syms, ClassSchemas& schemas, RhsArena& arena)
      : syms_(syms), schemas_(schemas), arena_(arena) {}

  /// Parses a whole source string: any number of literalize forms and
  /// productions. Returns the productions in source order.
  std::vector<Production> parse_file(std::string_view src);

  /// Parses exactly one production.
  Production parse_production(std::string_view src);

 private:
  struct Cursor {
    const std::vector<LexToken>* toks;
    size_t pos = 0;
    [[nodiscard]] const LexToken& peek() const { return (*toks)[pos]; }
    const LexToken& next() { return (*toks)[pos++]; }
  };

  Production parse_p(Cursor& c);
  void parse_literalize(Cursor& c);
  Condition parse_ce(Cursor& c, Production& p,
                     std::vector<std::string>& var_names);
  void parse_attr_tests(Cursor& c, Symbol cls, Condition& ce, Production& p,
                        std::vector<std::string>& var_names);
  void parse_one_test(Cursor& c, Symbol cls, int slot, Condition& ce,
                      Production& p, std::vector<std::string>& var_names);
  Action parse_action(Cursor& c, Production& p,
                      std::vector<std::string>& var_names);
  RhsValue parse_rhs_value(Cursor& c, Production& p,
                           std::vector<std::string>& var_names);
  uint32_t var_id(const std::string& name, Production& p,
                  std::vector<std::string>& var_names);
  Value const_value(const LexToken& t);

  void expect(Cursor& c, Tok kind, const char* what);

  SymbolTable& syms_;
  ClassSchemas& schemas_;
  RhsArena& arena_;
};

}  // namespace psme
