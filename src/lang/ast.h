// Abstract syntax for the OPS5-dialect production language used by both the
// OPS5-mode engine and the Soar layer.
//
// A production is a list of condition elements (CEs) followed by `-->` and a
// list of actions. Grammar highlights (see README for the full grammar):
//
//   (p find-block
//     (block ^name <b> ^color blue ^size { > 2 <s> })
//     -(block ^on <b>)                       ; negated CE
//     -{ (hand ^holding <b>) (hand ^free no) }  ; conjunctive negation (Soar)
//     -->
//     (make goal ^object <b>)
//     (modify 1 ^state graspable)
//     (remove 2)
//     (write grabbed <b>)
//     (bind <n> (genatom))
//     (halt))
//
// Attributes are resolved to dense per-class slot indices at parse time via
// ClassSchemas, so the match engine never touches attribute names.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/symbol.h"
#include "base/value.h"

namespace psme {

/// Comparison predicates of OPS5 attribute tests.
enum class Pred : uint8_t { Eq, Ne, Lt, Le, Gt, Ge, SameType };

[[nodiscard]] const char* pred_name(Pred p);

/// Applies `p` to (lhs, rhs). Ordering predicates on non-numbers follow OPS5:
/// symbols are only ever Eq/Ne-comparable; an ordering test on a symbol fails.
[[nodiscard]] bool eval_pred(Pred p, const Value& lhs, const Value& rhs);

/// Per-class attribute layout. Classes acquire slots on first use (implicit
/// literalize); an explicit `(literalize class a b c)` pins slot order.
class ClassSchemas {
 public:
  /// Slot of `attr` within `cls`, creating it if necessary.
  int slot(Symbol cls, Symbol attr);

  /// Slot of `attr` within `cls`, or -1 if the class/attr is unknown.
  [[nodiscard]] int find_slot(Symbol cls, Symbol attr) const;

  /// Number of slots currently defined for `cls` (0 if unknown class).
  [[nodiscard]] int arity(Symbol cls) const;

  /// Attribute name of `slot` in `cls`.
  [[nodiscard]] Symbol attr_name(Symbol cls, int slot) const;

  [[nodiscard]] std::vector<Symbol> classes() const;

 private:
  struct PerClass {
    std::vector<Symbol> attrs;                 // slot -> attr symbol
    std::map<Symbol, int> index;               // attr symbol -> slot
  };
  std::map<Symbol, PerClass> classes_;
};

/// A test of one wme slot against a constant.
struct ConstTest {
  int slot = 0;
  Pred pred = Pred::Eq;
  Value value;

  friend bool operator==(const ConstTest&, const ConstTest&) = default;
};

/// `<< a b c >>` — slot value must equal one of the options.
struct DisjTest {
  int slot = 0;
  std::vector<Value> options;

  friend bool operator==(const DisjTest&, const DisjTest&) = default;
};

/// A test of one wme slot against a production-scoped variable.
/// The first Eq occurrence of a variable in a positive CE is its binding site;
/// subsequent occurrences generate consistency tests.
struct VarTest {
  int slot = 0;
  Pred pred = Pred::Eq;
  uint32_t var = 0;  // dense per-production variable id

  friend bool operator==(const VarTest&, const VarTest&) = default;
};

/// One condition element.
struct Condition {
  Symbol cls;
  std::vector<ConstTest> consts;
  std::vector<DisjTest> disjs;
  std::vector<VarTest> vars;  // in source order

  bool negated = false;                // `-(...)`
  std::vector<Condition> ncc;          // non-empty => `-{ ... }` group; other
                                       // fields unused for the group itself

  [[nodiscard]] bool is_ncc() const { return !ncc.empty(); }
};

/// A value position on the RHS.
struct RhsValue {
  enum class Kind : uint8_t { Const, Var, Gensym, Compute };
  Kind kind = Kind::Const;
  Value constant;       // Const
  uint32_t var = 0;     // Var
  Symbol gensym_prefix; // Gensym: (genatom) / (genatom prefix)
  // Compute: lhs op rhs where operands are Const or Var (no nesting).
  struct Arith {
    RhsValue* lhs = nullptr;
    RhsValue* rhs = nullptr;
    char op = '+';  // + - * /
  } arith;
};

struct RhsAssignment {
  int slot = 0;
  RhsValue value;
};

struct Action {
  enum class Kind : uint8_t { Make, Modify, Remove, Write, Bind, Halt };
  Kind kind = Kind::Make;
  Symbol cls;                          // Make
  int ce_index = 0;                    // Modify/Remove: 1-based positive-CE index
  std::vector<RhsAssignment> sets;     // Make/Modify
  std::vector<RhsValue> write_args;    // Write
  uint32_t bind_var = 0;               // Bind
  RhsValue bind_value;                 // Bind
};

/// A parsed production.
struct Production {
  Symbol name;
  std::vector<Condition> conditions;
  std::vector<Action> actions;
  uint32_t num_vars = 0;                 // dense variable ids are [0, num_vars)
  std::vector<std::string> var_names;    // id -> source name (diagnostics)
  bool is_chunk = false;                 // built by the chunker at run time

  /// Number of positive (non-negated, non-NCC) CEs.
  [[nodiscard]] int positive_ce_count() const;

  /// Total CE count including CEs inside NCC groups (paper Table 5-1 counts).
  [[nodiscard]] int total_ce_count() const;
};

/// Arena that owns nested RhsValue nodes created by the parser/chunker.
/// (RhsValue::Arith holds raw pointers into this arena.)
class RhsArena {
 public:
  RhsValue* make() {
    pool_.push_back(std::make_unique<RhsValue>());
    return pool_.back().get();
  }

 private:
  std::vector<std::unique_ptr<RhsValue>> pool_;
};

}  // namespace psme
