#include "lang/parser.h"

namespace psme {
namespace {

Pred pred_of(Tok t) {
  switch (t) {
    case Tok::PredEq: return Pred::Eq;
    case Tok::PredNe: return Pred::Ne;
    case Tok::PredLt: return Pred::Lt;
    case Tok::PredLe: return Pred::Le;
    case Tok::PredGt: return Pred::Gt;
    case Tok::PredGe: return Pred::Ge;
    case Tok::PredSame: return Pred::SameType;
    default: throw std::logic_error("pred_of: not a predicate token");
  }
}

}  // namespace

void Parser::expect(Cursor& c, Tok kind, const char* what) {
  if (c.peek().kind != kind)
    throw ParseError(std::string("expected ") + what + ", got '" +
                         c.peek().text + "'",
                     c.peek().line);
  c.next();
}

Value Parser::const_value(const LexToken& t) {
  switch (t.kind) {
    case Tok::Sym: return Value(syms_.intern(t.text));
    case Tok::Int: return Value(t.int_val);
    case Tok::Float: return Value(t.float_val);
    default:
      throw ParseError("expected a constant, got '" + t.text + "'", t.line);
  }
}

uint32_t Parser::var_id(const std::string& name, Production& p,
                        std::vector<std::string>& var_names) {
  for (uint32_t i = 0; i < var_names.size(); ++i)
    if (var_names[i] == name) return i;
  var_names.push_back(name);
  p.num_vars = static_cast<uint32_t>(var_names.size());
  return p.num_vars - 1;
}

std::vector<Production> Parser::parse_file(std::string_view src) {
  const auto toks = lex(src);
  Cursor c{&toks};
  std::vector<Production> out;
  while (c.peek().kind != Tok::End) {
    expect(c, Tok::LParen, "'('");
    const LexToken& head = c.peek();
    if (head.kind != Tok::Sym)
      throw ParseError("expected 'p' or 'literalize'", head.line);
    if (head.text == "p") {
      c.next();
      out.push_back(parse_p(c));
    } else if (head.text == "literalize") {
      c.next();
      parse_literalize(c);
    } else {
      throw ParseError("unknown top-level form '" + head.text + "'", head.line);
    }
  }
  return out;
}

Production Parser::parse_production(std::string_view src) {
  auto all = parse_file(src);
  if (all.size() != 1)
    throw ParseError("expected exactly one production", 1);
  return std::move(all.front());
}

void Parser::parse_literalize(Cursor& c) {
  const LexToken& cls_tok = c.peek();
  if (cls_tok.kind != Tok::Sym)
    throw ParseError("literalize: expected class name", cls_tok.line);
  const Symbol cls = syms_.intern(c.next().text);
  while (c.peek().kind == Tok::Sym) {
    schemas_.slot(cls, syms_.intern(c.next().text));
  }
  expect(c, Tok::RParen, "')' after literalize");
}

Production Parser::parse_p(Cursor& c) {
  Production p;
  const LexToken& name_tok = c.peek();
  if (name_tok.kind != Tok::Sym)
    throw ParseError("expected production name", name_tok.line);
  p.name = syms_.intern(c.next().text);

  std::vector<std::string> var_names;
  // Conditions until -->
  while (c.peek().kind != Tok::Arrow) {
    if (c.peek().kind == Tok::End)
      throw ParseError("unterminated production '" +
                           std::string(syms_.name(p.name)) + "'",
                       c.peek().line);
    p.conditions.push_back(parse_ce(c, p, var_names));
  }
  c.next();  // -->
  if (p.conditions.empty())
    throw ParseError("production has no conditions", name_tok.line);
  if (p.conditions.front().negated || p.conditions.front().is_ncc())
    throw ParseError("first condition element must be positive", name_tok.line);

  while (c.peek().kind == Tok::LParen) {
    p.actions.push_back(parse_action(c, p, var_names));
  }
  expect(c, Tok::RParen, "')' closing production");
  p.var_names = std::move(var_names);
  return p;
}

Condition Parser::parse_ce(Cursor& c, Production& p,
                           std::vector<std::string>& var_names) {
  bool negated = false;
  if (c.peek().kind == Tok::Dash) {
    negated = true;
    c.next();
    if (c.peek().kind == Tok::LBrace) {
      // Conjunctive negation: -{ CE+ }
      c.next();
      Condition group;
      while (c.peek().kind != Tok::RBrace) {
        if (c.peek().kind == Tok::End)
          throw ParseError("unterminated '-{'", c.peek().line);
        Condition inner = parse_ce(c, p, var_names);
        if (inner.negated || inner.is_ncc())
          throw ParseError("conditions inside -{ } must be positive",
                           c.peek().line);
        group.ncc.push_back(std::move(inner));
      }
      c.next();  // }
      if (group.ncc.empty())
        throw ParseError("empty conjunctive negation", c.peek().line);
      return group;
    }
  }
  expect(c, Tok::LParen, "'(' starting a condition element");
  const LexToken& cls_tok = c.peek();
  if (cls_tok.kind != Tok::Sym)
    throw ParseError("expected class name in condition", cls_tok.line);
  Condition ce;
  ce.cls = syms_.intern(c.next().text);
  ce.negated = negated;
  parse_attr_tests(c, ce.cls, ce, p, var_names);
  expect(c, Tok::RParen, "')' closing condition");
  return ce;
}

void Parser::parse_attr_tests(Cursor& c, Symbol cls, Condition& ce,
                              Production& p,
                              std::vector<std::string>& var_names) {
  while (c.peek().kind == Tok::Hat) {
    const Symbol attr = syms_.intern(c.next().text);
    const int slot = schemas_.slot(cls, attr);
    if (c.peek().kind == Tok::LBrace) {
      c.next();
      while (c.peek().kind != Tok::RBrace) {
        if (c.peek().kind == Tok::End)
          throw ParseError("unterminated '{' test group", c.peek().line);
        parse_one_test(c, cls, slot, ce, p, var_names);
      }
      c.next();  // }
    } else {
      parse_one_test(c, cls, slot, ce, p, var_names);
    }
  }
}

void Parser::parse_one_test(Cursor& c, Symbol /*cls*/, int slot, Condition& ce,
                            Production& p,
                            std::vector<std::string>& var_names) {
  const LexToken& t = c.peek();
  if (t.is_pred()) {
    const Pred pr = pred_of(c.next().kind);
    const LexToken& operand = c.next();
    if (operand.kind == Tok::Variable) {
      ce.vars.push_back({slot, pr, var_id(operand.text, p, var_names)});
    } else {
      ce.consts.push_back({slot, pr, const_value(operand)});
    }
    return;
  }
  if (t.kind == Tok::Variable) {
    ce.vars.push_back({slot, Pred::Eq, var_id(c.next().text, p, var_names)});
    return;
  }
  if (t.kind == Tok::LDisj) {
    c.next();
    DisjTest d;
    d.slot = slot;
    while (c.peek().kind != Tok::RDisj) {
      if (c.peek().kind == Tok::End)
        throw ParseError("unterminated '<<'", c.peek().line);
      d.options.push_back(const_value(c.next()));
    }
    c.next();  // >>
    if (d.options.empty())
      throw ParseError("empty disjunction '<< >>'", t.line);
    ce.disjs.push_back(std::move(d));
    return;
  }
  ce.consts.push_back({slot, Pred::Eq, const_value(c.next())});
}

RhsValue Parser::parse_rhs_value(Cursor& c, Production& p,
                                 std::vector<std::string>& var_names) {
  RhsValue v;
  const LexToken& t = c.peek();
  if (t.kind == Tok::Variable) {
    v.kind = RhsValue::Kind::Var;
    v.var = var_id(c.next().text, p, var_names);
    return v;
  }
  if (t.kind == Tok::LParen) {
    c.next();
    const LexToken& head = c.peek();
    if (head.kind == Tok::Sym && head.text == "genatom") {
      c.next();
      v.kind = RhsValue::Kind::Gensym;
      if (c.peek().kind == Tok::Sym)
        v.gensym_prefix = syms_.intern(c.next().text);
      else
        v.gensym_prefix = syms_.intern("a");
      expect(c, Tok::RParen, "')' after genatom");
      return v;
    }
    if (head.kind == Tok::Sym && head.text == "compute") {
      c.next();
      v.kind = RhsValue::Kind::Compute;
      v.arith.lhs = arena_.make();
      *v.arith.lhs = parse_rhs_value(c, p, var_names);
      const LexToken& op = c.next();
      if (op.kind == Tok::Dash) {
        v.arith.op = '-';
      } else if (op.kind == Tok::Sym &&
                 (op.text == "+" || op.text == "-" || op.text == "*" ||
                  op.text == "/")) {
        v.arith.op = op.text[0];
      } else {
        throw ParseError("compute: expected + - * /, got '" + op.text + "'",
                         op.line);
      }
      v.arith.rhs = arena_.make();
      *v.arith.rhs = parse_rhs_value(c, p, var_names);
      expect(c, Tok::RParen, "')' after compute");
      return v;
    }
    throw ParseError("unknown RHS value form '" + head.text + "'", head.line);
  }
  v.kind = RhsValue::Kind::Const;
  v.constant = const_value(c.next());
  return v;
}

Action Parser::parse_action(Cursor& c, Production& p,
                            std::vector<std::string>& var_names) {
  expect(c, Tok::LParen, "'(' starting an action");
  const LexToken& head = c.peek();
  if (head.kind != Tok::Sym)
    throw ParseError("expected action keyword", head.line);
  Action a;
  const std::string kw = c.next().text;
  if (kw == "make") {
    a.kind = Action::Kind::Make;
    const LexToken& cls_tok = c.peek();
    if (cls_tok.kind != Tok::Sym)
      throw ParseError("make: expected class name", cls_tok.line);
    a.cls = syms_.intern(c.next().text);
    while (c.peek().kind == Tok::Hat) {
      const Symbol attr = syms_.intern(c.next().text);
      RhsAssignment asg;
      asg.slot = schemas_.slot(a.cls, attr);
      asg.value = parse_rhs_value(c, p, var_names);
      a.sets.push_back(std::move(asg));
    }
  } else if (kw == "modify") {
    a.kind = Action::Kind::Modify;
    const LexToken& idx = c.next();
    if (idx.kind != Tok::Int)
      throw ParseError("modify: expected CE index", idx.line);
    a.ce_index = static_cast<int>(idx.int_val);
    // Slots are resolved against the class of the referenced CE.
    const int pos = a.ce_index;
    int seen = 0;
    Symbol cls;
    for (const auto& ce : p.conditions) {
      if (!ce.negated && !ce.is_ncc() && ++seen == pos) {
        cls = ce.cls;
        break;
      }
    }
    if (!cls.valid())
      throw ParseError("modify: CE index out of range", idx.line);
    while (c.peek().kind == Tok::Hat) {
      const Symbol attr = syms_.intern(c.next().text);
      RhsAssignment asg;
      asg.slot = schemas_.slot(cls, attr);
      asg.value = parse_rhs_value(c, p, var_names);
      a.sets.push_back(std::move(asg));
    }
  } else if (kw == "remove") {
    a.kind = Action::Kind::Remove;
    const LexToken& idx = c.next();
    if (idx.kind != Tok::Int)
      throw ParseError("remove: expected CE index", idx.line);
    a.ce_index = static_cast<int>(idx.int_val);
  } else if (kw == "write") {
    a.kind = Action::Kind::Write;
    while (c.peek().kind != Tok::RParen) {
      if (c.peek().kind == Tok::End)
        throw ParseError("unterminated write", c.peek().line);
      a.write_args.push_back(parse_rhs_value(c, p, var_names));
    }
  } else if (kw == "bind") {
    a.kind = Action::Kind::Bind;
    const LexToken& var = c.peek();
    if (var.kind != Tok::Variable)
      throw ParseError("bind: expected variable", var.line);
    a.bind_var = var_id(c.next().text, p, var_names);
    a.bind_value = parse_rhs_value(c, p, var_names);
  } else if (kw == "halt") {
    a.kind = Action::Kind::Halt;
  } else {
    throw ParseError("unknown action '" + kw + "'", head.line);
  }
  expect(c, Tok::RParen, "')' closing action");
  return a;
}

}  // namespace psme
