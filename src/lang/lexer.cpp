#include "lang/lexer.h"

#include <cctype>
#include <charconv>

#include "lang/parser.h"

namespace psme {
namespace {

bool is_delim(char c) {
  return c == '(' || c == ')' || c == '{' || c == '}' || c == ';' ||
         std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// Classifies a bare atom into the fixed operator spellings, a variable, a
/// number, or a plain symbol.
LexToken classify(std::string_view a, int line) {
  LexToken t;
  t.line = line;
  t.text = std::string(a);
  if (a == "-->") { t.kind = Tok::Arrow; return t; }
  if (a == "-")   { t.kind = Tok::Dash; return t; }
  if (a == "<<")  { t.kind = Tok::LDisj; return t; }
  if (a == ">>")  { t.kind = Tok::RDisj; return t; }
  if (a == "=")   { t.kind = Tok::PredEq; return t; }
  if (a == "<>")  { t.kind = Tok::PredNe; return t; }
  if (a == "<=>") { t.kind = Tok::PredSame; return t; }
  if (a == "<=")  { t.kind = Tok::PredLe; return t; }
  if (a == ">=")  { t.kind = Tok::PredGe; return t; }
  if (a == "<")   { t.kind = Tok::PredLt; return t; }
  if (a == ">")   { t.kind = Tok::PredGt; return t; }

  if (a.size() >= 3 && a.front() == '<' && a.back() == '>') {
    t.kind = Tok::Variable;
    return t;
  }
  if (a.front() == '^') {
    if (a.size() < 2) throw ParseError("bare '^' is not an attribute", line);
    t.kind = Tok::Hat;
    t.text = std::string(a.substr(1));
    return t;
  }

  // Number?
  const char* begin = a.data();
  const char* end = a.data() + a.size();
  {
    int64_t iv = 0;
    auto [p, ec] = std::from_chars(begin, end, iv);
    if (ec == std::errc() && p == end) {
      t.kind = Tok::Int;
      t.int_val = iv;
      return t;
    }
  }
  {
    double dv = 0;
    auto [p, ec] = std::from_chars(begin, end, dv);
    if (ec == std::errc() && p == end) {
      t.kind = Tok::Float;
      t.float_val = dv;
      return t;
    }
  }
  t.kind = Tok::Sym;
  return t;
}

}  // namespace

std::vector<LexToken> lex(std::string_view src) {
  std::vector<LexToken> out;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) { ++i; continue; }
    if (c == ';') {  // comment to end of line
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '(') { out.push_back({Tok::LParen, "(", 0, 0, line}); ++i; continue; }
    if (c == ')') { out.push_back({Tok::RParen, ")", 0, 0, line}); ++i; continue; }
    if (c == '{') { out.push_back({Tok::LBrace, "{", 0, 0, line}); ++i; continue; }
    if (c == '}') { out.push_back({Tok::RBrace, "}", 0, 0, line}); ++i; continue; }
    size_t j = i;
    while (j < n && !is_delim(src[j])) ++j;
    out.push_back(classify(src.substr(i, j - i), line));
    i = j;
  }
  out.push_back({Tok::End, "", 0, 0, line});
  return out;
}

}  // namespace psme
