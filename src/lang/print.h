// Pretty-printer: Production AST back to parseable source text. Used to
// carry chunks from a during-chunking run into a fresh kernel (after-chunking
// runs) and for diagnostics.
#pragma once

#include <string>

#include "lang/ast.h"

namespace psme {

std::string production_to_text(const Production& p, const SymbolTable& syms,
                               const ClassSchemas& schemas);

}  // namespace psme
