#include "lang/ast.h"

namespace psme {

const char* pred_name(Pred p) {
  switch (p) {
    case Pred::Eq: return "=";
    case Pred::Ne: return "<>";
    case Pred::Lt: return "<";
    case Pred::Le: return "<=";
    case Pred::Gt: return ">";
    case Pred::Ge: return ">=";
    case Pred::SameType: return "<=>";
  }
  return "?";
}

bool eval_pred(Pred p, const Value& lhs, const Value& rhs) {
  switch (p) {
    case Pred::Eq:
      return lhs == rhs;
    case Pred::Ne:
      return lhs != rhs;
    case Pred::SameType:
      return lhs.same_type(rhs);
    default:
      break;
  }
  if (!lhs.is_num() || !rhs.is_num()) return false;
  const double a = lhs.num();
  const double b = rhs.num();
  switch (p) {
    case Pred::Lt: return a < b;
    case Pred::Le: return a <= b;
    case Pred::Gt: return a > b;
    case Pred::Ge: return a >= b;
    default: return false;
  }
}

int ClassSchemas::slot(Symbol cls, Symbol attr) {
  PerClass& pc = classes_[cls];
  auto it = pc.index.find(attr);
  if (it != pc.index.end()) return it->second;
  const int s = static_cast<int>(pc.attrs.size());
  pc.attrs.push_back(attr);
  pc.index.emplace(attr, s);
  return s;
}

int ClassSchemas::find_slot(Symbol cls, Symbol attr) const {
  auto c = classes_.find(cls);
  if (c == classes_.end()) return -1;
  auto it = c->second.index.find(attr);
  return it == c->second.index.end() ? -1 : it->second;
}

int ClassSchemas::arity(Symbol cls) const {
  auto c = classes_.find(cls);
  return c == classes_.end() ? 0 : static_cast<int>(c->second.attrs.size());
}

Symbol ClassSchemas::attr_name(Symbol cls, int slot) const {
  auto c = classes_.find(cls);
  if (c == classes_.end() || slot < 0 ||
      slot >= static_cast<int>(c->second.attrs.size()))
    return Symbol();
  return c->second.attrs[static_cast<size_t>(slot)];
}

std::vector<Symbol> ClassSchemas::classes() const {
  std::vector<Symbol> out;
  out.reserve(classes_.size());
  for (const auto& [cls, pc] : classes_) out.push_back(cls);
  return out;
}

int Production::positive_ce_count() const {
  int n = 0;
  for (const auto& c : conditions)
    if (!c.negated && !c.is_ncc()) ++n;
  return n;
}

namespace {
int count_all(const std::vector<Condition>& cs) {
  int n = 0;
  for (const auto& c : cs) {
    if (c.is_ncc()) {
      n += count_all(c.ncc);
    } else {
      ++n;
    }
  }
  return n;
}
}  // namespace

int Production::total_ce_count() const { return count_all(conditions); }

}  // namespace psme
