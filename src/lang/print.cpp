#include "lang/print.h"

#include <map>
#include <sstream>
#include <stdexcept>

namespace psme {
namespace {

struct Printer {
  const SymbolTable& syms;
  const ClassSchemas& schemas;
  const Production& p;
  std::ostringstream os;

  std::string var_name(uint32_t v) const {
    if (v < p.var_names.size() && !p.var_names[v].empty()) {
      return p.var_names[v];
    }
    return "<v" + std::to_string(v) + ">";
  }

  void value(const Value& v) { os << v.to_string(syms); }

  void attr(Symbol cls, int slot) {
    const Symbol a = schemas.attr_name(cls, slot);
    os << " ^" << (a.valid() ? std::string(syms.name(a))
                             : "slot" + std::to_string(slot));
  }

  void condition(const Condition& ce) {
    if (ce.is_ncc()) {
      os << "-{ ";
      for (const Condition& inner : ce.ncc) condition(inner);
      os << "} ";
      return;
    }
    if (ce.negated) os << '-';
    os << '(' << syms.name(ce.cls);
    // Group all tests by slot to emit { ... } groups where needed.
    std::map<int, std::vector<std::string>> by_slot;
    for (const auto& t : ce.consts) {
      std::ostringstream s;
      if (t.pred != Pred::Eq) s << pred_name(t.pred) << ' ';
      s << t.value.to_string(syms);
      by_slot[t.slot].push_back(s.str());
    }
    for (const auto& t : ce.disjs) {
      std::ostringstream s;
      s << "<< ";
      for (const Value& v : t.options) s << v.to_string(syms) << ' ';
      s << ">>";
      by_slot[t.slot].push_back(s.str());
    }
    for (const auto& t : ce.vars) {
      std::ostringstream s;
      if (t.pred != Pred::Eq) s << pred_name(t.pred) << ' ';
      s << var_name(t.var);
      by_slot[t.slot].push_back(s.str());
    }
    for (const auto& [slot, tests] : by_slot) {
      attr(ce.cls, slot);
      if (tests.size() == 1) {
        os << ' ' << tests.front();
      } else {
        os << " { ";
        for (const auto& t : tests) os << t << ' ';
        os << '}';
      }
    }
    os << ") ";
  }

  void rhs_value(const RhsValue& v) {
    switch (v.kind) {
      case RhsValue::Kind::Const:
        value(v.constant);
        break;
      case RhsValue::Kind::Var:
        os << var_name(v.var);
        break;
      case RhsValue::Kind::Gensym:
        os << "(genatom " << syms.name(v.gensym_prefix) << ')';
        break;
      case RhsValue::Kind::Compute:
        os << "(compute ";
        rhs_value(*v.arith.lhs);
        os << ' ' << v.arith.op << ' ';
        rhs_value(*v.arith.rhs);
        os << ')';
        break;
    }
  }

  void action(const Action& a) {
    switch (a.kind) {
      case Action::Kind::Make:
        os << "(make " << syms.name(a.cls);
        for (const auto& asg : a.sets) {
          attr(a.cls, asg.slot);
          os << ' ';
          rhs_value(asg.value);
        }
        os << ") ";
        break;
      case Action::Kind::Modify:
        os << "(modify " << a.ce_index;
        {
          // Resolve the class of the referenced positive CE for attr names.
          int seen = 0;
          Symbol cls;
          for (const auto& ce : p.conditions) {
            if (!ce.negated && !ce.is_ncc() && ++seen == a.ce_index) {
              cls = ce.cls;
              break;
            }
          }
          for (const auto& asg : a.sets) {
            attr(cls, asg.slot);
            os << ' ';
            rhs_value(asg.value);
          }
        }
        os << ") ";
        break;
      case Action::Kind::Remove:
        os << "(remove " << a.ce_index << ") ";
        break;
      case Action::Kind::Write:
        os << "(write";
        for (const auto& w : a.write_args) {
          os << ' ';
          rhs_value(w);
        }
        os << ") ";
        break;
      case Action::Kind::Bind:
        os << "(bind " << var_name(a.bind_var) << ' ';
        rhs_value(a.bind_value);
        os << ") ";
        break;
      case Action::Kind::Halt:
        os << "(halt) ";
        break;
    }
  }
};

}  // namespace

std::string production_to_text(const Production& p, const SymbolTable& syms,
                               const ClassSchemas& schemas) {
  Printer pr{syms, schemas, p, {}};
  pr.os << "(p " << syms.name(p.name) << "\n  ";
  for (const Condition& ce : p.conditions) pr.condition(ce);
  pr.os << "\n  -->\n  ";
  for (const Action& a : p.actions) pr.action(a);
  pr.os << ")\n";
  return pr.os.str();
}

}  // namespace psme
