// Task cost model: converts a recorded task's real work counters into
// virtual microseconds on the paper's machine (Encore Multimax, NS32032 at
// ~0.75 MIPS).
//
// Calibration target is Table 6-1: tasks average ~400 µs with a 200–800 µs
// range, constant-test activations at the cheap end (their cost is mostly
// task dispatch), two-input activations at the expensive end (memory probe
// plus consistency tests), and ~90% of total match time in the two-input
// nodes. bench_table_6_1 prints the resulting averages next to the paper's.
#pragma once

#include "engine/trace.h"

namespace psme {

struct CostModel {
  // Fixed cost per activation by node kind (dispatch + node body), in µs.
  double base_const = 170;
  double base_alpha = 230;
  double base_two = 260;    // join/not/bjoin
  double base_ncc = 260;    // ncc owner/partner
  double base_prod = 250;

  // Work-proportional costs, in µs.
  double per_test = 14;
  double per_probe = 26;
  double per_insert = 32;
  double per_emit = 36;

  [[nodiscard]] double task_cost(const TaskRecord& r) const;

  /// Sum of task costs: the virtual uniprocessor time of a trace.
  [[nodiscard]] double serial_us(const CycleTrace& t) const;
};

}  // namespace psme
