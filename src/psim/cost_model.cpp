#include "psim/cost_model.h"

namespace psme {

double CostModel::task_cost(const TaskRecord& r) const {
  double base = 0;
  switch (r.type) {
    case NodeType::Const:
    case NodeType::Disj:
    case NodeType::Intra:
      base = base_const;
      break;
    case NodeType::AlphaMem:
      base = base_alpha;
      break;
    case NodeType::Join:
    case NodeType::Not:
    case NodeType::BJoin:
      base = base_two;
      break;
    case NodeType::Ncc:
    case NodeType::NccPartner:
      base = base_ncc;
      break;
    case NodeType::Prod:
      base = base_prod;
      break;
  }
  return base + per_test * r.stats.tests + per_probe * r.stats.probes +
         per_insert * r.stats.inserts + per_emit * r.stats.emits;
}

double CostModel::serial_us(const CycleTrace& t) const {
  double s = 0;
  for (const TaskRecord& r : t.tasks) s += task_cost(r);
  return s;
}

}  // namespace psme
