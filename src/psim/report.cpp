#include "psim/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace psme {

std::vector<double> left_access_distribution(
    const std::vector<CycleTrace>& traces, size_t max_bin) {
  std::vector<uint64_t> tokens_at(max_bin + 1, 0);
  uint64_t total = 0;
  for (const CycleTrace& t : traces) {
    for (const auto& la : t.line_accesses) {
      if (la.left == 0) continue;
      const size_t bin = std::min<size_t>(la.left, max_bin);
      tokens_at[bin] += la.left;
      total += la.left;
    }
  }
  std::vector<double> pct(max_bin + 1, 0.0);
  if (total > 0) {
    for (size_t i = 1; i <= max_bin; ++i) {
      pct[i] = 100.0 * static_cast<double>(tokens_at[i]) /
               static_cast<double>(total);
    }
  }
  return pct;
}

std::vector<double> tasks_per_cycle_histogram(
    const std::vector<CycleTrace>& traces, uint32_t bin_width,
    uint32_t max_tasks) {
  const size_t n_bins = max_tasks / bin_width + 1;  // last bin = overflow
  std::vector<uint64_t> counts(n_bins, 0);
  for (const CycleTrace& t : traces) {
    const size_t bin =
        std::min<size_t>(t.task_count() / bin_width, n_bins - 1);
    ++counts[bin];
  }
  std::vector<double> pct(n_bins, 0.0);
  if (!traces.empty()) {
    for (size_t i = 0; i < n_bins; ++i) {
      pct[i] = 100.0 * static_cast<double>(counts[i]) /
               static_cast<double>(traces.size());
    }
  }
  return pct;
}

CriticalPath critical_path(const CycleTrace& trace, const CostModel& cost) {
  CriticalPath cp;
  const size_t n = trace.tasks.size();
  std::vector<double> path_cost(n, 0);
  std::vector<uint32_t> path_len(n, 0);
  // Tasks are recorded in execution order, so parents precede children.
  for (size_t i = 0; i < n; ++i) {
    const TaskRecord& r = trace.tasks[i];
    const double c = cost.task_cost(r);
    double base = 0;
    uint32_t len = 0;
    if (r.parent != UINT32_MAX) {
      base = path_cost[r.parent];
      len = path_len[r.parent];
    }
    path_cost[i] = base + c;
    path_len[i] = len + 1;
    if (path_cost[i] > cp.cost_us) {
      cp.cost_us = path_cost[i];
      cp.length = path_len[i];
    }
  }
  return cp;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print() const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += "  ";
      line += cell;
      line.append(width[c] - cell.size(), ' ');
    }
    std::puts(line.c_str());
  };
  print_row(headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += "  ";
    sep.append(width[c], '-');
  }
  std::puts(sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace psme
