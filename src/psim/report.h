// Trace analysis helpers shared by the benchmark harness: contention
// histograms (Figure 6-2), tasks-per-cycle histograms (Figures 6-11/6-12),
// critical-path extraction (long-chain analysis, Figures 6-6/6-8) and small
// fixed-width table printing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/trace.h"
#include "psim/cost_model.h"

namespace psme {

/// Figure 6-2: distribution of left-token bucket accesses. Entry k of the
/// result is the percentage of left tokens that accessed a bucket which saw
/// exactly k accesses within its cycle (index 0 unused).
std::vector<double> left_access_distribution(
    const std::vector<CycleTrace>& traces, size_t max_bin = 16);

/// Figures 6-11/6-12: histogram of tasks per cycle, bins of `bin_width`.
/// Returns percentages per bin; the last bin accumulates overflow.
std::vector<double> tasks_per_cycle_histogram(
    const std::vector<CycleTrace>& traces, uint32_t bin_width = 25,
    uint32_t max_tasks = 1200);

/// Longest cost-weighted dependency chain through the trace DAG, in µs, and
/// its length in tasks. Long chains bound the makespan regardless of P.
struct CriticalPath {
  double cost_us = 0;
  uint32_t length = 0;
};
CriticalPath critical_path(const CycleTrace& trace, const CostModel& cost);

/// Fixed-width text table, printed row by row to stdout.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psme
