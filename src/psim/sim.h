// Virtual-time multiprocessor: schedules a recorded task DAG on P virtual
// match processes with the paper's queueing policies and a spin-lock
// contention model.
//
// Mechanisms modeled (all from §6):
//   * task-queue lock: every push, pop and *failed pop* (lock, see empty,
//     unlock) holds the queue lock exclusively; waiting time is converted to
//     spins (spins/task, Figure 6-3) and the failed-pop traffic of idle
//     processes is what bends the 13-process curve down (Figure 6-1);
//   * single vs. per-process queues with cyclic scanning (Figures 6-1/6-4);
//   * dependency chains: a child activation becomes available only when its
//     parent finishes, so long chains bound the cycle makespan no matter how
//     many processors are available (Figures 6-5/6-6);
//   * per-cycle overhead: processes must notice quiescence and report to the
//     control process, which penalizes very small cycles;
//   * hash-bucket line locks (§6.1/Figure 6-2): the memory insert+probe part
//     of a two-input activation holds its line's lock exclusively, so
//     activations hitting the same bucket line serialize. The critical
//     section length comes from each task's real probe/insert counters.
//
// The simulator is deterministic: same trace + options => same result.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/trace.h"
#include "psim/cost_model.h"

namespace psme {

/// Single/Multi are the paper's configurations; Steal models the modern
/// work-stealing scheduler (par/ws_deque.h): per-process deques, owner
/// push/pop and steals costing a CAS rather than a lock critical section,
/// and no lock-and-look cost for finding a deque empty.
enum class QueuePolicy : uint8_t { Single, Multi, Steal };

struct SimOptions {
  uint32_t processors = 8;
  QueuePolicy policy = QueuePolicy::Multi;
  CostModel cost;

  double queue_hold_us = 52;   // lock hold for one push/pop critical section
  double empty_hold_us = 26;   // lock hold for a failed pop (lock-and-look)
  double steal_hold_us = 6;    // Steal: one owner op or successful steal CAS
  double steal_fail_us = 2;    // Steal: an empty/lost-race steal attempt
  double spin_us = 25;         // one test-and-test-and-set iteration
  double poll_interval_us = 45;  // idle back-off between scan rounds
  double cycle_overhead_us = 450;  // quiescence detection + control handoff
  double per_proc_overhead_us = 75;  // each process checks queues + reports
  bool model_line_locks = true;  // hash-bucket line serialization

  [[nodiscard]] double overhead_at(uint32_t procs) const {
    return cycle_overhead_us + per_proc_overhead_us * procs;
  }
};

struct SimCycleResult {
  double serial_us = 0;    // uniprocessor virtual time of the cycle
  double makespan_us = 0;  // parallel completion time incl. cycle overhead
  uint64_t tasks = 0;
  uint64_t spins = 0;          // queue-lock spins
  uint64_t bucket_spins = 0;   // hash-line lock spins
  uint64_t failed_pops = 0;
  uint64_t pops = 0;

  [[nodiscard]] double speedup() const {
    return makespan_us > 0 ? serial_us / makespan_us : 1.0;
  }
  [[nodiscard]] double spins_per_task() const {
    return tasks > 0 ? static_cast<double>(spins) / static_cast<double>(tasks)
                     : 0.0;
  }

  /// (time_us, tasks-in-system) samples: queued + executing (Figure 6-6).
  std::vector<std::pair<double, uint32_t>> timeline;
};

/// Simulates one cycle's task DAG. `record_timeline` retains the
/// tasks-in-system samples (costs memory; off by default).
SimCycleResult simulate_cycle(const CycleTrace& trace, const SimOptions& opts,
                              bool record_timeline = false);

struct SimRunResult {
  double serial_us = 0;
  double parallel_us = 0;
  uint64_t tasks = 0;
  uint64_t spins = 0;
  uint64_t bucket_spins = 0;
  uint64_t failed_pops = 0;
  uint64_t pops = 0;
  std::vector<SimCycleResult> cycles;  // filled when keep_cycles

  [[nodiscard]] double speedup() const {
    return parallel_us > 0 ? serial_us / parallel_us : 1.0;
  }
  [[nodiscard]] double spins_per_task() const {
    return tasks > 0 ? static_cast<double>(spins) / static_cast<double>(tasks)
                     : 0.0;
  }
};

/// Simulates a whole run (sequence of synchronous cycles).
SimRunResult simulate_run(const std::vector<CycleTrace>& traces,
                          const SimOptions& opts, bool keep_cycles = false);

}  // namespace psme
