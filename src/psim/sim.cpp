#include "psim/sim.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

namespace psme {
namespace {

struct HeapItem {
  double push_time;
  uint32_t task;
  friend bool operator>(const HeapItem& a, const HeapItem& b) {
    if (a.push_time != b.push_time) return a.push_time > b.push_time;
    return a.task > b.task;  // deterministic tie-break
  }
};

using TaskHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

struct Proc {
  double t = 0;
  enum class Phase : uint8_t { TryPop, Push } phase = Phase::TryPop;
  uint32_t scan_k = 0;
  uint32_t task = 0;
  uint32_t child_i = 0;
};

}  // namespace

SimCycleResult simulate_cycle(const CycleTrace& trace, const SimOptions& opts,
                              bool record_timeline) {
  SimCycleResult res;
  const uint32_t n = static_cast<uint32_t>(trace.tasks.size());
  res.tasks = n;

  // Costs, bucket-line critical sections, and children lists.
  std::vector<double> cost(n);
  std::vector<double> line_hold(n, 0);  // critical-section length
  std::vector<uint32_t> line_of(n, UINT32_MAX);
  std::vector<std::vector<uint32_t>> children(n);
  std::vector<uint32_t> seeds;
  double serial_cost = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const TaskRecord& r = trace.tasks[i];
    cost[i] = opts.cost.task_cost(r);
    if (opts.model_line_locks && r.stats.touched_line) {
      line_of[i] = r.stats.line;
      line_hold[i] =
          std::min(cost[i], opts.cost.per_probe * r.stats.probes +
                                opts.cost.per_insert * r.stats.inserts);
    }
    serial_cost += cost[i];
    const uint32_t p = r.parent;
    if (p == UINT32_MAX) {
      seeds.push_back(i);
    } else {
      children[p].push_back(i);
    }
  }
  // Per-policy queue-operation costs: the locked policies pay a spinlock
  // critical section per push/pop/failed-pop; the work-stealing policy pays
  // a CAS, and a failed steal is a couple of loads.
  const bool stealing = opts.policy == QueuePolicy::Steal;
  const double op_hold = stealing ? opts.steal_hold_us : opts.queue_hold_us;
  const double miss_hold = stealing ? opts.steal_fail_us : opts.empty_hold_us;

  // Uniprocessor reference: all work serialized, plus uncontended queue
  // traffic (each task is pushed once and popped once) and one cycle
  // overhead.
  res.serial_us = serial_cost + 2.0 * op_hold * static_cast<double>(n) +
                  opts.overhead_at(1);
  if (n == 0) {
    res.makespan_us = opts.overhead_at(opts.processors);
    return res;
  }

  const uint32_t P = std::max<uint32_t>(1, opts.processors);
  const uint32_t nq = opts.policy == QueuePolicy::Single ? 1 : P;
  std::vector<TaskHeap> queues(nq);
  std::vector<double> lock_free(nq, 0.0);
  std::vector<Proc> procs(P);
  std::unordered_map<uint32_t, double> line_free;  // hash-line lock timeline
  double bucket_spin_us = 0;

  std::vector<std::pair<double, int>> tl_events;  // (+1 push, -1 completion)

  // Seeds land in the queues at time zero, round robin.
  for (uint32_t i = 0; i < seeds.size(); ++i) {
    queues[i % nq].push(HeapItem{0.0, seeds[i]});
    if (record_timeline) tl_events.emplace_back(0.0, +1);
  }

  double total_spin_us = 0;
  uint64_t completed = 0;
  double last_completion = 0;

  auto acquire = [&](uint32_t q, double t, double hold) -> double {
    const double start = std::max(t, lock_free[q]);
    total_spin_us += start - t;
    lock_free[q] = start + hold;
    return start + hold;
  };

  while (completed < n) {
    // Step the earliest processor (deterministic tie-break by index).
    uint32_t pi = 0;
    for (uint32_t i = 1; i < P; ++i) {
      if (procs[i].t < procs[pi].t) pi = i;
    }
    Proc& pr = procs[pi];

    if (pr.phase == Proc::Phase::Push) {
      const uint32_t child = children[pr.task][pr.child_i];
      const uint32_t q = opts.policy == QueuePolicy::Single ? 0 : pi;
      pr.t = acquire(q, pr.t, op_hold);
      queues[q].push(HeapItem{pr.t, child});
      if (record_timeline) tl_events.emplace_back(pr.t, +1);
      if (++pr.child_i >= children[pr.task].size()) {
        pr.phase = Proc::Phase::TryPop;
        pr.scan_k = 0;
      }
      continue;
    }

    // TryPop: look at one queue.
    const uint32_t q = opts.policy == QueuePolicy::Single
                           ? 0
                           : (pi + pr.scan_k) % nq;
    const double start = std::max(pr.t, lock_free[q]);
    const bool have =
        !queues[q].empty() && queues[q].top().push_time <= start;
    if (have) {
      total_spin_us += start - pr.t;
      lock_free[q] = start + op_hold;
      ++res.pops;
      const uint32_t task = queues[q].top().task;
      queues[q].pop();
      // Execute: [pre | line-locked critical section | post]. Activations
      // that hash to the same bucket line serialize on the line lock for
      // their insert+probe portion (P > 1 only; the uniprocessor never
      // waits on itself).
      double exec_end;
      const double exec_start = start + op_hold;
      if (P > 1 && line_of[task] != UINT32_MAX && line_hold[task] > 0) {
        const double pre = (cost[task] - line_hold[task]) * 0.5;
        double& lf = line_free[line_of[task]];
        const double want = exec_start + pre;
        const double acq = std::max(want, lf);
        bucket_spin_us += acq - want;
        lf = acq + line_hold[task];
        exec_end = acq + line_hold[task] + (cost[task] - line_hold[task]) - pre;
      } else {
        exec_end = exec_start + cost[task];
      }
      pr.t = exec_end;
      ++completed;
      last_completion = std::max(last_completion, pr.t);
      if (record_timeline) tl_events.emplace_back(pr.t, -1);
      if (!children[task].empty()) {
        pr.phase = Proc::Phase::Push;
        pr.task = task;
        pr.child_i = 0;
      } else {
        pr.scan_k = 0;
      }
    } else if (stealing) {
      // Failed steal: a couple of loads — nothing is locked, the victim's
      // queue timeline is untouched, and no other process is delayed.
      pr.t += miss_hold;
      ++res.failed_pops;
      const uint32_t scan_len = nq;
      if (++pr.scan_k >= scan_len) {
        pr.scan_k = 0;
        pr.t += opts.poll_interval_us;  // spin-then-park backoff
      }
    } else {
      // Failed pop: lock, see empty (or only not-yet-pushed tasks), unlock.
      total_spin_us += start - pr.t;
      lock_free[q] = start + miss_hold;
      pr.t = start + miss_hold;
      ++res.failed_pops;
      const uint32_t scan_len = opts.policy == QueuePolicy::Single ? 1 : nq;
      if (++pr.scan_k >= scan_len) {
        pr.scan_k = 0;
        pr.t += opts.poll_interval_us;  // back off before the next round
      }
    }
  }

  res.makespan_us = last_completion + opts.overhead_at(opts.processors);
  res.spins = static_cast<uint64_t>(total_spin_us / opts.spin_us);
  res.bucket_spins = static_cast<uint64_t>(bucket_spin_us / opts.spin_us);

  if (record_timeline) {
    std::sort(tl_events.begin(), tl_events.end());
    int32_t level = 0;
    res.timeline.reserve(tl_events.size());
    for (const auto& [t, d] : tl_events) {
      level += d;
      res.timeline.emplace_back(t, static_cast<uint32_t>(std::max(0, level)));
    }
  }
  return res;
}

SimRunResult simulate_run(const std::vector<CycleTrace>& traces,
                          const SimOptions& opts, bool keep_cycles) {
  SimRunResult run;
  for (const CycleTrace& t : traces) {
    SimCycleResult c = simulate_cycle(t, opts);
    run.serial_us += c.serial_us;
    run.parallel_us += c.makespan_us;
    run.tasks += c.tasks;
    run.spins += c.spins;
    run.bucket_spins += c.bucket_spins;
    run.failed_pops += c.failed_pops;
    run.pops += c.pops;
    if (keep_cycles) run.cycles.push_back(std::move(c));
  }
  return run;
}

}  // namespace psme
