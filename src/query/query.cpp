#include "query/query.h"

#include <algorithm>
#include <stdexcept>

#include "lang/parser.h"

namespace psme {

namespace {

/// The transient production's text: the cue as the LHS, `(halt)` as the RHS.
/// (halt) is deliberate — it is the one action that stores nothing in the
/// shared RhsArena, so query churn never grows the arena the ASTs point
/// into. The name carries the agent id and a sequence number: query
/// productions from different sessions over one shared network must not
/// collide in diagnostics.
std::string query_text(uint32_t agent, uint64_t seq, std::string_view cue) {
  std::string s = "(p query-a" + std::to_string(agent) + "-" +
                  std::to_string(seq) + " ";
  s.append(cue);
  s += "\n --> (halt))";
  return s;
}

}  // namespace

QuerySession::~QuerySession() {
  if (prod_ == nullptr) return;
  try {
    engine_.remove_production_runtime(prod_);
  } catch (...) {
    // Destructor teardown is best-effort; the engine may be gone first.
  }
}

Engine::RuntimeAddResult QuerySession::begin(std::string_view cue_ces) {
  if (prod_ != nullptr) {
    throw std::logic_error("QuerySession::begin: a cue is already active");
  }
  // The add/remove machinery is quiescent-only; flush this agent's pending
  // wme changes so the query evaluates against settled working memory.
  if (engine_.has_pending_changes()) engine_.match();

  Parser parser(engine_.syms(), engine_.schemas(), engine_.network().ast_arena());
  Production ast =
      parser.parse_production(query_text(engine_.agent_id(), seq_++, cue_ces));
  for (const Condition& ce : ast.conditions) {
    if (ce.negated || ce.is_ncc()) {
      throw std::invalid_argument(
          "QuerySession: cues are positive CEs only (a cue describes what "
          "should be present; negation has no retrieval-depth semantics)");
    }
  }
  // The §5.2 update this triggers IS the evaluation: phases A/B fill the
  // cue's alpha and right memories from WM, phase C replays the share
  // point — partial instantiations land in the beta memories, full ones in
  // the conflict set.
  Engine::RuntimeAddResult res = engine_.add_production_runtime(std::move(ast));
  prod_ = res.prod;
  return res;
}

uint32_t QuerySession::positive_ces() const {
  if (prod_ == nullptr) return 0;
  return static_cast<uint32_t>(prod_->positive_ce_count());
}

uint32_t QuerySession::score() const {
  if (prod_ == nullptr) return 0;
  const CompiledProduction& cp = engine_.record(prod_).compiled;
  const Network& net = engine_.network().net();

  // Full instantiation in the conflict set: every CE matched.
  for (const Instantiation* inst : engine_.cs().all()) {
    if (inst->pnode != nullptr && inst->pnode->prod == prod_) {
      return positive_ces();
    }
  }

  // Otherwise: deepest join in the cue's chain whose left memory holds a
  // live token. A token waiting at a join's left input means left_arity
  // leading CEs are jointly satisfied. Find the P-node's feeder by scanning
  // the compile record's nodes for the {pnode, Left} splice, then walk
  // left_pred toward the alpha network (cues are positive-only, so the
  // chain is pure Join).
  const Jumptable& jt = net.jumptable();
  const Node* feeder = nullptr;
  auto feeds_pnode = [&](uint32_t id) {
    const Node* node = net.node(id);
    if (node == nullptr) return false;
    for (const SuccessorRef& ref : jt.peek(node->jt_slot)) {
      if (ref.node == cp.pnode && ref.side == Side::Left) return true;
    }
    return false;
  };
  for (const uint32_t id : cp.new_nodes) {
    if (feeds_pnode(id)) { feeder = net.node(id); break; }
  }
  if (feeder == nullptr) {
    for (const uint32_t id : cp.shared_nodes) {
      if (feeds_pnode(id)) { feeder = net.node(id); break; }
    }
  }

  const MatchState& ms = engine_.state();
  const Node* cur = feeder;
  while (cur != nullptr &&
         (cur->type == NodeType::Join || cur->type == NodeType::Not)) {
    const auto& join = static_cast<const TwoInputNode&>(*cur);
    uint32_t live = 0;
    ms.tables.for_each_left_of(join.id, [&](const LeftEntry& e) {
      if (e.anti == 0) ++live;
    });
    if (live > 0) return join.left_arity;
    cur = net.node(join.left_pred);
  }

  // No join holds a token (or the cue has a single CE): the first CE's
  // alpha memory decides between "one CE matches something" and nothing.
  if (cur != nullptr && cur->type == NodeType::AlphaMem) {
    const auto& am = static_cast<const AlphaMemNode&>(*cur);
    if (am.mem_index < ms.alpha_count()) {
      const AlphaMemState& ams = ms.alpha(am.mem_index);
      SpinGuard g(ams.lock);
      if (ams.wmes.size() > 0) return 1;
    }
  }
  return 0;
}

std::vector<uint32_t> QuerySession::ce_join_nodes() const {
  std::vector<uint32_t> out;
  if (prod_ == nullptr) return out;
  const CompiledProduction& cp = engine_.record(prod_).compiled;
  const Network& net = engine_.network().net();
  out.assign(positive_ces(), UINT32_MAX);

  // Same feeder hunt as score(): the node splicing into {pnode, Left}.
  const Jumptable& jt = net.jumptable();
  const Node* feeder = nullptr;
  auto feeds_pnode = [&](uint32_t id) {
    const Node* node = net.node(id);
    if (node == nullptr) return false;
    for (const SuccessorRef& ref : jt.peek(node->jt_slot)) {
      if (ref.node == cp.pnode && ref.side == Side::Left) return true;
    }
    return false;
  };
  for (const uint32_t id : cp.new_nodes) {
    if (feeds_pnode(id)) { feeder = net.node(id); break; }
  }
  if (feeder == nullptr) {
    for (const uint32_t id : cp.shared_nodes) {
      if (feeds_pnode(id)) { feeder = net.node(id); break; }
    }
  }

  // Walk the pure-Join chain toward the alpha network: the join that takes
  // an i-wme left token handles CE i; the chain bottoms out at CE 0's alpha
  // memory (also the whole cue, for a single-CE cue).
  const Node* cur = feeder;
  while (cur != nullptr &&
         (cur->type == NodeType::Join || cur->type == NodeType::Not)) {
    const auto& join = static_cast<const TwoInputNode&>(*cur);
    if (join.left_arity < out.size()) out[join.left_arity] = join.id;
    cur = net.node(join.left_pred);
  }
  if (cur != nullptr && cur->type == NodeType::AlphaMem && !out.empty()) {
    out[0] = cur->id;
  }
  return out;
}

std::vector<QueryMatch> QuerySession::matches() const {
  std::vector<QueryMatch> out;
  if (prod_ == nullptr) return out;
  for (const Instantiation* inst : engine_.cs().all()) {
    if (inst->pnode == nullptr || inst->pnode->prod != prod_) continue;
    QueryMatch m;
    m.wmes.reserve(inst->token.size());
    for (const Wme* w : inst->token) m.wmes.push_back(w);
    out.push_back(std::move(m));
  }
  // CS arrival order is schedule-dependent under the threaded match; order
  // by wme timetags so query results are worker-count-invariant.
  std::sort(out.begin(), out.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              if (a.wmes.size() != b.wmes.size()) {
                return a.wmes.size() < b.wmes.size();
              }
              for (size_t i = 0; i < a.wmes.size(); ++i) {
                if (a.wmes[i]->timetag != b.wmes[i]->timetag) {
                  return a.wmes[i]->timetag < b.wmes[i]->timetag;
                }
              }
              return false;
            });
  return out;
}

Engine::RuntimeRemoveResult QuerySession::end() {
  if (prod_ == nullptr) {
    throw std::logic_error("QuerySession::end: no cue is active");
  }
  const Production* p = prod_;
  prod_ = nullptr;
  return engine_.remove_production_runtime(p);
}

QueryResult QuerySession::ask(std::string_view cue_ces) {
  QueryResult r;
  r.add = begin(cue_ces);
  r.positive_ces = positive_ces();
  r.score = score();
  r.matches = matches();
  r.remove = end();
  return r;
}

}  // namespace psme
