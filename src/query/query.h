// Transient-query workload: epmem-style cue matching over the live Rete.
//
// A cue is a partial working-memory graph written as positive condition
// elements — "(goal ^state <s>) (block ^on <s> ^color red)". Instead of a
// bespoke graph matcher, the cue is compiled into a TEMPORARY production
// through the run-time addition path: the §5.2 three-phase state update that
// brings the new production's memories up to date IS the query evaluation —
// by the time add_production_runtime returns, every partial instantiation of
// the cue sits in the agent's beta memories and every full instantiation in
// its conflict set. The session then reads two things out of that state:
//
//   * matches: the full instantiations (each one a graph match — the wmes
//     bound to the cue's CEs, in CE order), harvested from the conflict set;
//   * score: the best partial-instantiation depth — how many leading
//     positive CEs some combination of wmes satisfies. Full match scores
//     positive_ce_count; otherwise the deepest join whose left memory holds
//     a live token gives its arity; otherwise 1 if the first CE's alpha
//     memory is non-empty; else 0. (This is the graded retrieval signal an
//     epmem-style "best partial match" needs.)
//
// end() tears the transient production back out through the removal path
// (Engine::remove_production_runtime) — unsplice at a COW publish, drain,
// reclaim — leaving network and agent state exactly as before begin(). The
// add/match/remove cycle is the churn workload bench_query measures and
// query_churn_test soaks; it is the hot-path stress test for removal.
//
// Cue restrictions: positive CEs only (no `-(...)`, no `-{...}` groups) —
// a cue describes what should be PRESENT in the graph; negation has no
// retrieval-depth semantics. Violations throw std::invalid_argument.
//
// Quiescent-only, like the add/remove machinery it rides: never run a query
// while a match cycle is in flight. begin() flushes the engine's own pending
// wme changes first so the query sees a settled working memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"

namespace psme {

/// One full instantiation of a cue: the matched wmes, in cue-CE order.
struct QueryMatch {
  std::vector<const Wme*> wmes;
};

struct QueryResult {
  uint32_t score = 0;         // best partial-instantiation depth, in CEs
  uint32_t positive_ces = 0;  // cue size; score == positive_ces on full match
  std::vector<QueryMatch> matches;  // full graph matches (empty if partial)

  /// Cost of installing / tearing down the cue (the churn numbers
  /// bench_query aggregates).
  Engine::RuntimeAddResult add;
  Engine::RuntimeRemoveResult remove;

  [[nodiscard]] bool full() const {
    return positive_ces > 0 && score == positive_ces;
  }
};

/// A query session against one agent's engine. Reusable: each ask() runs a
/// complete add/score/remove cycle; begin()/score()/matches()/end() expose
/// the phases separately so the bench can time them individually.
class QuerySession {
 public:
  explicit QuerySession(Engine& e) : engine_(e) {}
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;
  ~QuerySession();

  /// Compiles `cue_ces` (one or more positive CEs, production-LHS syntax)
  /// into a transient production and runs the §5.2 update — the evaluation.
  /// One cue may be active per session at a time (end() the previous first).
  Engine::RuntimeAddResult begin(std::string_view cue_ces);

  /// Best partial-instantiation depth of the active cue (see file comment).
  [[nodiscard]] uint32_t score() const;

  /// Full instantiations of the active cue, deterministic order (the
  /// conflict set's content key).
  [[nodiscard]] std::vector<QueryMatch> matches() const;

  /// Number of positive CEs in the active cue.
  [[nodiscard]] uint32_t positive_ces() const;

  /// Per-CE measured-cost anchors for the active cue: entry i names the
  /// network node that prices CE i against the match profiler — the join
  /// whose left arity is i for i >= 1 (its activations/time are the cost of
  /// extending an i-CE prefix by CE i), and the first CE's alpha memory for
  /// i == 0. Entries are UINT32_MAX when unresolvable. A cue prefix shared
  /// with a resident production resolves to the SHARED node, whose profiler
  /// cell aggregates both tenants — snapshot-diff around the query isolates
  /// the cue's own contribution (bench_query does). Empty without an active
  /// cue.
  [[nodiscard]] std::vector<uint32_t> ce_join_nodes() const;

  /// Removes the transient production, restoring the pre-begin network.
  Engine::RuntimeRemoveResult end();

  [[nodiscard]] bool active() const { return prod_ != nullptr; }

  /// The whole cycle: begin + score/matches + end.
  QueryResult ask(std::string_view cue_ces);

 private:
  Engine& engine_;
  const Production* prod_ = nullptr;  // the active transient production
  uint64_t seq_ = 0;                  // uniquifies query production names
};

}  // namespace psme
