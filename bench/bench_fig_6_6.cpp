// Figure 6-6: Eight-puzzle — tasks in the system (queued + executing) over
// time, for a large cycle with low speedup, 11 match processes.
//
// Paper: early in the cycle there is plenty of work (peak ~140 tasks around
// t=100), but past ~200 time units the trace degenerates into a long tail
// where only a few dependent tasks exist at any moment — a long chain that
// more processors cannot shorten.
#include <algorithm>

#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header(
      "Figure 6-6",
      "Eight-puzzle: tasks-in-system over time for a low-speedup cycle");
  const TaskData d = collect("eight-puzzle");

  // Find a large cycle (>=200 tasks) with the lowest 11-process speedup.
  SimOptions opts;
  opts.policy = QueuePolicy::Multi;
  opts.processors = 11;
  const CycleTrace* chosen = nullptr;
  double worst = 1e18;
  for (const auto& t : d.nolearn.stats.traces) {
    if (t.task_count() < 200) continue;
    const auto r = simulate_cycle(t, opts);
    if (r.speedup() < worst) {
      worst = r.speedup();
      chosen = &t;
    }
  }
  if (chosen == nullptr) {
    std::printf("no cycle with >=200 tasks found\n");
    return 1;
  }

  const auto r = simulate_cycle(*chosen, opts, /*record_timeline=*/true);
  std::printf("Chosen cycle: %zu tasks, speedup %.2f at 11 procs "
              "(paper's example: ~300 tasks, ~3-fold)\n\n",
              chosen->task_count(), r.speedup());

  // Print the timeline downsampled to 100-µs buckets, as an ASCII profile
  // (the paper's plot is tasks-in-system vs time in 100 µs units).
  const double bucket_us = 100.0;
  std::vector<uint32_t> profile;
  for (const auto& [time, level] : r.timeline) {
    const size_t bucket = static_cast<size_t>(time / bucket_us);
    if (bucket >= profile.size()) profile.resize(bucket + 1, 0);
    profile[bucket] = std::max(profile[bucket], level);
  }
  std::printf("time(100µs)  tasks-in-system\n");
  for (size_t i = 0; i < profile.size(); ++i) {
    if (i > 0 && i + 1 < profile.size() && profile[i] == profile[i - 1] &&
        profile[i] == profile[i + 1]) {
      continue;  // compress runs
    }
    const uint32_t bar = std::min<uint32_t>(profile[i], 60);
    std::printf("%8zu     %4u %s\n", i, profile[i],
                std::string(bar, '#').c_str());
  }

  // Shape checks: an early hump, then a long low tail.
  uint32_t peak = 0;
  size_t peak_at = 0;
  for (size_t i = 0; i < profile.size(); ++i) {
    if (profile[i] > peak) {
      peak = profile[i];
      peak_at = i;
    }
  }
  size_t tail = 0;
  for (size_t i = peak_at; i < profile.size(); ++i) {
    if (profile[i] <= 4) ++tail;
  }
  std::printf("\nPeak %u tasks at t=%zu; %zu/%zu buckets after the peak hold "
              "<=4 tasks (the long-chain tail)\n",
              peak, peak_at, tail, profile.size() - peak_at);
  return 0;
}
