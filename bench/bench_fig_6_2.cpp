// Figure 6-2: Contention for the hash buckets — percentage of left tokens
// vs. number of accesses per bucket per cycle.
//
// Paper: in Eight-puzzle and Cypress ~70% of left tokens access a bucket
// that sees only one left token per cycle (no intra-side contention), and
// Eight-puzzle never exceeds 4 concurrent left tokens per bucket. Strips is
// the outlier: only ~40% single-access, and ~18% of tokens land in buckets
// with more than 4 accesses per cycle. The cause: Soar's linked CEs make the
// binding hash well-distributed; Strips' door-status fan-out concentrates
// some buckets.
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Figure 6-2", "Contention for the hash buckets");
  const auto tasks = collect_all();

  TextTable table({"accesses/bucket/cycle", "eight-puzzle %", "strips %",
                   "cypress %"});
  std::vector<std::vector<double>> dist;
  dist.reserve(tasks.size());
  for (const auto& d : tasks) {
    dist.push_back(left_access_distribution(d.nolearn.stats.traces, 16));
  }
  for (size_t bin = 1; bin <= 16; ++bin) {
    std::vector<std::string> row{bin == 16 ? ">=16" : std::to_string(bin)};
    for (const auto& curve : dist) row.push_back(TextTable::num(curve[bin], 1));
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nSummary (paper: 8p/cypress ~70%% single-access; strips ~40%%"
              " single-access,\n ~18%% of tokens in buckets with >4 accesses):\n");
  for (size_t i = 0; i < tasks.size(); ++i) {
    double single = dist[i][1];
    double over4 = 0;
    for (size_t bin = 5; bin < dist[i].size(); ++bin) over4 += dist[i][bin];
    std::printf("  %-12s single-access %.1f%%  >4 accesses %.1f%%\n",
                tasks[i].name.c_str(), single, over4);
  }
  return 0;
}
