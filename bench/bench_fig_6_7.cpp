// Figure 6-7: A long chain production.
//
// Paper: shows part of Monitor-Strips-State, a Strips chunk with 43 CEs —
// each CE's match depends on the previous join, so the activation chain is
// as long as the production. We report the longest-chain productions in the
// loaded Strips system and in its learned chunks, plus the critical-path
// share of the worst cycle.
#include <algorithm>

#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Figure 6-7", "Long chain productions");
  const TaskData d = collect("strips");

  // Longest initial productions.
  {
    SoarOptions opts;
    SoarKernel k(opts);
    k.load_productions(d.task.productions);
    std::vector<std::pair<int, std::string>> sizes;
    for (const Production* p : k.engine().productions()) {
      sizes.emplace_back(p->total_ce_count(),
                         std::string(k.engine().syms().name(p->name)));
    }
    std::sort(sizes.rbegin(), sizes.rend());
    std::printf("Longest initial Strips productions (paper's example chain: "
                "43 CEs):\n");
    for (size_t i = 0; i < 5 && i < sizes.size(); ++i) {
      std::printf("  %-28s %d CEs\n", sizes[i].second.c_str(),
                  sizes[i].first);
    }
  }

  // Longest chunks.
  {
    int longest = 0;
    double avg = 0;
    for (const auto& c : d.during.stats.chunk_costs) {
      longest = std::max(longest, c.total_ces);
      avg += c.total_ces;
    }
    if (!d.during.stats.chunk_costs.empty()) {
      avg /= static_cast<double>(d.during.stats.chunk_costs.size());
    }
    std::printf("\nStrips chunks: longest %d CEs, average %.1f "
                "(paper: chains of up to 43 CEs in chunks)\n",
                longest, avg);
  }

  // Critical-path share: how much of the worst large cycle is one chain.
  CostModel cm;
  double worst_share = 0;
  uint32_t worst_len = 0;
  for (const auto& t : d.nolearn.stats.traces) {
    if (t.task_count() < 100) continue;
    const auto cp = critical_path(t, cm);
    const double share = cp.cost_us / cm.serial_us(t);
    if (share > worst_share) {
      worst_share = share;
      worst_len = cp.length;
    }
  }
  std::printf("\nWorst large cycle: critical path of %u dependent activations"
              " = %.0f%% of the cycle's total work\n(long chains bound the "
              "parallel completion time no matter how many processes run)\n",
              worst_len, worst_share * 100);
  return 0;
}
