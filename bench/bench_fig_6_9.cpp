// Figure 6-9: Speedups in the update phase (run-time state update of newly
// added chunks), multiple task queues.
//
// Paper: high speedups — updating matches the entire WM against the new
// production's nodes at once, so there is plenty of parallelism, far more
// than in ordinary cycles. Uniprocessor update times: Eight-puzzle 16.0 s,
// Strips 39.9 s, Cypress 85.15 s.
#include "engine/engine.h"
#include "harness.h"
#include "lang/parser.h"

using namespace psme;
using namespace psme::bench;

namespace {

/// Paper-scale update: the paper's chunks have 34-51 CEs and meet a large
/// WM, so one §5.2 update is tens of seconds of virtual work. Our task
/// chunks are smaller and share more, so their updates are tiny; this
/// synthetic experiment reproduces the paper's conditions — a long chunk
/// added to a network holding a big WM — to show the mechanism at the
/// paper's scale ("the entire set of wmes is matched, providing a high
/// opportunity for parallelism").
void paper_scale_update() {
  Engine e;
  e.load("(p base (c0 ^v <x>) (c1 ^v <x>) --> (halt))");
  const int kValues = 160, kDepth = 12;
  for (int level = 0; level < kDepth; ++level) {
    const Symbol cls = e.syms().intern("c" + std::to_string(level));
    e.schemas().slot(cls, e.syms().intern("v"));
    for (int v = 0; v < kValues; ++v) {
      e.add_wme(cls, {Value(static_cast<int64_t>(v))});
    }
  }
  e.match();

  std::string src = "(p big-chunk";
  for (int level = 0; level < kDepth; ++level) {
    src += " (c" + std::to_string(level) + " ^v <x>)";
  }
  src += " --> (halt))";
  RhsArena arena;
  Parser parser(e.syms(), e.schemas(), arena);
  auto res = e.add_production_runtime(parser.parse_production(src));

  std::printf("\nPaper-scale update: a %d-CE chunk vs a WM of %d wmes -> "
              "%llu update tasks\n",
              kDepth, kValues * kDepth,
              static_cast<unsigned long long>(res.update_tasks));
  TextTable table({"procs", "update speedup"});
  for (const uint32_t p : {1u, 2u, 4u, 6u, 8u, 10u, 11u, 12u, 13u}) {
    SimOptions opts;
    opts.policy = QueuePolicy::Multi;
    opts.processors = p;
    std::vector<CycleTrace> ab{res.ab}, c{res.c};
    const double par = simulate_run(ab, opts).parallel_us +
                       simulate_run(c, opts).parallel_us;
    SimOptions uni = opts;
    uni.processors = 1;
    const double serial = simulate_run(ab, uni).parallel_us +
                          simulate_run(c, uni).parallel_us;
    table.add_row({std::to_string(p), TextTable::num(serial / par, 2)});
  }
  table.print();
  std::printf("Expected: near-linear growth (the paper's Figure 6-9 reaches "
              "~12 at 13 processes).\n");
}

}  // namespace

int main() {
  print_header("Figure 6-9", "Speedups in the update phase, multiple queues");
  const auto tasks = collect_all();

  std::printf("Update-phase uniprocessor virtual time (paper: 8p 16.0s, "
              "strips 39.9s, cypress 85.15s):\n");
  SimOptions base;
  base.policy = QueuePolicy::Multi;
  for (const auto& d : tasks) {
    // ab phases may run concurrently; c follows. Makespan = mk(ab) + mk(c)
    // per chunk. Uniprocessor time counts everything serially.
    double uni = uniproc_seconds(d.during.stats.update_ab, base) +
                 uniproc_seconds(d.during.stats.update_c, base);
    std::printf("  %-12s %.2f s over %zu chunk updates (%llu update tasks)\n",
                d.name.c_str(), uni, d.during.stats.update_ab.size(),
                static_cast<unsigned long long>(
                    total_tasks(d.during.stats.update_ab) +
                    total_tasks(d.during.stats.update_c)));
  }

  TextTable table({"procs", "eight-puzzle", "strips", "cypress"});
  std::vector<double> at13(tasks.size());
  for (const uint32_t p : process_counts()) {
    std::vector<std::string> row{std::to_string(p)};
    for (size_t i = 0; i < tasks.size(); ++i) {
      SimOptions opts = base;
      opts.processors = p;
      const double par =
          simulate_run(tasks[i].during.stats.update_ab, opts).parallel_us +
          simulate_run(tasks[i].during.stats.update_c, opts).parallel_us;
      SimOptions uni = opts;
      uni.processors = 1;
      const double serial =
          simulate_run(tasks[i].during.stats.update_ab, uni).parallel_us +
          simulate_run(tasks[i].during.stats.update_c, uni).parallel_us;
      const double s = par > 0 ? serial / par : 1.0;
      if (p == 13) at13[i] = s;
      row.push_back(TextTable::num(s, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nNote: our task chunks are far smaller and share far more of "
              "the network than the\npaper's 34-51 CE chunks, so their "
              "per-chunk updates (~30-70 activations) cannot\nexhibit "
              "13-process parallelism. Speedups at 13 procs:\n");
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::printf("  %-12s update %.2f\n", tasks[i].name.c_str(), at13[i]);
  }

  paper_scale_update();
  return 0;
}
