// Figure 6-8: The constrained bilinear network.
//
// Paper: reorganizing a 43-CE long-chain production into a constrained
// bilinear network reduces the chain length to ~15 CEs — the first few CEs
// constrain the match, the remaining CEs hang off the prefix in groups, and
// group results are combined. Their compiler could not yet emit this
// organization; ours can (opt-in), so this bench measures the critical-path
// reduction and the speedup at 11 virtual processors for both organizations.
#include <sstream>

#include "engine/engine.h"
#include "harness.h"
#include "lang/parser.h"
#include "rete/bilinear.h"

using namespace psme;
using namespace psme::bench;

namespace {

/// A Figure 6-7-style production: goal/problem-space/state prefix plus
/// `groups` independent feature groups (each `gsize` CEs) hanging off the
/// state — 3 + groups*gsize CEs in total.
std::string long_chain_production(int groups, int gsize) {
  std::ostringstream os;
  os << "(p monitor-strips-state (goal ^ps <p>) (ps ^name strips ^id <p>) "
        "(goal ^state <s>)";
  for (int g = 0; g < groups; ++g) {
    for (int k = 0; k < gsize; ++k) {
      os << " (feat ^state <s> ^group g" << g << " ^slot " << k << " ^val <v"
         << g << "_" << k << ">)";
    }
  }
  os << " --> (halt))";
  return os.str();
}

void add_wmes(Engine& e, int groups, int gsize) {
  e.add_wme_text("(goal ^ps p1 ^state s1)");
  e.add_wme_text("(ps ^name strips ^id p1)");
  for (int g = 0; g < groups; ++g) {
    for (int k = 0; k < gsize; ++k) {
      std::ostringstream w;
      w << "(feat ^state s1 ^group g" << g << " ^slot " << k << " ^val v" << g
        << "_" << k << ")";
      e.add_wme_text(w.str());
    }
  }
}

struct Shape {
  uint32_t chain_len = 0;
  double chain_us = 0;
  double speedup11 = 0;
  size_t instantiations = 0;
};

Shape measure(bool bilinear, int groups, int gsize, bool balanced) {
  Engine e;
  const std::string src = long_chain_production(groups, gsize);
  if (bilinear) {
    RhsArena arena;
    Parser parser(e.syms(), e.schemas(), arena);
    // The production AST must outlive the network; park it statically.
    static std::vector<std::unique_ptr<Production>> keep;
    keep.push_back(
        std::make_unique<Production>(parser.parse_production(src)));
    BilinearOptions opts;
    opts.prefix_ces = 3;
    opts.group_size = static_cast<uint32_t>(gsize);
    opts.balanced_tree = balanced;
    build_bilinear(e.net(), *keep.back(), opts);
  } else {
    e.load(src);
  }
  add_wmes(e, groups, gsize);
  const CycleTrace trace = e.match();

  CostModel cm;
  const auto cp = critical_path(trace, cm);
  SimOptions sopts;
  sopts.policy = QueuePolicy::Multi;
  sopts.processors = 11;
  const auto r = simulate_cycle(trace, sopts);
  return {cp.length, cp.cost_us, r.speedup(), e.cs().size()};
}

}  // namespace

int main() {
  print_header("Figure 6-8", "The constrained bilinear network");
  // 3-CE prefix + 5 groups x 8 CEs = 43 CEs, the paper's chain length.
  const int groups = 5, gsize = 8;
  std::printf("Production: 3 prefix CEs + %d groups x %d CEs = %d CEs "
              "(paper's example: 43 CEs -> bilinear chain of ~15)\n\n",
              groups, gsize, 3 + groups * gsize);

  const Shape linear = measure(false, groups, gsize, false);
  const Shape bilinear = measure(true, groups, gsize, false);
  const Shape tree = measure(true, groups, gsize, true);

  TextTable table({"organization", "instantiations", "critical path (tasks)",
                   "critical path (ms)", "speedup @11 procs"});
  auto row = [&](const char* name, const Shape& s) {
    table.add_row({name, std::to_string(s.instantiations),
                   std::to_string(s.chain_len),
                   TextTable::num(s.chain_us / 1000, 2),
                   TextTable::num(s.speedup11, 2)});
  };
  row("linear (paper's current)", linear);
  row("constrained bilinear", bilinear);
  row("bilinear + tree combine", tree);
  table.print();

  std::printf("\nExpected shape: identical instantiation counts; the bilinear"
              " organizations cut\nthe dependent-activation chain by roughly "
              "the grouping factor and lift the speedup.\n");
  return 0;
}
