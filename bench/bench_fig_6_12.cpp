// Figure 6-12: Eight-puzzle after chunking — tasks/cycle vs percentage of
// cycles.
//
// Paper: after chunking, over 30% of the cycles have 1000 or more tasks —
// chunks are processed along with the original productions (a larger
// affect-set per cycle), and the subgoal-driven small cycles disappear.
// That shift is what raises the after-chunking parallelism (Figure 6-10).
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Figure 6-12",
               "Eight-puzzle after chunking: tasks/cycle histogram");
  const TaskData d = collect("eight-puzzle");
  const auto before =
      tasks_per_cycle_histogram(d.nolearn.stats.traces, 25, 1200);
  const auto after = tasks_per_cycle_histogram(d.after.stats.traces, 25, 1200);

  TextTable table({"tasks/cycle", "without chunking %", "after chunking %"});
  for (size_t i = 0; i < after.size(); ++i) {
    if (before[i] == 0 && after[i] == 0) continue;
    const uint32_t lo = static_cast<uint32_t>(i) * 25;
    table.add_row({(i + 1 == after.size() ? ">=" + std::to_string(lo)
                                          : std::to_string(lo) + "-" +
                                                std::to_string(lo + 24)),
                   TextTable::num(before[i], 1), TextTable::num(after[i], 1)});
  }
  table.print();

  auto big_share = [](const std::vector<double>& h) {
    double s = 0;
    for (size_t i = 1000 / 25; i < h.size(); ++i) s += h[i];
    return s;
  };
  auto small_share = [](const std::vector<double>& h) {
    double s = 0;
    for (size_t i = 0; i < 100 / 25; ++i) s += h[i];
    return s;
  };
  std::printf("\nShare of cycles with >=1000 tasks: without %.1f%% -> after "
              "%.1f%% (paper: ~3%% -> >30%%)\n",
              big_share(before), big_share(after));
  std::printf("Share of cycles with <100 tasks: without %.1f%% -> after "
              "%.1f%% (small cycles recede)\n",
              small_share(before), small_share(after));
  return 0;
}
