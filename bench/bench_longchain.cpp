// Adversarial long-chain workload: deep *linear* join chains — the shape of
// monitor-strips-state-6..11, which the cost linter flags at chain depths
// 31..63 and which the paper's Figures 6-5/6-7 identify as the long-chain
// speedup limiter. Every head-wme addition spawns a dependent activation
// chain as deep as the production, so the cycle's tail serializes on
// whichever workers own the chains; this is the workload chain splitting
// (StealTuning::chain_split_depth) exists for.
//
// Measured, per (workers x chain_split_depth) configuration on real threads:
// wall time of the add cycles, inline-link and split counts, and the speedup
// against the serial executor on the identical workload. split_depth 1 is
// the pre-splitting scheduler (every link takes the pool/deque/counter round
// trip), the default (8) splits chains into stealable segments, 0 never
// splits (unbounded inline chains).
//
// The same recorded serial traces also drive a virtual-processor sweep to
// 256 VPs (psim has no processor cap — only the paper-faithful benches stop
// at 13), previewing where the chain-bound workload saturates on machines
// no 1988 Encore could be (ROADMAP carryover item).
//
// Output: BENCH_longchain.json on stdout (tools/bench_json.sh), human tables
// on stderr.
//
//   $ bench_longchain [rounds] [values] [reps]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "harness.h"
#include "obs/export.h"
#include "par/parallel_match.h"

using namespace psme;
using namespace psme::bench;

namespace {

class SeedCollector final : public ExecContext {
 public:
  void emit(Activation&& a) override { seeds.push_back(std::move(a)); }
  std::vector<Activation> seeds;
};

const std::vector<int>& chain_depths() {
  static const std::vector<int> d = {31, 47, 63};
  return d;
}

std::string chain_class(int depth, int i) {
  return "d" + std::to_string(depth) + "-c" + std::to_string(i);
}

/// One linear chain production of `depth` conditions, all binding the same
/// variable: (p chain-63 (d63-c0 ^v <x>) (d63-c1 ^v <x>) ... --> (halt)).
/// The first condition is the chain head; a head wme's token cascades
/// through every join below it, one dependent activation per level.
std::string chain_production(int depth) {
  std::string p = "(p chain-" + std::to_string(depth);
  for (int i = 0; i < depth; ++i) {
    p += " (" + chain_class(depth, i) + " ^v <x>)";
  }
  p += " --> (halt))";
  return p;
}

std::string all_productions() {
  std::string src;
  for (const int d : chain_depths()) src += chain_production(d) + "\n";
  return src;
}

/// Loads the chains and settles the right-hand sides: every non-head class
/// gets one wme per value, so each head wme later completes exactly one
/// full-depth token per level — a pure linear cascade, no fan-out to hide
/// the chain behind.
void settle_rhs(Engine& e, int values) {
  e.load(all_productions());
  for (const int d : chain_depths()) {
    for (int i = 1; i < d; ++i) {
      for (int v = 0; v < values; ++v) {
        e.add_wme_text("(" + chain_class(d, i) + " ^v " + std::to_string(v) +
                       ")");
      }
    }
  }
  e.match();
}

std::vector<std::string> head_texts(int values) {
  std::vector<std::string> out;
  for (const int d : chain_depths()) {
    for (int v = 0; v < values; ++v) {
      out.push_back("(" + chain_class(d, 0) + " ^v " + std::to_string(v) +
                    ")");
    }
  }
  return out;
}

struct SerialResult {
  double wall_seconds = 0;  // add cycles only (the measured cycles)
  uint64_t tasks = 0;
  size_t cs_peak = 0;                // CS size with all heads present
  std::vector<CycleTrace> traces;    // add-cycle traces, for the VP sweep
};

SerialResult run_serial(int rounds, int values) {
  SerialResult r;
  Engine e;
  settle_rhs(e, values);
  const auto heads = head_texts(values);
  for (int round = 0; round < rounds; ++round) {
    std::vector<const Wme*> added;
    for (const auto& h : heads) added.push_back(e.add_wme_text(h));
    const auto t0 = std::chrono::steady_clock::now();
    CycleTrace t = e.match();
    r.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    r.tasks += t.task_count();
    r.cs_peak = e.cs().size();
    r.traces.push_back(std::move(t));
    for (const Wme* w : added) e.remove_wme(w);
    e.match();  // delete chains drain un-measured, like the parallel configs
  }
  return r;
}

struct ParResult {
  size_t workers = 0;
  uint32_t split_depth = 0;
  ParallelStats stats;  // add cycles only
  size_t cs_peak = 0;
  bool cs_ok = false;
};

ParResult run_parallel(size_t workers, const StealTuning& tuning, int rounds,
                       int values, size_t expect_cs_peak) {
  ParResult r;
  r.workers = workers;
  r.split_depth = tuning.chain_split_depth;
  Engine e;
  settle_rhs(e, values);
  ParallelMatcher matcher(e.net(), workers, TaskQueueSet::Policy::Steal,
                          nullptr, tuning);
  matcher.register_agent(e.state());
  const auto heads = head_texts(values);
  r.cs_ok = true;
  for (int round = 0; round < rounds; ++round) {
    std::vector<const Wme*> added;
    for (const auto& h : heads) added.push_back(e.add_wme_text(h));
    SeedCollector sc;
    for (const Wme* w : added) e.net().inject(w, true, sc);
    r.stats.accumulate(matcher.run_cycle(std::move(sc.seeds)));
    e.wm().end_cycle();
    r.cs_peak = e.cs().size();
    r.cs_ok = r.cs_ok && r.cs_peak == expect_cs_peak;

    SeedCollector del;
    for (const Wme* w : added) {
      e.net().inject(w, false, del);
      e.wm().remove(w);
    }
    matcher.run_cycle(std::move(del.seeds));
    e.wm().end_cycle();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 6;
  const int values = argc > 2 ? std::atoi(argv[2]) : 8;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 3;

  std::fprintf(stderr,
               "bench_longchain: linear chains at depths 31/47/63, %d rounds, "
               "%d values, best of %d\n",
               rounds, values, reps);

  // Serial oracle + trace source. The traces are identical across reps, so
  // keep the first rep's and take the minimum wall time.
  SerialResult serial = run_serial(rounds, values);
  for (int rep = 1; rep < reps; ++rep) {
    const SerialResult one = run_serial(rounds, values);
    if (one.wall_seconds < serial.wall_seconds) {
      serial.wall_seconds = one.wall_seconds;
    }
  }
  std::fprintf(stderr,
               "serial: %.2f ms over %d add cycles, %llu tasks, CS peak %zu\n",
               serial.wall_seconds * 1e3, rounds,
               static_cast<unsigned long long>(serial.tasks), serial.cs_peak);

  // Real-thread configurations: split every link (the pre-splitting
  // scheduler), the default split depth, and never-split.
  const StealTuning kDefault{};
  std::vector<StealTuning> tunings(3);
  tunings[0].chain_split_depth = 1;
  tunings[1].chain_split_depth = kDefault.chain_split_depth;
  tunings[2].chain_split_depth = 0;

  std::fprintf(stderr, "\n%-8s %6s %10s %10s %10s %9s %8s %8s %5s\n",
               "workers", "split", "wall_ms", "speedup", "tasks/sec",
               "inline", "splits", "fail_sw", "CS?");
  std::vector<ParResult> records;
  for (const size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
    for (const StealTuning& tuning : tunings) {
      ParResult best;
      bool cs_ok = true;  // every rep's CS is checked, not just the kept one
      for (int rep = 0; rep < reps; ++rep) {
        ParResult one =
            run_parallel(workers, tuning, rounds, values, serial.cs_peak);
        cs_ok = cs_ok && one.cs_ok;
        if (rep == 0 || one.stats.wall_seconds < best.stats.wall_seconds) {
          best = std::move(one);
        }
      }
      best.cs_ok = cs_ok;
      const double speedup = best.stats.wall_seconds > 0
                                 ? serial.wall_seconds / best.stats.wall_seconds
                                 : 0.0;
      const double tps = best.stats.wall_seconds > 0
                             ? best.stats.tasks / best.stats.wall_seconds
                             : 0.0;
      std::fprintf(stderr, "%-8zu %6u %10.2f %10.2f %10.0f %9llu %8llu %8llu %5s\n",
                   best.workers, best.split_depth,
                   best.stats.wall_seconds * 1e3, speedup, tps,
                   static_cast<unsigned long long>(best.stats.chain_inline),
                   static_cast<unsigned long long>(best.stats.chain_splits),
                   static_cast<unsigned long long>(best.stats.failed_sweeps),
                   best.cs_ok ? "yes" : "NO");
      records.push_back(std::move(best));
    }
  }

  // Headline: does splitting lift the worst large-cycle speedup at the wide
  // end? Compare the 8-worker configurations.
  auto wall_of = [&](uint32_t split) {
    for (const ParResult& r : records) {
      if (r.workers == 8 && r.split_depth == split) {
        return r.stats.wall_seconds;
      }
    }
    return 0.0;
  };
  const double wall_every = wall_of(1);
  const double wall_split = wall_of(kDefault.chain_split_depth);
  const double wall_never = wall_of(0);
  std::fprintf(stderr,
               "\n8 workers: split-every-link %.2f ms, split@%u %.2f ms, "
               "never-split %.2f ms (%s)\n",
               wall_every * 1e3, kDefault.chain_split_depth, wall_split * 1e3,
               wall_never * 1e3,
               wall_split < wall_every ? "splitting wins" : "every-link wins");

  // Virtual-processor sweep over the recorded serial traces: the chain-bound
  // saturation curve, out to VP counts far past the paper's 13.
  std::fprintf(stderr, "\nVP sweep (psim, recorded serial traces):\n%-6s %10s %10s\n",
               "procs", "steal", "multi");
  struct VpPoint {
    uint32_t procs;
    double steal, multi;
  };
  std::vector<VpPoint> vp;
  for (const uint32_t p : wide_process_counts()) {
    VpPoint pt{p, speedup_at(serial.traces, p, QueuePolicy::Steal),
               speedup_at(serial.traces, p, QueuePolicy::Multi)};
    std::fprintf(stderr, "%-6u %10.2f %10.2f\n", pt.procs, pt.steal, pt.multi);
    vp.push_back(pt);
  }

  bool cs_ok_all = true;
  for (const ParResult& r : records) cs_ok_all = cs_ok_all && r.cs_ok;

  JsonWriter j(stdout);
  j.begin_object();
  j.field("bench", "longchain");
  j.field("workload",
          "linear join chains at depths 31/47/63 (Fig 6-5/6-7 limiter)");
  j.field("rounds", static_cast<uint64_t>(rounds));
  j.field("values", static_cast<uint64_t>(values));
  j.begin_object("serial");
  j.field("wall_seconds", serial.wall_seconds);
  j.field("tasks", serial.tasks);
  j.field("cs_peak", static_cast<uint64_t>(serial.cs_peak));
  j.end_object();
  j.begin_array("records");
  for (const ParResult& r : records) {
    j.begin_object();
    j.field("workers", static_cast<uint64_t>(r.workers));
    j.field("split_depth", static_cast<uint64_t>(r.split_depth));
    j.field("wall_seconds", r.stats.wall_seconds);
    j.field("tasks", r.stats.tasks);
    j.field("speedup_vs_serial", r.stats.wall_seconds > 0
                                     ? serial.wall_seconds /
                                           r.stats.wall_seconds
                                     : 0.0);
    j.field("chain_inline", r.stats.chain_inline);
    j.field("chain_splits", r.stats.chain_splits);
    j.field("steals", r.stats.steals);
    j.field("failed_sweeps", r.stats.failed_sweeps);
    j.field("sweep_backoff_ns", r.stats.sweep_backoff_ns);
    j.field("parks", r.stats.parks);
    j.field("cs_ok", r.cs_ok ? "true" : "false");
    obs::MetricsRegistry reg;
    obs::collect(reg, r.stats);
    write_metrics(j, "metrics", reg);
    j.end_object();
  }
  j.end_array();
  j.begin_object("headline_8_workers");
  j.field("wall_split_every_link", wall_every);
  j.field("wall_split_default", wall_split);
  j.field("wall_never_split", wall_never);
  j.field("default_split_depth",
          static_cast<uint64_t>(kDefault.chain_split_depth));
  j.end_object();
  j.begin_array("vp_sweep");
  for (const VpPoint& p : vp) {
    j.begin_object();
    j.field("processors", static_cast<uint64_t>(p.procs));
    j.field("steal_speedup", p.steal);
    j.field("multi_speedup", p.multi);
    j.end_object();
  }
  j.end_array();
  j.field("cs_consistent", cs_ok_all ? "true" : "false");
  j.end_object();
  j.finish();

  return cs_ok_all ? 0 : 1;
}
