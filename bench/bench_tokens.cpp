// Token memory shootout: heap allocations and bytes per activation, old
// (vector-backed TokenData) vs new (inline/arena Token), measured with a
// counting global operator new.
//
// Two levels:
//
//   * token layer — the exact allocation cost of building PIs along a 6-CE
//     join chain in both representations. The legacy vector pays one heap
//     buffer per extend; the new representation pays nothing inline (≤4
//     wmes) and amortized arena chunks beyond.
//
//   * engine — the bench_scheduler wave workload drained through the real
//     ParallelMatcher under Single/Multi/Steal at 1 and 8 workers, counting
//     every operator-new during the measured drains (arena chunk mallocs are
//     reported separately from MatchStats). The old cost is *modeled*, not
//     re-run: per activation the legacy design paid one TokenData buffer for
//     the built token, plus (Steal only) one heap Activation box per queued
//     task — both categories this PR removes (inline/arena tokens; the
//     ActivationPool slab recycler). The model is deliberately conservative:
//     it ignores the legacy token's reallocation-on-copy traffic inside
//     memory nodes.
//
// Output: BENCH_tokens.json on stdout (captured by tools/bench_json.sh),
// human tables on stderr. Headline: allocations/activation improvement at 8
// Steal workers (acceptance: >= 5x).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "harness.h"
#include "par/parallel_match.h"
#include "rete/token.h"

// ---- counting global allocator --------------------------------------------
namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_bytes{0};

void* counted(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
}  // namespace

void* operator new(std::size_t n) {
  if (void* p = counted(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = counted(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  const std::size_t al = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(al, (n + al - 1) & ~(al - 1))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace psme;
using namespace psme::bench;

namespace {

struct AllocWindow {
  uint64_t allocs = 0;
  uint64_t bytes = 0;
};

uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
uint64_t bytes_now() { return g_bytes.load(std::memory_order_relaxed); }

// ---- token layer -----------------------------------------------------------

struct TokenLayer {
  uint64_t ops = 0;  // token builds (extends)
  AllocWindow old_cost;
  AllocWindow new_cost;
  MatchStats arena;  // arena-side traffic of the new representation
};

TokenLayer token_layer(int iters) {
  TokenLayer out;
  Wme ws[6];
  constexpr int kChain = 6;
  out.ops = static_cast<uint64_t>(iters) * kChain;

  {
    const uint64_t a0 = allocs_now(), b0 = bytes_now();
    for (int i = 0; i < iters; ++i) {
      TokenData t;
      for (const auto& w : ws) {
        TokenData next = token_extend(t, &w);
        t.swap(next);  // the network stored the fresh vector; model that
      }
    }
    out.old_cost = {allocs_now() - a0, bytes_now() - b0};
  }
  {
    TokenArena arena;
    const uint64_t a0 = allocs_now(), b0 = bytes_now();
    for (int i = 0; i < iters; ++i) {
      Token t;
      for (const auto& w : ws) t = token_extend(t, &w, arena, 0);
    }
    out.new_cost = {allocs_now() - a0, bytes_now() - b0};
    out.arena = arena.stats();
  }
  return out;
}

// ---- engine level ----------------------------------------------------------
// Same productions/wave script as bench_scheduler so the headline is "on the
// bench_scheduler workload".

class SeedCollector final : public ExecContext {
 public:
  void emit(Activation&& a) override { seeds.push_back(std::move(a)); }
  std::vector<Activation> seeds;
};

std::string bench_productions() {
  return "(p j2 (a ^v <x>) (b ^v <x>) --> (halt))"
         "(p j3 (a ^v <x>) (b ^v <x>) (c ^v <x>) --> (halt))"
         "(p neg (a ^v <x>) -(blocker ^v <x>) --> (halt))"
         "(p cross (a ^v <x>) (c ^w <y>) --> (halt))";
}

void add_wave(Engine& e, int n, int salt) {
  for (int i = 0; i < n; ++i) {
    const std::string v = std::to_string((i + salt) % 7);
    e.add_wme_text("(a ^v " + v + ")");
    if (i % 2 == 0) e.add_wme_text("(b ^v " + v + ")");
    if (i % 3 == 0) e.add_wme_text("(c ^v " + v + " ^w " + v + ")");
    if (i % 5 == 0) e.add_wme_text("(blocker ^v " + v + ")");
  }
}

struct EngineRecord {
  std::string policy;
  size_t workers = 0;
  uint64_t tasks = 0;       // measured rounds only
  AllocWindow heap;         // operator-new traffic during measured drains
  MatchStats arena_delta;   // arena traffic during measured drains
  uint64_t pool_slabs = 0;  // ActivationPool slab mallocs (lifetime)
  double modeled_old_allocs_per_task = 0;
};

const char* policy_name(TaskQueueSet::Policy p) {
  switch (p) {
    case TaskQueueSet::Policy::Single: return "single";
    case TaskQueueSet::Policy::Multi: return "multi";
    case TaskQueueSet::Policy::Steal: return "steal";
  }
  return "?";
}


EngineRecord run_config(TaskQueueSet::Policy policy, size_t workers,
                        int rounds, int warmup, int wave) {
  EngineRecord r;
  r.policy = policy_name(policy);
  r.workers = workers;
  // Legacy cost model, per activation: one TokenData heap buffer for the
  // built/queued token; Steal adds one heap Activation box per queued task.
  r.modeled_old_allocs_per_task =
      policy == TaskQueueSet::Policy::Steal ? 2.0 : 1.0;

  Engine e;
  e.load(bench_productions());
  // The conflict set allocates per production match by design (list/index
  // nodes), identically in the old and new token designs; detach it so the
  // window measures the match/token layer this PR changes.
  e.state().sink = nullptr;
  ParallelMatcher matcher(e.net(), e.state(), workers, policy);

  uint64_t pool_slabs = 0;
  auto one_round = [&](int round, bool measured) {
    std::vector<const Wme*> before = e.wm().live();
    add_wave(e, wave, round);
    SeedCollector sc;
    for (const Wme* w : e.wm().live()) {
      bool is_new = true;
      for (const Wme* b : before) {
        if (b == w) {
          is_new = false;
          break;
        }
      }
      if (is_new) e.net().inject(w, true, sc);
    }
    ParallelStats st = matcher.run_cycle(std::move(sc.seeds));
    if (measured) r.tasks += st.tasks;
    e.wm().end_cycle();

    if (round % 3 == 2) {
      SeedCollector del;
      int i = 0;
      for (const Wme* w : before) {
        if (e.syms().name(w->cls) == "a" && ++i % 4 == 0) {
          e.net().inject(w, false, del);
          e.wm().remove(w);
        }
      }
      st = matcher.run_cycle(std::move(del.seeds));
      if (measured) r.tasks += st.tasks;
      e.wm().end_cycle();
    }
    pool_slabs = st.pool_slabs;
  };

  // Warm-up rounds populate queue/line/scratch capacities and the
  // ActivationPool slabs; the measured window is the steady state the
  // tentpole targets.
  for (int round = 0; round < warmup; ++round) one_round(round, false);
  const MatchStats arena0 = e.state().arena.stats();
  const uint64_t a0 = allocs_now(), b0 = bytes_now();
  for (int round = warmup; round < warmup + rounds; ++round) {
    one_round(round, true);
  }
  r.heap = {allocs_now() - a0, bytes_now() - b0};
  r.arena_delta = e.state().arena.stats().delta(arena0);
  r.pool_slabs = pool_slabs;
  return r;
}

double per_task(uint64_t n, uint64_t tasks) {
  return tasks != 0 ? static_cast<double>(n) / static_cast<double>(tasks) : 0;
}

// ---- arena chunk-size sweep ------------------------------------------------
// EngineOptions::arena_chunk_bytes, exercised on a spill-heavy workload: a
// six-CE chain whose full PIs all exceed the inline cap, toggled under the
// Steal scheduler so chunks seal and reclaim continuously. Small chunks seal
// (and mmap) often; large chunks amortize but hold more idle memory.

struct SweepRecord {
  uint32_t chunk_bytes = 0;
  uint64_t tasks = 0;
  double wall_seconds = 0;
  MatchStats arena;  // lifetime arena traffic at the given chunk size
};

SweepRecord run_chunk_sweep(uint32_t chunk_bytes, int rounds) {
  SweepRecord r;
  r.chunk_bytes = chunk_bytes;

  EngineOptions opts;
  opts.record_traces = false;
  opts.match_workers = 8;
  opts.match_policy = TaskQueueSet::Policy::Steal;
  opts.arena_chunk_bytes = chunk_bytes;
  Engine e(opts);
  e.load("(p long (a ^v <x>) (b ^v <x>) (c ^v <x>) (d ^v <x>) (e ^v <x>)"
         " (f ^v <x>) --> (halt))");
  for (const char* cls : {"a", "b", "c", "d", "e", "f"}) {
    for (int k = 0; k < 2; ++k) {
      for (int i = 0; i < 3; ++i) {
        e.add_wme_text("(" + std::string(cls) + " ^v " + std::to_string(k) +
                       ")");
      }
    }
  }
  e.match();

  for (int round = 0; round < rounds; ++round) {
    const Wme* victim = nullptr;
    for (const Wme* w : e.wm().live()) {
      if (e.syms().name(w->cls) == "a") {
        victim = w;
        break;
      }
    }
    const Symbol cls = victim->cls;
    const auto fields = victim->fields;
    e.remove_wme(victim);
    e.match();
    r.tasks += e.last_parallel_stats().tasks;
    r.wall_seconds += e.last_parallel_stats().wall_seconds;
    e.add_wme(cls, fields);
    e.match();
    r.tasks += e.last_parallel_stats().tasks;
    r.wall_seconds += e.last_parallel_stats().wall_seconds;
  }
  r.arena = e.state().arena.stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 12;
  const int wave = argc > 2 ? std::atoi(argv[2]) : 24;
  const int warmup = 4;
  const int token_iters = 200000;

  const TokenLayer tl = token_layer(token_iters);
  std::fprintf(stderr, "token layer (%llu extends, 6-CE chain):\n",
               static_cast<unsigned long long>(tl.ops));
  std::fprintf(stderr, "  old: %.3f allocs/op, %.1f bytes/op\n",
               per_task(tl.old_cost.allocs, tl.ops),
               per_task(tl.old_cost.bytes, tl.ops));
  std::fprintf(stderr,
               "  new: %.3f heap allocs/op, %.1f heap bytes/op, "
               "%.3f spill allocs/op, %.1f spill bytes/op, %llu chunks\n",
               per_task(tl.new_cost.allocs, tl.ops),
               per_task(tl.new_cost.bytes, tl.ops),
               per_task(tl.arena.spill_allocs, tl.ops),
               per_task(tl.arena.spill_bytes, tl.ops),
               static_cast<unsigned long long>(tl.arena.chunks_allocated));

  struct Config {
    TaskQueueSet::Policy policy;
    size_t workers;
  };
  const std::vector<Config> configs = {
      {TaskQueueSet::Policy::Single, 1}, {TaskQueueSet::Policy::Single, 8},
      {TaskQueueSet::Policy::Multi, 1},  {TaskQueueSet::Policy::Multi, 8},
      {TaskQueueSet::Policy::Steal, 1},  {TaskQueueSet::Policy::Steal, 8},
  };

  std::fprintf(stderr,
               "\nengine (%d measured rounds, wave %d, %d warm-up):\n"
               "%-8s %7s %9s %12s %12s %12s %12s\n",
               rounds, wave, warmup, "policy", "workers", "tasks",
               "allocs/act", "bytes/act", "old(model)", "improvement");
  std::vector<EngineRecord> records;
  for (const Config& c : configs) {
    EngineRecord r = run_config(c.policy, c.workers, rounds, warmup, wave);
    const double apa = per_task(r.heap.allocs, r.tasks);
    const double improvement =
        apa > 0 ? r.modeled_old_allocs_per_task / apa : 1e9;
    std::fprintf(stderr, "%-8s %7zu %9llu %12.4f %12.1f %12.1f %11.0fx\n",
                 r.policy.c_str(), r.workers,
                 static_cast<unsigned long long>(r.tasks), apa,
                 per_task(r.heap.bytes, r.tasks), r.modeled_old_allocs_per_task,
                 improvement);
    records.push_back(std::move(r));
  }

  const std::vector<uint32_t> chunk_sizes = {4096, 16384, 65536, 262144};
  const int sweep_rounds = 30;
  std::fprintf(stderr,
               "\narena chunk-size sweep (6-CE spill chain, steal, 8 workers,"
               " %d toggle rounds):\n%-12s %9s %10s %12s %12s %12s\n",
               sweep_rounds, "chunk_bytes", "tasks", "wall_ms",
               "chunk_mmaps", "chunks_freed", "chunks_live");
  std::vector<SweepRecord> sweep;
  for (uint32_t cb : chunk_sizes) {
    SweepRecord s = run_chunk_sweep(cb, sweep_rounds);
    std::fprintf(stderr, "%-12u %9llu %10.2f %12llu %12llu %12llu\n",
                 s.chunk_bytes, static_cast<unsigned long long>(s.tasks),
                 s.wall_seconds * 1e3,
                 static_cast<unsigned long long>(s.arena.chunks_allocated),
                 static_cast<unsigned long long>(s.arena.chunks_freed),
                 static_cast<unsigned long long>(s.arena.chunks_live));
    sweep.push_back(s);
  }

  const EngineRecord* headline = nullptr;
  for (const EngineRecord& r : records) {
    if (r.policy == "steal" && r.workers == 8) headline = &r;
  }
  const double new_apa = per_task(headline->heap.allocs, headline->tasks);
  const double old_apa = headline->modeled_old_allocs_per_task;
  const bool meets = new_apa * 5.0 <= old_apa;
  std::fprintf(stderr,
               "\nheadline (steal, 8 workers): %.4f allocs/activation vs "
               "%.1f modeled old — %s 5x target\n",
               new_apa, old_apa, meets ? "meets" : "MISSES");

  JsonWriter j(stdout);
  j.begin_object();
  j.field("bench", "tokens");
  j.field("workload", "bench_scheduler wme waves; counting operator new");
  j.field("old_model",
          "1 TokenData heap buffer per activation; +1 heap Activation box "
          "per task under Steal (both removed by the arena/pool design)");
  j.field("rounds", static_cast<uint64_t>(rounds));
  j.field("wave", static_cast<uint64_t>(wave));

  j.begin_array("token_layer");
  j.begin_object();
  j.field("repr", "old_vector");
  j.field("ops", tl.ops);
  j.field("allocs_per_op", per_task(tl.old_cost.allocs, tl.ops));
  j.field("bytes_per_op", per_task(tl.old_cost.bytes, tl.ops));
  j.end_object();
  j.begin_object();
  j.field("repr", "new_arena");
  j.field("ops", tl.ops);
  j.field("allocs_per_op", per_task(tl.new_cost.allocs, tl.ops));
  j.field("bytes_per_op", per_task(tl.new_cost.bytes, tl.ops));
  j.field("spill_allocs_per_op", per_task(tl.arena.spill_allocs, tl.ops));
  j.field("spill_bytes_per_op", per_task(tl.arena.spill_bytes, tl.ops));
  j.field("chunk_mallocs", tl.arena.chunks_allocated);
  j.end_object();
  j.end_array();

  j.begin_array("engine");
  for (const EngineRecord& r : records) {
    j.begin_object();
    j.field("policy", r.policy);
    j.field("workers", static_cast<uint64_t>(r.workers));
    j.field("tasks", r.tasks);
    j.field("heap_allocs", r.heap.allocs);
    j.field("heap_bytes", r.heap.bytes);
    j.field("allocs_per_activation", per_task(r.heap.allocs, r.tasks));
    j.field("bytes_per_activation", per_task(r.heap.bytes, r.tasks));
    j.field("modeled_old_allocs_per_activation",
            r.modeled_old_allocs_per_task);
    j.field("spill_allocs", r.arena_delta.spill_allocs);
    j.field("spill_bytes", r.arena_delta.spill_bytes);
    j.field("chunk_mallocs", r.arena_delta.chunks_allocated);
    j.field("chunks_freed", r.arena_delta.chunks_freed);
    j.field("chunks_live", r.arena_delta.chunks_live);
    j.field("pool_slabs", r.pool_slabs);
    j.end_object();
  }
  j.end_array();

  j.begin_array("chunk_size_sweep");
  for (const SweepRecord& s : sweep) {
    j.begin_object();
    j.field("chunk_bytes", static_cast<uint64_t>(s.chunk_bytes));
    j.field("tasks", s.tasks);
    j.field("wall_seconds", s.wall_seconds);
    j.field("spill_allocs", s.arena.spill_allocs);
    j.field("spill_bytes", s.arena.spill_bytes);
    j.field("chunk_mallocs", s.arena.chunks_allocated);
    j.field("chunks_freed", s.arena.chunks_freed);
    j.field("chunks_live", s.arena.chunks_live);
    j.end_object();
  }
  j.end_array();

  j.field("headline_policy", "steal");
  j.field("headline_workers", static_cast<uint64_t>(8));
  j.field("headline_new_allocs_per_activation", new_apa);
  j.field("headline_old_allocs_per_activation", old_apa);
  j.field("headline_improvement_x",
          new_apa > 0 ? old_apa / new_apa : 1e9);
  j.field("meets_5x_target", meets ? "true" : "false");
  j.end_object();
  j.finish();

  return meets ? 0 : 1;
}
