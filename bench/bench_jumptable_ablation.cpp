// Jumptable overhead (§5.1): "The overhead of the jumptable during match in
// the three programs has been measured to be about 1-3%, much less than the
// 20-30% loss due to an unshared network."
//
// Our jumptable is one extra indirection per successor dispatch. We count
// the indirections taken during each task's match and convert them to time
// with a per-indirection cost consistent with the cost model's scale, then
// report the overhead as a percentage of total match time.
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Jumptable ablation (§5.1)",
               "Jumptable overhead during match");

  // Per-indirection cost in virtual µs: an indirect jump plus a table load
  // on the NS32032 (a few instructions at 0.75 MIPS).
  const double indirection_us = 6.0;

  TextTable table({"task", "match tasks", "jumptable indirections",
                   "overhead %", "paper %"});
  CostModel cm;
  for (const auto& name : task_names()) {
    Task task = make_task(name);
    SoarOptions opts;
    opts.learning = false;
    opts.max_decisions = task.max_decisions;
    SoarKernel kernel(opts);
    kernel.load_productions(task.productions);
    task.init(kernel);
    kernel.engine().net().jumptable().reset_stats();
    const auto stats = kernel.run();
    const uint64_t indirections =
        kernel.engine().net().jumptable().indirections();
    double serial = 0;
    uint64_t tasks = 0;
    for (const auto& t : stats.traces) {
      serial += cm.serial_us(t);
      tasks += t.task_count();
    }
    const double overhead =
        serial > 0 ? 100.0 * indirection_us * static_cast<double>(indirections) /
                         (serial + indirection_us * static_cast<double>(indirections))
                   : 0;
    table.add_row({name, std::to_string(tasks), std::to_string(indirections),
                   TextTable::num(overhead, 2), "1-3"});
  }
  table.print();
  std::printf("\nExpected shape: low single digits — far below the 20-30%% "
              "loss an unshared network costs\n(see bench_sharing_ablation).\n");
  return 0;
}
