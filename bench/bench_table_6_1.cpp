// Table 6-1: The granularity of the tasks on the PSM.
//
// Paper:
//   Program       Uniproc time (s)  Total tasks  Avg time/task (µs)
//   Eight-puzzle       37.7            87,974          428
//   Strips             43.7            99,611          438
//   Cypress           172.7           432,390          400
// (Footnote: individual task times range from ~200 µs to ~800 µs.)
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Table 6-1", "The granularity of the tasks on the PSM");

  struct PaperRow {
    const char* task;
    double uniproc_s;
    uint64_t tasks;
    double avg_us;
  };
  const PaperRow paper[] = {{"eight-puzzle", 37.7, 87974, 428},
                            {"strips", 43.7, 99611, 438},
                            {"cypress", 172.7, 432390, 400}};

  TextTable table({"task", "paper:uniproc(s)", "ours:uniproc(s)",
                   "paper:#tasks", "ours:#tasks", "paper:avg µs",
                   "ours:avg µs"});
  CostModel cm;
  double min_cost = 1e18, max_cost = 0;
  for (const PaperRow& row : paper) {
    const TaskData d = collect(row.task);
    const auto& traces = d.nolearn.stats.traces;
    const uint64_t tasks = total_tasks(traces);
    double serial = 0;
    for (const auto& t : traces) {
      for (const auto& r : t.tasks) {
        const double c = cm.task_cost(r);
        serial += c;
        min_cost = std::min(min_cost, c);
        max_cost = std::max(max_cost, c);
      }
    }
    table.add_row({row.task, TextTable::num(row.uniproc_s, 1),
                   TextTable::num(serial / 1e6, 1), std::to_string(row.tasks),
                   std::to_string(tasks), TextTable::num(row.avg_us, 0),
                   TextTable::num(tasks > 0 ? serial / tasks : 0, 0)});
  }
  table.print();
  std::printf("\nPer-task cost range: %.0f-%.0f µs (paper footnote: ~200-800 "
              "µs)\n",
              min_cost, max_cost);
  return 0;
}
