// Sharing ablation (§5.2 text): gains from two-input node sharing.
//
// Paper: sharing two-input nodes cuts the update-phase node activations by
// ~20% (Eight-puzzle) and ~25% (Strips), and the after-chunking match by
// ~30% (Eight-puzzle) and ~20% (Strips). (Cypress figures were unreliable in
// the paper due to assembler limits on its oversized productions.)
#include "harness.h"

using namespace psme;
using namespace psme::bench;

namespace {

struct Counts {
  uint64_t update_tasks = 0;
  uint64_t after_tasks = 0;
};

Counts run_mode(const Task& task, bool share_beta) {
  EngineOptions opts;
  opts.builder.share_beta = share_beta;
  const auto during = run_task(task, /*learning=*/true, nullptr, opts);
  Counts c;
  c.update_tasks = total_tasks(during.stats.update_ab) +
                   total_tasks(during.stats.update_c);
  const auto after =
      run_task(task, /*learning=*/false, &during.stats.chunk_texts, opts);
  c.after_tasks = total_tasks(after.stats.traces);
  return c;
}

}  // namespace

int main() {
  print_header("Sharing ablation (§5.2)",
               "Two-input node sharing: update and after-chunking gains");

  struct PaperRow {
    const char* task;
    double update_gain, after_gain;  // percent saved by sharing
  };
  const PaperRow paper[] = {{"eight-puzzle", 20, 30}, {"strips", 25, 20}};

  TextTable table({"task", "update tasks shared", "update tasks unshared",
                   "update gain %", "paper %", "after-match tasks shared",
                   "after-match tasks unshared", "after gain %", "paper %"});
  for (const PaperRow& row : paper) {
    const Task task = make_task(row.task);
    const Counts shared = run_mode(task, true);
    const Counts unshared = run_mode(task, false);
    const double update_gain =
        unshared.update_tasks > 0
            ? 100.0 * (1.0 - static_cast<double>(shared.update_tasks) /
                                 static_cast<double>(unshared.update_tasks))
            : 0;
    const double after_gain =
        unshared.after_tasks > 0
            ? 100.0 * (1.0 - static_cast<double>(shared.after_tasks) /
                                 static_cast<double>(unshared.after_tasks))
            : 0;
    table.add_row({row.task, std::to_string(shared.update_tasks),
                   std::to_string(unshared.update_tasks),
                   TextTable::num(update_gain, 1),
                   TextTable::num(row.update_gain, 0),
                   std::to_string(shared.after_tasks),
                   std::to_string(unshared.after_tasks),
                   TextTable::num(after_gain, 1),
                   TextTable::num(row.after_gain, 0)});
  }
  table.print();
  std::printf("\nExpected shape: sharing saves a substantial fraction of the "
              "update work and of the\nafter-chunking match (gains in the "
              "tens of percent, not single digits).\n");
  return 0;
}
