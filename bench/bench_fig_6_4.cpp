// Figure 6-4: Speedup without chunking, multiple task queues.
//
// Paper: parallelism increases in all three tasks once every match process
// has its own queue; maximum speedup about 7-fold (Strips and Cypress),
// Eight-puzzle lower — limited by its small cycles and long chains rather
// than by queue contention.
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Figure 6-4", "Speedup without chunking, multiple task queues");
  const auto tasks = collect_all();

  TextTable table({"procs", "eight-puzzle", "strips", "cypress"});
  std::vector<double> best(tasks.size(), 0);
  for (const uint32_t p : process_counts()) {
    std::vector<std::string> row{std::to_string(p)};
    for (size_t i = 0; i < tasks.size(); ++i) {
      const double s =
          speedup_at(tasks[i].nolearn.stats.traces, p, QueuePolicy::Multi);
      best[i] = std::max(best[i], s);
      row.push_back(TextTable::num(s, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nMaxima (paper: ~7 for strips/cypress; eight-puzzle lower):\n");
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::printf("  %-12s max %.2f\n", tasks[i].name.c_str(), best[i]);
  }
  std::printf("\nSingle- vs multi-queue at 13 procs (multi must win):\n");
  for (const auto& d : tasks) {
    const double single =
        speedup_at(d.nolearn.stats.traces, 13, QueuePolicy::Single);
    const double multi =
        speedup_at(d.nolearn.stats.traces, 13, QueuePolicy::Multi);
    std::printf("  %-12s single %.2f  multi %.2f\n", d.name.c_str(), single,
                multi);
  }
  return 0;
}
