// Figure 6-3: Task-queue contention (spins per task) with an increasing
// number of processes, single shared queue.
//
// Paper: spins/task rises with the process count at approximately the same
// rate for all three tasks (same locking code, similar task granularity),
// reaching ~30 spins/task at 13 processes; this is what saturates the
// single-queue speedups around 8-10 processes.
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Figure 6-3", "Task-queue contention vs number of processes");
  const auto tasks = collect_all();

  TextTable table({"procs", "eight-puzzle spins/task", "strips spins/task",
                   "cypress spins/task"});
  std::vector<double> at3(tasks.size()), at13(tasks.size());
  for (const uint32_t p : process_counts()) {
    if (p < 3) continue;
    std::vector<std::string> row{std::to_string(p)};
    for (size_t i = 0; i < tasks.size(); ++i) {
      SimOptions opts;
      opts.policy = QueuePolicy::Single;
      opts.processors = p;
      const auto run = simulate_run(tasks[i].nolearn.stats.traces, opts);
      const double spt = run.spins_per_task();
      if (p == 3) at3[i] = spt;
      if (p == 13) at13[i] = spt;
      row.push_back(TextTable::num(spt, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nShape check (paper: contention rises at approximately the "
              "same rate in all tasks):\n");
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::printf("  %-12s spins/task 3->13 procs: %.2f -> %.2f (x%.1f)\n",
                tasks[i].name.c_str(), at3[i], at13[i],
                at3[i] > 0 ? at13[i] / at3[i] : 0);
  }

  // Multi-queue comparison: the paper reports spins/task dropping to ~2-3
  // at 13 processes once every process has its own queue.
  std::printf("\nMulti-queue at 13 processes (paper: ~2-3 spins/task):\n");
  for (const auto& d : tasks) {
    SimOptions opts;
    opts.policy = QueuePolicy::Multi;
    opts.processors = 13;
    const auto run = simulate_run(d.nolearn.stats.traces, opts);
    std::printf("  %-12s %.2f spins/task\n", d.name.c_str(),
                run.spins_per_task());
  }
  return 0;
}
