// Transient-query churn bench: add/match/remove cycles through QuerySession,
// swept over steal-worker counts {1, 2, 4, 8} × agent-session counts {1, 4}
// over ONE shared CompiledNetwork. Each cycle compiles a cue into a
// temporary production (copy-on-write splice + §5.2 state update = the
// evaluation), reads score and matches, and tears the production back out
// through Engine::remove_production_runtime (COW unsplice + per-agent drain
// + reclaim). This is the hot-path stress workload for run-time removal: the
// jumptable, alpha-memory array and node table must stay flat across the
// whole run (slot/mem-index recycling), which the bench asserts.
//
// Measured per configuration:
//   * churn throughput in queries/sec (aggregate across sessions);
//   * mean per-phase cost: add (compile + update), read (score + matches),
//     remove (unsplice + drain) in µs.
//
// Output: BENCH_query.json on stdout (captured by tools/bench_json.sh),
// human-readable tables on stderr.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/agent_group.h"
#include "harness.h"
#include "obs/profiler.h"
#include "query/query.h"

using namespace psme;
using namespace psme::bench;

namespace {

std::string resident_productions() {
  return "(p stack2 (block ^name <b> ^color blue) (block ^on <b>) "
         "--> (halt))"
         "(p stack3 (block ^name <b>) (block ^on <b> ^name <m>) "
         "(block ^on <m>) --> (halt))"
         "(p holder (gripper ^state free) (block ^name <b>) --> (halt))";
}

/// One agent's episode: a chain of stacked blocks plus loose parts, values
/// offset by the agent index so no two sessions share token content.
void seed_episode(Engine& e, size_t agent, int blocks) {
  const int base = static_cast<int>(agent) * 1000;
  for (int i = 0; i < blocks; ++i) {
    const std::string name = "b" + std::to_string(base + i);
    const char* color = i % 3 == 0 ? "blue" : (i % 3 == 1 ? "red" : "green");
    std::string text = "(block ^name " + name + " ^color " + color;
    if (i > 0) text += " ^on b" + std::to_string(base + i - 1);
    text += ")";
    e.add_wme_text(text);
  }
  e.add_wme_text("(gripper ^name g" + std::to_string(agent) +
                 " ^state free)");
}

/// The cue rotation: a full-match graph cue (shares alpha structure with the
/// residents), a partial cue (joins two CEs, third never matches), and a
/// miss (fresh alpha structure installed and removed every time).
const char* cue_for(int cycle) {
  switch (cycle % 3) {
    case 0:
      return "(block ^name <b> ^color blue) (block ^on <b> ^name <t>)";
    case 1:
      return "(block ^name <b> ^color blue) (block ^on <b> ^name <t>) "
             "(gripper ^holding <t>)";
    default:
      return "(pyramid ^name <p>) (block ^on <p>)";
  }
}

struct Record {
  size_t workers = 0;
  size_t agents = 0;
  int cycles = 0;  // total queries across all sessions
  double wall_seconds = 0;
  double queries_per_sec = 0;
  double add_us_mean = 0, read_us_mean = 0, remove_us_mean = 0;
  uint64_t nodes_churned = 0;  // nodes installed (== removed) over the run
};

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Record run_config(size_t workers, size_t agents, int cycles_per_agent) {
  AgentGroupOptions gopts;
  gopts.workers = workers;
  gopts.policy = TaskQueueSet::Policy::Steal;
  AgentGroup group(gopts);
  for (size_t a = 0; a < agents; ++a) group.add_agent();
  group.load(resident_productions());
  for (size_t a = 0; a < agents; ++a) seed_episode(group.agent(a), a, 24);
  group.step_all();

  std::vector<std::unique_ptr<QuerySession>> sessions;
  for (size_t a = 0; a < agents; ++a) {
    sessions.push_back(std::make_unique<QuerySession>(group.agent(a)));
  }

  Record r;
  r.workers = workers;
  r.agents = agents;
  const uint32_t live_before = group.network().net().live_node_count();
  const size_t jt_before = group.network().net().jumptable().size();

  const int warmup = 3;
  double add_us = 0, read_us = 0, remove_us = 0;
  const auto wall0 = std::chrono::steady_clock::now();
  for (int c = 0; c < warmup + cycles_per_agent; ++c) {
    for (size_t a = 0; a < agents; ++a) {
      QuerySession& q = *sessions[a];
      auto t0 = std::chrono::steady_clock::now();
      const auto add = q.begin(cue_for(c + static_cast<int>(a)));
      const double t_add = us_since(t0);

      t0 = std::chrono::steady_clock::now();
      const uint32_t score = q.score();
      const auto matches = q.matches();
      const double t_read = us_since(t0);
      (void)score;
      (void)matches;

      t0 = std::chrono::steady_clock::now();
      const auto rem = q.end();
      const double t_remove = us_since(t0);

      if (c >= warmup) {
        add_us += t_add;
        read_us += t_read;
        remove_us += t_remove;
        r.nodes_churned += rem.nodes_removed;
        ++r.cycles;
      }
      (void)add;
    }
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  // Removal must leave no residue: same live-node count, same jumptable
  // footprint (slots recycled, never grown past the high-water mark of one
  // in-flight query per session).
  const uint32_t live_after = group.network().net().live_node_count();
  const size_t jt_after = group.network().net().jumptable().size();
  if (live_after != live_before) {
    std::fprintf(stderr,
                 "bench_query: node leak — %u live nodes before churn, %u "
                 "after\n",
                 live_before, live_after);
    std::exit(1);
  }
  if (jt_after > jt_before + agents * 16) {
    std::fprintf(stderr,
                 "bench_query: jumptable grew %zu -> %zu slots (recycling "
                 "broken)\n",
                 jt_before, jt_after);
    std::exit(1);
  }

  if (r.cycles > 0) {
    const double n = static_cast<double>(r.cycles);
    r.add_us_mean = add_us / n;
    r.read_us_mean = read_us / n;
    r.remove_us_mean = remove_us / n;
  }
  if (r.wall_seconds > 0) {
    r.queries_per_sec = static_cast<double>(r.cycles) / r.wall_seconds;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 120;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  const std::vector<size_t> session_counts = {1, 4};

  std::fprintf(stderr,
               "bench_query: %d add/match/remove cycles per session, best of "
               "%d, steal workers {1,2,4,8}, sessions {1,4}\n",
               cycles, reps);
  std::fprintf(stderr, "%8s %7s %9s %13s %10s %10s %10s\n", "workers",
               "agents", "queries", "queries/sec", "add_us", "read_us",
               "rm_us");

  std::vector<Record> records;
  for (const size_t w : worker_counts) {
    for (const size_t n : session_counts) {
      Record best;
      for (int rep = 0; rep < reps; ++rep) {
        Record one = run_config(w, n, cycles);
        if (rep == 0 || one.wall_seconds < best.wall_seconds) {
          best = one;
        }
      }
      std::fprintf(stderr, "%8zu %7zu %9d %13.0f %10.2f %10.2f %10.2f\n",
                   best.workers, best.agents, best.cycles,
                   best.queries_per_sec, best.add_us_mean, best.read_us_mean,
                   best.remove_us_mean);
      records.push_back(best);
    }
  }

  // Per-CE measured join cost: a dedicated non-timed pass with the group's
  // profiler at full rate (shift 0 — exact, no scaling). For each cue in the
  // rotation: snapshot, install the cue (the §5.2 update IS the evaluation),
  // resolve its per-CE anchor nodes (QuerySession::ce_join_nodes), snapshot
  // again — the node-cell diff isolates what THIS query cost at each CE's
  // join even when the prefix is shared with a resident production, and the
  // snapshot window sidesteps the recycled-node-id caveat across cues.
  struct CeCost {
    uint32_t node = UINT32_MAX;
    uint64_t acts = 0;
    double est_us = 0;
  };
  struct CueCosts {
    std::string cue;
    uint32_t score = 0;
    std::vector<CeCost> ces;
  };
  std::vector<CueCosts> per_ce;
  {
    AgentGroupOptions gopts;
    gopts.workers = 8;
    gopts.policy = TaskQueueSet::Policy::Steal;
    gopts.profile = true;
    gopts.profile_sample_shift = 0;
    AgentGroup group(gopts);
    group.add_agent();
    group.load(resident_productions());
    seed_episode(group.agent(0), 0, 24);
    group.step_all();
    QuerySession q(group.agent(0));
    obs::ProfileSnapshot before, after;
    for (int c = 0; c < 3; ++c) {
      group.profiler()->snapshot_into(before);
      q.begin(cue_for(c));
      const std::vector<uint32_t> anchors = q.ce_join_nodes();
      CueCosts cc;
      cc.cue = cue_for(c);
      cc.score = q.score();
      (void)q.matches();
      group.profiler()->snapshot_into(after);
      for (const uint32_t id : anchors) {
        CeCost ce;
        ce.node = id;
        if (id != UINT32_MAX && id < after.nodes.size()) {
          const obs::ProfileCell& na = after.nodes[id];
          obs::ProfileCell nb;
          if (id < before.nodes.size()) nb = before.nodes[id];
          ce.acts = na.activations - nb.activations;
          ce.est_us = (obs::ProfileSnapshot::est_ns(na) -
                       obs::ProfileSnapshot::est_ns(nb)) /
                      1e3;
        }
        cc.ces.push_back(ce);
      }
      q.end();
      per_ce.push_back(std::move(cc));
    }
  }
  std::fprintf(stderr, "\nper-CE measured join cost (full-rate profiler, "
                       "snapshot-diff per cue):\n");
  for (const CueCosts& cc : per_ce) {
    std::fprintf(stderr, "  cue \"%s\" (score %u):\n", cc.cue.c_str(),
                 cc.score);
    for (size_t i = 0; i < cc.ces.size(); ++i) {
      const CeCost& ce = cc.ces[i];
      if (ce.node == UINT32_MAX) {
        std::fprintf(stderr, "    ce %zu: (unresolved)\n", i);
      } else {
        std::fprintf(stderr,
                     "    ce %zu: node %u, %llu activations, %.2f est_us\n",
                     i, ce.node, static_cast<unsigned long long>(ce.acts),
                     ce.est_us);
      }
    }
  }

  JsonWriter j(stdout);
  j.begin_object();
  j.field("bench", "query");
  j.field("workload",
          "transient-query churn: compile cue -> read score/matches -> "
          "remove, over one shared network");
  j.field("cycles_per_session", static_cast<uint64_t>(cycles));
  j.begin_array("records");
  for (const Record& r : records) {
    j.begin_object();
    j.field("workers", static_cast<uint64_t>(r.workers));
    j.field("agents", static_cast<uint64_t>(r.agents));
    j.field("queries", static_cast<uint64_t>(r.cycles));
    j.field("wall_seconds", r.wall_seconds);
    j.field("queries_per_sec", r.queries_per_sec);
    j.field("add_us_mean", r.add_us_mean);
    j.field("read_us_mean", r.read_us_mean);
    j.field("remove_us_mean", r.remove_us_mean);
    j.field("nodes_churned", r.nodes_churned);
    j.end_object();
  }
  j.end_array();
  // The per-CE measured join costs from the profiled pass above.
  j.begin_object("profile");
  j.field("sample_shift", static_cast<uint64_t>(0));
  j.begin_array("per_ce");
  for (const CueCosts& cc : per_ce) {
    j.begin_object();
    j.field("cue", cc.cue);
    j.field("score", static_cast<uint64_t>(cc.score));
    j.begin_array("ces");
    for (size_t i = 0; i < cc.ces.size(); ++i) {
      const CeCost& ce = cc.ces[i];
      j.begin_object();
      j.field("ce", static_cast<uint64_t>(i));
      j.field("resolved", ce.node == UINT32_MAX ? "false" : "true");
      j.field("node", static_cast<uint64_t>(ce.node));
      j.field("acts", ce.acts);
      j.field("est_us", ce.est_us);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.end_object();
  j.finish();
  return 0;
}
