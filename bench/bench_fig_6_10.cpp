// Figure 6-10: Speedups after chunking, multiple task queues.
//
// Paper: parallelism increases with chunking in Eight-puzzle and Strips;
// Eight-puzzle shows the system's maximum (~10-fold at 13 processes) because
// its chunks are expensive — they shift the cycle-size distribution toward
// large cycles (Figures 6-11/6-12). The Cypress after-chunking run is very
// short and inconclusive. Uniprocessor times: 8p 111.2 s, strips 30.6 s,
// cypress 9.5 s.
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Figure 6-10", "Speedups after chunking, multiple queues");
  const auto tasks = collect_all();

  SimOptions base;
  base.policy = QueuePolicy::Multi;
  std::printf("After-chunking uniprocessor virtual times (paper: 8p 111.2s, "
              "strips 30.6s, cypress 9.5s):\n");
  for (const auto& d : tasks) {
    std::printf("  %-12s %.1f s (%llu tasks; %zu chunks preloaded)\n",
                d.name.c_str(), uniproc_seconds(d.after.stats.traces, base),
                static_cast<unsigned long long>(
                    total_tasks(d.after.stats.traces)),
                d.during.stats.chunk_texts.size());
  }

  TextTable table({"procs", "eight-puzzle", "strips", "cypress"});
  for (const uint32_t p : process_counts()) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& d : tasks) {
      row.push_back(TextTable::num(
          speedup_at(d.after.stats.traces, p, QueuePolicy::Multi), 2));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nEffect of chunking on parallelism (speedup at 13 procs, "
              "paper: increases for 8p/strips):\n");
  for (const auto& d : tasks) {
    const double before =
        speedup_at(d.nolearn.stats.traces, 13, QueuePolicy::Multi);
    const double after =
        speedup_at(d.after.stats.traces, 13, QueuePolicy::Multi);
    std::printf("  %-12s without chunks %.2f -> after chunks %.2f%s\n",
                d.name.c_str(), before, after,
                after > before ? "  [parallelism increased]" : "");
  }
  return 0;
}
