// Shared benchmark harness: runs the paper's three Soar systems in the three
// regimes (without chunking / during chunking / after chunking), collects the
// per-cycle task traces, and provides the virtual-multiprocessor sweeps that
// regenerate the paper's tables and figures.
//
// Every bench binary prints the paper's reported values next to the measured
// ones; EXPERIMENTS.md records the comparison.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/profile_report.h"
#include "obs/metrics.h"
#include "psim/report.h"
#include "psim/sim.h"
#include "tasks/registry.h"

namespace psme::bench {

struct TaskData {
  std::string name;
  Task task;
  TaskRunResult nolearn;   // without chunking
  TaskRunResult during;    // during chunking (learning on)
  TaskRunResult after;     // after chunking (chunks preloaded, learning off)
};

/// Runs one task in all three regimes.
inline TaskData collect(const std::string& name) {
  TaskData d;
  d.name = name;
  d.task = make_task(name);
  d.nolearn = run_task(d.task, /*learning=*/false);
  d.during = run_task(d.task, /*learning=*/true);
  d.after = run_task(d.task, /*learning=*/false, &d.during.stats.chunk_texts);
  return d;
}

/// Runs all three paper tasks.
inline std::vector<TaskData> collect_all() {
  std::vector<TaskData> out;
  for (const auto& name : task_names()) out.push_back(collect(name));
  return out;
}

/// Uniprocessor virtual time of a run, in seconds (Encore-equivalent).
inline double uniproc_seconds(const std::vector<CycleTrace>& traces,
                              const SimOptions& opts) {
  SimOptions uni = opts;
  uni.processors = 1;
  return simulate_run(traces, uni).parallel_us / 1e6;
}

/// Speedup of a run at P processors relative to the 1-processor simulation.
inline double speedup_at(const std::vector<CycleTrace>& traces, uint32_t procs,
                         QueuePolicy policy, const SimOptions& base = {}) {
  SimOptions opts = base;
  opts.policy = policy;
  opts.processors = procs;
  const double uni = uniproc_seconds(traces, opts) * 1e6;
  const double par = simulate_run(traces, opts).parallel_us;
  return par > 0 ? uni / par : 1.0;
}

/// The paper's X axis: match process counts 1..13.
inline std::vector<uint32_t> process_counts() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
}

/// Beyond the paper: virtual-processor counts up to 256, previewing the
/// saturation regimes no 1988 Encore could reach (ROADMAP carryover — the
/// simulator itself has no processor cap; only the paper-faithful benches
/// stop at 13). Used by bench_longchain's VP sweep.
inline std::vector<uint32_t> wide_process_counts() {
  return {1, 2, 4, 8, 13, 16, 32, 64, 128, 256};
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

inline uint64_t total_tasks(const std::vector<CycleTrace>& traces) {
  uint64_t n = 0;
  for (const auto& t : traces) n += t.task_count();
  return n;
}

/// Minimal machine-readable output: streams one JSON value to `out` with
/// comma/indent bookkeeping handled here so bench code reads like data.
/// tools/bench_json.sh captures stdout into BENCH_<name>.json; the human
/// tables go to stderr in such benches.
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* out) : out_(out) {}

  void begin_object(const char* key = nullptr) {
    if (key != nullptr) emit_key(key);
    open('{');
  }
  void end_object() { close('}'); }
  void begin_array(const char* key = nullptr) {
    if (key != nullptr) emit_key(key);
    open('[');
  }
  void end_array() { close(']'); }

  void field(const char* key, const std::string& v) {
    emit_key(key);
    after_key_ = false;
    std::fputc('"', out_);
    for (const char c : v) {
      if (c == '"' || c == '\\') std::fputc('\\', out_);
      std::fputc(c, out_);
    }
    std::fputc('"', out_);
  }
  void field(const char* key, const char* v) { field(key, std::string(v)); }
  void field(const char* key, uint64_t v) {
    emit_key(key);
    after_key_ = false;
    std::fprintf(out_, "%llu", static_cast<unsigned long long>(v));
  }
  void field(const char* key, double v) {
    emit_key(key);
    after_key_ = false;
    std::fprintf(out_, "%.6g", v);
  }

  /// Call once after the root value closes.
  void finish() { std::fputc('\n', out_); }

 private:
  void open(char c) {
    value_prefix();
    std::fputc(c, out_);
    first_ = true;
  }
  void close(char c) {
    std::fputc(c, out_);
    first_ = false;
    after_key_ = false;
  }
  void emit_key(const char* key) {
    comma();
    std::fprintf(out_, "\"%s\":", key);
    after_key_ = true;
  }
  // A value directly after its key needs no separator; a value that is an
  // array/object element does.
  void value_prefix() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    comma();
  }
  void comma() {
    if (!first_) std::fputc(',', out_);
    first_ = false;
  }

  std::FILE* out_;
  bool first_ = true;
  bool after_key_ = false;
};

/// Streams a registry as one JSON object: {"par.tasks": 123, ...}. Dotted
/// metric names are kept verbatim as keys, so bench JSON and the demos'
/// --stats tables agree on naming. Emits the object under `key`.
inline void write_metrics(JsonWriter& j, const char* key,
                          const obs::MetricsRegistry& m) {
  j.begin_object(key);
  for (const obs::Metric& metric : m.metrics()) {
    j.field(metric.name.c_str(), metric.value);
  }
  j.end_object();
}

/// Streams the headline of a measured ProfileReport plus its `top_k` hottest
/// productions (by est_us, record order on ties) as one JSON object under
/// `key` — the "profile" object profiled bench runs emit next to their
/// timing records. Schema:
///   {"sample_shift":N,"activations":N,"sampled":N,"time_us":X,
///    "top":[{"name":"...","acts":N,"emits":N,"est_us":X},...]}
inline void write_profile(JsonWriter& j, const char* key,
                          const analysis::ProfileReport& rep,
                          size_t top_k = 5) {
  j.begin_object(key);
  j.field("sample_shift", static_cast<uint64_t>(rep.sample_shift));
  j.field("activations", rep.total_activations);
  j.field("sampled", rep.total_sampled);
  j.field("time_us", rep.total_us);
  j.begin_array("top");
  std::vector<size_t> order(rep.productions.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rep.productions[a].est_us > rep.productions[b].est_us;
  });
  if (order.size() > top_k) order.resize(top_k);
  for (const size_t i : order) {
    const analysis::ProductionProfile& p = rep.productions[i];
    j.begin_object();
    j.field("name", p.name);
    j.field("acts", p.activations);
    j.field("emits", p.emits);
    j.field("est_us", p.est_us);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace psme::bench
