// Shared benchmark harness: runs the paper's three Soar systems in the three
// regimes (without chunking / during chunking / after chunking), collects the
// per-cycle task traces, and provides the virtual-multiprocessor sweeps that
// regenerate the paper's tables and figures.
//
// Every bench binary prints the paper's reported values next to the measured
// ones; EXPERIMENTS.md records the comparison.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "psim/report.h"
#include "psim/sim.h"
#include "tasks/registry.h"

namespace psme::bench {

struct TaskData {
  std::string name;
  Task task;
  TaskRunResult nolearn;   // without chunking
  TaskRunResult during;    // during chunking (learning on)
  TaskRunResult after;     // after chunking (chunks preloaded, learning off)
};

/// Runs one task in all three regimes.
inline TaskData collect(const std::string& name) {
  TaskData d;
  d.name = name;
  d.task = make_task(name);
  d.nolearn = run_task(d.task, /*learning=*/false);
  d.during = run_task(d.task, /*learning=*/true);
  d.after = run_task(d.task, /*learning=*/false, &d.during.stats.chunk_texts);
  return d;
}

/// Runs all three paper tasks.
inline std::vector<TaskData> collect_all() {
  std::vector<TaskData> out;
  for (const auto& name : task_names()) out.push_back(collect(name));
  return out;
}

/// Uniprocessor virtual time of a run, in seconds (Encore-equivalent).
inline double uniproc_seconds(const std::vector<CycleTrace>& traces,
                              const SimOptions& opts) {
  SimOptions uni = opts;
  uni.processors = 1;
  return simulate_run(traces, uni).parallel_us / 1e6;
}

/// Speedup of a run at P processors relative to the 1-processor simulation.
inline double speedup_at(const std::vector<CycleTrace>& traces, uint32_t procs,
                         QueuePolicy policy, const SimOptions& base = {}) {
  SimOptions opts = base;
  opts.policy = policy;
  opts.processors = procs;
  const double uni = uniproc_seconds(traces, opts) * 1e6;
  const double par = simulate_run(traces, opts).parallel_us;
  return par > 0 ? uni / par : 1.0;
}

/// The paper's X axis: match process counts 1..13.
inline std::vector<uint32_t> process_counts() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

inline uint64_t total_tasks(const std::vector<CycleTrace>& traces) {
  uint64_t n = 0;
  for (const auto& t : traces) n += t.task_count();
  return n;
}

}  // namespace psme::bench
