// Figure 6-1: Speedups without chunking, single task queue, 1-13 match
// processes.
//
// Paper: maximum speedup about 4.2-fold; the curves saturate around 8-9
// processes and *decrease* beyond (failed pops hammering the single queue
// lock). Uniprocessor times: Eight-puzzle 37.7 s, Strips 43.7 s,
// Cypress 172.7 s.
#include "harness.h"

using namespace psme;
using namespace psme::bench;

int main() {
  print_header("Figure 6-1",
               "Speedups without chunking, single task queue");
  const auto tasks = collect_all();

  std::printf("Uniprocessor virtual times (paper: 8p 37.7s, strips 43.7s, "
              "cypress 172.7s):\n");
  SimOptions opts;
  opts.policy = QueuePolicy::Single;
  for (const auto& d : tasks) {
    std::printf("  %-12s %.1f s  (%llu tasks)\n", d.name.c_str(),
                uniproc_seconds(d.nolearn.stats.traces, opts),
                static_cast<unsigned long long>(
                    total_tasks(d.nolearn.stats.traces)));
  }

  TextTable table({"procs", "eight-puzzle", "strips", "cypress"});
  double peak = 0;
  std::vector<std::vector<double>> curves(tasks.size());
  for (const uint32_t p : process_counts()) {
    std::vector<std::string> row{std::to_string(p)};
    for (size_t i = 0; i < tasks.size(); ++i) {
      const double s = speedup_at(tasks[i].nolearn.stats.traces, p,
                                  QueuePolicy::Single);
      curves[i].push_back(s);
      peak = std::max(peak, s);
      row.push_back(TextTable::num(s, 2));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nPeak speedup: %.2f (paper: ~4.2)\n", peak);
  for (size_t i = 0; i < tasks.size(); ++i) {
    const double at13 = curves[i].back();
    double best = 0;
    uint32_t best_p = 1;
    for (size_t j = 0; j < curves[i].size(); ++j) {
      if (curves[i][j] > best) {
        best = curves[i][j];
        best_p = process_counts()[j];
      }
    }
    std::printf("%-12s peaks at %u procs (%.2f); at 13 procs %.2f%s\n",
                tasks[i].name.c_str(), best_p, best, at13,
                at13 < best ? "  [dips past the peak, as in the paper]" : "");
  }
  return 0;
}
